#!/usr/bin/env python3
"""Benchmark-regression gate for the CI pipeline.

Reads two `go test -bench` outputs (merge-base and PR head, each run
with -count=6), compares per-benchmark median ns/op, writes the
comparison as a JSON artifact, and exits non-zero when any gated
benchmark (BenchmarkIngest*/BenchmarkAnswer*/BenchmarkCluster*/
BenchmarkDomain*/BenchmarkHashed*/BenchmarkReplicated*/
BenchmarkQuorum*/BenchmarkGateway*/BenchmarkConcurrent*) slows down
by more than the threshold. Benchmarks present on only one side (added or removed by
the PR) are reported but never gate.

Usage: bench_gate.py BASE.txt HEAD.txt OUT.json [--threshold 0.15]
"""

import json
import re
import statistics
import sys

GATED = re.compile(r"^Benchmark(Ingest|Answer|Cluster|Domain|Hashed|Replicated|Quorum|Gateway|Concurrent)")
# "BenchmarkFoo/sub-8   	     123	   9876 ns/op	..." — the -N
# GOMAXPROCS suffix is stripped so the name is stable across runners.
LINE = re.compile(r"^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+)\s+ns/op")


def parse(path):
    runs = {}
    with open(path) as f:
        for line in f:
            m = LINE.match(line)
            if m:
                runs.setdefault(m.group(1), []).append(float(m.group(2)))
    return {name: statistics.median(vals) for name, vals in runs.items()}


def main():
    args, threshold = [], 0.15
    argv = sys.argv[1:]
    i = 0
    while i < len(argv):
        a = argv[i]
        if a.startswith("--threshold"):
            if "=" in a:
                threshold = float(a.split("=", 1)[1])
            else:
                i += 1
                threshold = float(argv[i])
        else:
            args.append(a)
        i += 1
    base_path, head_path, out_path = args
    base, head = parse(base_path), parse(head_path)

    rows, failures = [], []
    for name in sorted(set(base) | set(head)):
        b, h = base.get(name), head.get(name)
        delta = (h - b) / b if b and h else None
        gated = bool(GATED.match(name))
        regressed = gated and delta is not None and delta > threshold
        rows.append(
            {
                "benchmark": name,
                "base_ns_op": b,
                "head_ns_op": h,
                "delta": delta,
                "gated": gated,
                "regressed": regressed,
            }
        )
        if regressed:
            failures.append(f"{name}: {b:.0f} -> {h:.0f} ns/op ({delta:+.1%})")

    with open(out_path, "w") as f:
        json.dump(
            {"threshold": threshold, "results": rows, "failures": failures},
            f,
            indent=2,
        )

    for r in rows:
        d = "n/a (one side only)" if r["delta"] is None else f"{r['delta']:+.1%}"
        flag = " <-- REGRESSION" if r["regressed"] else ""
        print(f"{r['benchmark']}: {d}{flag}")
    if failures:
        print(f"\nFAIL: {len(failures)} gated benchmark(s) regressed more than {threshold:.0%}:")
        for f_ in failures:
            print(" ", f_)
        sys.exit(1)
    print(f"\nOK: no gated benchmark regressed more than {threshold:.0%}")


if __name__ == "__main__":
    main()
