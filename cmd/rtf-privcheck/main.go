// Command rtf-privcheck verifies the privacy guarantees of the
// implementation by exact computation (no sampling): the worst-case
// likelihood ratio of the composed randomizer R̃ (Lemma 5.2) across a
// range of k, and the exhaustive end-to-end client check (Theorem 4.5)
// for small d and k.
//
// Example:
//
//	rtf-privcheck -eps 1.0 -kmax 1024 -d 8 -kclient 3
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"rtf/internal/privacy"
	"rtf/internal/probmath"
)

func main() {
	var (
		eps     = flag.Float64("eps", 1.0, "privacy budget")
		kmax    = flag.Int("kmax", 1024, "largest k for the randomizer check (powers of two from 1)")
		d       = flag.Int("d", 8, "horizon for the exhaustive client check (power of two <= 8)")
		kclient = flag.Int("kclient", 2, "largest k for the exhaustive client check")
	)
	flag.Parse()

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "check\tparams\trealized ε\tbudget ε\tmargin\tok")

	failures := 0
	for k := 1; k <= *kmax; k *= 2 {
		p, err := probmath.NewFutureRand(k, *eps)
		if err != nil {
			fatal(err)
		}
		r := privacy.RandomizerRatio(p)
		ok := r.Satisfied()
		if !ok {
			failures++
		}
		fmt.Fprintf(tw, "randomizer R̃\tk=%d\t%.6f\t%.3f\t%.2fx\t%v\n",
			k, r.EpsRealized, r.EpsBudget, r.EpsBudget/r.EpsRealized, ok)
	}
	for k := 1; k <= *kclient; k++ {
		r, err := privacy.ClientRatio(*d, k, *eps)
		if err != nil {
			fatal(err)
		}
		ok := r.Satisfied()
		if !ok {
			failures++
		}
		fmt.Fprintf(tw, "client Aclt (exhaustive)\td=%d k=%d\t%.6f\t%.3f\t%.2fx\t%v\n",
			*d, k, r.EpsRealized, r.EpsBudget, r.EpsBudget/r.EpsRealized, ok)
	}
	tw.Flush()
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "rtf-privcheck: %d checks FAILED\n", failures)
		os.Exit(1)
	}
	fmt.Println("all privacy checks passed")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtf-privcheck:", err)
	os.Exit(1)
}
