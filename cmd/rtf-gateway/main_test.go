package main

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseBackends(t *testing.T) {
	cases := []struct {
		name    string
		spec    string
		want    []string
		wantErr string
	}{
		{name: "single", spec: "localhost:7610", want: []string{"localhost:7610"}},
		{
			name: "three ordered",
			spec: "a:1,b:2,c:3",
			want: []string{"a:1", "b:2", "c:3"},
		},
		{
			name: "whitespace trimmed",
			spec: " a:1 , b:2 ",
			want: []string{"a:1", "b:2"},
		},
		{name: "empty spec", spec: "", wantErr: "-backends is required"},
		{name: "blank spec", spec: "   ", wantErr: "-backends is required"},
		{name: "empty element", spec: "a:1,,c:3", wantErr: "element 1 is empty"},
		{name: "trailing comma", spec: "a:1,b:2,", wantErr: "element 2 is empty"},
		{
			name:    "duplicate",
			spec:    "a:1,b:2,a:1",
			wantErr: "lists a:1 twice (elements 0 and 2)",
		},
		{
			name:    "duplicate after trim",
			spec:    "a:1, a:1",
			wantErr: "lists a:1 twice (elements 0 and 1)",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := parseBackends(tc.spec)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("parseBackends(%q) = %v, want error containing %q", tc.spec, got, tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("parseBackends(%q) error = %q, want it to contain %q", tc.spec, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("parseBackends(%q): %v", tc.spec, err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("parseBackends(%q) = %v, want %v", tc.spec, got, tc.want)
			}
		})
	}
}
