// Command rtf-gateway fronts N rtf-serve backends as one aggregation
// service: it speaks the same wire protocol as rtf-serve (batched
// hello/report ingestion, v1 point queries, versioned v2 queries, raw-
// sums requests), hash-partitions ingested users across the backends by
// user id mod N, and answers every query by scatter/gather — it fetches
// each backend's raw per-interval bit sums and folds them into a fresh
// serial accumulator before estimating.
//
// Because the fold merges raw integer sums (not scaled float answers)
// and the estimator is a fixed linear function of them, a gateway
// answer is bit-for-bit identical to a single rtf-serve instance fed
// every backend's reports. A dead backend stalls queries — the gateway
// re-dials with exponential backoff and retries — rather than failing
// them, so a backend restarting from its snapshot+WAL rejoins
// transparently.
//
// With -m the gateway fronts domain-mode backends (rtf-serve -m): it
// partitions item-tagged ingest the same way and answers the item-
// scoped query shapes — point-item, series-item, top-k — by fetching
// every backend's per-item raw sums, with the same bit-for-bit
// exactness argument.
//
// With -encoding loloha (plus -buckets and -hash-seed, matching the
// backends) the gateway fronts hashed-domain backends: ingest carries
// bucket-tagged frames, and queries gather each backend's raw bucket
// sums with an encoding-checked request — a backend hashing under a
// different seed or sized differently refuses it — before decoding
// item estimates from the folded bucket counters.
//
// The protocol parameters (-mechanism, -d, -k, -m, -eps) must match the
// backends' and the clients'; the mechanism must have the clustered
// capability (its server state merges exactly across machines).
//
// With -members (instead of -backends) the gateway runs in dynamic
// membership mode against rtf-serve -membership backends: users map to
// -vshards virtual shards, each shard is placed on -replicas members by
// rendezvous hashing of an epoched cluster view, ingest is replicated
// to every owner, and queries quorum-read each shard from its owners
// with exact-integer divergence detection — so answers stay bit-for-
// bit exact and survive any single member death. POST
// /membership/reshard on the -metrics listener installs a new member
// list: the gateway fences in-flight forwards, moves only the shards
// whose ownership changed (snapshot handoff over the wire), and bumps
// the epoch.
//
// The process logs in logfmt to stderr and -metrics mounts a JSON
// snapshot of every instrument — including per-backend scatter-fetch
// latency histograms — at http://ADDR/metrics. -queue bounds
// concurrent batch admission before anything is forwarded: a shed
// acked batch gets a negative ack and reaches no backend at all.
// -fetch-timeout deadlines each scatter fetch (retried on a fresh
// connection), and -hedge races a slow clean-session fetch against a
// second connection, first answer winning.
//
// Examples:
//
//	rtf-serve -addr :7610 -d 1024 -k 8 &
//	rtf-serve -addr :7611 -d 1024 -k 8 &
//	rtf-serve -addr :7612 -d 1024 -k 8 -data-dir /var/lib/rtf &
//	rtf-gateway -addr :7609 -backends localhost:7610,localhost:7611,localhost:7612 -d 1024 -k 8
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rtf/internal/cluster"
	"rtf/internal/dyadic"
	"rtf/internal/hh"
	"rtf/internal/obs"
	"rtf/internal/transport"
	"rtf/ldp"
)

func main() {
	var (
		addr     = flag.String("addr", ":7609", "TCP listen address")
		backends = flag.String("backends", "", "comma-separated rtf-serve backend addresses; the order is the partition map (user mod N) and must match every other gateway")
		mech     = flag.String("mechanism", "futurerand", "mechanism the backends host (must have the clustered capability); must match backends and clients")
		d        = flag.Int("d", 1024, "time periods (power of two); must match backends and clients")
		k        = flag.Int("k", 8, "max changes per user; must match backends and clients")
		m        = flag.Int("m", 0, "domain size for domain-valued tracking (0 = Boolean protocol); must match backends and clients")
		encName  = flag.String("encoding", hh.EncodingExact, "domain encoding with -m: exact or loloha; must match backends and clients")
		buckets  = flag.Int("buckets", 0, "bucket count g with -encoding loloha (2..4096); must match backends and clients")
		hseed    = flag.Uint64("hash-seed", 0, "shared epoch hash seed with -encoding loloha; must match backends and clients")
		eps      = flag.Float64("eps", 1.0, "privacy budget (0 < eps <= 1); must match backends and clients")
		attempts = flag.Int("dial-attempts", 10, "re-dial attempts per backend operation (exponential backoff between attempts)")
		pool     = flag.Int("pool", 4, "idle connections pooled per backend")
		grace    = flag.Duration("grace", 10*time.Second, "how long a shutdown signal lets in-flight connections drain")
		metrics  = flag.String("metrics", "", "serve the metrics snapshot (JSON) at http://ADDR/metrics; empty = off")
		queue    = flag.Int("queue", 0, "bounded ingest admission queue capacity: acked batches beyond it are shed whole before any forward, legacy batches block (0 = unbounded)")
		fetchTO  = flag.Duration("fetch-timeout", 0, "per-backend scatter fetch deadline; a timed-out fetch is retried on a fresh connection (0 = no deadline)")
		hedge    = flag.Duration("hedge", 0, "hedged-read delay: a clean-session fetch not answered within this is raced against a fresh connection (0 = off)")
		members  = flag.String("members", "", "dynamic membership mode: comma-separated id=addr member list (mutually exclusive with -backends); backends must run rtf-serve -membership")
		replicas = flag.Int("replicas", 2, "replication factor K under -members: every virtual shard is written to and quorum-read from K members")
		vshards  = flag.Int("vshards", 64, "virtual shard count under -members; must match the backends' -vshards")
		cacheTTL = flag.Duration("answer-cache-ttl", 0, "bounded-staleness reads: serve a cached scatter/gather up to this old to clean sessions even when ingest has advanced (0 = off; the cache then serves only provably exact entries)")
		pprofOn  = flag.Bool("pprof", false, "mount net/http/pprof profiling handlers under /debug/pprof/ on the -metrics listener")
	)
	flag.Parse()
	logger := obs.NewLogger(os.Stderr, "rtf-gateway")

	if !dyadic.IsPow2(*d) {
		fatal(fmt.Errorf("d=%d is not a power of two", *d))
	}
	mc, ok := ldp.Lookup(ldp.Protocol(*mech))
	if !ok {
		fatal(fmt.Errorf("unknown mechanism %q; clustered mechanisms: %s", *mech, clustered()))
	}
	if !mc.Caps.Clustered {
		fatal(fmt.Errorf("mechanism %q cannot be clustered (its server state does not merge across machines); clustered mechanisms: %s", *mech, clustered()))
	}
	hashedMode := false
	var enc hh.DomainEncoding
	if *m > 0 {
		if err := ldp.ValidateDomainSize(*m, *encName); err != nil {
			fatal(err)
		}
		if !mc.Caps.Domain {
			fatal(fmt.Errorf("mechanism %q cannot host domain tracking", *mech))
		}
		hashedMode = *encName == hh.EncodingLoloha
		if hashedMode {
			if !mc.Caps.HashedDomain {
				fatal(fmt.Errorf("mechanism %q cannot host hashed domain tracking", *mech))
			}
			enc = hh.LolohaEncoding(*m, *buckets, *hseed)
			if err := enc.Validate(); err != nil {
				fatal(err)
			}
			if *members != "" {
				fatal(fmt.Errorf("-members does not support -encoding loloha yet; use -backends"))
			}
		} else if *buckets != 0 || *hseed != 0 {
			fatal(fmt.Errorf("-buckets and -hash-seed only apply with -encoding loloha"))
		}
	} else if *encName != hh.EncodingExact || *buckets != 0 || *hseed != 0 {
		fatal(fmt.Errorf("-encoding, -buckets and -hash-seed require domain mode (-m)"))
	}
	scale, err := mc.EstimatorScale(ldp.Params{D: *d, K: *k, Eps: *eps})
	if err != nil {
		fatal(err)
	}
	opts := transport.ClusterOptions{
		DialAttempts: *attempts,
		PoolSize:     *pool,
		FetchTimeout: *fetchTO,
		HedgeDelay:   *hedge,
	}
	if *members != "" {
		if *backends != "" {
			fatal(fmt.Errorf("-members and -backends are mutually exclusive: one gateway fronts either a static partition map or a dynamic member set"))
		}
		runMember(logger, memberConfig{
			addr: *addr, members: *members, mech: *mech,
			d: *d, k: *k, m: *m, eps: *eps, scale: scale,
			replicas: *replicas, vshards: *vshards,
			opts: opts, grace: *grace, metrics: *metrics, queue: *queue,
			pprof: *pprofOn,
		})
		return
	}
	addrs, err := parseBackends(*backends)
	if err != nil {
		fatal(err)
	}
	client, err := transport.NewClusterClient(addrs, opts)
	if err != nil {
		fatal(err)
	}
	var gw *cluster.Gateway
	switch {
	case hashedMode:
		gw = cluster.NewHashedDomain(*d, enc, scale, client)
	case *m > 0:
		gw = cluster.NewDomain(*d, *m, scale, client)
	default:
		gw = cluster.New(*d, scale, client)
	}
	gw.ErrorLog = func(err error) { logger.Error("gateway", "err", err) }
	gw.AnswerCacheTTL = *cacheTTL

	reg := obs.NewRegistry()
	reg.SetInfo("component", "rtf-gateway")
	reg.SetInfo("mechanism", *mech)
	obs.RegisterProcessMetrics(reg)
	gw.Metrics = transport.NewServerMetrics(reg)
	if *queue > 0 {
		gw.Queue = transport.NewIngestQueue(*queue)
		gw.Metrics.RegisterQueue(gw.Queue)
	}
	metricsAddr := ""
	if *metrics != "" {
		mln, err := net.Listen("tcp", *metrics)
		if err != nil {
			fatal(err)
		}
		metricsAddr = mln.Addr().String()
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg)
		if *pprofOn {
			obs.MountPprof(mux)
		}
		go http.Serve(mln, mux)
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		logger.Info("draining", "signal", s, "grace", *grace)
		go func() {
			<-sig
			logger.Error("second signal: exiting immediately")
			os.Exit(1)
		}()
		gw.Shutdown(*grace)
	}()

	ready := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() { errc <- gw.ListenAndServe(*addr, ready) }()
	select {
	case a := <-ready:
		logger.Info("listening", "addr", a, "metrics", metricsAddr,
			"mechanism", *mech, "d", *d, "k", *k, "m", *m, "eps", *eps,
			"queue", *queue, "backends", strings.Join(addrs, ","))
	case err := <-errc:
		fatal(err)
	}
	if err := <-errc; err != nil {
		fatal(err)
	}
	logger.Info("done")
}

// parseBackends splits the -backends flag into the ordered partition
// map, rejecting empty and duplicate addresses: a duplicate would
// silently halve one partition's capacity and double-count its sums,
// and an empty element is a typo the dial loop would otherwise turn
// into a confusing connection error at the first query.
func parseBackends(spec string) ([]string, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("-backends is required (or use -members for dynamic membership)")
	}
	parts := strings.Split(spec, ",")
	addrs := make([]string, 0, len(parts))
	seen := make(map[string]int, len(parts))
	for i, a := range parts {
		a = strings.TrimSpace(a)
		if a == "" {
			return nil, fmt.Errorf("-backends element %d is empty", i)
		}
		if j, dup := seen[a]; dup {
			return nil, fmt.Errorf("-backends lists %s twice (elements %d and %d); a duplicate backend would double-count its partition", a, j, i)
		}
		seen[a] = i
		addrs = append(addrs, a)
	}
	return addrs, nil
}

// clustered lists the registered mechanisms a gateway can front.
func clustered() string {
	out := ""
	for _, m := range ldp.Mechanisms() {
		if !m.Caps.Clustered {
			continue
		}
		if out != "" {
			out += ", "
		}
		out += string(m.Protocol)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtf-gateway:", err)
	os.Exit(1)
}
