package main

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rtf/internal/cluster"
	"rtf/internal/membership"
	"rtf/internal/obs"
	"rtf/internal/transport"
)

// memberConfig carries the resolved flag set into the dynamic-
// membership serving path.
type memberConfig struct {
	addr    string
	members string
	mech    string
	d, k, m int
	eps     float64
	scale   float64

	replicas int
	vshards  int

	opts    transport.ClusterOptions
	grace   time.Duration
	metrics string
	queue   int
	pprof   bool
}

// runMember serves the dynamic-membership mode: the gateway fronts a
// versioned member set, replicates every ingested sub-batch to its
// shard's K rendezvous owners, answers queries by quorum reads, and
// exposes the reshard admin API next to /metrics. It does not return
// except through fatal.
func runMember(logger *obs.Logger, cfg memberConfig) {
	mems, err := membership.ParseMembers(cfg.members)
	if err != nil {
		fatal(err)
	}
	if cfg.vshards < 1 || cfg.vshards > membership.MaxShards {
		fatal(fmt.Errorf("vshards=%d outside [1..%d]", cfg.vshards, membership.MaxShards))
	}
	rc := transport.NewReplicaClient(cfg.opts)
	var gw *cluster.MemberGateway
	if cfg.m > 0 {
		gw, err = cluster.NewMemberDomain(cfg.d, cfg.m, cfg.scale, cfg.vshards, cfg.replicas, mems, rc)
	} else {
		gw, err = cluster.NewMember(cfg.d, cfg.scale, cfg.vshards, cfg.replicas, mems, rc)
	}
	if err != nil {
		fatal(err)
	}
	gw.ErrorLog = func(err error) { logger.Error("gateway", "err", err) }

	reg := obs.NewRegistry()
	reg.SetInfo("component", "rtf-gateway")
	reg.SetInfo("mechanism", cfg.mech)
	reg.SetInfo("mode", "membership")
	obs.RegisterProcessMetrics(reg)
	gw.Metrics = transport.NewServerMetrics(reg)
	if cfg.queue > 0 {
		gw.Queue = transport.NewIngestQueue(cfg.queue)
		gw.Metrics.RegisterQueue(gw.Queue)
	}
	reg.GaugeFunc("membership_epoch", func() float64 { return float64(gw.Epoch()) })
	reg.GaugeFunc("membership_members", func() float64 { return float64(len(gw.View().Members)) })
	reg.GaugeFunc("membership_transfers_total", func() float64 { return float64(gw.TransfersTotal()) })
	reg.GaugeFunc("membership_divergences_total", func() float64 { return float64(gw.Divergences()) })
	reg.GaugeFunc("membership_short_reads_total", func() float64 { return float64(gw.ShortReads()) })

	metricsAddr := ""
	if cfg.metrics != "" {
		mln, err := net.Listen("tcp", cfg.metrics)
		if err != nil {
			fatal(err)
		}
		metricsAddr = mln.Addr().String()
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg)
		admin := gw.AdminHandler()
		mux.Handle("/membership/", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			admin.ServeHTTP(w, r)
			if r.Method == http.MethodPost {
				logView(logger, gw.View())
			}
		}))
		if cfg.pprof {
			obs.MountPprof(mux)
		}
		go http.Serve(mln, mux)
	}

	// Backends may still be coming up; the announce rides the replica
	// client's dial backoff.
	if err := gw.AnnounceView(); err != nil {
		fatal(err)
	}
	logView(logger, gw.View())

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		logger.Info("draining", "signal", s, "grace", cfg.grace)
		go func() {
			<-sig
			logger.Error("second signal: exiting immediately")
			os.Exit(1)
		}()
		gw.Shutdown(cfg.grace)
	}()

	ready := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() { errc <- gw.ListenAndServe(cfg.addr, ready) }()
	select {
	case a := <-ready:
		logger.Info("listening", "addr", a, "metrics", metricsAddr,
			"mechanism", cfg.mech, "d", cfg.d, "k", cfg.k, "m", cfg.m, "eps", cfg.eps,
			"queue", cfg.queue, "members", len(mems), "replicas", cfg.replicas, "vshards", cfg.vshards)
	case err := <-errc:
		fatal(err)
	}
	if err := <-errc; err != nil {
		fatal(err)
	}
	logger.Info("done")
}

// logView logs the installed cluster view in logfmt.
func logView(logger *obs.Logger, v membership.View) {
	ids := ""
	for i, m := range v.Members {
		if i > 0 {
			ids += ","
		}
		ids += m.ID
	}
	logger.Info("view", "epoch", v.Epoch, "k", v.K, "vshards", v.NumShards, "members", ids)
}
