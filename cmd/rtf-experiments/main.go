// Command rtf-experiments regenerates the reproduction experiments
// E1–E20 (the paper's theorems, lemmas and comparisons; see DESIGN.md §4
// and EXPERIMENTS.md).
//
// Examples:
//
//	rtf-experiments                 # all experiments, full scale
//	rtf-experiments -quick          # all experiments, reduced scale
//	rtf-experiments -exp E1,E5,E6   # a subset
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"rtf/internal/eval"
)

func main() {
	var (
		exps  = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		quick = flag.Bool("quick", false, "reduced sizes (seconds instead of minutes)")
		seed  = flag.Int64("seed", 42, "base random seed")
		out   = flag.String("out", "", "also write output to this file")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range eval.All() {
			fmt.Printf("%-4s %s\n     %s\n", e.ID, e.Title, e.Claim)
		}
		return
	}

	var selected []eval.Experiment
	if *exps == "all" {
		selected = eval.All()
	} else {
		for _, id := range strings.Split(*exps, ",") {
			e, ok := eval.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "rtf-experiments: unknown experiment %q\n", id)
				os.Exit(1)
			}
			selected = append(selected, e)
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rtf-experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	cfg := eval.Config{Quick: *quick, Seed: *seed}
	start := time.Now()
	for _, e := range selected {
		t0 := time.Now()
		if err := e.Run(w, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "rtf-experiments: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "   [%s completed in %v]\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Fprintf(w, "\nall %d experiments completed in %v\n", len(selected), time.Since(start).Round(time.Millisecond))
}
