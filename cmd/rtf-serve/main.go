// Command rtf-serve runs the sharded batch-ingest aggregation service
// for any registered mechanism whose server state is the dyadic
// accumulator (futurerand, independent, bun, erlingsson): a TCP server
// that accepts framed hello/report messages — single or batched — from
// any number of client connections, accumulates them into a lock-free
// sharded accumulator, and answers online queries from the live
// counters. Both the v1 point query (MsgQuery → MsgEstimate) and the
// versioned v2 frames (MsgQueryV2 → MsgAnswer: point, change, series,
// window) are served.
//
// With -data-dir the service is durable: every ingested frame is
// appended to a write-ahead log before it is applied, periodic
// snapshots (-snapshot-every) supersede and compact the log, and on
// boot the previous state is recovered from the newest snapshot plus a
// WAL replay — answers after recovery are bit-for-bit those of an
// uninterrupted server. SIGINT/SIGTERM shut down gracefully: the
// listener closes, in-flight connections drain (up to -grace), a final
// snapshot is flushed, and the process exits 0. A second signal forces
// immediate exit.
//
// The protocol parameters (-mechanism, -d, -k, -eps) must match the
// clients'; they determine the estimator scale of Algorithm 2 and are
// recorded in every snapshot, so a data directory written under
// different parameters is rejected at boot rather than misread.
//
// Examples:
//
//	rtf-serve -addr :7609 -d 1024 -k 8 -eps 1.0
//	rtf-serve -addr :7609 -mechanism erlingsson -d 256 -k 4 -eps 0.5 -shards 16 -stats 5s
//	rtf-serve -addr :7609 -d 1024 -k 8 -data-dir /var/lib/rtf -snapshot-every 30s -fsync
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"rtf/internal/dyadic"
	"rtf/internal/persist"
	"rtf/internal/protocol"
	"rtf/internal/transport"
	"rtf/ldp"
)

func main() {
	var (
		addr    = flag.String("addr", ":7609", "TCP listen address")
		mech    = flag.String("mechanism", "futurerand", "mechanism to host (must have the sharded capability); must match clients")
		d       = flag.Int("d", 1024, "time periods (power of two); must match clients")
		k       = flag.Int("k", 8, "max changes per user; must match clients")
		eps     = flag.Float64("eps", 1.0, "privacy budget (0 < eps <= 1); must match clients")
		shards  = flag.Int("shards", runtime.GOMAXPROCS(0), "accumulator shards (>= 1)")
		stats   = flag.Duration("stats", 0, "print throughput every interval (0 = off)")
		dataDir = flag.String("data-dir", "", "persist state here (snapshot + write-ahead log); empty = in-memory only")
		snapEvy = flag.Duration("snapshot-every", time.Minute, "periodic snapshot interval with -data-dir (0 = final snapshot only)")
		fsync   = flag.Bool("fsync", false, "fsync the WAL after every append (survive power loss, not just crashes)")
		tornOK  = flag.Bool("tolerate-torn-tail", false, "boot through a torn final WAL record (the artifact of a power loss mid-append) by truncating it; off = fail with a descriptive error so the operator decides")
		grace   = flag.Duration("grace", 10*time.Second, "how long a shutdown signal lets in-flight connections drain")
	)
	flag.Parse()

	if !dyadic.IsPow2(*d) {
		fatal(fmt.Errorf("d=%d is not a power of two", *d))
	}
	m, ok := ldp.Lookup(ldp.Protocol(*mech))
	if !ok {
		fatal(fmt.Errorf("unknown mechanism %q; registered: %s", *mech, hostable()))
	}
	if !m.Caps.Sharded {
		fatal(fmt.Errorf("mechanism %q cannot be hosted on the sharded accumulator; hostable: %s", *mech, hostable()))
	}
	scale, err := m.EstimatorScale(ldp.Params{D: *d, K: *k, Eps: *eps})
	if err != nil {
		fatal(err)
	}
	if *shards < 1 {
		fatal(fmt.Errorf("shards=%d must be >= 1", *shards))
	}
	acc := protocol.NewSharded(*d, scale, *shards)

	var collector transport.BatchCollector
	var durable *transport.DurableCollector
	if *dataDir != "" {
		meta := persist.Meta{Mechanism: *mech, D: *d, K: *k, Eps: *eps, Scale: scale}
		dc, rec, err := transport.OpenDurable(acc, *dataDir, meta, transport.DurableOptions{Fsync: *fsync, TolerateTornTail: *tornOK})
		if err != nil {
			fatal(err)
		}
		durable = dc
		collector = dc
		if rec.SnapshotCursor > 0 || rec.Replayed > 0 {
			fmt.Fprintf(os.Stderr, "rtf-serve: recovered from %s: snapshot cursor %d + %d WAL records (%d users, %d reports replayed; %d users total)\n",
				*dataDir, rec.SnapshotCursor, rec.Replayed, rec.Hellos, rec.Reports, acc.Users())
		}
	} else {
		collector = transport.NewShardedCollector(acc)
	}
	srv := transport.NewIngestServer(collector)
	srv.ErrorLog = func(err error) { fmt.Fprintln(os.Stderr, "rtf-serve:", err) }

	stop := make(chan struct{})
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "rtf-serve: %v: draining connections (grace %v; signal again to force)\n", s, *grace)
		go func() {
			<-sig
			fmt.Fprintln(os.Stderr, "rtf-serve: second signal: exiting immediately")
			os.Exit(1)
		}()
		close(stop)
		srv.Shutdown(*grace)
	}()

	if durable != nil && *snapEvy > 0 {
		go func() {
			tick := time.NewTicker(*snapEvy)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					if _, err := durable.Snapshot(); err != nil {
						fmt.Fprintln(os.Stderr, "rtf-serve: snapshot:", err)
					}
				case <-stop:
					return
				}
			}
		}()
	}

	if *stats > 0 {
		go func() {
			tick := time.NewTicker(*stats)
			defer tick.Stop()
			var lastReports int64
			last := time.Now()
			for range tick.C {
				hellos, reports, batches := srv.Collector.Stats()
				now := time.Now()
				rate := float64(reports-lastReports) / now.Sub(last).Seconds()
				fmt.Fprintf(os.Stderr, "rtf-serve: users=%d reports=%d batches=%d rate=%.0f reports/s\n",
					hellos, reports, batches, rate)
				lastReports, last = reports, now
			}
		}()
	}

	ready := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr, ready) }()
	select {
	case a := <-ready:
		fmt.Fprintf(os.Stderr, "rtf-serve: listening on %s (mechanism=%s d=%d k=%d eps=%v shards=%d durable=%v)\n",
			a, *mech, *d, *k, *eps, *shards, durable != nil)
	case err := <-errc:
		fatal(err)
	}
	if err := <-errc; err != nil {
		fatal(err)
	}

	// The serve loop has returned and every connection goroutine has
	// exited: the accumulator is quiescent. Flush the final snapshot so
	// a clean shutdown restarts without any WAL replay.
	if durable != nil {
		if cursor, err := durable.Snapshot(); err != nil {
			fatal(err)
		} else {
			fmt.Fprintf(os.Stderr, "rtf-serve: final snapshot at cursor %d\n", cursor)
		}
		if err := durable.Close(); err != nil {
			fatal(err)
		}
	}
	hellos, reports, batches := srv.Collector.Stats()
	fmt.Fprintf(os.Stderr, "rtf-serve: done: users=%d reports=%d batches=%d\n", hellos, reports, batches)
}

// hostable lists the registered mechanisms rtf-serve can host.
func hostable() string {
	out := ""
	for _, m := range ldp.Mechanisms() {
		if !m.Caps.Sharded {
			continue
		}
		if out != "" {
			out += ", "
		}
		out += string(m.Protocol)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtf-serve:", err)
	os.Exit(1)
}
