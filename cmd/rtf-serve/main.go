// Command rtf-serve runs the sharded batch-ingest aggregation service
// for any registered mechanism whose server state is the dyadic
// accumulator (futurerand, independent, bun, erlingsson): a TCP server
// that accepts framed hello/report messages — single or batched — from
// any number of client connections, accumulates them into a lock-free
// sharded accumulator, and answers online queries from the live
// counters. Both the v1 point query (MsgQuery → MsgEstimate) and the
// versioned v2 frames (MsgQueryV2 → MsgAnswer: point, change, series,
// window) are served.
//
// The protocol parameters (-mechanism, -d, -k, -eps) must match the
// clients'; they determine the estimator scale of Algorithm 2.
// Estimates served are bit-for-bit identical to a serial in-process
// server fed the same reports, regardless of sharding, batching or
// connection interleaving (see cmd/rtf-sim's -drive mode, which checks
// exactly that for every query shape).
//
// Examples:
//
//	rtf-serve -addr :7609 -d 1024 -k 8 -eps 1.0
//	rtf-serve -addr :7609 -mechanism erlingsson -d 256 -k 4 -eps 0.5 -shards 16 -stats 5s
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"rtf/internal/dyadic"
	"rtf/internal/protocol"
	"rtf/internal/transport"
	"rtf/ldp"
)

func main() {
	var (
		addr   = flag.String("addr", ":7609", "TCP listen address")
		mech   = flag.String("mechanism", "futurerand", "mechanism to host (must have the sharded capability); must match clients")
		d      = flag.Int("d", 1024, "time periods (power of two); must match clients")
		k      = flag.Int("k", 8, "max changes per user; must match clients")
		eps    = flag.Float64("eps", 1.0, "privacy budget (0 < eps <= 1); must match clients")
		shards = flag.Int("shards", runtime.GOMAXPROCS(0), "accumulator shards (>= 1)")
		stats  = flag.Duration("stats", 0, "print throughput every interval (0 = off)")
	)
	flag.Parse()

	if !dyadic.IsPow2(*d) {
		fatal(fmt.Errorf("d=%d is not a power of two", *d))
	}
	m, ok := ldp.Lookup(ldp.Protocol(*mech))
	if !ok {
		fatal(fmt.Errorf("unknown mechanism %q; registered: %s", *mech, hostable()))
	}
	if !m.Caps.Sharded {
		fatal(fmt.Errorf("mechanism %q cannot be hosted on the sharded accumulator; hostable: %s", *mech, hostable()))
	}
	scale, err := m.EstimatorScale(ldp.Params{D: *d, K: *k, Eps: *eps})
	if err != nil {
		fatal(err)
	}
	if *shards < 1 {
		fatal(fmt.Errorf("shards=%d must be >= 1", *shards))
	}
	acc := protocol.NewSharded(*d, scale, *shards)
	srv := transport.NewIngestServer(transport.NewShardedCollector(acc))
	srv.ErrorLog = func(err error) { fmt.Fprintln(os.Stderr, "rtf-serve:", err) }

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "rtf-serve: shutting down")
		srv.Close()
	}()

	if *stats > 0 {
		go func() {
			tick := time.NewTicker(*stats)
			defer tick.Stop()
			var lastReports int64
			last := time.Now()
			for range tick.C {
				hellos, reports, batches := srv.Collector.Stats()
				now := time.Now()
				rate := float64(reports-lastReports) / now.Sub(last).Seconds()
				fmt.Fprintf(os.Stderr, "rtf-serve: users=%d reports=%d batches=%d rate=%.0f reports/s\n",
					hellos, reports, batches, rate)
				lastReports, last = reports, now
			}
		}()
	}

	fmt.Fprintf(os.Stderr, "rtf-serve: listening on %s (mechanism=%s d=%d k=%d eps=%v shards=%d)\n",
		*addr, *mech, *d, *k, *eps, *shards)
	if err := srv.ListenAndServe(*addr, nil); err != nil {
		fatal(err)
	}
	hellos, reports, batches := srv.Collector.Stats()
	fmt.Fprintf(os.Stderr, "rtf-serve: done: users=%d reports=%d batches=%d\n", hellos, reports, batches)
}

// hostable lists the registered mechanisms rtf-serve can host.
func hostable() string {
	out := ""
	for _, m := range ldp.Mechanisms() {
		if !m.Caps.Sharded {
			continue
		}
		if out != "" {
			out += ", "
		}
		out += string(m.Protocol)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtf-serve:", err)
	os.Exit(1)
}
