// Command rtf-serve runs the sharded batch-ingest aggregation service
// for any registered mechanism whose server state is the dyadic
// accumulator (futurerand, independent, bun, erlingsson): a TCP server
// that accepts framed hello/report messages — single or batched — from
// any number of client connections, accumulates them into a lock-free
// sharded accumulator, and answers online queries from the live
// counters. Both the v1 point query (MsgQuery → MsgEstimate) and the
// versioned v2 frames (MsgQueryV2 → MsgAnswer: point, change, series,
// window) are served.
//
// With -m the service hosts the richer-domain extension instead: it
// accepts item-tagged frames (MsgDomainHello, MsgDomainReport) from
// domain clients, runs one dyadic accumulator per item with estimates
// scaled by m, and answers the item-scoped query shapes — point-item,
// series-item and top-k heavy hitters (MsgDomainQuery → MsgDomainAnswer)
// — plus per-item raw-sums requests from a cluster gateway
// (MsgDomainSums). A server hosts exactly one of the two modes.
//
// With -encoding loloha (plus -buckets and -hash-seed) the domain mode
// hashes instead of enumerating: clients hash their values to g
// buckets under the shared epoch seed (longitudinal local hashing), the
// server keeps g bucket accumulators instead of m per-item ones, and
// item queries are answered by decoding the bucket counters — so the
// catalogue can be as large as 2^24 while server memory scales with g.
// Bucket-tagged hellos carry the seed (MsgHashedDomainHello) and are
// refused under a different seed; gateways fetch raw bucket sums with
// the encoding-checked MsgHashedDomainSums.
//
// With -membership (plus -id and -vshards) the service joins a dynamic
// cluster fronted by rtf-gateway -members: it keeps one accumulator per
// virtual shard instead of one global accumulator, and serves the
// membership control plane on the same port — cluster view pushes,
// per-shard raw-sums requests (the gateway's quorum reads), shard state
// export and shard transfer installs (reshard handoffs). Works for both
// the Boolean and (-m) domain protocols; -data-dir is supported in the
// Boolean mode, where a shard install cuts its own snapshot so a
// handoff survives a crash.
//
// With -data-dir the service is durable: every ingested frame is
// appended to a write-ahead log before it is applied, periodic
// snapshots (-snapshot-every) supersede and compact the log, and on
// boot the previous state is recovered from the newest snapshot plus a
// WAL replay — answers after recovery are bit-for-bit those of an
// uninterrupted server. SIGINT/SIGTERM shut down gracefully: the
// listener closes, in-flight connections drain (up to -grace), a final
// snapshot is flushed, and the process exits 0. A second signal forces
// immediate exit.
//
// The protocol parameters (-mechanism, -d, -k, -m, -eps) must match the
// clients'; they determine the estimator scale of Algorithm 2 and are
// recorded in every snapshot, so a data directory written under
// different parameters is rejected at boot rather than misread.
//
// The process logs in logfmt to stderr, -metrics mounts a JSON
// snapshot of every instrument (ingest rate, batch sizes, apply
// latency, queue occupancy, WAL lag, snapshot age, per-mechanism query
// counts) at http://ADDR/metrics, and -queue bounds concurrent batch
// admission: past the bound, legacy batches block (TCP backpressure)
// while acked batches are shed whole with a negative ack — never
// half-applied.
//
// Examples:
//
//	rtf-serve -addr :7609 -d 1024 -k 8 -eps 1.0
//	rtf-serve -addr :7609 -mechanism erlingsson -d 256 -k 4 -eps 0.5 -shards 16 -stats 5s
//	rtf-serve -addr :7609 -d 1024 -k 8 -data-dir /var/lib/rtf -snapshot-every 30s -fsync
//	rtf-serve -addr :7609 -d 256 -k 4 -m 64  # domain-valued tracking over 64 items
//	rtf-serve -addr :7609 -d 1024 -k 8 -metrics :9609 -queue 64
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"rtf/internal/dyadic"
	"rtf/internal/hh"
	"rtf/internal/membership"
	"rtf/internal/obs"
	"rtf/internal/persist"
	"rtf/internal/protocol"
	"rtf/internal/transport"
	"rtf/ldp"
)

func main() {
	var (
		addr    = flag.String("addr", ":7609", "TCP listen address")
		mech    = flag.String("mechanism", "futurerand", "mechanism to host (must have the sharded capability); must match clients")
		d       = flag.Int("d", 1024, "time periods (power of two); must match clients")
		k       = flag.Int("k", 8, "max changes per user; must match clients")
		m       = flag.Int("m", 0, "domain size for domain-valued tracking (0 = Boolean protocol); must match clients")
		encName = flag.String("encoding", hh.EncodingExact, "domain encoding with -m: exact (one row per item) or loloha (hash to -buckets rows); must match clients")
		buckets = flag.Int("buckets", 0, "bucket count g with -encoding loloha (2..4096); must match clients")
		hseed   = flag.Uint64("hash-seed", 0, "shared epoch hash seed with -encoding loloha; must match clients")
		eps     = flag.Float64("eps", 1.0, "privacy budget (0 < eps <= 1); must match clients")
		shards  = flag.Int("shards", runtime.GOMAXPROCS(0), "accumulator shards (>= 1)")
		stats   = flag.Duration("stats", 0, "print throughput every interval (0 = off)")
		dataDir = flag.String("data-dir", "", "persist state here (snapshot + write-ahead log); empty = in-memory only")
		snapEvy = flag.Duration("snapshot-every", time.Minute, "periodic snapshot interval with -data-dir (0 = final snapshot only)")
		fsync   = flag.Bool("fsync", false, "fsync the WAL after every append (survive power loss, not just crashes)")
		walGrp  = flag.Duration("wal-commit-interval", 0, "WAL group-commit coalescing window: batches from all connections arriving within it are committed with one write and at most one fsync; acks still mean journaled/durable (0 = one write+fsync per batch)")
		tornOK  = flag.Bool("tolerate-torn-tail", false, "boot through a torn final WAL record (the artifact of a power loss mid-append) by truncating it; off = fail with a descriptive error so the operator decides")
		grace   = flag.Duration("grace", 10*time.Second, "how long a shutdown signal lets in-flight connections drain")
		metrics = flag.String("metrics", "", "serve the metrics snapshot (JSON) at http://ADDR/metrics; empty = off")
		queue   = flag.Int("queue", 0, "bounded ingest admission queue capacity: acked batches beyond it are shed whole, legacy batches block (0 = unbounded)")
		pprofOn = flag.Bool("pprof", false, "mount net/http/pprof profiling handlers under /debug/pprof/ on the -metrics listener")
		member  = flag.Bool("membership", false, "membership mode: host one accumulator per virtual shard and serve the dynamic-cluster control plane (view pushes, per-shard sums, shard transfers) for an rtf-gateway -members front")
		id      = flag.String("id", "", "this backend's member ID under -membership (must match the gateway's -members entry)")
		vshards = flag.Int("vshards", 64, "virtual shard count under -membership; must match the gateway's -vshards")
	)
	flag.Parse()
	logger := obs.NewLogger(os.Stderr, "rtf-serve")

	if !dyadic.IsPow2(*d) {
		fatal(fmt.Errorf("d=%d is not a power of two", *d))
	}
	mc, ok := ldp.Lookup(ldp.Protocol(*mech))
	if !ok {
		fatal(fmt.Errorf("unknown mechanism %q; registered: %s", *mech, hostable(false)))
	}
	domainMode := *m > 0
	hashedMode := false
	var enc hh.DomainEncoding
	if domainMode {
		if err := ldp.ValidateDomainSize(*m, *encName); err != nil {
			fatal(err)
		}
		if !mc.Caps.Domain {
			fatal(fmt.Errorf("mechanism %q cannot host domain tracking; domain-capable: %s", *mech, hostable(true)))
		}
		hashedMode = *encName == hh.EncodingLoloha
		if hashedMode {
			if !mc.Caps.HashedDomain {
				fatal(fmt.Errorf("mechanism %q cannot host hashed domain tracking", *mech))
			}
			enc = hh.LolohaEncoding(*m, *buckets, *hseed)
			if err := enc.Validate(); err != nil {
				fatal(err)
			}
			if *member {
				fatal(fmt.Errorf("-membership does not support -encoding loloha yet; drop -membership"))
			}
		} else if *buckets != 0 || *hseed != 0 {
			fatal(fmt.Errorf("-buckets and -hash-seed only apply with -encoding loloha"))
		}
	} else {
		if *encName != hh.EncodingExact || *buckets != 0 || *hseed != 0 {
			fatal(fmt.Errorf("-encoding, -buckets and -hash-seed require domain mode (-m)"))
		}
		if !mc.Caps.Sharded {
			fatal(fmt.Errorf("mechanism %q cannot be hosted on the sharded accumulator; hostable: %s", *mech, hostable(false)))
		}
	}
	scale, err := mc.EstimatorScale(ldp.Params{D: *d, K: *k, Eps: *eps})
	if err != nil {
		fatal(err)
	}
	if *shards < 1 {
		fatal(fmt.Errorf("shards=%d must be >= 1", *shards))
	}
	if *member {
		if *id == "" {
			fatal(fmt.Errorf("-membership requires -id (the member ID the gateway routes by)"))
		}
		if *vshards < 1 || *vshards > membership.MaxShards {
			fatal(fmt.Errorf("vshards=%d outside [1..%d]", *vshards, membership.MaxShards))
		}
	}

	// The mode-specific wiring: an ingest server over the right
	// collector, plus the stats and snapshot hooks shared below.
	var (
		srv        *transport.IngestServer
		statsFn    func() (hellos, reports, batches int64)
		snapshotFn func() (uint64, error) // nil when in-memory
		closeFn    func() error
		durable    transport.DurabilityStatser // nil when in-memory
		epochFn    func() uint64               // membership mode: current view epoch
		ownedFn    func() int                  // membership mode: shards owned under it
	)
	switch {
	case *member && domainMode:
		if *dataDir != "" {
			fatal(fmt.Errorf("-membership -m does not support -data-dir yet (domain shard snapshots are not implemented); drop -data-dir"))
		}
		col := transport.NewDomainShardMapCollector(*d, *m, scale, *vshards, *id)
		srv = transport.NewDomainShardMapIngestServer(col)
		statsFn, epochFn, ownedFn = col.Stats, col.Epoch, col.OwnedShards
	case *member:
		sm := transport.NewShardMapCollector(*d, scale, *vshards, *id)
		epochFn, ownedFn = sm.Epoch, sm.OwnedShards
		if *dataDir != "" {
			meta := persist.Meta{Mechanism: *mech, D: *d, K: *k, Eps: *eps, Scale: scale}
			dc, rec, err := transport.OpenDurableShardMap(sm, *dataDir, meta, transport.DurableOptions{Fsync: *fsync, TolerateTornTail: *tornOK, GroupCommitInterval: *walGrp})
			if err != nil {
				fatal(err)
			}
			srv = transport.NewShardMapIngestServer(dc)
			statsFn, snapshotFn, closeFn, durable = dc.Stats, dc.Snapshot, dc.Close, dc
			logRecovery(logger, *dataDir, rec, int(rec.Hellos))
		} else {
			srv = transport.NewShardMapIngestServer(sm)
			statsFn = sm.Stats
		}
	case hashedMode:
		hs := hh.NewHashedDomainServer(*d, enc, scale, *shards)
		if *dataDir != "" {
			meta := persist.Meta{Mechanism: *mech, D: *d, K: *k, M: *m, Eps: *eps, Scale: scale,
				Encoding: enc.Name, G: enc.G, HashSeed: enc.Seed}
			dc, rec, err := transport.OpenDurableHashedDomain(hs, *dataDir, meta, transport.DurableOptions{Fsync: *fsync, TolerateTornTail: *tornOK, GroupCommitInterval: *walGrp})
			if err != nil {
				fatal(err)
			}
			srv = transport.NewHashedDomainIngestServer(dc)
			statsFn, snapshotFn, closeFn, durable = dc.Stats, dc.Snapshot, dc.Close, dc
			logRecovery(logger, *dataDir, rec, hs.Users())
		} else {
			dc := transport.NewHashedDomainCollector(hs)
			srv = transport.NewHashedDomainIngestServer(dc)
			statsFn = dc.Stats
		}
	case domainMode:
		ds := hh.NewDomainServer(*d, *m, scale, *shards)
		if *dataDir != "" {
			meta := persist.Meta{Mechanism: *mech, D: *d, K: *k, M: *m, Eps: *eps, Scale: scale}
			dc, rec, err := transport.OpenDurableDomain(ds, *dataDir, meta, transport.DurableOptions{Fsync: *fsync, TolerateTornTail: *tornOK, GroupCommitInterval: *walGrp})
			if err != nil {
				fatal(err)
			}
			srv = transport.NewDomainIngestServer(dc)
			statsFn, snapshotFn, closeFn, durable = dc.Stats, dc.Snapshot, dc.Close, dc
			logRecovery(logger, *dataDir, rec, ds.Users())
		} else {
			dc := transport.NewDomainCollector(ds)
			srv = transport.NewDomainIngestServer(dc)
			statsFn = dc.Stats
		}
	default:
		acc := protocol.NewSharded(*d, scale, *shards)
		if *dataDir != "" {
			meta := persist.Meta{Mechanism: *mech, D: *d, K: *k, Eps: *eps, Scale: scale}
			dc, rec, err := transport.OpenDurable(acc, *dataDir, meta, transport.DurableOptions{Fsync: *fsync, TolerateTornTail: *tornOK, GroupCommitInterval: *walGrp})
			if err != nil {
				fatal(err)
			}
			srv = transport.NewIngestServer(dc)
			statsFn, snapshotFn, closeFn, durable = dc.Stats, dc.Snapshot, dc.Close, dc
			logRecovery(logger, *dataDir, rec, acc.Users())
		} else {
			col := transport.NewShardedCollector(acc)
			srv = transport.NewIngestServer(col)
			statsFn = col.Stats
		}
	}
	srv.ErrorLog = func(err error) { logger.Error("serve", "err", err) }

	// Observability: every serving instrument lives in one registry,
	// mounted at /metrics when -metrics is set. The bounded queue (when
	// -queue is set) sheds acked batches whole under overload and
	// back-pressures legacy batch connections.
	reg := obs.NewRegistry()
	reg.SetInfo("component", "rtf-serve")
	reg.SetInfo("mechanism", *mech)
	obs.RegisterProcessMetrics(reg)
	srv.Metrics = transport.NewServerMetrics(reg)
	if *queue > 0 {
		srv.Queue = transport.NewIngestQueue(*queue)
		srv.Metrics.RegisterQueue(srv.Queue)
	}
	if durable != nil {
		srv.Metrics.RegisterDurability(durable)
	}
	if *member {
		reg.SetInfo("member_id", *id)
		reg.GaugeFunc("membership_epoch", func() float64 { return float64(epochFn()) })
		reg.GaugeFunc("membership_owned_shards", func() float64 { return float64(ownedFn()) })
	}
	metricsAddr := ""
	if *metrics != "" {
		mln, err := net.Listen("tcp", *metrics)
		if err != nil {
			fatal(err)
		}
		metricsAddr = mln.Addr().String()
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg)
		if *pprofOn {
			obs.MountPprof(mux)
		}
		go http.Serve(mln, mux)
	}

	stop := make(chan struct{})
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		logger.Info("draining", "signal", s, "grace", *grace)
		go func() {
			<-sig
			logger.Error("second signal: exiting immediately")
			os.Exit(1)
		}()
		close(stop)
		srv.Shutdown(*grace)
	}()

	if snapshotFn != nil && *snapEvy > 0 {
		go func() {
			tick := time.NewTicker(*snapEvy)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					if _, err := snapshotFn(); err != nil {
						logger.Error("snapshot", "err", err)
					}
				case <-stop:
					return
				}
			}
		}()
	}

	if *stats > 0 {
		go func() {
			tick := time.NewTicker(*stats)
			defer tick.Stop()
			var lastReports int64
			last := time.Now()
			for range tick.C {
				hellos, reports, batches := statsFn()
				now := time.Now()
				rate := float64(reports-lastReports) / now.Sub(last).Seconds()
				logger.Info("throughput", "users", hellos, "reports", reports,
					"batches", batches, "rate", fmt.Sprintf("%.0f", rate))
				lastReports, last = reports, now
			}
		}()
	}

	ready := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr, ready) }()
	select {
	case a := <-ready:
		if *member {
			logger.Info("listening", "addr", a, "metrics", metricsAddr,
				"mechanism", *mech, "d", *d, "k", *k, "m", *m, "eps", *eps,
				"member_id", *id, "vshards", *vshards, "queue", *queue, "durable", snapshotFn != nil)
		} else {
			logger.Info("listening", "addr", a, "metrics", metricsAddr,
				"mechanism", *mech, "d", *d, "k", *k, "m", *m, "eps", *eps,
				"encoding", *encName, "buckets", *buckets,
				"shards", *shards, "queue", *queue, "durable", snapshotFn != nil)
		}
	case err := <-errc:
		fatal(err)
	}
	if err := <-errc; err != nil {
		fatal(err)
	}

	// The serve loop has returned and every connection goroutine has
	// exited: the accumulator is quiescent. Flush the final snapshot so
	// a clean shutdown restarts without any WAL replay.
	if snapshotFn != nil {
		if cursor, err := snapshotFn(); err != nil {
			fatal(err)
		} else {
			logger.Info("final snapshot", "cursor", cursor)
		}
		if err := closeFn(); err != nil {
			fatal(err)
		}
	}
	hellos, reports, batches := statsFn()
	logger.Info("done", "users", hellos, "reports", reports, "batches", batches)
}

// logRecovery reports what boot recovery reconstructed.
func logRecovery(logger *obs.Logger, dataDir string, rec transport.RecoveryStats, users int) {
	if rec.SnapshotCursor > 0 || rec.Replayed > 0 {
		logger.Info("recovered", "dir", dataDir, "cursor", rec.SnapshotCursor,
			"replayed", rec.Replayed, "hellos", rec.Hellos, "reports", rec.Reports, "users", users)
	}
}

// hostable lists the registered mechanisms rtf-serve can host in the
// requested mode.
func hostable(domain bool) string {
	out := ""
	for _, m := range ldp.Mechanisms() {
		if domain && !m.Caps.Domain {
			continue
		}
		if !domain && !m.Caps.Sharded {
			continue
		}
		if out != "" {
			out += ", "
		}
		out += string(m.Protocol)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtf-serve:", err)
	os.Exit(1)
}
