package main

// The -domain acceptance mode: the full domain-valued deployment driven
// end to end. Three rtf-serve backends in domain mode (backend 0
// durable) behind an rtf-gateway ingest a Zipf domain workload over
// TCP; the durable backend is kill -9ed mid-ingest and restarted from
// its snapshot + write-ahead log; and at every stage the item-scoped
// query shapes — PointItem, SeriesItem, TopK — through the gateway are
// checked bit-for-bit against one uninterrupted in-process
// ldp.DomainServer fed the same reports.

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"rtf/internal/hh"
	"rtf/internal/protocol"
	"rtf/internal/transport"
	"rtf/ldp"
)

// domainDriver is the driver state of the -domain mode: the workload,
// the per-user domain client factory (deterministic per-user seeds, so
// the report set is independent of connection and phase layout), and
// the in-process reference server every answer is checked against.
type domainDriver struct {
	w       *ldp.DomainWorkload
	mech    ldp.Protocol
	factory *ldp.DomainClientFactory
	ref     *ldp.DomainServer
	enc     hh.DomainEncoding // zero-valued in exact mode
	eps     float64
	conns   int
	batch   int
	seed    int64

	mu      sync.Mutex // guards ref and the counters
	reports int64
	bytes   int64
}

func newDomainDriver(w *ldp.DomainWorkload, mech ldp.Protocol, eps float64, conns, batch int, seed int64) (*domainDriver, error) {
	if conns < 1 {
		return nil, fmt.Errorf("conns=%d must be >= 1", conns)
	}
	k := maxInt(w.K, 1)
	opts := []ldp.Option{ldp.WithMechanism(mech), ldp.WithSparsity(k), ldp.WithEpsilon(eps)}
	factory, err := ldp.NewDomainClientFactory(w.D, w.M, opts...)
	if err != nil {
		return nil, err
	}
	ref, err := ldp.NewDomainServer(w.D, w.M, opts...)
	if err != nil {
		return nil, err
	}
	return &domainDriver{w: w, mech: mech, factory: factory, ref: ref, eps: eps, conns: conns, batch: batch, seed: seed}, nil
}

// domainFence round-trips a trivial point-item query, proving the
// server applied everything sent earlier on this connection.
func domainFence(enc *transport.Encoder, dec *transport.Decoder) error {
	if err := enc.Encode(transport.DomainQuery(transport.QueryPointItem, 0, 1, 0, 0)); err != nil {
		return err
	}
	if err := enc.Flush(); err != nil {
		return err
	}
	_, err := dec.ReadDomainAnswer()
	return err
}

// sendUsers generates and ships the item-tagged reports of users
// [lo, hi) to the server at addr over the driver's parallel
// connections, folding the same reports into the in-process reference.
// Each connection ends with a fence query, so when sendUsers returns
// the server has applied — and a durable server has journaled —
// everything sent.
func (st *domainDriver) sendUsers(addr string, lo, hi int) error {
	var (
		wg     sync.WaitGroup
		firstE error
	)
	fail := func(err error) {
		st.mu.Lock()
		if firstE == nil {
			firstE = err
		}
		st.mu.Unlock()
	}
	span := hi - lo
	per := (span + st.conns - 1) / st.conns
	for c := 0; c < st.conns; c++ {
		clo, chi := lo+c*per, minInt(lo+(c+1)*per, hi)
		if clo >= chi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				fail(err)
				return
			}
			defer conn.Close()
			enc := transport.NewEncoder(conn)
			dec := transport.NewDecoder(conn)
			buf := make([]transport.Msg, 0, st.batch)
			flush := func() error {
				if len(buf) == 0 {
					return nil
				}
				if err := enc.EncodeBatch(buf); err != nil {
					return err
				}
				buf = buf[:0]
				return nil
			}
			push := func(m transport.Msg) error {
				buf = append(buf, m)
				if len(buf) >= st.batch {
					return flush()
				}
				return nil
			}
			var sent int64
			local := make([]ldp.DomainReport, 0, st.w.D)
			for u := lo; u < hi; u++ {
				cl, err := st.factory.NewClient(u, st.seed+int64(u))
				if err != nil {
					fail(err)
					return
				}
				hello := transport.DomainHello(u, cl.Item(), cl.Order())
				if st.enc.Hashed() {
					// cl.Item() is the sampled bucket under a hashed
					// encoding, and the hello must carry the epoch seed.
					hello = transport.HashedDomainHello(u, cl.Item(), cl.Order(), st.enc.Seed)
				}
				if err := push(hello); err != nil {
					fail(err)
					return
				}
				local = local[:0]
				vals := st.w.Users[u].Values(st.w.D)
				for t := 1; t <= st.w.D; t++ {
					r, ok, err := cl.Observe(vals[t-1])
					if err != nil {
						fail(err)
						return
					}
					if !ok {
						continue
					}
					local = append(local, r)
					if err := push(transport.FromDomainReport(r.Item, protocol.Report{
						User: r.User, Order: r.Order, J: r.J, Bit: r.Bit,
					})); err != nil {
						fail(err)
						return
					}
					sent++
				}
				st.mu.Lock()
				err = st.ref.Register(cl.Item(), cl.Order())
				for _, r := range local {
					if err != nil {
						break
					}
					err = st.ref.Ingest(r)
				}
				st.mu.Unlock()
				if err != nil {
					fail(err)
					return
				}
			}
			if err := flush(); err != nil {
				fail(err)
				return
			}
			if err := enc.Flush(); err != nil {
				fail(err)
				return
			}
			if err := domainFence(enc, dec); err != nil {
				fail(fmt.Errorf("fence query: %w", err))
				return
			}
			st.mu.Lock()
			st.reports += sent
			st.bytes += enc.BytesWritten()
			st.mu.Unlock()
		}(clo, chi)
	}
	wg.Wait()
	return firstE
}

// verify queries the server at addr through every item-scoped shape —
// point-item estimates per item at several times, full series per
// item, and top-k at several (t, k) — and checks each answer
// bit-for-bit (values and items) against the in-process reference. It
// returns the number of values checked.
func (st *domainDriver) verify(addr string) (int, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	enc := transport.NewEncoder(conn)
	dec := transport.NewDecoder(conn)
	w := st.w
	checked := 0

	ask := func(q transport.Msg) (transport.DomainAnswerFrame, error) {
		if err := enc.Encode(q); err != nil {
			return transport.DomainAnswerFrame{}, err
		}
		if err := enc.Flush(); err != nil {
			return transport.DomainAnswerFrame{}, err
		}
		return dec.ReadDomainAnswer()
	}
	for x := 0; x < w.M; x++ {
		for _, t := range []int{1, w.D / 2, w.D} {
			a, err := ask(transport.DomainQuery(transport.QueryPointItem, x, t, 0, 0))
			if err != nil {
				return 0, fmt.Errorf("point-item(%d, %d): %w", x, t, err)
			}
			want, err := st.ref.Answer(ldp.PointItemQuery(x, t))
			if err != nil {
				return 0, err
			}
			if len(a.Values) != 1 || a.Values[0] != want.Value {
				return 0, fmt.Errorf("point-item(%d, %d): server %v, in-process %v", x, t, a.Values, want.Value)
			}
			checked++
		}
		a, err := ask(transport.DomainQuery(transport.QuerySeriesItem, x, 0, 0, 0))
		if err != nil {
			return 0, fmt.Errorf("series-item(%d): %w", x, err)
		}
		want, err := st.ref.Answer(ldp.SeriesItemQuery(x))
		if err != nil {
			return 0, err
		}
		if len(a.Values) != len(want.Series) {
			return 0, fmt.Errorf("series-item(%d): %d values, want %d", x, len(a.Values), len(want.Series))
		}
		for i := range want.Series {
			if a.Values[i] != want.Series[i] {
				return 0, fmt.Errorf("series-item(%d) t=%d: server %v, in-process %v", x, i+1, a.Values[i], want.Series[i])
			}
			checked++
		}
	}
	for _, tk := range [][2]int{{w.D, w.M}, {w.D, 3}, {w.D / 2, 1}, {1, w.M}} {
		t, k := tk[0], tk[1]
		a, err := ask(transport.DomainQuery(transport.QueryTopK, 0, t, 0, k))
		if err != nil {
			return 0, fmt.Errorf("top-k(%d, %d): %w", t, k, err)
		}
		want, err := st.ref.Answer(ldp.TopKQuery(t, k))
		if err != nil {
			return 0, err
		}
		if len(a.Items) != len(want.Items) || len(a.Values) != len(want.Series) {
			return 0, fmt.Errorf("top-k(%d, %d): shape %d/%d, want %d", t, k, len(a.Items), len(a.Values), len(want.Items))
		}
		for i := range want.Items {
			if a.Items[i] != want.Items[i] || a.Values[i] != want.Series[i] {
				return 0, fmt.Errorf("top-k(%d, %d) rank %d: server (%d, %v), in-process (%d, %v)",
					t, k, i, a.Items[i], a.Values[i], want.Items[i], want.Series[i])
			}
			checked += 2
		}
	}
	return checked, nil
}

// runDomain is the domain acceptance test: spawn three domain-mode
// rtf-serve backends (backend 0 durable) and a domain rtf-gateway,
// ingest half the Zipf workload through the gateway, kill -9 the
// durable backend mid-ingest, restart it on the same port and data
// directory, and verify — after recovery and again after the remaining
// users — that every item-scoped answer through the gateway is
// bit-for-bit the uninterrupted in-process DomainServer's. Everything
// is finally SIGTERMed and must drain and exit 0.
func runDomain(st *domainDriver, serveBin, gatewayBin, mech string, d, k, m int, eps float64) error {
	const nBackends = 3
	sBin, err := findBin(serveBin, "rtf-serve")
	if err != nil {
		return fmt.Errorf("finding rtf-serve (-serve-bin): %w", err)
	}
	gBin, err := findBin(gatewayBin, "rtf-gateway")
	if err != nil {
		return fmt.Errorf("finding rtf-gateway (-gateway-bin): %w", err)
	}
	tmp, err := os.MkdirTemp("", "rtf-domain-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	dataDir := filepath.Join(tmp, "backend0")

	common := []string{
		"-mechanism", mech,
		"-d", fmt.Sprint(d),
		"-k", fmt.Sprint(k),
		"-m", fmt.Sprint(m),
		"-eps", fmt.Sprint(eps),
	}
	durableArgs := func(addr string) []string {
		return append([]string{
			"-addr", addr,
			"-data-dir", dataDir,
			"-fsync",
			"-snapshot-every", "300ms", // exercise snapshot+WAL interplay mid-run
			"-grace", "10s",
		}, common...)
	}

	start := time.Now()
	backends := make([]*serveProc, nBackends)
	addrs := make([]string, nBackends)
	defer func() {
		for _, p := range backends {
			if p != nil {
				p.kill()
			}
		}
	}()
	for i := 0; i < nBackends; i++ {
		args := append([]string{"-addr", "127.0.0.1:0"}, common...)
		if i == 0 {
			args = durableArgs("127.0.0.1:0")
		}
		p, a, err := startProc(sBin, fmt.Sprintf("backend%d", i), args)
		if err != nil {
			return fmt.Errorf("starting backend %d: %w", i, err)
		}
		backends[i], addrs[i] = p, a
	}

	gwArgs := append([]string{
		"-addr", "127.0.0.1:0",
		"-backends", strings.Join(addrs, ","),
		"-grace", "10s",
	}, common...)
	gw, gwAddr, err := startProc(gBin, "rtf-gateway", gwArgs)
	if err != nil {
		return fmt.Errorf("starting rtf-gateway: %w", err)
	}
	defer func() {
		if gw != nil {
			gw.kill()
		}
	}()

	// Phase 1 lands in two chunks with a pause long enough for a
	// periodic snapshot on backend 0, so the kill tests real mixed
	// recovery (snapshot + WAL suffix), not a full-log replay.
	half := st.w.N / 2
	fmt.Printf("domain     phase 1: %d users -> gateway %s over %d backends (backend 0 durable at %s)\n",
		half, gwAddr, nBackends, dataDir)
	if err := st.sendUsers(gwAddr, 0, half/2); err != nil {
		return err
	}
	time.Sleep(700 * time.Millisecond) // > -snapshot-every: let a snapshot cover the prefix
	if err := st.sendUsers(gwAddr, half/2, half); err != nil {
		return err
	}
	if _, err := st.verify(gwAddr); err != nil {
		return fmt.Errorf("pre-crash verification: %w", err)
	}

	// The kill must land mid-ingest on the durable backend. A doomed
	// connection streams phantom-user domain-hello batches through the
	// gateway, with user ids ≡ 0 mod nBackends so every one routes to
	// backend 0. Hellos hit backend 0's WAL and per-item user counters
	// but never the interval sums, so whatever prefix survives the
	// crash, every estimate — and so every top-k ordering — the
	// verifications below check stays exactly the in-process engine's.
	doomedConn, err := net.Dial("tcp", gwAddr)
	if err != nil {
		return err
	}
	doomed := make(chan struct{})
	go func() {
		defer close(doomed)
		enc := transport.NewEncoder(doomedConn)
		batch := make([]transport.Msg, 64)
		for u := 0; ; u++ {
			for i := range batch {
				batch[i] = transport.DomainHello(6_000_000+(u*len(batch)+i)*nBackends, 0, 0)
			}
			if err := enc.EncodeBatch(batch); err != nil {
				return
			}
			if err := enc.Flush(); err != nil {
				return // the connection was closed under us: done
			}
		}
	}()
	time.Sleep(50 * time.Millisecond) // let the doomed stream get going
	fmt.Printf("domain     kill -9 backend 0 (pid %d) mid-ingest\n", backends[0].cmd.Process.Pid)
	if err := backends[0].cmd.Process.Kill(); err != nil {
		return err
	}
	backends[0].wait() // "signal: killed" is the expected outcome
	backends[0] = nil
	doomedConn.Close()
	<-doomed

	// Restart backend 0 on the same port (the gateway's backend list is
	// fixed) and data directory: boot recovery = snapshot + WAL suffix.
	restarted, raddr, err := startProc(sBin, "backend0", durableArgs(addrs[0]))
	if err != nil {
		return fmt.Errorf("restarting backend 0 after kill: %w", err)
	}
	backends[0] = restarted
	if raddr != addrs[0] {
		return fmt.Errorf("backend 0 restarted at %s, want %s", raddr, addrs[0])
	}
	if checked, err := st.verify(gwAddr); err != nil {
		return fmt.Errorf("post-recovery verification through the gateway: %w", err)
	} else {
		fmt.Printf("domain     backend 0 recovered: %d values bit-for-bit through the gateway\n", checked)
	}

	fmt.Printf("domain     phase 2: %d users -> gateway %s\n", st.w.N-half, gwAddr)
	if err := st.sendUsers(gwAddr, half, st.w.N); err != nil {
		return err
	}
	elapsed := time.Since(start)
	checked, err := st.verify(gwAddr)
	if err != nil {
		return fmt.Errorf("final verification: %w", err)
	}

	// Graceful shutdown, front to back: the gateway and every backend
	// must drain and exit 0 on SIGTERM (backend 0 flushing a final
	// snapshot).
	if err := gw.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	if err := gw.wait(); err != nil {
		return fmt.Errorf("rtf-gateway did not exit 0 on SIGTERM: %w", err)
	}
	gw = nil
	for i, p := range backends {
		if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			return err
		}
		if err := p.wait(); err != nil {
			return fmt.Errorf("backend %d did not exit 0 on SIGTERM: %w", i, err)
		}
		backends[i] = nil
	}

	fmt.Printf("domain mechanism=%s n=%d d=%d k=%d m=%d eps=%v conns=%d batch=%d seed=%d backends=%d\n",
		st.mech, st.w.N, st.w.D, st.w.K, st.w.M, eps, st.conns, st.batch, st.seed, nBackends)
	fmt.Printf("reports    %d (%d users over %d items)\n", st.reports, st.w.N, st.w.M)
	fmt.Printf("wire bytes %d\n", st.bytes)
	fmt.Printf("elapsed    %v (%.0f reports/s)\n", elapsed.Round(time.Millisecond), float64(st.reports)/elapsed.Seconds())
	fmt.Printf("checked    %d item-scoped values (PointItem, SeriesItem, TopK) bit-for-bit\n", checked)
	fmt.Println("domain     kill -9 + restart of the durable backend recovered bit-for-bit; gateway and backends drained and exited 0")
	return nil
}
