// Command rtf-sim runs one end-to-end protocol execution on a synthetic
// workload and reports error metrics, optionally dumping the estimate
// series as CSV.
//
// With -drive it instead load-tests a running rtf-serve aggregation
// service: per-user clients of the selected mechanism (any mechanism
// rtf-serve can host: futurerand, independent, bun, erlingsson)
// generate real randomized reports, ship them over -conns parallel TCP
// connections in batches of -batch messages, and the driver then
// queries the server through every query shape — v1 point queries plus
// versioned point, change, series and window frames — and checks each
// answer is bit-for-bit identical to an in-process server fed the same
// reports. The server must be started with the same -mechanism, -d, -k
// and -eps.
//
// Examples:
//
//	rtf-sim -n 50000 -d 1024 -k 8 -eps 1.0
//	rtf-sim -protocol erlingsson -workload bursty -series
//	rtf-sim -protocol futurerand -consistency -n 100000
//	rtf-serve -addr :7609 -d 256 -k 4 &
//	rtf-sim -drive localhost:7609 -n 10000 -d 256 -k 4 -conns 8 -batch 256
//	rtf-serve -addr :7609 -mechanism erlingsson -d 256 -k 4 &
//	rtf-sim -drive localhost:7609 -protocol erlingsson -n 10000 -d 256 -k 4
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"rtf/internal/transport"
	"rtf/ldp"
	"rtf/workload"
)

func main() {
	var (
		n       = flag.Int("n", 10000, "number of users")
		d       = flag.Int("d", 256, "time periods (power of two)")
		k       = flag.Int("k", 4, "max changes per user")
		eps     = flag.Float64("eps", 1.0, "privacy budget (0 < eps <= 1)")
		proto   = flag.String("protocol", "futurerand", "protocol: futurerand|independent|bun|erlingsson|naive-split|central-binary")
		wl      = flag.String("workload", "uniform", "workload: uniform|max-changes|bursty|zipf|step|adversarial|periodic|static")
		seed    = flag.Int64("seed", 1, "random seed")
		exact   = flag.Bool("exact", false, "use the exact per-user engine")
		consist = flag.Bool("consistency", false, "apply consistency post-processing")
		series  = flag.Bool("series", false, "print the t,truth,estimate series as CSV")
		wlOut   = flag.String("write-workload", "", "write the generated workload as CSV to this file")
		wlIn    = flag.String("read-workload", "", "read the workload from this CSV file instead of generating")
		drive   = flag.String("drive", "", "load-test a running rtf-serve at this address instead of simulating (the server must be freshly started: the bit-for-bit check compares its cumulative state against this run alone)")
		conns   = flag.Int("conns", 4, "parallel connections in -drive mode")
		batch   = flag.Int("batch", 256, "messages per batch frame in -drive mode")
	)
	flag.Parse()

	w, err := loadWorkload(*wlIn, *wl, *n, *d, *k, *seed)
	if err != nil {
		fatal(err)
	}

	if *drive != "" {
		mech := ldp.Protocol(*proto)
		if m, ok := ldp.Lookup(mech); !ok || !m.Caps.Sharded {
			fatal(fmt.Errorf("-drive needs a mechanism rtf-serve can host (sharded capability), got %q", *proto))
		}
		if *exact || *consist {
			fatal(fmt.Errorf("-drive does not support -exact or -consistency"))
		}
		if err := runDrive(*drive, w, mech, *k, *eps, *conns, *batch, *seed); err != nil {
			fatal(err)
		}
		return
	}
	if *wlOut != "" {
		f, err := os.Create(*wlOut)
		if err != nil {
			fatal(err)
		}
		if err := w.WriteCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	start := time.Now()
	res, err := ldp.Track(w, ldp.Options{
		Protocol:    ldp.Protocol(*proto),
		Epsilon:     *eps,
		Exact:       *exact,
		Consistency: *consist,
		Seed:        *seed,
	})
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("protocol=%s workload=%s n=%d d=%d k=%d eps=%v seed=%d\n",
		res.Protocol, *wl, w.N, w.D, w.K, *eps, *seed)
	fmt.Printf("max error  %.1f\n", res.MaxError)
	fmt.Printf("MAE        %.1f\n", res.MAE)
	fmt.Printf("RMSE       %.1f\n", res.RMSE)
	if res.HoeffdingBound > 0 {
		fmt.Printf("Hoeffding bound (beta=0.05)  %.1f  (slack %.1fx)\n",
			res.HoeffdingBound, res.HoeffdingBound/res.MaxError)
	}
	fmt.Printf("elapsed    %v\n", elapsed.Round(time.Millisecond))

	if *series {
		fmt.Println("t,truth,estimate")
		for t := 1; t <= w.D; t++ {
			fmt.Printf("%d,%d,%.2f\n", t, res.Truth[t-1], res.Estimates[t-1])
		}
	}
}

func loadWorkload(path, spec string, n, d, k int, seed int64) (*workload.Workload, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return workload.ReadCSV(f)
	}
	var s workload.Spec
	switch spec {
	case "uniform":
		s = workload.Uniform{N: n, D: d, K: k}
	case "max-changes":
		s = workload.MaxChanges{N: n, D: d, K: k}
	case "bursty":
		s = workload.Bursty{N: n, D: d, K: k, Start: d / 4, End: d / 2, InBurst: 0.8}
	case "zipf":
		s = workload.ZipfActivity{N: n, D: d, K: k, S: 1.5}
	case "step":
		s = workload.Step{N: n, D: d, T0: d / 2, Jitter: d / 16, Fraction: 0.5}
	case "adversarial":
		s = workload.Adversarial{N: n, D: d, K: k}
	case "periodic":
		s = workload.Periodic{N: n, D: d, K: k, Period: maxInt(1, d/8)}
	case "static":
		s = workload.Static{N: n, D: d}
	default:
		return nil, fmt.Errorf("unknown workload %q", spec)
	}
	return workload.Generate(s, seed)
}

// runDrive load-tests an rtf-serve instance hosting the given mechanism:
// it generates every user's reports with the real client algorithm
// (deterministic per-user seeds, so the report set is independent of how
// users are spread over connections), ships them as batch frames over
// conns parallel TCP connections via the public ldp.BatchReporter, then
// queries the server through every query shape and verifies each answer
// bit-for-bit against an in-process ldp.Server fed the same reports.
func runDrive(addr string, w *workload.Workload, mech ldp.Protocol, k int, eps float64, conns, batch int, seed int64) error {
	if conns < 1 {
		return fmt.Errorf("conns=%d must be >= 1", conns)
	}
	kk := maxInt(k, 1)
	opts := []ldp.Option{ldp.WithMechanism(mech), ldp.WithSparsity(kk), ldp.WithEpsilon(eps)}
	factory, err := ldp.NewClientFactory(w.D, opts...)
	if err != nil {
		return err
	}
	ref, err := ldp.NewServer(w.D, opts...)
	if err != nil {
		return err
	}

	start := time.Now()
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex // guards ref, firstE and the counters
		firstE  error
		reports int64
		bytes   int64
	)
	fail := func(err error) {
		mu.Lock()
		if firstE == nil {
			firstE = err
		}
		mu.Unlock()
	}
	per := (w.N + conns - 1) / conns
	for c := 0; c < conns; c++ {
		lo, hi := c*per, minInt((c+1)*per, w.N)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				fail(err)
				return
			}
			defer conn.Close()
			rep, err := ldp.NewBatchReporter(conn, batch)
			if err != nil {
				fail(err)
				return
			}
			var sent int64
			// One user's reports are buffered locally and folded into the
			// in-process reference under one lock per user: counter
			// ingestion is commutative integer addition, so the estimates
			// equal live ingestion, without per-report lock traffic on the
			// send loop or retaining the whole report set in memory.
			local := make([]ldp.Report, 0, w.D)
			for u := lo; u < hi; u++ {
				cl, err := factory.NewClient(u, seed+int64(u))
				if err != nil {
					fail(err)
					return
				}
				if err := rep.Hello(u, cl.Order()); err != nil {
					fail(err)
					return
				}
				local = local[:0]
				vals := w.Users[u].Values(w.D)
				for t := 1; t <= w.D; t++ {
					r, ok := cl.Observe(vals[t-1] == 1)
					if !ok {
						continue
					}
					local = append(local, r)
					if err := rep.Report(r); err != nil {
						fail(err)
						return
					}
					sent++
				}
				mu.Lock()
				err = ref.Register(cl.Order())
				for _, r := range local {
					if err != nil {
						break
					}
					err = ref.Ingest(r)
				}
				mu.Unlock()
				if err != nil {
					fail(err)
					return
				}
			}
			if err := rep.Flush(); err != nil {
				fail(err)
				return
			}
			// Fence: a query response proves the server applied everything
			// this connection sent before it.
			enc := transport.NewEncoder(conn)
			if err := enc.Encode(transport.Query(1)); err != nil {
				fail(err)
				return
			}
			if err := enc.Flush(); err != nil {
				fail(err)
				return
			}
			if _, err := transport.NewDecoder(conn).Next(); err != nil {
				fail(fmt.Errorf("fence query: %w", err))
				return
			}
			mu.Lock()
			reports += sent
			bytes += rep.BytesWritten()
			mu.Unlock()
		}(lo, hi)
	}
	wg.Wait()
	if firstE != nil {
		return firstE
	}
	elapsed := time.Since(start)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	enc := transport.NewEncoder(conn)
	dec := transport.NewDecoder(conn)

	// Point estimates for every period through the v1 protocol.
	for t := 1; t <= w.D; t++ {
		if err := enc.Encode(transport.Query(t)); err != nil {
			return err
		}
	}
	if err := enc.Flush(); err != nil {
		return err
	}
	mismatches := 0
	est := make([]float64, w.D)
	for t := 1; t <= w.D; t++ {
		m, err := dec.Next()
		if err != nil {
			return err
		}
		if m.Type != transport.MsgEstimate || m.T != t {
			return fmt.Errorf("unexpected query response %+v at t=%d", m, t)
		}
		est[t-1] = m.Value
		want, err := ref.EstimateAt(t)
		if err != nil {
			return err
		}
		if m.Value != want {
			mismatches++
			if mismatches <= 3 {
				fmt.Fprintf(os.Stderr, "rtf-sim: t=%d server=%v in-process=%v\n", t, m.Value, want)
			}
		}
	}
	if mismatches > 0 {
		return fmt.Errorf("%d of %d point estimates differ from the in-process engine", mismatches, w.D)
	}

	// The versioned query shapes: point, change, series, window — each
	// checked bit-for-bit against the in-process Server.Answer.
	v2 := []ldp.Query{
		ldp.PointQuery(1),
		ldp.PointQuery(w.D),
		ldp.ChangeQuery(1, w.D),
		ldp.ChangeQuery(w.D/4+1, w.D/2),
		ldp.SeriesQuery(),
		ldp.WindowQuery(1, w.D),
		ldp.WindowQuery(w.D/2, w.D/2+1),
	}
	checked := 0
	for _, q := range v2 {
		got, err := queryV2(enc, dec, q)
		if err != nil {
			return fmt.Errorf("%s query: %w", q.Kind, err)
		}
		want, err := ref.Answer(q)
		if err != nil {
			return err
		}
		wantVals := want.Series
		if q.Kind == ldp.Point || q.Kind == ldp.Change {
			wantVals = []float64{want.Value}
		}
		if len(got) != len(wantVals) {
			return fmt.Errorf("%s query: %d values, want %d", q.Kind, len(got), len(wantVals))
		}
		for i := range got {
			if got[i] != wantVals[i] {
				return fmt.Errorf("%s query value %d: server=%v in-process=%v", q.Kind, i, got[i], wantVals[i])
			}
			checked++
		}
	}

	fmt.Printf("drive addr=%s mechanism=%s n=%d d=%d k=%d eps=%v conns=%d batch=%d seed=%d\n",
		addr, mech, w.N, w.D, w.K, eps, conns, batch, seed)
	fmt.Printf("reports    %d (%d users)\n", reports, w.N)
	fmt.Printf("wire bytes %d (%.1f B/report)\n", bytes, float64(bytes)/float64(maxInt64(reports, 1)))
	fmt.Printf("elapsed    %v (%.0f reports/s)\n", elapsed.Round(time.Millisecond), float64(reports)/elapsed.Seconds())
	truth := w.Truth()
	var maxErr float64
	for t := 1; t <= w.D; t++ {
		if e := abs(est[t-1] - float64(truth[t-1])); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("max error  %.1f\n", maxErr)
	fmt.Printf("estimates  bit-for-bit identical to the in-process engine (%d point + %d v2 values)\n", w.D, checked)
	return nil
}

// queryV2 sends one versioned query and decodes the answer values.
func queryV2(enc *transport.Encoder, dec *transport.Decoder, q ldp.Query) ([]float64, error) {
	l, r := q.L, q.R
	if q.Kind == ldp.Point {
		l, r = q.T, q.T
	}
	if err := enc.Encode(transport.QueryV2(transport.QueryKind(q.Kind), l, r)); err != nil {
		return nil, err
	}
	if err := enc.Flush(); err != nil {
		return nil, err
	}
	a, err := dec.ReadAnswer()
	if err != nil {
		return nil, err
	}
	if a.Kind != transport.QueryKind(q.Kind) {
		return nil, fmt.Errorf("answer kind %s for %s query", a.Kind, q.Kind)
	}
	return a.Values, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtf-sim:", err)
	os.Exit(1)
}
