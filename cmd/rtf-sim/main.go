// Command rtf-sim runs one end-to-end protocol execution on a synthetic
// workload and reports error metrics, optionally dumping the estimate
// series as CSV.
//
// With -drive it instead load-tests a running rtf-serve aggregation
// service: per-user clients generate real randomized reports, ship them
// over -conns parallel TCP connections in batches of -batch messages,
// and the driver then queries every period's estimate back and checks it
// is bit-for-bit identical to an in-process serial server fed the same
// reports. The server must be started with the same -d, -k and -eps.
//
// Examples:
//
//	rtf-sim -n 50000 -d 1024 -k 8 -eps 1.0
//	rtf-sim -protocol erlingsson -workload bursty -series
//	rtf-sim -protocol futurerand -consistency -n 100000
//	rtf-serve -addr :7609 -d 256 -k 4 &
//	rtf-sim -drive localhost:7609 -n 10000 -d 256 -k 4 -conns 8 -batch 256
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"rtf/internal/protocol"
	"rtf/internal/rng"
	"rtf/internal/transport"
	"rtf/ldp"
	"rtf/workload"
)

func main() {
	var (
		n       = flag.Int("n", 10000, "number of users")
		d       = flag.Int("d", 256, "time periods (power of two)")
		k       = flag.Int("k", 4, "max changes per user")
		eps     = flag.Float64("eps", 1.0, "privacy budget (0 < eps <= 1)")
		proto   = flag.String("protocol", "futurerand", "protocol: futurerand|independent|bun|erlingsson|naive-split|central-binary")
		wl      = flag.String("workload", "uniform", "workload: uniform|max-changes|bursty|zipf|step|adversarial|periodic|static")
		seed    = flag.Int64("seed", 1, "random seed")
		exact   = flag.Bool("exact", false, "use the exact per-user engine")
		consist = flag.Bool("consistency", false, "apply consistency post-processing")
		series  = flag.Bool("series", false, "print the t,truth,estimate series as CSV")
		wlOut   = flag.String("write-workload", "", "write the generated workload as CSV to this file")
		wlIn    = flag.String("read-workload", "", "read the workload from this CSV file instead of generating")
		drive   = flag.String("drive", "", "load-test a running rtf-serve at this address instead of simulating (the server must be freshly started: the bit-for-bit check compares its cumulative state against this run alone)")
		conns   = flag.Int("conns", 4, "parallel connections in -drive mode")
		batch   = flag.Int("batch", 256, "messages per batch frame in -drive mode")
	)
	flag.Parse()

	w, err := loadWorkload(*wlIn, *wl, *n, *d, *k, *seed)
	if err != nil {
		fatal(err)
	}

	if *drive != "" {
		// Drive mode generates reports with the futurerand client only;
		// reject flags it would otherwise silently ignore.
		if *proto != "futurerand" {
			fatal(fmt.Errorf("-drive supports only -protocol futurerand (got %q)", *proto))
		}
		if *exact || *consist {
			fatal(fmt.Errorf("-drive does not support -exact or -consistency"))
		}
		if err := runDrive(*drive, w, *k, *eps, *conns, *batch, *seed); err != nil {
			fatal(err)
		}
		return
	}
	if *wlOut != "" {
		f, err := os.Create(*wlOut)
		if err != nil {
			fatal(err)
		}
		if err := w.WriteCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	start := time.Now()
	res, err := ldp.Track(w, ldp.Options{
		Protocol:    ldp.Protocol(*proto),
		Epsilon:     *eps,
		Exact:       *exact,
		Consistency: *consist,
		Seed:        *seed,
	})
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("protocol=%s workload=%s n=%d d=%d k=%d eps=%v seed=%d\n",
		res.Protocol, *wl, w.N, w.D, w.K, *eps, *seed)
	fmt.Printf("max error  %.1f\n", res.MaxError)
	fmt.Printf("MAE        %.1f\n", res.MAE)
	fmt.Printf("RMSE       %.1f\n", res.RMSE)
	if res.HoeffdingBound > 0 {
		fmt.Printf("Hoeffding bound (beta=0.05)  %.1f  (slack %.1fx)\n",
			res.HoeffdingBound, res.HoeffdingBound/res.MaxError)
	}
	fmt.Printf("elapsed    %v\n", elapsed.Round(time.Millisecond))

	if *series {
		fmt.Println("t,truth,estimate")
		for t := 1; t <= w.D; t++ {
			fmt.Printf("%d,%d,%.2f\n", t, res.Truth[t-1], res.Estimates[t-1])
		}
	}
}

func loadWorkload(path, spec string, n, d, k int, seed int64) (*workload.Workload, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return workload.ReadCSV(f)
	}
	var s workload.Spec
	switch spec {
	case "uniform":
		s = workload.Uniform{N: n, D: d, K: k}
	case "max-changes":
		s = workload.MaxChanges{N: n, D: d, K: k}
	case "bursty":
		s = workload.Bursty{N: n, D: d, K: k, Start: d / 4, End: d / 2, InBurst: 0.8}
	case "zipf":
		s = workload.ZipfActivity{N: n, D: d, K: k, S: 1.5}
	case "step":
		s = workload.Step{N: n, D: d, T0: d / 2, Jitter: d / 16, Fraction: 0.5}
	case "adversarial":
		s = workload.Adversarial{N: n, D: d, K: k}
	case "periodic":
		s = workload.Periodic{N: n, D: d, K: k, Period: maxInt(1, d/8)}
	case "static":
		s = workload.Static{N: n, D: d}
	default:
		return nil, fmt.Errorf("unknown workload %q", spec)
	}
	return workload.Generate(s, seed)
}

// runDrive load-tests an rtf-serve instance: it generates every user's
// reports with the real client algorithm (deterministic per-user seeds,
// so the report set is independent of how users are spread over
// connections), ships them as batch frames over conns parallel TCP
// connections via the public ldp.BatchReporter, then queries all d
// estimates back and verifies them bit-for-bit against an in-process
// serial server fed the same reports.
func runDrive(addr string, w *workload.Workload, k int, eps float64, conns, batch int, seed int64) error {
	if conns < 1 {
		return fmt.Errorf("conns=%d must be >= 1", conns)
	}
	kk := maxInt(k, 1)
	factories, err := protocol.FutureRandFactories(w.D, kk, eps)
	if err != nil {
		return err
	}
	scale := protocol.EstimatorScale(w.D, factories[0].CGap())

	start := time.Now()
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		firstE  error
		shards  = make([]*protocol.Server, conns)
		reports int64
		bytes   int64
	)
	fail := func(err error) {
		mu.Lock()
		if firstE == nil {
			firstE = err
		}
		mu.Unlock()
	}
	per := (w.N + conns - 1) / conns
	for c := 0; c < conns; c++ {
		lo, hi := c*per, minInt((c+1)*per, w.N)
		shards[c] = protocol.NewServer(w.D, scale)
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			local := shards[c]
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				fail(err)
				return
			}
			defer conn.Close()
			rep, err := ldp.NewBatchReporter(conn, batch)
			if err != nil {
				fail(err)
				return
			}
			var sent int64
			for u := lo; u < hi; u++ {
				g := rng.NewFromSeed(seed + int64(u))
				cl := protocol.NewClient(u, w.D, factories, g)
				local.Register(cl.Order())
				if err := rep.Hello(u, cl.Order()); err != nil {
					fail(err)
					return
				}
				vals := w.Users[u].Values(w.D)
				for t := 1; t <= w.D; t++ {
					r, ok := cl.Observe(vals[t-1])
					if !ok {
						continue
					}
					local.Ingest(r)
					if err := rep.Report(ldp.Report{User: r.User, Order: r.Order, J: r.J, Bit: r.Bit}); err != nil {
						fail(err)
						return
					}
					sent++
				}
			}
			if err := rep.Flush(); err != nil {
				fail(err)
				return
			}
			// Fence: a query response proves the server applied everything
			// this connection sent before it.
			enc := transport.NewEncoder(conn)
			if err := enc.Encode(transport.Query(1)); err != nil {
				fail(err)
				return
			}
			if err := enc.Flush(); err != nil {
				fail(err)
				return
			}
			if _, err := transport.NewDecoder(conn).Next(); err != nil {
				fail(fmt.Errorf("fence query: %w", err))
				return
			}
			mu.Lock()
			reports += sent
			bytes += rep.BytesWritten()
			mu.Unlock()
		}(c, lo, hi)
	}
	wg.Wait()
	if firstE != nil {
		return firstE
	}
	elapsed := time.Since(start)

	// Serial reference: fold the per-connection servers (exact integer
	// addition, so the result equals one server fed every report).
	serial := protocol.NewServer(w.D, scale)
	for _, s := range shards {
		serial.Merge(s)
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	enc := transport.NewEncoder(conn)
	dec := transport.NewDecoder(conn)
	for t := 1; t <= w.D; t++ {
		if err := enc.Encode(transport.Query(t)); err != nil {
			return err
		}
	}
	if err := enc.Flush(); err != nil {
		return err
	}
	mismatches := 0
	est := make([]float64, w.D)
	for t := 1; t <= w.D; t++ {
		m, err := dec.Next()
		if err != nil {
			return err
		}
		if m.Type != transport.MsgEstimate || m.T != t {
			return fmt.Errorf("unexpected query response %+v at t=%d", m, t)
		}
		est[t-1] = m.Value
		if want := serial.EstimateAt(t); m.Value != want {
			mismatches++
			if mismatches <= 3 {
				fmt.Fprintf(os.Stderr, "rtf-sim: t=%d server=%v serial=%v\n", t, m.Value, want)
			}
		}
	}

	fmt.Printf("drive addr=%s n=%d d=%d k=%d eps=%v conns=%d batch=%d seed=%d\n",
		addr, w.N, w.D, w.K, eps, conns, batch, seed)
	fmt.Printf("reports    %d (%d users)\n", reports, w.N)
	fmt.Printf("wire bytes %d (%.1f B/report)\n", bytes, float64(bytes)/float64(maxInt64(reports, 1)))
	fmt.Printf("elapsed    %v (%.0f reports/s)\n", elapsed.Round(time.Millisecond), float64(reports)/elapsed.Seconds())
	truth := w.Truth()
	var maxErr float64
	for t := 1; t <= w.D; t++ {
		if e := abs(est[t-1] - float64(truth[t-1])); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("max error  %.1f\n", maxErr)
	if mismatches > 0 {
		return fmt.Errorf("%d of %d estimates differ from the serial engine", mismatches, w.D)
	}
	fmt.Printf("estimates  bit-for-bit identical to the serial engine (%d periods)\n", w.D)
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtf-sim:", err)
	os.Exit(1)
}
