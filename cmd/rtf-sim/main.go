// Command rtf-sim runs one end-to-end protocol execution on a synthetic
// workload and reports error metrics, optionally dumping the estimate
// series as CSV.
//
// With -drive it instead load-tests a running rtf-serve aggregation
// service: per-user clients of the selected mechanism (any mechanism
// rtf-serve can host: futurerand, independent, bun, erlingsson)
// generate real randomized reports, ship them over -conns parallel TCP
// connections in batches of -batch messages, and the driver then
// queries the server through every query shape — v1 point queries plus
// versioned point, change, series and window frames — and checks each
// answer is bit-for-bit identical to an in-process server fed the same
// reports. The server must be started with the same -mechanism, -d, -k
// and -eps.
//
// With -recover it runs the crash-recovery acceptance test end to end:
// it spawns its own rtf-serve (found via -serve-bin, next to this
// binary, or on $PATH) with a fresh data directory, ingests half the
// users, kill -9s the server mid-ingest, restarts it from its snapshot
// and write-ahead log, and verifies — before and after ingesting the
// remaining half — that Point, Change, Series and Window answers are
// bit-for-bit identical to an uninterrupted in-process engine. The
// restarted server is finally SIGTERMed and must drain and exit 0.
//
// With -cluster it runs the same discipline against the scatter/gather
// deployment: it spawns three rtf-serve backends (backend 0 durable)
// and an rtf-gateway (found via -gateway-bin) partitioning users across
// them, ingests through the gateway, kill -9s the durable backend
// mid-ingest, restarts it on the same port and data directory, and
// verifies all four query shapes through the gateway bit-for-bit
// against an uninterrupted in-process engine. Gateway and backends are
// finally SIGTERMed and must drain and exit 0.
//
// Examples:
//
//	rtf-sim -n 50000 -d 1024 -k 8 -eps 1.0
//	rtf-sim -protocol erlingsson -workload bursty -series
//	rtf-sim -protocol futurerand -consistency -n 100000
//	rtf-serve -addr :7609 -d 256 -k 4 &
//	rtf-sim -drive localhost:7609 -n 10000 -d 256 -k 4 -conns 8 -batch 256
//	rtf-sim -recover -n 4000 -d 256 -k 4 -conns 4
//	rtf-sim -cluster -n 4000 -d 256 -k 4 -conns 4
//	rtf-sim -domain -n 3000 -d 256 -k 4 -m 8 -conns 4
//	rtf-sim -membership -n 3000 -d 256 -k 4 -conns 4
//	rtf-sim -membership -domain -n 3000 -d 256 -k 4 -m 8 -conns 4
//	rtf-sim -soak -duration 60s -qps 3000 -queue 2 -conns 4
//	rtf-sim -soak -duration 60s -qps 3000 -queue 2 -soak-backends 2
//
// With -domain it runs the domain acceptance test: the same
// kill -9/recover discipline as -cluster, but against the richer-domain
// deployment — three domain-mode rtf-serve backends and a domain
// rtf-gateway ingest a Zipf domain workload over TCP, and the
// item-scoped query shapes (PointItem, SeriesItem, TopK) through the
// gateway are verified bit-for-bit against an uninterrupted in-process
// DomainServer, before the crash, after snapshot+WAL recovery, and
// after the remaining users.
//
// With -membership it runs the dynamic-membership acceptance test: an
// rtf-gateway -members front over three rtf-serve -membership backends
// (K=2 replicas, 16 virtual shards) ingests the workload in thirds; a
// fourth backend joins by the reshard API mid-ingest (the rendezvous
// plan must move only ~1/N of the shard replicas), one backend drains
// via snapshot handoff and must SIGTERM-exit 0, and one surviving
// replica is kill -9ed under a doomed ingest stream aimed at its own
// shards — with every query shape checked bit-for-bit against an
// uninterrupted in-process engine at every stage. Combined with
// -domain the same choreography runs over the domain deployment.
//
// With -soak it runs the operational-envelope check: it spawns a
// topology (one durable fsync'd rtf-serve, or with -soak-backends N an
// rtf-gateway over N backends), drives paced acked-batch ingest at
// -qps for -duration over -conns closed-loop connections, scrapes the
// target's /metrics endpoint throughout, bursts early on until the
// bounded admission queue (-queue) sheds a batch, and asserts the
// envelope: sustained QPS, steady RSS, queue depth never past
// capacity, p99 ingest latency under -p99-ceiling, the server's
// counter ledger equal to the harness's own, and every query shape
// bit-for-bit identical to an in-process reference engine fed exactly
// the acked batches — a shed batch that half-applied, or an applied
// batch that dropped a message, breaks the equality. -metrics-dump
// writes the final metrics snapshot as JSON.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"rtf/internal/obs"
	"rtf/internal/transport"
	"rtf/ldp"
	"rtf/workload"
)

func main() {
	var (
		n        = flag.Int("n", 10000, "number of users")
		d        = flag.Int("d", 256, "time periods (power of two)")
		k        = flag.Int("k", 4, "max changes per user")
		eps      = flag.Float64("eps", 1.0, "privacy budget (0 < eps <= 1)")
		proto    = flag.String("protocol", "futurerand", "protocol: futurerand|independent|bun|erlingsson|naive-split|central-binary")
		wl       = flag.String("workload", "uniform", "workload: uniform|max-changes|bursty|zipf|step|adversarial|periodic|static")
		seed     = flag.Int64("seed", 1, "random seed")
		exact    = flag.Bool("exact", false, "use the exact per-user engine")
		consist  = flag.Bool("consistency", false, "apply consistency post-processing")
		series   = flag.Bool("series", false, "print the t,truth,estimate series as CSV")
		wlOut    = flag.String("write-workload", "", "write the generated workload as CSV to this file")
		wlIn     = flag.String("read-workload", "", "read the workload from this CSV file instead of generating")
		drive    = flag.String("drive", "", "load-test a running rtf-serve at this address instead of simulating (the server must be freshly started: the bit-for-bit check compares its cumulative state against this run alone)")
		conns    = flag.Int("conns", 4, "parallel connections in -drive/-recover mode")
		batch    = flag.Int("batch", 256, "messages per batch frame in -drive/-recover mode")
		recovery = flag.Bool("recover", false, "run the kill/restart/recover test: spawn rtf-serve with a data dir, kill -9 it mid-ingest, restart, verify bit-for-bit recovery")
		clusterM = flag.Bool("cluster", false, "run the scatter/gather cluster test: spawn rtf-gateway over three rtf-serve backends (one durable), kill -9 the durable backend mid-ingest, restart it, verify every query shape through the gateway bit-for-bit")
		domainM  = flag.Bool("domain", false, "run the domain acceptance test: spawn a domain rtf-gateway over three domain rtf-serve backends (one durable), ingest a Zipf domain workload, kill -9 the durable backend mid-ingest, restart it, verify TopK/PointItem/SeriesItem through the gateway bit-for-bit")
		memberM  = flag.Bool("membership", false, "run the dynamic-membership acceptance test: spawn an rtf-gateway -members front over rtf-serve -membership backends (K=2 replicas, 16 virtual shards), join a member mid-ingest asserting ~1/N shard movement, drain one via snapshot handoff, kill -9 a replica, verify every query shape bit-for-bit throughout (combinable with -domain)")
		domSize  = flag.Int("m", 8, "domain size for -domain mode")
		domZipf  = flag.Float64("zipf-s", 1.2, "Zipf exponent over items in -domain mode")
		hashedM  = flag.Bool("hashed", false, "with -domain: run the hashed-domain (LOLOHA) acceptance test — the same topology and kill -9 recovery under -encoding loloha, a catalogue past the exact 4096 cap, TopK/sampled-item verification bit-for-bit, and a g-derived server RSS ceiling")
		domBuck  = flag.Int("buckets", 256, "bucket count g for -domain -hashed")
		serveBin = flag.String("serve-bin", "", "rtf-serve binary for -recover/-cluster/-soak (default: next to this binary, then $PATH)")
		gwBin    = flag.String("gateway-bin", "", "rtf-gateway binary for -cluster/-soak (default: next to this binary, then $PATH)")
		soak     = flag.Bool("soak", false, "run the soak harness: spawn a serving topology, drive paced acked-batch ingest at -qps for -duration with a mid-run overload burst, scrape /metrics, assert steady memory, bounded queue, whole-batch shedding and the p99 ceiling, then verify every answer bit-for-bit against a reference fed only the acked batches")
		soakQPS  = flag.Float64("qps", 5000, "-soak: target ingest messages/sec across all connections")
		soakDur  = flag.Duration("duration", 15*time.Second, "-soak: paced-load duration")
		soakBack = flag.Int("soak-backends", 0, "-soak topology: 0 = one rtf-serve, N >= 2 = rtf-gateway over N backends")
		soakQCap = flag.Int("queue", 2, "-soak: admission queue capacity on the target (0 = unbounded, disables shed assertions)")
		soakP99  = flag.Duration("p99-ceiling", 250*time.Millisecond, "-soak: max acceptable p99 ingest apply latency")
		soakDump = flag.String("metrics-dump", "", "-soak: write the final metrics snapshot JSON to this file")
	)
	flag.Parse()

	if *domainM {
		if *drive != "" || *recovery || *clusterM {
			fatal(fmt.Errorf("-domain is mutually exclusive with -drive, -recover and -cluster"))
		}
		mech := ldp.Protocol(*proto)
		mc, ok := ldp.Lookup(mech)
		if !ok || !mc.Caps.Domain || !mc.Caps.Durable || !mc.Caps.Clustered {
			fatal(fmt.Errorf("-domain needs a domain-capable, durable, clustered mechanism, got %q", *proto))
		}
		dw, err := ldp.GenerateDomain(*n, *d, *domSize, maxInt(*k, 1), *domZipf, *seed)
		if err != nil {
			fatal(err)
		}
		if *hashedM {
			if *memberM {
				fatal(fmt.Errorf("-membership does not support -hashed yet"))
			}
			if !mc.Caps.HashedDomain {
				fatal(fmt.Errorf("-hashed needs a hashed-domain-capable mechanism, got %q", *proto))
			}
			// The epoch hash seed is derived from -seed so the whole run —
			// workload, per-user engines, item→bucket map — replays from
			// one number.
			st, err := newHashedDomainDriver(dw, mech, *eps, *domBuck, uint64(*seed)+0x10f0, *conns, *batch, *seed)
			if err != nil {
				fatal(err)
			}
			if err := runHashedDomain(st, *serveBin, *gwBin, *proto, *d, *k, *domSize, *eps); err != nil {
				fatal(err)
			}
			return
		}
		st, err := newDomainDriver(dw, mech, *eps, *conns, *batch, *seed)
		if err != nil {
			fatal(err)
		}
		if *memberM {
			h := domainMemberHarness(st, *proto, *d, *k, *domSize, *eps)
			if err := runMembership(h, *serveBin, *gwBin); err != nil {
				fatal(err)
			}
			return
		}
		if err := runDomain(st, *serveBin, *gwBin, *proto, *d, *k, *domSize, *eps); err != nil {
			fatal(err)
		}
		return
	}

	if *hashedM {
		fatal(fmt.Errorf("-hashed requires -domain"))
	}

	w, err := loadWorkload(*wlIn, *wl, *n, *d, *k, *seed)
	if err != nil {
		fatal(err)
	}

	if *drive != "" || *recovery || *clusterM || *soak || *memberM {
		modes := 0
		for _, on := range []bool{*drive != "", *recovery, *clusterM, *soak, *memberM} {
			if on {
				modes++
			}
		}
		if modes > 1 {
			fatal(fmt.Errorf("-drive, -recover, -cluster, -soak and -membership are mutually exclusive"))
		}
		mech := ldp.Protocol(*proto)
		m, ok := ldp.Lookup(mech)
		if !ok || !m.Caps.Sharded {
			fatal(fmt.Errorf("server modes need a mechanism rtf-serve can host (sharded capability), got %q", *proto))
		}
		if *exact || *consist {
			fatal(fmt.Errorf("-drive/-recover/-cluster do not support -exact or -consistency"))
		}
		st, err := newDriver(w, mech, *k, *eps, *conns, *batch, *seed)
		if err != nil {
			fatal(err)
		}
		switch {
		case *soak:
			if *soakBack != 0 && (*soakBack < 2 || !m.Caps.Clustered) {
				fatal(fmt.Errorf("-soak-backends needs >= 2 backends and a clustered mechanism, got %d over %q", *soakBack, *proto))
			}
			cfg := soakConfig{
				qps:        *soakQPS,
				duration:   *soakDur,
				backends:   *soakBack,
				queueCap:   *soakQCap,
				p99Ceiling: *soakP99,
				dumpPath:   *soakDump,
			}
			if err := runSoak(st, *serveBin, *gwBin, *proto, *d, *k, *eps, cfg); err != nil {
				fatal(err)
			}
		case *recovery:
			if !m.Caps.Durable {
				fatal(fmt.Errorf("-recover needs a durable mechanism, got %q", *proto))
			}
			if err := runRecover(st, *serveBin, *proto, *d, *k, *eps); err != nil {
				fatal(err)
			}
		case *clusterM:
			if !m.Caps.Clustered || !m.Caps.Durable {
				fatal(fmt.Errorf("-cluster needs a clustered, durable mechanism, got %q", *proto))
			}
			if err := runCluster(st, *serveBin, *gwBin, *proto, *d, *k, *eps); err != nil {
				fatal(err)
			}
		case *memberM:
			if !m.Caps.Clustered {
				fatal(fmt.Errorf("-membership needs a clustered mechanism, got %q", *proto))
			}
			h := boolMemberHarness(st, *proto, *d, *k, *eps)
			if err := runMembership(h, *serveBin, *gwBin); err != nil {
				fatal(err)
			}
		default:
			if err := runDrive(st, *drive); err != nil {
				fatal(err)
			}
		}
		return
	}
	if *wlOut != "" {
		f, err := os.Create(*wlOut)
		if err != nil {
			fatal(err)
		}
		if err := w.WriteCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	start := time.Now()
	res, err := ldp.Track(w, ldp.Options{
		Protocol:    ldp.Protocol(*proto),
		Epsilon:     *eps,
		Exact:       *exact,
		Consistency: *consist,
		Seed:        *seed,
	})
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("protocol=%s workload=%s n=%d d=%d k=%d eps=%v seed=%d\n",
		res.Protocol, *wl, w.N, w.D, w.K, *eps, *seed)
	fmt.Printf("max error  %.1f\n", res.MaxError)
	fmt.Printf("MAE        %.1f\n", res.MAE)
	fmt.Printf("RMSE       %.1f\n", res.RMSE)
	if res.HoeffdingBound > 0 {
		fmt.Printf("Hoeffding bound (beta=0.05)  %.1f  (slack %.1fx)\n",
			res.HoeffdingBound, res.HoeffdingBound/res.MaxError)
	}
	fmt.Printf("elapsed    %v\n", elapsed.Round(time.Millisecond))

	if *series {
		fmt.Println("t,truth,estimate")
		for t := 1; t <= w.D; t++ {
			fmt.Printf("%d,%d,%.2f\n", t, res.Truth[t-1], res.Estimates[t-1])
		}
	}
}

func loadWorkload(path, spec string, n, d, k int, seed int64) (*workload.Workload, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return workload.ReadCSV(f)
	}
	var s workload.Spec
	switch spec {
	case "uniform":
		s = workload.Uniform{N: n, D: d, K: k}
	case "max-changes":
		s = workload.MaxChanges{N: n, D: d, K: k}
	case "bursty":
		s = workload.Bursty{N: n, D: d, K: k, Start: d / 4, End: d / 2, InBurst: 0.8}
	case "zipf":
		s = workload.ZipfActivity{N: n, D: d, K: k, S: 1.5}
	case "step":
		s = workload.Step{N: n, D: d, T0: d / 2, Jitter: d / 16, Fraction: 0.5}
	case "adversarial":
		s = workload.Adversarial{N: n, D: d, K: k}
	case "periodic":
		s = workload.Periodic{N: n, D: d, K: k, Period: maxInt(1, d/8)}
	case "static":
		s = workload.Static{N: n, D: d}
	default:
		return nil, fmt.Errorf("unknown workload %q", spec)
	}
	return workload.Generate(s, seed)
}

// driver holds the state shared by the server-driving modes: the
// workload, the per-user client factory (deterministic per-user seeds,
// so the report set is independent of how users are spread over
// connections and over phases), and the cumulative in-process reference
// server every answer is checked against bit-for-bit.
type driver struct {
	w       *workload.Workload
	mech    ldp.Protocol
	factory *ldp.ClientFactory
	ref     *ldp.Server
	eps     float64
	conns   int
	batch   int
	seed    int64

	mu      sync.Mutex // guards ref and the counters
	reports int64
	bytes   int64
}

func newDriver(w *workload.Workload, mech ldp.Protocol, k int, eps float64, conns, batch int, seed int64) (*driver, error) {
	if conns < 1 {
		return nil, fmt.Errorf("conns=%d must be >= 1", conns)
	}
	kk := maxInt(k, 1)
	opts := []ldp.Option{ldp.WithMechanism(mech), ldp.WithSparsity(kk), ldp.WithEpsilon(eps)}
	factory, err := ldp.NewClientFactory(w.D, opts...)
	if err != nil {
		return nil, err
	}
	ref, err := ldp.NewServer(w.D, opts...)
	if err != nil {
		return nil, err
	}
	return &driver{w: w, mech: mech, factory: factory, ref: ref, eps: eps, conns: conns, batch: batch, seed: seed}, nil
}

// sendUsers generates and ships the reports of users [lo, hi) to the
// server at addr over the driver's parallel connections, folding the
// same reports into the in-process reference. Each connection ends with
// a fence query, so when sendUsers returns the server has applied — and
// a durable server has journaled — everything sent.
func (st *driver) sendUsers(addr string, lo, hi int) error {
	var (
		wg     sync.WaitGroup
		firstE error
	)
	fail := func(err error) {
		st.mu.Lock()
		if firstE == nil {
			firstE = err
		}
		st.mu.Unlock()
	}
	span := hi - lo
	per := (span + st.conns - 1) / st.conns
	for c := 0; c < st.conns; c++ {
		clo, chi := lo+c*per, minInt(lo+(c+1)*per, hi)
		if clo >= chi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				fail(err)
				return
			}
			defer conn.Close()
			rep, err := ldp.NewBatchReporter(conn, st.batch)
			if err != nil {
				fail(err)
				return
			}
			var sent int64
			// One user's reports are buffered locally and folded into the
			// in-process reference under one lock per user: counter
			// ingestion is commutative integer addition, so the estimates
			// equal live ingestion, without per-report lock traffic on the
			// send loop or retaining the whole report set in memory.
			local := make([]ldp.Report, 0, st.w.D)
			for u := lo; u < hi; u++ {
				cl, err := st.factory.NewClient(u, st.seed+int64(u))
				if err != nil {
					fail(err)
					return
				}
				if err := rep.Hello(u, cl.Order()); err != nil {
					fail(err)
					return
				}
				local = local[:0]
				vals := st.w.Users[u].Values(st.w.D)
				for t := 1; t <= st.w.D; t++ {
					r, ok := cl.Observe(vals[t-1] == 1)
					if !ok {
						continue
					}
					local = append(local, r)
					if err := rep.Report(r); err != nil {
						fail(err)
						return
					}
					sent++
				}
				st.mu.Lock()
				err = st.ref.Register(cl.Order())
				for _, r := range local {
					if err != nil {
						break
					}
					err = st.ref.Ingest(r)
				}
				st.mu.Unlock()
				if err != nil {
					fail(err)
					return
				}
			}
			if err := rep.Flush(); err != nil {
				fail(err)
				return
			}
			// Fence: a query response proves the server applied everything
			// this connection sent before it.
			enc := transport.NewEncoder(conn)
			if err := enc.Encode(transport.Query(1)); err != nil {
				fail(err)
				return
			}
			if err := enc.Flush(); err != nil {
				fail(err)
				return
			}
			if _, err := transport.NewDecoder(conn).Next(); err != nil {
				fail(fmt.Errorf("fence query: %w", err))
				return
			}
			st.mu.Lock()
			st.reports += sent
			st.bytes += rep.BytesWritten()
			st.mu.Unlock()
		}(clo, chi)
	}
	wg.Wait()
	return firstE
}

// verify queries the server at addr through every query shape — v1
// point estimates for every period plus versioned point, change, series
// and window frames — and checks each answer bit-for-bit against the
// in-process reference. It returns the point-estimate series and the
// number of v2 values checked.
func (st *driver) verify(addr string) ([]float64, int, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, 0, err
	}
	defer conn.Close()
	enc := transport.NewEncoder(conn)
	dec := transport.NewDecoder(conn)
	w := st.w

	// Point estimates for every period through the v1 protocol.
	for t := 1; t <= w.D; t++ {
		if err := enc.Encode(transport.Query(t)); err != nil {
			return nil, 0, err
		}
	}
	if err := enc.Flush(); err != nil {
		return nil, 0, err
	}
	mismatches := 0
	est := make([]float64, w.D)
	for t := 1; t <= w.D; t++ {
		m, err := dec.Next()
		if err != nil {
			return nil, 0, err
		}
		if m.Type != transport.MsgEstimate || m.T != t {
			return nil, 0, fmt.Errorf("unexpected query response %+v at t=%d", m, t)
		}
		est[t-1] = m.Value
		want, err := st.ref.EstimateAt(t)
		if err != nil {
			return nil, 0, err
		}
		if m.Value != want {
			mismatches++
			if mismatches <= 3 {
				fmt.Fprintf(os.Stderr, "rtf-sim: t=%d server=%v in-process=%v\n", t, m.Value, want)
			}
		}
	}
	if mismatches > 0 {
		return nil, 0, fmt.Errorf("%d of %d point estimates differ from the in-process engine", mismatches, w.D)
	}

	// The versioned query shapes: point, change, series, window — each
	// checked bit-for-bit against the in-process Server.Answer.
	v2 := []ldp.Query{
		ldp.PointQuery(1),
		ldp.PointQuery(w.D),
		ldp.ChangeQuery(1, w.D),
		ldp.ChangeQuery(w.D/4+1, w.D/2),
		ldp.SeriesQuery(),
		ldp.WindowQuery(1, w.D),
		ldp.WindowQuery(w.D/2, w.D/2+1),
	}
	checked := 0
	for _, q := range v2 {
		got, err := queryV2(enc, dec, q)
		if err != nil {
			return nil, 0, fmt.Errorf("%s query: %w", q.Kind, err)
		}
		want, err := st.ref.Answer(q)
		if err != nil {
			return nil, 0, err
		}
		wantVals := want.Series
		if q.Kind == ldp.Point || q.Kind == ldp.Change {
			wantVals = []float64{want.Value}
		}
		if len(got) != len(wantVals) {
			return nil, 0, fmt.Errorf("%s query: %d values, want %d", q.Kind, len(got), len(wantVals))
		}
		for i := range got {
			if got[i] != wantVals[i] {
				return nil, 0, fmt.Errorf("%s query value %d: server=%v in-process=%v", q.Kind, i, got[i], wantVals[i])
			}
			checked++
		}
	}
	return est, checked, nil
}

// runDrive load-tests an rtf-serve instance hosting the driver's
// mechanism: every user's reports are shipped, then every query shape
// is verified bit-for-bit against the in-process engine.
func runDrive(st *driver, addr string) error {
	start := time.Now()
	if err := st.sendUsers(addr, 0, st.w.N); err != nil {
		return err
	}
	elapsed := time.Since(start)
	est, checked, err := st.verify(addr)
	if err != nil {
		return err
	}
	fmt.Printf("drive addr=%s mechanism=%s n=%d d=%d k=%d eps=%v conns=%d batch=%d seed=%d\n",
		addr, st.mech, st.w.N, st.w.D, st.w.K, st.eps, st.conns, st.batch, st.seed)
	printDriveStats(st, est, checked, elapsed)
	return nil
}

// printDriveStats reports throughput and accuracy for a drive run.
func printDriveStats(st *driver, est []float64, checked int, elapsed time.Duration) {
	fmt.Printf("reports    %d (%d users)\n", st.reports, st.w.N)
	fmt.Printf("wire bytes %d (%.1f B/report)\n", st.bytes, float64(st.bytes)/float64(maxInt64(st.reports, 1)))
	fmt.Printf("elapsed    %v (%.0f reports/s)\n", elapsed.Round(time.Millisecond), float64(st.reports)/elapsed.Seconds())
	truth := st.w.Truth()
	var maxErr float64
	for t := 1; t <= st.w.D; t++ {
		if e := abs(est[t-1] - float64(truth[t-1])); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("max error  %.1f\n", maxErr)
	fmt.Printf("estimates  bit-for-bit identical to the in-process engine (%d point + %d v2 values)\n", st.w.D, checked)
}

// runRecover is the crash-recovery acceptance test: spawn rtf-serve
// with a fresh data directory, ingest half the users, kill -9 the
// process, restart it on the same directory, and verify all four query
// shapes answer bit-for-bit like the uninterrupted in-process engine —
// immediately after recovery and again after the remaining users.
func runRecover(st *driver, serveBin, mech string, d, k int, eps float64) error {
	bin, err := findServeBin(serveBin)
	if err != nil {
		return fmt.Errorf("finding rtf-serve (-serve-bin): %w", err)
	}
	tmp, err := os.MkdirTemp("", "rtf-recover-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	dataDir := filepath.Join(tmp, "data")
	args := []string{
		"-addr", "127.0.0.1:0",
		"-mechanism", mech,
		"-d", fmt.Sprint(d),
		"-k", fmt.Sprint(k),
		"-eps", fmt.Sprint(eps),
		"-data-dir", dataDir,
		"-fsync",
		"-snapshot-every", "300ms", // exercise snapshot+WAL interplay mid-run
		"-grace", "10s",
	}
	start := time.Now()
	proc, addr, err := startServe(bin, args)
	if err != nil {
		return err
	}
	defer func() {
		if proc != nil {
			proc.kill()
		}
	}()

	// Phase 1 lands in two chunks with a pause in between, long enough
	// for a periodic snapshot to fire: the kill then tests real mixed
	// recovery — restore the snapshot, replay the WAL records after its
	// cursor — not just a replay of the whole log.
	half := st.w.N / 2
	fmt.Printf("recover    phase 1: %d users -> %s (data %s)\n", half, addr, dataDir)
	if err := st.sendUsers(addr, 0, half/2); err != nil {
		return err
	}
	time.Sleep(700 * time.Millisecond) // > -snapshot-every: let a snapshot cover the prefix
	if err := st.sendUsers(addr, half/2, half); err != nil {
		return err
	}
	if _, _, err := st.verify(addr); err != nil {
		return fmt.Errorf("pre-crash verification: %w", err)
	}

	// The kill must land mid-ingest — while frames are actively being
	// journaled and applied — not on a quiescent server. A doomed
	// connection streams hello batches for phantom users until the
	// process dies under it. Hellos hit the WAL and the user counters
	// but never the interval sums, so however many of them survive the
	// crash, every estimate the verifications below check stays exactly
	// the in-process engine's. (Unfenced *reports* could not be used
	// here: the driver cannot know which of them became durable.)
	doomed := make(chan struct{})
	go func() {
		defer close(doomed)
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return
		}
		defer conn.Close()
		enc := transport.NewEncoder(conn)
		batch := make([]transport.Msg, 64)
		for u := 0; ; u++ {
			for i := range batch {
				batch[i] = transport.Hello(1_000_000+u*len(batch)+i, 0)
			}
			if err := enc.EncodeBatch(batch); err != nil {
				return
			}
			if err := enc.Flush(); err != nil {
				return // the kill severed the connection: done
			}
		}
	}()
	time.Sleep(50 * time.Millisecond) // let the doomed stream get going
	fmt.Printf("recover    kill -9 pid %d mid-ingest\n", proc.cmd.Process.Pid)
	if err := proc.cmd.Process.Kill(); err != nil {
		return err
	}
	proc.wait() // "signal: killed" is the expected outcome
	proc = nil
	<-doomed

	proc2, addr2, err := startServe(bin, args)
	if err != nil {
		return fmt.Errorf("restarting after kill: %w", err)
	}
	defer func() {
		if proc2 != nil {
			proc2.kill()
		}
	}()
	if _, checked, err := st.verify(addr2); err != nil {
		return fmt.Errorf("post-recovery verification: %w", err)
	} else {
		fmt.Printf("recover    restarted at %s: %d point + %d v2 values bit-for-bit after snapshot+WAL recovery\n",
			addr2, st.w.D, checked)
	}

	fmt.Printf("recover    phase 2: %d users -> %s\n", st.w.N-half, addr2)
	if err := st.sendUsers(addr2, half, st.w.N); err != nil {
		return err
	}
	elapsed := time.Since(start)
	est, checked, err := st.verify(addr2)
	if err != nil {
		return fmt.Errorf("final verification: %w", err)
	}

	// Graceful shutdown: SIGTERM must drain, flush a final snapshot,
	// and exit 0.
	if err := proc2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	if err := proc2.wait(); err != nil {
		return fmt.Errorf("rtf-serve did not exit 0 on SIGTERM: %w", err)
	}
	proc2 = nil

	fmt.Printf("recover mechanism=%s n=%d d=%d k=%d eps=%v conns=%d batch=%d seed=%d\n",
		st.mech, st.w.N, st.w.D, st.w.K, eps, st.conns, st.batch, st.seed)
	printDriveStats(st, est, checked, elapsed)
	fmt.Println("recover    kill -9 + restart recovered bit-for-bit; SIGTERM drained and exited 0")
	return nil
}

// runCluster is the scatter/gather acceptance test: spawn three
// rtf-serve backends (backend 0 durable: snapshot + write-ahead log)
// and an rtf-gateway partitioning users across them, ingest half the
// users through the gateway, kill -9 the durable backend mid-ingest,
// restart it on the same port and data directory, and verify — after
// recovery and again after the remaining users — that Point, Change,
// Series and Window answers through the gateway are bit-for-bit
// identical to one uninterrupted in-process engine. Everything is
// finally SIGTERMed and must drain and exit 0.
func runCluster(st *driver, serveBin, gatewayBin, mech string, d, k int, eps float64) error {
	const nBackends = 3
	sBin, err := findBin(serveBin, "rtf-serve")
	if err != nil {
		return fmt.Errorf("finding rtf-serve (-serve-bin): %w", err)
	}
	gBin, err := findBin(gatewayBin, "rtf-gateway")
	if err != nil {
		return fmt.Errorf("finding rtf-gateway (-gateway-bin): %w", err)
	}
	tmp, err := os.MkdirTemp("", "rtf-cluster-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	dataDir := filepath.Join(tmp, "backend0")

	common := []string{
		"-mechanism", mech,
		"-d", fmt.Sprint(d),
		"-k", fmt.Sprint(k),
		"-eps", fmt.Sprint(eps),
	}
	// Backend 0 is the durable one that gets killed and recovered; 1 and
	// 2 stay in-memory and untouched.
	durableArgs := func(addr string) []string {
		return append([]string{
			"-addr", addr,
			"-data-dir", dataDir,
			"-fsync",
			"-snapshot-every", "300ms", // exercise snapshot+WAL interplay mid-run
			"-grace", "10s",
		}, common...)
	}

	start := time.Now()
	backends := make([]*serveProc, nBackends)
	addrs := make([]string, nBackends)
	defer func() {
		for _, p := range backends {
			if p != nil {
				p.kill()
			}
		}
	}()
	for i := 0; i < nBackends; i++ {
		args := append([]string{"-addr", "127.0.0.1:0"}, common...)
		if i == 0 {
			args = durableArgs("127.0.0.1:0")
		}
		p, a, err := startProc(sBin, fmt.Sprintf("backend%d", i), args)
		if err != nil {
			return fmt.Errorf("starting backend %d: %w", i, err)
		}
		backends[i], addrs[i] = p, a
	}

	gwArgs := append([]string{
		"-addr", "127.0.0.1:0",
		"-backends", strings.Join(addrs, ","),
		"-grace", "10s",
	}, common...)
	gw, gwAddr, err := startProc(gBin, "rtf-gateway", gwArgs)
	if err != nil {
		return fmt.Errorf("starting rtf-gateway: %w", err)
	}
	defer func() {
		if gw != nil {
			gw.kill()
		}
	}()

	// Phase 1 lands in two chunks with a pause long enough for a
	// periodic snapshot on backend 0, so the kill tests real mixed
	// recovery (snapshot + WAL suffix), not a full-log replay.
	half := st.w.N / 2
	fmt.Printf("cluster    phase 1: %d users -> gateway %s over %d backends (backend 0 durable at %s)\n",
		half, gwAddr, nBackends, dataDir)
	if err := st.sendUsers(gwAddr, 0, half/2); err != nil {
		return err
	}
	time.Sleep(700 * time.Millisecond) // > -snapshot-every: let a snapshot cover the prefix
	if err := st.sendUsers(gwAddr, half/2, half); err != nil {
		return err
	}
	if _, _, err := st.verify(gwAddr); err != nil {
		return fmt.Errorf("pre-crash verification: %w", err)
	}

	// The kill must land mid-ingest on the durable backend. A doomed
	// connection streams phantom-user hello batches through the gateway,
	// with user ids ≡ 0 mod nBackends so every one routes to backend 0.
	// Hellos hit backend 0's WAL and user counters but never the
	// interval sums, so whatever prefix survives the crash — or is
	// re-forwarded by the gateway's at-least-once retry — every estimate
	// the verifications below check stays exactly the in-process
	// engine's.
	doomedConn, err := net.Dial("tcp", gwAddr)
	if err != nil {
		return err
	}
	doomed := make(chan struct{})
	go func() {
		defer close(doomed)
		enc := transport.NewEncoder(doomedConn)
		batch := make([]transport.Msg, 64)
		for u := 0; ; u++ {
			for i := range batch {
				batch[i] = transport.Hello(3_000_000+(u*len(batch)+i)*nBackends, 0)
			}
			if err := enc.EncodeBatch(batch); err != nil {
				return
			}
			if err := enc.Flush(); err != nil {
				return // the connection was closed under us: done
			}
		}
	}()
	time.Sleep(50 * time.Millisecond) // let the doomed stream get going
	fmt.Printf("cluster    kill -9 backend 0 (pid %d) mid-ingest\n", backends[0].cmd.Process.Pid)
	if err := backends[0].cmd.Process.Kill(); err != nil {
		return err
	}
	backends[0].wait() // "signal: killed" is the expected outcome
	backends[0] = nil
	// The gateway survives the dead backend (its forwards retry with
	// backoff); the doomed client is ours, so cut it loose.
	doomedConn.Close()
	<-doomed

	// Restart backend 0 on the same port (the gateway's backend list is
	// fixed) and data directory: boot recovery = snapshot + WAL suffix.
	restarted, raddr, err := startProc(sBin, "backend0", durableArgs(addrs[0]))
	if err != nil {
		return fmt.Errorf("restarting backend 0 after kill: %w", err)
	}
	backends[0] = restarted
	if raddr != addrs[0] {
		return fmt.Errorf("backend 0 restarted at %s, want %s", raddr, addrs[0])
	}
	if _, checked, err := st.verify(gwAddr); err != nil {
		return fmt.Errorf("post-recovery verification through the gateway: %w", err)
	} else {
		fmt.Printf("cluster    backend 0 recovered: %d point + %d v2 values bit-for-bit through the gateway\n",
			st.w.D, checked)
	}

	fmt.Printf("cluster    phase 2: %d users -> gateway %s\n", st.w.N-half, gwAddr)
	if err := st.sendUsers(gwAddr, half, st.w.N); err != nil {
		return err
	}
	elapsed := time.Since(start)
	est, checked, err := st.verify(gwAddr)
	if err != nil {
		return fmt.Errorf("final verification: %w", err)
	}

	// Graceful shutdown, front to back: the gateway and every backend
	// must drain and exit 0 on SIGTERM (backend 0 flushing a final
	// snapshot).
	if err := gw.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	if err := gw.wait(); err != nil {
		return fmt.Errorf("rtf-gateway did not exit 0 on SIGTERM: %w", err)
	}
	gw = nil
	for i, p := range backends {
		if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			return err
		}
		if err := p.wait(); err != nil {
			return fmt.Errorf("backend %d did not exit 0 on SIGTERM: %w", i, err)
		}
		backends[i] = nil
	}

	fmt.Printf("cluster mechanism=%s n=%d d=%d k=%d eps=%v conns=%d batch=%d seed=%d backends=%d\n",
		st.mech, st.w.N, st.w.D, st.w.K, eps, st.conns, st.batch, st.seed, nBackends)
	printDriveStats(st, est, checked, elapsed)
	fmt.Println("cluster    kill -9 + restart of the durable backend recovered bit-for-bit; gateway and backends drained and exited 0")
	return nil
}

// findServeBin resolves the rtf-serve binary: the explicit flag, a
// sibling of this executable, then $PATH.
func findServeBin(explicit string) (string, error) {
	return findBin(explicit, "rtf-serve")
}

// findBin resolves a helper binary: the explicit flag, a sibling of
// this executable, then $PATH.
func findBin(explicit, name string) (string, error) {
	if explicit != "" {
		return explicit, nil
	}
	if exe, err := os.Executable(); err == nil {
		cand := filepath.Join(filepath.Dir(exe), name)
		if fi, err := os.Stat(cand); err == nil && !fi.IsDir() {
			return cand, nil
		}
	}
	return exec.LookPath(name)
}

// serveProc is a spawned rtf-serve: the process plus the goroutine
// relaying its stderr. wait must be used instead of cmd.Wait so the
// relay finishes reading the pipe first (os/exec forbids Wait while a
// pipe read is in flight — it would drop the tail of the child's log).
// metricsAddr is the child's /metrics address when it was started with
// -metrics, empty otherwise.
type serveProc struct {
	cmd         *exec.Cmd
	scanDone    chan struct{}
	metricsAddr string
}

// wait waits for the stderr relay to hit EOF, then reaps the process.
func (p *serveProc) wait() error {
	<-p.scanDone
	return p.cmd.Wait()
}

// kill SIGKILLs the process and reaps it; for use on error paths.
func (p *serveProc) kill() {
	p.cmd.Process.Kill()
	p.wait()
}

// startServe launches rtf-serve and waits for its "listening on"
// stderr line to learn the bound address (the test uses port 0). The
// rest of the child's stderr keeps streaming through, prefixed.
func startServe(bin string, args []string) (*serveProc, string, error) {
	return startProc(bin, "rtf-serve", args)
}

// startProc launches a server binary (rtf-serve or rtf-gateway) and
// waits for its "listening on" stderr line to learn the bound address
// (the tests use port 0). The rest of the child's stderr keeps
// streaming through, prefixed with name. A child that exits before
// reporting an address (a failed bind, say) fails fast rather than
// timing out.
func startProc(bin, name string, args []string) (*serveProc, string, error) {
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stdout
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, "", err
	}
	if err := cmd.Start(); err != nil {
		return nil, "", err
	}
	p := &serveProc{cmd: cmd, scanDone: make(chan struct{})}
	type listenInfo struct{ addr, metrics string }
	addrCh := make(chan listenInfo, 1)
	go func() {
		defer close(p.scanDone)
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(os.Stderr, "  ["+name+"]", line)
			if a, m, ok := parseListenAddr(line); ok {
				select {
				case addrCh <- listenInfo{a, m}:
				default:
				}
			}
		}
	}()
	select {
	case li := <-addrCh:
		p.metricsAddr = li.metrics
		return p, li.addr, nil
	case <-p.scanDone:
		select {
		case li := <-addrCh: // reported and exited in one breath
			p.metricsAddr = li.metrics
			return p, li.addr, nil
		default:
		}
		err := p.cmd.Wait()
		return nil, "", fmt.Errorf("%s exited before reporting a listen address: %v", name, err)
	case <-time.After(15 * time.Second):
		p.kill()
		return nil, "", fmt.Errorf("%s did not report a listen address within 15s", name)
	}
}

// parseListenAddr extracts the listen (and, when present, metrics)
// address from a server's structured startup line:
//
//	ts=... level=info component=rtf-serve msg=listening addr=127.0.0.1:7609 metrics=127.0.0.1:9609 ...
func parseListenAddr(line string) (addr, metrics string, ok bool) {
	kv, ok := obs.ParseLogLine(line)
	if !ok || kv["msg"] != "listening" || kv["addr"] == "" {
		return "", "", false
	}
	return kv["addr"], kv["metrics"], true
}

// queryV2 sends one versioned query and decodes the answer values.
func queryV2(enc *transport.Encoder, dec *transport.Decoder, q ldp.Query) ([]float64, error) {
	l, r := q.L, q.R
	if q.Kind == ldp.Point {
		l, r = q.T, q.T
	}
	if err := enc.Encode(transport.QueryV2(transport.QueryKind(q.Kind), l, r)); err != nil {
		return nil, err
	}
	if err := enc.Flush(); err != nil {
		return nil, err
	}
	a, err := dec.ReadAnswer()
	if err != nil {
		return nil, err
	}
	if a.Kind != transport.QueryKind(q.Kind) {
		return nil, fmt.Errorf("answer kind %s for %s query", a.Kind, q.Kind)
	}
	return a.Values, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtf-sim:", err)
	os.Exit(1)
}
