// Command rtf-sim runs one end-to-end protocol execution on a synthetic
// workload and reports error metrics, optionally dumping the estimate
// series as CSV.
//
// Examples:
//
//	rtf-sim -n 50000 -d 1024 -k 8 -eps 1.0
//	rtf-sim -protocol erlingsson -workload bursty -series
//	rtf-sim -protocol futurerand -consistency -n 100000
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rtf/ldp"
	"rtf/workload"
)

func main() {
	var (
		n       = flag.Int("n", 10000, "number of users")
		d       = flag.Int("d", 256, "time periods (power of two)")
		k       = flag.Int("k", 4, "max changes per user")
		eps     = flag.Float64("eps", 1.0, "privacy budget (0 < eps <= 1)")
		proto   = flag.String("protocol", "futurerand", "protocol: futurerand|independent|bun|erlingsson|naive-split|central-binary")
		wl      = flag.String("workload", "uniform", "workload: uniform|max-changes|bursty|zipf|step|adversarial|periodic|static")
		seed    = flag.Int64("seed", 1, "random seed")
		exact   = flag.Bool("exact", false, "use the exact per-user engine")
		consist = flag.Bool("consistency", false, "apply consistency post-processing")
		series  = flag.Bool("series", false, "print the t,truth,estimate series as CSV")
		wlOut   = flag.String("write-workload", "", "write the generated workload as CSV to this file")
		wlIn    = flag.String("read-workload", "", "read the workload from this CSV file instead of generating")
	)
	flag.Parse()

	w, err := loadWorkload(*wlIn, *wl, *n, *d, *k, *seed)
	if err != nil {
		fatal(err)
	}
	if *wlOut != "" {
		f, err := os.Create(*wlOut)
		if err != nil {
			fatal(err)
		}
		if err := w.WriteCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	start := time.Now()
	res, err := ldp.Track(w, ldp.Options{
		Protocol:    ldp.Protocol(*proto),
		Epsilon:     *eps,
		Exact:       *exact,
		Consistency: *consist,
		Seed:        *seed,
	})
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("protocol=%s workload=%s n=%d d=%d k=%d eps=%v seed=%d\n",
		res.Protocol, *wl, w.N, w.D, w.K, *eps, *seed)
	fmt.Printf("max error  %.1f\n", res.MaxError)
	fmt.Printf("MAE        %.1f\n", res.MAE)
	fmt.Printf("RMSE       %.1f\n", res.RMSE)
	if res.HoeffdingBound > 0 {
		fmt.Printf("Hoeffding bound (beta=0.05)  %.1f  (slack %.1fx)\n",
			res.HoeffdingBound, res.HoeffdingBound/res.MaxError)
	}
	fmt.Printf("elapsed    %v\n", elapsed.Round(time.Millisecond))

	if *series {
		fmt.Println("t,truth,estimate")
		for t := 1; t <= w.D; t++ {
			fmt.Printf("%d,%d,%.2f\n", t, res.Truth[t-1], res.Estimates[t-1])
		}
	}
}

func loadWorkload(path, spec string, n, d, k int, seed int64) (*workload.Workload, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return workload.ReadCSV(f)
	}
	var s workload.Spec
	switch spec {
	case "uniform":
		s = workload.Uniform{N: n, D: d, K: k}
	case "max-changes":
		s = workload.MaxChanges{N: n, D: d, K: k}
	case "bursty":
		s = workload.Bursty{N: n, D: d, K: k, Start: d / 4, End: d / 2, InBurst: 0.8}
	case "zipf":
		s = workload.ZipfActivity{N: n, D: d, K: k, S: 1.5}
	case "step":
		s = workload.Step{N: n, D: d, T0: d / 2, Jitter: d / 16, Fraction: 0.5}
	case "adversarial":
		s = workload.Adversarial{N: n, D: d, K: k}
	case "periodic":
		s = workload.Periodic{N: n, D: d, K: k, Period: maxInt(1, d/8)}
	case "static":
		s = workload.Static{N: n, D: d}
	default:
		return nil, fmt.Errorf("unknown workload %q", spec)
	}
	return workload.Generate(s, seed)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtf-sim:", err)
	os.Exit(1)
}
