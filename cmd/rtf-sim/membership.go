package main

// The -membership acceptance mode: the dynamic-membership deployment
// driven end to end. Three rtf-serve -membership backends behind an
// rtf-gateway -members front (K=2 replicas over 16 virtual shards)
// ingest a workload in thirds; a fourth backend joins mid-ingest via
// the reshard API (asserting the rendezvous plan moved only ~1/N of
// the shard replicas), a drained backend hands its shards off by
// snapshot and exits 0 on SIGTERM, one surviving replica is kill -9ed
// under a doomed ingest stream aimed at its own shards — and at every
// stage every query shape through the gateway is checked bit-for-bit
// against one uninterrupted in-process engine. With -domain the same
// choreography runs over the domain deployment and the item-scoped
// shapes.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"syscall"
	"time"

	"rtf/internal/membership"
	"rtf/internal/obs"
	"rtf/internal/transport"
)

// memberHarness abstracts the driver differences between the Boolean
// and domain variants of the membership scenario: how to ship a user
// range, how to verify every query shape, and what a phantom hello
// for the doomed stream looks like.
type memberHarness struct {
	label  string // output prefix: "membership" or "membership-domain"
	n      int
	common []string // protocol flags shared by backends and gateway
	send   func(addr string, lo, hi int) error
	verify func(addr string) (int, error)
	hello  func(user int) transport.Msg
	report func(elapsed time.Duration, checked int)
}

// boolMemberHarness adapts the Boolean driver.
func boolMemberHarness(st *driver, mech string, d, k int, eps float64) memberHarness {
	return memberHarness{
		label: "membership",
		n:     st.w.N,
		common: []string{
			"-mechanism", mech,
			"-d", fmt.Sprint(d),
			"-k", fmt.Sprint(k),
			"-eps", fmt.Sprint(eps),
		},
		send: st.sendUsers,
		verify: func(addr string) (int, error) {
			_, checked, err := st.verify(addr)
			return st.w.D + checked, err
		},
		hello: func(u int) transport.Msg { return transport.Hello(u, 0) },
		report: func(elapsed time.Duration, checked int) {
			fmt.Printf("membership mechanism=%s n=%d d=%d k=%d eps=%v conns=%d batch=%d seed=%d\n",
				st.mech, st.w.N, st.w.D, st.w.K, eps, st.conns, st.batch, st.seed)
			fmt.Printf("reports    %d (%d users)\n", st.reports, st.w.N)
			fmt.Printf("wire bytes %d\n", st.bytes)
			fmt.Printf("elapsed    %v (%.0f reports/s)\n", elapsed.Round(time.Millisecond), float64(st.reports)/elapsed.Seconds())
			fmt.Printf("checked    %d values bit-for-bit at the final stage alone\n", checked)
		},
	}
}

// domainMemberHarness adapts the domain driver.
func domainMemberHarness(st *domainDriver, mech string, d, k, m int, eps float64) memberHarness {
	return memberHarness{
		label: "membership-domain",
		n:     st.w.N,
		common: []string{
			"-mechanism", mech,
			"-d", fmt.Sprint(d),
			"-k", fmt.Sprint(k),
			"-m", fmt.Sprint(m),
			"-eps", fmt.Sprint(eps),
		},
		send:   st.sendUsers,
		verify: st.verify,
		hello:  func(u int) transport.Msg { return transport.DomainHello(u, 0, 0) },
		report: func(elapsed time.Duration, checked int) {
			fmt.Printf("membership-domain mechanism=%s n=%d d=%d k=%d m=%d eps=%v conns=%d batch=%d seed=%d\n",
				st.mech, st.w.N, st.w.D, st.w.K, st.w.M, eps, st.conns, st.batch, st.seed)
			fmt.Printf("reports    %d (%d users over %d items)\n", st.reports, st.w.N, st.w.M)
			fmt.Printf("wire bytes %d\n", st.bytes)
			fmt.Printf("elapsed    %v (%.0f reports/s)\n", elapsed.Round(time.Millisecond), float64(st.reports)/elapsed.Seconds())
			fmt.Printf("checked    %d item-scoped values bit-for-bit at the final stage alone\n", checked)
		},
	}
}

// postReshard drives the gateway's admin API and decodes the result.
func postReshard(url string, members []membership.Member, k int) (reshardResultJSON, error) {
	req := struct {
		Members []struct {
			ID   string `json:"id"`
			Addr string `json:"addr"`
		} `json:"members"`
		K int `json:"k"`
	}{K: k}
	for _, m := range members {
		req.Members = append(req.Members, struct {
			ID   string `json:"id"`
			Addr string `json:"addr"`
		}{m.ID, m.Addr})
	}
	body, err := json.Marshal(req)
	if err != nil {
		return reshardResultJSON{}, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return reshardResultJSON{}, err
	}
	defer resp.Body.Close()
	var res reshardResultJSON
	if resp.StatusCode != http.StatusOK {
		buf := new(bytes.Buffer)
		buf.ReadFrom(resp.Body)
		return res, fmt.Errorf("reshard: %s: %s", resp.Status, strings.TrimSpace(buf.String()))
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return res, fmt.Errorf("decoding reshard result: %w", err)
	}
	return res, nil
}

// reshardResultJSON mirrors cluster.ReshardResult's wire form.
type reshardResultJSON struct {
	Epoch     uint64 `json:"epoch"`
	Transfers int    `json:"transfers"`
	Members   int    `json:"members"`
	K         int    `json:"k"`
}

func cloneMembers(ms []membership.Member) []membership.Member {
	return append([]membership.Member(nil), ms...)
}

// runMembership is the dynamic-membership acceptance test. The
// choreography, over K=2 replicas and 16 virtual shards:
//
//  1. three members ingest a third of the users; verify.
//  2. a fourth member joins by reshard WHILE the second third is in
//     flight; the reported snapshot transfers must equal the in-process
//     rendezvous plan and stay within half the shard replicas (the
//     point of rendezvous placement: a join moves ~1/N, not a reshuffle).
//  3. one member drains by reshard (its shards hand off via snapshot
//     transfer) and must then SIGTERM-exit 0; verify.
//  4. the last third lands, a doomed stream of phantom hellos is aimed
//     at the shards of one surviving replica, that replica is kill -9ed
//     under it — and every query shape must still answer bit-for-bit,
//     through quorum reads on the surviving owners.
//
// Throughout, the gateway's epoch/divergence/short-read gauges are
// asserted from /metrics, and the gateway and both surviving members
// must drain and exit 0 on SIGTERM.
func runMembership(h memberHarness, serveBin, gatewayBin string) error {
	const (
		replicas = 2
		vshards  = 16
	)
	sBin, err := findBin(serveBin, "rtf-serve")
	if err != nil {
		return fmt.Errorf("finding rtf-serve (-serve-bin): %w", err)
	}
	gBin, err := findBin(gatewayBin, "rtf-gateway")
	if err != nil {
		return fmt.Errorf("finding rtf-gateway (-gateway-bin): %w", err)
	}

	procs := map[string]*serveProc{}
	defer func() {
		for _, p := range procs {
			if p != nil {
				p.kill()
			}
		}
	}()
	newBackend := func(i int) (membership.Member, error) {
		id := fmt.Sprintf("b%d", i)
		args := append([]string{
			"-addr", "127.0.0.1:0",
			"-membership",
			"-id", id,
			"-vshards", fmt.Sprint(vshards),
			"-grace", "10s",
		}, h.common...)
		p, a, err := startProc(sBin, id, args)
		if err != nil {
			return membership.Member{}, fmt.Errorf("starting backend %s: %w", id, err)
		}
		procs[id] = p
		return membership.Member{ID: id, Addr: a}, nil
	}
	stopBackend := func(id string) error {
		p := procs[id]
		if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			return err
		}
		if err := p.wait(); err != nil {
			return fmt.Errorf("backend %s did not exit 0 on SIGTERM: %w", id, err)
		}
		procs[id] = nil
		return nil
	}

	var members []membership.Member
	for i := 0; i < 3; i++ {
		m, err := newBackend(i)
		if err != nil {
			return err
		}
		members = append(members, m)
	}

	spec := make([]string, len(members))
	for i, m := range members {
		spec[i] = m.ID + "=" + m.Addr
	}
	gwArgs := append([]string{
		"-addr", "127.0.0.1:0",
		"-members", strings.Join(spec, ","),
		"-replicas", fmt.Sprint(replicas),
		"-vshards", fmt.Sprint(vshards),
		"-metrics", "127.0.0.1:0",
		"-dial-attempts", "2", // fail over to the quorum survivor quickly
		"-grace", "10s",
	}, h.common...)
	gw, gwAddr, err := startProc(gBin, "rtf-gateway", gwArgs)
	if err != nil {
		return fmt.Errorf("starting rtf-gateway: %w", err)
	}
	procs["gateway"] = gw
	if gw.metricsAddr == "" {
		return fmt.Errorf("rtf-gateway reported no metrics address (the reshard API mounts there)")
	}
	reshardURL := "http://" + gw.metricsAddr + "/membership/reshard"
	view := membership.View{Epoch: 1, K: replicas, NumShards: vshards, Members: cloneMembers(members)}

	start := time.Now()
	third := h.n / 3

	// Stage 1: a third of the users through the initial three members.
	fmt.Printf("%s stage 1: %d users -> gateway %s over %d members (K=%d, %d shards)\n",
		h.label, third, gwAddr, len(members), replicas, vshards)
	if err := h.send(gwAddr, 0, third); err != nil {
		return err
	}
	if _, err := h.verify(gwAddr); err != nil {
		return fmt.Errorf("stage 1 verification: %w", err)
	}

	// Stage 2: b3 joins by reshard while the second third is in flight —
	// the epoch fence must park and re-route live ingest sessions, and
	// the movement must be the rendezvous plan's, not a reshuffle.
	ingestDone := make(chan error, 1)
	go func() { ingestDone <- h.send(gwAddr, third, 2*third) }()
	time.Sleep(50 * time.Millisecond) // let the concurrent ingest get going
	m3, err := newBackend(3)
	if err != nil {
		return err
	}
	joined := append(cloneMembers(members), m3)
	nextView := membership.View{Epoch: view.Epoch + 1, K: replicas, NumShards: vshards, Members: cloneMembers(joined)}
	plan := membership.Plan(view, nextView)
	res, err := postReshard(reshardURL, joined, replicas)
	if err != nil {
		return fmt.Errorf("join reshard: %w", err)
	}
	fmt.Printf("%s stage 2: %s joined mid-ingest: epoch %d, %d shard snapshots moved (plan %d, ceiling %d of %d replicas)\n",
		h.label, m3.ID, res.Epoch, res.Transfers, len(plan), vshards*replicas/2, vshards*replicas)
	if res.Epoch != 2 || res.Members != len(joined) || res.K != replicas {
		return fmt.Errorf("join reshard result %+v, want epoch 2 over %d members", res, len(joined))
	}
	if res.Transfers != len(plan) {
		return fmt.Errorf("join moved %d shard snapshots, the rendezvous plan has %d", res.Transfers, len(plan))
	}
	if len(plan) < 1 || len(plan) > vshards*replicas/2 {
		return fmt.Errorf("join moved %d of %d shard replicas; rendezvous placement should move ~1/%d",
			len(plan), vshards*replicas, len(joined))
	}
	members, view = joined, nextView
	if err := <-ingestDone; err != nil {
		return fmt.Errorf("ingest concurrent with the join reshard: %w", err)
	}
	if _, err := h.verify(gwAddr); err != nil {
		return fmt.Errorf("post-join verification: %w", err)
	}
	transfersTotal := res.Transfers

	// Stage 3: b1 drains — the reshard hands its shards off by snapshot
	// transfer, after which the process must SIGTERM-exit 0.
	var drained []membership.Member
	for _, m := range members {
		if m.ID != "b1" {
			drained = append(drained, m)
		}
	}
	nextView = membership.View{Epoch: view.Epoch + 1, K: replicas, NumShards: vshards, Members: cloneMembers(drained)}
	plan = membership.Plan(view, nextView)
	res, err = postReshard(reshardURL, drained, replicas)
	if err != nil {
		return fmt.Errorf("drain reshard: %w", err)
	}
	if res.Epoch != 3 || res.Transfers != len(plan) {
		return fmt.Errorf("drain reshard result %+v, want epoch 3 with %d transfers", res, len(plan))
	}
	if err := stopBackend("b1"); err != nil {
		return err
	}
	fmt.Printf("%s stage 3: b1 drained (%d shard snapshots handed off) and exited 0\n", h.label, res.Transfers)
	members, view = drained, nextView
	transfersTotal += res.Transfers
	if _, err := h.verify(gwAddr); err != nil {
		return fmt.Errorf("post-drain verification: %w", err)
	}

	// Stage 4: the last third lands, then b2 is kill -9ed under a doomed
	// stream of phantom hellos aimed at its own shards. Hellos touch
	// user counters but never interval sums, so whatever prefix each
	// surviving owner applied, the estimates stay exact — and the
	// verification below must be answered by quorum reads from the
	// surviving owner of every shard b2 held.
	if err := h.send(gwAddr, 2*third, h.n); err != nil {
		return err
	}
	doomedConn, err := net.Dial("tcp", gwAddr)
	if err != nil {
		return err
	}
	doomed := make(chan struct{})
	go func() {
		defer close(doomed)
		enc := transport.NewEncoder(doomedConn)
		batch := make([]transport.Msg, 0, 64)
		uid := 9_000_000
		for {
			batch = batch[:0]
			for len(batch) < cap(batch) {
				if view.Owns("b2", membership.ShardOf(uid, vshards)) {
					batch = append(batch, h.hello(uid))
				}
				uid++
			}
			if err := enc.EncodeBatch(batch); err != nil {
				return
			}
			if err := enc.Flush(); err != nil {
				return // the connection was closed under us: done
			}
		}
	}()
	time.Sleep(50 * time.Millisecond) // let the doomed stream get going
	fmt.Printf("%s stage 4: kill -9 b2 (pid %d) under ingest aimed at its %d shards\n",
		h.label, procs["b2"].cmd.Process.Pid, len(view.OwnedShards("b2")))
	if err := procs["b2"].cmd.Process.Kill(); err != nil {
		return err
	}
	procs["b2"].wait() // "signal: killed" is the expected outcome
	procs["b2"] = nil
	doomedConn.Close()
	<-doomed

	checked, err := h.verify(gwAddr)
	if err != nil {
		return fmt.Errorf("verification with b2 dead: %w", err)
	}
	elapsed := time.Since(start)

	// The gateway's own ledger must agree: epoch 3, every snapshot
	// transfer counted, at least one short read from the dead replica,
	// and not a single replica divergence across the whole run.
	snap, err := obs.Fetch("http://" + gw.metricsAddr + "/metrics")
	if err != nil {
		return fmt.Errorf("scraping gateway metrics: %w", err)
	}
	if got := snap.Gauges["membership_epoch"]; got != 3 {
		return fmt.Errorf("gateway membership_epoch gauge = %v, want 3", got)
	}
	if got := snap.Gauges["membership_transfers_total"]; got != float64(transfersTotal) {
		return fmt.Errorf("gateway membership_transfers_total = %v, want %d", got, transfersTotal)
	}
	if got := snap.Gauges["membership_divergences_total"]; got != 0 {
		return fmt.Errorf("gateway reported %v replica divergences, want 0", got)
	}
	if got := snap.Gauges["membership_short_reads_total"]; got < 1 {
		return fmt.Errorf("gateway membership_short_reads_total = %v, want >= 1 with b2 dead", got)
	}

	// Graceful shutdown: the gateway and both surviving members must
	// drain and exit 0.
	if err := stopBackend("gateway"); err != nil {
		return fmt.Errorf("rtf-gateway: %w", err)
	}
	if err := stopBackend("b0"); err != nil {
		return err
	}
	if err := stopBackend("b3"); err != nil {
		return err
	}

	h.report(elapsed, checked)
	fmt.Printf("%s join, drain and kill -9 all answered bit-for-bit; gateway and surviving members drained and exited 0\n", h.label)
	return nil
}
