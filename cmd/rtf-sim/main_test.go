package main

import (
	"strings"
	"testing"

	"rtf/internal/obs"
)

// TestParseListenAddr pins the contract between the serving binaries'
// structured startup lines and the spawning side here: lines emitted
// through obs.Logger exactly as rtf-serve and rtf-gateway emit them
// must yield the listen and metrics addresses back.
func TestParseListenAddr(t *testing.T) {
	var b strings.Builder
	serve := obs.NewLogger(&b, "rtf-serve")
	serve.Info("listening", "addr", "127.0.0.1:7609", "metrics", "127.0.0.1:9609",
		"mechanism", "futurerand", "d", 1024, "k", 8, "m", 0, "eps", 1.0,
		"shards", 8, "queue", 64, "durable", true)
	gateway := obs.NewLogger(&b, "rtf-gateway")
	gateway.Info("listening", "addr", "127.0.0.1:7610", "metrics", "",
		"mechanism", "futurerand", "d", 1024, "k", 8, "m", 0, "eps", 1.0,
		"queue", 0, "backends", "localhost:7611,localhost:7612")

	lines := strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("expected 2 log lines, got %d: %q", len(lines), b.String())
	}
	addr, metrics, ok := parseListenAddr(lines[0])
	if !ok || addr != "127.0.0.1:7609" || metrics != "127.0.0.1:9609" {
		t.Fatalf("rtf-serve line parsed to addr=%q metrics=%q ok=%v from %q", addr, metrics, ok, lines[0])
	}
	addr, metrics, ok = parseListenAddr(lines[1])
	if !ok || addr != "127.0.0.1:7610" || metrics != "" {
		t.Fatalf("rtf-gateway line parsed to addr=%q metrics=%q ok=%v from %q", addr, metrics, ok, lines[1])
	}

	// Lines that are not the startup line must be skipped, not
	// misparsed: other structured lines, free-form output, emptiness.
	b.Reset()
	serve.Info("throughput", "users", 10, "reports", 100, "batches", 2, "rate", "50")
	for _, line := range []string{
		strings.TrimSuffix(b.String(), "\n"),
		"rtf-serve: some legacy free-form line",
		"",
	} {
		if a, m, ok := parseListenAddr(line); ok {
			t.Fatalf("line %q unexpectedly parsed to addr=%q metrics=%q", line, a, m)
		}
	}
}
