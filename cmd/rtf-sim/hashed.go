package main

// The -domain -hashed acceptance mode: the hashed-domain (LOLOHA)
// deployment driven end to end over a catalogue far past the exact
// encoding's 4096-row wall. Three rtf-serve backends in -encoding
// loloha mode (backend 0 durable, with a metrics listener) behind an
// rtf-gateway ingest a Zipf workload over a million-item catalogue;
// the durable backend is kill -9ed mid-ingest and restarted from its
// snapshot + write-ahead log; every item-scoped query shape through
// the gateway — TopK over the whole catalogue, sampled PointItem and
// SeriesItem — is checked bit-for-bit against one uninterrupted
// in-process hashed ldp.DomainServer; and at the end the durable
// backend's RSS is asserted under a ceiling derived from the bucket
// count g, not the catalogue size m — the whole point of the hashed
// encoding. Nothing in this mode ever materializes per-item state for
// the m-item catalogue (an exact m=1e6 row matrix would be gigabytes).

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"rtf/internal/obs"
	"rtf/internal/transport"
	"rtf/ldp"
)

// newHashedDomainDriver builds a domainDriver whose client factory and
// in-process reference run the loloha encoding: clients hash their
// tracked value into one of g buckets under the shared epoch seed, and
// the reference server decodes item estimates from g bucket rows.
func newHashedDomainDriver(w *ldp.DomainWorkload, mech ldp.Protocol, eps float64, g int, hseed uint64, conns, batch int, seed int64) (*domainDriver, error) {
	if conns < 1 {
		return nil, fmt.Errorf("conns=%d must be >= 1", conns)
	}
	k := maxInt(w.K, 1)
	opts := []ldp.Option{
		ldp.WithMechanism(mech), ldp.WithSparsity(k), ldp.WithEpsilon(eps),
		ldp.WithDomainEncoding("loloha"), ldp.WithBuckets(g), ldp.WithHashSeed(hseed),
	}
	factory, err := ldp.NewDomainClientFactory(w.D, w.M, opts...)
	if err != nil {
		return nil, err
	}
	ref, err := ldp.NewDomainServer(w.D, w.M, opts...)
	if err != nil {
		return nil, err
	}
	return &domainDriver{
		w: w, mech: mech, factory: factory, ref: ref, enc: factory.Encoding(),
		eps: eps, conns: conns, batch: batch, seed: seed,
	}, nil
}

// hashedSampleItems picks the catalogue items the point and series
// verifications probe: the edges, items just past the exact encoding's
// cap (provably unreachable without the hashed refactor), and an even
// spread. Sampling is what keeps verification O(g + samples) while the
// catalogue is millions of items — exactly the regime the encoding is
// for.
func hashedSampleItems(m int) []int {
	seen := make(map[int]bool)
	items := []int{}
	add := func(x int) {
		if x >= 0 && x < m && !seen[x] {
			seen[x] = true
			items = append(items, x)
		}
	}
	add(0)
	add(1)
	add(ldp.MaxDomainSize)
	add(ldp.MaxDomainSize + 13)
	add(m - 1)
	for i := 0; i < 24; i++ {
		add(1 + i*(m/24))
	}
	return items
}

// verifyHashed queries the hashed server at addr through every
// item-scoped shape — point-item at several times and full series for
// a sample of catalogue items, and top-k over the whole catalogue at
// several (t, k) — and checks each answer bit-for-bit (values and
// items) against the in-process hashed reference. It returns the
// number of values checked.
func (st *domainDriver) verifyHashed(addr string) (int, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	enc := transport.NewEncoder(conn)
	dec := transport.NewDecoder(conn)
	w := st.w
	checked := 0

	ask := func(q transport.Msg) (transport.DomainAnswerFrame, error) {
		if err := enc.Encode(q); err != nil {
			return transport.DomainAnswerFrame{}, err
		}
		if err := enc.Flush(); err != nil {
			return transport.DomainAnswerFrame{}, err
		}
		return dec.ReadDomainAnswer()
	}
	for _, x := range hashedSampleItems(w.M) {
		for _, t := range []int{1, w.D / 2, w.D} {
			a, err := ask(transport.DomainQuery(transport.QueryPointItem, x, t, 0, 0))
			if err != nil {
				return 0, fmt.Errorf("point-item(%d, %d): %w", x, t, err)
			}
			want, err := st.ref.Answer(ldp.PointItemQuery(x, t))
			if err != nil {
				return 0, err
			}
			if len(a.Values) != 1 || a.Values[0] != want.Value {
				return 0, fmt.Errorf("point-item(%d, %d): server %v, in-process %v", x, t, a.Values, want.Value)
			}
			checked++
		}
		a, err := ask(transport.DomainQuery(transport.QuerySeriesItem, x, 0, 0, 0))
		if err != nil {
			return 0, fmt.Errorf("series-item(%d): %w", x, err)
		}
		want, err := st.ref.Answer(ldp.SeriesItemQuery(x))
		if err != nil {
			return 0, err
		}
		if len(a.Values) != len(want.Series) {
			return 0, fmt.Errorf("series-item(%d): %d values, want %d", x, len(a.Values), len(want.Series))
		}
		for i := range want.Series {
			if a.Values[i] != want.Series[i] {
				return 0, fmt.Errorf("series-item(%d) t=%d: server %v, in-process %v", x, i+1, a.Values[i], want.Series[i])
			}
			checked++
		}
	}
	for _, tk := range [][2]int{{w.D, 100}, {w.D, 10}, {w.D / 2, 1}, {1, 25}} {
		t, k := tk[0], tk[1]
		a, err := ask(transport.DomainQuery(transport.QueryTopK, 0, t, 0, k))
		if err != nil {
			return 0, fmt.Errorf("top-k(%d, %d): %w", t, k, err)
		}
		want, err := st.ref.Answer(ldp.TopKQuery(t, k))
		if err != nil {
			return 0, err
		}
		if len(a.Items) != len(want.Items) || len(a.Values) != len(want.Series) {
			return 0, fmt.Errorf("top-k(%d, %d): shape %d/%d, want %d", t, k, len(a.Items), len(a.Values), len(want.Items))
		}
		for i := range want.Items {
			if a.Items[i] != want.Items[i] || a.Values[i] != want.Series[i] {
				return 0, fmt.Errorf("top-k(%d, %d) rank %d: server (%d, %v), in-process (%d, %v)",
					t, k, i, a.Items[i], a.Values[i], want.Items[i], want.Series[i])
			}
			checked += 2
		}
	}
	return checked, nil
}

// hashedRSSCeiling is the durable backend's acceptance memory bound:
// a fixed process baseline plus a per-bucket allowance. It depends on
// g and d only — deliberately not on the catalogue size m, because the
// claim under test is that server memory is O(g·d) however large the
// catalogue. An exact encoding at m=1e6, d=128 would need gigabytes of
// row state and blows straight through this.
func hashedRSSCeiling(g, d int) float64 {
	return float64(192<<20) + float64(g)*float64(d)*256
}

// runHashedDomain is the hashed-domain acceptance test: spawn three
// loloha-mode rtf-serve backends (backend 0 durable, with metrics) and
// a matching rtf-gateway, ingest half the Zipf workload through the
// gateway, kill -9 the durable backend mid-ingest, restart it on the
// same port and data directory, verify — after recovery and again
// after the remaining users — that every item-scoped answer through
// the gateway is bit-for-bit the uninterrupted in-process hashed
// DomainServer's, and finally assert the durable backend's RSS is
// under the g-derived ceiling. Everything is then SIGTERMed and must
// drain and exit 0.
func runHashedDomain(st *domainDriver, serveBin, gatewayBin, mech string, d, k, m int, eps float64) error {
	const nBackends = 3
	g := st.enc.G
	sBin, err := findBin(serveBin, "rtf-serve")
	if err != nil {
		return fmt.Errorf("finding rtf-serve (-serve-bin): %w", err)
	}
	gBin, err := findBin(gatewayBin, "rtf-gateway")
	if err != nil {
		return fmt.Errorf("finding rtf-gateway (-gateway-bin): %w", err)
	}
	tmp, err := os.MkdirTemp("", "rtf-hashed-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	dataDir := filepath.Join(tmp, "backend0")

	common := []string{
		"-mechanism", mech,
		"-d", fmt.Sprint(d),
		"-k", fmt.Sprint(k),
		"-m", fmt.Sprint(m),
		"-eps", fmt.Sprint(eps),
		"-encoding", "loloha",
		"-buckets", fmt.Sprint(g),
		"-hash-seed", fmt.Sprint(st.enc.Seed),
	}
	durableArgs := func(addr string) []string {
		return append([]string{
			"-addr", addr,
			"-metrics", "127.0.0.1:0", // scraped for the RSS ceiling check
			"-data-dir", dataDir,
			"-fsync",
			"-snapshot-every", "300ms", // exercise snapshot+WAL interplay mid-run
			"-grace", "10s",
		}, common...)
	}

	start := time.Now()
	backends := make([]*serveProc, nBackends)
	addrs := make([]string, nBackends)
	defer func() {
		for _, p := range backends {
			if p != nil {
				p.kill()
			}
		}
	}()
	for i := 0; i < nBackends; i++ {
		args := append([]string{"-addr", "127.0.0.1:0"}, common...)
		if i == 0 {
			args = durableArgs("127.0.0.1:0")
		}
		p, a, err := startProc(sBin, fmt.Sprintf("backend%d", i), args)
		if err != nil {
			return fmt.Errorf("starting backend %d: %w", i, err)
		}
		backends[i], addrs[i] = p, a
	}

	gwArgs := append([]string{
		"-addr", "127.0.0.1:0",
		"-backends", strings.Join(addrs, ","),
		"-grace", "10s",
	}, common...)
	gw, gwAddr, err := startProc(gBin, "rtf-gateway", gwArgs)
	if err != nil {
		return fmt.Errorf("starting rtf-gateway: %w", err)
	}
	defer func() {
		if gw != nil {
			gw.kill()
		}
	}()

	// Phase 1 lands in two chunks with a pause long enough for a
	// periodic snapshot on backend 0, so the kill tests real mixed
	// recovery (snapshot + WAL suffix), not a full-log replay.
	half := st.w.N / 2
	fmt.Printf("hashed     phase 1: %d users over an m=%d catalogue hashed to g=%d buckets -> gateway %s over %d backends (backend 0 durable at %s)\n",
		half, m, g, gwAddr, nBackends, dataDir)
	if err := st.sendUsers(gwAddr, 0, half/2); err != nil {
		return err
	}
	time.Sleep(700 * time.Millisecond) // > -snapshot-every: let a snapshot cover the prefix
	if err := st.sendUsers(gwAddr, half/2, half); err != nil {
		return err
	}
	if _, err := st.verifyHashed(gwAddr); err != nil {
		return fmt.Errorf("pre-crash verification: %w", err)
	}

	// The kill must land mid-ingest on the durable backend. A doomed
	// connection streams phantom-user hashed-hello batches through the
	// gateway, with user ids ≡ 0 mod nBackends so every one routes to
	// backend 0. Hellos hit backend 0's WAL and per-bucket user counters
	// but never the interval sums — and the bucket decoder is a fixed
	// function of the interval sums alone — so whatever prefix survives
	// the crash, every estimate the verifications below check stays
	// exactly the in-process engine's.
	doomedConn, err := net.Dial("tcp", gwAddr)
	if err != nil {
		return err
	}
	doomed := make(chan struct{})
	go func() {
		defer close(doomed)
		enc := transport.NewEncoder(doomedConn)
		batch := make([]transport.Msg, 64)
		for u := 0; ; u++ {
			for i := range batch {
				batch[i] = transport.HashedDomainHello(6_000_000+(u*len(batch)+i)*nBackends, 0, 0, st.enc.Seed)
			}
			if err := enc.EncodeBatch(batch); err != nil {
				return
			}
			if err := enc.Flush(); err != nil {
				return // the connection was closed under us: done
			}
		}
	}()
	time.Sleep(50 * time.Millisecond) // let the doomed stream get going
	fmt.Printf("hashed     kill -9 backend 0 (pid %d) mid-ingest\n", backends[0].cmd.Process.Pid)
	if err := backends[0].cmd.Process.Kill(); err != nil {
		return err
	}
	backends[0].wait() // "signal: killed" is the expected outcome
	backends[0] = nil
	doomedConn.Close()
	<-doomed

	// Restart backend 0 on the same port (the gateway's backend list is
	// fixed) and data directory: boot recovery = snapshot + WAL suffix.
	restarted, raddr, err := startProc(sBin, "backend0", durableArgs(addrs[0]))
	if err != nil {
		return fmt.Errorf("restarting backend 0 after kill: %w", err)
	}
	backends[0] = restarted
	if raddr != addrs[0] {
		return fmt.Errorf("backend 0 restarted at %s, want %s", raddr, addrs[0])
	}
	if checked, err := st.verifyHashed(gwAddr); err != nil {
		return fmt.Errorf("post-recovery verification through the gateway: %w", err)
	} else {
		fmt.Printf("hashed     backend 0 recovered: %d values bit-for-bit through the gateway\n", checked)
	}

	fmt.Printf("hashed     phase 2: %d users -> gateway %s\n", st.w.N-half, gwAddr)
	if err := st.sendUsers(gwAddr, half, st.w.N); err != nil {
		return err
	}
	elapsed := time.Since(start)
	checked, err := st.verifyHashed(gwAddr)
	if err != nil {
		return fmt.Errorf("final verification: %w", err)
	}

	// The memory claim: the durable backend — holding the full durable
	// bucket state for its partition of a million-item catalogue — must
	// fit under a ceiling derived from g and d, not m. ?gc=1 forces a GC
	// and a scavenge first, so the reading is live heap, not the
	// allocator's return-to-OS lag.
	if backends[0].metricsAddr == "" {
		return fmt.Errorf("durable backend reported no metrics address")
	}
	snap, err := obs.Fetch("http://" + backends[0].metricsAddr + "/metrics?gc=1")
	if err != nil {
		return fmt.Errorf("scraping the durable backend's metrics: %w", err)
	}
	rss := snap.Gauges["process_rss_bytes"]
	ceiling := hashedRSSCeiling(g, d)
	if rss <= 0 {
		return fmt.Errorf("durable backend reported no process_rss_bytes gauge")
	}
	if rss > ceiling {
		return fmt.Errorf("durable backend RSS %.1fMB exceeds the g-derived ceiling %.1fMB (g=%d, d=%d, m=%d): bucket state is not bounding memory",
			rss/1e6, ceiling/1e6, g, d, m)
	}

	// Graceful shutdown, front to back: the gateway and every backend
	// must drain and exit 0 on SIGTERM (backend 0 flushing a final
	// snapshot).
	if err := gw.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	if err := gw.wait(); err != nil {
		return fmt.Errorf("rtf-gateway did not exit 0 on SIGTERM: %w", err)
	}
	gw = nil
	for i, p := range backends {
		if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			return err
		}
		if err := p.wait(); err != nil {
			return fmt.Errorf("backend %d did not exit 0 on SIGTERM: %w", i, err)
		}
		backends[i] = nil
	}

	fmt.Printf("hashed mechanism=%s n=%d d=%d k=%d m=%d g=%d eps=%v conns=%d batch=%d seed=%d backends=%d\n",
		st.mech, st.w.N, st.w.D, st.w.K, m, g, eps, st.conns, st.batch, st.seed, nBackends)
	fmt.Printf("reports    %d (%d users over %d items in %d buckets)\n", st.reports, st.w.N, m, g)
	fmt.Printf("wire bytes %d\n", st.bytes)
	fmt.Printf("elapsed    %v (%.0f reports/s)\n", elapsed.Round(time.Millisecond), float64(st.reports)/elapsed.Seconds())
	fmt.Printf("checked    %d item-scoped values (TopK over the full catalogue, sampled PointItem/SeriesItem) bit-for-bit\n", checked)
	fmt.Printf("rss        durable backend %.1fMB <= g-derived ceiling %.1fMB (catalogue m=%d never materialized)\n", rss/1e6, ceiling/1e6, m)
	fmt.Println("hashed     kill -9 + restart of the durable backend recovered bit-for-bit; gateway and backends drained and exited 0")
	return nil
}
