package main

// The -soak mode: a closed-loop load harness that spawns a serving
// topology (one rtf-serve, or an rtf-gateway over N backends), drives
// simulated users at a target ingest QPS for a configured duration over
// acked batches, scrapes the target's /metrics endpoint throughout, and
// asserts the operational envelope:
//
//   - memory stays steady: final RSS within 10% of the early mark
//   - the admission queue depth never exceeds its capacity
//   - an early burst phase (before the RSS mark, so its memory
//     high-water is part of the baseline) overloads the queue until
//     at least one batch is shed — whole, never half-applied
//   - p99 ingest (apply) latency stays under a ceiling
//   - the applied message rate sustains the target QPS
//
// The atomicity proof is exact, not statistical: every batch the
// server acknowledged is folded into an in-process reference engine,
// every shed batch is not, and after the run every query shape must
// answer bit-for-bit like the reference. A half-applied batch — some
// messages applied, the batch reported shed, or vice versa — breaks
// the equality.

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"rtf/internal/obs"
	"rtf/internal/protocol"
	"rtf/internal/transport"
	"rtf/ldp"
)

// soakConfig is the -soak mode's knob set, resolved from flags.
type soakConfig struct {
	qps        float64       // target ingest messages/sec across all connections
	duration   time.Duration // paced-load duration
	backends   int           // 0 = one rtf-serve; >= 2 = rtf-gateway over that many
	queueCap   int           // -queue on the target (0 = unbounded, no shed assertions)
	p99Ceiling time.Duration // ingest_latency_seconds p99 must stay under this
	dumpPath   string        // write the final metrics snapshot JSON here ("" = off)
}

// soakOp mirrors one batched wire message as the reference-engine
// operation to fold if — and only if — the server acknowledged the
// batch.
type soakOp struct {
	hello bool
	order int
	rep   ldp.Report
}

// soakCounters is the harness's own view of the run, to cross-check
// against the server's counters at the end, plus the shared user-id
// allocator.
type soakCounters struct {
	sentBatches    atomic.Int64
	appliedBatches atomic.Int64
	shedBatches    atomic.Int64
	appliedMsgs    atomic.Int64
	sentMsgs       atomic.Int64
	nextUser       atomic.Int64
}

// runSoak spawns the topology, runs the load, and returns an error
// listing every violated assertion.
func runSoak(st *driver, serveBin, gwBin, mech string, d, k int, eps float64, cfg soakConfig) error {
	sBin, err := findBin(serveBin, "rtf-serve")
	if err != nil {
		return fmt.Errorf("finding rtf-serve (-serve-bin): %w", err)
	}
	common := []string{
		"-mechanism", mech,
		"-d", fmt.Sprint(d),
		"-k", fmt.Sprint(k),
		"-eps", fmt.Sprint(eps),
		"-grace", "20s",
	}

	// Spawn the topology. The target — the process the load and the
	// scrapes hit — is the single server, or the gateway.
	var (
		procs  []*serveProc // reverse shutdown order: target last
		target *serveProc
		addr   string
	)
	defer func() {
		for _, p := range procs {
			if p != nil {
				p.kill()
			}
		}
	}()
	targetArgs := []string{
		"-addr", "127.0.0.1:0",
		"-metrics", "127.0.0.1:0",
		"-queue", fmt.Sprint(cfg.queueCap),
	}
	if cfg.backends == 0 {
		// A single in-memory server applies a batch in microseconds, so
		// closed-loop workers essentially never hold queue slots
		// concurrently and the burst cannot force a shed. Make the
		// single-server soak durable with per-append fsync — the realistic
		// production shape — so applies hold their admission slot for a
		// disk write and overload behaves like it does under real I/O.
		dataDir, err := os.MkdirTemp("", "rtf-soak-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dataDir)
		serveArgs := append(targetArgs, "-data-dir", dataDir, "-fsync")
		target, addr, err = startProc(sBin, "rtf-serve", append(serveArgs, common...))
		if err != nil {
			return err
		}
		procs = append(procs, target)
	} else {
		gBin, err := findBin(gwBin, "rtf-gateway")
		if err != nil {
			return fmt.Errorf("finding rtf-gateway (-gateway-bin): %w", err)
		}
		addrs := make([]string, cfg.backends)
		for i := range addrs {
			p, a, err := startProc(sBin, fmt.Sprintf("backend%d", i), append([]string{"-addr", "127.0.0.1:0"}, common...))
			if err != nil {
				return fmt.Errorf("starting backend %d: %w", i, err)
			}
			procs = append(procs, p)
			addrs[i] = a
		}
		gwArgs := append(targetArgs, "-backends", strings.Join(addrs, ","))
		target, addr, err = startProc(gBin, "rtf-gateway", append(gwArgs, common...))
		if err != nil {
			return fmt.Errorf("starting rtf-gateway: %w", err)
		}
		procs = append(procs, target)
	}
	if target.metricsAddr == "" {
		return fmt.Errorf("soak target reported no metrics address")
	}
	metricsURL := "http://" + target.metricsAddr + "/metrics"

	topology := "serve"
	if cfg.backends > 0 {
		topology = fmt.Sprintf("gateway/%d", cfg.backends)
	}
	fmt.Printf("soak topology=%s addr=%s metrics=%s qps=%.0f duration=%v queue=%d conns=%d batch=%d\n",
		topology, addr, target.metricsAddr, cfg.qps, cfg.duration, cfg.queueCap, st.conns, st.batch)

	// The load: st.conns closed-loop workers, each pacing its share of
	// the target QPS; a shared user counter hands out fresh users. The
	// RSS mark is taken at markAt, and the burst phase — workers drop
	// their pacing until the queue sheds a batch, proving overload
	// rejection — runs *before* it: the burst's pipelined load is the
	// run's memory high-water, so it must be inside the baseline the
	// flat-memory assertion compares the final RSS against.
	markAt := 10 * time.Second
	if third := cfg.duration / 3; third < markAt {
		markAt = third
	}
	var (
		ctr        soakCounters
		start      = time.Now()
		deadline   = start.Add(cfg.duration)
		burstAt    = start.Add(markAt / 2)
		wg         sync.WaitGroup
		workErr    error
		workErrMu  sync.Mutex
		perConnQPS = cfg.qps / float64(st.conns)
	)
	fail := func(err error) {
		workErrMu.Lock()
		if workErr == nil {
			workErr = err
		}
		workErrMu.Unlock()
	}
	for c := 0; c < st.conns; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := st.soakWorker(addr, deadline, burstAt, perConnQPS, cfg.queueCap, &ctr); err != nil {
				fail(err)
			}
		}()
	}

	// The scraper: sample /metrics twice a second, record the early RSS
	// mark and the worst queue depth seen.
	var (
		scrapeStop = make(chan struct{})
		scrapeDone = make(chan struct{})
	)
	var (
		scrapeMu        sync.Mutex
		markRSS         float64
		maxDepth        float64
		depthViolations int
		scrapes, misses int
	)
	go func() {
		defer close(scrapeDone)
		tick := time.NewTicker(500 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-scrapeStop:
				return
			case <-tick.C:
			}
			// The mark scrape (and the final one, below) pass ?gc=1 so
			// the RSS comparison sees the live set, not the Go
			// scavenger's return-to-OS lag; routine depth samples stay
			// cheap.
			url := metricsURL
			takeMark := false
			scrapeMu.Lock()
			if markRSS == 0 && time.Since(start) >= markAt {
				url, takeMark = metricsURL+"?gc=1", true
			}
			scrapeMu.Unlock()
			s, err := obs.Fetch(url)
			scrapeMu.Lock()
			scrapes++
			if err != nil {
				misses++
				scrapeMu.Unlock()
				continue
			}
			if takeMark {
				markRSS = s.Gauges["process_rss_bytes"]
			}
			if d := s.Gauges["ingest_queue_depth"]; d > maxDepth {
				maxDepth = d
			}
			if cfg.queueCap > 0 && s.Gauges["ingest_queue_depth"] > s.Gauges["ingest_queue_capacity"] {
				depthViolations++
			}
			scrapeMu.Unlock()
		}
	}()

	wg.Wait()
	close(scrapeStop)
	<-scrapeDone
	if workErr != nil {
		return fmt.Errorf("soak worker: %w", workErr)
	}
	elapsed := time.Since(start)

	// Authoritative final scrape: the workers have fenced, so every
	// counter is quiescent.
	final, err := obs.Fetch(metricsURL + "?gc=1")
	if err != nil {
		return fmt.Errorf("final metrics scrape: %w", err)
	}
	if cfg.dumpPath != "" {
		b, err := json.MarshalIndent(final, "", " ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.dumpPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
	}

	// The exactness check: every query shape through the target must
	// answer bit-for-bit like the reference engine fed exactly the
	// acknowledged batches.
	est, checked, err := st.verify(addr)
	if err != nil {
		return fmt.Errorf("post-soak verification (half-applied batch?): %w", err)
	}

	applied, shed, sent := ctr.appliedBatches.Load(), ctr.shedBatches.Load(), ctr.sentBatches.Load()
	appliedRate := float64(ctr.appliedMsgs.Load()) / elapsed.Seconds()
	lat := final.Histograms["ingest_latency_seconds"]
	p99 := time.Duration(lat.Quantile(0.99) * float64(time.Second))
	finalRSS := final.Gauges["process_rss_bytes"]

	scrapeMu.Lock()
	mark, depthMax, violations, nScrapes, nMisses := markRSS, maxDepth, depthViolations, scrapes, misses
	scrapeMu.Unlock()

	fmt.Printf("soak sent=%d applied=%d shed=%d batches (%d msgs applied, %.0f msgs/s)\n",
		sent, applied, shed, ctr.appliedMsgs.Load(), appliedRate)
	fmt.Printf("soak p99=%v queue max=%.0f/%d rss mark=%.1fMB final=%.1fMB scrapes=%d (missed %d)\n",
		p99, depthMax, cfg.queueCap, mark/1e6, finalRSS/1e6, nScrapes, nMisses)

	var fails []string
	bad := func(format string, args ...any) { fails = append(fails, fmt.Sprintf(format, args...)) }
	if appliedRate < 0.9*cfg.qps {
		bad("applied rate %.0f msgs/s under 90%% of target %.0f", appliedRate, cfg.qps)
	}
	if p99 > cfg.p99Ceiling {
		bad("ingest p99 %v over ceiling %v", p99, cfg.p99Ceiling)
	}
	if lat.Count == 0 {
		bad("ingest_latency_seconds has no observations")
	}
	if mark > 0 && finalRSS > 1.1*mark {
		bad("final RSS %.1fMB grew past 110%% of the %v mark %.1fMB", finalRSS/1e6, markAt, mark/1e6)
	}
	if mark == 0 {
		bad("no RSS mark was sampled (scrapes failing?)")
	}
	if violations > 0 {
		bad("queue depth exceeded capacity in %d scrapes", violations)
	}
	if cfg.queueCap > 0 {
		if shed == 0 {
			bad("burst produced no shed batches (queue %d never overloaded)", cfg.queueCap)
		}
		if got := final.Gauges["ingest_queue_capacity"]; got != float64(cfg.queueCap) {
			bad("ingest_queue_capacity gauge = %v, want %d", got, cfg.queueCap)
		}
	}
	if cfg.backends == 0 {
		// The single-server target is durable, so its WAL gauges must be
		// live: every applied batch appended records.
		if got := final.Gauges["wal_last_seq"]; got < float64(applied) {
			bad("wal_last_seq = %v after %d applied batches", got, applied)
		}
		if _, ok := final.Gauges["snapshot_age_seconds"]; !ok {
			bad("durable target exposes no snapshot_age_seconds gauge")
		}
	}
	// The server's ledger must match ours exactly: batches it counted
	// applied/shed are the batches we saw acked/shed.
	if got := final.Counters["ingest_acked_batches_total"]; got != sent {
		bad("server counted %d acked batches, harness sent %d", got, sent)
	}
	if got := final.Counters["ingest_shed_batches_total"]; got != shed {
		bad("server counted %d shed batches, harness saw %d", got, shed)
	}
	if got := final.Counters["ingest_batches_total"]; got != applied {
		bad("server counted %d applied batches, harness saw %d", got, applied)
	}
	if got := final.Counters["ingest_messages_total"]; got != ctr.appliedMsgs.Load() {
		bad("server counted %d applied messages, harness saw %d", got, ctr.appliedMsgs.Load())
	}
	// Read-path cache counters must be coherent at a quiescent scrape:
	// every cache-eligible query counted exactly one hit or miss, and
	// coalesced queries are a subset of all answered queries. Absent
	// counters read as zero, so the single-server run (whose Boolean
	// query path has no memo) passes trivially.
	cacheHits := final.Counters["query_cache_hits_total"]
	cacheMisses := final.Counters["query_cache_misses_total"]
	cacheEligible := final.Counters["query_cache_eligible_total"]
	coalesced := final.Counters["query_coalesced_total"]
	if cacheHits+cacheMisses != cacheEligible {
		bad("cache counters incoherent: hits %d + misses %d != eligible %d", cacheHits, cacheMisses, cacheEligible)
	}
	var queriesTotal int64
	for name, v := range final.Counters {
		if strings.HasPrefix(name, "queries_total") {
			queriesTotal += v
		}
	}
	if coalesced > queriesTotal {
		bad("query_coalesced_total %d exceeds %d answered queries", coalesced, queriesTotal)
	}
	if cfg.backends > 0 && cacheEligible == 0 {
		bad("gateway soak answered %d queries but counted none cache-eligible", queriesTotal)
	}

	// Graceful shutdown, target first, and every process must exit 0.
	for i := len(procs) - 1; i >= 0; i-- {
		p := procs[i]
		if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			return err
		}
		if err := p.wait(); err != nil {
			bad("process %d did not exit 0 on SIGTERM: %v", i, err)
		}
		procs[i] = nil
	}

	if len(fails) > 0 {
		return fmt.Errorf("soak failed:\n  %s", strings.Join(fails, "\n  "))
	}
	fmt.Printf("soak estimates bit-for-bit identical to the reference fed the %d acked batches (%d point + %d v2 values)\n",
		applied, len(est), checked)
	fmt.Println("soak PASS")
	return nil
}

// soakWorker is one loaded connection: assemble batches of fresh
// users' reports, ship them acked, and fold each into the reference
// only if its ack says applied. In the paced phase the worker runs
// closed-loop (one batch in flight, sleeping toward a per-message
// schedule). During the burst window (until the first shed anywhere)
// it pipelines several unacknowledged batches per connection, which
// keeps every server connection goroutine continuously applying and
// deterministically overruns the admission queue — a closed-loop
// worker holds a queue slot only for the tiny apply window of its one
// in-flight batch, and a capacity-2 queue can ride out even four such
// workers indefinitely.
func (st *driver) soakWorker(addr string, deadline, burstAt time.Time, qps float64, queueCap int, ctr *soakCounters) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	enc := transport.NewEncoder(conn)
	dec := transport.NewDecoder(conn)

	// inflight is the FIFO of batches sent but not yet acknowledged:
	// acks come back in send order on the one connection.
	type pendingBatch struct {
		n   int
		ops []soakOp
	}
	var (
		ms       []transport.Msg
		inflight []pendingBatch
		next     = time.Now()
	)
	readAck := func() error {
		applied, err := dec.ReadBatchAck()
		if err != nil {
			return fmt.Errorf("reading batch ack: %w", err)
		}
		p := inflight[0]
		inflight = inflight[1:]
		if !applied {
			ctr.shedBatches.Add(1)
			return nil
		}
		ctr.appliedBatches.Add(1)
		ctr.appliedMsgs.Add(int64(p.n))
		st.mu.Lock()
		defer st.mu.Unlock()
		for _, op := range p.ops {
			if op.hello {
				if err := st.ref.Register(op.order); err != nil {
					return err
				}
			} else if err := st.ref.Ingest(op.rep); err != nil {
				return err
			}
		}
		return nil
	}
	var ops []soakOp
	for time.Now().Before(deadline) {
		bursting := queueCap > 0 && time.Now().After(burstAt) && ctr.shedBatches.Load() == 0
		window := 1
		if bursting {
			// Re-send the last assembled batch back-to-back: the burst
			// must be server-bound, and assembling fresh users costs
			// more client CPU than the server spends applying them.
			// Duplicate users are harmless — the reference is fed every
			// acked copy too, so exactness is unaffected.
			window = 8
		}
		if !bursting || len(ms) == 0 {
			ms = ms[:0]
			ops = nil
			for len(ms) < st.batch {
				u := int(ctr.nextUser.Add(1) - 1)
				if err := st.appendUserMsgs(u, &ms, &ops); err != nil {
					return err
				}
			}
		}
		if !bursting {
			if sleep := time.Until(next); sleep > 0 {
				time.Sleep(sleep)
			}
			// A worker that fell behind schedule (the burst window, say)
			// restarts its schedule from now rather than flooding to
			// catch up.
			if now := time.Now(); next.Before(now.Add(-time.Second)) {
				next = now
			}
		}
		if err := enc.EncodeAckedBatch(ms); err != nil {
			return err
		}
		if err := enc.Flush(); err != nil {
			return err
		}
		ctr.sentBatches.Add(1)
		ctr.sentMsgs.Add(int64(len(ms)))
		inflight = append(inflight, pendingBatch{n: len(ms), ops: ops})
		for len(inflight) >= window {
			if err := readAck(); err != nil {
				return err
			}
		}
		if !bursting {
			next = next.Add(time.Duration(float64(len(ms)) / qps * float64(time.Second)))
		}
	}
	for len(inflight) > 0 {
		if err := readAck(); err != nil {
			return err
		}
	}

	// Fence: one query round-trip proves the target (and, through a
	// gateway's session leases, every backend) applied everything this
	// connection's acked batches forwarded.
	if err := enc.Encode(transport.Query(1)); err != nil {
		return err
	}
	if err := enc.Flush(); err != nil {
		return err
	}
	if _, err := dec.Next(); err != nil {
		return fmt.Errorf("fence query: %w", err)
	}
	return nil
}

// appendUserMsgs appends one fresh user's hello and reports to the
// batch under assembly, with the matching reference operations. Users
// past the workload's size reuse its value patterns (u mod N) but keep
// distinct ids and report randomness.
func (st *driver) appendUserMsgs(u int, ms *[]transport.Msg, ops *[]soakOp) error {
	cl, err := st.factory.NewClient(u, st.seed+int64(u))
	if err != nil {
		return err
	}
	*ms = append(*ms, transport.Hello(u, cl.Order()))
	*ops = append(*ops, soakOp{hello: true, order: cl.Order()})
	vals := st.w.Users[u%st.w.N].Values(st.w.D)
	for t := 1; t <= st.w.D; t++ {
		r, ok := cl.Observe(vals[t-1] == 1)
		if !ok {
			continue
		}
		*ms = append(*ms, transport.FromReport(protocol.Report{User: r.User, Order: r.Order, J: r.J, Bit: r.Bit}))
		*ops = append(*ops, soakOp{rep: r})
	}
	return nil
}
