module rtf

go 1.22
