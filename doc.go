// Package rtf is the root of the RTF repository: a Go implementation of
// "Randomize the Future: Asymptotically Optimal Locally Private Frequency
// Estimation Protocol for Longitudinal Data" (Ohrimenko, Wirth, Wu;
// PODS 2022).
//
// The public API lives in rtf/ldp (protocol: one-call tracking, streaming
// client/server, batch transport, domain extension) and rtf/workload
// (synthetic dataset generation and CSV IO). The implementation,
// baselines, evaluation harness and verifiers live under rtf/internal;
// the experiments E1–E20 are runnable via cmd/rtf-experiments, the
// sharded batch-ingest aggregation service via cmd/rtf-serve (load-
// tested by cmd/rtf-sim -drive), and bench_test.go in this directory
// carries one benchmark per experiment plus micro-benchmarks of every
// hot path, including the batched-versus-single-message ingestion
// comparison.
package rtf
