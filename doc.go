// Package rtf is the root of the RTF repository: a Go implementation of
// "Randomize the Future: Asymptotically Optimal Locally Private Frequency
// Estimation Protocol for Longitudinal Data" (Ohrimenko, Wirth, Wu;
// PODS 2022).
//
// The public API lives in rtf/ldp (the Mechanism registry over every
// protocol of the paper, one-call tracking, mechanism-agnostic streaming
// client/server with a unified Query/Answer entry point, batch
// transport, domain extension) and rtf/workload (synthetic dataset
// generation and CSV IO). The implementation, baselines, evaluation
// harness and verifiers live under rtf/internal; the experiments E1–E21
// are runnable via cmd/rtf-experiments, the sharded batch-ingest
// aggregation service via cmd/rtf-serve (hosting any registered dyadic
// mechanism, load-tested across every query shape by cmd/rtf-sim
// -drive), and bench_test.go in this directory
// carries one benchmark per experiment plus micro-benchmarks of every
// hot path, including the batched-versus-single-message ingestion
// comparison.
//
// The aggregation service is durable: rtf/internal/persist provides a
// segmented write-ahead log and checksummed snapshot files, the
// transport layer journals every ingested frame before applying it
// (DurableCollector), and mechanisms expose their server state through
// the ldp Snapshotter/Restorer capability, so a crashed rtf-serve
// restarts from snapshot + WAL replay answering every query bit-for-bit
// as if uninterrupted — reports are spent privacy budget and can never
// be re-requested from users. cmd/rtf-sim -recover exercises the whole
// cycle, kill -9 included. The journaling hot path is allocation-free
// in steady state, and rtf-serve -wal-commit-interval enables WAL group
// commit (persist.GroupCommitter): batches from all connections that
// arrive within the coalescing window are committed with one write and
// at most one fsync, with each batch acknowledged only after its group
// is journaled — grouping changes who pays for the sync, never what an
// ack promises.
//
// The service also scales out: cmd/rtf-gateway (rtf/internal/cluster)
// fronts N rtf-serve backends as one service, hash-partitioning users
// across them (user id mod N) and answering every query shape by
// scatter/gather — each backend ships its raw per-interval integer
// sums (a SumsFrame on the wire), and the gateway folds them into a
// fresh accumulator before estimating. Because the dyadic state is
// additive in exact integers and the estimator is a fixed linear
// function of them, gateway answers are bit-for-bit those of a single
// serial server fed every report; a dead backend stalls (re-dial with
// backoff) rather than fails, and cmd/rtf-sim -cluster proves recovery
// end to end by kill -9ing the durable backend mid-ingest.
//
// Cluster membership is dynamic: rtf-gateway -members runs the
// membership gateway (rtf/internal/cluster.MemberGateway over
// rtf/internal/membership), which partitions users into -vshards
// virtual shards placed on K-member owner sets by rendezvous (HRW)
// hashing under an epoched View carried on the wire (MsgViewUpdate).
// Ingest forwards every report to all K owners — under local DP a lost
// shard is unrecoverable signal, since re-requesting reports would
// spend privacy budget twice, so replication is the only safe
// durability story — and queries quorum-read every owner, comparing
// raw integer sums bit-for-bit (after fencing all in-flight forwards,
// so a mismatch is corruption, never a race). POST /membership/reshard
// joins or drains members online: the gateway fences live sessions,
// ships moved vshards as snapshots over MsgShardTransfer frames
// (~1/N movement, the rendezvous minimum), and bumps the epoch so no
// report is ever applied under two placements. cmd/rtf-sim -membership
// proves join-mid-ingest, drain-and-SIGTERM, and kill -9 of a replica,
// all bit-for-bit against an uninterrupted serial engine.
//
// Domain-valued tracking (the paper's "richer domains" adaptation,
// Section 1) is a first-class online workload in the same architecture:
// each user samples one target item from [0..m), streams its Boolean
// indicator through any mechanism with the Domain capability
// (ldp.NewDomainClient), and the server runs one dyadic accumulator per
// item with estimates scaled by m (ldp.NewDomainServer), answering the
// item-scoped query shapes — PointItem, SeriesItem and the TopK
// heavy-hitter query — online. The per-item counters live in one
// contiguous per-shard matrix (protocol.DomainSharded), item-major, so
// domain ingest is a single indexed atomic add and TopK a linear sweep;
// estimates stay fixed linear functions of exact integer counters, so
// the layout is invisible in every answer (docs/PERFORMANCE.md derives
// the argument and the measured ~2x ingest speedup). Item-tagged wire frames carry the same
// workload over TCP (rtf-serve -m), through the write-ahead log and
// snapshots (per-item state), and across the cluster gateway
// (rtf-gateway -m, shipping per-item raw sums), all with the same
// bit-for-bit exactness; ldp.TrackDomain is a thin offline wrapper over
// the identical streaming engines, and cmd/rtf-sim -domain proves the
// full deployment — gateway, kill -9, snapshot+WAL recovery — end to
// end.
//
// The serving processes are observable and overload-safe:
// rtf/internal/obs is a dependency-free metrics registry (counters,
// gauges, histograms, a JSON /metrics endpoint mounted by -metrics,
// and a logfmt structured logger both binaries write to stderr), and
// transport.ServerMetrics instruments ingest rate, batch sizes,
// apply latency, queue occupancy, WAL lag, snapshot age, per-backend
// scatter latency and per-mechanism query counts across rtf-serve and
// rtf-gateway. A bounded admission queue (-queue) sheds acked batches
// whole — a negative ack, never a partial apply; on the gateway the
// check runs before any forward — while legacy batches block for
// natural TCP backpressure; the gateway read path adds per-backend
// fetch deadlines (-fetch-timeout) and hedged reads (-hedge) against
// slow backends. cmd/rtf-sim -soak closes the loop: a paced load
// harness that spawns either topology, scrapes /metrics, bursts until
// the queue sheds, and asserts steady memory, bounded queue depth, a
// p99 ingest-latency ceiling and bit-for-bit equality between the
// served answers and a reference engine fed exactly the acked batches.
package rtf
