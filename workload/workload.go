// Package workload is the public API for generating and loading
// longitudinal Boolean datasets: n user streams over d time periods,
// each changing value at most k times. It wraps rtf/internal/workload
// with a seed-based interface so downstream users never handle internal
// RNG types.
//
// A quick start:
//
//	w, err := workload.Generate(workload.Uniform{N: 10000, D: 256, K: 4}, 1)
//	truth := w.Truth()
package workload

import (
	"fmt"
	"io"

	"rtf/internal/rng"
	iw "rtf/internal/workload"
)

// Stream is one user's Boolean value sequence, encoded as the sorted
// 1-based times at which the value flips (starting from the implicit 0
// before time 1). It exposes ValueAt, Values and NumChanges.
type Stream = iw.UserStream

// Workload is a complete dataset; it exposes Truth, Validate,
// MaxChanges, TotalChanges and WriteCSV.
type Workload = iw.Workload

// ReadCSV parses a workload in the WriteCSV format.
func ReadCSV(r io.Reader) (*Workload, error) { return iw.ReadCSV(r) }

// Spec describes a synthetic workload to generate. The concrete types in
// this package (Uniform, MaxChanges, Bursty, ZipfActivity, Step,
// Adversarial, Periodic, Static) implement it.
type Spec interface {
	// Name identifies the spec in experiment output.
	Name() string

	generator() iw.Generator
}

// Generate builds the workload described by the spec, deterministically
// from the seed.
func Generate(s Spec, seed int64) (*Workload, error) {
	if s == nil {
		return nil, fmt.Errorf("workload: nil spec")
	}
	return s.generator().Generate(rng.NewFromSeed(seed))
}

// Uniform gives each user a change count drawn uniformly from [0..K] at
// uniform times — the neutral workload for scaling studies.
type Uniform struct{ N, D, K int }

// Name implements Spec.
func (s Uniform) Name() string { return "uniform" }

func (s Uniform) generator() iw.Generator { return iw.UniformGen{N: s.N, D: s.D, K: s.K} }

// MaxChanges gives every user exactly K changes — the worst case for the
// sparsity bound.
type MaxChanges struct{ N, D, K int }

// Name implements Spec.
func (s MaxChanges) Name() string { return "max-changes" }

func (s MaxChanges) generator() iw.Generator { return iw.MaxChangesGen{N: s.N, D: s.D, K: s.K} }

// Bursty concentrates changes in the window [Start..End] with probability
// InBurst — a breaking-news event.
type Bursty struct {
	N, D, K    int
	Start, End int
	InBurst    float64
}

// Name implements Spec.
func (s Bursty) Name() string { return "bursty" }

func (s Bursty) generator() iw.Generator {
	return iw.BurstyGen{N: s.N, D: s.D, K: s.K, Start: s.Start, End: s.End, InBurst: s.InBurst}
}

// ZipfActivity draws each user's change count from a Zipf law with
// exponent S — a few hyper-active users, a long static tail.
type ZipfActivity struct {
	N, D, K int
	S       float64
}

// Name implements Spec.
func (s ZipfActivity) Name() string { return "zipf-activity" }

func (s ZipfActivity) generator() iw.Generator {
	return iw.ZipfActivityGen{N: s.N, D: s.D, K: s.K, S: s.S}
}

// Step flips Fraction of the users 0→1 in a jittered window around T0 —
// a global trend the online protocol must track promptly.
type Step struct {
	N, D     int
	T0       int
	Jitter   int
	Fraction float64
}

// Name implements Spec.
func (s Step) Name() string { return "step" }

func (s Step) generator() iw.Generator {
	return iw.StepGen{N: s.N, D: s.D, T0: s.T0, Jitter: s.Jitter, Fraction: s.Fraction}
}

// Adversarial makes every user flip at the same K times — worst-case
// synchronized swings of ±n.
type Adversarial struct{ N, D, K int }

// Name implements Spec.
func (s Adversarial) Name() string { return "adversarial" }

func (s Adversarial) generator() iw.Generator { return iw.AdversarialGen{N: s.N, D: s.D, K: s.K} }

// Periodic toggles each user every Period steps from a random phase,
// truncated at K changes.
type Periodic struct {
	N, D, K int
	Period  int
}

// Name implements Spec.
func (s Periodic) Name() string { return "periodic" }

func (s Periodic) generator() iw.Generator {
	return iw.PeriodicGen{N: s.N, D: s.D, K: s.K, Period: s.Period}
}

// Static produces users who never change — estimator output is pure
// noise around zero.
type Static struct{ N, D int }

// Name implements Spec.
func (s Static) Name() string { return "static" }

func (s Static) generator() iw.Generator { return iw.StaticGen{N: s.N, D: s.D} }
