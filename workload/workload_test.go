package workload

import (
	"bytes"
	"testing"
)

func TestGenerateAllSpecs(t *testing.T) {
	specs := []Spec{
		Uniform{N: 100, D: 64, K: 4},
		MaxChanges{N: 100, D: 64, K: 4},
		Bursty{N: 100, D: 64, K: 4, Start: 8, End: 24, InBurst: 0.7},
		ZipfActivity{N: 100, D: 64, K: 4, S: 1.3},
		Step{N: 100, D: 64, T0: 32, Jitter: 2, Fraction: 0.4},
		Adversarial{N: 100, D: 64, K: 4},
		Periodic{N: 100, D: 64, K: 4, Period: 12},
		Static{N: 100, D: 64},
	}
	for _, s := range specs {
		w, err := Generate(s, 7)
		if err != nil {
			t.Errorf("%s: %v", s.Name(), err)
			continue
		}
		if err := w.Validate(); err != nil {
			t.Errorf("%s: invalid workload: %v", s.Name(), err)
		}
		if s.Name() == "" {
			t.Error("empty spec name")
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Uniform{N: 50, D: 32, K: 3}, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Uniform{N: 50, D: 32, K: 3}, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Users {
		at, bt := a.Users[i].ChangeTimes, b.Users[i].ChangeTimes
		if len(at) != len(bt) {
			t.Fatal("same seed gave different workloads")
		}
		for j := range at {
			if at[j] != bt[j] {
				t.Fatal("same seed gave different change times")
			}
		}
	}
	c, err := Generate(Uniform{N: 50, D: 32, K: 3}, 100)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Users {
		if len(a.Users[i].ChangeTimes) != len(c.Users[i].ChangeTimes) {
			same = false
			break
		}
		for j := range a.Users[i].ChangeTimes {
			if a.Users[i].ChangeTimes[j] != c.Users[i].ChangeTimes[j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds gave identical workloads")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(nil, 1); err == nil {
		t.Error("nil spec accepted")
	}
	if _, err := Generate(Uniform{N: 0, D: 64, K: 4}, 1); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestCSVRoundTripPublic(t *testing.T) {
	w, err := Generate(Uniform{N: 20, D: 16, K: 2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := w.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != w.N || got.D != w.D || got.K != w.K {
		t.Error("round trip lost header")
	}
}
