// Package obs is the runtime-observability substrate of the serving
// binaries: lock-free counters, gauges and histograms collected in a
// Registry, an expvar-style JSON endpoint that exports a point-in-time
// Snapshot over HTTP, a scrape-side parser for that snapshot (the soak
// harness and operational tooling read it back), and a small logfmt
// structured logger whose lines are machine-parseable — rtf-sim learns
// the listen and metrics addresses of the processes it spawns by
// parsing their startup log lines.
//
// The instruments are deliberately minimal: a counter is one atomic
// add, a gauge is one atomic store, a histogram observation is two
// atomic adds (bucket + count) plus a CAS loop for the sum. Nothing on
// an ingest hot path ever takes a lock or allocates; the Registry's
// mutex guards only instrument creation and snapshotting.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (negative deltas are a caller bug but not checked on
// the hot path).
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous atomic value (float64, stored as bits).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta with a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram: observations land
// in the first bucket whose upper bound is >= the value, with an
// implicit +Inf overflow bucket at the end. Bounds are set at creation
// and never change, so Observe is lock-free.
type Histogram struct {
	bounds []float64 // ascending upper bounds, exclusive of +Inf
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-added
}

// NewHistogram builds a histogram over the given ascending upper
// bounds. An implicit +Inf bucket catches overflow.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// ExpBuckets returns n ascending bounds starting at start, each factor
// times the previous — the standard shape for latencies and sizes.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("obs: invalid ExpBuckets(%v, %v, %d)", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// snapshot copies the histogram's live state.
func (h *Histogram) snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// Quantile returns an upper-bound estimate of the p-quantile (0 < p <=
// 1) from the live buckets: the upper bound of the bucket holding the
// p-th observation, linearly interpolated within the bucket. Values in
// the overflow bucket report the last finite bound. With no
// observations it returns 0.
func (h *Histogram) Quantile(p float64) float64 {
	return h.snapshot().Quantile(p)
}

// Label renders a metric name with label pairs in the given order:
// Label("queries_total", "mechanism", "futurerand", "kind", "point")
// -> `queries_total{mechanism="futurerand",kind="point"}`. The rendered
// string is the registry key, so identical label sets must be passed in
// identical order.
func Label(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list for %s: %v", name, kv))
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// Registry is a named collection of instruments. All methods are safe
// for concurrent use; instrument handles are get-or-create, so wiring
// code can look the same instrument up from several places.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() float64
	hists      map[string]*Histogram
	info       map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		gaugeFuncs: make(map[string]func() float64),
		hists:      make(map[string]*Histogram),
		info:       make(map[string]string),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a computed gauge, evaluated at snapshot time.
// Re-registering a name replaces the function.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = fn
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (later bounds are ignored for an existing name).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// SetInfo records a static key/value (mechanism name, listen address,
// build parameters) exported verbatim in every snapshot.
func (r *Registry) SetInfo(key, value string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.info[key] = value
}

// Snapshot copies every instrument's current value. Gauge functions are
// evaluated inside the call but outside the registry lock, so a slow
// gauge (reading /proc, say) never blocks instrument creation.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	s := Snapshot{
		Info:       make(map[string]string, len(r.info)),
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)+len(r.gaugeFuncs)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for k, v := range r.info {
		s.Info[k] = v
	}
	for k, c := range r.counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range r.gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range r.hists {
		s.Histograms[k] = h.snapshot()
	}
	funcs := make(map[string]func() float64, len(r.gaugeFuncs))
	for k, fn := range r.gaugeFuncs {
		funcs[k] = fn
	}
	r.mu.Unlock()
	for k, fn := range funcs {
		s.Gauges[k] = fn()
	}
	return s
}
