package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Logger writes logfmt-structured lines:
//
//	ts=2026-08-07T12:00:00.000Z level=info component=rtf-serve msg=listening addr=127.0.0.1:7609 metrics=127.0.0.1:9609
//
// Keys are bare words; values are quoted only when they contain spaces,
// quotes or '=' so the common case stays grep-friendly while every line
// round-trips through ParseLogLine. The serving binaries log their
// listen and metrics addresses this way, and rtf-sim parses those lines
// to find the processes it spawns.
type Logger struct {
	mu        sync.Mutex
	w         io.Writer
	component string
	now       func() time.Time // test seam
}

// NewLogger builds a logger tagging every line with the component name.
func NewLogger(w io.Writer, component string) *Logger {
	return &Logger{w: w, component: component, now: time.Now}
}

// Info writes one info-level line with alternating key/value pairs.
func (l *Logger) Info(msg string, kv ...any) { l.log("info", msg, kv) }

// Error writes one error-level line with alternating key/value pairs.
func (l *Logger) Error(msg string, kv ...any) { l.log("error", msg, kv) }

func (l *Logger) log(level, msg string, kv []any) {
	var b strings.Builder
	b.WriteString("ts=")
	b.WriteString(l.now().UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteString(" level=")
	b.WriteString(level)
	b.WriteString(" component=")
	appendValue(&b, l.component)
	b.WriteString(" msg=")
	appendValue(&b, msg)
	for i := 0; i+1 < len(kv); i += 2 {
		b.WriteByte(' ')
		b.WriteString(fmt.Sprint(kv[i]))
		b.WriteByte('=')
		appendValue(&b, fmt.Sprint(kv[i+1]))
	}
	if len(kv)%2 != 0 {
		b.WriteString(" !BADKEY=")
		appendValue(&b, fmt.Sprint(kv[len(kv)-1]))
	}
	b.WriteByte('\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	io.WriteString(l.w, b.String())
}

// appendValue writes v, quoting it when it would break logfmt
// tokenization.
func appendValue(b *strings.Builder, v string) {
	if v == "" || strings.ContainsAny(v, " \t\n\"=") {
		b.WriteString(strconv.Quote(v))
		return
	}
	b.WriteString(v)
}

// ParseLogLine tokenizes one logfmt line into its key/value map. It
// returns ok=false for lines that are not logfmt (no key=value pairs),
// so callers can skip free-form output from other writers. Duplicate
// keys keep the last value.
func ParseLogLine(line string) (map[string]string, bool) {
	out := make(map[string]string)
	i, n := 0, len(line)
	for i < n {
		for i < n && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		if i >= n {
			break
		}
		eq := strings.IndexByte(line[i:], '=')
		if eq <= 0 {
			return nil, false
		}
		key := line[i : i+eq]
		if strings.ContainsAny(key, " \t\"") {
			return nil, false
		}
		i += eq + 1
		var val string
		if i < n && line[i] == '"' {
			// Quoted value: find the closing quote, honoring escapes.
			j := i + 1
			for j < n {
				if line[j] == '\\' {
					j += 2
					continue
				}
				if line[j] == '"' {
					break
				}
				j++
			}
			if j >= n {
				return nil, false
			}
			unq, err := strconv.Unquote(line[i : j+1])
			if err != nil {
				return nil, false
			}
			val = unq
			i = j + 1
		} else {
			j := i
			for j < n && line[j] != ' ' && line[j] != '\t' {
				j++
			}
			val = line[i:j]
			i = j
		}
		out[key] = val
	}
	if len(out) == 0 {
		return nil, false
	}
	return out, true
}
