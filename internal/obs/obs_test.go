package obs

import (
	"bytes"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reports_total")
	g := r.Gauge("depth")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				c.Add(2)
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8*1000*3 {
		t.Fatalf("counter = %d, want %d", got, 8*1000*3)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %v, want 0", got)
	}
	if r.Counter("reports_total") != c {
		t.Fatal("Counter is not get-or-create")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 2, 10)) // 1,2,4,...,512
	for v := 1; v <= 1000; v++ {
		h.Observe(float64(v))
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if want := 1000.0 * 1001 / 2; h.Sum() != want {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
	// The median of 1..1000 is ~500; its bucket is (256, 512].
	if q := h.Quantile(0.5); q < 256 || q > 512 {
		t.Fatalf("p50 = %v, want within (256, 512]", q)
	}
	// p99 falls in the overflow bucket; the histogram reports its last
	// finite bound.
	if q := h.Quantile(0.99); q != 512 {
		t.Fatalf("p99 = %v, want 512 (last finite bound)", q)
	}
	if q := (HistSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", q)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	h := NewHistogram([]float64{1, 10})
	h.Observe(1)    // lands in the <=1 bucket
	h.Observe(1.5)  // (1, 10]
	h.Observe(10)   // (1, 10]
	h.Observe(10.1) // overflow
	s := h.snapshot()
	want := []int64{1, 2, 1}
	for i, c := range s.Counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, c, want[i], s.Counts)
		}
	}
}

func TestLabel(t *testing.T) {
	got := Label("queries_total", "mechanism", "futurerand", "kind", "point")
	want := `queries_total{mechanism="futurerand",kind="point"}`
	if got != want {
		t.Fatalf("Label = %s, want %s", got, want)
	}
	if Label("plain") != "plain" {
		t.Fatal("unlabeled name must pass through")
	}
}

func TestSnapshotHTTPRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.SetInfo("mechanism", "futurerand")
	r.Counter("ingest_reports_total").Add(12345)
	r.Gauge("ingest_queue_depth").Set(3)
	r.GaugeFunc("wal_lag_records", func() float64 { return 7 })
	h := r.Histogram("ingest_batch_size", ExpBuckets(1, 4, 6))
	for i := 0; i < 100; i++ {
		h.Observe(256)
	}

	srv := httptest.NewServer(r)
	defer srv.Close()
	s, err := Fetch(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if s.Info["mechanism"] != "futurerand" {
		t.Fatalf("info = %v", s.Info)
	}
	if s.Counters["ingest_reports_total"] != 12345 {
		t.Fatalf("counter = %d", s.Counters["ingest_reports_total"])
	}
	if s.Gauges["ingest_queue_depth"] != 3 || s.Gauges["wal_lag_records"] != 7 {
		t.Fatalf("gauges = %v", s.Gauges)
	}
	hs, ok := s.Histograms["ingest_batch_size"]
	if !ok || hs.Count != 100 || hs.Sum != 25600 {
		t.Fatalf("histogram = %+v", hs)
	}
	if q := hs.Quantile(0.99); q <= 64 || q > 1024 {
		t.Fatalf("scraped p99 = %v, want in (64, 1024] (bucket upper bound of 256)", q)
	}

	// A ?gc=1 scrape forces a collection before sampling but serves the
	// same document.
	s2, err := Fetch(srv.URL + "?gc=1")
	if err != nil {
		t.Fatal(err)
	}
	if s2.Counters["ingest_reports_total"] != 12345 {
		t.Fatalf("gc scrape counter = %d", s2.Counters["ingest_reports_total"])
	}
}

func TestParseSnapshotRejectsMalformedHistogram(t *testing.T) {
	bad := `{"counters":{},"gauges":{},"histograms":{"h":{"count":1,"sum":1,"bounds":[1,2],"counts":[1]}}}`
	if _, err := ParseSnapshot(strings.NewReader(bad)); err == nil {
		t.Fatal("want error for counts/bounds mismatch")
	}
	if _, err := ParseSnapshot(strings.NewReader("not json")); err == nil {
		t.Fatal("want error for non-JSON")
	}
}

func TestLoggerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, "rtf-serve")
	l.now = func() time.Time { return time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC) }
	l.Info("listening", "addr", "127.0.0.1:7609", "metrics", "127.0.0.1:9609", "note", "two words")
	line := strings.TrimSuffix(buf.String(), "\n")
	kv, ok := ParseLogLine(line)
	if !ok {
		t.Fatalf("line does not parse: %q", line)
	}
	want := map[string]string{
		"ts":        "2026-08-07T12:00:00.000Z",
		"level":     "info",
		"component": "rtf-serve",
		"msg":       "listening",
		"addr":      "127.0.0.1:7609",
		"metrics":   "127.0.0.1:9609",
		"note":      "two words",
	}
	for k, v := range want {
		if kv[k] != v {
			t.Fatalf("key %s = %q, want %q (line %q)", k, kv[k], v, line)
		}
	}
}

func TestLoggerQuotesAwkwardValues(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, "x")
	l.Error("boom", "err", `read tcp: i/o timeout on "conn"`, "empty", "")
	kv, ok := ParseLogLine(strings.TrimSuffix(buf.String(), "\n"))
	if !ok {
		t.Fatalf("line does not parse: %q", buf.String())
	}
	if kv["err"] != `read tcp: i/o timeout on "conn"` {
		t.Fatalf("err = %q", kv["err"])
	}
	if v, present := kv["empty"]; !present || v != "" {
		t.Fatalf("empty = %q present=%v", v, present)
	}
	if kv["level"] != "error" {
		t.Fatalf("level = %q", kv["level"])
	}
}

func TestParseLogLineRejectsFreeForm(t *testing.T) {
	for _, line := range []string{
		"rtf-serve: listening on 127.0.0.1:7609",
		"",
		"   ",
		`msg="unterminated`,
	} {
		if kv, ok := ParseLogLine(line); ok {
			t.Fatalf("ParseLogLine(%q) = %v, want not-ok", line, kv)
		}
	}
}

func TestProcessMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterProcessMetrics(r)
	s := r.Snapshot()
	if s.Gauges["process_heap_bytes"] <= 0 {
		t.Fatalf("heap = %v", s.Gauges["process_heap_bytes"])
	}
	if s.Gauges["process_goroutines"] < 1 {
		t.Fatalf("goroutines = %v", s.Gauges["process_goroutines"])
	}
	if v := s.Gauges["process_uptime_seconds"]; v < 0 || math.IsNaN(v) {
		t.Fatalf("uptime = %v", v)
	}
	// RSS is linux-specific; on linux CI it must be positive.
	if v := s.Gauges["process_rss_bytes"]; v < 0 {
		t.Fatalf("rss = %v", v)
	}
}
