package obs

import (
	"net/http"
	"net/http/pprof"
)

// MountPprof mounts the net/http/pprof profiling handlers under
// /debug/pprof/ on mux — explicitly, rather than via the package's
// blank-import side effect on http.DefaultServeMux, so profiling is
// exposed only on the operator's metrics listener and only when the
// binary's -pprof flag asked for it. The index page links the named
// profiles (heap, goroutine, block, mutex, allocs); /profile and
// /trace capture CPU profiles and execution traces. See
// docs/PERFORMANCE.md for the profiling workflow.
func MountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
