package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"time"
)

// Snapshot is a point-in-time copy of a Registry, and the JSON document
// the /metrics endpoint serves. The scrape side (rtf-sim -soak,
// dashboards) decodes it with ParseSnapshot and reads quantiles off the
// histogram copies.
type Snapshot struct {
	Info       map[string]string       `json:"info,omitempty"`
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]float64      `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// HistSnapshot is a histogram's exported state: ascending finite upper
// bounds plus one trailing overflow bucket (len(Counts) == len(Bounds)+1).
type HistSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// Quantile returns an upper-bound estimate of the p-quantile (0 < p <=
// 1): the upper bound of the bucket holding the ceil(p*count)-th
// observation, linearly interpolated from the bucket's lower bound.
// Observations in the overflow bucket report the last finite bound (the
// histogram cannot see past it). With no observations it returns 0.
func (h HistSnapshot) Quantile(p float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if p <= 0 {
		p = 1e-9
	}
	if p > 1 {
		p = 1
	}
	rank := int64(float64(h.Count)*p + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.Counts {
		if c == 0 {
			cum += c
			continue
		}
		prev := cum
		cum += c
		if cum < rank {
			continue
		}
		if i >= len(h.Bounds) {
			// Overflow bucket: the last finite bound is the best
			// statement the histogram can make.
			if len(h.Bounds) == 0 {
				return 0
			}
			return h.Bounds[len(h.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		frac := float64(rank-prev) / float64(c)
		return lo + (h.Bounds[i]-lo)*frac
	}
	if len(h.Bounds) == 0 {
		return 0
	}
	return h.Bounds[len(h.Bounds)-1]
}

// ServeHTTP serves the registry's snapshot as JSON; a Registry is an
// http.Handler, mountable directly at /metrics. With ?gc=1 the scrape
// first forces a garbage collection and returns freed spans to the OS,
// so process_rss_bytes reflects the live set rather than the Go
// scavenger's lag — routine scrapes should omit it (a forced GC per
// scrape is not free), but a leak check comparing RSS across time
// needs it to not be fooled by transient-allocation ratchet.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req != nil && req.URL.Query().Get("gc") == "1" {
		debug.FreeOSMemory()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(r.Snapshot()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// ParseSnapshot decodes one JSON snapshot, validating histogram shapes
// so a scrape of a wrong endpoint fails loudly instead of yielding
// zeroed metrics.
func ParseSnapshot(r io.Reader) (Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("obs: decoding snapshot: %w", err)
	}
	for name, h := range s.Histograms {
		if len(h.Counts) != len(h.Bounds)+1 {
			return Snapshot{}, fmt.Errorf("obs: histogram %q has %d counts for %d bounds", name, len(h.Counts), len(h.Bounds))
		}
	}
	if s.Counters == nil {
		s.Counters = map[string]int64{}
	}
	if s.Gauges == nil {
		s.Gauges = map[string]float64{}
	}
	if s.Histograms == nil {
		s.Histograms = map[string]HistSnapshot{}
	}
	return s, nil
}

// Fetch scrapes a metrics endpoint over HTTP and parses the snapshot.
func Fetch(url string) (Snapshot, error) {
	resp, err := http.Get(url)
	if err != nil {
		return Snapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Snapshot{}, fmt.Errorf("obs: scraping %s: HTTP %d", url, resp.StatusCode)
	}
	return ParseSnapshot(resp.Body)
}

// RegisterProcessMetrics registers the standard process-level gauges:
// heap and RSS bytes, goroutine count, and uptime seconds. The RSS
// gauge reads /proc/self/statm and reports 0 where that is unavailable.
func RegisterProcessMetrics(r *Registry) {
	start := time.Now()
	r.GaugeFunc("process_uptime_seconds", func() float64 {
		return time.Since(start).Seconds()
	})
	r.GaugeFunc("process_goroutines", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.GaugeFunc("process_heap_bytes", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc)
	})
	r.GaugeFunc("process_rss_bytes", func() float64 {
		return float64(readRSSBytes())
	})
}

// readRSSBytes returns the resident set size from /proc/self/statm
// (field 2, in pages), or 0 when the file is unavailable.
func readRSSBytes() int64 {
	b, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	var size, rss int64
	if _, err := fmt.Sscanf(string(b), "%d %d", &size, &rss); err != nil {
		return 0
	}
	return rss * int64(os.Getpagesize())
}
