package workload

import (
	"fmt"

	"rtf/internal/dyadic"
	"rtf/internal/rng"
)

// Generator produces a synthetic workload from a seeded RNG. Generators
// are pure descriptions: calling Generate twice with equal-seeded RNGs
// yields identical workloads.
type Generator interface {
	// Generate builds the workload, drawing all randomness from g.
	Generate(g *rng.RNG) (*Workload, error)
	// Name identifies the generator in experiment output.
	Name() string
}

func checkDims(n, d, k int) error {
	if n < 1 {
		return fmt.Errorf("workload: n=%d < 1", n)
	}
	if !dyadic.IsPow2(d) {
		return fmt.Errorf("workload: d=%d not a power of two", d)
	}
	if k < 0 || k > d {
		return fmt.Errorf("workload: k=%d outside [0..d=%d]", k, d)
	}
	return nil
}

// UniformGen gives each user a change count drawn uniformly from [0..K]
// and change times drawn uniformly without replacement from [1..D]. This
// is the neutral workload used by the scaling experiments E1–E4.
type UniformGen struct {
	N, D, K int
}

// Name implements Generator.
func (u UniformGen) Name() string { return "uniform" }

// Generate implements Generator.
func (u UniformGen) Generate(g *rng.RNG) (*Workload, error) {
	if err := checkDims(u.N, u.D, u.K); err != nil {
		return nil, err
	}
	w := &Workload{N: u.N, D: u.D, K: u.K, Users: make([]UserStream, u.N)}
	for i := range w.Users {
		c := g.IntN(u.K + 1)
		w.Users[i] = UserStream{ChangeTimes: oneBased(g.KSubset(u.D, c))}
	}
	return w, nil
}

// MaxChangesGen gives every user exactly K changes at uniform times: the
// worst case for the sparsity bound, exercising full support (§5.2).
type MaxChangesGen struct {
	N, D, K int
}

// Name implements Generator.
func (m MaxChangesGen) Name() string { return "max-changes" }

// Generate implements Generator.
func (m MaxChangesGen) Generate(g *rng.RNG) (*Workload, error) {
	if err := checkDims(m.N, m.D, m.K); err != nil {
		return nil, err
	}
	w := &Workload{N: m.N, D: m.D, K: m.K, Users: make([]UserStream, m.N)}
	for i := range w.Users {
		w.Users[i] = UserStream{ChangeTimes: oneBased(g.KSubset(m.D, m.K))}
	}
	return w, nil
}

// BurstyGen concentrates changes in a window [Start..End] (a breaking-news
// event): each user changes 0..K times, with each change time drawn from
// the window with probability InBurst and uniformly otherwise.
type BurstyGen struct {
	N, D, K    int
	Start, End int     // event window, 1-based inclusive
	InBurst    float64 // probability a change lands in the window
}

// Name implements Generator.
func (b BurstyGen) Name() string { return "bursty" }

// Generate implements Generator.
func (b BurstyGen) Generate(g *rng.RNG) (*Workload, error) {
	if err := checkDims(b.N, b.D, b.K); err != nil {
		return nil, err
	}
	if b.Start < 1 || b.End > b.D || b.Start > b.End {
		return nil, fmt.Errorf("workload: burst window [%d..%d] invalid for d=%d", b.Start, b.End, b.D)
	}
	if b.InBurst < 0 || b.InBurst > 1 {
		return nil, fmt.Errorf("workload: InBurst=%v outside [0,1]", b.InBurst)
	}
	w := &Workload{N: b.N, D: b.D, K: b.K, Users: make([]UserStream, b.N)}
	for i := range w.Users {
		c := g.IntN(b.K + 1)
		seen := make(map[int]bool, c)
		times := make([]int, 0, c)
		for len(times) < c {
			var t int
			if g.Bernoulli(b.InBurst) {
				t = b.Start + g.IntN(b.End-b.Start+1)
			} else {
				t = 1 + g.IntN(b.D)
			}
			if !seen[t] {
				seen[t] = true
				times = append(times, t)
			}
		}
		sortInts(times)
		w.Users[i] = UserStream{ChangeTimes: times}
	}
	return w, nil
}

// ZipfActivityGen draws each user's change count from a Zipf law over
// [0..K] (exponent S): a few hyper-active users, a long tail of static
// ones — the telemetry-counter population of the introduction.
type ZipfActivityGen struct {
	N, D, K int
	S       float64 // Zipf exponent over change counts
}

// Name implements Generator.
func (z ZipfActivityGen) Name() string { return "zipf-activity" }

// Generate implements Generator.
func (z ZipfActivityGen) Generate(g *rng.RNG) (*Workload, error) {
	if err := checkDims(z.N, z.D, z.K); err != nil {
		return nil, err
	}
	zipf := g.NewZipf(z.K+1, z.S)
	w := &Workload{N: z.N, D: z.D, K: z.K, Users: make([]UserStream, z.N)}
	for i := range w.Users {
		c := zipf.Sample() // 0 is most likely: most users never change
		w.Users[i] = UserStream{ChangeTimes: oneBased(g.KSubset(z.D, c))}
	}
	return w, nil
}

// StepGen models a global trend: Fraction of the users flip 0→1 within
// a jittered window around time T0 (one change each); everyone else is
// static. The ground truth is a smoothed step — the shape the online
// protocol must track promptly.
type StepGen struct {
	N, D     int
	T0       int     // center of the step
	Jitter   int     // each adopter flips at T0 + IntN(2·Jitter+1) − Jitter
	Fraction float64 // fraction of users adopting
}

// Name implements Generator.
func (s StepGen) Name() string { return "step" }

// Generate implements Generator.
func (s StepGen) Generate(g *rng.RNG) (*Workload, error) {
	if err := checkDims(s.N, s.D, 1); err != nil {
		return nil, err
	}
	if s.T0 < 1 || s.T0 > s.D {
		return nil, fmt.Errorf("workload: step time %d outside [1..%d]", s.T0, s.D)
	}
	if s.Fraction < 0 || s.Fraction > 1 {
		return nil, fmt.Errorf("workload: fraction %v outside [0,1]", s.Fraction)
	}
	if s.Jitter < 0 {
		return nil, fmt.Errorf("workload: negative jitter %d", s.Jitter)
	}
	w := &Workload{N: s.N, D: s.D, K: 1, Users: make([]UserStream, s.N)}
	for i := range w.Users {
		if !g.Bernoulli(s.Fraction) {
			continue
		}
		t := s.T0
		if s.Jitter > 0 {
			t += g.IntN(2*s.Jitter+1) - s.Jitter
		}
		if t < 1 {
			t = 1
		}
		if t > s.D {
			t = s.D
		}
		w.Users[i] = UserStream{ChangeTimes: []int{t}}
	}
	return w, nil
}

// AdversarialGen makes every user flip at the same K times: the
// worst-case synchronized workload, where the true count swings by ±n in
// a single period.
type AdversarialGen struct {
	N, D, K int
}

// Name implements Generator.
func (a AdversarialGen) Name() string { return "adversarial" }

// Generate implements Generator.
func (a AdversarialGen) Generate(g *rng.RNG) (*Workload, error) {
	if err := checkDims(a.N, a.D, a.K); err != nil {
		return nil, err
	}
	times := oneBased(g.KSubset(a.D, a.K))
	w := &Workload{N: a.N, D: a.D, K: a.K, Users: make([]UserStream, a.N)}
	for i := range w.Users {
		w.Users[i] = UserStream{ChangeTimes: append([]int(nil), times...)}
	}
	return w, nil
}

// PeriodicGen models habitual behaviour: each user toggles every Period
// steps starting from a random phase, truncated at K changes.
type PeriodicGen struct {
	N, D, K int
	Period  int
}

// Name implements Generator.
func (p PeriodicGen) Name() string { return "periodic" }

// Generate implements Generator.
func (p PeriodicGen) Generate(g *rng.RNG) (*Workload, error) {
	if err := checkDims(p.N, p.D, p.K); err != nil {
		return nil, err
	}
	if p.Period < 1 {
		return nil, fmt.Errorf("workload: period %d < 1", p.Period)
	}
	w := &Workload{N: p.N, D: p.D, K: p.K, Users: make([]UserStream, p.N)}
	for i := range w.Users {
		phase := 1 + g.IntN(p.Period)
		var times []int
		for t := phase; t <= p.D && len(times) < p.K; t += p.Period {
			times = append(times, t)
		}
		w.Users[i] = UserStream{ChangeTimes: times}
	}
	return w, nil
}

// StaticGen produces users who never change (all zero streams), a
// degenerate sanity workload: the truth is identically zero and all
// estimator output is pure noise.
type StaticGen struct {
	N, D int
}

// Name implements Generator.
func (s StaticGen) Name() string { return "static" }

// Generate implements Generator.
func (s StaticGen) Generate(g *rng.RNG) (*Workload, error) {
	if err := checkDims(s.N, s.D, 0); err != nil {
		return nil, err
	}
	return &Workload{N: s.N, D: s.D, K: 1, Users: make([]UserStream, s.N)}, nil
}

func oneBased(zero []int) []int {
	for i := range zero {
		zero[i]++
	}
	return zero
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
