package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV feeds arbitrary text to the parser: it must either return a
// workload that passes Validate or an error — never panic, never accept
// an inconsistent dataset.
func FuzzReadCSV(f *testing.F) {
	f.Add("2,8,2\n1 5\n\n")
	f.Add("1,4,1\n3\n")
	f.Add("")
	f.Add("x")
	f.Add("1,8,1\n9\n")
	f.Add("0,8,0\n")
	f.Fuzz(func(t *testing.T, input string) {
		w, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := w.Validate(); err != nil {
			t.Fatalf("ReadCSV accepted invalid workload: %v", err)
		}
		// A parsed workload must round-trip.
		var buf bytes.Buffer
		if err := w.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.N != w.N || back.D != w.D || back.K != w.K {
			t.Fatal("round trip changed header")
		}
		// Truth must be stable under round trip.
		a, b := w.Truth(), back.Truth()
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("round trip changed truth")
			}
		}
	})
}
