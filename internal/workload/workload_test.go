package workload

import (
	"bytes"
	"strings"
	"testing"

	"rtf/internal/rng"
)

func TestUserStreamValueAt(t *testing.T) {
	u := UserStream{ChangeTimes: []int{2, 5}}
	want := []uint8{0, 1, 1, 1, 0, 0}
	for tt := 1; tt <= 6; tt++ {
		if got := u.ValueAt(tt); got != want[tt-1] {
			t.Errorf("ValueAt(%d) = %d, want %d", tt, got, want[tt-1])
		}
	}
	if u.NumChanges() != 2 {
		t.Errorf("NumChanges = %d", u.NumChanges())
	}
}

func TestUserStreamValuesMatchesValueAt(t *testing.T) {
	g := rng.New(1, 2)
	for trial := 0; trial < 100; trial++ {
		d := 64
		c := g.IntN(10)
		times := g.KSubset(d, c)
		for i := range times {
			times[i]++
		}
		u := UserStream{ChangeTimes: times}
		vals := u.Values(d)
		for tt := 1; tt <= d; tt++ {
			if vals[tt-1] != u.ValueAt(tt) {
				t.Fatalf("Values[%d] = %d, ValueAt = %d", tt, vals[tt-1], u.ValueAt(tt))
			}
		}
	}
}

func TestTruthMatchesBruteForce(t *testing.T) {
	g := rng.New(3, 4)
	gen := UniformGen{N: 200, D: 64, K: 6}
	w, err := gen.Generate(g)
	if err != nil {
		t.Fatal(err)
	}
	truth := w.Truth()
	for tt := 1; tt <= w.D; tt++ {
		want := 0
		for _, u := range w.Users {
			want += int(u.ValueAt(tt))
		}
		if truth[tt-1] != want {
			t.Fatalf("Truth[%d] = %d, brute force %d", tt, truth[tt-1], want)
		}
	}
}

func TestValidate(t *testing.T) {
	valid := &Workload{N: 2, D: 8, K: 2, Users: []UserStream{
		{ChangeTimes: []int{1, 8}}, {},
	}}
	if err := valid.Validate(); err != nil {
		t.Errorf("valid workload rejected: %v", err)
	}
	cases := map[string]*Workload{
		"bad d":       {N: 1, D: 6, K: 1, Users: []UserStream{{}}},
		"wrong count": {N: 2, D: 8, K: 1, Users: []UserStream{{}}},
		"too many":    {N: 1, D: 8, K: 1, Users: []UserStream{{ChangeTimes: []int{1, 2}}}},
		"unsorted":    {N: 1, D: 8, K: 3, Users: []UserStream{{ChangeTimes: []int{5, 3}}}},
		"duplicate":   {N: 1, D: 8, K: 3, Users: []UserStream{{ChangeTimes: []int{3, 3}}}},
		"out of hi":   {N: 1, D: 8, K: 1, Users: []UserStream{{ChangeTimes: []int{9}}}},
		"out of lo":   {N: 1, D: 8, K: 1, Users: []UserStream{{ChangeTimes: []int{0}}}},
		"neg k":       {N: 1, D: 8, K: -1, Users: []UserStream{{}}},
	}
	for name, w := range cases {
		if err := w.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestGeneratorsProduceValidWorkloads(t *testing.T) {
	g := rng.New(5, 6)
	gens := []Generator{
		UniformGen{N: 100, D: 64, K: 5},
		MaxChangesGen{N: 100, D: 64, K: 5},
		BurstyGen{N: 100, D: 64, K: 5, Start: 16, End: 31, InBurst: 0.8},
		ZipfActivityGen{N: 100, D: 64, K: 5, S: 1.5},
		StepGen{N: 100, D: 64, T0: 32, Jitter: 4, Fraction: 0.6},
		AdversarialGen{N: 100, D: 64, K: 5},
		PeriodicGen{N: 100, D: 64, K: 5, Period: 10},
		StaticGen{N: 100, D: 64},
	}
	for _, gen := range gens {
		w, err := gen.Generate(g.Split())
		if err != nil {
			t.Errorf("%s: %v", gen.Name(), err)
			continue
		}
		if err := w.Validate(); err != nil {
			t.Errorf("%s produced invalid workload: %v", gen.Name(), err)
		}
		if gen.Name() == "" {
			t.Error("empty generator name")
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	gen := UniformGen{N: 50, D: 32, K: 4}
	w1, _ := gen.Generate(rng.New(7, 8))
	w2, _ := gen.Generate(rng.New(7, 8))
	for i := range w1.Users {
		a, b := w1.Users[i].ChangeTimes, w2.Users[i].ChangeTimes
		if len(a) != len(b) {
			t.Fatal("same seed produced different workloads")
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatal("same seed produced different change times")
			}
		}
	}
}

func TestMaxChangesGen(t *testing.T) {
	w, err := MaxChangesGen{N: 50, D: 32, K: 4}.Generate(rng.New(9, 10))
	if err != nil {
		t.Fatal(err)
	}
	for u, us := range w.Users {
		if us.NumChanges() != 4 {
			t.Errorf("user %d has %d changes, want 4", u, us.NumChanges())
		}
	}
	if w.MaxChanges() != 4 {
		t.Errorf("MaxChanges = %d", w.MaxChanges())
	}
}

func TestBurstyGenConcentration(t *testing.T) {
	gen := BurstyGen{N: 500, D: 256, K: 4, Start: 100, End: 120, InBurst: 0.9}
	w, err := gen.Generate(rng.New(11, 12))
	if err != nil {
		t.Fatal(err)
	}
	in, total := 0, 0
	for _, us := range w.Users {
		for _, ct := range us.ChangeTimes {
			total++
			if ct >= 100 && ct <= 120 {
				in++
			}
		}
	}
	// ≥ 90% aimed at an 8% window; allow collisions and background.
	if frac := float64(in) / float64(total); frac < 0.7 {
		t.Errorf("burst fraction %v, want > 0.7", frac)
	}
}

func TestZipfActivityHeavyTail(t *testing.T) {
	gen := ZipfActivityGen{N: 2000, D: 64, K: 8, S: 2}
	w, err := gen.Generate(rng.New(13, 14))
	if err != nil {
		t.Fatal(err)
	}
	zero := 0
	for _, us := range w.Users {
		if us.NumChanges() == 0 {
			zero++
		}
	}
	// With s=2 the mode is 0 changes; most users should be static.
	if zero < w.N/2 {
		t.Errorf("only %d/%d static users under Zipf(2)", zero, w.N)
	}
}

func TestStepGenShape(t *testing.T) {
	gen := StepGen{N: 1000, D: 64, T0: 32, Jitter: 0, Fraction: 0.5}
	w, err := gen.Generate(rng.New(15, 16))
	if err != nil {
		t.Fatal(err)
	}
	truth := w.Truth()
	if truth[30] != 0 {
		t.Errorf("pre-step truth = %d, want 0", truth[30])
	}
	adopters := truth[63]
	if adopters < 400 || adopters > 600 {
		t.Errorf("adopters = %d, want ≈ 500", adopters)
	}
	if truth[31] != adopters {
		t.Errorf("step not sharp: truth[32]=%d, final=%d", truth[31], adopters)
	}
}

func TestAdversarialAllSame(t *testing.T) {
	w, err := AdversarialGen{N: 20, D: 32, K: 3}.Generate(rng.New(17, 18))
	if err != nil {
		t.Fatal(err)
	}
	first := w.Users[0].ChangeTimes
	for _, us := range w.Users {
		for i := range first {
			if us.ChangeTimes[i] != first[i] {
				t.Fatal("adversarial users differ")
			}
		}
	}
	truth := w.Truth()
	// Truth must jump between 0 and N at every change.
	for _, a := range truth {
		if a != 0 && a != 20 {
			t.Errorf("adversarial truth %d not in {0,20}", a)
		}
	}
}

func TestPeriodicGen(t *testing.T) {
	w, err := PeriodicGen{N: 10, D: 64, K: 3, Period: 10}.Generate(rng.New(19, 20))
	if err != nil {
		t.Fatal(err)
	}
	for _, us := range w.Users {
		if us.NumChanges() > 3 {
			t.Errorf("periodic user exceeded K: %d", us.NumChanges())
		}
		for i := 1; i < len(us.ChangeTimes); i++ {
			if us.ChangeTimes[i]-us.ChangeTimes[i-1] != 10 {
				t.Errorf("period broken: %v", us.ChangeTimes)
			}
		}
	}
}

func TestStaticGen(t *testing.T) {
	w, err := StaticGen{N: 10, D: 16}.Generate(rng.New(21, 22))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range w.Truth() {
		if a != 0 {
			t.Errorf("static truth %d != 0", a)
		}
	}
	if w.TotalChanges() != 0 {
		t.Error("static workload has changes")
	}
}

func TestGeneratorValidation(t *testing.T) {
	g := rng.New(23, 24)
	bad := []Generator{
		UniformGen{N: 0, D: 64, K: 5},
		UniformGen{N: 10, D: 63, K: 5},
		UniformGen{N: 10, D: 64, K: 65},
		UniformGen{N: 10, D: 64, K: -1},
		BurstyGen{N: 10, D: 64, K: 5, Start: 0, End: 10, InBurst: 0.5},
		BurstyGen{N: 10, D: 64, K: 5, Start: 20, End: 10, InBurst: 0.5},
		BurstyGen{N: 10, D: 64, K: 5, Start: 1, End: 10, InBurst: 1.5},
		StepGen{N: 10, D: 64, T0: 0, Fraction: 0.5},
		StepGen{N: 10, D: 64, T0: 5, Fraction: 1.5},
		StepGen{N: 10, D: 64, T0: 5, Jitter: -1, Fraction: 0.5},
		PeriodicGen{N: 10, D: 64, K: 5, Period: 0},
	}
	for _, gen := range bad {
		if _, err := gen.Generate(g); err == nil {
			t.Errorf("%T %+v accepted", gen, gen)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	w, err := UniformGen{N: 40, D: 32, K: 5}.Generate(rng.New(25, 26))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := w.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != w.N || got.D != w.D || got.K != w.K {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range w.Users {
		a, b := w.Users[i].ChangeTimes, got.Users[i].ChangeTimes
		if len(a) != len(b) {
			t.Fatalf("user %d length mismatch", i)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("user %d times differ", i)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"bad header":  "x,y\n",
		"bad time":    "1,8,2\n1 z\n",
		"invalid":     "1,8,1\n1 2\n", // two changes > k
		"wrong count": "3,8,1\n1\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestTotalChanges(t *testing.T) {
	w := &Workload{N: 2, D: 8, K: 3, Users: []UserStream{
		{ChangeTimes: []int{1, 2, 3}}, {ChangeTimes: []int{5}},
	}}
	if got := w.TotalChanges(); got != 4 {
		t.Errorf("TotalChanges = %d", got)
	}
}
