// Package workload generates and manipulates longitudinal Boolean data:
// n user streams over d time periods, each changing value at most k times
// (the problem of Section 2 of the paper). Streams are stored as change
// lists — the times at which the user's value flips, starting from the
// implicit st[0] = 0 — so a million-user workload fits in memory and the
// ground truth a[t] is computable in O(changes + d).
//
// The generators model the motivating scenarios from the paper's
// introduction: slowly-drifting preferences, bursty events, periodic
// habits, Zipf-distributed activity levels, and adversarial synchronized
// flips.
package workload

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"rtf/internal/dyadic"
)

// UserStream is one user's Boolean value sequence, encoded as the sorted
// times (1-based, in [1..d]) at which the value flips. The value starts
// at 0 before time 1, matching Definition 3.1's st[0] = 0 convention, so
// the number of changes equals ‖X_u‖₀ exactly.
type UserStream struct {
	ChangeTimes []int
}

// NumChanges returns ‖X_u‖₀.
func (u UserStream) NumChanges() int { return len(u.ChangeTimes) }

// ValueAt returns st_u[t] ∈ {0,1}: the parity of the number of changes at
// or before t. Time t is 1-based.
func (u UserStream) ValueAt(t int) uint8 {
	// Change lists are short (≤ k); linear scan beats binary search for
	// the sizes used here and is branch-predictable.
	c := 0
	for _, ct := range u.ChangeTimes {
		if ct > t {
			break
		}
		c++
	}
	return uint8(c & 1)
}

// Values materializes the full stream st_u[1..d] as a 0/1 slice.
func (u UserStream) Values(d int) []uint8 {
	out := make([]uint8, d)
	v := uint8(0)
	i := 0
	for t := 1; t <= d; t++ {
		for i < len(u.ChangeTimes) && u.ChangeTimes[i] == t {
			v ^= 1
			i++
		}
		out[t-1] = v
	}
	return out
}

// Workload is a complete synthetic dataset: N user streams over horizon D
// with at most K changes each.
type Workload struct {
	N, D, K int
	Users   []UserStream
}

// Validate checks structural invariants: D a power of two, every change
// list sorted, strictly increasing, within [1..D] and of length ≤ K.
func (w *Workload) Validate() error {
	if !dyadic.IsPow2(w.D) {
		return fmt.Errorf("workload: d=%d is not a power of two", w.D)
	}
	if len(w.Users) != w.N {
		return fmt.Errorf("workload: %d users, header says %d", len(w.Users), w.N)
	}
	if w.K < 0 {
		return errors.New("workload: negative k")
	}
	for u, us := range w.Users {
		if len(us.ChangeTimes) > w.K {
			return fmt.Errorf("workload: user %d has %d changes > k=%d", u, len(us.ChangeTimes), w.K)
		}
		prev := 0
		for _, t := range us.ChangeTimes {
			if t <= prev || t > w.D {
				return fmt.Errorf("workload: user %d has invalid change time %d", u, t)
			}
			prev = t
		}
	}
	return nil
}

// Truth returns the ground truth a[t] = Σ_u st_u[t] for t = 1..D
// (Equation 1), via a difference array over change times.
func (w *Workload) Truth() []int {
	diff := make([]int, w.D+1)
	for _, us := range w.Users {
		v := 0
		for _, t := range us.ChangeTimes {
			if v == 0 {
				diff[t-1]++ // flips 0→1 at t
				v = 1
			} else {
				diff[t-1]--
				v = 0
			}
		}
	}
	out := make([]int, w.D)
	run := 0
	for t := 0; t < w.D; t++ {
		run += diff[t]
		out[t] = run
	}
	return out
}

// MaxChanges returns the largest change count over all users.
func (w *Workload) MaxChanges() int {
	m := 0
	for _, us := range w.Users {
		if c := us.NumChanges(); c > m {
			m = c
		}
	}
	return m
}

// TotalChanges returns Σ_u ‖X_u‖₀.
func (w *Workload) TotalChanges() int {
	s := 0
	for _, us := range w.Users {
		s += us.NumChanges()
	}
	return s
}

// WriteCSV serializes the workload: a header line "n,d,k" followed by one
// line per user listing space-separated change times (possibly empty).
func (w *Workload) WriteCSV(out io.Writer) error {
	bw := bufio.NewWriter(out)
	if _, err := fmt.Fprintf(bw, "%d,%d,%d\n", w.N, w.D, w.K); err != nil {
		return err
	}
	for _, us := range w.Users {
		for i, t := range us.ChangeTimes {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.Itoa(t)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses the WriteCSV format and validates the result.
func ReadCSV(in io.Reader) (*Workload, error) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	if !sc.Scan() {
		return nil, errors.New("workload: empty input")
	}
	var n, d, k int
	if _, err := fmt.Sscanf(strings.TrimSpace(sc.Text()), "%d,%d,%d", &n, &d, &k); err != nil {
		return nil, fmt.Errorf("workload: bad header %q: %w", sc.Text(), err)
	}
	w := &Workload{N: n, D: d, K: k, Users: make([]UserStream, 0, n)}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		var us UserStream
		if line != "" {
			fields := strings.Fields(line)
			us.ChangeTimes = make([]int, len(fields))
			for i, f := range fields {
				t, err := strconv.Atoi(f)
				if err != nil {
					return nil, fmt.Errorf("workload: user %d: bad change time %q", len(w.Users), f)
				}
				us.ChangeTimes[i] = t
			}
		}
		w.Users = append(w.Users, us)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}
