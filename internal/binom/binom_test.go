package binom

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestRowKnownValues(t *testing.T) {
	want := []int64{1, 5, 10, 10, 5, 1}
	row := Row(5)
	if len(row) != 6 {
		t.Fatalf("Row(5) length %d", len(row))
	}
	for i, w := range want {
		if row[i].Int64() != w {
			t.Errorf("C(5,%d) = %v, want %d", i, row[i], w)
		}
	}
	if Row(0)[0].Int64() != 1 {
		t.Error("C(0,0) != 1")
	}
}

func TestChooseSymmetry(t *testing.T) {
	f := func(nRaw, iRaw uint8) bool {
		n := int(nRaw % 120)
		i := int(iRaw) % (n + 1)
		return Choose(n, i).Cmp(Choose(n, n-i)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPascalIdentity(t *testing.T) {
	f := func(nRaw, iRaw uint8) bool {
		n := int(nRaw%100) + 2
		i := int(iRaw)%(n-1) + 1 // 1 <= i <= n-1
		sum := new(big.Int).Add(Choose(n-1, i-1), Choose(n-1, i))
		return sum.Cmp(Choose(n, i)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRowSumIsPowerOfTwo(t *testing.T) {
	for _, n := range []int{0, 1, 10, 64, 200} {
		sum := new(big.Int)
		for _, c := range Row(n) {
			sum.Add(sum, c)
		}
		want := new(big.Int).Lsh(big.NewInt(1), uint(n))
		if sum.Cmp(want) != 0 {
			t.Errorf("sum of Row(%d) = %v, want 2^%d", n, sum, n)
		}
	}
}

func TestChooseOutOfRange(t *testing.T) {
	if Choose(5, -1).Sign() != 0 || Choose(5, 6).Sign() != 0 {
		t.Error("out-of-range Choose not zero")
	}
}

func TestChooseNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Row(-1) did not panic")
		}
	}()
	Row(-1)
}

func TestLogChooseMatchesExact(t *testing.T) {
	for _, n := range []int{1, 5, 30, 100, 300, 1000} {
		for i := 0; i <= n; i += 1 + n/7 {
			exact := new(big.Float).SetInt(Choose(n, i))
			mant := new(big.Float)
			exp := exact.MantExp(mant)
			mf, _ := mant.Float64()
			want := math.Log(mf) + float64(exp)*math.Ln2
			got := LogChoose(n, i)
			if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
				t.Errorf("LogChoose(%d,%d) = %v, want %v", n, i, got, want)
			}
		}
	}
	if !math.IsInf(LogChoose(5, 6), -1) || !math.IsInf(LogChoose(5, -1), -1) {
		t.Error("out-of-range LogChoose not -Inf")
	}
}

func TestChooseFloatPrecision(t *testing.T) {
	got := ChooseFloat(64, 32, 200)
	want := new(big.Float).SetPrec(200).SetInt(Choose(64, 32))
	if got.Cmp(want) != 0 {
		t.Errorf("ChooseFloat mismatch: %v vs %v", got, want)
	}
}

func TestLogSumExp(t *testing.T) {
	if !math.IsInf(LogSumExp(nil), -1) {
		t.Error("LogSumExp(nil) != -Inf")
	}
	got := LogSumExp([]float64{math.Log(1), math.Log(2), math.Log(3)})
	if math.Abs(got-math.Log(6)) > 1e-12 {
		t.Errorf("LogSumExp = %v, want ln 6", got)
	}
	// Stability: huge common offset must not overflow.
	got = LogSumExp([]float64{1000, 1000 + math.Log(2)})
	if math.Abs(got-(1000+math.Log(3))) > 1e-9 {
		t.Errorf("LogSumExp offset = %v, want %v", got, 1000+math.Log(3))
	}
	// -Inf entries are ignored gracefully.
	got = LogSumExp([]float64{math.Inf(-1), 0})
	if math.Abs(got) > 1e-12 {
		t.Errorf("LogSumExp with -Inf = %v, want 0", got)
	}
}

func TestRowCacheSharing(t *testing.T) {
	a := Row(40)
	b := Row(40)
	if &a[0] != &b[0] {
		t.Error("Row(40) not cached")
	}
}

func BenchmarkRow1024(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rowCache.Delete(1023) // force recompute of a large row each time
		Row(1023)
	}
}

func BenchmarkLogChoose(b *testing.B) {
	for i := 0; i < b.N; i++ {
		LogChoose(4096, 2048)
	}
}
