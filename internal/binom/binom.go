// Package binom provides binomial coefficients in three forms used by the
// annulus probability computations (paper Section 5.5 and Appendix A.1):
// exact big.Int values, exact big.Float values at caller-chosen precision,
// and float64 logarithms for fast cross-checking. Coefficients C(k, i)
// appear in P*out (Eq 24), c_gap (Eq 42) and the annulus mass, where k can
// reach thousands, so exact wide arithmetic is required.
package binom

import (
	"math"
	"math/big"
	"sync"
)

// rowCache memoizes Pascal's-triangle rows keyed by n.
var rowCache sync.Map // int -> []*big.Int

// Row returns the full row [C(n,0), …, C(n,n)] as big.Ints. The returned
// slice is shared and must not be modified.
func Row(n int) []*big.Int {
	if n < 0 {
		panic("binom: negative n")
	}
	if v, ok := rowCache.Load(n); ok {
		return v.([]*big.Int)
	}
	row := make([]*big.Int, n+1)
	row[0] = big.NewInt(1)
	for i := 1; i <= n; i++ {
		// C(n,i) = C(n,i−1)·(n−i+1)/i, exact at every step.
		t := new(big.Int).Mul(row[i-1], big.NewInt(int64(n-i+1)))
		row[i] = t.Div(t, big.NewInt(int64(i)))
	}
	actual, _ := rowCache.LoadOrStore(n, row)
	return actual.([]*big.Int)
}

// Choose returns C(n, i) as a big.Int. Out-of-range i yields 0. The
// returned value is shared and must not be modified.
var zero = big.NewInt(0)

func Choose(n, i int) *big.Int {
	if i < 0 || i > n {
		return zero
	}
	return Row(n)[i]
}

// ChooseFloat returns C(n, i) as a big.Float with the given mantissa
// precision in bits.
func ChooseFloat(n, i int, prec uint) *big.Float {
	return new(big.Float).SetPrec(prec).SetInt(Choose(n, i))
}

// LogChoose returns ln C(n, i) as a float64, computed with log-gamma.
// It returns −Inf for out-of-range i.
func LogChoose(n, i int) float64 {
	if i < 0 || i > n {
		return math.Inf(-1)
	}
	if i == 0 || i == n {
		return 0
	}
	ln, _ := math.Lgamma(float64(n) + 1)
	li, _ := math.Lgamma(float64(i) + 1)
	lni, _ := math.Lgamma(float64(n-i) + 1)
	return ln - li - lni
}

// LogSumExp returns ln Σ exp(x_i) in a numerically stable way. An empty
// input yields −Inf.
func LogSumExp(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	if math.IsInf(m, -1) {
		return m
	}
	s := 0.0
	for _, x := range xs {
		s += math.Exp(x - m)
	}
	return m + math.Log(s)
}
