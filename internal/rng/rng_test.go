package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(1, 2)
	b := New(1, 2)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at step %d", i)
		}
	}
}

func TestNewFromSeedDistinct(t *testing.T) {
	a := NewFromSeed(7)
	b := NewFromSeed(8)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/64 identical words", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(42, 43)
	c1 := parent.Split()
	c2 := parent.Split()
	// Children must differ from each other and from a fresh parent clone.
	ref := New(42, 43)
	ref.Split()
	ref.Split()
	matches := 0
	for i := 0; i < 256; i++ {
		x, y := c1.Uint64(), c2.Uint64()
		if x == y {
			matches++
		}
	}
	if matches > 2 {
		t.Fatalf("sibling streams matched on %d/256 draws", matches)
	}
	// Parent stream must be reproducible regardless of splits.
	p2 := New(42, 43)
	p2.Split()
	p2.Split()
	for i := 0; i < 100; i++ {
		if parent.Uint64() != p2.Uint64() {
			t.Fatal("splitting perturbed the parent stream")
		}
	}
}

func TestDeriveIndependentOfCallOrder(t *testing.T) {
	// Derive(i) must not depend on other calls, unlike Split.
	a := New(42, 43)
	b := New(42, 43)
	a.Derive(5) // extra calls must not perturb later derivations
	a.Derive(9)
	x := a.Derive(7)
	y := b.Derive(7)
	for i := 0; i < 100; i++ {
		if x.Uint64() != y.Uint64() {
			t.Fatal("Derive depends on call order")
		}
	}
	// Distinct indices give distinct streams.
	p, q := a.Derive(1), a.Derive(2)
	same := 0
	for i := 0; i < 64; i++ {
		if p.Uint64() == q.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("derived streams 1 and 2 matched on %d/64 words", same)
	}
}

func TestNormalMoments(t *testing.T) {
	g := New(33, 34)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := g.Normal()
		sum += x
		sumSq += x * x
	}
	if mean := sum / n; math.Abs(mean) > 0.02 {
		t.Errorf("Normal mean %v", mean)
	}
	if v := sumSq / n; math.Abs(v-1) > 0.03 {
		t.Errorf("Normal variance %v", v)
	}
}

func TestBinomialApprox(t *testing.T) {
	g := New(35, 36)
	// Small case routes to the exact sampler.
	for i := 0; i < 1000; i++ {
		if v := g.BinomialApprox(10, 0.3); v < 0 || v > 10 {
			t.Fatalf("out of range %d", v)
		}
	}
	// Large case uses the normal approximation; check moments.
	const n, p, trials = 1000000, 0.4, 3000
	var sum float64
	for i := 0; i < trials; i++ {
		v := g.BinomialApprox(n, p)
		if v < 0 || v > n {
			t.Fatalf("out of range %d", v)
		}
		sum += float64(v)
	}
	mean := sum / trials
	want := float64(n) * p
	se := math.Sqrt(float64(n)*p*(1-p)) / math.Sqrt(trials)
	if math.Abs(mean-want) > 6*se {
		t.Errorf("BinomialApprox mean %v, want %v", mean, want)
	}
	if g.BinomialApprox(10, 0) != 0 || g.BinomialApprox(10, 1) != 10 {
		t.Error("degenerate cases wrong")
	}
}

func TestBernoulliFrequency(t *testing.T) {
	g := New(3, 4)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		const n = 200000
		c := 0
		for i := 0; i < n; i++ {
			if g.Bernoulli(p) {
				c++
			}
		}
		got := float64(c) / n
		tol := 5 * math.Sqrt(p*(1-p)/n)
		if math.Abs(got-p) > tol {
			t.Errorf("Bernoulli(%v) frequency %v, want within %v", p, got, tol)
		}
	}
	if g.Bernoulli(0) {
		t.Error("Bernoulli(0) returned true")
	}
	if !g.Bernoulli(1) {
		t.Error("Bernoulli(1) returned false")
	}
	if g.Bernoulli(-0.5) {
		t.Error("Bernoulli(-0.5) returned true")
	}
	if !g.Bernoulli(1.5) {
		t.Error("Bernoulli(1.5) returned false")
	}
}

func TestSignAndBitBalance(t *testing.T) {
	g := New(5, 6)
	const n = 200000
	sum, ones := 0, 0
	for i := 0; i < n; i++ {
		s := g.Sign()
		if s != 1 && s != -1 {
			t.Fatalf("Sign returned %d", s)
		}
		sum += int(s)
		ones += int(g.Bit())
	}
	if math.Abs(float64(sum)) > 5*math.Sqrt(n) {
		t.Errorf("Sign sum %d too far from 0", sum)
	}
	if math.Abs(float64(ones)-n/2) > 5*math.Sqrt(n)/2 {
		t.Errorf("Bit count %d too far from %d", ones, n/2)
	}
}

func TestLaplaceMoments(t *testing.T) {
	g := New(7, 8)
	const n = 400000
	scale := 3.0
	var sum, sumAbs, sumSq float64
	for i := 0; i < n; i++ {
		x := g.Laplace(scale)
		sum += x
		sumAbs += math.Abs(x)
		sumSq += x * x
	}
	mean := sum / n
	meanAbs := sumAbs / n
	variance := sumSq / n
	if math.Abs(mean) > 0.1 {
		t.Errorf("Laplace mean %v, want ~0", mean)
	}
	if math.Abs(meanAbs-scale) > 0.1 {
		t.Errorf("Laplace E|X| = %v, want %v", meanAbs, scale)
	}
	if math.Abs(variance-2*scale*scale) > 0.7 {
		t.Errorf("Laplace var %v, want %v", variance, 2*scale*scale)
	}
}

func TestGeometricMean(t *testing.T) {
	g := New(9, 10)
	for _, p := range []float64{0.05, 0.3, 0.9, 1.0} {
		const n = 100000
		sum := 0
		for i := 0; i < n; i++ {
			v := g.Geometric(p)
			if v < 0 {
				t.Fatalf("Geometric(%v) = %d < 0", p, v)
			}
			sum += v
		}
		want := (1 - p) / p
		got := float64(sum) / n
		sd := math.Sqrt((1-p)/(p*p)) / math.Sqrt(n)
		if math.Abs(got-want) > 6*sd+1e-9 {
			t.Errorf("Geometric(%v) mean %v, want %v ± %v", p, got, want, 6*sd)
		}
	}
}

func TestGeometricPanics(t *testing.T) {
	g := New(1, 1)
	for _, p := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Geometric(%v) did not panic", p)
				}
			}()
			g.Geometric(p)
		}()
	}
}

func TestBinomialHalfMoments(t *testing.T) {
	g := New(11, 12)
	for _, n := range []int{1, 7, 63, 64, 65, 1000} {
		const trials = 50000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < trials; i++ {
			v := g.BinomialHalf(n)
			if v < 0 || v > n {
				t.Fatalf("BinomialHalf(%d) = %d out of range", n, v)
			}
			f := float64(v)
			sum += f
			sumSq += f * f
		}
		mean := sum / float64(trials)
		variance := sumSq/trials - mean*mean
		wantMean, wantVar := float64(n)/2, float64(n)/4
		if math.Abs(mean-wantMean) > 6*math.Sqrt(wantVar/trials)+1e-9 {
			t.Errorf("BinomialHalf(%d) mean %v, want %v", n, mean, wantMean)
		}
		if n >= 7 && math.Abs(variance-wantVar)/wantVar > 0.1 {
			t.Errorf("BinomialHalf(%d) var %v, want %v", n, variance, wantVar)
		}
	}
	if g.BinomialHalf(0) != 0 {
		t.Error("BinomialHalf(0) != 0")
	}
}

func TestBinomialAllPaths(t *testing.T) {
	g := New(13, 14)
	cases := []struct {
		n      int
		p      float64
		trials int
	}{
		{50, 0.3, 20000},    // direct path
		{5000, 0.001, 5000}, // geometric-skip path
		{20000, 0.3, 1500},  // median-split path
		{20000, 0.7, 1500},  // complement + split
		{200, 0.5, 20000},   // popcount path
		{10, 0, 1000},       // degenerate
		{10, 1, 1000},       // degenerate
	}
	for _, c := range cases {
		trials := c.trials
		sum := 0.0
		for i := 0; i < trials; i++ {
			v := g.Binomial(c.n, c.p)
			if v < 0 || v > c.n {
				t.Fatalf("Binomial(%d,%v) = %d out of range", c.n, c.p, v)
			}
			sum += float64(v)
		}
		mean := sum / float64(trials)
		want := float64(c.n) * c.p
		sd := math.Sqrt(float64(c.n)*c.p*(1-c.p)/float64(trials)) + 1e-12
		if math.Abs(mean-want) > 6*sd+1e-9 {
			t.Errorf("Binomial(%d,%v) mean %v, want %v ± %v", c.n, c.p, mean, want, 6*sd)
		}
	}
}

func TestSignedBinomialHalfSum(t *testing.T) {
	g := New(15, 16)
	for _, n := range []int{0, 1, 5, 128} {
		for i := 0; i < 1000; i++ {
			v := g.SignedBinomialHalfSum(n)
			if v < -n || v > n {
				t.Fatalf("sum of %d signs = %d out of range", n, v)
			}
			if (v+n)%2 != 0 {
				t.Fatalf("sum of %d signs = %d has wrong parity", n, v)
			}
		}
	}
}

func TestKSubsetProperties(t *testing.T) {
	g := New(17, 18)
	f := func(nRaw, kRaw uint16) bool {
		n := int(nRaw%200) + 1
		k := int(kRaw) % (n + 1)
		s := g.KSubset(n, k)
		if len(s) != k {
			return false
		}
		for i, v := range s {
			if v < 0 || v >= n {
				return false
			}
			if i > 0 && s[i] <= s[i-1] {
				return false // must be strictly increasing (sorted, distinct)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestKSubsetUniform(t *testing.T) {
	// Both the dense (3k >= n) and sparse branches must select each element
	// with probability k/n.
	g := New(19, 20)
	for _, tc := range []struct{ n, k int }{{10, 6}, {100, 3}} {
		const trials = 60000
		counts := make([]int, tc.n)
		for i := 0; i < trials; i++ {
			for _, v := range g.KSubset(tc.n, tc.k) {
				counts[v]++
			}
		}
		want := float64(trials) * float64(tc.k) / float64(tc.n)
		for v, c := range counts {
			if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
				t.Errorf("KSubset(%d,%d): element %d chosen %d times, want ~%v", tc.n, tc.k, v, c, want)
			}
		}
	}
}

func TestKSubsetEdge(t *testing.T) {
	g := New(21, 22)
	if s := g.KSubset(5, 0); len(s) != 0 {
		t.Errorf("KSubset(5,0) = %v, want empty", s)
	}
	s := g.KSubset(5, 5)
	for i, v := range s {
		if v != i {
			t.Errorf("KSubset(5,5) = %v, want identity", s)
			break
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("KSubset(2,3) did not panic")
			}
		}()
		g.KSubset(2, 3)
	}()
}

func TestZipf(t *testing.T) {
	g := New(23, 24)
	z := g.NewZipf(50, 1.2)
	const trials = 200000
	counts := make([]int, 50)
	for i := 0; i < trials; i++ {
		v := z.Sample()
		if v < 0 || v >= 50 {
			t.Fatalf("Zipf sample %d out of range", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[40] {
		t.Errorf("Zipf counts not decreasing: c0=%d c10=%d c40=%d", counts[0], counts[10], counts[40])
	}
	// Check the head frequency against the exact pmf.
	var z0 float64
	for i := 1; i <= 50; i++ {
		z0 += math.Pow(float64(i), -1.2)
	}
	want := 1 / z0
	got := float64(counts[0]) / trials
	if math.Abs(got-want) > 0.01 {
		t.Errorf("Zipf head frequency %v, want %v", got, want)
	}

	u := g.NewZipf(8, 0)
	counts = make([]int, 8)
	for i := 0; i < 80000; i++ {
		counts[u.Sample()]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-10000) > 600 {
			t.Errorf("Zipf(s=0) element %d count %d, want ~10000", i, c)
		}
	}
}

func TestZipfPanics(t *testing.T) {
	g := New(25, 26)
	for _, f := range []func(){
		func() { g.NewZipf(0, 1) },
		func() { g.NewZipf(10, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("NewZipf with invalid args did not panic")
				}
			}()
			f()
		}()
	}
}

func TestFloat64Range(t *testing.T) {
	g := New(27, 28)
	for i := 0; i < 100000; i++ {
		v := g.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestIntNRange(t *testing.T) {
	g := New(29, 30)
	seen := make([]bool, 7)
	for i := 0; i < 10000; i++ {
		v := g.IntN(7)
		if v < 0 || v >= 7 {
			t.Fatalf("IntN(7) = %d", v)
		}
		seen[v] = true
	}
	for i, s := range seen {
		if !s {
			t.Errorf("IntN(7) never produced %d", i)
		}
	}
}

func TestPerm(t *testing.T) {
	g := New(31, 32)
	p := g.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if seen[v] {
			t.Fatalf("Perm repeated %d", v)
		}
		seen[v] = true
	}
}
