// Package rng provides the deterministic random-number substrate used by
// every randomized component in the repository.
//
// All protocol code draws randomness through *RNG so that simulations,
// experiments and tests are reproducible from a single seed. The generator
// is PCG (math/rand/v2); independent streams for sub-components are derived
// with Split, which uses a SplitMix64 finalizer so child streams are
// decorrelated from the parent and from each other.
package rng

import (
	"math"
	"math/bits"
	"math/rand/v2"
)

// RNG is a seeded pseudo-random generator with the samplers needed by the
// protocol: fair bits and signs, Bernoulli trials, Laplace and geometric
// noise, binomial counts, Zipf-like integers and random subsets.
//
// RNG is not safe for concurrent use; derive one per goroutine with Split.
type RNG struct {
	r *rand.Rand
	// seed state retained so Split can derive child streams.
	s0, s1 uint64
	splits uint64
}

// New returns an RNG seeded from the two given words.
func New(seed0, seed1 uint64) *RNG {
	return &RNG{
		r:  rand.New(rand.NewPCG(seed0, seed1)),
		s0: seed0,
		s1: seed1,
	}
}

// NewFromSeed returns an RNG seeded from a single int64, convenient for
// CLI flags. Negative seeds are permitted.
func NewFromSeed(seed int64) *RNG {
	u := uint64(seed)
	return New(splitmix(u), splitmix(u+0x9e3779b97f4a7c15))
}

// splitmix is the SplitMix64 finalizer, a high-quality 64-bit mixer.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Split derives a new, statistically independent RNG. Successive calls
// yield distinct streams; the parent's future output is unaffected.
func (g *RNG) Split() *RNG {
	g.splits++
	return New(
		splitmix(g.s0^splitmix(g.splits)),
		splitmix(g.s1+0x632be59bd9b4e019*g.splits),
	)
}

// Derive returns the idx-th child stream of g deterministically: unlike
// Split it does not depend on call order, so parallel code can assign
// stream i to shard i and produce identical results regardless of
// scheduling.
func (g *RNG) Derive(idx uint64) *RNG {
	return New(
		splitmix(g.s0^splitmix(idx^0xa0761d6478bd642f)),
		splitmix(g.s1+splitmix(idx)*0xe7037ed1a0b428db),
	)
}

// Uint64 returns a uniformly random 64-bit word.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Int64 returns a uniformly random non-negative int64.
func (g *RNG) Int64() int64 { return int64(g.r.Uint64() >> 1) }

// IntN returns a uniform integer in [0, n). It panics if n <= 0.
func (g *RNG) IntN(n int) int { return g.r.IntN(n) }

// Float64 returns a uniform float64 in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Bernoulli reports true with probability p. Values of p outside [0, 1]
// are clamped.
func (g *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// Sign returns −1 or +1 with equal probability.
func (g *RNG) Sign() int8 {
	if g.r.Uint64()&1 == 0 {
		return 1
	}
	return -1
}

// Bit returns 0 or 1 with equal probability.
func (g *RNG) Bit() uint8 { return uint8(g.r.Uint64() & 1) }

// Laplace returns a sample from the Laplace distribution with mean 0 and
// the given scale (density (1/2b)·exp(−|x|/b)).
func (g *RNG) Laplace(scale float64) float64 {
	// Inverse CDF on u ∈ (−1/2, 1/2): x = −b·sgn(u)·ln(1−2|u|).
	u := g.r.Float64() - 0.5
	if u >= 0 {
		return -scale * math.Log(1-2*u)
	}
	return scale * math.Log(1+2*u)
}

// Geometric returns the number of failures before the first success in
// Bernoulli(p) trials (support {0, 1, 2, ...}). It panics if p is not in
// (0, 1].
func (g *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric requires p in (0,1]")
	}
	if p == 1 {
		return 0
	}
	// Inversion: floor(ln U / ln(1−p)).
	u := g.r.Float64()
	for u == 0 {
		u = g.r.Float64()
	}
	return int(math.Log(u) / math.Log1p(-p))
}

// BinomialHalf returns an exact sample of Binomial(n, 1/2), computed as the
// popcount of n fair random bits. It runs in O(n/64) time.
func (g *RNG) BinomialHalf(n int) int {
	if n < 0 {
		panic("rng: BinomialHalf requires n >= 0")
	}
	c := 0
	for ; n >= 64; n -= 64 {
		c += bits.OnesCount64(g.r.Uint64())
	}
	if n > 0 {
		c += bits.OnesCount64(g.r.Uint64() & (1<<uint(n) - 1))
	}
	return c
}

// Binomial returns a sample of Binomial(n, p). For p = 1/2 it is exact via
// BinomialHalf. Otherwise it uses exact per-trial sampling for small n and
// the BG (geometric skips) method for larger n with small p; for large n·p
// it recurses on the median split, which keeps every path exact.
func (g *RNG) Binomial(n int, p float64) int {
	if n < 0 {
		panic("rng: Binomial requires n >= 0")
	}
	if p <= 0 || n == 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if p == 0.5 {
		return g.BinomialHalf(n)
	}
	if p > 0.5 {
		return n - g.Binomial(n, 1-p)
	}
	// Now p < 1/2.
	switch {
	case n <= 64:
		// Direct per-trial sampling.
		c := 0
		for i := 0; i < n; i++ {
			if g.r.Float64() < p {
				c++
			}
		}
		return c
	case float64(n)*p <= 32:
		// Geometric skips: count successes by jumping over failures.
		c := 0
		i := g.Geometric(p)
		for i < n {
			c++
			i += 1 + g.Geometric(p)
		}
		return c
	default:
		// Median split: X = Beta-free exact recursion. First half of the
		// trials and second half are independent binomials.
		h := n / 2
		return g.Binomial(h, p) + g.Binomial(n-h, p)
	}
}

// SignedBinomialHalfSum returns the exact distribution of the sum of n
// i.i.d. uniform ±1 variables: 2·Binomial(n, 1/2) − n.
func (g *RNG) SignedBinomialHalfSum(n int) int {
	return 2*g.BinomialHalf(n) - n
}

// Normal returns a standard normal sample.
func (g *RNG) Normal() float64 { return g.r.NormFloat64() }

// BinomialApprox returns a sample of Binomial(n, p), using the exact
// sampler when the distribution is small or skewed and the (rounded,
// clamped) normal approximation when n·p·(1−p) ≥ 10⁴, where the CLT error
// is far below a single standard deviation. The fast simulation engine
// uses it for aggregate randomized-response noise; the exact engine never
// does.
func (g *RNG) BinomialApprox(n int, p float64) int {
	if p <= 0 || n == 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if v := float64(n) * p * (1 - p); v < 1e4 {
		return g.Binomial(n, p)
	}
	mean := float64(n) * p
	sd := math.Sqrt(float64(n) * p * (1 - p))
	x := int(math.Round(mean + sd*g.Normal()))
	if x < 0 {
		x = 0
	}
	if x > n {
		x = n
	}
	return x
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// KSubset returns k distinct integers drawn uniformly from [0, n), in
// increasing order. It panics if k > n or either argument is negative.
func (g *RNG) KSubset(n, k int) []int {
	if k < 0 || n < 0 || k > n {
		panic("rng: KSubset requires 0 <= k <= n")
	}
	if k == 0 {
		return nil
	}
	if 3*k >= n {
		// Partial Fisher–Yates over a dense index array.
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		for i := 0; i < k; i++ {
			j := i + g.r.IntN(n-i)
			idx[i], idx[j] = idx[j], idx[i]
		}
		out := append([]int(nil), idx[:k]...)
		insertionSort(out)
		return out
	}
	// Sparse Floyd's algorithm.
	chosen := make(map[int]struct{}, k)
	for j := n - k; j < n; j++ {
		t := g.r.IntN(j + 1)
		if _, ok := chosen[t]; ok {
			t = j
		}
		chosen[t] = struct{}{}
	}
	out := make([]int, 0, k)
	for v := range chosen {
		out = append(out, v)
	}
	insertionSort(out)
	return out
}

func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Zipf samples integers in [0, n) with probability proportional to
// 1/(i+1)^s. It precomputes the CDF once; Sample is O(log n).
type Zipf struct {
	cdf []float64
	g   *RNG
}

// NewZipf constructs a Zipf sampler over [0, n) with exponent s >= 0.
// s = 0 is the uniform distribution.
func (g *RNG) NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf requires n > 0")
	}
	if s < 0 {
		panic("rng: NewZipf requires s >= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += math.Pow(float64(i+1), -s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf, g: g}
}

// Sample draws one Zipf-distributed integer.
func (z *Zipf) Sample() int {
	u := z.g.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
