// Package bitvec implements packed vectors over the alphabet {−1, +1},
// the output/input space of the composed randomizer R̃ (Section 5 of the
// paper). A set bit encodes −1 and a clear bit encodes +1, so Hamming
// (ℓ0) distance between two vectors is the popcount of the XOR of their
// words, and the all-ones vector 1^k of the paper is the zero bit pattern.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"

	"rtf/internal/rng"
)

// Vec is a fixed-length vector in {−1, +1}^k. The zero value is unusable;
// construct with New, Ones, FromSigns or Uniform.
type Vec struct {
	k int
	w []uint64
}

// New returns the all-(+1) vector of length k (the paper's 1^k).
func New(k int) Vec {
	if k < 0 {
		panic("bitvec: negative length")
	}
	return Vec{k: k, w: make([]uint64, (k+63)/64)}
}

// Ones is an alias for New: the vector 1^k used to seed the
// pre-computation b̃ = R̃(1^k).
func Ones(k int) Vec { return New(k) }

// FromSigns builds a Vec from a slice of ±1 entries. It panics on any
// entry outside {−1, +1}.
func FromSigns(s []int8) Vec {
	v := New(len(s))
	for i, x := range s {
		switch x {
		case 1:
			// +1 is the default (clear bit).
		case -1:
			v.w[i/64] |= 1 << uint(i%64)
		default:
			panic(fmt.Sprintf("bitvec: entry %d is %d, want ±1", i, x))
		}
	}
	return v
}

// Uniform returns a uniformly random vector in {−1, +1}^k.
func Uniform(g *rng.RNG, k int) Vec {
	v := New(k)
	for i := range v.w {
		v.w[i] = g.Uint64()
	}
	v.maskTail()
	return v
}

// maskTail clears the unused high bits of the last word so that popcounts
// and equality work on whole words.
func (v Vec) maskTail() {
	if r := v.k % 64; r != 0 && len(v.w) > 0 {
		v.w[len(v.w)-1] &= 1<<uint(r) - 1
	}
}

// Len returns the number of coordinates.
func (v Vec) Len() int { return v.k }

// At returns the i-th coordinate as −1 or +1. Coordinates are 0-indexed.
func (v Vec) At(i int) int8 {
	if i < 0 || i >= v.k {
		panic("bitvec: index out of range")
	}
	if v.w[i/64]&(1<<uint(i%64)) != 0 {
		return -1
	}
	return 1
}

// Set assigns coordinate i to the sign s ∈ {−1, +1}.
func (v Vec) Set(i int, s int8) {
	if i < 0 || i >= v.k {
		panic("bitvec: index out of range")
	}
	mask := uint64(1) << uint(i%64)
	switch s {
	case 1:
		v.w[i/64] &^= mask
	case -1:
		v.w[i/64] |= mask
	default:
		panic("bitvec: sign must be ±1")
	}
}

// Flip negates coordinate i in place.
func (v Vec) Flip(i int) {
	if i < 0 || i >= v.k {
		panic("bitvec: index out of range")
	}
	v.w[i/64] ^= 1 << uint(i%64)
}

// Clone returns an independent copy of v.
func (v Vec) Clone() Vec {
	c := Vec{k: v.k, w: make([]uint64, len(v.w))}
	copy(c.w, v.w)
	return c
}

// Equal reports whether v and u have the same length and coordinates.
func (v Vec) Equal(u Vec) bool {
	if v.k != u.k {
		return false
	}
	for i := range v.w {
		if v.w[i] != u.w[i] {
			return false
		}
	}
	return true
}

// Hamming returns ‖v − u‖₀, the number of coordinates where v and u
// differ. It panics if lengths differ.
func (v Vec) Hamming(u Vec) int {
	if v.k != u.k {
		panic("bitvec: length mismatch")
	}
	d := 0
	for i := range v.w {
		d += bits.OnesCount64(v.w[i] ^ u.w[i])
	}
	return d
}

// WeightMinus returns the number of −1 coordinates (distance to 1^k).
func (v Vec) WeightMinus() int {
	d := 0
	for i := range v.w {
		d += bits.OnesCount64(v.w[i])
	}
	return d
}

// FlipEach returns a copy of v with every coordinate independently negated
// with probability p. This is the i.i.d. application of the basic
// randomizer R (Eq 14) to each coordinate, with flip probability
// p = 1/(e^ε̃+1).
func (v Vec) FlipEach(g *rng.RNG, p float64) Vec {
	out := v.Clone()
	for i := 0; i < v.k; i++ {
		if g.Bernoulli(p) {
			out.Flip(i)
		}
	}
	return out
}

// FlipSubset returns a copy of v with the coordinates listed in idx
// negated. Indices must be distinct and in range.
func (v Vec) FlipSubset(idx []int) Vec {
	out := v.Clone()
	for _, i := range idx {
		out.Flip(i)
	}
	return out
}

// Signs expands v to a slice of ±1 entries.
func (v Vec) Signs() []int8 {
	s := make([]int8, v.k)
	for i := range s {
		s[i] = v.At(i)
	}
	return s
}

// String renders v as a compact string of '+' and '-' characters.
func (v Vec) String() string {
	var b strings.Builder
	b.Grow(v.k)
	for i := 0; i < v.k; i++ {
		if v.At(i) == 1 {
			b.WriteByte('+')
		} else {
			b.WriteByte('-')
		}
	}
	return b.String()
}

// Index returns the integer whose bits are the −1 positions of v; it is a
// bijection {−1,+1}^k → [0, 2^k) usable as an array index for exhaustive
// enumeration. It panics if k > 62.
func (v Vec) Index() int {
	if v.k > 62 {
		panic("bitvec: Index requires k <= 62")
	}
	if len(v.w) == 0 {
		return 0
	}
	return int(v.w[0])
}

// FromIndex inverts Index: it builds the length-k vector whose −1
// positions are the set bits of x. It panics if k > 62 or x >= 2^k.
func FromIndex(k int, x int) Vec {
	if k > 62 {
		panic("bitvec: FromIndex requires k <= 62")
	}
	if x < 0 || (k < 62 && x >= 1<<uint(k)) {
		panic("bitvec: index out of range for length")
	}
	v := New(k)
	if len(v.w) > 0 {
		v.w[0] = uint64(x)
	}
	return v
}
