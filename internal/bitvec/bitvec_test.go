package bitvec

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"rtf/internal/rng"
)

func TestNewIsAllPlus(t *testing.T) {
	for _, k := range []int{0, 1, 63, 64, 65, 130} {
		v := New(k)
		if v.Len() != k {
			t.Fatalf("Len = %d, want %d", v.Len(), k)
		}
		for i := 0; i < k; i++ {
			if v.At(i) != 1 {
				t.Fatalf("New(%d).At(%d) = %d, want +1", k, i, v.At(i))
			}
		}
		if v.WeightMinus() != 0 {
			t.Fatalf("New(%d).WeightMinus = %d", k, v.WeightMinus())
		}
	}
}

func TestFromSignsRoundTrip(t *testing.T) {
	f := func(raw []bool) bool {
		s := make([]int8, len(raw))
		for i, b := range raw {
			if b {
				s[i] = 1
			} else {
				s[i] = -1
			}
		}
		got := FromSigns(s).Signs()
		if len(got) != len(s) {
			return false
		}
		for i := range s {
			if got[i] != s[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromSignsPanicsOnBadEntry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FromSigns with 0 entry did not panic")
		}
	}()
	FromSigns([]int8{1, 0, -1})
}

func TestSetFlipAt(t *testing.T) {
	v := New(70)
	v.Set(3, -1)
	v.Set(69, -1)
	if v.At(3) != -1 || v.At(69) != -1 || v.At(4) != 1 {
		t.Fatal("Set/At mismatch")
	}
	v.Flip(3)
	if v.At(3) != 1 {
		t.Fatal("Flip did not restore +1")
	}
	v.Flip(0)
	if v.At(0) != -1 {
		t.Fatal("Flip did not set -1")
	}
	if v.WeightMinus() != 2 {
		t.Fatalf("WeightMinus = %d, want 2", v.WeightMinus())
	}
}

func TestHammingMatchesNaive(t *testing.T) {
	g := rng.New(1, 2)
	for trial := 0; trial < 200; trial++ {
		k := 1 + g.IntN(150)
		a := Uniform(g, k)
		b := Uniform(g, k)
		want := 0
		for i := 0; i < k; i++ {
			if a.At(i) != b.At(i) {
				want++
			}
		}
		if got := a.Hamming(b); got != want {
			t.Fatalf("Hamming = %d, want %d (k=%d)", got, want, k)
		}
		if a.Hamming(b) != b.Hamming(a) {
			t.Fatal("Hamming not symmetric")
		}
		if a.Hamming(a) != 0 {
			t.Fatal("Hamming(a,a) != 0")
		}
	}
}

func TestHammingTriangle(t *testing.T) {
	g := rng.New(3, 4)
	for trial := 0; trial < 200; trial++ {
		k := 1 + g.IntN(100)
		a, b, c := Uniform(g, k), Uniform(g, k), Uniform(g, k)
		if a.Hamming(c) > a.Hamming(b)+b.Hamming(c) {
			t.Fatal("triangle inequality violated")
		}
	}
}

func TestHammingLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Hamming with mismatched lengths did not panic")
		}
	}()
	New(3).Hamming(New(4))
}

func TestWeightMinusIsDistanceToOnes(t *testing.T) {
	g := rng.New(5, 6)
	for trial := 0; trial < 100; trial++ {
		k := 1 + g.IntN(200)
		v := Uniform(g, k)
		if v.WeightMinus() != v.Hamming(Ones(k)) {
			t.Fatal("WeightMinus != Hamming to ones")
		}
	}
}

func TestFlipEachExtremes(t *testing.T) {
	g := rng.New(7, 8)
	v := Uniform(g, 100)
	same := v.FlipEach(g, 0)
	if !same.Equal(v) {
		t.Error("FlipEach(p=0) changed the vector")
	}
	all := v.FlipEach(g, 1)
	if all.Hamming(v) != 100 {
		t.Errorf("FlipEach(p=1) flipped %d of 100", all.Hamming(v))
	}
	// Input must be unchanged (FlipEach copies).
	if v.Equal(all) {
		t.Error("FlipEach mutated its receiver")
	}
}

func TestFlipEachMeanDistance(t *testing.T) {
	g := rng.New(9, 10)
	const k, trials = 200, 5000
	p := 0.3
	v := Uniform(g, k)
	sum := 0.0
	for i := 0; i < trials; i++ {
		sum += float64(v.FlipEach(g, p).Hamming(v))
	}
	mean := sum / trials
	want := float64(k) * p
	sd := math.Sqrt(float64(k)*p*(1-p)) / math.Sqrt(trials)
	if math.Abs(mean-want) > 6*sd {
		t.Errorf("FlipEach mean distance %v, want %v", mean, want)
	}
}

func TestFlipSubset(t *testing.T) {
	g := rng.New(11, 12)
	v := Uniform(g, 90)
	idx := []int{0, 17, 63, 64, 89}
	u := v.FlipSubset(idx)
	if u.Hamming(v) != len(idx) {
		t.Fatalf("FlipSubset distance %d, want %d", u.Hamming(v), len(idx))
	}
	for _, i := range idx {
		if u.At(i) == v.At(i) {
			t.Fatalf("coordinate %d not flipped", i)
		}
	}
}

func TestIndexBijection(t *testing.T) {
	f := func(kRaw uint8, xRaw uint32) bool {
		k := int(kRaw%20) + 1
		x := int(xRaw) % (1 << uint(k))
		v := FromIndex(k, x)
		return v.Index() == x && v.Len() == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIndexPanicsOnLargeK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Index with k>62 did not panic")
		}
	}()
	New(63).Index()
}

func TestUniformMaskTail(t *testing.T) {
	g := rng.New(13, 14)
	// k not a multiple of 64: the tail bits must never leak into weights.
	for trial := 0; trial < 1000; trial++ {
		v := Uniform(g, 67)
		if w := v.WeightMinus(); w > 67 {
			t.Fatalf("weight %d exceeds length 67", w)
		}
	}
}

func TestUniformIsBalanced(t *testing.T) {
	g := rng.New(15, 16)
	const k, trials = 128, 4000
	sum := 0.0
	for i := 0; i < trials; i++ {
		sum += float64(Uniform(g, k).WeightMinus())
	}
	mean := sum / trials
	if math.Abs(mean-k/2) > 6*math.Sqrt(float64(k)/4/trials)*math.Sqrt(float64(k)) {
		// loose bound: sd of mean = sqrt(k/4)/sqrt(trials)
	}
	sd := math.Sqrt(float64(k)/4) / math.Sqrt(trials)
	if math.Abs(mean-k/2) > 6*sd {
		t.Errorf("Uniform mean weight %v, want %v", mean, k/2)
	}
}

func TestCloneIndependent(t *testing.T) {
	v := New(10)
	c := v.Clone()
	c.Flip(3)
	if v.At(3) != 1 {
		t.Error("Clone shares storage with original")
	}
	if !v.Equal(New(10)) {
		t.Error("original changed")
	}
}

func TestEqualDifferentLengths(t *testing.T) {
	if New(3).Equal(New(4)) {
		t.Error("vectors of different lengths reported equal")
	}
}

func TestString(t *testing.T) {
	v := FromSigns([]int8{1, -1, -1, 1})
	if got := v.String(); got != "+--+" {
		t.Errorf("String = %q, want %q", got, "+--+")
	}
	if !strings.HasPrefix(New(3).String(), "+++") {
		t.Error("New(3).String() not all '+'")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	v := New(5)
	for name, f := range map[string]func(){
		"At(-1)":    func() { v.At(-1) },
		"At(5)":     func() { v.At(5) },
		"Set(5)":    func() { v.Set(5, 1) },
		"Set bad":   func() { v.Set(0, 2) },
		"Flip(-1)":  func() { v.Flip(-1) },
		"New(-1)":   func() { New(-1) },
		"FromIndex": func() { FromIndex(3, 8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
