package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testMeta() Meta {
	return Meta{Mechanism: "futurerand", D: 256, K: 4, Eps: 1, Scale: 17.25}
}

// collect replays the WAL in dir and returns the payloads seen.
func collect(t *testing.T, dir string, opts ReplayOptions) (payloads [][]byte, last uint64, n int) {
	t.Helper()
	last, n, err := ReplayWAL(dir, opts, func(seq uint64, p []byte) error {
		payloads = append(payloads, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("ReplayWAL: %v", err)
	}
	return payloads, last, n
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma gamma")}
	for i, p := range want {
		seq, err := w.Append(p)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("append %d: seq %d", i, seq)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, last, n := collect(t, dir, ReplayOptions{})
	if last != 3 || n != 3 {
		t.Fatalf("replay: last=%d n=%d", last, n)
	}
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Fatalf("payload %d: %q", i, got[i])
		}
	}

	// The After cursor skips the superseded prefix.
	got, last, n = collect(t, dir, ReplayOptions{After: 2})
	if last != 3 || n != 1 || string(got[0]) != "gamma gamma" {
		t.Fatalf("replay after 2: last=%d n=%d got=%q", last, n, got)
	}
}

func TestWALReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := w2.Append([]byte("two"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Fatalf("seq after reopen: %d", seq)
	}
	w2.Close()
	if _, last, n := collect(t, dir, ReplayOptions{}); last != 2 || n != 2 {
		t.Fatalf("after reopen: last=%d n=%d", last, n)
	}
}

func TestWALRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record rotates.
	w, err := OpenWAL(dir, WALOptions{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := listSeqs(dir, walSegPrefix, walSegSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 5 {
		t.Fatalf("segments after 5 tiny appends: %d", len(segs))
	}
	// A snapshot at cursor 3 supersedes segments holding records 1..3.
	if err := w.Compact(3); err != nil {
		t.Fatal(err)
	}
	segs, _ = listSeqs(dir, walSegPrefix, walSegSuffix)
	if len(segs) != 2 {
		t.Fatalf("segments after compaction: %d (%v)", len(segs), segs)
	}
	got, last, n := collect(t, dir, ReplayOptions{After: 3})
	if last != 5 || n != 2 || string(got[0]) != "payload-3" || string(got[1]) != "payload-4" {
		t.Fatalf("replay after compaction: last=%d n=%d got=%q", last, n, got)
	}
	w.Close()
}

func TestWALSequenceSurvivesFullCompaction(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := w.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Compact(3); err != nil {
		t.Fatal(err)
	}
	w.Close()
	// A fresh open with MinSeq (the snapshot cursor) must not reuse
	// sequence numbers the snapshot already covers.
	w2, err := OpenWAL(dir, WALOptions{MinSeq: 3})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := w2.Append([]byte("y"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 4 {
		t.Fatalf("seq after full compaction: %d", seq)
	}
	w2.Close()
}

func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := w.Append([]byte("payload-payload")); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	segs, _ := listSeqs(dir, walSegPrefix, walSegSuffix)
	path := segPath(dir, segs[len(segs)-1])
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final record: cut it short by a few bytes.
	if err := os.Truncate(path, fi.Size()-4); err != nil {
		t.Fatal(err)
	}

	// Strict replay fails with a descriptive error wrapping ErrTornTail.
	_, _, err = ReplayWAL(dir, ReplayOptions{}, func(uint64, []byte) error { return nil })
	if !errors.Is(err, ErrTornTail) {
		t.Fatalf("strict replay of torn tail: %v", err)
	}
	if !strings.Contains(err.Error(), "torn final WAL record") {
		t.Fatalf("torn-tail error not descriptive: %v", err)
	}

	// Tolerant replay stops cleanly after the intact prefix.
	var n int
	last, count, err := ReplayWAL(dir, ReplayOptions{TolerateTornTail: true}, func(uint64, []byte) error { n++; return nil })
	if err != nil || last != 2 || count != 2 || n != 2 {
		t.Fatalf("tolerant replay: last=%d count=%d n=%d err=%v", last, count, n, err)
	}

	// Reopening for append truncates the torn tail and continues.
	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if seq, err := w2.Append([]byte("after")); err != nil || seq != 3 {
		t.Fatalf("append after torn tail: seq=%d err=%v", seq, err)
	}
	w2.Close()
	if _, last, n := collect(t, dir, ReplayOptions{}); last != 3 || n != 3 {
		t.Fatalf("replay after truncate+append: last=%d n=%d", last, n)
	}
}

func TestWALMidStreamCorruptionIsNotTolerated(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := w.Append([]byte("payload-payload")); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	segs, _ := listSeqs(dir, walSegPrefix, walSegSuffix)
	path := segPath(dir, segs[0])
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the FIRST record: a checksum mismatch with
	// more records following is corruption, tolerated or not.
	b[headerLen+recordHeaderLen] ^= 0xff
	if err := os.WriteFile(path, b, 0o666); err != nil {
		t.Fatal(err)
	}
	for _, opts := range []ReplayOptions{{}, {TolerateTornTail: true}} {
		_, _, err := ReplayWAL(dir, opts, func(uint64, []byte) error { return nil })
		if err == nil || !strings.Contains(err.Error(), "corrupt record") {
			t.Fatalf("opts %+v: corrupt record error missing, got %v", opts, err)
		}
	}
}

func TestWALVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	path := segPath(dir, 1)
	b, _ := os.ReadFile(path)
	b[headerLen-1] = walVersion + 1
	os.WriteFile(path, b, 0o666)
	_, _, err = ReplayWAL(dir, ReplayOptions{}, func(uint64, []byte) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "unsupported WAL version") {
		t.Fatalf("version mismatch: %v", err)
	}
	// OpenWAL must refuse it too, not silently append to an alien file.
	if _, err := OpenWAL(dir, WALOptions{}); err == nil {
		t.Fatal("OpenWAL accepted a version-mismatched segment")
	}
}

func TestWALMissingSegmentAfterCursorDetected(t *testing.T) {
	// fourSegs builds a log with records 1..4, one per segment.
	fourSegs := func(t *testing.T) string {
		dir := t.TempDir()
		w, err := OpenWAL(dir, WALOptions{SegmentBytes: 1})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			if _, err := w.Append([]byte("p")); err != nil {
				t.Fatal(err)
			}
		}
		w.Close()
		return dir
	}

	// Snapshot cursor 1, segment 1 already compacted away — and then
	// the segment holding record 2 goes missing too. The surviving log
	// starts past the cursor: silently recovering would lose record 2.
	dir := fourSegs(t)
	os.Remove(segPath(dir, 1))
	os.Remove(segPath(dir, 2))
	_, _, err := ReplayWAL(dir, ReplayOptions{After: 1}, func(uint64, []byte) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("missing post-cursor segment not detected: %v", err)
	}

	// A hole between surviving records is a plain sequence gap.
	dir = fourSegs(t)
	os.Remove(segPath(dir, 2))
	_, _, err = ReplayWAL(dir, ReplayOptions{}, func(uint64, []byte) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "sequence gap") {
		t.Fatalf("sequence gap not detected: %v", err)
	}

	// Compaction up to the cursor is the legitimate shape: the log
	// starting exactly at cursor+1 replays cleanly.
	dir = fourSegs(t)
	os.Remove(segPath(dir, 1))
	os.Remove(segPath(dir, 2))
	os.Remove(segPath(dir, 3))
	if _, last, n := collect(t, dir, ReplayOptions{After: 3}); last != 4 || n != 1 {
		t.Fatalf("after legit compaction: last=%d n=%d", last, n)
	}
}

func TestWALHeaderlessNewestSegmentIsCrashArtifact(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := w.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	// A crash between segment creation and the header write leaves a
	// short (here: empty) newest segment. It holds no records, so both
	// replay and reopening must shrug it off.
	if err := os.WriteFile(segPath(dir, 3), []byte("RTF"), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, last, n := collect(t, dir, ReplayOptions{}); last != 2 || n != 2 {
		t.Fatalf("replay around header-less segment: last=%d n=%d", last, n)
	}
	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The artifact is removed and numbering continues where it left off.
	if seq, err := w2.Append([]byte("y")); err != nil || seq != 3 {
		t.Fatalf("append after artifact removal: seq=%d err=%v", seq, err)
	}
	w2.Close()
	if _, last, n := collect(t, dir, ReplayOptions{}); last != 3 || n != 3 {
		t.Fatalf("replay after reopen: last=%d n=%d", last, n)
	}
}

func TestWALCompactedPrefixWithoutSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := w.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Compact(2); err != nil {
		t.Fatal(err)
	}
	w.Close()
	// The log now starts at record 3. Replaying with no snapshot
	// (After 0 — say the operator deleted a corrupt snapshot) must not
	// silently serve a third of the data.
	_, _, err = ReplayWAL(dir, ReplayOptions{}, func(uint64, []byte) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("compacted prefix without snapshot: %v", err)
	}
}

func TestCleanTemp(t *testing.T) {
	dir := t.TempDir()
	if err := WriteSnapshot(dir, &Snapshot{Cursor: 1, Meta: testMeta()}, false); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, "snap-12345.tmp")
	if err := os.WriteFile(stale, []byte("half-written"), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := CleanTemp(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp file survived: %v", err)
	}
	if _, found, err := LoadLatestSnapshot(dir); err != nil || !found {
		t.Fatalf("real snapshot harmed by CleanTemp: found=%v err=%v", found, err)
	}
	if err := CleanTemp(filepath.Join(dir, "missing")); err != nil {
		t.Fatalf("CleanTemp on a missing dir: %v", err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := &Snapshot{Cursor: 42, Meta: testMeta(), State: []byte{1, 2, 3, 4, 5}}
	if err := WriteSnapshot(dir, s, true); err != nil {
		t.Fatal(err)
	}
	got, found, err := LoadLatestSnapshot(dir)
	if err != nil || !found {
		t.Fatalf("load: found=%v err=%v", found, err)
	}
	if got.Cursor != 42 || got.Meta != s.Meta || string(got.State) != string(s.State) {
		t.Fatalf("round trip: %+v", got)
	}

	// A later snapshot supersedes; compaction keeps the newest two.
	for _, cur := range []uint64{50, 60} {
		if err := WriteSnapshot(dir, &Snapshot{Cursor: cur, Meta: testMeta(), State: []byte{9}}, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := CompactSnapshots(dir, 2); err != nil {
		t.Fatal(err)
	}
	seqs, _ := listSeqs(dir, snapPrefix, snapSuffix)
	if len(seqs) != 2 || seqs[0] != 50 || seqs[1] != 60 {
		t.Fatalf("snapshots after compaction: %v", seqs)
	}
	got, _, err = LoadLatestSnapshot(dir)
	if err != nil || got.Cursor != 60 {
		t.Fatalf("latest after compaction: %+v err=%v", got, err)
	}
}

func TestSnapshotLoadMissing(t *testing.T) {
	if _, found, err := LoadLatestSnapshot(t.TempDir()); err != nil || found {
		t.Fatalf("empty dir: found=%v err=%v", found, err)
	}
	if _, found, err := LoadLatestSnapshot(filepath.Join(t.TempDir(), "nope")); err != nil || found {
		t.Fatalf("missing dir: found=%v err=%v", found, err)
	}
}

// corruptSnapshot writes a snapshot, mutates its bytes, and returns the
// LoadLatestSnapshot error.
func corruptSnapshot(t *testing.T, mutate func([]byte) []byte) error {
	t.Helper()
	dir := t.TempDir()
	if err := WriteSnapshot(dir, &Snapshot{Cursor: 7, Meta: testMeta(), State: []byte("state")}, false); err != nil {
		t.Fatal(err)
	}
	path := snapPath(dir, 7)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(b), 0o666); err != nil {
		t.Fatal(err)
	}
	_, _, err = LoadLatestSnapshot(dir)
	return err
}

func TestSnapshotCorruption(t *testing.T) {
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   string
	}{
		{"bad checksum", func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b }, "checksum mismatch"},
		{"version mismatch", func(b []byte) []byte { b[len(snapMagic)] = snapVersion + 9; return b }, "unsupported snapshot version"},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, "bad magic"},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-3] }, "checksum mismatch"},
		{"short file", func(b []byte) []byte { return b[:5] }, "too short"},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0xaa) }, "checksum mismatch"},
	}
	for _, tc := range cases {
		err := corruptSnapshot(t, tc.mutate)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

func TestDecodeSnapshotTruncatedFields(t *testing.T) {
	img := EncodeSnapshot(&Snapshot{Cursor: 9, Meta: testMeta(), State: []byte("abc")})
	// Every strict prefix must fail cleanly, never panic. (Prefixes
	// shorter than the checksummed payload fail the checksum; the loop
	// is really a no-panic sweep.)
	for cut := 0; cut < len(img); cut++ {
		if _, err := DecodeSnapshot(img[:cut]); err == nil {
			t.Fatalf("prefix of %d bytes decoded without error", cut)
		}
	}
	if _, err := DecodeSnapshot(img); err != nil {
		t.Fatalf("full image: %v", err)
	}
}

func TestMetaCheck(t *testing.T) {
	m := testMeta()
	if err := m.Check(testMeta()); err != nil {
		t.Fatal(err)
	}
	other := testMeta()
	other.Eps = 0.5
	err := m.Check(other)
	if err == nil || !strings.Contains(err.Error(), "eps=0.5") {
		t.Fatalf("meta mismatch: %v", err)
	}
}

func BenchmarkWALAppend(b *testing.B) {
	dir := b.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	payload := make([]byte, 2048)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshotEncode(b *testing.B) {
	s := &Snapshot{Cursor: 99, Meta: testMeta(), State: make([]byte, 16<<10)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(EncodeSnapshot(s)) == 0 {
			b.Fatal("empty image")
		}
	}
}
