package persist

import (
	"errors"
	"sync"
	"time"
)

// GroupCommitter batches WAL appends from many goroutines into shared
// groups: each Commit enqueues its payload and blocks until the group
// holding it is committed — written in one write call and, when the WAL
// fsyncs, made durable by one sync — via AppendBatch. Under concurrent
// load the write+fsync cost is paid once per group instead of once per
// caller, which is what lets fsync-durable ingest keep up with many
// fast connections; the price is that a lone caller waits up to the
// coalescing interval for company that never arrives.
//
// Completion is a future: Commit does not return until its group is on
// disk, so a caller that acknowledges its client after Commit returns
// still means "durable" by that ack — batching changes who pays for the
// sync, never what an ack promises.
type GroupCommitter struct {
	wal      *WAL
	interval time.Duration

	mu     sync.Mutex
	queue  []*groupEntry // appends waiting for the next group
	spare  []*groupEntry // recycled backing array (ping-pongs with queue)
	closed bool

	wake    chan struct{} // signals the loop that a group has started; capacity 1
	closing chan struct{} // closed once by Close to cut a linger short
	exited  chan struct{} // closed when the loop has drained and returned

	pool sync.Pool // *groupEntry, recycled across commits
	bufs [][]byte  // payload slices for AppendBatch, reused (loop-owned)
}

// groupEntry is one caller's pending append: the payload to journal,
// the result slots, and a one-slot channel the committer signals when
// the group holding the entry has committed or failed. Signaling by
// send (not close) keeps the channel — and the entry — reusable.
type groupEntry struct {
	payload []byte
	seq     uint64
	err     error
	done    chan struct{}
}

// NewGroupCommitter starts a committer over the WAL. interval is the
// coalescing window: after the first append of a group arrives, the
// committer lingers this long collecting more before it commits. Zero
// commits each group as soon as the loop can collect it; callers that
// overlap a commit in flight still share the next group.
func NewGroupCommitter(wal *WAL, interval time.Duration) *GroupCommitter {
	c := &GroupCommitter{
		wal:      wal,
		interval: interval,
		wake:     make(chan struct{}, 1),
		closing:  make(chan struct{}),
		exited:   make(chan struct{}),
	}
	go c.run()
	return c
}

// ErrCommitterClosed rejects commits after Close.
var ErrCommitterClosed = errors.New("persist: group committer closed")

// Commit journals payload as one WAL record inside the next group and
// blocks until that group has committed, returning the record's
// sequence number. The payload must stay untouched until Commit
// returns. Safe for concurrent use; the steady state allocates
// nothing (entries and queues are recycled).
func (c *GroupCommitter) Commit(payload []byte) (uint64, error) {
	e, _ := c.pool.Get().(*groupEntry)
	if e == nil {
		e = &groupEntry{done: make(chan struct{}, 1)}
	}
	e.payload = payload
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		e.payload = nil
		c.pool.Put(e)
		return 0, ErrCommitterClosed
	}
	c.queue = append(c.queue, e)
	c.mu.Unlock()
	select {
	case c.wake <- struct{}{}:
	default: // a wakeup is already pending; the loop will see this entry
	}
	<-e.done
	seq, err := e.seq, e.err
	e.payload, e.seq, e.err = nil, 0, nil
	c.pool.Put(e)
	return seq, err
}

// Close flushes every pending append as a final group, stops the loop
// and rejects further commits. A linger in progress is cut short, so
// Close returns promptly even under a long coalescing interval.
func (c *GroupCommitter) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.exited
		return
	}
	c.closed = true
	c.mu.Unlock()
	close(c.closing)
	select {
	case c.wake <- struct{}{}:
	default:
	}
	<-c.exited
}

// run is the committer loop: wait for a group to start, linger for the
// coalescing interval, then commit everything queued as one group.
func (c *GroupCommitter) run() {
	defer close(c.exited)
	for {
		<-c.wake
		if c.interval > 0 {
			t := time.NewTimer(c.interval)
			select {
			case <-t.C:
			case <-c.closing:
				t.Stop()
			}
		}
		c.mu.Lock()
		work := c.queue
		c.queue = c.spare[:0]
		c.spare = work
		closed := c.closed
		c.mu.Unlock()
		c.commit(work)
		if closed {
			// The flag is set, so nothing new can enqueue; one more
			// collection catches entries that raced in before it was.
			c.mu.Lock()
			rest := c.queue
			c.queue = nil
			c.mu.Unlock()
			c.commit(rest)
			return
		}
	}
}

// commit writes one group through AppendBatch and signals every waiting
// caller with its record's sequence number (or the shared error).
func (c *GroupCommitter) commit(q []*groupEntry) {
	if len(q) == 0 {
		return
	}
	c.bufs = c.bufs[:0]
	for _, e := range q {
		c.bufs = append(c.bufs, e.payload)
	}
	first, err := c.wal.AppendBatch(c.bufs)
	for i := range c.bufs {
		c.bufs[i] = nil // don't pin payload buffers until the next group
	}
	for i, e := range q {
		if err == nil {
			e.seq = first + uint64(i)
		}
		e.err = err
		e.done <- struct{}{} // e is the caller's again after this send
	}
}
