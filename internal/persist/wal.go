package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
)

// WAL record framing: a fixed 16-byte header — payload length (uint32),
// CRC-32/IEEE over sequence number and payload (uint32), sequence
// number (uint64) — followed by the payload. Sequence numbers start at
// 1 and increase by exactly one per record across segment boundaries.
const recordHeaderLen = 16

// WALOptions configures OpenWAL.
type WALOptions struct {
	// SegmentBytes is the rotation threshold: a segment that reaches
	// this size is closed and a new one started. Default 4 MiB.
	SegmentBytes int64
	// Fsync syncs the segment file after every append, making records
	// durable against power loss, not just process death. Appends are
	// single write calls either way, so a killed process loses nothing
	// that Append returned for.
	Fsync bool
	// MinSeq is the sequence number numbering must continue after, even
	// when every segment has been compacted away — pass the newest
	// snapshot's cursor, so fresh records stay beyond it.
	MinSeq uint64
}

// WAL is an append-only write-ahead log over rotated segment files in a
// data directory. Append is safe for concurrent use.
type WAL struct {
	dir    string
	opts   WALOptions
	mu     sync.Mutex
	f      *os.File
	size   int64
	last   uint64 // last assigned sequence number
	buf    []byte // scratch for record assembly
	crc    *crc32Scratch
	close  bool
	broken error // sticky: a failed append left bytes we could not undo
}

// crc32Scratch carries the table and an 8-byte sequence buffer for
// checksumming. The buffer lives in the struct rather than on sum's
// stack because crc32.Update's assembly kernels make their arguments
// escape — a stack array there would cost one heap allocation per
// appended record. Not safe for concurrent use; the WAL calls sum
// under its mutex and replay is serial.
type crc32Scratch struct {
	tab *crc32.Table
	sb  [8]byte
}

func newCRC() *crc32Scratch { return &crc32Scratch{tab: crc32.IEEETable} }

func (c *crc32Scratch) sum(seq uint64, payload []byte) uint32 {
	binary.LittleEndian.PutUint64(c.sb[:], seq)
	s := crc32.Update(0, c.tab, c.sb[:])
	return crc32.Update(s, c.tab, payload)
}

// OpenWAL opens the log in dir for appending, creating the directory if
// needed. It scans the newest segment to find the last sequence number,
// truncating a torn final record (replay decides separately, and
// strictly by default, whether a torn tail fails recovery; by the time
// the log is reopened for appending the caller has accepted the state).
func OpenWAL(dir string, opts WALOptions) (*WAL, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 4 << 20
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	w := &WAL{dir: dir, opts: opts, last: opts.MinSeq, crc: newCRC()}
	seqs, err := listSeqs(dir, walSegPrefix, walSegSuffix)
	if err != nil {
		return nil, err
	}
	// A newest segment shorter than its header is the artifact of a
	// crash during rotation (created, header not yet written): it holds
	// no records, so remove it and fall back to the segment before it.
	if n := len(seqs); n > 0 {
		path := segPath(dir, seqs[n-1])
		if fi, err := os.Stat(path); err == nil && fi.Size() < headerLen {
			if err := os.Remove(path); err != nil {
				return nil, fmt.Errorf("persist: removing header-less segment %s: %w", path, err)
			}
			if first := seqs[n-1]; first > 0 && first-1 > w.last {
				w.last = first - 1 // the name still pins the sequence floor
			}
			seqs = seqs[:n-1]
		}
	}
	if len(seqs) == 0 {
		return w, nil
	}
	first := seqs[len(seqs)-1]
	path := segPath(dir, first)
	sc, err := scanSegment(path, first)
	if err != nil {
		return nil, err
	}
	if sc.torn {
		if err := os.Truncate(path, sc.goodSize); err != nil {
			return nil, fmt.Errorf("persist: truncating torn tail of %s: %w", path, err)
		}
	}
	if sc.last > w.last {
		w.last = sc.last
	} else if sc.records == 0 && first > 0 && first-1 > w.last {
		// An empty segment names the next sequence it will hold.
		w.last = first - 1
	}
	if sc.goodSize < opts.SegmentBytes {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o666)
		if err != nil {
			return nil, err
		}
		w.f, w.size = f, sc.goodSize
	}
	return w, nil
}

// LastSeq returns the last assigned sequence number (0 before any
// append on a fresh log).
func (w *WAL) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.last
}

// Append assigns the next sequence number to payload and writes the
// record in one write call, rotating segments at the size threshold.
// With Fsync the segment is synced before Append returns; without it
// the record still survives process death (it is in the page cache),
// just not power loss.
func (w *WAL) Append(payload []byte) (uint64, error) {
	if len(payload) > MaxRecordLen {
		return 0, fmt.Errorf("persist: record of %d bytes exceeds limit %d", len(payload), MaxRecordLen)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.close {
		return 0, fmt.Errorf("persist: append to closed WAL")
	}
	if w.broken != nil {
		return 0, fmt.Errorf("persist: WAL disabled after unrecoverable append failure: %w", w.broken)
	}
	if w.f == nil || w.size >= w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			return 0, err
		}
	}
	seq := w.last + 1
	b := w.buf[:0]
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = binary.LittleEndian.AppendUint32(b, w.crc.sum(seq, payload))
	b = binary.LittleEndian.AppendUint64(b, seq)
	b = append(b, payload...)
	w.buf = b[:0]
	if _, err := w.f.Write(b); err != nil {
		w.undoPartialLocked(err)
		return 0, fmt.Errorf("persist: appending record %d: %w", seq, err)
	}
	if w.opts.Fsync {
		if err := w.f.Sync(); err != nil {
			// The record is written but not durable; remove it so the
			// sequence is not consumed by a record we cannot vouch for.
			w.undoPartialLocked(err)
			return 0, fmt.Errorf("persist: syncing record %d: %w", seq, err)
		}
	}
	w.last = seq
	w.size += int64(len(b))
	return seq, nil
}

// AppendBatch appends every payload as its own record — consecutive
// sequence numbers, one buffer assembly, one write call, and (with
// Fsync) one sync for the whole group. This is the group-commit
// primitive: a committer aggregating appends from many connections
// pays the write+fsync cost once per group instead of once per batch.
// It returns the sequence number of the first record; payload i became
// record first+i. The group is atomic like a single Append: a failed
// write or sync truncates the whole partial group away and consumes no
// sequence numbers. Segment rotation happens before the group is
// written, so like single appends a group may run one group past the
// size threshold.
func (w *WAL) AppendBatch(payloads [][]byte) (uint64, error) {
	for _, p := range payloads {
		if len(p) > MaxRecordLen {
			return 0, fmt.Errorf("persist: record of %d bytes exceeds limit %d", len(p), MaxRecordLen)
		}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.close {
		return 0, fmt.Errorf("persist: append to closed WAL")
	}
	if w.broken != nil {
		return 0, fmt.Errorf("persist: WAL disabled after unrecoverable append failure: %w", w.broken)
	}
	if len(payloads) == 0 {
		return w.last + 1, nil
	}
	if w.f == nil || w.size >= w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			return 0, err
		}
	}
	first := w.last + 1
	seq := w.last
	b := w.buf[:0]
	for _, p := range payloads {
		seq++
		b = binary.LittleEndian.AppendUint32(b, uint32(len(p)))
		b = binary.LittleEndian.AppendUint32(b, w.crc.sum(seq, p))
		b = binary.LittleEndian.AppendUint64(b, seq)
		b = append(b, p...)
	}
	w.buf = b[:0]
	if _, err := w.f.Write(b); err != nil {
		w.undoPartialLocked(err)
		return 0, fmt.Errorf("persist: appending records %d..%d: %w", first, seq, err)
	}
	if w.opts.Fsync {
		if err := w.f.Sync(); err != nil {
			// The group is written but not durable; remove it so its
			// sequence numbers are not consumed by records we cannot
			// vouch for.
			w.undoPartialLocked(err)
			return 0, fmt.Errorf("persist: syncing records %d..%d: %w", first, seq, err)
		}
	}
	w.last = seq
	w.size += int64(len(b))
	return first, nil
}

// undoPartialLocked truncates the active segment back to the last good
// size after a failed append, so the partial record cannot poison the
// bytes later appends write after it. If even the truncate fails, the
// log is marked broken and refuses further appends — better unavailable
// than a segment that replays as corrupt.
func (w *WAL) undoPartialLocked(cause error) {
	if err := w.f.Truncate(w.size); err != nil {
		w.broken = fmt.Errorf("%w (and truncating the partial record failed: %v)", cause, err)
	}
}

// rotateLocked closes the current segment and starts the one whose
// first record will be last+1.
func (w *WAL) rotateLocked() error {
	if w.f != nil {
		if err := w.f.Close(); err != nil {
			return err
		}
		w.f = nil
	}
	path := segPath(w.dir, w.last+1)
	// O_APPEND keeps every write at end-of-file even after
	// undoPartialLocked truncates a failed record away — without it the
	// fd offset would stay past the new EOF and the next write would
	// leave a zero-filled hole mid-segment.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o666)
	if err != nil {
		return err
	}
	hdr := make([]byte, headerLen)
	copy(hdr, walMagic)
	hdr[headerLen-1] = walVersion
	fail := func(err error) error {
		// Remove the partially created segment: leaving it would make
		// every retry fail on O_EXCL and the next boot fail its header
		// scan.
		f.Close()
		os.Remove(path)
		return err
	}
	if _, err := f.Write(hdr); err != nil {
		return fail(err)
	}
	if w.opts.Fsync {
		if err := f.Sync(); err != nil {
			return fail(err)
		}
		syncDir(w.dir)
	}
	w.f, w.size = f, headerLen
	return nil
}

// Sync flushes the active segment to stable storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	return w.f.Sync()
}

// Close closes the active segment. Further appends fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.close = true
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// Compact removes segments every record of which is covered by a
// snapshot at the given cursor: a segment is deletable when the next
// segment starts at or before cursor+1. The newest segment is always
// kept, so sequence numbering stays anchored on disk.
func (w *WAL) Compact(cursor uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	seqs, err := listSeqs(w.dir, walSegPrefix, walSegSuffix)
	if err != nil {
		return err
	}
	removed := false
	for i := 0; i+1 < len(seqs); i++ {
		if seqs[i+1] <= cursor+1 {
			if err := os.Remove(segPath(w.dir, seqs[i])); err != nil {
				return err
			}
			removed = true
		}
	}
	if removed {
		syncDir(w.dir)
	}
	return nil
}

// ReplayOptions configures ReplayWAL.
type ReplayOptions struct {
	// After skips records with sequence numbers ≤ After — pass the
	// snapshot's cursor, since the snapshot supersedes that prefix.
	After uint64
	// TolerateTornTail stops replay cleanly at a torn final record
	// instead of failing. A torn tail is what a crash mid-append leaves
	// behind; tolerating it trades the strict guarantee ("everything in
	// the log was applied") for availability after such a crash.
	TolerateTornTail bool
}

// ReplayWAL reads every record in sequence order and hands those after
// opts.After to fn. It fails with a descriptive error — never a panic —
// on checksum mismatches, version-mismatch headers, gaps in the
// sequence, and (unless tolerated) a torn final record. It returns the
// last sequence number seen and the number of records delivered to fn.
func ReplayWAL(dir string, opts ReplayOptions, fn func(seq uint64, payload []byte) error) (last uint64, n int, err error) {
	seqs, err := listSeqs(dir, walSegPrefix, walSegSuffix)
	if err != nil {
		return 0, 0, err
	}
	crc := newCRC()
	prev := uint64(0)
	for i, first := range seqs {
		path := segPath(dir, first)
		final := i == len(seqs)-1
		err := replaySegment(path, first, final, crc, func(seq uint64, payload []byte) error {
			if prev == 0 && seq > opts.After+1 {
				// The log's oldest surviving record is beyond what the
				// snapshot covers (or, with no snapshot, beyond record
				// 1): records have gone missing. Failing here is what
				// keeps a mangled data directory — a lost segment, or
				// a deleted snapshot whose compacted prefix is gone —
				// from recovering silently short.
				return fmt.Errorf("persist: %s: WAL starts at record %d but the snapshot covers only through %d: records %d..%d are missing", path, seq, opts.After, opts.After+1, seq-1)
			}
			if prev != 0 && seq != prev+1 {
				return fmt.Errorf("persist: %s: sequence gap: record %d follows %d", path, seq, prev)
			}
			prev = seq
			if seq <= opts.After {
				return nil
			}
			n++
			return fn(seq, payload)
		})
		if err != nil {
			var te *tornError
			if errors.As(err, &te) && final && opts.TolerateTornTail {
				return prev, n, nil
			}
			return prev, n, err
		}
	}
	return prev, n, nil
}

// tornError wraps ErrTornTail with position detail.
type tornError struct{ msg string }

func (e *tornError) Error() string { return e.msg }
func (e *tornError) Unwrap() error { return ErrTornTail }

// segScan is what scanning a segment reports: the last valid sequence
// number, the record count, and whether (and where) a torn tail starts.
type segScan struct {
	last     uint64
	records  int
	torn     bool
	goodSize int64
}

// scanSegment validates a segment's header and records without
// delivering payloads, distinguishing a torn tail from corruption.
func scanSegment(path string, nameSeq uint64) (segScan, error) {
	var sc segScan
	err := replaySegment(path, nameSeq, true, newCRC(), func(seq uint64, payload []byte) error {
		sc.last = seq
		sc.records++
		sc.goodSize += recordHeaderLen + int64(len(payload))
		return nil
	})
	sc.goodSize += headerLen
	if err != nil {
		var te *tornError
		if errors.As(err, &te) {
			sc.torn = true
			return sc, nil
		}
		return sc, err
	}
	return sc, nil
}

// replaySegment reads one segment file, validating the header and every
// record. A record that runs past end-of-file or fails its checksum
// with no bytes following is reported as a tornError when the segment
// is the final one; anything else is corruption.
func replaySegment(path string, nameSeq uint64, final bool, crc *crc32Scratch, fn func(seq uint64, payload []byte) error) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(b) < headerLen {
		// A final segment cut off inside its 8-byte header is the
		// artifact of a crash between segment creation and the header
		// write. No record can precede a header, so nothing is lost:
		// skip it. Anywhere else a short header is corruption.
		if final {
			return nil
		}
		return fmt.Errorf("persist: %s: short segment header (%d bytes)", path, len(b))
	}
	if string(b[:headerLen-1]) != walMagic[:headerLen-1] {
		return fmt.Errorf("persist: %s: not a WAL segment (bad magic)", path)
	}
	if v := b[headerLen-1]; v != walVersion {
		return fmt.Errorf("persist: %s: unsupported WAL version %d (this build reads version %d)", path, v, walVersion)
	}
	off := int64(headerLen)
	rest := b[headerLen:]
	firstRecord := true
	for len(rest) > 0 {
		if len(rest) < recordHeaderLen {
			return tornOrCorrupt(path, off, final, true, "truncated record header")
		}
		plen := binary.LittleEndian.Uint32(rest[0:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		seq := binary.LittleEndian.Uint64(rest[8:16])
		if plen > MaxRecordLen {
			return fmt.Errorf("persist: %s: record at offset %d declares %d bytes, over the %d limit", path, off, plen, MaxRecordLen)
		}
		end := recordHeaderLen + int(plen)
		if len(rest) < end {
			return tornOrCorrupt(path, off, final, true, "record runs past end of segment")
		}
		payload := rest[recordHeaderLen:end]
		if crc.sum(seq, payload) != sum {
			// A bad checksum on the very last record of the final
			// segment is the torn-tail signature (partial overwrite);
			// anywhere else it is corruption.
			return tornOrCorrupt(path, off, final, len(rest) == end, "checksum mismatch")
		}
		if firstRecord {
			if seq != nameSeq {
				return fmt.Errorf("persist: %s: first record has sequence %d, segment name says %d", path, seq, nameSeq)
			}
			firstRecord = false
		}
		if err := fn(seq, payload); err != nil {
			return err
		}
		rest = rest[end:]
		off += int64(end)
	}
	return nil
}

// tornOrCorrupt builds the right error for a bad record: a tornError
// when it is at the tail of the final segment, corruption otherwise.
func tornOrCorrupt(path string, off int64, finalSegment, atTail bool, why string) error {
	if finalSegment && atTail {
		return &tornError{msg: fmt.Sprintf("persist: %s: torn final WAL record at offset %d (%s): crash artifact — truncate to recover", path, off, why)}
	}
	return fmt.Errorf("persist: %s: corrupt record at offset %d: %s", path, off, why)
}
