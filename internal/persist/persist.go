// Package persist makes the aggregation server's state durable: a
// versioned, checksummed binary snapshot format for the dyadic
// accumulator state, plus an append-only write-ahead log (WAL) of
// ingested report frames with segment rotation and compaction.
//
// The paper's server keeps only O(polylog d) counters per protocol —
// one per dyadic interval — so full-state persistence is cheap: a
// snapshot is a few kilobytes even at d = 2²⁰. The WAL covers the gap
// between snapshots: every ingested frame is appended (and optionally
// fsynced) before it is applied, so a crash loses nothing that was
// acknowledged. Recovery loads the newest snapshot and replays the WAL
// records after its cursor; because counter ingestion is exact integer
// addition, the recovered state answers every query bit-for-bit
// identically to an uninterrupted server.
//
// Appends come in two shapes: WAL.Append journals one record with one
// write call, and WAL.AppendBatch journals a whole group of records —
// consecutive sequence numbers, one buffer assembly, one write, at most
// one fsync, whole-group rollback on failure. GroupCommitter builds the
// group-commit discipline on top of AppendBatch: concurrent callers'
// payloads coalesce for up to an interval and commit together, each
// caller blocking until its own record is journaled, so the per-append
// sync cost is paid once per group while an acknowledgment keeps its
// exact durability meaning. The append paths allocate nothing in steady
// state.
//
// On-disk layout (all files live in one data directory):
//
//	wal-%016x.seg   WAL segment, named by the first sequence number it
//	                holds; rotated at a size threshold
//	snap-%016x.rtfs snapshot, named by its cursor (the last WAL
//	                sequence number it covers)
//
// A snapshot supersedes the WAL prefix up to its cursor: after a
// snapshot is durably written, segments whose records are all covered
// are deleted (compaction). Corrupt inputs — bad checksums, torn
// records, version-mismatch headers — fail recovery with a descriptive
// error, never a panic or silent partial state; ReplayOptions offers an
// explicit opt-in to truncate a torn final record (the signature a
// crash mid-append leaves behind).
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
)

// File-format constants. The trailing byte of each magic is the format
// version; decoders reject other versions instead of misparsing them.
const (
	walMagic   = "RTFWAL\x00"
	snapMagic  = "RTFSNAP"
	walVersion = 1
	// snapVersion 2 added the domain-size field to the meta block
	// (Meta.M); version-1 snapshots are refused rather than misparsed.
	snapVersion = 2
	// snapVersionHashed (3) appends the hashed-encoding fields to the
	// meta block (Meta.Encoding, Meta.G, Meta.HashSeed). Writers emit it
	// only when one of those fields is set, so every snapshot an
	// exact-encoding deployment writes stays byte-identical to version 2
	// — and readable by older builds. Decoders accept both versions and
	// refuse anything else rather than misparse it.
	snapVersionHashed = 3
	headerLen         = 8 // magic + version byte, both formats
	walSegPrefix      = "wal-"
	walSegSuffix      = ".seg"
	snapPrefix        = "snap-"
	snapSuffix        = ".rtfs"
)

// MaxRecordLen bounds a WAL record's declared payload length, so a
// corrupt length field cannot force a huge allocation.
const MaxRecordLen = 1 << 26

// MaxStateLen bounds a snapshot's declared state payload length, for
// the same reason.
const MaxStateLen = 1 << 26

// ErrTornTail reports that the final record of the final WAL segment is
// incomplete — the signature of a crash mid-append. Recovery fails on
// it by default; ReplayOptions.TolerateTornTail truncates it instead.
var ErrTornTail = errors.New("persist: torn final WAL record")

// Meta identifies the mechanism configuration a snapshot belongs to.
// Recovery refuses to restore state into a differently-configured
// server: the counters only mean what the parameters say they mean.
type Meta struct {
	Mechanism string  // registry protocol name
	D         int     // horizon (power of two)
	K         int     // per-user sparsity bound
	M         int     // domain size of the richer-domain extension (0 = Boolean)
	Eps       float64 // privacy budget
	Scale     float64 // estimator scale of Algorithm 2

	// Hashed domain encodings only (all zero for Boolean and
	// exact-encoding servers, keeping their snapshots at version 2
	// byte-for-byte). The bucket counters of a hashed snapshot only mean
	// what the encoding and epoch seed say they mean, so recovery
	// refuses a mismatch on any of them.
	Encoding string // domain encoding name ("" = exact/Boolean)
	G        int    // bucket count of a hashed encoding
	HashSeed uint64 // shared epoch hash seed of a hashed encoding
}

// Check returns a descriptive error when two metas differ.
func (m Meta) Check(want Meta) error {
	if m != want {
		return fmt.Errorf("persist: snapshot taken with mechanism=%s d=%d k=%d m=%d eps=%v scale=%v encoding=%q g=%d seed=%d, server configured with mechanism=%s d=%d k=%d m=%d eps=%v scale=%v encoding=%q g=%d seed=%d",
			m.Mechanism, m.D, m.K, m.M, m.Eps, m.Scale, m.Encoding, m.G, m.HashSeed,
			want.Mechanism, want.D, want.K, want.M, want.Eps, want.Scale, want.Encoding, want.G, want.HashSeed)
	}
	return nil
}

// metaVersion returns the snapshot format version m requires: version 2
// unless a hashed-encoding field is set, so exact and Boolean
// deployments keep writing byte-identical version-2 snapshots.
func metaVersion(m Meta) byte {
	if m.Encoding != "" || m.G != 0 || m.HashSeed != 0 {
		return snapVersionHashed
	}
	return snapVersion
}

// appendMeta appends the wire encoding of m at the given format
// version. The version-3 tail carries the hashed-encoding fields.
func appendMeta(b []byte, m Meta, version byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(m.Mechanism)))
	b = append(b, m.Mechanism...)
	b = binary.AppendUvarint(b, uint64(m.D))
	b = binary.AppendUvarint(b, uint64(m.K))
	b = binary.AppendUvarint(b, uint64(m.M))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(m.Eps))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(m.Scale))
	if version >= snapVersionHashed {
		b = binary.AppendUvarint(b, uint64(len(m.Encoding)))
		b = append(b, m.Encoding...)
		b = binary.AppendUvarint(b, uint64(m.G))
		b = binary.AppendUvarint(b, m.HashSeed)
	}
	return b
}

// segPath returns the path of the segment whose first record is seq.
func segPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016x%s", walSegPrefix, seq, walSegSuffix))
}

// snapPath returns the path of the snapshot with the given cursor.
func snapPath(dir string, cursor uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016x%s", snapPrefix, cursor, snapSuffix))
}

// parseSeq extracts the sequence number from a segment or snapshot file
// name with the given prefix and suffix.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if len(name) != len(prefix)+16+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return 0, false
	}
	var seq uint64
	for _, c := range []byte(name[len(prefix) : len(prefix)+16]) {
		switch {
		case c >= '0' && c <= '9':
			seq = seq<<4 | uint64(c-'0')
		case c >= 'a' && c <= 'f':
			seq = seq<<4 | uint64(c-'a'+10)
		default:
			return 0, false
		}
	}
	return seq, true
}

// listSeqs returns the sorted sequence numbers of files in dir matching
// prefix/suffix. os.ReadDir already sorts by name, and the fixed-width
// hex names sort numerically.
func listSeqs(dir, prefix, suffix string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []uint64
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSeq(e.Name(), prefix, suffix); ok {
			out = append(out, seq)
		}
	}
	return out, nil
}

// syncDir best-effort fsyncs a directory so renames and removals are
// durable; some platforms do not support syncing directories, so errors
// are ignored.
func syncDir(dir string) {
	if f, err := os.Open(dir); err == nil {
		f.Sync()
		f.Close()
	}
}
