package persist

import (
	"encoding/binary"
	"fmt"
)

// Shard-scoped snapshot container: a membership-mode backend keeps one
// accumulator per virtual shard, and its durability snapshot is the
// ordered list of every shard's serialized state. The container is a
// thin length-prefixed framing over the per-shard protocol state
// encodings — the same bytes a reshard handoff ships over the wire —
// so export, transfer and crash recovery all speak one format.

// shardStatesVersion is the container's format version byte.
const shardStatesVersion = 1

// MaxShardStates bounds the shard count a container may declare (it
// mirrors membership.MaxShards without importing it).
const MaxShardStates = 1 << 16

// EncodeShardStates packs per-shard serialized states, in shard order,
// into one snapshot payload.
func EncodeShardStates(states [][]byte) ([]byte, error) {
	if len(states) == 0 || len(states) > MaxShardStates {
		return nil, fmt.Errorf("persist: %d shard states outside [1..%d]", len(states), MaxShardStates)
	}
	total := 2 + 10
	for _, s := range states {
		if len(s) > MaxStateLen {
			return nil, fmt.Errorf("persist: shard state of %d bytes exceeds limit %d", len(s), MaxStateLen)
		}
		total += 10 + len(s)
	}
	b := make([]byte, 0, total)
	b = append(b, shardStatesVersion)
	b = binary.AppendUvarint(b, uint64(len(states)))
	for _, s := range states {
		b = binary.AppendUvarint(b, uint64(len(s)))
		b = append(b, s...)
	}
	return b, nil
}

// DecodeShardStates unpacks a container written by EncodeShardStates.
// Every declared length is validated against the remaining input
// before any slice is cut, so a corrupt container cannot force a huge
// allocation. The returned slices alias b.
func DecodeShardStates(b []byte) ([][]byte, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("persist: empty shard state container")
	}
	if b[0] != shardStatesVersion {
		return nil, fmt.Errorf("persist: unsupported shard state container version %d", b[0])
	}
	off := 1
	n, w := binary.Uvarint(b[off:])
	if w <= 0 {
		return nil, fmt.Errorf("persist: truncated shard state container header")
	}
	off += w
	if n == 0 || n > MaxShardStates {
		return nil, fmt.Errorf("persist: container declares %d shards outside [1..%d]", n, MaxShardStates)
	}
	states := make([][]byte, n)
	for i := range states {
		l, w := binary.Uvarint(b[off:])
		if w <= 0 {
			return nil, fmt.Errorf("persist: truncated shard %d length", i)
		}
		off += w
		if l > uint64(MaxStateLen) {
			return nil, fmt.Errorf("persist: shard %d state length %d exceeds limit %d", i, l, MaxStateLen)
		}
		if uint64(len(b)-off) < l {
			return nil, fmt.Errorf("persist: shard %d state truncated (%d declared, %d left)", i, l, len(b)-off)
		}
		states[i] = b[off : off+int(l)]
		off += int(l)
	}
	if off != len(b) {
		return nil, fmt.Errorf("persist: %d trailing bytes after shard state container", len(b)-off)
	}
	return states, nil
}
