package persist

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzSnapshotDecode feeds arbitrary bytes to the snapshot decoder: it
// must return a snapshot or a descriptive error, never panic, and a
// successful decode must re-encode to an image that decodes to the same
// snapshot (the format is self-validating, so a mangled image that
// still decodes is by definition an equivalent snapshot).
func FuzzSnapshotDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("RTFSNAP"))
	f.Add([]byte("RTFWAL\x00\x01"))
	f.Add(EncodeSnapshot(&Snapshot{}))
	f.Add(EncodeSnapshot(&Snapshot{Cursor: 42, Meta: Meta{Mechanism: "futurerand", D: 256, K: 4, Eps: 1, Scale: 17.25}, State: []byte{1, 2, 3}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		s2, err := DecodeSnapshot(EncodeSnapshot(s))
		if err != nil {
			t.Fatalf("re-encoded snapshot failed to decode: %v", err)
		}
		if s2.Cursor != s.Cursor || s2.Meta != s.Meta || string(s2.State) != string(s.State) {
			t.Fatalf("round trip changed the snapshot: %+v vs %+v", s, s2)
		}
	})
}

// FuzzWALReplay treats arbitrary bytes as a WAL segment file: replay
// must deliver records or fail with a descriptive error — never panic —
// in both strict and torn-tail-tolerant modes, and the tolerant mode
// must deliver at least as many records as the strict one.
func FuzzWALReplay(f *testing.F) {
	valid := func(payloads ...string) []byte {
		dir := f.TempDir()
		w, err := OpenWAL(dir, WALOptions{})
		if err != nil {
			f.Fatal(err)
		}
		for _, p := range payloads {
			if _, err := w.Append([]byte(p)); err != nil {
				f.Fatal(err)
			}
		}
		w.Close()
		b, err := os.ReadFile(segPath(dir, 1))
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	f.Add([]byte{})
	f.Add([]byte("RTFWAL\x00\x01"))
	f.Add(valid("hello"))
	f.Add(valid("a", "bb", "ccc"))
	f.Add(valid("hello")[:20]) // torn mid-record
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal-0000000000000001.seg"), data, 0o666); err != nil {
			t.Fatal(err)
		}
		strictN := 0
		_, _, strictErr := ReplayWAL(dir, ReplayOptions{}, func(uint64, []byte) error { strictN++; return nil })
		tolerantN := 0
		_, _, tolerantErr := ReplayWAL(dir, ReplayOptions{TolerateTornTail: true}, func(uint64, []byte) error { tolerantN++; return nil })
		if tolerantN < strictN {
			t.Fatalf("tolerant replay delivered %d records, strict %d", tolerantN, strictN)
		}
		if strictErr == nil && tolerantErr != nil {
			t.Fatalf("strict replay succeeded but tolerant failed: %v", tolerantErr)
		}
	})
}
