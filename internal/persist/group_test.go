package persist

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// replayAll replays every record in dir into a map of seq → payload.
func replayAll(t *testing.T, dir string) map[uint64]string {
	t.Helper()
	got := map[uint64]string{}
	_, _, err := ReplayWAL(dir, ReplayOptions{}, func(seq uint64, payload []byte) error {
		got[seq] = string(payload)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

// TestWALAppendBatch checks the group-commit primitive: consecutive
// sequence numbers in payload order, interchangeable with single
// appends, all replayable.
func TestWALAppendBatch(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if seq, err := w.Append([]byte("single-1")); err != nil || seq != 1 {
		t.Fatalf("Append = %d, %v; want 1", seq, err)
	}
	first, err := w.AppendBatch([][]byte{[]byte("group-a"), []byte("group-b"), []byte("group-c")})
	if err != nil || first != 2 {
		t.Fatalf("AppendBatch = %d, %v; want first 2", first, err)
	}
	if seq, err := w.Append([]byte("single-2")); err != nil || seq != 5 {
		t.Fatalf("Append after batch = %d, %v; want 5", seq, err)
	}
	// An empty group consumes nothing.
	if first, err := w.AppendBatch(nil); err != nil || first != 6 {
		t.Fatalf("empty AppendBatch = %d, %v; want next seq 6 and no error", first, err)
	}
	if last := w.LastSeq(); last != 5 {
		t.Fatalf("LastSeq = %d, want 5", last)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, dir)
	want := map[uint64]string{1: "single-1", 2: "group-a", 3: "group-b", 4: "group-c", 5: "single-2"}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for seq, payload := range want {
		if got[seq] != payload {
			t.Fatalf("record %d = %q, want %q", seq, got[seq], payload)
		}
	}
}

// TestGroupCommitterConcurrent hammers one committer from many
// goroutines and checks every caller got a distinct sequence number
// whose replayed payload is its own.
func TestGroupCommitterConcurrent(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gc := NewGroupCommitter(w, 200*time.Microsecond)

	const writers, perWriter = 8, 50
	var mu sync.Mutex
	seqs := map[uint64]string{}
	var wg sync.WaitGroup
	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				payload := fmt.Sprintf("w%d-%d", wr, i)
				seq, err := gc.Commit([]byte(payload))
				if err != nil {
					t.Errorf("Commit: %v", err)
					return
				}
				mu.Lock()
				if prev, dup := seqs[seq]; dup {
					t.Errorf("sequence %d assigned to both %q and %q", seq, prev, payload)
				}
				seqs[seq] = payload
				mu.Unlock()
			}
		}(wr)
	}
	wg.Wait()
	gc.Close()
	if _, err := gc.Commit([]byte("late")); err == nil {
		t.Fatal("Commit after Close succeeded")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got := replayAll(t, dir)
	if len(got) != writers*perWriter {
		t.Fatalf("replayed %d records, want %d", len(got), writers*perWriter)
	}
	for seq, payload := range seqs {
		if got[seq] != payload {
			t.Fatalf("record %d = %q, caller was told %q", seq, got[seq], payload)
		}
	}
}

// TestGroupCommitterUncommittedGroupIsInvisible pins the crash
// semantics of group commit: an append still waiting in a forming group
// has not touched the log, so a crash before the group commits loses
// exactly the unacknowledged batches and nothing else.
func TestGroupCommitterUncommittedGroupIsInvisible(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Committed history first, through its own short-lived committer.
	gc := NewGroupCommitter(w, 0)
	if _, err := gc.Commit([]byte("acked")); err != nil {
		t.Fatal(err)
	}
	gc.Close()

	// A committer with an hour-long window forms a group that will not
	// commit within this test's lifetime: the caller blocks, the log
	// stays untouched — the moral equivalent of kill -9 between group
	// formation and commit.
	slow := NewGroupCommitter(w, time.Hour)
	started := make(chan struct{})
	go func() {
		close(started)
		slow.Commit([]byte("never-acked")) // blocks until Close; result discarded
	}()
	<-started
	time.Sleep(20 * time.Millisecond) // let the entry reach the forming group

	if last := w.LastSeq(); last != 1 {
		t.Fatalf("LastSeq = %d with a group still forming, want 1", last)
	}
	got := replayAll(t, dir)
	if len(got) != 1 || got[1] != "acked" {
		t.Fatalf("replay sees %v, want only the acked record", got)
	}

	// Close flushes the pending group promptly despite the hour window —
	// shutdown is a flush, not a wait.
	done := make(chan struct{})
	go func() { slow.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not cut the coalescing window short")
	}
	if got := replayAll(t, dir); got[2] != "never-acked" {
		t.Fatalf("flushed group not replayable: %v", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}
