package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"strings"
)

// Snapshot is one durable cut of server state: the mechanism metadata
// it was taken under, an opaque state payload (the serialized dyadic
// accumulator), and the WAL cursor — the last sequence number whose
// record is reflected in the state. Recovery restores the state and
// replays only WAL records after the cursor.
type Snapshot struct {
	Cursor uint64
	Meta   Meta
	State  []byte
}

// EncodeSnapshot returns the versioned, checksummed snapshot file
// image: an 8-byte magic+version header, a CRC-32/IEEE of the payload,
// and the payload (cursor, meta, state).
func EncodeSnapshot(s *Snapshot) []byte {
	version := metaVersion(s.Meta)
	payload := make([]byte, 0, 64+len(s.State))
	payload = binary.AppendUvarint(payload, s.Cursor)
	payload = appendMeta(payload, s.Meta, version)
	payload = binary.AppendUvarint(payload, uint64(len(s.State)))
	payload = append(payload, s.State...)

	out := make([]byte, 0, headerLen+4+len(payload))
	out = append(out, snapMagic...)
	out = append(out, version)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

// DecodeSnapshot parses a snapshot file image, failing with a
// descriptive error — never a panic — on short input, bad magic,
// version mismatch, checksum mismatch, or malformed payload fields.
func DecodeSnapshot(b []byte) (*Snapshot, error) {
	if len(b) < headerLen+4 {
		return nil, fmt.Errorf("persist: snapshot too short (%d bytes)", len(b))
	}
	if string(b[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("persist: not a snapshot file (bad magic)")
	}
	version := b[len(snapMagic)]
	if version != snapVersion && version != snapVersionHashed {
		return nil, fmt.Errorf("persist: unsupported snapshot version %d (this build reads versions %d and %d)", version, snapVersion, snapVersionHashed)
	}
	sum := binary.LittleEndian.Uint32(b[headerLen : headerLen+4])
	payload := b[headerLen+4:]
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, fmt.Errorf("persist: snapshot checksum mismatch (stored %08x, computed %08x)", sum, got)
	}
	r := payloadReader{b: payload}
	s := &Snapshot{}
	s.Cursor = r.uvarint("cursor")
	nameLen := r.uvarint("mechanism name length")
	if r.err == nil && nameLen > 1<<10 {
		return nil, fmt.Errorf("persist: snapshot mechanism name of %d bytes is implausible", nameLen)
	}
	s.Meta.Mechanism = string(r.bytes(int(nameLen), "mechanism name"))
	s.Meta.D = int(r.uvarint("d"))
	s.Meta.K = int(r.uvarint("k"))
	s.Meta.M = int(r.uvarint("m"))
	s.Meta.Eps = math.Float64frombits(r.u64("eps"))
	s.Meta.Scale = math.Float64frombits(r.u64("scale"))
	if version >= snapVersionHashed {
		encLen := r.uvarint("encoding name length")
		if r.err == nil && encLen > 1<<10 {
			return nil, fmt.Errorf("persist: snapshot encoding name of %d bytes is implausible", encLen)
		}
		s.Meta.Encoding = string(r.bytes(int(encLen), "encoding name"))
		s.Meta.G = int(r.uvarint("g"))
		s.Meta.HashSeed = r.uvarint("hash seed")
	}
	stateLen := r.uvarint("state length")
	if r.err == nil && stateLen > MaxStateLen {
		return nil, fmt.Errorf("persist: snapshot state of %d bytes exceeds limit %d", stateLen, MaxStateLen)
	}
	s.State = append([]byte(nil), r.bytes(int(stateLen), "state")...)
	if r.err != nil {
		return nil, r.err
	}
	if len(r.b[r.off:]) != 0 {
		return nil, fmt.Errorf("persist: %d trailing bytes after snapshot payload", len(r.b[r.off:]))
	}
	return s, nil
}

// payloadReader walks a payload buffer, recording the first decode
// error instead of panicking on short input.
type payloadReader struct {
	b   []byte
	off int
	err error
}

func (r *payloadReader) uvarint(field string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.err = fmt.Errorf("persist: snapshot payload truncated at %s", field)
		return 0
	}
	r.off += n
	return v
}

func (r *payloadReader) u64(field string) uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.err = fmt.Errorf("persist: snapshot payload truncated at %s", field)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *payloadReader) bytes(n int, field string) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.err = fmt.Errorf("persist: snapshot payload truncated at %s", field)
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

// WriteSnapshot durably writes s into dir as snap-<cursor>.rtfs: the
// image goes to a temporary file, is optionally fsynced, and is renamed
// into place, so a crash mid-write never leaves a half-written snapshot
// under the final name.
func WriteSnapshot(dir string, s *Snapshot, fsync bool) error {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return err
	}
	img := EncodeSnapshot(s)
	tmp, err := os.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(img); err != nil {
		tmp.Close()
		return err
	}
	if fsync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), snapPath(dir, s.Cursor)); err != nil {
		return err
	}
	if fsync {
		syncDir(dir)
	}
	return nil
}

// LoadLatestSnapshot loads the snapshot with the highest cursor. It
// returns found=false on a directory with no snapshots. A corrupt
// newest snapshot is a hard error rather than a silent fallback to an
// older one: compaction may already have deleted the WAL records an
// older snapshot would need, so falling back could silently lose data.
func LoadLatestSnapshot(dir string) (*Snapshot, bool, error) {
	seqs, err := listSeqs(dir, snapPrefix, snapSuffix)
	if err != nil {
		return nil, false, err
	}
	if len(seqs) == 0 {
		return nil, false, nil
	}
	cursor := seqs[len(seqs)-1]
	path := snapPath(dir, cursor)
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, false, err
	}
	s, err := DecodeSnapshot(b)
	if err != nil {
		return nil, false, fmt.Errorf("%w (in %s)", err, path)
	}
	if s.Cursor != cursor {
		return nil, false, fmt.Errorf("persist: %s: snapshot cursor %d does not match its file name", path, s.Cursor)
	}
	return s, true, nil
}

// CleanTemp removes stale snap-*.tmp files — the debris a crash during
// WriteSnapshot leaves behind (the temp file is renamed into place on
// success, so anything still named .tmp is dead). Call it at boot,
// before any writer is live.
func CleanTemp(dir string) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, snapPrefix) && strings.HasSuffix(name, ".tmp") {
			if err := os.Remove(filepath.Join(dir, name)); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
	}
	return nil
}

// CompactSnapshots removes all but the keep newest snapshot files.
func CompactSnapshots(dir string, keep int) error {
	seqs, err := listSeqs(dir, snapPrefix, snapSuffix)
	if err != nil {
		return err
	}
	if keep < 1 {
		keep = 1
	}
	removed := false
	for i := 0; i < len(seqs)-keep; i++ {
		if err := os.Remove(snapPath(dir, seqs[i])); err != nil && !os.IsNotExist(err) {
			return err
		}
		removed = true
	}
	if removed {
		syncDir(dir)
	}
	return nil
}
