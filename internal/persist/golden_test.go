package persist

import (
	"encoding/hex"
	"reflect"
	"testing"
)

// The version-2 snapshot images below were captured before the
// DomainEncoding refactor. Data directories written by older builds
// must keep loading byte-for-byte, and — since a non-hashed Meta still
// encodes as version 2 — new builds must keep producing the identical
// bytes for the identical state.

const (
	goldenBoolSnapHex   = "525446534e415002deb4e5c62a0a66757475726572616e6480020400000000000000f03f0000000000000440050102030405"
	goldenDomainSnapHex = "525446534e4150026e967783e8070a65726c696e6773736f6e80010210000000000000e03f0000000000000a4004deadbeef"
)

func goldenBoolSnap() *Snapshot {
	return &Snapshot{
		Cursor: 42,
		Meta:   Meta{Mechanism: "futurerand", D: 256, K: 4, Eps: 1, Scale: 2.5},
		State:  []byte{1, 2, 3, 4, 5},
	}
}

func goldenDomainSnap() *Snapshot {
	return &Snapshot{
		Cursor: 1000,
		Meta:   Meta{Mechanism: "erlingsson", D: 128, K: 2, M: 16, Eps: 0.5, Scale: 3.25},
		State:  []byte{0xde, 0xad, 0xbe, 0xef},
	}
}

// TestSnapshotGoldenBytes pins the version-2 snapshot encoding, both
// directions. A diff here breaks recovery of existing data directories,
// not a test to update casually.
func TestSnapshotGoldenBytes(t *testing.T) {
	for _, c := range []struct {
		name string
		snap *Snapshot
		hex  string
	}{
		{"bool", goldenBoolSnap(), goldenBoolSnapHex},
		{"domain", goldenDomainSnap(), goldenDomainSnapHex},
	} {
		if got := hex.EncodeToString(EncodeSnapshot(c.snap)); got != c.hex {
			t.Errorf("%s snapshot encoding changed:\n got  %s\n want %s", c.name, got, c.hex)
		}
		raw, err := hex.DecodeString(c.hex)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeSnapshot(raw)
		if err != nil {
			t.Fatalf("%s: pinned image no longer decodes: %v", c.name, err)
		}
		if !reflect.DeepEqual(got, c.snap) {
			t.Errorf("%s: pinned image decoded to %+v, want %+v", c.name, got, c.snap)
		}
		if raw[len(snapMagic)] != snapVersion {
			t.Errorf("%s: non-hashed meta must stay on version %d, image has %d", c.name, snapVersion, raw[len(snapMagic)])
		}
	}
}

// TestSnapshotVersionGating checks the version fence around the hashed
// extension: hashed metadata forces version 3, a version-3 image
// round-trips the encoding identity exactly, and unknown versions — v1
// from the distant past or anything from the future — are refused.
func TestSnapshotVersionGating(t *testing.T) {
	hashed := &Snapshot{
		Cursor: 7,
		Meta: Meta{
			Mechanism: "futurerand", D: 128, K: 2, M: 1 << 20,
			Encoding: "loloha", G: 256, HashSeed: 0xdeadbeef,
			Eps: 1, Scale: 2.0,
		},
		State: []byte{9, 8, 7},
	}
	img := EncodeSnapshot(hashed)
	if img[len(snapMagic)] != snapVersionHashed {
		t.Fatalf("hashed meta encoded as version %d, want %d", img[len(snapMagic)], snapVersionHashed)
	}
	got, err := DecodeSnapshot(img)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, hashed) {
		t.Fatalf("hashed snapshot round trip: %+v, want %+v", got, hashed)
	}

	for _, v := range []byte{0, 1, snapVersionHashed + 1, 255} {
		bad := append([]byte(nil), img...)
		bad[len(snapMagic)] = v
		if _, err := DecodeSnapshot(bad); err == nil {
			t.Errorf("snapshot version %d accepted", v)
		}
	}
}
