// Package membership is the epoched cluster-view subsystem shared by
// the member gateway and membership-mode rtf-serve backends.
//
// A View is a versioned description of the cluster: an epoch number, a
// replication factor K, a virtual-shard count, and a member list
// (backend ID + dial address). Users hash statically onto virtual
// shards (user mod NumShards); shards are placed on members by
// rendezvous (highest-random-weight) hashing, so bumping the epoch to
// add or remove one member moves only ~K/N of the shard-ownership
// pairs instead of remapping the world the way the static
// `user mod N` gateway map does.
//
// Placement is a pure function of (shard, member IDs): every gateway
// and backend holding the same View computes the same owners with no
// coordination, and Plan diffs two views into the minimal set of
// shard transfers a reshard must perform.
package membership

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// Bounds on a View, mirroring the transport package's
// validate-before-allocate discipline for anything that crosses the
// wire.
const (
	// MaxMembers bounds the member list.
	MaxMembers = 1 << 10
	// MaxShards bounds the virtual-shard count.
	MaxShards = 1 << 16
	// MaxIDLen bounds a member ID or address string.
	MaxIDLen = 256
)

// Member is one backend in the cluster view.
type Member struct {
	// ID is the stable identity rendezvous hashing weighs; it must
	// survive restarts (an address may be re-bound, an ID may not).
	ID string
	// Addr is the backend's dial address.
	Addr string
}

// View is one epoch's immutable cluster description. Treat a View as
// a value: Reshard builds a new one rather than mutating in place.
type View struct {
	// Epoch orders views; a backend ignores a view older than the
	// one it holds.
	Epoch uint64
	// K is the replication factor: every shard lives on K members.
	K int
	// NumShards is the virtual-shard count users hash onto.
	NumShards int
	// Members lists the backends, in the order given at startup or
	// reshard time. Placement depends only on the ID set, not the
	// order.
	Members []Member
}

// Validate checks structural invariants: bounded sizes, non-empty
// unique IDs and addresses, and 1 <= K <= len(Members).
func (v View) Validate() error {
	if len(v.Members) == 0 {
		return fmt.Errorf("membership: view has no members")
	}
	if len(v.Members) > MaxMembers {
		return fmt.Errorf("membership: %d members exceeds max %d", len(v.Members), MaxMembers)
	}
	if v.NumShards < 1 || v.NumShards > MaxShards {
		return fmt.Errorf("membership: num_shards=%d outside [1..%d]", v.NumShards, MaxShards)
	}
	if v.K < 1 || v.K > len(v.Members) {
		return fmt.Errorf("membership: replication k=%d outside [1..%d members]", v.K, len(v.Members))
	}
	ids := make(map[string]struct{}, len(v.Members))
	addrs := make(map[string]struct{}, len(v.Members))
	for _, m := range v.Members {
		if m.ID == "" || len(m.ID) > MaxIDLen {
			return fmt.Errorf("membership: member id %q empty or longer than %d", m.ID, MaxIDLen)
		}
		if m.Addr == "" || len(m.Addr) > MaxIDLen {
			return fmt.Errorf("membership: member %s address %q empty or longer than %d", m.ID, m.Addr, MaxIDLen)
		}
		if _, dup := ids[m.ID]; dup {
			return fmt.Errorf("membership: duplicate member id %q", m.ID)
		}
		if _, dup := addrs[m.Addr]; dup {
			return fmt.Errorf("membership: duplicate member address %q", m.Addr)
		}
		ids[m.ID] = struct{}{}
		addrs[m.Addr] = struct{}{}
	}
	return nil
}

// Clone deep-copies the view so callers can hold it across a
// concurrent reshard.
func (v View) Clone() View {
	c := v
	c.Members = append([]Member(nil), v.Members...)
	return c
}

// Member returns the member with the given ID, if present.
func (v View) Member(id string) (Member, bool) {
	for _, m := range v.Members {
		if m.ID == id {
			return m, true
		}
	}
	return Member{}, false
}

// ShardOf maps a user id onto its virtual shard. The map is static —
// shards move between members across epochs, users never move between
// shards — which is what keeps a reshard a pure state-transfer with no
// per-user rehashing.
func ShardOf(user int, numShards int) int {
	if user < 0 {
		user = -user
	}
	return user % numShards
}

// weight is the rendezvous score of (shard, member): FNV-1a 64 over
// the shard's little-endian bytes, a separator, and the member ID.
// FNV-1a is stable across platforms and Go versions, so every process
// holding the same view agrees on placement.
func weight(shard int, id string) uint64 {
	h := fnv.New64a()
	var b [9]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(shard >> (8 * i))
	}
	b[8] = '|'
	h.Write(b[:])
	h.Write([]byte(id))
	return h.Sum64()
}

// Owners returns the indices (into v.Members) of the K
// highest-random-weight members for the shard, best first. Ties break
// on ascending ID so the order is total and deterministic.
func (v View) Owners(shard int) []int {
	type scored struct {
		idx int
		w   uint64
	}
	s := make([]scored, len(v.Members))
	for i, m := range v.Members {
		s[i] = scored{i, weight(shard, m.ID)}
	}
	sort.Slice(s, func(a, b int) bool {
		if s[a].w != s[b].w {
			return s[a].w > s[b].w
		}
		return v.Members[s[a].idx].ID < v.Members[s[b].idx].ID
	})
	out := make([]int, v.K)
	for i := range out {
		out[i] = s[i].idx
	}
	return out
}

// OwnerIDs is Owners projected onto member IDs.
func (v View) OwnerIDs(shard int) []string {
	idx := v.Owners(shard)
	out := make([]string, len(idx))
	for i, j := range idx {
		out[i] = v.Members[j].ID
	}
	return out
}

// Owns reports whether the member with the given ID is one of the
// shard's K owners.
func (v View) Owns(id string, shard int) bool {
	for _, j := range v.Owners(shard) {
		if v.Members[j].ID == id {
			return true
		}
	}
	return false
}

// OwnedShards returns the shards the member owns, ascending.
func (v View) OwnedShards(id string) []int {
	var out []int
	for s := 0; s < v.NumShards; s++ {
		if v.Owns(id, s) {
			out = append(out, s)
		}
	}
	return out
}

// Transfer is one shard movement a reshard must perform: ship the
// shard's state to Dst, sourcing it from one of Sources (the old
// owners, best first — try them in order until one answers).
type Transfer struct {
	Shard int
	// Dst is the member ID gaining the shard.
	Dst string
	// Sources are the old epoch's owner IDs; any one of them holds
	// the complete shard state (replicas are exact copies).
	Sources []string
}

// Plan diffs two views into the transfers that make every new owner
// complete: for each shard, each member that owns it under next but
// not under prev needs the state shipped in. A member that owns a
// shard in both views keeps its copy untouched. A brand-new cluster
// (prev has no members) needs no transfers — there is no state yet.
func Plan(prev, next View) []Transfer {
	if len(prev.Members) == 0 {
		return nil
	}
	var out []Transfer
	for s := 0; s < next.NumShards; s++ {
		oldIDs := prev.OwnerIDs(s)
		oldSet := make(map[string]struct{}, len(oldIDs))
		for _, id := range oldIDs {
			oldSet[id] = struct{}{}
		}
		for _, id := range next.OwnerIDs(s) {
			if _, held := oldSet[id]; held {
				continue
			}
			out = append(out, Transfer{Shard: s, Dst: id, Sources: append([]string(nil), oldIDs...)})
		}
	}
	return out
}

// ParseMembers parses the "-members id=addr,id=addr,..." flag form
// into a member list, rejecting empty or duplicate IDs and addresses.
func ParseMembers(spec string) ([]Member, error) {
	var out []Member
	ids := make(map[string]struct{})
	addrs := make(map[string]struct{})
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		id, addr = strings.TrimSpace(id), strings.TrimSpace(addr)
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("membership: member %q is not id=addr", part)
		}
		if _, dup := ids[id]; dup {
			return nil, fmt.Errorf("membership: duplicate member id %q", id)
		}
		if _, dup := addrs[addr]; dup {
			return nil, fmt.Errorf("membership: duplicate member address %q", addr)
		}
		ids[id] = struct{}{}
		addrs[addr] = struct{}{}
		out = append(out, Member{ID: id, Addr: addr})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("membership: no members in %q", spec)
	}
	return out, nil
}
