package membership

import (
	"fmt"
	"reflect"
	"testing"
)

func view(epoch uint64, k, shards int, ids ...string) View {
	ms := make([]Member, len(ids))
	for i, id := range ids {
		ms[i] = Member{ID: id, Addr: fmt.Sprintf("127.0.0.1:%d", 7700+i)}
	}
	return View{Epoch: epoch, K: k, NumShards: shards, Members: ms}
}

func TestValidate(t *testing.T) {
	ok := view(1, 2, 64, "a", "b", "c")
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid view rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*View)
	}{
		{"no members", func(v *View) { v.Members = nil }},
		{"k zero", func(v *View) { v.K = 0 }},
		{"k above members", func(v *View) { v.K = 4 }},
		{"zero shards", func(v *View) { v.NumShards = 0 }},
		{"too many shards", func(v *View) { v.NumShards = MaxShards + 1 }},
		{"empty id", func(v *View) { v.Members[1].ID = "" }},
		{"empty addr", func(v *View) { v.Members[1].Addr = "" }},
		{"dup id", func(v *View) { v.Members[2].ID = v.Members[0].ID }},
		{"dup addr", func(v *View) { v.Members[2].Addr = v.Members[0].Addr }},
		{"long id", func(v *View) {
			id := make([]byte, MaxIDLen+1)
			for i := range id {
				id[i] = 'x'
			}
			v.Members[0].ID = string(id)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := ok.Clone()
			tc.mut(&v)
			if err := v.Validate(); err == nil {
				t.Fatalf("invalid view accepted")
			}
		})
	}
}

// TestOwnersDeterministic pins that placement is a pure function of
// the view: two independently built copies agree on every shard, and
// member order does not matter.
func TestOwnersDeterministic(t *testing.T) {
	a := view(1, 2, 128, "n0", "n1", "n2", "n3")
	b := view(9, 2, 128, "n3", "n1", "n0", "n2") // shuffled, different epoch
	for s := 0; s < a.NumShards; s++ {
		ga, gb := a.OwnerIDs(s), b.OwnerIDs(s)
		if !reflect.DeepEqual(ga, gb) {
			t.Fatalf("shard %d: owners differ across member order: %v vs %v", s, ga, gb)
		}
		if len(ga) != a.K {
			t.Fatalf("shard %d: %d owners, want K=%d", s, len(ga), a.K)
		}
		if ga[0] == ga[1] {
			t.Fatalf("shard %d: duplicate owner %v", s, ga)
		}
	}
}

// TestOwnersBalance checks rendezvous spread: with 256 shards over 4
// members at K=2, every member should own a reasonable share (no
// member starved or doubled).
func TestOwnersBalance(t *testing.T) {
	v := view(1, 2, 256, "n0", "n1", "n2", "n3")
	counts := make(map[string]int)
	for s := 0; s < v.NumShards; s++ {
		for _, id := range v.OwnerIDs(s) {
			counts[id]++
		}
	}
	// Expected share is S*K/N = 128 per member.
	for id, c := range counts {
		if c < 64 || c > 192 {
			t.Fatalf("member %s owns %d of 512 ownership pairs; expected near 128", id, c)
		}
	}
}

// TestMinimalMovement is the rendezvous point: adding one member to N
// must move only ownership pairs that land on the newcomer, roughly
// S*K/(N+1), never a full remap.
func TestMinimalMovement(t *testing.T) {
	old := view(1, 2, 256, "n0", "n1", "n2")
	next := view(2, 2, 256, "n0", "n1", "n2", "n3")
	moved := 0
	for s := 0; s < old.NumShards; s++ {
		oldSet := make(map[string]struct{})
		for _, id := range old.OwnerIDs(s) {
			oldSet[id] = struct{}{}
		}
		for _, id := range next.OwnerIDs(s) {
			if _, held := oldSet[id]; !held {
				moved++
				if id != "n3" {
					t.Fatalf("shard %d moved to %s, not the new member", s, id)
				}
			}
		}
	}
	// Expectation: S*K/(N+1) = 128. Allow generous slack, but well
	// under a full remap (512 pairs).
	if moved < 64 || moved > 192 {
		t.Fatalf("%d ownership pairs moved; expected near 128 of 512", moved)
	}
}

func TestOwnedShardsMatchesOwners(t *testing.T) {
	v := view(3, 2, 64, "a", "b", "c")
	total := 0
	for _, m := range v.Members {
		for _, s := range v.OwnedShards(m.ID) {
			if !v.Owns(m.ID, s) {
				t.Fatalf("OwnedShards/Owns disagree for %s shard %d", m.ID, s)
			}
			total++
		}
	}
	if total != v.NumShards*v.K {
		t.Fatalf("%d ownership pairs, want %d", total, v.NumShards*v.K)
	}
}

func TestPlan(t *testing.T) {
	old := view(1, 2, 64, "n0", "n1", "n2")
	next := old.Clone()
	next.Epoch = 2
	next.Members = append(next.Members, Member{ID: "n3", Addr: "127.0.0.1:7790"})

	plan := Plan(old, next)
	if len(plan) == 0 {
		t.Fatalf("join produced no transfers")
	}
	for _, tr := range plan {
		if tr.Dst != "n3" {
			t.Fatalf("join transfer to %s, want only the new member", tr.Dst)
		}
		if !next.Owns(tr.Dst, tr.Shard) {
			t.Fatalf("transfer dst %s does not own shard %d under next", tr.Dst, tr.Shard)
		}
		if len(tr.Sources) != old.K {
			t.Fatalf("transfer sources %v, want the %d old owners", tr.Sources, old.K)
		}
		for _, src := range tr.Sources {
			if !old.Owns(src, tr.Shard) {
				t.Fatalf("source %s does not own shard %d under prev", src, tr.Shard)
			}
		}
	}

	// Removing a member: every shard it held must be re-homed, and no
	// transfer may target a surviving member that already held the
	// shard.
	drained := view(3, 2, 64, "n0", "n2", "n3")
	plan = Plan(next, drained)
	for _, tr := range plan {
		if next.Owns(tr.Dst, tr.Shard) {
			t.Fatalf("shard %d transferred to %s which already held it", tr.Shard, tr.Dst)
		}
	}
	// Every shard n1 owned must appear as a destination somewhere.
	rehomed := make(map[int]bool)
	for _, tr := range plan {
		rehomed[tr.Shard] = true
	}
	for _, s := range next.OwnedShards("n1") {
		if !rehomed[s] {
			t.Fatalf("shard %d owned by drained n1 never re-homed", s)
		}
	}

	// Bootstrap: no previous members, no transfers.
	if p := Plan(View{}, old); p != nil {
		t.Fatalf("bootstrap plan not empty: %v", p)
	}
}

func TestShardOf(t *testing.T) {
	if ShardOf(0, 16) != 0 || ShardOf(17, 16) != 1 || ShardOf(-17, 16) != 1 {
		t.Fatalf("ShardOf wrong: %d %d %d", ShardOf(0, 16), ShardOf(17, 16), ShardOf(-17, 16))
	}
}

func TestParseMembers(t *testing.T) {
	ms, err := ParseMembers(" b0=127.0.0.1:7610 , b1=127.0.0.1:7611,")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	want := []Member{{"b0", "127.0.0.1:7610"}, {"b1", "127.0.0.1:7611"}}
	if !reflect.DeepEqual(ms, want) {
		t.Fatalf("parsed %v, want %v", ms, want)
	}
	for _, bad := range []string{"", "b0", "=addr", "b0=", "b0=a,b0=b", "b0=a,b1=a"} {
		if _, err := ParseMembers(bad); err == nil {
			t.Fatalf("ParseMembers(%q) accepted", bad)
		}
	}
}

func BenchmarkOwners(b *testing.B) {
	v := view(1, 3, 256, "n0", "n1", "n2", "n3", "n4")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.Owners(i % v.NumShards)
	}
}
