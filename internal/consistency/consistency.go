// Package consistency implements the constrained-inference post-processing
// discussed as the offline advantage in Section 6: the server's noisy
// interval estimates Ŝ(I_{h,j}) are unbiased but mutually inconsistent
// (a parent interval's estimate need not equal the sum of its children's).
// Once all reports are in, a weighted least-squares projection onto the
// consistent subspace (parent = left + right at every node) strictly
// reduces expected squared error and never changes the expectation.
//
// The solver is the classic two-pass tree algorithm (in the style of Hay
// et al.): a bottom-up pass computes the best estimate z_v of each node
// from its own measurement and its subtree, with running variances; a
// top-down pass distributes the remaining discrepancy to children in
// proportion to their variances. With uniform per-level variances the
// result is the exact WLS solution; with the mildly non-uniform variances
// arising from order sampling it is the natural inverse-variance
// approximation, which the ablation experiment E10 evaluates empirically.
package consistency

import (
	"fmt"
	"math"

	"rtf/internal/dyadic"
)

// Smooth projects the flat per-interval estimates onto the consistent
// subspace. est is indexed by tree flat index; varByOrder[h] is the
// variance of every order-h estimate (use math.Inf(1) for orders with no
// reporting users, whose zero estimates carry no information). The
// returned slice is a new flat vector of consistent node values.
func Smooth(tr *dyadic.Tree, est []float64, varByOrder []float64) []float64 {
	d := tr.D()
	logd := dyadic.Log2(d)
	if len(est) != tr.Size() {
		panic(fmt.Sprintf("consistency: %d estimates for tree of size %d", len(est), tr.Size()))
	}
	if len(varByOrder) != logd+1 {
		panic(fmt.Sprintf("consistency: %d variances for %d orders", len(varByOrder), logd+1))
	}
	for h, v := range varByOrder {
		if v < 0 || math.IsNaN(v) {
			panic(fmt.Sprintf("consistency: invalid variance %v at order %d", v, h))
		}
	}

	z := make([]float64, tr.Size())
	vz := make([]float64, tr.Size())

	// Bottom-up: combine each node's own measurement with the sum of its
	// children's combined estimates, weighting by inverse variance.
	for h := 0; h <= logd; h++ {
		vh := varByOrder[h]
		for j := 1; j <= dyadic.CountAtOrder(d, h); j++ {
			fi := tr.FlatIndex(dyadic.Interval{Order: h, Index: j})
			if h == 0 {
				if math.IsInf(vh, 1) {
					// No information at all: canonical 0, so the top-down
					// pass distributes parent mass symmetrically.
					z[fi], vz[fi] = 0, vh
				} else {
					z[fi], vz[fi] = est[fi], vh
				}
				continue
			}
			li := tr.FlatIndex(dyadic.Interval{Order: h - 1, Index: 2*j - 1})
			ri := tr.FlatIndex(dyadic.Interval{Order: h - 1, Index: 2 * j})
			zc := z[li] + z[ri]
			vc := vz[li] + vz[ri]
			switch {
			case math.IsInf(vh, 1) && math.IsInf(vc, 1):
				z[fi], vz[fi] = 0, math.Inf(1)
			case math.IsInf(vh, 1):
				z[fi], vz[fi] = zc, vc
			case vh == 0 || math.IsInf(vc, 1):
				z[fi], vz[fi] = est[fi], vh
			default:
				// vh finite positive; vc finite (possibly 0, in which case
				// IEEE arithmetic yields w = 0 and vz = 0: trust children).
				w := (1 / vh) / (1/vh + 1/vc)
				z[fi] = w*est[fi] + (1-w)*zc
				vz[fi] = 1 / (1/vh + 1/vc)
			}
		}
	}

	// Top-down: fix the root, then push each node's residual discrepancy
	// to its children in proportion to their variances.
	out := make([]float64, tr.Size())
	rootIdx := tr.FlatIndex(dyadic.Interval{Order: logd, Index: 1})
	out[rootIdx] = z[rootIdx]
	for h := logd; h >= 1; h-- {
		for j := 1; j <= dyadic.CountAtOrder(d, h); j++ {
			fi := tr.FlatIndex(dyadic.Interval{Order: h, Index: j})
			li := tr.FlatIndex(dyadic.Interval{Order: h - 1, Index: 2*j - 1})
			ri := tr.FlatIndex(dyadic.Interval{Order: h - 1, Index: 2 * j})
			delta := out[fi] - (z[li] + z[ri])
			vl, vr := vz[li], vz[ri]
			var wl float64
			switch {
			case math.IsInf(vl, 1) && math.IsInf(vr, 1):
				wl = 0.5
			case math.IsInf(vl, 1):
				wl = 1
			case math.IsInf(vr, 1):
				wl = 0
			case vl+vr == 0:
				wl = 0.5
			default:
				wl = vl / (vl + vr)
			}
			out[li] = z[li] + delta*wl
			out[ri] = z[ri] + delta*(1-wl)
		}
	}
	return out
}

// SeriesFromTree converts consistent per-interval values into the
// estimate series â[1..d] via the prefix structure (Observation 3.9).
func SeriesFromTree(tr *dyadic.Tree, vals []float64) []float64 {
	d := tr.D()
	out := make([]float64, d)
	for t := 1; t <= d; t++ {
		low := t & (-t)
		h := dyadic.Log2(low)
		est := vals[tr.FlatIndex(dyadic.Interval{Order: h, Index: t >> uint(h)})]
		if prev := t - low; prev > 0 {
			est += out[prev-1]
		}
		out[t-1] = est
	}
	return out
}

// IsConsistent reports whether every parent value equals the sum of its
// children's, within tolerance.
func IsConsistent(tr *dyadic.Tree, vals []float64, tol float64) bool {
	d := tr.D()
	for h := 1; h <= dyadic.Log2(d); h++ {
		for j := 1; j <= dyadic.CountAtOrder(d, h); j++ {
			p := vals[tr.FlatIndex(dyadic.Interval{Order: h, Index: j})]
			l := vals[tr.FlatIndex(dyadic.Interval{Order: h - 1, Index: 2*j - 1})]
			r := vals[tr.FlatIndex(dyadic.Interval{Order: h - 1, Index: 2 * j})]
			if math.Abs(p-(l+r)) > tol {
				return false
			}
		}
	}
	return true
}
