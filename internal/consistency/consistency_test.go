package consistency

import (
	"math"
	"testing"

	"rtf/internal/dyadic"
	"rtf/internal/rng"
)

func TestSmoothProducesConsistentTree(t *testing.T) {
	g := rng.New(1, 2)
	for _, d := range []int{2, 8, 64} {
		tr := dyadic.NewTree(d)
		est := make([]float64, tr.Size())
		for i := range est {
			est[i] = g.Normal() * 10
		}
		vars := make([]float64, dyadic.NumOrders(d))
		for h := range vars {
			vars[h] = 1 + float64(h)
		}
		out := Smooth(tr, est, vars)
		if !IsConsistent(tr, out, 1e-9) {
			t.Errorf("d=%d: smoothed tree not consistent", d)
		}
	}
}

func TestSmoothAlreadyConsistentIsFixedPoint(t *testing.T) {
	// Build a consistent tree from leaf values; Smooth must return it
	// unchanged (it is the WLS projection of itself).
	d := 16
	tr := dyadic.NewTree(d)
	g := rng.New(3, 4)
	est := make([]float64, tr.Size())
	for j := 1; j <= d; j++ {
		est[tr.FlatIndex(dyadic.Interval{Order: 0, Index: j})] = float64(g.IntN(10))
	}
	for h := 1; h <= dyadic.Log2(d); h++ {
		for j := 1; j <= dyadic.CountAtOrder(d, h); j++ {
			l := est[tr.FlatIndex(dyadic.Interval{Order: h - 1, Index: 2*j - 1})]
			r := est[tr.FlatIndex(dyadic.Interval{Order: h - 1, Index: 2 * j})]
			est[tr.FlatIndex(dyadic.Interval{Order: h, Index: j})] = l + r
		}
	}
	vars := []float64{1, 1, 1, 1, 1}
	out := Smooth(tr, est, vars)
	for i := range est {
		if math.Abs(out[i]-est[i]) > 1e-9 {
			t.Fatalf("consistent input changed at node %d: %v -> %v", i, est[i], out[i])
		}
	}
}

func TestSmoothMatchesClosedFormD2(t *testing.T) {
	// d=2: minimize (x1−e1)²/v0 + (x2−e2)²/v0 + (x1+x2−er)²/v1.
	// Stationarity gives x1 = e1 + λ·v0/2... solving directly:
	// let s = e1+e2, δ = er − s; then x1 = e1 + δ·w, x2 = e2 + δ·w with
	// w = v0/(2v0+v1), and root = x1+x2.
	tr := dyadic.NewTree(2)
	e1, e2, er := 3.0, 5.0, 12.0
	v0, v1 := 2.0, 3.0
	est := make([]float64, 3)
	est[tr.FlatIndex(dyadic.Interval{Order: 0, Index: 1})] = e1
	est[tr.FlatIndex(dyadic.Interval{Order: 0, Index: 2})] = e2
	est[tr.FlatIndex(dyadic.Interval{Order: 1, Index: 1})] = er
	out := Smooth(tr, est, []float64{v0, v1})
	w := v0 / (2*v0 + v1)
	delta := er - (e1 + e2)
	x1 := e1 + delta*w
	x2 := e2 + delta*w
	got1 := out[tr.FlatIndex(dyadic.Interval{Order: 0, Index: 1})]
	got2 := out[tr.FlatIndex(dyadic.Interval{Order: 0, Index: 2})]
	gotr := out[tr.FlatIndex(dyadic.Interval{Order: 1, Index: 1})]
	if math.Abs(got1-x1) > 1e-9 || math.Abs(got2-x2) > 1e-9 {
		t.Errorf("leaves (%v,%v), want (%v,%v)", got1, got2, x1, x2)
	}
	if math.Abs(gotr-(x1+x2)) > 1e-9 {
		t.Errorf("root %v, want %v", gotr, x1+x2)
	}
}

func TestSmoothInfiniteVarianceIgnoresLevel(t *testing.T) {
	// With the root measurement carrying no information, leaves must be
	// returned unchanged and the root replaced by their sum.
	tr := dyadic.NewTree(2)
	est := []float64{0, 0, 0}
	est[tr.FlatIndex(dyadic.Interval{Order: 0, Index: 1})] = 4
	est[tr.FlatIndex(dyadic.Interval{Order: 0, Index: 2})] = 6
	est[tr.FlatIndex(dyadic.Interval{Order: 1, Index: 1})] = 999
	out := Smooth(tr, est, []float64{1, math.Inf(1)})
	if out[tr.FlatIndex(dyadic.Interval{Order: 0, Index: 1})] != 4 ||
		out[tr.FlatIndex(dyadic.Interval{Order: 0, Index: 2})] != 6 {
		t.Errorf("leaves changed: %v", out)
	}
	if got := out[tr.FlatIndex(dyadic.Interval{Order: 1, Index: 1})]; got != 10 {
		t.Errorf("root = %v, want 10", got)
	}
}

func TestSmoothInfiniteLeafVarianceUsesParent(t *testing.T) {
	// With leaves carrying no information, each leaf gets half the parent.
	tr := dyadic.NewTree(2)
	est := []float64{100, 200, 10}
	idxR := tr.FlatIndex(dyadic.Interval{Order: 1, Index: 1})
	est[idxR] = 10
	out := Smooth(tr, est, []float64{math.Inf(1), 1})
	l := out[tr.FlatIndex(dyadic.Interval{Order: 0, Index: 1})]
	r := out[tr.FlatIndex(dyadic.Interval{Order: 0, Index: 2})]
	if math.Abs(l-5) > 1e-9 || math.Abs(r-5) > 1e-9 {
		t.Errorf("leaves (%v,%v), want (5,5)", l, r)
	}
}

func TestSmoothReducesMSE(t *testing.T) {
	// Statistical ablation (E10 in miniature): noisy measurements of a
	// known consistent ground truth; post-processing must reduce total
	// squared error on average.
	g := rng.New(5, 6)
	d := 32
	tr := dyadic.NewTree(d)
	// Ground truth: random leaf values, consistent parents.
	truth := make([]float64, tr.Size())
	for j := 1; j <= d; j++ {
		truth[tr.FlatIndex(dyadic.Interval{Order: 0, Index: j})] = float64(g.IntN(100))
	}
	for h := 1; h <= dyadic.Log2(d); h++ {
		for j := 1; j <= dyadic.CountAtOrder(d, h); j++ {
			l := truth[tr.FlatIndex(dyadic.Interval{Order: h - 1, Index: 2*j - 1})]
			r := truth[tr.FlatIndex(dyadic.Interval{Order: h - 1, Index: 2 * j})]
			truth[tr.FlatIndex(dyadic.Interval{Order: h, Index: j})] = l + r
		}
	}
	vars := make([]float64, dyadic.NumOrders(d))
	for h := range vars {
		vars[h] = 25
	}
	var rawSE, smoothSE float64
	const trials = 300
	for trial := 0; trial < trials; trial++ {
		est := make([]float64, tr.Size())
		for i := range est {
			est[i] = truth[i] + 5*g.Normal()
		}
		out := Smooth(tr, est, vars)
		for i := range est {
			rawSE += (est[i] - truth[i]) * (est[i] - truth[i])
			smoothSE += (out[i] - truth[i]) * (out[i] - truth[i])
		}
	}
	if smoothSE >= rawSE {
		t.Errorf("post-processing increased SE: raw %v, smooth %v", rawSE, smoothSE)
	}
	// For a full uniform-variance tree the reduction is substantial.
	if smoothSE > 0.8*rawSE {
		t.Errorf("reduction too small: raw %v, smooth %v", rawSE, smoothSE)
	}
}

func TestSeriesFromTreeMatchesDecomposition(t *testing.T) {
	g := rng.New(7, 8)
	d := 64
	tr := dyadic.NewTree(d)
	vals := make([]float64, tr.Size())
	for i := range vals {
		vals[i] = g.Normal()
	}
	series := SeriesFromTree(tr, vals)
	for tt := 1; tt <= d; tt++ {
		want := 0.0
		for _, iv := range dyadic.Decompose(tt, d) {
			want += vals[tr.FlatIndex(iv)]
		}
		if math.Abs(series[tt-1]-want) > 1e-9 {
			t.Fatalf("series[%d] = %v, want %v", tt, series[tt-1], want)
		}
	}
}

func TestIsConsistentDetectsViolation(t *testing.T) {
	tr := dyadic.NewTree(4)
	vals := make([]float64, tr.Size())
	// all zeros is consistent
	if !IsConsistent(tr, vals, 1e-12) {
		t.Error("zero tree reported inconsistent")
	}
	vals[tr.FlatIndex(dyadic.Interval{Order: 2, Index: 1})] = 1
	if IsConsistent(tr, vals, 1e-12) {
		t.Error("violation not detected")
	}
}

func TestSmoothPanics(t *testing.T) {
	tr := dyadic.NewTree(4)
	for name, f := range map[string]func(){
		"bad est len": func() { Smooth(tr, make([]float64, 3), []float64{1, 1, 1}) },
		"bad var len": func() { Smooth(tr, make([]float64, tr.Size()), []float64{1, 1}) },
		"neg var":     func() { Smooth(tr, make([]float64, tr.Size()), []float64{1, -1, 1}) },
		"nan var":     func() { Smooth(tr, make([]float64, tr.Size()), []float64{1, math.NaN(), 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
