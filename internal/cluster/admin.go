package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"

	"rtf/internal/membership"
)

// Membership admin surface: a tiny JSON API the operator (and the
// acceptance simulator) drives reshards through. It mounts on the
// gateway's metrics mux, next to /metrics and /healthz:
//
//	GET  /membership/view     → the current view
//	POST /membership/reshard  → install a new member set as the next epoch
//
// The reshard body is {"members":[{"id":"...","addr":"..."}],"k":2};
// the response is the ReshardResult JSON. Reshards serialize behind the
// gateway's exclusive view lock, so concurrent posts queue rather than
// interleave.

// viewJSON is the wire form of a membership.View.
type viewJSON struct {
	Epoch     uint64       `json:"epoch"`
	K         int          `json:"k"`
	NumShards int          `json:"num_shards"`
	Members   []memberJSON `json:"members"`
}

type memberJSON struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

type reshardRequest struct {
	Members []memberJSON `json:"members"`
	K       int          `json:"k"`
}

func viewToJSON(v membership.View) viewJSON {
	out := viewJSON{Epoch: v.Epoch, K: v.K, NumShards: v.NumShards}
	for _, m := range v.Members {
		out.Members = append(out.Members, memberJSON{ID: m.ID, Addr: m.Addr})
	}
	return out
}

// AdminHandler returns the gateway's membership admin API.
func (g *MemberGateway) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/membership/view", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(viewToJSON(g.View()))
	})
	mux.HandleFunc("/membership/reshard", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var req reshardRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, fmt.Sprintf("decoding reshard request: %v", err), http.StatusBadRequest)
			return
		}
		members := make([]membership.Member, 0, len(req.Members))
		for _, m := range req.Members {
			members = append(members, membership.Member{ID: m.ID, Addr: m.Addr})
		}
		res, err := g.Reshard(members, req.K)
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(res)
	})
	return mux
}
