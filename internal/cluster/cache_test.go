package cluster

import (
	"net"
	"sync"
	"testing"
	"time"

	"rtf/internal/hh"
	"rtf/internal/obs"
	"rtf/internal/protocol"
	"rtf/internal/transport"
)

// startMeteredBackend is startBackend plus a metrics registry installed
// before the server starts serving, so cache tests can count exactly
// how many sums fetches reached the backend.
func startMeteredBackend(t *testing.T, d int, scale float64) (*testBackend, *obs.Registry) {
	t.Helper()
	acc := protocol.NewSharded(d, scale, 2)
	srv := transport.NewIngestServer(transport.NewShardedCollector(acc))
	reg := obs.NewRegistry()
	srv.Metrics = transport.NewServerMetrics(reg)
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0", ready) }()
	return &testBackend{srv: srv, acc: acc, addr: (<-ready).String(), done: done}, reg
}

// startMeteredGateway is startGateway with a metrics registry installed
// before the gateway starts serving (Metrics must not be set once
// connections are being accepted).
func startMeteredGateway(t *testing.T, d int, scale float64, addrs []string) (*Gateway, *obs.Registry, string, chan error) {
	t.Helper()
	client, err := transport.NewClusterClient(addrs, transport.ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gw := New(d, scale, client)
	gw.ErrorLog = func(err error) { t.Log("gateway:", err) }
	reg := obs.NewRegistry()
	gw.Metrics = transport.NewServerMetrics(reg)
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- gw.ListenAndServe("127.0.0.1:0", ready) }()
	return gw, reg, (<-ready).String(), done
}

// sumsFetches reads how many raw-sums requests a backend has answered.
func sumsFetches(reg *obs.Registry) int64 {
	return reg.Counter(obs.Label("queries_total", "mechanism", "boolean", "kind", "sums")).Value()
}

type gwClient struct {
	conn net.Conn
	enc  *transport.Encoder
	dec  *transport.Decoder
}

func dialGateway(t *testing.T, addr string) *gwClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return &gwClient{conn: conn, enc: transport.NewEncoder(conn), dec: transport.NewDecoder(conn)}
}

func (c *gwClient) close() { c.conn.Close() }

// series round-trips one v2 series query.
func (c *gwClient) series(t *testing.T) []float64 {
	t.Helper()
	if err := c.enc.Encode(transport.QueryV2(transport.QuerySeries, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := c.enc.Flush(); err != nil {
		t.Fatal(err)
	}
	a, err := c.dec.ReadAnswer()
	if err != nil {
		t.Fatal(err)
	}
	return a.Values
}

// ingestAndFence ships a batch and fences it with a v1 point query.
func (c *gwClient) ingestAndFence(t *testing.T, ms []transport.Msg) {
	t.Helper()
	if err := c.enc.EncodeBatch(ms); err != nil {
		t.Fatal(err)
	}
	if err := c.enc.Encode(transport.Query(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.enc.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.dec.Next(); err != nil {
		t.Fatal(err)
	}
}

// TestGatewayAnswerCacheExact pins the exact-mode cache protocol on one
// deterministic interleaving: an ingesting session's fencing query
// bypasses the cache (it must run its own gather), a clean session's
// first query misses and fills, its repeat hits without touching any
// backend, and any later fenced ingest invalidates the entry.
func TestGatewayAnswerCacheExact(t *testing.T) {
	const d, scale = 16, 2.0
	var addrs []string
	var regs []*obs.Registry
	for i := 0; i < 2; i++ {
		b, reg := startMeteredBackend(t, d, scale)
		addrs = append(addrs, b.addr)
		regs = append(regs, reg)
		defer b.stop(t)
	}
	gw, gwReg, gwAddr, gwDone := startMeteredGateway(t, d, scale, addrs)
	defer func() {
		gw.Close()
		if err := <-gwDone; err != nil {
			t.Error(err)
		}
	}()
	counters := func() (eligible, hits, misses, coalesced int64) {
		return gwReg.Counter("query_cache_eligible_total").Value(),
			gwReg.Counter("query_cache_hits_total").Value(),
			gwReg.Counter("query_cache_misses_total").Value(),
			gwReg.Counter("query_coalesced_total").Value()
	}

	writer := dialGateway(t, gwAddr)
	defer writer.close()
	writer.ingestAndFence(t, clusterMsgs(21, d, 40, 6))
	if _, hits, misses, _ := counters(); hits != 0 || misses != 1 {
		t.Fatalf("after fenced ingest: hits=%d misses=%d, want 0/1 (fencing query bypasses the cache)", hits, misses)
	}

	reader := dialGateway(t, gwAddr)
	defer reader.close()
	first := reader.series(t)
	fetchesAfterMiss := sumsFetches(regs[0]) + sumsFetches(regs[1])
	if _, hits, misses, _ := counters(); hits != 0 || misses != 2 {
		t.Fatalf("clean first query: hits=%d misses=%d, want 0/2", hits, misses)
	}

	second := reader.series(t)
	if got := sumsFetches(regs[0]) + sumsFetches(regs[1]); got != fetchesAfterMiss {
		t.Fatalf("cache hit still fetched backends: %d sums fetches, want %d", got, fetchesAfterMiss)
	}
	if _, hits, _, _ := counters(); hits != 1 {
		t.Fatalf("clean repeat query did not hit the cache")
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("cached series value %d: %v != %v", i, second[i], first[i])
		}
	}

	// New fenced ingest invalidates: the next clean query must miss and
	// reflect the new reports bit-for-bit.
	writer.ingestAndFence(t, clusterMsgs(22, d, 30, 4))
	third := reader.series(t)
	serial := protocol.NewServer(d, scale)
	for _, seed := range []uint64{21, 22} {
		for _, m := range clusterMsgs(seed, d, map[uint64]int{21: 40, 22: 30}[seed], map[uint64]int{21: 6, 22: 4}[seed]) {
			if m.Type == transport.MsgHello {
				serial.Register(m.Order)
			} else {
				serial.Ingest(m.Report())
			}
		}
	}
	want := serial.EstimateSeries()
	for i := range want {
		if third[i] != want[i] {
			t.Fatalf("post-invalidation series value %d: gateway %v, serial %v", i, third[i], want[i])
		}
	}
	eligible, hits, misses, coalesced := counters()
	if hits+misses != eligible {
		t.Fatalf("counter coherence: hits %d + misses %d != eligible %d", hits, misses, eligible)
	}
	if coalesced > misses {
		t.Fatalf("coalesced %d exceeds misses %d", coalesced, misses)
	}
}

// TestGatewayQueryCoalesced fires a burst of identical queries from
// concurrent clean sessions at a cold cache and checks the single-
// flight latch collapsed them: the backends see far fewer sums fetches
// than one scatter per query would cause, every query is answered
// bit-for-bit, and the counters stay coherent.
func TestGatewayQueryCoalesced(t *testing.T) {
	const (
		d, scale = 16, 1.5
		backends = 2
		queries  = 16
	)
	var addrs []string
	var regs []*obs.Registry
	for i := 0; i < backends; i++ {
		b, reg := startMeteredBackend(t, d, scale)
		addrs = append(addrs, b.addr)
		regs = append(regs, reg)
		defer b.stop(t)
	}
	gw, gwReg, gwAddr, gwDone := startMeteredGateway(t, d, scale, addrs)
	defer func() {
		gw.Close()
		if err := <-gwDone; err != nil {
			t.Error(err)
		}
	}()

	seeder := dialGateway(t, gwAddr)
	seeder.ingestAndFence(t, clusterMsgs(31, d, 60, 8))
	seeder.close()

	serial := protocol.NewServer(d, scale)
	for _, m := range clusterMsgs(31, d, 60, 8) {
		if m.Type == transport.MsgHello {
			serial.Register(m.Order)
		} else {
			serial.Ingest(m.Report())
		}
	}
	want := serial.EstimateSeries()
	before := sumsFetches(regs[0]) + sumsFetches(regs[1])

	// All sessions blocked on one line, released together.
	start := make(chan struct{})
	var wg sync.WaitGroup
	clients := make([]*gwClient, queries)
	for i := range clients {
		clients[i] = dialGateway(t, gwAddr)
		defer clients[i].close()
	}
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func(c *gwClient) {
			defer wg.Done()
			<-start
			got := c.series(t)
			for j := range want {
				if got[j] != want[j] {
					t.Errorf("concurrent series value %d: gateway %v, serial %v", j, got[j], want[j])
					return
				}
			}
		}(clients[i])
	}
	close(start)
	wg.Wait()

	// One scatter per query would cost queries×backends fetches; the
	// latch must do far better. A couple of racing leaders are allowed
	// (a flight can complete between a waiter's epoch load and join).
	fetches := sumsFetches(regs[0]) + sumsFetches(regs[1]) - before
	if fetches >= queries*backends/2 {
		t.Fatalf("%d concurrent identical queries cost %d backend fetches — coalescing is not working", queries, fetches)
	}
	eligible, hits, misses, coalesced :=
		gwReg.Counter("query_cache_eligible_total").Value(),
		gwReg.Counter("query_cache_hits_total").Value(),
		gwReg.Counter("query_cache_misses_total").Value(),
		gwReg.Counter("query_coalesced_total").Value()
	if hits+misses != eligible {
		t.Fatalf("counter coherence: hits %d + misses %d != eligible %d", hits, misses, eligible)
	}
	if coalesced > misses {
		t.Fatalf("coalesced %d exceeds misses %d", coalesced, misses)
	}
}

// TestGatewayAnswerCacheTTL pins the opt-in bounded-staleness mode: a
// cached answer younger than the TTL keeps being served even though
// later fenced ingest has made it stale, and it is bit-for-bit the
// answer that was cached — never a partial or merged state.
func TestGatewayAnswerCacheTTL(t *testing.T) {
	const d, scale = 16, 2.0
	var addrs []string
	for i := 0; i < 2; i++ {
		b := startBackend(t, d, scale)
		addrs = append(addrs, b.addr)
		defer b.stop(t)
	}
	client, err := transport.NewClusterClient(addrs, transport.ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gw := New(d, scale, client)
	gw.ErrorLog = func(err error) { t.Log("gateway:", err) }
	gw.AnswerCacheTTL = time.Hour
	ready := make(chan net.Addr, 1)
	gwDone := make(chan error, 1)
	go func() { gwDone <- gw.ListenAndServe("127.0.0.1:0", ready) }()
	gwAddr := (<-ready).String()
	defer func() {
		gw.Close()
		if err := <-gwDone; err != nil {
			t.Error(err)
		}
	}()

	writer := dialGateway(t, gwAddr)
	defer writer.close()
	writer.ingestAndFence(t, clusterMsgs(41, d, 40, 6))

	reader := dialGateway(t, gwAddr)
	defer reader.close()
	cachedAnswer := reader.series(t)

	// The writer ships a second batch WITHOUT a fence and queries on the
	// same connection: the session has unfenced forwards, so bounded
	// staleness must not apply — the query runs its own gather, fencing
	// the batch and reflecting every report bit-for-bit.
	if err := writer.enc.EncodeBatch(clusterMsgs(42, d, 30, 4)); err != nil {
		t.Fatal(err)
	}
	writerView := writer.series(t)
	serial := protocol.NewServer(d, scale)
	for _, seed := range []uint64{41, 42} {
		for _, m := range clusterMsgs(seed, d, map[uint64]int{41: 40, 42: 30}[seed], map[uint64]int{41: 6, 42: 4}[seed]) {
			if m.Type == transport.MsgHello {
				serial.Register(m.Order)
			} else {
				serial.Ingest(m.Report())
			}
		}
	}
	want := serial.EstimateSeries()
	for i := range want {
		if writerView[i] != want[i] {
			t.Fatalf("unfenced writer's view value %d: gateway %v, serial %v", i, writerView[i], want[i])
		}
	}

	// The clean reader, meanwhile, keeps getting the cached answer even
	// though the second batch is now fenced and applied: bounded
	// staleness served within the TTL, bit-for-bit the entry that was
	// cached — never a partial or merged state.
	stale := reader.series(t)
	for i := range cachedAnswer {
		if stale[i] != cachedAnswer[i] {
			t.Fatalf("TTL-mode value %d changed under the reader: %v != cached %v", i, stale[i], cachedAnswer[i])
		}
	}
}

// TestGatewayCacheBitForBitUnderConcurrentIngest is the cluster half of
// the race-pass property test, run for all three modes: writer sessions
// forward and fence batches while reader sessions hammer queries
// through the cache; when the writers quiesce, a fresh clean session's
// answers must be bit-for-bit a serial server fed every report. Run
// with -race in CI.
func TestGatewayCacheBitForBitUnderConcurrentIngest(t *testing.T) {
	t.Run("boolean", func(t *testing.T) { testCacheChurnBoolean(t) })
	t.Run("domain", func(t *testing.T) { testCacheChurnDomain(t, false) })
	t.Run("hashed", func(t *testing.T) { testCacheChurnDomain(t, true) })
}

func testCacheChurnBoolean(t *testing.T) {
	const d, scale, writers, rounds = 16, 1.25, 3, 6
	var addrs []string
	for i := 0; i < 2; i++ {
		b := startBackend(t, d, scale)
		addrs = append(addrs, b.addr)
		defer b.stop(t)
	}
	gw, gwAddr, gwDone := startGateway(t, d, scale, addrs, transport.ClusterOptions{})
	defer func() {
		gw.Close()
		if err := <-gwDone; err != nil {
			t.Error(err)
		}
	}()

	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			c := dialGateway(t, gwAddr)
			defer c.close()
			for r := 0; r < rounds; r++ {
				c.ingestAndFence(t, clusterMsgs(uint64(500+w*rounds+r), d, 20, 4))
			}
		}(w)
	}
	readerWG.Add(2)
	for r := 0; r < 2; r++ {
		go func() {
			defer readerWG.Done()
			c := dialGateway(t, gwAddr)
			defer c.close()
			for {
				select {
				case <-stop:
					return
				default:
					if got := c.series(t); len(got) != d {
						t.Errorf("series answered %d values, want %d", len(got), d)
						return
					}
				}
			}
		}()
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	serial := protocol.NewServer(d, scale)
	for w := 0; w < writers; w++ {
		for r := 0; r < rounds; r++ {
			for _, m := range clusterMsgs(uint64(500+w*rounds+r), d, 20, 4) {
				if m.Type == transport.MsgHello {
					serial.Register(m.Order)
				} else {
					serial.Ingest(m.Report())
				}
			}
		}
	}
	want := serial.EstimateSeries()
	fresh := dialGateway(t, gwAddr)
	defer fresh.close()
	got := fresh.series(t)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("quiesced series value %d: gateway %v, serial %v", i, got[i], want[i])
		}
	}
}

// testCacheChurnDomain drives the same churn through a domain (or
// hashed-domain) gateway and compares quiesced top-k and point answers
// bit-for-bit against a serial server.
func testCacheChurnDomain(t *testing.T, hashed bool) {
	const (
		d, m, g, scale   = 16, 40, 8, 2.0
		writers, rounds  = 3, 5
		usersPerRound    = 15
		reportsPerWriter = 4
	)
	enc := hh.LolohaEncoding(m, g, 0xabcd)
	var addrs []string
	for i := 0; i < 2; i++ {
		var srv *transport.IngestServer
		var addr string
		var done chan error
		if hashed {
			hs := hh.NewHashedDomainServer(d, enc, scale, 2)
			srv = transport.NewHashedDomainIngestServer(transport.NewHashedDomainCollector(hs))
			ready := make(chan net.Addr, 1)
			done = make(chan error, 1)
			go func() { done <- srv.ListenAndServe("127.0.0.1:0", ready) }()
			addr = (<-ready).String()
		} else {
			srv, _, addr, done = startDomainBackend(t, d, m, scale)
		}
		addrs = append(addrs, addr)
		defer func(srv *transport.IngestServer, done chan error) {
			srv.Close()
			if err := <-done; err != nil {
				t.Error(err)
			}
		}(srv, done)
	}
	client, err := transport.NewClusterClient(addrs, transport.ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var gw *Gateway
	if hashed {
		gw = NewHashedDomain(d, enc, scale, client)
	} else {
		gw = NewDomain(d, m, scale, client)
	}
	gw.ErrorLog = func(err error) { t.Log("gateway:", err) }
	ready := make(chan net.Addr, 1)
	gwDone := make(chan error, 1)
	go func() { gwDone <- gw.ListenAndServe("127.0.0.1:0", ready) }()
	gwAddr := (<-ready).String()
	defer func() {
		gw.Close()
		if err := <-gwDone; err != nil {
			t.Error(err)
		}
	}()

	// Hashed ingest tags reports with the bucket, exact with the item.
	tag := func(item int) int {
		if hashed {
			return enc.Bucket(item)
		}
		return item
	}
	writerBatch := func(w, r int) []transport.Msg {
		var ms []transport.Msg
		base := (w*rounds + r) * usersPerRound
		for u := 0; u < usersPerRound; u++ {
			user := 1000 + base + u
			item := (user * 7) % m
			if hashed {
				ms = append(ms, transport.HashedDomainHello(user, tag(item), 0, enc.Seed))
			} else {
				ms = append(ms, transport.DomainHello(user, item, 0))
			}
			for i := 0; i < reportsPerWriter; i++ {
				bit := int8(1)
				if (user+i)%3 == 0 {
					bit = -1
				}
				ms = append(ms, transport.FromDomainReport(tag(item), protocol.Report{
					User: user, Order: 0, J: 1 + (user+i)%d, Bit: bit,
				}))
			}
		}
		return ms
	}
	topK := func(c *gwClient, at, k int) transport.DomainAnswerFrame {
		t.Helper()
		if err := c.enc.Encode(transport.DomainQuery(transport.QueryTopK, 0, at, 0, k)); err != nil {
			t.Fatal(err)
		}
		if err := c.enc.Flush(); err != nil {
			t.Fatal(err)
		}
		a, err := c.dec.ReadDomainAnswer()
		if err != nil {
			t.Fatal(err)
		}
		return a
	}

	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			c := dialGateway(t, gwAddr)
			defer c.close()
			for r := 0; r < rounds; r++ {
				ms := writerBatch(w, r)
				if err := c.enc.EncodeBatch(ms); err != nil {
					t.Error(err)
					return
				}
				// Fence with a top-k query.
				a := topK(c, d, 5)
				if len(a.Items) != 5 {
					t.Errorf("fencing top-k answered %d items", len(a.Items))
					return
				}
			}
		}(w)
	}
	readerWG.Add(2)
	for r := 0; r < 2; r++ {
		go func() {
			defer readerWG.Done()
			c := dialGateway(t, gwAddr)
			defer c.close()
			for {
				select {
				case <-stop:
					return
				default:
					if a := topK(c, d/2, 6); len(a.Items) != 6 {
						t.Errorf("top-k answered %d items, want 6", len(a.Items))
						return
					}
				}
			}
		}()
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	// Serial reference fed every writer's reports.
	var ref interface {
		EstimateItemAt(item, t int) float64
		TopK(t, k int) []hh.ItemCount
	}
	if hashed {
		ref = hh.NewHashedDomainServer(d, enc, scale, 1)
	} else {
		ref = hh.NewDomainServer(d, m, scale, 1)
	}
	for w := 0; w < writers; w++ {
		for r := 0; r < rounds; r++ {
			for _, msg := range writerBatch(w, r) {
				switch msg.Type {
				case transport.MsgDomainHello, transport.MsgHashedDomainHello:
					if hashed {
						ref.(*hh.HashedDomainServer).Register(0, msg.Item, msg.Order)
					} else {
						ref.(*hh.DomainServer).Register(0, msg.Item, msg.Order)
					}
				case transport.MsgDomainReport:
					rep := protocol.Report{User: msg.User, Order: msg.Order, J: msg.J, Bit: msg.Bit}
					if hashed {
						ref.(*hh.HashedDomainServer).Ingest(0, msg.Item, rep)
					} else {
						ref.(*hh.DomainServer).Ingest(0, msg.Item, rep)
					}
				}
			}
		}
	}

	fresh := dialGateway(t, gwAddr)
	defer fresh.close()
	for _, at := range []int{1, d / 2, d} {
		want := ref.TopK(at, 8)
		a := topK(fresh, at, 8)
		for i, ic := range want {
			if a.Items[i] != ic.Item || a.Values[i] != ic.Count {
				t.Fatalf("quiesced top-k at t=%d: gateway %v/%v, serial %v", at, a.Items, a.Values, want)
			}
		}
	}
}
