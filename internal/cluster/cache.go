package cluster

import (
	"sync"
	"time"

	"rtf/internal/hh"
	"rtf/internal/protocol"
	"rtf/internal/transport"
)

// This file is the gateway's read-path cache: a version-stamped record
// of the last completed cluster-wide gather, plus the single-flight
// latch that coalesces concurrent identical gathers into one
// scatter/gather round.
//
// Exactness argument. The gateway keeps a monotone ingest epoch
// (Gateway.ingestEpoch) that advances whenever the cluster-wide answer
// could change out from under a reader: when a forward starts (the
// reports may land on a backend at any point after), when a fence
// certifies previously unfenced forwards as applied, and when a lease
// carrying unfenced forwards is dropped (the forwards may still land
// without any fence ever recording it). A cache entry is stamped with
// the epoch loaded BEFORE its gather's first fetch. If a reader loads
// the epoch and finds it equal to the entry's stamp, no forward
// started, fenced, or died between the gather and the read — so a fresh
// gather would fetch the very same per-backend sums and fold them in
// the very same order, and the cached answer is bit-for-bit what
// recomputing would produce. A stale stamp only ever causes a harmless
// recompute.
//
// Sessions with unfenced forwards never touch the cache: their query
// doubles as the fence certifying this session's forwards, and neither
// a cached entry nor another session's flight can certify them. They
// run their own gather, exactly as before this cache existed.
//
// The opt-in TTL mode (Gateway.AnswerCacheTTL > 0) additionally accepts
// an entry younger than the TTL even when its stamp is stale — bounded
// staleness in exchange for a scatter-free read path under sustained
// ingest. Off by default.

// cacheEntry is one completed cluster-wide gather. frames (Boolean) or
// domainFrames (exact/hashed domain) hold the raw per-backend sums;
// the folded servers that answer shaped queries are built lazily, at
// most once, so sums-only traffic never pays the fold. Entries are
// immutable after fill (the fold memoizes under its own synchronization
// and every server read path is pure or internally locked), so any
// number of connections may share one entry concurrently.
type cacheEntry struct {
	stamp  uint64    // ingest epoch loaded before the gather's first fetch
	filled time.Time // gather completion, for the opt-in TTL mode

	srv    *protocol.Server      // Boolean mode: folded eagerly by gather
	frames []transport.SumsFrame // Boolean mode: raw per-backend frames

	domainFrames []transport.DomainSumsFrame // exact + hashed domain modes

	foldOnce sync.Once // a gateway serves one mode, so one fold suffices
	ds       *hh.DomainServer
	hs       *hh.HashedDomainServer
	foldErr  error
}

// domainServer folds the gathered frames into the exact-domain server,
// at most once per entry.
func (e *cacheEntry) domainServer(g *Gateway) (*hh.DomainServer, error) {
	e.foldOnce.Do(func() { e.ds, e.foldErr = g.foldDomain(e.domainFrames) })
	return e.ds, e.foldErr
}

// hashedServer folds the gathered frames into the hashed-domain server,
// at most once per entry.
func (e *cacheEntry) hashedServer(g *Gateway) (*hh.HashedDomainServer, error) {
	e.foldOnce.Do(func() { e.hs, e.foldErr = g.foldHashedDomain(e.domainFrames) })
	return e.hs, e.foldErr
}

// answerCache is the entry slot plus the single-flight latch. Both are
// guarded by mu; the flight's done channel is closed exactly once, by
// its leader, after the outcome fields are published.
type answerCache struct {
	mu     sync.Mutex
	entry  *cacheEntry
	flight *gatherFlight
}

// gatherFlight is one in-progress gather that concurrent clean-session
// queries may join instead of scattering themselves.
type gatherFlight struct {
	done  chan struct{}
	entry *cacheEntry // nil when err != nil
	err   error
}

// clean reports whether the session has no unfenced forwards on any
// backend lease — the precondition for serving its queries from the
// shared cache or another session's flight.
func (s *session) clean() bool {
	for _, u := range s.unfenced {
		if u {
			return false
		}
	}
	return true
}

// entryCurrent reports whether a cache entry may answer a query right
// now: always when its stamp equals the current ingest epoch (provably
// bit-for-bit fresh), and additionally within AnswerCacheTTL of its
// fill time when the operator opted into bounded staleness.
func (g *Gateway) entryCurrent(e *cacheEntry, epoch uint64, now time.Time) bool {
	if e.stamp == epoch {
		return true
	}
	return g.AnswerCacheTTL > 0 && now.Sub(e.filled) < g.AnswerCacheTTL
}

// joinAttempts bounds how many completed-but-stale flights a waiter
// rides before giving up and gathering itself.
const joinAttempts = 2

// acquireEntry obtains the gathered cluster state one query needs:
// from the cache when the entry is current, by joining an in-flight
// gather, or by running gather itself (becoming the flight leader other
// clean sessions coalesce onto). It reports whether the answer came
// from the warm cache (hit: no gather ran anywhere on behalf of this
// query) and whether this query coalesced onto another session's
// flight. Sessions with unfenced forwards bypass the cache entirely —
// see the package comment at the top of this file.
func (g *Gateway) acquireEntry(s *session, gather func() (*cacheEntry, error)) (e *cacheEntry, hit, coalesced bool, err error) {
	if !s.clean() {
		e, err = gather()
		return e, false, false, err
	}
	c := &g.cache
	for attempt := 0; attempt < joinAttempts; attempt++ {
		epoch := g.ingestEpoch.Load()
		c.mu.Lock()
		if e := c.entry; e != nil && g.entryCurrent(e, epoch, time.Now()) {
			c.mu.Unlock()
			return e, true, false, nil
		}
		f := c.flight
		if f == nil {
			// Become the leader: gather once, publish, wake the joiners.
			f = &gatherFlight{done: make(chan struct{})}
			c.flight = f
			c.mu.Unlock()
			e, err = gather()
			if err == nil {
				// epoch was loaded before the fetches began, so the stamp
				// is conservative: equal-epoch readers are provably exact.
				e.stamp, e.filled = epoch, time.Now()
			}
			c.mu.Lock()
			c.flight = nil
			if err == nil {
				f.entry, c.entry = e, e
			}
			f.err = err
			c.mu.Unlock()
			close(f.done)
			return e, false, false, err
		}
		c.mu.Unlock()
		<-f.done
		if f.err != nil {
			// The leader's failure may be specific to its session's
			// backends-at-that-moment; this query still owes an answer,
			// so gather on our own leases below.
			break
		}
		if g.entryCurrent(f.entry, g.ingestEpoch.Load(), time.Now()) {
			return f.entry, false, true, nil
		}
		// The flight's result went stale while we waited; retry — the
		// next round finds a fresher entry, a newer flight, or leads.
	}
	e, err = gather()
	return e, false, false, err
}

// countCacheOutcome records one successfully answered gateway query
// against the read-path cache counters. Every gateway query shape goes
// through acquireEntry, so every one is eligible and counts exactly one
// hit or miss; coalesced joins are a subset of the misses.
func (g *Gateway) countCacheOutcome(hit, coalesced bool) {
	if g.Metrics == nil {
		return
	}
	g.Metrics.CountCacheEligible()
	g.Metrics.CountCacheResult(hit)
	if coalesced {
		g.Metrics.CountCoalesced()
	}
}
