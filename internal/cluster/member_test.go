package cluster

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rtf/internal/membership"
	"rtf/internal/protocol"
	"rtf/internal/transport"
)

// memberBackend is one in-process membership-mode rtf-serve.
type memberBackend struct {
	id   string
	sm   *transport.ShardMapCollector
	srv  *transport.IngestServer
	addr string
	done chan error
}

func startMemberBackend(t *testing.T, d int, scale float64, numShards int, id string) *memberBackend {
	t.Helper()
	sm := transport.NewShardMapCollector(d, scale, numShards, id)
	srv := transport.NewShardMapIngestServer(sm)
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0", ready) }()
	return &memberBackend{id: id, sm: sm, srv: srv, addr: (<-ready).String(), done: done}
}

func (b *memberBackend) stop(t *testing.T) {
	t.Helper()
	if err := b.srv.Close(); err != nil {
		t.Error(err)
	}
	if err := <-b.done; err != nil {
		t.Error(err)
	}
}

func (b *memberBackend) member() membership.Member {
	return membership.Member{ID: b.id, Addr: b.addr}
}

// fastOpts keeps backend-death paths quick in tests.
func fastOpts() transport.ClusterOptions {
	return transport.ClusterOptions{DialAttempts: 2, BackoffBase: 5 * time.Millisecond}
}

func startMemberGateway(t *testing.T, d int, scale float64, numShards, k int, members []membership.Member) (*MemberGateway, string, chan error) {
	t.Helper()
	gw, err := NewMember(d, scale, numShards, k, members, transport.NewReplicaClient(fastOpts()))
	if err != nil {
		t.Fatal(err)
	}
	gw.ErrorLog = func(err error) { t.Log("member gateway:", err) }
	if err := gw.AnnounceView(); err != nil {
		t.Fatal(err)
	}
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- gw.ListenAndServe("127.0.0.1:0", ready) }()
	return gw, (<-ready).String(), done
}

// checkAllShapes asks every query shape on the connection and compares
// each answer bit-for-bit against the serial reference.
func checkAllShapes(t *testing.T, enc *transport.Encoder, dec *transport.Decoder, serial *protocol.Server, d int) {
	t.Helper()
	for _, tt := range []int{1, d / 2, d} {
		if err := enc.Encode(transport.Query(tt)); err != nil {
			t.Fatal(err)
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
		m, err := dec.Next()
		if err != nil {
			t.Fatal(err)
		}
		if m.Type != transport.MsgEstimate || m.Value != serial.EstimateAt(tt) {
			t.Fatalf("v1 at %d: %+v, want %v", tt, m, serial.EstimateAt(tt))
		}
	}
	checks := []struct {
		q    transport.Msg
		want []float64
	}{
		{transport.QueryV2(transport.QueryPoint, d/4, d/4), []float64{serial.EstimateAt(d / 4)}},
		{transport.QueryV2(transport.QueryChange, 2, d-3), []float64{serial.EstimateChange(2, d-3)}},
		{transport.QueryV2(transport.QuerySeries, 0, 0), serial.EstimateSeries()},
		{transport.QueryV2(transport.QueryWindow, 3, d/2), serial.EstimateSeries()[2 : d/2]},
	}
	for _, c := range checks {
		if err := enc.Encode(c.q); err != nil {
			t.Fatal(err)
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
		a, err := dec.ReadAnswer()
		if err != nil {
			t.Fatalf("%s: %v", c.q.Kind, err)
		}
		if len(a.Values) != len(c.want) {
			t.Fatalf("%s: %d values, want %d", c.q.Kind, len(a.Values), len(c.want))
		}
		for i := range c.want {
			if a.Values[i] != c.want[i] {
				t.Fatalf("%s value %d: gateway %v, serial %v", c.q.Kind, i, a.Values[i], c.want[i])
			}
		}
	}
}

// TestMemberGatewayQuorumEndToEnd drives replicated ingestion and every
// query shape through a member gateway over three membership-mode
// backends, checks answers bit-for-bit against a serial server, checks
// that every shard really is K-way replicated, then kills one backend
// and checks the quorum read still answers exactly.
func TestMemberGatewayQuorumEndToEnd(t *testing.T) {
	const (
		d     = 64
		scale = 3.25
		S     = 16
		K     = 2
		users = 200
	)
	var backends []*memberBackend
	var members []membership.Member
	for _, id := range []string{"b0", "b1", "b2"} {
		b := startMemberBackend(t, d, scale, S, id)
		backends = append(backends, b)
		members = append(members, b.member())
	}
	gw, gwAddr, gwDone := startMemberGateway(t, d, scale, S, K, members)

	// Every backend learned the announced view.
	for _, b := range backends {
		if b.sm.Epoch() != 1 {
			t.Fatalf("backend %s epoch %d after announce", b.id, b.sm.Epoch())
		}
		if b.sm.OwnedShards() == 0 {
			t.Fatalf("backend %s owns no shards", b.id)
		}
	}

	ms := clusterMsgs(7, d, users, 10)
	serial := protocol.NewServer(d, scale)
	for _, m := range ms {
		if m.Type == transport.MsgHello {
			serial.Register(m.Order)
		} else {
			serial.Ingest(m.Report())
		}
	}

	conn, err := net.Dial("tcp", gwAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := transport.NewEncoder(conn)
	dec := transport.NewDecoder(conn)
	for lo := 0; lo < len(ms); lo += 83 {
		hi := min(lo+83, len(ms))
		if err := enc.EncodeBatch(ms[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	checkAllShapes(t, enc, dec, serial, d)

	// MsgSums folds the chosen replicas to the serial raw sums.
	if err := enc.Encode(transport.Sums()); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	f, err := dec.ReadSums()
	if err != nil {
		t.Fatal(err)
	}
	if f.Users != int64(serial.Users()) {
		t.Fatalf("sums users %d, want %d", f.Users, serial.Users())
	}

	// K-way replication: every shard is held by exactly K backends, and
	// replicas of a shard agree exactly.
	view := gw.View()
	for sh := 0; sh < S; sh++ {
		var holders []*memberBackend
		for _, b := range backends {
			if view.Owns(b.id, sh) {
				holders = append(holders, b)
			}
		}
		if len(holders) != K {
			t.Fatalf("shard %d has %d owners, want %d", sh, len(holders), K)
		}
		a, err := holders[0].sm.ShardSums(sh)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := holders[1].sm.ShardSums(sh)
		if err != nil {
			t.Fatal(err)
		}
		if a.Users != b2.Users {
			t.Fatalf("shard %d replicas disagree: %d vs %d users", sh, a.Users, b2.Users)
		}
		// Non-owners hold nothing for the shard.
		for _, b := range backends {
			if view.Owns(b.id, sh) {
				continue
			}
			f, err := b.sm.ShardSums(sh)
			if err != nil {
				t.Fatal(err)
			}
			if f.Users != 0 {
				t.Fatalf("non-owner %s holds %d users of shard %d", b.id, f.Users, sh)
			}
		}
	}

	// Kill one backend outright: quorum reads must still answer every
	// shape bit-for-bit from the surviving replicas.
	backends[1].stop(t)
	checkAllShapes(t, enc, dec, serial, d)
	if gw.ShortReads() == 0 {
		t.Error("no short reads counted with a dead replica")
	}
	if gw.Divergences() != 0 {
		t.Errorf("%d divergences on a healthy cluster", gw.Divergences())
	}

	conn.Close()
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-gwDone; err != nil {
		t.Fatal(err)
	}
	backends[0].stop(t)
	backends[2].stop(t)
}

// TestMemberGatewayReshard exercises the full epoch dance on a live
// session: join a member mid-stream (asserting minimal movement),
// ingest more, drain a member and stop it, and check exactness after
// every step.
func TestMemberGatewayReshard(t *testing.T) {
	const (
		d     = 32
		scale = 2.5
		S     = 16
		K     = 2
	)
	var backends []*memberBackend
	var members []membership.Member
	for _, id := range []string{"b0", "b1", "b2"} {
		b := startMemberBackend(t, d, scale, S, id)
		backends = append(backends, b)
		members = append(members, b.member())
	}
	gw, gwAddr, gwDone := startMemberGateway(t, d, scale, S, K, members)

	serial := protocol.NewServer(d, scale)
	apply := func(ms []transport.Msg) {
		for _, m := range ms {
			if m.Type == transport.MsgHello {
				serial.Register(m.Order)
			} else {
				serial.Ingest(m.Report())
			}
		}
	}
	conn, err := net.Dial("tcp", gwAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := transport.NewEncoder(conn)
	dec := transport.NewDecoder(conn)

	phase1 := clusterMsgs(11, d, 120, 8)
	apply(phase1)
	if err := enc.EncodeBatch(phase1); err != nil {
		t.Fatal(err)
	}
	checkAllShapes(t, enc, dec, serial, d)

	// Join: add b3. The reported transfer count must equal the
	// rendezvous plan diff, which moves only ~S·K/N placements.
	b3 := startMemberBackend(t, d, scale, S, "b3")
	backends = append(backends, b3)
	oldView := gw.View()
	joined := append(append([]membership.Member{}, members...), b3.member())
	newView := membership.View{Epoch: oldView.Epoch + 1, K: K, NumShards: S, Members: joined}
	wantPlan := membership.Plan(oldView, newView)
	res, err := gw.Reshard(joined, K)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != oldView.Epoch+1 || res.Transfers != len(wantPlan) {
		t.Fatalf("reshard result %+v, want epoch %d transfers %d", res, oldView.Epoch+1, len(wantPlan))
	}
	if res.Transfers == 0 || res.Transfers > S*K/2 {
		t.Fatalf("join moved %d placements of %d — not minimal movement", res.Transfers, S*K)
	}
	if b3.sm.Epoch() != res.Epoch {
		t.Fatalf("joined backend epoch %d, want %d", b3.sm.Epoch(), res.Epoch)
	}
	// The same live session keeps working across the epoch.
	checkAllShapes(t, enc, dec, serial, d)

	phase2 := clusterMsgs(13, d, 90, 8)
	apply(phase2)
	if err := enc.EncodeBatch(phase2); err != nil {
		t.Fatal(err)
	}
	checkAllShapes(t, enc, dec, serial, d)

	// Drain: remove b1, then stop it. Its shards were handed off during
	// the reshard, so answers stay exact without it.
	var drained []membership.Member
	for _, b := range backends {
		if b.id != "b1" {
			drained = append(drained, b.member())
		}
	}
	res2, err := gw.Reshard(drained, K)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Epoch != res.Epoch+1 {
		t.Fatalf("drain epoch %d, want %d", res2.Epoch, res.Epoch+1)
	}
	backends[1].stop(t)
	checkAllShapes(t, enc, dec, serial, d)

	phase3 := clusterMsgs(17, d, 60, 8)
	apply(phase3)
	if err := enc.EncodeBatch(phase3); err != nil {
		t.Fatal(err)
	}
	checkAllShapes(t, enc, dec, serial, d)

	if gw.TransfersTotal() != int64(res.Transfers+res2.Transfers) {
		t.Errorf("TransfersTotal %d, want %d", gw.TransfersTotal(), res.Transfers+res2.Transfers)
	}

	conn.Close()
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-gwDone; err != nil {
		t.Fatal(err)
	}
	for _, b := range backends {
		if b.id != "b1" {
			b.stop(t)
		}
	}
}

// TestMemberGatewayDivergence corrupts one replica's shard state and
// checks the quorum read detects the exact-integer mismatch instead of
// silently answering from either copy.
func TestMemberGatewayDivergence(t *testing.T) {
	const d, scale, S, K = 32, 2.0, 4, 2
	b0 := startMemberBackend(t, d, scale, S, "b0")
	b1 := startMemberBackend(t, d, scale, S, "b1")
	defer b0.stop(t)
	defer b1.stop(t)
	gw, gwAddr, gwDone := startMemberGateway(t, d, scale, S, K,
		[]membership.Member{b0.member(), b1.member()})

	conn, err := net.Dial("tcp", gwAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := transport.NewEncoder(conn)
	dec := transport.NewDecoder(conn)
	ms := clusterMsgs(3, d, 50, 6)
	if err := enc.EncodeBatch(ms); err != nil {
		t.Fatal(err)
	}
	// Fence so both replicas hold the data, then corrupt b1's shard 0
	// with an empty state.
	if err := enc.Encode(transport.Query(1)); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Next(); err != nil {
		t.Fatal(err)
	}
	empty := transport.NewShardMapCollector(d, scale, S, "empty")
	state, err := empty.ExportShard(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := b1.sm.InstallShard(0, state); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(transport.Query(1)); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Next(); err == nil {
		t.Fatal("query answered despite diverged replicas")
	}
	if gw.Divergences() == 0 {
		t.Error("divergence not counted")
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-gwDone; err != nil {
		t.Fatal(err)
	}
}

// TestMemberAdminHandler drives the JSON admin API: view inspection,
// a reshard post, and the rejection paths.
func TestMemberAdminHandler(t *testing.T) {
	const d, scale, S, K = 32, 2.0, 8, 1
	b0 := startMemberBackend(t, d, scale, S, "b0")
	b1 := startMemberBackend(t, d, scale, S, "b1")
	defer b0.stop(t)
	defer b1.stop(t)
	gw, err := NewMember(d, scale, S, K, []membership.Member{b0.member()}, transport.NewReplicaClient(fastOpts()))
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	if err := gw.AnnounceView(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(gw.AdminHandler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/membership/view")
	if err != nil {
		t.Fatal(err)
	}
	var v viewJSON
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if v.Epoch != 1 || v.K != K || v.NumShards != S || len(v.Members) != 1 {
		t.Fatalf("view = %+v", v)
	}

	body, _ := json.Marshal(reshardRequest{
		Members: []memberJSON{{ID: "b0", Addr: b0.addr}, {ID: "b1", Addr: b1.addr}},
		K:       2,
	})
	resp, err = http.Post(srv.URL+"/membership/reshard", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var res ReshardResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if res.Epoch != 2 || res.Members != 2 || res.K != 2 {
		t.Fatalf("reshard result = %+v", res)
	}
	if gw.Epoch() != 2 {
		t.Fatalf("gateway epoch %d after admin reshard", gw.Epoch())
	}

	resp, err = http.Post(srv.URL+"/membership/reshard", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON → %d, want 400", resp.StatusCode)
	}
	// A duplicate member set is a conflict, not a crash.
	dup, _ := json.Marshal(reshardRequest{Members: []memberJSON{{ID: "b0", Addr: b0.addr}, {ID: "b0", Addr: b0.addr}}, K: 1})
	resp, err = http.Post(srv.URL+"/membership/reshard", "application/json", bytes.NewReader(dup))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate members → %d, want 409", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/membership/reshard")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET reshard → %d, want 405", resp.StatusCode)
	}
}
