package cluster

import (
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"rtf/internal/obs"
	"rtf/internal/protocol"
	"rtf/internal/transport"
)

// startBlackhole listens and accepts connections but never answers —
// a hung backend. stop closes the listener and every accepted
// connection.
func startBlackhole(t *testing.T) (addr string, stop func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var conns []net.Conn
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, c)
			mu.Unlock()
			go io.Copy(io.Discard, c)
		}
	}()
	return l.Addr().String(), func() {
		l.Close()
		mu.Lock()
		defer mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
	}
}

// startFirstConnBlackholeProxy fronts backendAddr with a proxy whose
// FIRST accepted connection is a black hole (reads and discards
// forever) while every later connection is piped through to the real
// backend — a backend that hangs one connection but serves fresh ones,
// the shape hedged reads are built for.
func startFirstConnBlackholeProxy(t *testing.T, backendAddr string) (addr string, stop func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var conns []net.Conn
	n := 0
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, c)
			n++
			first := n == 1
			mu.Unlock()
			if first {
				go io.Copy(io.Discard, c)
				continue
			}
			go func(c net.Conn) {
				d, err := net.Dial("tcp", backendAddr)
				if err != nil {
					c.Close()
					return
				}
				mu.Lock()
				conns = append(conns, d)
				mu.Unlock()
				go io.Copy(d, c)
				io.Copy(c, d)
			}(c)
		}
	}()
	return l.Addr().String(), func() {
		l.Close()
		mu.Lock()
		defer mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
	}
}

// TestGatewayBackendFailureQueryPaths is the table over the ways a
// backend can fail a scatter/gather query. The invariant under test:
// the gateway answers exactly (bit-for-bit against a serial reference)
// or fails the client connection — it never emits an answer merged from
// a subset of backends.
func TestGatewayBackendFailureQueryPaths(t *testing.T) {
	const d, scale = 32, 2.0
	fast := transport.ClusterOptions{
		DialTimeout:  200 * time.Millisecond,
		DialAttempts: 2,
		BackoffBase:  time.Millisecond,
		BackoffMax:   2 * time.Millisecond,
	}
	withTimeout := fast
	withTimeout.FetchTimeout = 100 * time.Millisecond
	withHedge := fast
	withHedge.FetchTimeout = 2 * time.Second
	withHedge.HedgeDelay = 30 * time.Millisecond

	cases := []struct {
		name string
		opts transport.ClusterOptions
		// failing returns the third backend address (and its stopper),
		// given the already-started real backend it may front.
		failing func(t *testing.T, real *testBackend) (addr string, stop func())
		// forwardToFailing routes part of the ingest batch to the
		// failing backend before the query (leaving unfenced forwards
		// on it).
		forwardToFailing bool
		wantAnswer       bool
		wantErr          string
	}{
		{
			name: "backend down at query time",
			opts: fast,
			failing: func(t *testing.T, real *testBackend) (string, func()) {
				// A listener that is already closed: dials are refused.
				l, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					t.Fatal(err)
				}
				addr := l.Addr().String()
				l.Close()
				return addr, func() {}
			},
			wantErr: "unreachable",
		},
		{
			name:    "backend hangs mid-scatter past FetchTimeout",
			opts:    withTimeout,
			failing: func(t *testing.T, real *testBackend) (string, func()) { return startBlackhole(t) },
			wantErr: "fetching sums",
		},
		{
			name: "backend dies holding unfenced forwards",
			opts: fast,
			failing: func(t *testing.T, real *testBackend) (string, func()) {
				// The real backend, stopped after the forwards land.
				return real.addr, func() {}
			},
			forwardToFailing: true,
			wantErr:          "unacknowledged forwards",
		},
		{
			name: "hedged read beats a hung connection",
			opts: withHedge,
			failing: func(t *testing.T, real *testBackend) (string, func()) {
				return startFirstConnBlackholeProxy(t, real.addr)
			},
			wantAnswer: true,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			good := []*testBackend{startBackend(t, d, scale), startBackend(t, d, scale)}
			defer good[0].stop(t)
			defer good[1].stop(t)
			real := startBackend(t, d, scale)
			failAddr, stopFailing := tc.failing(t, real)
			defer stopFailing()

			addrs := []string{good[0].addr, good[1].addr, failAddr}
			client, err := transport.NewClusterClient(addrs, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			gw := New(d, scale, client)
			gw.Metrics = transport.NewServerMetrics(obs.NewRegistry())
			var errMu sync.Mutex
			var gwErrs []string
			gw.ErrorLog = func(err error) {
				errMu.Lock()
				gwErrs = append(gwErrs, err.Error())
				errMu.Unlock()
			}
			ready := make(chan net.Addr, 1)
			gwDone := make(chan error, 1)
			go func() { gwDone <- gw.ListenAndServe("127.0.0.1:0", ready) }()
			gwAddr := (<-ready).String()
			defer func() {
				if err := gw.Close(); err != nil {
					t.Error(err)
				}
				if err := <-gwDone; err != nil {
					t.Error(err)
				}
				real.srv.Close()
			}()

			conn, err := net.Dial("tcp", gwAddr)
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			enc := transport.NewEncoder(conn)
			dec := transport.NewDecoder(conn)

			// Ingest only users routed to the two good backends (u%3 != 2)
			// unless the case wants unfenced forwards on the failing one.
			serial := protocol.NewServer(d, scale)
			var ms []transport.Msg
			for u := 0; u < 30; u++ {
				if u%3 == 2 && !tc.forwardToFailing {
					continue
				}
				ms = append(ms, transport.Hello(u, 1),
					transport.FromReport(protocol.Report{User: u, Order: 1, J: 1 + u%(d/2), Bit: 1}))
			}
			for _, m := range ms {
				if m.Type == transport.MsgHello {
					serial.Register(m.Order)
				} else {
					serial.Ingest(m.Report())
				}
			}
			if err := enc.EncodeBatch(ms); err != nil {
				t.Fatal(err)
			}
			if err := enc.Flush(); err != nil {
				t.Fatal(err)
			}
			if tc.forwardToFailing {
				// Wait until the gateway's forward has landed on the
				// failing backend (its collector saw the reports), so
				// the session holds a live lease with unfenced
				// forwards. No fence: they stay unacknowledged. Then
				// stop the backend so the leased connection dies.
				deadline := time.Now().Add(2 * time.Second)
				for {
					if _, reports, _ := real.srv.Collector.Stats(); reports >= 10 {
						break
					}
					if time.Now().After(deadline) {
						t.Fatal("forwards never reached the failing backend")
					}
					time.Sleep(time.Millisecond)
				}
				real.srv.Close()
				<-real.done
			}

			if err := enc.Encode(transport.QueryV2(transport.QuerySeries, 0, 0)); err != nil {
				t.Fatal(err)
			}
			if err := enc.Flush(); err != nil {
				t.Fatal(err)
			}
			a, err := dec.ReadAnswer()
			if tc.wantAnswer {
				if err != nil {
					t.Fatalf("query failed: %v", err)
				}
				want := serial.EstimateSeries()
				if len(a.Values) != len(want) {
					t.Fatalf("series of %d values, want %d", len(a.Values), len(want))
				}
				for i := range want {
					if a.Values[i] != want[i] {
						t.Fatalf("series value %d: gateway %v, serial %v", i, a.Values[i], want[i])
					}
				}
				s := gw.Metrics.Registry().Snapshot()
				if s.Counters["gateway_hedged_fetches_total"] < 1 || s.Counters["gateway_hedge_wins_total"] < 1 {
					t.Fatalf("hedge counters = %d armed / %d wins, want >= 1 each",
						s.Counters["gateway_hedged_fetches_total"], s.Counters["gateway_hedge_wins_total"])
				}
				// A second query must work on the installed hedge lease.
				if err := enc.Encode(transport.Query(1)); err != nil {
					t.Fatal(err)
				}
				if err := enc.Flush(); err != nil {
					t.Fatal(err)
				}
				if _, err := dec.Next(); err != nil {
					t.Fatal(err)
				}
				return
			}
			// Failure cases: the client connection must die without any
			// answer bytes — a partially-merged answer is the bug class
			// under test.
			if err == nil {
				t.Fatalf("got an answer (%d values) from a cluster with a failed backend", len(a.Values))
			}
			errMu.Lock()
			defer errMu.Unlock()
			found := false
			for _, e := range gwErrs {
				if strings.Contains(e, tc.wantErr) {
					found = true
				}
			}
			if !found {
				t.Fatalf("gateway errors %q do not mention %q", gwErrs, tc.wantErr)
			}
		})
	}
}

// TestGatewayAckedBatchShedWhole: the gateway sheds acked batches at
// its front door — before any forward — so a shed batch is rejected
// whole cluster-wide, and an applied one lands exactly.
func TestGatewayAckedBatchShedWhole(t *testing.T) {
	const d, scale = 32, 2.0
	backends := []*testBackend{startBackend(t, d, scale), startBackend(t, d, scale)}
	defer backends[0].stop(t)
	defer backends[1].stop(t)
	client, err := transport.NewClusterClient([]string{backends[0].addr, backends[1].addr}, transport.ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gw := New(d, scale, client)
	gw.ErrorLog = func(err error) { t.Error(err) }
	gw.Metrics = transport.NewServerMetrics(obs.NewRegistry())
	gw.Queue = transport.NewIngestQueue(1)
	gw.Metrics.RegisterQueue(gw.Queue)
	ready := make(chan net.Addr, 1)
	gwDone := make(chan error, 1)
	go func() { gwDone <- gw.ListenAndServe("127.0.0.1:0", ready) }()
	gwAddr := (<-ready).String()
	defer func() {
		if err := gw.Close(); err != nil {
			t.Error(err)
		}
		if err := <-gwDone; err != nil {
			t.Error(err)
		}
	}()

	conn, err := net.Dial("tcp", gwAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := transport.NewEncoder(conn)
	dec := transport.NewDecoder(conn)
	batch := []transport.Msg{
		transport.Hello(0, 1), transport.Hello(1, 1),
		transport.FromReport(protocol.Report{User: 0, Order: 1, J: 5, Bit: 1}),
		transport.FromReport(protocol.Report{User: 1, Order: 1, J: 7, Bit: 1}),
	}

	// Queue full: the batch must be shed before any forward.
	gw.Queue.Acquire()
	if err := enc.EncodeAckedBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	if applied, err := dec.ReadBatchAck(); err != nil || applied {
		t.Fatalf("want shed, got applied=%v err=%v", applied, err)
	}
	for i, b := range backends {
		if hellos, reports, _ := b.srv.Collector.Stats(); hellos != 0 || reports != 0 {
			t.Fatalf("backend %d saw %d hellos, %d reports from a shed batch", i, hellos, reports)
		}
	}

	// Queue free: the same batch applies, and a query certifies it.
	gw.Queue.Release()
	if err := enc.EncodeAckedBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	if applied, err := dec.ReadBatchAck(); err != nil || !applied {
		t.Fatalf("want applied, got applied=%v err=%v", applied, err)
	}
	serial := protocol.NewServer(d, scale)
	for _, m := range batch {
		if m.Type == transport.MsgHello {
			serial.Register(m.Order)
		} else {
			serial.Ingest(m.Report())
		}
	}
	if err := enc.Encode(transport.QueryV2(transport.QueryPoint, 5, 0)); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	a, err := dec.ReadAnswer()
	if err != nil {
		t.Fatal(err)
	}
	if want := serial.EstimateAt(5); a.Values[0] != want {
		t.Fatalf("estimate = %v, want %v", a.Values[0], want)
	}

	s := gw.Metrics.Registry().Snapshot()
	if s.Counters["ingest_shed_batches_total"] != 1 || s.Counters["ingest_acked_batches_total"] != 2 {
		t.Fatalf("shed/acked = %d/%d, want 1/2",
			s.Counters["ingest_shed_batches_total"], s.Counters["ingest_acked_batches_total"])
	}
	if got := s.Counters[`queries_total{mechanism="boolean",kind="point"}`]; got != 1 {
		t.Fatalf("query counter = %d, want 1", got)
	}
	for i := range backends {
		h, ok := s.Histograms[`scatter_latency_seconds{backend="`+string(rune('0'+i))+`"}`]
		if !ok || h.Count < 1 {
			t.Fatalf("missing scatter latency histogram for backend %d (have %v)", i, s.Histograms)
		}
	}
}
