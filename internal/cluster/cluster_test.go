package cluster

import (
	"net"
	"sync"
	"testing"
	"time"

	"rtf/internal/dyadic"
	"rtf/internal/hh"
	"rtf/internal/protocol"
	"rtf/internal/rng"
	"rtf/internal/transport"
)

// testBackend is one in-process rtf-serve: an IngestServer over a
// sharded accumulator, listening on a loopback port.
type testBackend struct {
	srv  *transport.IngestServer
	acc  *protocol.Sharded
	addr string
	done chan error
}

func startBackend(t *testing.T, d int, scale float64) *testBackend {
	t.Helper()
	acc := protocol.NewSharded(d, scale, 2)
	srv := transport.NewIngestServer(transport.NewShardedCollector(acc))
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0", ready) }()
	return &testBackend{srv: srv, acc: acc, addr: (<-ready).String(), done: done}
}

func (b *testBackend) stop(t *testing.T) {
	t.Helper()
	if err := b.srv.Close(); err != nil {
		t.Error(err)
	}
	if err := <-b.done; err != nil {
		t.Error(err)
	}
}

// startGateway fronts the backends with an in-process gateway.
func startGateway(t *testing.T, d int, scale float64, addrs []string, opts transport.ClusterOptions) (*Gateway, string, chan error) {
	t.Helper()
	client, err := transport.NewClusterClient(addrs, opts)
	if err != nil {
		t.Fatal(err)
	}
	gw := New(d, scale, client)
	gw.ErrorLog = func(err error) { t.Log("gateway:", err) }
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- gw.ListenAndServe("127.0.0.1:0", ready) }()
	return gw, (<-ready).String(), done
}

// clusterMsgs builds a deterministic mixed stream of hellos and reports
// spanning users [0, users).
func clusterMsgs(seed uint64, d, users, perUser int) []transport.Msg {
	g := rng.New(seed, 77)
	orders := dyadic.NumOrders(d)
	ms := make([]transport.Msg, 0, users*(perUser+1))
	for u := 0; u < users; u++ {
		ms = append(ms, transport.Hello(u, g.IntN(orders)))
		for i := 0; i < perUser; i++ {
			h := g.IntN(orders)
			bit := int8(1)
			if g.Bernoulli(0.5) {
				bit = -1
			}
			ms = append(ms, transport.FromReport(protocol.Report{
				User: u, Order: h, J: 1 + g.IntN(d>>uint(h)), Bit: bit,
			}))
		}
	}
	return ms
}

// TestGatewayScatterGather drives mixed ingestion and all four query
// shapes through a gateway over three backends and checks every answer
// bit-for-bit against a serial server fed the same messages, plus that
// users really were partitioned user mod N.
func TestGatewayScatterGather(t *testing.T) {
	const (
		d     = 64
		scale = 3.25
		users = 300
	)
	var backends []*testBackend
	var addrs []string
	for i := 0; i < 3; i++ {
		b := startBackend(t, d, scale)
		backends = append(backends, b)
		addrs = append(addrs, b.addr)
		defer b.stop(t)
	}
	gw, gwAddr, gwDone := startGateway(t, d, scale, addrs, transport.ClusterOptions{})

	ms := clusterMsgs(1, d, users, 20)
	serial := protocol.NewServer(d, scale)
	for _, m := range ms {
		if m.Type == transport.MsgHello {
			serial.Register(m.Order)
		} else {
			serial.Ingest(m.Report())
		}
	}

	conn, err := net.Dial("tcp", gwAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := transport.NewEncoder(conn)
	dec := transport.NewDecoder(conn)
	const batch = 97
	for lo := 0; lo < len(ms); lo += batch {
		hi := min(lo+batch, len(ms))
		if err := enc.EncodeBatch(ms[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	// v1 point queries for every period.
	for tt := 1; tt <= d; tt++ {
		if err := enc.Encode(transport.Query(tt)); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	for tt := 1; tt <= d; tt++ {
		m, err := dec.Next()
		if err != nil {
			t.Fatal(err)
		}
		if m.Type != transport.MsgEstimate || m.T != tt {
			t.Fatalf("bad v1 response %+v at t=%d", m, tt)
		}
		if want := serial.EstimateAt(tt); m.Value != want {
			t.Fatalf("v1 estimate at %d: gateway %v, serial %v", tt, m.Value, want)
		}
	}
	// The four v2 shapes.
	checks := []struct {
		q    transport.Msg
		want []float64
	}{
		{transport.QueryV2(transport.QueryPoint, 17, 17), []float64{serial.EstimateAt(17)}},
		{transport.QueryV2(transport.QueryChange, 5, 40), []float64{serial.EstimateChange(5, 40)}},
		{transport.QueryV2(transport.QuerySeries, 0, 0), serial.EstimateSeries()},
		{transport.QueryV2(transport.QueryWindow, 9, 24), serial.EstimateSeries()[8:24]},
	}
	for _, c := range checks {
		if err := enc.Encode(c.q); err != nil {
			t.Fatal(err)
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
		a, err := dec.ReadAnswer()
		if err != nil {
			t.Fatalf("%s: %v", c.q.Kind, err)
		}
		if len(a.Values) != len(c.want) {
			t.Fatalf("%s: %d values, want %d", c.q.Kind, len(a.Values), len(c.want))
		}
		for i := range c.want {
			if a.Values[i] != c.want[i] {
				t.Fatalf("%s value %d: gateway %v, serial %v", c.q.Kind, i, a.Values[i], c.want[i])
			}
		}
	}

	// Partitioning: backend i holds exactly the users with id ≡ i mod 3.
	for i, b := range backends {
		want := 0
		for u := 0; u < users; u++ {
			if u%3 == i {
				want++
			}
		}
		if got := b.acc.Users(); got != want {
			t.Errorf("backend %d: %d users, want %d", i, got, want)
		}
	}

	conn.Close()
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-gwDone; err != nil {
		t.Fatal(err)
	}
}

// TestGatewayBatchAtomicity checks the gateway-level atomic-batch
// guarantee: a batch of [reports…, malformed query, reports…] forwards
// nothing at all — no backend sees any of it.
func TestGatewayBatchAtomicity(t *testing.T) {
	const d, scale = 32, 2.0
	var addrs []string
	var backends []*testBackend
	for i := 0; i < 3; i++ {
		b := startBackend(t, d, scale)
		backends = append(backends, b)
		addrs = append(addrs, b.addr)
		defer b.stop(t)
	}
	gw, gwAddr, gwDone := startGateway(t, d, scale, addrs, transport.ClusterOptions{})

	conn, err := net.Dial("tcp", gwAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := transport.NewEncoder(conn)
	ms := []transport.Msg{
		transport.Hello(0, 1),
		transport.FromReport(protocol.Report{User: 1, Order: 0, J: 3, Bit: 1}),
		transport.QueryV2(transport.QueryWindow, 5, d+9), // out of range
		transport.FromReport(protocol.Report{User: 2, Order: 0, J: 4, Bit: 1}),
	}
	if err := enc.EncodeBatch(ms); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	// The gateway must drop the connection without forwarding anything.
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("expected the gateway to close the connection")
	}
	for i, b := range backends {
		hellos, reports, _ := b.srv.Collector.Stats()
		if hellos != 0 || reports != 0 {
			t.Errorf("backend %d saw %d hellos, %d reports from an invalid batch", i, hellos, reports)
		}
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-gwDone; err != nil {
		t.Fatal(err)
	}
}

// TestGatewayBackendRestart kills one backend's listener mid-session
// and restarts a fresh server on the same address and accumulator: the
// gateway's pooled connections are dead, so the next query exercises
// the drop/re-dial/retry path and must still answer exactly.
func TestGatewayBackendRestart(t *testing.T) {
	const d, scale = 32, 1.5
	var addrs []string
	var backends []*testBackend
	for i := 0; i < 3; i++ {
		b := startBackend(t, d, scale)
		backends = append(backends, b)
		addrs = append(addrs, b.addr)
		defer func(b *testBackend) { b.srv.Close() }(b)
	}
	gw, gwAddr, gwDone := startGateway(t, d, scale, addrs, transport.ClusterOptions{
		DialAttempts: 20,
		BackoffBase:  10 * time.Millisecond,
		BackoffMax:   100 * time.Millisecond,
	})

	conn, err := net.Dial("tcp", gwAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := transport.NewEncoder(conn)
	dec := transport.NewDecoder(conn)
	ms := clusterMsgs(3, d, 60, 5)
	if err := enc.EncodeBatch(ms); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(transport.Query(1)); err != nil { // fence
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Next(); err != nil {
		t.Fatal(err)
	}

	// Kill backend 1 and restart it on the same address with the same
	// accumulator (standing in for a durable recovery).
	backends[1].srv.Close()
	<-backends[1].done
	var restarted *transport.IngestServer
	var rdone chan error
	deadline := time.Now().Add(5 * time.Second)
	for {
		restarted = transport.NewIngestServer(transport.NewShardedCollector(backends[1].acc))
		ready := make(chan net.Addr, 1)
		rdone = make(chan error, 1)
		go func() { rdone <- restarted.ListenAndServe(addrs[1], ready) }()
		select {
		case <-ready:
		case err := <-rdone:
			if time.Now().After(deadline) {
				t.Fatalf("rebinding %s: %v", addrs[1], err)
			}
			time.Sleep(50 * time.Millisecond)
			continue
		}
		break
	}
	defer func() {
		restarted.Close()
		<-rdone
	}()

	serial := protocol.NewServer(d, scale)
	for _, m := range ms {
		if m.Type == transport.MsgHello {
			serial.Register(m.Order)
		} else {
			serial.Ingest(m.Report())
		}
	}
	if err := enc.Encode(transport.QueryV2(transport.QuerySeries, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	a, err := dec.ReadAnswer()
	if err != nil {
		t.Fatal(err)
	}
	want := serial.EstimateSeries()
	for i := range want {
		if a.Values[i] != want[i] {
			t.Fatalf("series value %d after restart: gateway %v, serial %v", i, a.Values[i], want[i])
		}
	}
	conn.Close()
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-gwDone; err != nil {
		t.Fatal(err)
	}
}

// TestGatewayStacked checks that a gateway answers MsgSums itself, so
// gateways stack: a two-level tree must answer exactly like one flat
// serial server.
func TestGatewayStacked(t *testing.T) {
	const d, scale = 16, 2.5
	var addrs []string
	for i := 0; i < 2; i++ {
		b := startBackend(t, d, scale)
		addrs = append(addrs, b.addr)
		defer b.stop(t)
	}
	inner, innerAddr, innerDone := startGateway(t, d, scale, addrs, transport.ClusterOptions{})
	outer, outerAddr, outerDone := startGateway(t, d, scale, []string{innerAddr}, transport.ClusterOptions{})

	ms := clusterMsgs(9, d, 40, 4)
	serial := protocol.NewServer(d, scale)
	for _, m := range ms {
		if m.Type == transport.MsgHello {
			serial.Register(m.Order)
		} else {
			serial.Ingest(m.Report())
		}
	}
	conn, err := net.Dial("tcp", outerAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := transport.NewEncoder(conn)
	dec := transport.NewDecoder(conn)
	if err := enc.EncodeBatch(ms); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(transport.QueryV2(transport.QuerySeries, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	a, err := dec.ReadAnswer()
	if err != nil {
		t.Fatal(err)
	}
	want := serial.EstimateSeries()
	for i := range want {
		if a.Values[i] != want[i] {
			t.Fatalf("stacked series value %d: got %v, want %v", i, a.Values[i], want[i])
		}
	}
	conn.Close()
	if err := outer.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-outerDone; err != nil {
		t.Fatal(err)
	}
	if err := inner.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-innerDone; err != nil {
		t.Fatal(err)
	}
}

// TestGatewayConcurrentSessions runs several client sessions at once —
// interleaved ingestion from all of them — and checks the final fold is
// exact (integer addition is commutative across sessions and backends).
func TestGatewayConcurrentSessions(t *testing.T) {
	const d, scale, sessions = 32, 1.25, 4
	var addrs []string
	for i := 0; i < 3; i++ {
		b := startBackend(t, d, scale)
		addrs = append(addrs, b.addr)
		defer b.stop(t)
	}
	gw, gwAddr, gwDone := startGateway(t, d, scale, addrs, transport.ClusterOptions{})

	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", gwAddr)
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			enc := transport.NewEncoder(conn)
			dec := transport.NewDecoder(conn)
			ms := clusterMsgs(uint64(100+s), d, 50, 8)
			if err := enc.EncodeBatch(ms); err != nil {
				t.Error(err)
				return
			}
			if err := enc.Encode(transport.Query(1)); err != nil { // fence
				t.Error(err)
				return
			}
			if err := enc.Flush(); err != nil {
				t.Error(err)
				return
			}
			if _, err := dec.Next(); err != nil {
				t.Error(err)
			}
		}(s)
	}
	wg.Wait()

	serial := protocol.NewServer(d, scale)
	for s := 0; s < sessions; s++ {
		for _, m := range clusterMsgs(uint64(100+s), d, 50, 8) {
			if m.Type == transport.MsgHello {
				serial.Register(m.Order)
			} else {
				serial.Ingest(m.Report())
			}
		}
	}
	conn, err := net.Dial("tcp", gwAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := transport.NewEncoder(conn)
	dec := transport.NewDecoder(conn)
	if err := enc.Encode(transport.QueryV2(transport.QuerySeries, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	a, err := dec.ReadAnswer()
	if err != nil {
		t.Fatal(err)
	}
	want := serial.EstimateSeries()
	for i := range want {
		if a.Values[i] != want[i] {
			t.Fatalf("series value %d: gateway %v, serial %v", i, a.Values[i], want[i])
		}
	}
	conn.Close()
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-gwDone; err != nil {
		t.Fatal(err)
	}
}

// startDomainBackend is startBackend for a domain-mode server.
func startDomainBackend(t *testing.T, d, m int, scale float64) (*transport.IngestServer, *hh.DomainServer, string, chan error) {
	t.Helper()
	ds := hh.NewDomainServer(d, m, scale, 2)
	srv := transport.NewDomainIngestServer(transport.NewDomainCollector(ds))
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0", ready) }()
	return srv, ds, (<-ready).String(), done
}

// domainMsgs builds a deterministic item-tagged ingest stream.
func domainMsgs(seed uint64, d, m, users, perUser int) []transport.Msg {
	g := rng.New(seed, 99)
	orders := dyadic.NumOrders(d)
	ms := make([]transport.Msg, 0, users*(perUser+1))
	for u := 0; u < users; u++ {
		item := g.IntN(m)
		ms = append(ms, transport.DomainHello(u, item, g.IntN(orders)))
		for i := 0; i < perUser; i++ {
			h := g.IntN(orders)
			bit := int8(1)
			if g.Bernoulli(0.5) {
				bit = -1
			}
			ms = append(ms, transport.FromDomainReport(item, protocol.Report{
				User: u, Order: h, J: 1 + g.IntN(d>>uint(h)), Bit: bit,
			}))
		}
	}
	return ms
}

// TestGatewayDomainScatterGather drives item-tagged ingestion and every
// item-scoped query shape through a domain gateway over three domain
// backends and checks every answer bit-for-bit against one serial
// domain server fed the same messages — including through a second,
// stacked gateway answering MsgDomainSums.
func TestGatewayDomainScatterGather(t *testing.T) {
	const (
		d     = 32
		m     = 5
		scale = 2.5
		users = 240
	)
	var addrs []string
	for i := 0; i < 3; i++ {
		srv, _, addr, done := startDomainBackend(t, d, m, scale)
		addrs = append(addrs, addr)
		defer func() {
			srv.Close()
			if err := <-done; err != nil {
				t.Error(err)
			}
		}()
	}
	client, err := transport.NewClusterClient(addrs, transport.ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gw := NewDomain(d, m, scale, client)
	gw.ErrorLog = func(err error) { t.Log("gateway:", err) }
	ready := make(chan net.Addr, 1)
	gwDone := make(chan error, 1)
	go func() { gwDone <- gw.ListenAndServe("127.0.0.1:0", ready) }()
	gwAddr := (<-ready).String()
	defer func() {
		gw.Close()
		if err := <-gwDone; err != nil {
			t.Error(err)
		}
	}()

	ms := domainMsgs(5, d, m, users, 12)
	serial := hh.NewDomainServer(d, m, scale, 1)
	for _, msg := range ms {
		if msg.Type == transport.MsgDomainHello {
			serial.Register(0, msg.Item, msg.Order)
		} else {
			serial.Ingest(0, msg.Item, protocol.Report{User: msg.User, Order: msg.Order, J: msg.J, Bit: msg.Bit})
		}
	}

	conn, err := net.Dial("tcp", gwAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := transport.NewEncoder(conn)
	dec := transport.NewDecoder(conn)
	for lo := 0; lo < len(ms); lo += 100 {
		hi := lo + 100
		if hi > len(ms) {
			hi = len(ms)
		}
		if err := enc.EncodeBatch(ms[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}

	// Every item-scoped shape, bit-for-bit vs the serial server.
	ask := func(q transport.Msg) transport.DomainAnswerFrame {
		t.Helper()
		if err := enc.Encode(q); err != nil {
			t.Fatal(err)
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
		a, err := dec.ReadDomainAnswer()
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	for x := 0; x < m; x++ {
		a := ask(transport.DomainQuery(transport.QueryPointItem, x, d, 0, 0))
		if want := serial.EstimateItemAt(x, d); a.Values[0] != want {
			t.Fatalf("point-item %d: gateway %v, serial %v", x, a.Values[0], want)
		}
		a = ask(transport.DomainQuery(transport.QuerySeriesItem, x, 0, 0, 0))
		want := serial.EstimateItemSeries(x)
		for i := range want {
			if a.Values[i] != want[i] {
				t.Fatalf("series-item %d t=%d: gateway %v, serial %v", x, i+1, a.Values[i], want[i])
			}
		}
	}
	a := ask(transport.DomainQuery(transport.QueryTopK, 0, d/2, 0, m))
	top := serial.TopK(d/2, m)
	for i, ic := range top {
		if a.Items[i] != ic.Item || a.Values[i] != ic.Count {
			t.Fatalf("top-k: gateway %v/%v, serial %v", a.Items, a.Values, top)
		}
	}

	// Stacked gateways: a second domain gateway over the first answers
	// identically (the first answers MsgDomainSums).
	client2, err := transport.NewClusterClient([]string{gwAddr}, transport.ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gw2 := NewDomain(d, m, scale, client2)
	ready2 := make(chan net.Addr, 1)
	gw2Done := make(chan error, 1)
	go func() { gw2Done <- gw2.ListenAndServe("127.0.0.1:0", ready2) }()
	gw2Addr := (<-ready2).String()
	defer func() {
		gw2.Close()
		if err := <-gw2Done; err != nil {
			t.Error(err)
		}
	}()
	conn2, err := net.Dial("tcp", gw2Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	enc2 := transport.NewEncoder(conn2)
	dec2 := transport.NewDecoder(conn2)
	if err := enc2.Encode(transport.DomainQuery(transport.QueryTopK, 0, d, 0, 3)); err != nil {
		t.Fatal(err)
	}
	if err := enc2.Flush(); err != nil {
		t.Fatal(err)
	}
	a2, err := dec2.ReadDomainAnswer()
	if err != nil {
		t.Fatal(err)
	}
	top2 := serial.TopK(d, 3)
	for i, ic := range top2 {
		if a2.Items[i] != ic.Item || a2.Values[i] != ic.Count {
			t.Fatalf("stacked top-k: %v/%v, serial %v", a2.Items, a2.Values, top2)
		}
	}

	// Batch atomicity at the domain gateway: a poisoned batch applies
	// nothing anywhere.
	before := serialUsersAcross(t, addrs, d, m, scale)
	conn3, err := net.Dial("tcp", gwAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn3.Close()
	enc3 := transport.NewEncoder(conn3)
	poison := []transport.Msg{
		transport.DomainHello(100000, 0, 0),
		{Type: transport.MsgDomainReport, User: 100001, Item: m + 4, J: 1, Bit: 1},
	}
	if err := enc3.EncodeBatch(poison); err != nil {
		t.Fatal(err)
	}
	if err := enc3.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := transport.NewDecoder(conn3).Next(); err == nil {
		t.Fatal("poisoned batch did not fail the connection")
	}
	after := serialUsersAcross(t, addrs, d, m, scale)
	if before != after {
		t.Fatalf("poisoned batch changed cluster user count %d -> %d", before, after)
	}

	// Boolean frames on a domain gateway fail the connection.
	conn4, err := net.Dial("tcp", gwAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn4.Close()
	enc4 := transport.NewEncoder(conn4)
	if err := enc4.Encode(transport.Hello(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := enc4.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := transport.NewDecoder(conn4).Next(); err == nil {
		t.Fatal("boolean hello on a domain gateway answered")
	}
}

// serialUsersAcross fetches every backend's domain sums directly and
// returns the total registered users.
func serialUsersAcross(t *testing.T, addrs []string, d, m int, scale float64) int {
	t.Helper()
	total := 0
	for _, addr := range addrs {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		enc := transport.NewEncoder(conn)
		if err := enc.Encode(transport.DomainSums()); err != nil {
			t.Fatal(err)
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
		f, err := transport.NewDecoder(conn).ReadDomainSums()
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range f.Items {
			total += int(it.Users)
		}
		conn.Close()
	}
	return total
}
