package cluster

import (
	"net"
	"sync"
	"testing"
	"time"

	"rtf/internal/dyadic"
	"rtf/internal/protocol"
	"rtf/internal/rng"
	"rtf/internal/transport"
)

// testBackend is one in-process rtf-serve: an IngestServer over a
// sharded accumulator, listening on a loopback port.
type testBackend struct {
	srv  *transport.IngestServer
	acc  *protocol.Sharded
	addr string
	done chan error
}

func startBackend(t *testing.T, d int, scale float64) *testBackend {
	t.Helper()
	acc := protocol.NewSharded(d, scale, 2)
	srv := transport.NewIngestServer(transport.NewShardedCollector(acc))
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0", ready) }()
	return &testBackend{srv: srv, acc: acc, addr: (<-ready).String(), done: done}
}

func (b *testBackend) stop(t *testing.T) {
	t.Helper()
	if err := b.srv.Close(); err != nil {
		t.Error(err)
	}
	if err := <-b.done; err != nil {
		t.Error(err)
	}
}

// startGateway fronts the backends with an in-process gateway.
func startGateway(t *testing.T, d int, scale float64, addrs []string, opts transport.ClusterOptions) (*Gateway, string, chan error) {
	t.Helper()
	client, err := transport.NewClusterClient(addrs, opts)
	if err != nil {
		t.Fatal(err)
	}
	gw := New(d, scale, client)
	gw.ErrorLog = func(err error) { t.Log("gateway:", err) }
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- gw.ListenAndServe("127.0.0.1:0", ready) }()
	return gw, (<-ready).String(), done
}

// clusterMsgs builds a deterministic mixed stream of hellos and reports
// spanning users [0, users).
func clusterMsgs(seed uint64, d, users, perUser int) []transport.Msg {
	g := rng.New(seed, 77)
	orders := dyadic.NumOrders(d)
	ms := make([]transport.Msg, 0, users*(perUser+1))
	for u := 0; u < users; u++ {
		ms = append(ms, transport.Hello(u, g.IntN(orders)))
		for i := 0; i < perUser; i++ {
			h := g.IntN(orders)
			bit := int8(1)
			if g.Bernoulli(0.5) {
				bit = -1
			}
			ms = append(ms, transport.FromReport(protocol.Report{
				User: u, Order: h, J: 1 + g.IntN(d>>uint(h)), Bit: bit,
			}))
		}
	}
	return ms
}

// TestGatewayScatterGather drives mixed ingestion and all four query
// shapes through a gateway over three backends and checks every answer
// bit-for-bit against a serial server fed the same messages, plus that
// users really were partitioned user mod N.
func TestGatewayScatterGather(t *testing.T) {
	const (
		d     = 64
		scale = 3.25
		users = 300
	)
	var backends []*testBackend
	var addrs []string
	for i := 0; i < 3; i++ {
		b := startBackend(t, d, scale)
		backends = append(backends, b)
		addrs = append(addrs, b.addr)
		defer b.stop(t)
	}
	gw, gwAddr, gwDone := startGateway(t, d, scale, addrs, transport.ClusterOptions{})

	ms := clusterMsgs(1, d, users, 20)
	serial := protocol.NewServer(d, scale)
	for _, m := range ms {
		if m.Type == transport.MsgHello {
			serial.Register(m.Order)
		} else {
			serial.Ingest(m.Report())
		}
	}

	conn, err := net.Dial("tcp", gwAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := transport.NewEncoder(conn)
	dec := transport.NewDecoder(conn)
	const batch = 97
	for lo := 0; lo < len(ms); lo += batch {
		hi := min(lo+batch, len(ms))
		if err := enc.EncodeBatch(ms[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	// v1 point queries for every period.
	for tt := 1; tt <= d; tt++ {
		if err := enc.Encode(transport.Query(tt)); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	for tt := 1; tt <= d; tt++ {
		m, err := dec.Next()
		if err != nil {
			t.Fatal(err)
		}
		if m.Type != transport.MsgEstimate || m.T != tt {
			t.Fatalf("bad v1 response %+v at t=%d", m, tt)
		}
		if want := serial.EstimateAt(tt); m.Value != want {
			t.Fatalf("v1 estimate at %d: gateway %v, serial %v", tt, m.Value, want)
		}
	}
	// The four v2 shapes.
	checks := []struct {
		q    transport.Msg
		want []float64
	}{
		{transport.QueryV2(transport.QueryPoint, 17, 17), []float64{serial.EstimateAt(17)}},
		{transport.QueryV2(transport.QueryChange, 5, 40), []float64{serial.EstimateChange(5, 40)}},
		{transport.QueryV2(transport.QuerySeries, 0, 0), serial.EstimateSeries()},
		{transport.QueryV2(transport.QueryWindow, 9, 24), serial.EstimateSeries()[8:24]},
	}
	for _, c := range checks {
		if err := enc.Encode(c.q); err != nil {
			t.Fatal(err)
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
		a, err := dec.ReadAnswer()
		if err != nil {
			t.Fatalf("%s: %v", c.q.Kind, err)
		}
		if len(a.Values) != len(c.want) {
			t.Fatalf("%s: %d values, want %d", c.q.Kind, len(a.Values), len(c.want))
		}
		for i := range c.want {
			if a.Values[i] != c.want[i] {
				t.Fatalf("%s value %d: gateway %v, serial %v", c.q.Kind, i, a.Values[i], c.want[i])
			}
		}
	}

	// Partitioning: backend i holds exactly the users with id ≡ i mod 3.
	for i, b := range backends {
		want := 0
		for u := 0; u < users; u++ {
			if u%3 == i {
				want++
			}
		}
		if got := b.acc.Users(); got != want {
			t.Errorf("backend %d: %d users, want %d", i, got, want)
		}
	}

	conn.Close()
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-gwDone; err != nil {
		t.Fatal(err)
	}
}

// TestGatewayBatchAtomicity checks the gateway-level atomic-batch
// guarantee: a batch of [reports…, malformed query, reports…] forwards
// nothing at all — no backend sees any of it.
func TestGatewayBatchAtomicity(t *testing.T) {
	const d, scale = 32, 2.0
	var addrs []string
	var backends []*testBackend
	for i := 0; i < 3; i++ {
		b := startBackend(t, d, scale)
		backends = append(backends, b)
		addrs = append(addrs, b.addr)
		defer b.stop(t)
	}
	gw, gwAddr, gwDone := startGateway(t, d, scale, addrs, transport.ClusterOptions{})

	conn, err := net.Dial("tcp", gwAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := transport.NewEncoder(conn)
	ms := []transport.Msg{
		transport.Hello(0, 1),
		transport.FromReport(protocol.Report{User: 1, Order: 0, J: 3, Bit: 1}),
		transport.QueryV2(transport.QueryWindow, 5, d+9), // out of range
		transport.FromReport(protocol.Report{User: 2, Order: 0, J: 4, Bit: 1}),
	}
	if err := enc.EncodeBatch(ms); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	// The gateway must drop the connection without forwarding anything.
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("expected the gateway to close the connection")
	}
	for i, b := range backends {
		hellos, reports, _ := b.srv.Collector.Stats()
		if hellos != 0 || reports != 0 {
			t.Errorf("backend %d saw %d hellos, %d reports from an invalid batch", i, hellos, reports)
		}
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-gwDone; err != nil {
		t.Fatal(err)
	}
}

// TestGatewayBackendRestart kills one backend's listener mid-session
// and restarts a fresh server on the same address and accumulator: the
// gateway's pooled connections are dead, so the next query exercises
// the drop/re-dial/retry path and must still answer exactly.
func TestGatewayBackendRestart(t *testing.T) {
	const d, scale = 32, 1.5
	var addrs []string
	var backends []*testBackend
	for i := 0; i < 3; i++ {
		b := startBackend(t, d, scale)
		backends = append(backends, b)
		addrs = append(addrs, b.addr)
		defer func(b *testBackend) { b.srv.Close() }(b)
	}
	gw, gwAddr, gwDone := startGateway(t, d, scale, addrs, transport.ClusterOptions{
		DialAttempts: 20,
		BackoffBase:  10 * time.Millisecond,
		BackoffMax:   100 * time.Millisecond,
	})

	conn, err := net.Dial("tcp", gwAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := transport.NewEncoder(conn)
	dec := transport.NewDecoder(conn)
	ms := clusterMsgs(3, d, 60, 5)
	if err := enc.EncodeBatch(ms); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(transport.Query(1)); err != nil { // fence
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Next(); err != nil {
		t.Fatal(err)
	}

	// Kill backend 1 and restart it on the same address with the same
	// accumulator (standing in for a durable recovery).
	backends[1].srv.Close()
	<-backends[1].done
	var restarted *transport.IngestServer
	var rdone chan error
	deadline := time.Now().Add(5 * time.Second)
	for {
		restarted = transport.NewIngestServer(transport.NewShardedCollector(backends[1].acc))
		ready := make(chan net.Addr, 1)
		rdone = make(chan error, 1)
		go func() { rdone <- restarted.ListenAndServe(addrs[1], ready) }()
		select {
		case <-ready:
		case err := <-rdone:
			if time.Now().After(deadline) {
				t.Fatalf("rebinding %s: %v", addrs[1], err)
			}
			time.Sleep(50 * time.Millisecond)
			continue
		}
		break
	}
	defer func() {
		restarted.Close()
		<-rdone
	}()

	serial := protocol.NewServer(d, scale)
	for _, m := range ms {
		if m.Type == transport.MsgHello {
			serial.Register(m.Order)
		} else {
			serial.Ingest(m.Report())
		}
	}
	if err := enc.Encode(transport.QueryV2(transport.QuerySeries, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	a, err := dec.ReadAnswer()
	if err != nil {
		t.Fatal(err)
	}
	want := serial.EstimateSeries()
	for i := range want {
		if a.Values[i] != want[i] {
			t.Fatalf("series value %d after restart: gateway %v, serial %v", i, a.Values[i], want[i])
		}
	}
	conn.Close()
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-gwDone; err != nil {
		t.Fatal(err)
	}
}

// TestGatewayStacked checks that a gateway answers MsgSums itself, so
// gateways stack: a two-level tree must answer exactly like one flat
// serial server.
func TestGatewayStacked(t *testing.T) {
	const d, scale = 16, 2.5
	var addrs []string
	for i := 0; i < 2; i++ {
		b := startBackend(t, d, scale)
		addrs = append(addrs, b.addr)
		defer b.stop(t)
	}
	inner, innerAddr, innerDone := startGateway(t, d, scale, addrs, transport.ClusterOptions{})
	outer, outerAddr, outerDone := startGateway(t, d, scale, []string{innerAddr}, transport.ClusterOptions{})

	ms := clusterMsgs(9, d, 40, 4)
	serial := protocol.NewServer(d, scale)
	for _, m := range ms {
		if m.Type == transport.MsgHello {
			serial.Register(m.Order)
		} else {
			serial.Ingest(m.Report())
		}
	}
	conn, err := net.Dial("tcp", outerAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := transport.NewEncoder(conn)
	dec := transport.NewDecoder(conn)
	if err := enc.EncodeBatch(ms); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(transport.QueryV2(transport.QuerySeries, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	a, err := dec.ReadAnswer()
	if err != nil {
		t.Fatal(err)
	}
	want := serial.EstimateSeries()
	for i := range want {
		if a.Values[i] != want[i] {
			t.Fatalf("stacked series value %d: got %v, want %v", i, a.Values[i], want[i])
		}
	}
	conn.Close()
	if err := outer.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-outerDone; err != nil {
		t.Fatal(err)
	}
	if err := inner.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-innerDone; err != nil {
		t.Fatal(err)
	}
}

// TestGatewayConcurrentSessions runs several client sessions at once —
// interleaved ingestion from all of them — and checks the final fold is
// exact (integer addition is commutative across sessions and backends).
func TestGatewayConcurrentSessions(t *testing.T) {
	const d, scale, sessions = 32, 1.25, 4
	var addrs []string
	for i := 0; i < 3; i++ {
		b := startBackend(t, d, scale)
		addrs = append(addrs, b.addr)
		defer b.stop(t)
	}
	gw, gwAddr, gwDone := startGateway(t, d, scale, addrs, transport.ClusterOptions{})

	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", gwAddr)
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			enc := transport.NewEncoder(conn)
			dec := transport.NewDecoder(conn)
			ms := clusterMsgs(uint64(100+s), d, 50, 8)
			if err := enc.EncodeBatch(ms); err != nil {
				t.Error(err)
				return
			}
			if err := enc.Encode(transport.Query(1)); err != nil { // fence
				t.Error(err)
				return
			}
			if err := enc.Flush(); err != nil {
				t.Error(err)
				return
			}
			if _, err := dec.Next(); err != nil {
				t.Error(err)
			}
		}(s)
	}
	wg.Wait()

	serial := protocol.NewServer(d, scale)
	for s := 0; s < sessions; s++ {
		for _, m := range clusterMsgs(uint64(100+s), d, 50, 8) {
			if m.Type == transport.MsgHello {
				serial.Register(m.Order)
			} else {
				serial.Ingest(m.Report())
			}
		}
	}
	conn, err := net.Dial("tcp", gwAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := transport.NewEncoder(conn)
	dec := transport.NewDecoder(conn)
	if err := enc.Encode(transport.QueryV2(transport.QuerySeries, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	a, err := dec.ReadAnswer()
	if err != nil {
		t.Fatal(err)
	}
	want := serial.EstimateSeries()
	for i := range want {
		if a.Values[i] != want[i] {
			t.Fatalf("series value %d: gateway %v, serial %v", i, a.Values[i], want[i])
		}
	}
	conn.Close()
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-gwDone; err != nil {
		t.Fatal(err)
	}
}
