package cluster

import (
	"net"
	"testing"

	"rtf/internal/dyadic"
	"rtf/internal/hh"
	"rtf/internal/protocol"
	"rtf/internal/rng"
	"rtf/internal/transport"
)

const (
	hashedTestM    = 10_000
	hashedTestG    = 16
	hashedTestSeed = 0x10f0
)

func hashedClusterEnc() hh.DomainEncoding {
	return hh.LolohaEncoding(hashedTestM, hashedTestG, hashedTestSeed)
}

func startHashedBackend(t *testing.T, d int, enc hh.DomainEncoding, scale float64) (*transport.IngestServer, string, chan error) {
	t.Helper()
	hs := hh.NewHashedDomainServer(d, enc, scale, 2)
	srv := transport.NewHashedDomainIngestServer(transport.NewHashedDomainCollector(hs))
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0", ready) }()
	return srv, (<-ready).String(), done
}

// hashedMsgs builds a deterministic bucket-tagged ingest stream with
// seed-carrying hellos.
func hashedMsgs(seed uint64, d, users, perUser int) []transport.Msg {
	g := rng.New(seed, 131)
	orders := dyadic.NumOrders(d)
	ms := make([]transport.Msg, 0, users*(perUser+1))
	for u := 0; u < users; u++ {
		b := g.IntN(hashedTestG)
		ms = append(ms, transport.HashedDomainHello(u, b, g.IntN(orders), hashedTestSeed))
		for i := 0; i < perUser; i++ {
			h := g.IntN(orders)
			bit := int8(1)
			if g.Bernoulli(0.5) {
				bit = -1
			}
			ms = append(ms, transport.FromDomainReport(b, protocol.Report{
				User: u, Order: h, J: 1 + g.IntN(d>>uint(h)), Bit: bit,
			}))
		}
	}
	return ms
}

// TestGatewayHashedDomainScatterGather drives seed-pinned ingestion and
// every item-scoped query shape through a hashed-domain gateway over
// three hashed backends, checking every answer bit-for-bit against one
// serial hashed server fed the same messages — including through a
// second, stacked gateway gathering via MsgHashedDomainSums — and that
// a gateway configured under a different epoch seed cannot gather from
// these backends.
func TestGatewayHashedDomainScatterGather(t *testing.T) {
	const (
		d     = 32
		scale = 2.5
		users = 240
	)
	enc0 := hashedClusterEnc()
	var addrs []string
	for i := 0; i < 3; i++ {
		srv, addr, done := startHashedBackend(t, d, enc0, scale)
		addrs = append(addrs, addr)
		defer func() {
			srv.Close()
			if err := <-done; err != nil {
				t.Error(err)
			}
		}()
	}
	client, err := transport.NewClusterClient(addrs, transport.ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gw := NewHashedDomain(d, enc0, scale, client)
	gw.ErrorLog = func(err error) { t.Log("gateway:", err) }
	ready := make(chan net.Addr, 1)
	gwDone := make(chan error, 1)
	go func() { gwDone <- gw.ListenAndServe("127.0.0.1:0", ready) }()
	gwAddr := (<-ready).String()
	defer func() {
		gw.Close()
		if err := <-gwDone; err != nil {
			t.Error(err)
		}
	}()

	ms := hashedMsgs(5, d, users, 12)
	serial := hh.NewHashedDomainServer(d, enc0, scale, 1)
	for _, msg := range ms {
		if msg.Type == transport.MsgHashedDomainHello {
			serial.Register(0, msg.Item, msg.Order)
		} else {
			serial.Ingest(0, msg.Item, protocol.Report{User: msg.User, Order: msg.Order, J: msg.J, Bit: msg.Bit})
		}
	}

	conn, err := net.Dial("tcp", gwAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := transport.NewEncoder(conn)
	dec := transport.NewDecoder(conn)
	for lo := 0; lo < len(ms); lo += 100 {
		hi := lo + 100
		if hi > len(ms) {
			hi = len(ms)
		}
		if err := enc.EncodeBatch(ms[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}

	ask := func(q transport.Msg) transport.DomainAnswerFrame {
		t.Helper()
		if err := enc.Encode(q); err != nil {
			t.Fatal(err)
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
		a, err := dec.ReadDomainAnswer()
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	// Sampled catalogue items across buckets, including past the exact
	// encoding's 4096-row wall.
	for _, x := range []int{0, 1, 17, 4097, hashedTestM - 1} {
		a := ask(transport.DomainQuery(transport.QueryPointItem, x, d, 0, 0))
		if want := serial.EstimateItemAt(x, d); a.Values[0] != want {
			t.Fatalf("point-item %d: gateway %v, serial %v", x, a.Values[0], want)
		}
		a = ask(transport.DomainQuery(transport.QuerySeriesItem, x, 0, 0, 0))
		want := serial.EstimateItemSeries(x)
		for i := range want {
			if a.Values[i] != want[i] {
				t.Fatalf("series-item %d t=%d: gateway %v, serial %v", x, i+1, a.Values[i], want[i])
			}
		}
	}
	a := ask(transport.DomainQuery(transport.QueryTopK, 0, d/2, 0, 10))
	top := serial.TopK(d/2, 10)
	for i, ic := range top {
		if a.Items[i] != ic.Item || a.Values[i] != ic.Count {
			t.Fatalf("top-k: gateway %v/%v, serial %v", a.Items, a.Values, top)
		}
	}

	// Stacked gateways: a second hashed gateway over the first gathers
	// bucket state via MsgHashedDomainSums and answers identically.
	client2, err := transport.NewClusterClient([]string{gwAddr}, transport.ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gw2 := NewHashedDomain(d, enc0, scale, client2)
	ready2 := make(chan net.Addr, 1)
	gw2Done := make(chan error, 1)
	go func() { gw2Done <- gw2.ListenAndServe("127.0.0.1:0", ready2) }()
	gw2Addr := (<-ready2).String()
	defer func() {
		gw2.Close()
		if err := <-gw2Done; err != nil {
			t.Error(err)
		}
	}()
	conn2, err := net.Dial("tcp", gw2Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	enc2 := transport.NewEncoder(conn2)
	if err := enc2.Encode(transport.DomainQuery(transport.QueryTopK, 0, d, 0, 3)); err != nil {
		t.Fatal(err)
	}
	if err := enc2.Flush(); err != nil {
		t.Fatal(err)
	}
	a2, err := transport.NewDecoder(conn2).ReadDomainAnswer()
	if err != nil {
		t.Fatal(err)
	}
	top2 := serial.TopK(d, 3)
	for i, ic := range top2 {
		if a2.Items[i] != ic.Item || a2.Values[i] != ic.Count {
			t.Fatalf("stacked top-k: %v/%v, serial %v", a2.Items, a2.Values, top2)
		}
	}

	// A gateway configured under a different epoch seed must fail to
	// gather: the backends refuse its sums requests rather than hand
	// over bucket counters that mean different items.
	badEnc := hh.LolohaEncoding(hashedTestM, hashedTestG, hashedTestSeed+1)
	clientBad, err := transport.NewClusterClient(addrs, transport.ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gwBad := NewHashedDomain(d, badEnc, scale, clientBad)
	readyBad := make(chan net.Addr, 1)
	gwBadDone := make(chan error, 1)
	go func() { gwBadDone <- gwBad.ListenAndServe("127.0.0.1:0", readyBad) }()
	gwBadAddr := (<-readyBad).String()
	defer func() {
		gwBad.Close()
		if err := <-gwBadDone; err != nil {
			t.Error(err)
		}
	}()
	connBad, err := net.Dial("tcp", gwBadAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer connBad.Close()
	encBad := transport.NewEncoder(connBad)
	if err := encBad.Encode(transport.DomainQuery(transport.QueryPointItem, 0, d, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := encBad.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := transport.NewDecoder(connBad).ReadDomainAnswer(); err == nil {
		t.Fatal("mismatched-seed gateway answered a query from these backends")
	}
}
