// Package cluster implements horizontal scale-out of the aggregation
// service: a Gateway speaks the same wire protocol as rtf-serve on its
// front, hash-partitions ingested users across N rtf-serve backends
// (user id mod N) on its back, and answers every query shape by
// scatter/gather — it fetches each backend's raw per-interval bit sums
// (MsgSums → SumsFrame) and folds them into a fresh protocol.Server
// before estimating.
//
// Merging raw integer sums, not scaled float answers, is what keeps the
// cluster exact: the dyadic accumulator is additive (Σ over backends of
// per-interval int64 sums equals the single-server sums), and the
// estimator is a fixed linear function of those integers evaluated in a
// fixed order, so a gateway answer is bit-for-bit the answer of one
// serial server fed every backend's reports. Averaging or summing the
// backends' float estimates would instead pick up order-dependent
// rounding.
//
// Failure semantics mirror a single rtf-serve. Forwarded ingest
// batches are acknowledged only by a later query on the same client
// connection (the fence); traffic fenced before a backend crash is
// recovered by that backend's snapshot+WAL. A backend connection that
// fails while the session has *unfenced* forwards on it fails the
// whole client connection — the forwards are indeterminate (maybe
// applied, maybe lost with the crash), and a surviving connection
// whose fence succeeds would falsely certify them; the client learns
// exactly what it learns when a single server dies under it, and
// re-sends per its own bookkeeping. Only operations with nothing
// unfenced at stake — dials, and sums fetches on a clean session —
// retry a dead backend with exponential backoff
// (transport.ClusterOptions), so a restarting backend stalls queries
// rather than failing them.
package cluster

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rtf/internal/dyadic"
	"rtf/internal/hh"
	"rtf/internal/protocol"
	"rtf/internal/transport"
)

// Gateway fronts a partitioned set of rtf-serve backends with the
// rtf-serve wire protocol: batched hello/report ingestion, v1 point
// queries, versioned v2 queries, and raw-sums requests (so gateways
// stack: a gateway is itself a valid backend). Every backend must be
// started with the same mechanism parameters (d, scale) as the gateway.
type Gateway struct {
	client *transport.ClusterClient
	d      int
	scale  float64
	// m is the row count when the gateway fronts domain-mode backends
	// (the richer-domain reduction): the domain size under the exact
	// encoding, the bucket count under a hashed one. 0 means the Boolean
	// protocol. A gateway serves exactly one mode, like its backends.
	m int
	// enc is the hashed domain encoding when the gateway fronts
	// hashed-domain backends; the zero value means exact or Boolean.
	enc hh.DomainEncoding

	// ErrorLog, when non-nil, receives per-connection decode/validation
	// failures (which close that connection but not the gateway).
	ErrorLog func(err error)

	// Metrics, when non-nil, instruments the gateway: forwarded batches
	// and messages, per-backend scatter latency, per-mechanism query
	// counters, hedge accounting, live connection count, and acked-batch
	// shed accounting. Nil keeps every path metric-free.
	Metrics *transport.ServerMetrics

	// AnswerCacheTTL, when positive, opts the gateway into bounded-
	// staleness reads: a cached gather younger than this may answer a
	// clean session's query even when ingest has advanced since it was
	// filled. Zero (the default) keeps the cache exact — an entry is
	// served only when the ingest epoch proves it bit-for-bit equal to a
	// fresh scatter/gather. See cache.go.
	AnswerCacheTTL time.Duration

	// Queue, when non-nil, bounds concurrent in-flight batches at the
	// gateway's front door — before anything is forwarded, so a shed
	// batch is rejected whole and never reaches any backend. Legacy
	// batches block for a slot (TCP backpressure); acked batches are
	// shed with a negative ack. Admitted batches forward downstream as
	// ordinary blocking batches, so backends never shed a forward and a
	// batch cannot end up applied on one partition and dropped on
	// another.
	Queue *transport.IngestQueue

	// ingestEpoch advances whenever the cluster-wide answer could have
	// changed: a forward starting, a fence certifying forwards as
	// applied, or an unfenced lease dying. Cache entries are stamped
	// with it; see cache.go for the exactness argument.
	ingestEpoch atomic.Uint64
	// cache is the version-stamped gathered-sums cache and the
	// single-flight latch coalescing concurrent identical gathers.
	cache answerCache

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// New builds a gateway for horizon d and estimator scale over the given
// cluster client.
func New(d int, scale float64, client *transport.ClusterClient) *Gateway {
	if !dyadic.IsPow2(d) {
		panic(fmt.Sprintf("cluster: d=%d not a power of two", d))
	}
	return &Gateway{
		client: client,
		d:      d,
		scale:  scale,
		conns:  make(map[net.Conn]struct{}),
	}
}

// NewDomain builds a gateway fronting domain-mode backends: horizon d,
// domain size m, and the Boolean mechanism's estimator scale (the
// per-item scale m × scale is computed identically on every node).
func NewDomain(d, m int, scale float64, client *transport.ClusterClient) *Gateway {
	if !dyadic.IsPow2(d) {
		panic(fmt.Sprintf("cluster: d=%d not a power of two", d))
	}
	if m < 2 {
		panic(fmt.Sprintf("cluster: domain size m=%d must be at least 2", m))
	}
	return &Gateway{
		client: client,
		d:      d,
		scale:  scale,
		m:      m,
		conns:  make(map[net.Conn]struct{}),
	}
}

// NewHashedDomain builds a gateway fronting hashed-domain backends:
// horizon d, the shared domain encoding (catalogue size, bucket count,
// epoch hash seed — checked against every backend on each gather), and
// the Boolean mechanism's estimator scale. The gateway's row space is
// the bucket space, so the verbatim domain fold and merge paths apply
// with m = g. Panics on an invalid or non-hashed encoding, mirroring
// NewDomain's contract.
func NewHashedDomain(d int, enc hh.DomainEncoding, scale float64, client *transport.ClusterClient) *Gateway {
	if !dyadic.IsPow2(d) {
		panic(fmt.Sprintf("cluster: d=%d not a power of two", d))
	}
	if err := enc.Validate(); err != nil {
		panic("cluster: " + err.Error())
	}
	if !enc.Hashed() {
		panic(fmt.Sprintf("cluster: encoding %q is not hashed", enc.Name))
	}
	return &Gateway{
		client: client,
		d:      d,
		scale:  scale,
		m:      enc.G,
		enc:    enc,
		conns:  make(map[net.Conn]struct{}),
	}
}

// Client returns the gateway's cluster client.
func (g *Gateway) Client() *transport.ClusterClient { return g.client }

// Serve accepts connections on l until Close is called (or the
// listener fails) and then waits for in-flight connections to drain.
func (g *Gateway) Serve(l net.Listener) error {
	defer g.wg.Wait()
	for {
		conn, err := l.Accept()
		if err != nil {
			if g.isClosed() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if !g.track(conn) {
			conn.Close()
			return nil
		}
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			defer g.untrack(conn)
			if err := g.serveConn(conn); err != nil && g.ErrorLog != nil {
				g.ErrorLog(fmt.Errorf("cluster: %w", err))
			}
		}()
	}
}

// ListenAndServe listens on addr and serves. The chosen address (useful
// with ":0") is sent on ready, if non-nil, once the listener is up.
func (g *Gateway) ListenAndServe(addr string, ready chan<- net.Addr) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		l.Close()
		return errors.New("cluster: gateway closed")
	}
	g.listener = l
	g.mu.Unlock()
	if ready != nil {
		ready <- l.Addr()
	}
	return g.Serve(l)
}

// session is the per-client-connection state: one leased backend
// connection per partition, acquired lazily. Using one connection per
// backend for the whole session makes the backend's in-order frame
// handling a fence: a sums fetch (or query) sees everything this
// session forwarded before it.
type session struct {
	g      *Gateway
	leases []*transport.BackendConn
	// bufs are reused per-backend partition buffers.
	bufs [][]transport.Msg
	// unfenced[i] records that the current lease on backend i carries
	// forwards not yet covered by a successful fetch. Losing such a
	// lease makes those forwards indeterminate, so the session must
	// fail rather than silently re-dial and certify them with a fence.
	unfenced []bool
}

func (s *session) lease(i int) (*transport.BackendConn, error) {
	if s.leases[i] == nil {
		bc, err := s.g.client.Lease(i)
		if err != nil {
			return nil, err
		}
		s.leases[i] = bc
	}
	return s.leases[i], nil
}

// drop closes and forgets a lease that saw an error. Losing a lease
// with unfenced forwards advances the ingest epoch: the forwards may
// still land on the backend without any fence ever recording it, so
// cache entries gathered before the drop can no longer be proven fresh.
func (s *session) drop(i int) {
	if s.leases[i] != nil {
		if s.unfenced[i] {
			s.g.ingestEpoch.Add(1)
		}
		s.g.client.Release(i, s.leases[i], false)
		s.leases[i] = nil
	}
}

// close releases every lease; healthy connections return to the pool.
func (s *session) close(healthy bool) {
	for i, bc := range s.leases {
		if bc != nil {
			s.g.client.Release(i, bc, healthy)
			s.leases[i] = nil
		}
	}
}

// fetchAttempts bounds how many fresh connections a clean sums fetch
// tries per backend; each attempt behind the first re-dials with the
// cluster client's full backoff schedule.
const fetchAttempts = 3

// fetchResult carries one fetch outcome together with the connection
// that produced it, so a hedged race knows which connection won.
type fetchResult[T any] struct {
	f   T
	err error
	bc  *transport.BackendConn
}

// fetchBackend runs one fenced sums fetch against backend i with the
// session's full failure discipline: FetchTimeout bounds each attempt,
// an error over unfenced forwards fails the session, a clean-session
// error retries on a fresh connection, and a clean-session attempt that
// outlives HedgeDelay is raced against a second fetch on a freshly
// leased connection (hedged read — safe because the fetch is read-only
// and idempotent). fetch is the round-trip to race: FetchSums or
// FetchDomainSums.
func fetchBackend[T any](s *session, i int, fetch func(*transport.BackendConn) (T, error)) (T, error) {
	var zero T
	opts := s.g.client.Options()
	bounded := func(bc *transport.BackendConn) fetchResult[T] {
		if opts.FetchTimeout > 0 {
			bc.SetDeadline(time.Now().Add(opts.FetchTimeout))
		}
		f, err := fetch(bc)
		if err == nil && opts.FetchTimeout > 0 {
			err = bc.SetDeadline(time.Time{})
		}
		return fetchResult[T]{f: f, err: err, bc: bc}
	}
	var lastErr error
	for attempt := 0; attempt < fetchAttempts; attempt++ {
		bc, err := s.lease(i)
		if err != nil {
			lastErr = err
			continue
		}
		var r fetchResult[T]
		if opts.HedgeDelay > 0 && !s.unfenced[i] {
			r = hedge(s, i, bc, opts.HedgeDelay, bounded)
		} else {
			r = bounded(bc)
		}
		if r.err != nil {
			s.drop(i)
			if s.unfenced[i] {
				return zero, fmt.Errorf("backend %d connection failed with unacknowledged forwards: %w", i, r.err)
			}
			lastErr = r.err
			continue
		}
		if r.bc != s.leases[i] {
			// The hedge connection won: the primary lease has a stale
			// in-flight request on it and cannot be reused — replace it.
			s.leases[i].Close()
			s.leases[i] = r.bc
		}
		if s.unfenced[i] {
			// Everything forwarded on this lease is now certifiably
			// applied — the cluster-wide answer may have changed, so
			// cache entries gathered before this fence go stale.
			s.unfenced[i] = false
			s.g.ingestEpoch.Add(1)
		}
		return r.f, nil
	}
	return zero, fmt.Errorf("fetching sums from backend %d: %w", i, lastErr)
}

// hedge races bounded(primary) against a second fetch on a freshly
// leased connection once the primary has been quiet for delay. The
// loser's connection is closed (its response, if any, dies with it), so
// whichever connection this returns is the only one with a completed —
// or no — round-trip outstanding.
func hedge[T any](s *session, i int, primary *transport.BackendConn, delay time.Duration,
	bounded func(*transport.BackendConn) fetchResult[T]) fetchResult[T] {
	ch := make(chan fetchResult[T], 2)
	go func() { ch <- bounded(primary) }()
	timer := time.NewTimer(delay)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r
	case <-timer.C:
	}
	hc, err := s.g.client.Lease(i)
	if err != nil {
		// No hedge connection to be had; fall back to the primary.
		return <-ch
	}
	go func() { ch <- bounded(hc) }()
	r := <-ch
	if r.err != nil {
		// First finisher failed (either side); the survivor decides.
		r = <-ch
	}
	loser := primary
	if r.bc == primary {
		loser = hc
	}
	if r.err != nil {
		// Both failed: close both; the caller drops the primary lease.
		hc.Close()
	} else {
		loser.Close()
	}
	if m := s.g.Metrics; m != nil {
		m.CountHedge(r.err == nil && r.bc == hc)
	}
	return r
}

// forward partitions one run of validated hello/report messages by
// user mod N and ships each non-empty sub-batch to its backend. Dial
// failures retry with backoff inside Lease, but once a sub-batch has
// been written a connection failure fails the session: the sub-batch
// (and any earlier unfenced forwards on that lease) may or may not
// have been applied, and only the client — which sees its connection
// die, exactly as when a single server crashes — can decide what to
// re-send. A batch is only guaranteed applied once a later fence or
// query round-trips on the same session.
func (s *session) forward(ms []transport.Msg) error {
	// Bump the epoch before anything is written: once a sub-batch is on
	// the wire its reports may land at any later moment, so no gather
	// whose stamp predates this forward may be served as exact again.
	s.g.ingestEpoch.Add(1)
	for i := range s.bufs {
		s.bufs[i] = s.bufs[i][:0]
	}
	for _, m := range ms {
		i := s.g.client.Route(m.User)
		s.bufs[i] = append(s.bufs[i], m)
	}
	for i := range s.bufs {
		if len(s.bufs[i]) == 0 {
			continue
		}
		bc, err := s.lease(i)
		if err != nil {
			return fmt.Errorf("forwarding to backend %d: %w", i, err)
		}
		err = bc.SendBatch(s.bufs[i])
		if err == nil {
			err = bc.Flush()
		}
		if err != nil {
			s.drop(i)
			return fmt.Errorf("backend %d connection failed with unacknowledged forwards: %w", i, err)
		}
		s.unfenced[i] = true
	}
	return nil
}

// gather is the scatter/gather core: it fetches every backend's raw
// sums in parallel (each fetch fencing this session's prior forwards on
// that backend) and folds them into a fresh serial protocol.Server. The
// returned server answers any query shape bit-for-bit like a single
// server fed all the backends' reports.
//
// A fetch that fails on a lease carrying unfenced forwards fails the
// session: retrying on a fresh connection would answer — and so fence —
// a query whose preceding forwards may have died with the backend.
// With nothing unfenced the fetch is read-only and idempotent, so it
// retries across fresh connections (dials back off inside Lease),
// riding out a backend restart.
func (s *session) gather() (*protocol.Server, []transport.SumsFrame, error) {
	n := s.g.client.N()
	frames := make([]transport.SumsFrame, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := time.Now()
			f, err := fetchBackend(s, i, (*transport.BackendConn).FetchSums)
			if err != nil {
				errs[i] = err
				return
			}
			frames[i] = f
			if m := s.g.Metrics; m != nil {
				m.ObserveScatter(i, time.Since(start))
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	srv := protocol.NewServer(s.g.d, s.g.scale)
	for i := range frames {
		if err := frames[i].MergeInto(srv); err != nil {
			return nil, nil, fmt.Errorf("merging sums from backend %d: %w", i, err)
		}
	}
	return srv, frames, nil
}

// gatherDomain is the fetch half of domain scatter/gather: it fetches
// every backend's per-item raw sums in parallel (each fetch fencing
// this session's prior forwards on that backend). The retry discipline
// is identical to gather: a fetch failing over unfenced forwards fails
// the session, a clean fetch retries across fresh connections. Folding
// is left to foldDomain, so a MsgDomainSums answer — which only needs
// the raw frames — never allocates the m per-item accumulators.
func (s *session) gatherDomain() ([]transport.DomainSumsFrame, error) {
	n := s.g.client.N()
	frames := make([]transport.DomainSumsFrame, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := time.Now()
			f, err := fetchBackend(s, i, (*transport.BackendConn).FetchDomainSums)
			if err != nil {
				errs[i] = err
				return
			}
			frames[i] = f
			if m := s.g.Metrics; m != nil {
				m.ObserveScatter(i, time.Since(start))
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return frames, nil
}

// foldDomain merges gathered per-backend frames into a fresh serial
// hh.DomainServer, which answers any item-scoped query shape —
// point-item, series-item, top-k — bit-for-bit like a single server
// fed all the backends' reports.
func (g *Gateway) foldDomain(frames []transport.DomainSumsFrame) (*hh.DomainServer, error) {
	ds := hh.NewDomainServer(g.d, g.m, g.scale, 1)
	for i := range frames {
		if err := frames[i].MergeInto(ds); err != nil {
			return nil, fmt.Errorf("merging domain sums from backend %d: %w", i, err)
		}
	}
	return ds, nil
}

// mergeDomainFrames folds the gathered per-backend frames into one
// cluster-wide DomainSumsFrame, so a domain gateway can itself answer
// MsgDomainSums (and stack under another gateway). Each frame's
// configuration is checked against the gateway's — this path answers
// straight from the raw frames, without the per-item fold whose
// MergeInto would otherwise catch a misconfigured backend.
func (g *Gateway) mergeDomainFrames(frames []transport.DomainSumsFrame) (transport.DomainSumsFrame, error) {
	out := transport.DomainSumsFrame{
		D:     g.d,
		M:     g.m,
		Scale: g.scale,
		Items: make([]transport.ItemSums, g.m),
	}
	for x := range out.Items {
		out.Items[x] = transport.ItemSums{
			PerOrder: make([]int64, dyadic.NumOrders(g.d)),
			Sums:     make([]int64, dyadic.TotalIntervals(g.d)),
		}
	}
	for i, f := range frames {
		if f.D != g.d || f.M != g.m || f.Scale != g.scale || len(f.Items) != g.m {
			return transport.DomainSumsFrame{}, fmt.Errorf(
				"backend %d serves d=%d m=%d scale=%v (%d items), gateway configured with d=%d m=%d scale=%v",
				i, f.D, f.M, f.Scale, len(f.Items), g.d, g.m, g.scale)
		}
		for x, it := range f.Items {
			o := &out.Items[x]
			o.Users += it.Users
			for h, v := range it.PerOrder {
				o.PerOrder[h] += v
			}
			for i, v := range it.Sums {
				o.Sums[i] += v
			}
		}
	}
	return out, nil
}

// mergeFrames folds the gathered per-backend frames into one cluster-
// wide SumsFrame, so a gateway can itself answer MsgSums (and stack
// under another gateway).
func (g *Gateway) mergeFrames(frames []transport.SumsFrame) transport.SumsFrame {
	out := transport.SumsFrame{
		D:        g.d,
		Scale:    g.scale,
		PerOrder: make([]int64, dyadic.NumOrders(g.d)),
		Sums:     make([]int64, dyadic.TotalIntervals(g.d)),
	}
	for _, f := range frames {
		out.Users += f.Users
		for h, v := range f.PerOrder {
			out.PerOrder[h] += v
		}
		for i, v := range f.Sums {
			out.Sums[i] += v
		}
	}
	return out
}

// serveConn runs the decode loop for one client connection: ingest runs
// are partitioned and forwarded, queries are answered by scatter/gather.
func (g *Gateway) serveConn(conn net.Conn) error {
	dec := transport.NewDecoder(conn)
	enc := transport.NewEncoder(conn)
	s := &session{
		g:        g,
		leases:   make([]*transport.BackendConn, g.client.N()),
		bufs:     make([][]transport.Msg, g.client.N()),
		unfenced: make([]bool, g.client.N()),
	}
	healthy := false
	defer func() { s.close(healthy) }()
	err := g.serveFrames(s, dec, enc)
	if err == nil {
		healthy = true
	}
	return err
}

func (g *Gateway) serveFrames(s *session, dec *transport.Decoder, enc *transport.Encoder) error {
	if g.enc.Hashed() {
		return g.serveHashedDomainFrames(s, dec, enc)
	}
	if g.m > 0 {
		return g.serveDomainFrames(s, dec, enc)
	}
	isQuery := func(m transport.Msg) bool {
		return m.Type == transport.MsgQuery || m.Type == transport.MsgQueryV2 || m.Type == transport.MsgSums
	}
	for {
		ms, err := dec.NextBatch()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil // clean client close or gateway shutdown
			}
			return err
		}
		acked := dec.AckedBatch()
		start := time.Now()
		ingest := 0
		// Atomic batches, as on a single server: validate every frame
		// before forwarding or answering anything.
		for _, m := range ms {
			if acked && isQuery(m) {
				return fmt.Errorf("message type %d (query) inside acked batch", m.Type)
			}
			switch m.Type {
			case transport.MsgQuery:
				if m.T < 1 || m.T > g.d {
					return fmt.Errorf("query time %d out of range [1..%d]", m.T, g.d)
				}
			case transport.MsgQueryV2:
				if err := transport.ValidateQuery(g.d, m); err != nil {
					return err
				}
			case transport.MsgSums:
				// No parameters to validate.
			default:
				// The identical checks the backend collector runs, so a
				// batch the gateway accepts cannot be rejected downstream
				// mid-forward.
				if err := transport.ValidateIngest(g.d, m); err != nil {
					return err
				}
				ingest++
			}
		}
		shed, holding, err := g.admitBatch(acked, enc)
		if err != nil {
			return err
		}
		if shed {
			continue
		}
		err = transport.BatchRuns(ms, isQuery,
			s.forward,
			func(m transport.Msg) error {
				if g.Metrics != nil {
					g.Metrics.CountQuery("boolean", transport.QueryKindName(m))
				}
				e, hit, coalesced, err := g.acquireEntry(s, func() (*cacheEntry, error) {
					srv, frames, err := s.gather()
					if err != nil {
						return nil, err
					}
					return &cacheEntry{srv: srv, frames: frames}, nil
				})
				if err != nil {
					return err
				}
				g.countCacheOutcome(hit, coalesced)
				switch m.Type {
				case transport.MsgQuery:
					if err := enc.Encode(transport.Estimate(m.T, e.srv.EstimateAt(m.T))); err != nil {
						return err
					}
				case transport.MsgQueryV2:
					ans, err := transport.AnswerQuery(e.srv, m)
					if err != nil {
						return err
					}
					if err := enc.EncodeAnswer(ans); err != nil {
						return err
					}
				case transport.MsgSums:
					if err := enc.EncodeSums(g.mergeFrames(e.frames)); err != nil {
						return err
					}
				}
				return enc.Flush()
			})
		if holding {
			g.Queue.Release()
		}
		if err != nil {
			return err
		}
		if err := g.finishBatch(acked, enc, ingest, start); err != nil {
			return err
		}
	}
}

// admitBatch mirrors the ingest server's admission at the gateway's
// front door: it runs before anything is forwarded, so a shed batch
// never reaches any backend — whole-batch rejection holds cluster-wide.
func (g *Gateway) admitBatch(acked bool, enc *transport.Encoder) (shed, holding bool, err error) {
	if g.Queue == nil {
		return false, false, nil
	}
	if !acked {
		g.Queue.Acquire()
		return false, true, nil
	}
	if g.Queue.TryAcquire() {
		return false, true, nil
	}
	if g.Metrics != nil {
		g.Metrics.ObserveShed()
	}
	if err := enc.EncodeBatchAck(false); err != nil {
		return false, false, err
	}
	return true, false, enc.Flush()
}

// finishBatch acknowledges a forwarded acked batch and records its
// metrics. The positive ack certifies the batch was written whole to
// the session's backend leases; as with legacy batches, application is
// certified by the next fence or query on this session.
func (g *Gateway) finishBatch(acked bool, enc *transport.Encoder, n int, start time.Time) error {
	if acked {
		if err := enc.EncodeBatchAck(true); err != nil {
			return err
		}
		if err := enc.Flush(); err != nil {
			return err
		}
	}
	if g.Metrics != nil {
		g.Metrics.ObserveBatch(n, time.Since(start), acked)
	}
	return nil
}

// serveDomainFrames is serveFrames for a domain gateway: item-tagged
// ingest runs are partitioned by user and forwarded, item-scoped
// queries are answered by per-item scatter/gather. Boolean frames fail
// the connection, mirroring a domain-mode rtf-serve.
func (g *Gateway) serveDomainFrames(s *session, dec *transport.Decoder, enc *transport.Encoder) error {
	isQuery := func(m transport.Msg) bool {
		return m.Type == transport.MsgDomainQuery || m.Type == transport.MsgDomainSums
	}
	for {
		ms, err := dec.NextBatch()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil // clean client close or gateway shutdown
			}
			return err
		}
		acked := dec.AckedBatch()
		start := time.Now()
		ingest := 0
		// Atomic batches, as on a single server: validate every frame
		// before forwarding or answering anything.
		for _, m := range ms {
			if acked && isQuery(m) {
				return fmt.Errorf("message type %d (query) inside acked batch", m.Type)
			}
			switch m.Type {
			case transport.MsgDomainQuery:
				if err := transport.ValidateDomainQuery(g.d, g.m, m); err != nil {
					return err
				}
			case transport.MsgDomainSums:
				// No parameters to validate.
			default:
				// The identical checks the backend collector runs, so a
				// batch the gateway accepts cannot be rejected downstream
				// mid-forward.
				if err := transport.ValidateDomainIngest(g.d, g.m, m); err != nil {
					return err
				}
				ingest++
			}
		}
		shed, holding, err := g.admitBatch(acked, enc)
		if err != nil {
			return err
		}
		if shed {
			continue
		}
		err = transport.BatchRuns(ms, isQuery,
			s.forward,
			func(m transport.Msg) error {
				if g.Metrics != nil {
					g.Metrics.CountQuery("domain", transport.QueryKindName(m))
				}
				e, hit, coalesced, err := g.acquireEntry(s, func() (*cacheEntry, error) {
					frames, err := s.gatherDomain()
					if err != nil {
						return nil, err
					}
					return &cacheEntry{domainFrames: frames}, nil
				})
				if err != nil {
					return err
				}
				g.countCacheOutcome(hit, coalesced)
				switch m.Type {
				case transport.MsgDomainQuery:
					ds, err := e.domainServer(g)
					if err != nil {
						return err
					}
					ans, err := transport.AnswerDomainQuery(ds, m)
					if err != nil {
						return err
					}
					if err := enc.EncodeDomainAnswer(ans); err != nil {
						return err
					}
				case transport.MsgDomainSums:
					merged, err := g.mergeDomainFrames(e.domainFrames)
					if err != nil {
						return err
					}
					if err := enc.EncodeDomainSums(merged); err != nil {
						return err
					}
				}
				return enc.Flush()
			})
		if holding {
			g.Queue.Release()
		}
		if err != nil {
			return err
		}
		if err := g.finishBatch(acked, enc, ingest, start); err != nil {
			return err
		}
	}
}

// gatherHashedDomain is gatherDomain against hashed-domain backends:
// the fetch carries the gateway's encoding parameters, so a backend
// hashing under a different seed (or sized differently) refuses the
// request instead of handing over incompatible bucket counters.
func (s *session) gatherHashedDomain() ([]transport.DomainSumsFrame, error) {
	n := s.g.client.N()
	frames := make([]transport.DomainSumsFrame, n)
	errs := make([]error, n)
	enc := s.g.enc
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := time.Now()
			f, err := fetchBackend(s, i, func(bc *transport.BackendConn) (transport.DomainSumsFrame, error) {
				return bc.FetchHashedDomainSums(enc.M, enc.G, enc.Seed)
			})
			if err != nil {
				errs[i] = err
				return
			}
			frames[i] = f
			if m := s.g.Metrics; m != nil {
				m.ObserveScatter(i, time.Since(start))
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return frames, nil
}

// foldHashedDomain merges gathered per-backend bucket frames into a
// fresh serial hashed domain server: the raw g-row fold is foldDomain
// verbatim (MergeInto checks each frame's dimensions), and the decode
// layer on top answers item-scoped queries bit-for-bit like a single
// hashed server fed every backend's reports.
func (g *Gateway) foldHashedDomain(frames []transport.DomainSumsFrame) (*hh.HashedDomainServer, error) {
	hs := hh.NewHashedDomainServer(g.d, g.enc, g.scale, 1)
	for i := range frames {
		if err := frames[i].MergeInto(hs.Inner()); err != nil {
			return nil, fmt.Errorf("merging domain sums from backend %d: %w", i, err)
		}
	}
	return hs, nil
}

// serveHashedDomainFrames is serveDomainFrames for a hashed-domain
// gateway: bucket-tagged ingest runs are partitioned by user and
// forwarded, item-scoped queries are validated against the catalogue
// and answered by bucket-space scatter/gather plus the decode layer.
// Encoding-checked sums requests (MsgHashedDomainSums) are answered
// after the same parameter check a backend applies, so gateways stack;
// plain MsgDomainSums — like every other off-mode frame — fails the
// connection, mirroring a hashed-domain rtf-serve.
func (g *Gateway) serveHashedDomainFrames(s *session, dec *transport.Decoder, enc *transport.Encoder) error {
	isQuery := func(m transport.Msg) bool {
		return m.Type == transport.MsgDomainQuery || m.Type == transport.MsgHashedDomainSums
	}
	for {
		ms, err := dec.NextBatch()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil // clean client close or gateway shutdown
			}
			return err
		}
		acked := dec.AckedBatch()
		start := time.Now()
		ingest := 0
		// Atomic batches, as on a single server: validate every frame
		// before forwarding or answering anything.
		for _, m := range ms {
			if acked && isQuery(m) {
				return fmt.Errorf("message type %d (query) inside acked batch", m.Type)
			}
			switch m.Type {
			case transport.MsgDomainQuery:
				if err := transport.ValidateHashedDomainQuery(g.d, g.enc.M, m); err != nil {
					return err
				}
			case transport.MsgHashedDomainSums:
				if m.Item != g.enc.M || m.K != g.enc.G || m.Seed != g.enc.Seed {
					return fmt.Errorf("hashed sums request for m=%d g=%d seed=%d, gateway encodes m=%d g=%d under a different seed",
						m.Item, m.K, m.Seed, g.enc.M, g.enc.G)
				}
			default:
				// The identical checks the backend collector runs, so a
				// batch the gateway accepts cannot be rejected downstream
				// mid-forward.
				if err := transport.ValidateHashedDomainIngest(g.d, g.enc, m); err != nil {
					return err
				}
				ingest++
			}
		}
		shed, holding, err := g.admitBatch(acked, enc)
		if err != nil {
			return err
		}
		if shed {
			continue
		}
		err = transport.BatchRuns(ms, isQuery,
			s.forward,
			func(m transport.Msg) error {
				if g.Metrics != nil {
					g.Metrics.CountQuery("hashed-domain", transport.QueryKindName(m))
				}
				e, hit, coalesced, err := g.acquireEntry(s, func() (*cacheEntry, error) {
					frames, err := s.gatherHashedDomain()
					if err != nil {
						return nil, err
					}
					return &cacheEntry{domainFrames: frames}, nil
				})
				if err != nil {
					return err
				}
				g.countCacheOutcome(hit, coalesced)
				switch m.Type {
				case transport.MsgDomainQuery:
					hs, err := e.hashedServer(g)
					if err != nil {
						return err
					}
					ans, err := transport.AnswerHashedDomainQuery(hs, m)
					if err != nil {
						return err
					}
					if err := enc.EncodeDomainAnswer(ans); err != nil {
						return err
					}
				case transport.MsgHashedDomainSums:
					merged, err := g.mergeDomainFrames(e.domainFrames)
					if err != nil {
						return err
					}
					if err := enc.EncodeDomainSums(merged); err != nil {
						return err
					}
				}
				return enc.Flush()
			})
		if holding {
			g.Queue.Release()
		}
		if err != nil {
			return err
		}
		if err := g.finishBatch(acked, enc, ingest, start); err != nil {
			return err
		}
	}
}

// Shutdown drains the gateway gracefully: it stops accepting new
// connections and closes the listener, then gives in-flight client
// connections up to grace to finish before force-closing whatever
// remains.
func (g *Gateway) Shutdown(grace time.Duration) error {
	g.mu.Lock()
	g.closed = true
	l := g.listener
	g.listener = nil
	g.mu.Unlock()
	var lerr error
	if l != nil {
		lerr = l.Close()
	}
	done := make(chan struct{})
	go func() {
		g.wg.Wait()
		close(done)
	}()
	timer := time.NewTimer(grace)
	defer timer.Stop()
	select {
	case <-done:
	case <-timer.C:
		g.mu.Lock()
		for conn := range g.conns {
			conn.Close()
		}
		g.mu.Unlock()
		<-done
	}
	g.client.Close()
	return lerr
}

// Close stops accepting connections, closes the listener and all live
// client connections, and unblocks Serve.
func (g *Gateway) Close() error {
	g.mu.Lock()
	g.closed = true
	l := g.listener
	g.listener = nil
	for conn := range g.conns {
		conn.Close()
	}
	g.mu.Unlock()
	g.client.Close()
	if l != nil {
		return l.Close()
	}
	return nil
}

func (g *Gateway) isClosed() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.closed
}

func (g *Gateway) track(conn net.Conn) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return false
	}
	g.conns[conn] = struct{}{}
	if g.Metrics != nil {
		g.Metrics.ActiveConns.Add(1)
	}
	return true
}

func (g *Gateway) untrack(conn net.Conn) {
	g.mu.Lock()
	delete(g.conns, conn)
	if g.Metrics != nil {
		g.Metrics.ActiveConns.Add(-1)
	}
	g.mu.Unlock()
	conn.Close()
}
