package cluster

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rtf/internal/dyadic"
	"rtf/internal/hh"
	"rtf/internal/membership"
	"rtf/internal/protocol"
	"rtf/internal/transport"
)

// MemberGateway is the dynamic-membership counterpart of Gateway: it
// fronts a set of membership-mode rtf-serve backends under a versioned
// cluster view (membership.View). Users hash statically onto virtual
// shards; rendezvous hashing places each shard on K member backends, so
// ingest is K-way replicated (a sub-batch is written to every owner of
// its shard) and queries are quorum reads (each shard's raw integer
// sums are fetched from its live owners, compared exactly, and folded
// in fixed shard order) — the answer stays bit-for-bit the answer of a
// single serial server fed the same reports, and survives the death of
// any single replica.
//
// The view changes through Reshard, which runs an epoch fence: it
// blocks new client batches (sessions take the view lock shared per
// batch), round-trips a fence on every session lease that carries
// unacknowledged forwards (so everything forwarded so far is applied at
// its source before any snapshot is cut), ships each moved shard's
// serialized state from an old owner to its new owner, pushes the new
// view to every member, and only then installs it. Rendezvous placement
// keeps the moved set near the minimum: adding a member moves about
// S·K/N of the S·K shard replicas, nothing else.
type MemberGateway struct {
	rc    *transport.ReplicaClient
	d     int
	scale float64
	// m is the domain size when the gateway fronts domain-mode
	// membership backends; 0 means the Boolean protocol.
	m int

	// ErrorLog, when non-nil, receives per-connection decode/validation
	// failures (which close that connection but not the gateway).
	ErrorLog func(err error)

	// Metrics, when non-nil, instruments the gateway exactly like
	// Gateway.Metrics.
	Metrics *transport.ServerMetrics

	// Queue, when non-nil, bounds concurrent in-flight batches at the
	// front door, as on Gateway: a shed batch never reaches any member.
	Queue *transport.IngestQueue

	// vmu is the epoch fence: sessions hold it shared for the duration
	// of one client batch, Reshard holds it exclusively. While Reshard
	// runs, every session is parked between batches, so its backend
	// leases are quiescent and the resharder may round-trip fences on
	// them.
	vmu  sync.RWMutex
	view membership.View

	// smu guards the session registry Reshard fences.
	smu      sync.Mutex
	sessions map[*memberSession]struct{}

	transfers   atomic.Int64 // shard snapshots shipped by reshards
	divergences atomic.Int64 // quorum reads that found replica mismatch
	shortReads  atomic.Int64 // shards answered by fewer than K replicas

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewMember builds a Boolean member gateway for horizon d and estimator
// scale over an initial member set: numShards virtual shards, each
// placed on k of the members by rendezvous hashing, at epoch 1.
func NewMember(d int, scale float64, numShards, k int, members []membership.Member, rc *transport.ReplicaClient) (*MemberGateway, error) {
	return newMember(d, 0, scale, numShards, k, members, rc)
}

// NewMemberDomain builds a domain-mode member gateway: horizon d,
// domain size m, and the Boolean mechanism's estimator scale.
func NewMemberDomain(d, m int, scale float64, numShards, k int, members []membership.Member, rc *transport.ReplicaClient) (*MemberGateway, error) {
	if m < 2 {
		return nil, fmt.Errorf("cluster: domain size m=%d must be at least 2", m)
	}
	return newMember(d, m, scale, numShards, k, members, rc)
}

func newMember(d, m int, scale float64, numShards, k int, members []membership.Member, rc *transport.ReplicaClient) (*MemberGateway, error) {
	if !dyadic.IsPow2(d) {
		return nil, fmt.Errorf("cluster: d=%d not a power of two", d)
	}
	v := membership.View{Epoch: 1, K: k, NumShards: numShards, Members: members}
	if err := v.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: initial view: %w", err)
	}
	return &MemberGateway{
		rc:       rc,
		d:        d,
		scale:    scale,
		m:        m,
		view:     v.Clone(),
		sessions: make(map[*memberSession]struct{}),
		conns:    make(map[net.Conn]struct{}),
	}, nil
}

// Client returns the gateway's replica client.
func (g *MemberGateway) Client() *transport.ReplicaClient { return g.rc }

// View returns the current cluster view.
func (g *MemberGateway) View() membership.View {
	g.vmu.RLock()
	defer g.vmu.RUnlock()
	return g.view.Clone()
}

// Epoch returns the current view's epoch.
func (g *MemberGateway) Epoch() uint64 {
	g.vmu.RLock()
	defer g.vmu.RUnlock()
	return g.view.Epoch
}

// TransfersTotal counts the shard snapshots shipped by reshards so far.
func (g *MemberGateway) TransfersTotal() int64 { return g.transfers.Load() }

// Divergences counts quorum reads that found replicas in exact-integer
// disagreement.
func (g *MemberGateway) Divergences() int64 { return g.divergences.Load() }

// ShortReads counts shards answered by fewer than K live replicas.
func (g *MemberGateway) ShortReads() int64 { return g.shortReads.Load() }

// AnnounceView pushes the current view to every member, so freshly
// started backends learn their epoch and owned-shard set. Pushes ride
// the replica client's dial backoff; the first member that cannot be
// reached fails the announce.
func (g *MemberGateway) AnnounceView() error {
	v := g.View()
	for _, mem := range v.Members {
		bc, err := g.rc.Lease(mem.Addr)
		if err != nil {
			return fmt.Errorf("cluster: announcing view to %s: %w", mem.ID, err)
		}
		err = bc.PushView(v)
		g.rc.Release(mem.Addr, bc, err == nil)
		if err != nil {
			return fmt.Errorf("cluster: announcing view to %s: %w", mem.ID, err)
		}
	}
	return nil
}

// ReshardResult reports what a Reshard did.
type ReshardResult struct {
	// Epoch is the new view's epoch.
	Epoch uint64 `json:"epoch"`
	// Transfers is the number of shard snapshots shipped (one per
	// (shard, new owner) pair the plan moved).
	Transfers int `json:"transfers"`
	// Members and K describe the new view.
	Members int `json:"members"`
	K       int `json:"k"`
}

// Reshard installs a new member set (and replication factor) as the
// next epoch. Under the exclusive view lock it: fences every session
// lease carrying unacknowledged forwards, so all forwarded ingest is
// applied at its source first (a fence failure poisons that session —
// its forwards are indeterminate, exactly as when a backend dies under
// a plain Gateway — but the reshard proceeds); computes the rendezvous
// transfer plan; ships each moved shard's serialized state from the
// first reachable old owner to its new owner; pushes the new view to
// every member of it; and installs the view. On any transfer or push
// failure the old view stays installed and the error is returned —
// already-installed shard copies are harmless, since no query reads
// them until the view switches.
func (g *MemberGateway) Reshard(members []membership.Member, k int) (ReshardResult, error) {
	g.vmu.Lock()
	defer g.vmu.Unlock()
	next := membership.View{
		Epoch:     g.view.Epoch + 1,
		K:         k,
		NumShards: g.view.NumShards,
		Members:   members,
	}
	next = next.Clone()
	if err := next.Validate(); err != nil {
		return ReshardResult{}, fmt.Errorf("cluster: reshard view: %w", err)
	}

	g.fenceSessions()

	plan := membership.Plan(g.view, next)
	for _, tr := range plan {
		state, err := g.fetchShardState(g.view, tr)
		if err != nil {
			return ReshardResult{}, err
		}
		dst, ok := next.Member(tr.Dst)
		if !ok {
			return ReshardResult{}, fmt.Errorf("cluster: transfer destination %s not in new view", tr.Dst)
		}
		if err := g.installShard(dst, tr.Shard, state); err != nil {
			return ReshardResult{}, err
		}
		g.transfers.Add(1)
	}

	for _, mem := range next.Members {
		bc, err := g.rc.Lease(mem.Addr)
		if err != nil {
			return ReshardResult{}, fmt.Errorf("cluster: pushing view to %s: %w", mem.ID, err)
		}
		err = bc.PushView(next)
		g.rc.Release(mem.Addr, bc, err == nil)
		if err != nil {
			return ReshardResult{}, fmt.Errorf("cluster: pushing view to %s: %w", mem.ID, err)
		}
	}

	// Drop pools for members that left; their addresses may be gone.
	present := make(map[string]bool, len(next.Members))
	for _, mem := range next.Members {
		present[mem.Addr] = true
	}
	for _, mem := range g.view.Members {
		if !present[mem.Addr] {
			g.rc.Drop(mem.Addr)
		}
	}
	g.view = next
	return ReshardResult{Epoch: next.Epoch, Transfers: len(plan), Members: len(next.Members), K: next.K}, nil
}

// fenceSessions round-trips a fence on every session lease carrying
// unacknowledged forwards. The caller must hold the exclusive view
// lock: every session is then parked between batches, so its leases
// are quiescent and safe to round-trip on.
func (g *MemberGateway) fenceSessions() {
	g.smu.Lock()
	sessions := make([]*memberSession, 0, len(g.sessions))
	for s := range g.sessions {
		sessions = append(sessions, s)
	}
	g.smu.Unlock()
	for _, s := range sessions {
		s.fenceForReshard()
	}
}

// fetchShardState cuts the shard's snapshot from the first reachable
// source in the transfer's old-owner list (IDs resolved against the
// old view).
func (g *MemberGateway) fetchShardState(old membership.View, tr membership.Transfer) ([]byte, error) {
	var lastErr error
	for _, id := range tr.Sources {
		src, ok := old.Member(id)
		if !ok {
			continue
		}
		bc, err := g.rc.Lease(src.Addr)
		if err != nil {
			lastErr = err
			continue
		}
		state, err := bc.FetchShardState(tr.Shard)
		g.rc.Release(src.Addr, bc, err == nil)
		if err != nil {
			lastErr = err
			continue
		}
		return state, nil
	}
	return nil, fmt.Errorf("cluster: no source for shard %d (tried %d): %w", tr.Shard, len(tr.Sources), lastErr)
}

// installShard ships a shard snapshot to its new owner and waits for
// the install ack.
func (g *MemberGateway) installShard(dst membership.Member, shard int, state []byte) error {
	bc, err := g.rc.Lease(dst.Addr)
	if err != nil {
		return fmt.Errorf("cluster: installing shard %d on %s: %w", shard, dst.ID, err)
	}
	err = bc.TransferShard(shard, state)
	g.rc.Release(dst.Addr, bc, err == nil)
	if err != nil {
		return fmt.Errorf("cluster: installing shard %d on %s: %w", shard, dst.ID, err)
	}
	return nil
}

// Serve accepts connections on l until Close is called (or the
// listener fails) and then waits for in-flight connections to drain.
func (g *MemberGateway) Serve(l net.Listener) error {
	defer g.wg.Wait()
	for {
		conn, err := l.Accept()
		if err != nil {
			if g.isClosed() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if !g.track(conn) {
			conn.Close()
			return nil
		}
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			defer g.untrack(conn)
			if err := g.serveConn(conn); err != nil && g.ErrorLog != nil {
				g.ErrorLog(fmt.Errorf("cluster: %w", err))
			}
		}()
	}
}

// ListenAndServe listens on addr and serves. The chosen address is sent
// on ready, if non-nil, once the listener is up.
func (g *MemberGateway) ListenAndServe(addr string, ready chan<- net.Addr) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		l.Close()
		return errors.New("cluster: gateway closed")
	}
	g.listener = l
	g.mu.Unlock()
	if ready != nil {
		ready <- l.Addr()
	}
	return g.Serve(l)
}

// memberLease is one session's connection to one member, keyed by the
// member ID it was opened for (the address travels along so the lease
// can be released even after the member leaves the view).
type memberLease struct {
	addr string
	bc   *transport.BackendConn
}

// memberSession is the per-client-connection state of a member gateway:
// one leased connection per member, acquired lazily, plus the session's
// adopted view and the per-shard owner table derived from it. A session
// holds the gateway's view lock shared for the duration of each batch;
// between batches it is quiescent, which is when Reshard may fence its
// leases (and poison it on a fence failure).
type memberSession struct {
	g    *MemberGateway
	view membership.View
	// owners[sh] is the view's owner list for shard sh, resolved once
	// per adopted epoch.
	owners [][]int

	// lmu guards the maps below against the parallel per-member fetches
	// of a quorum gather.
	lmu    sync.Mutex
	leases map[string]*memberLease
	// unfenced[id] records forwards on the member's lease not yet
	// covered by a successful fetch; losing such a lease fails the
	// session, as on Gateway.
	unfenced map[string]bool
	// down caches members whose clean fetch failed: for the rest of
	// this session they are never queried again (their shards answer
	// from surviving replicas) — a dead replica must not stall every
	// subsequent query on redial timeouts.
	down map[string]bool
	bufs map[string][]transport.Msg

	// poisoned is set by the resharder when a fence on this session's
	// unfenced forwards failed: the forwards are indeterminate and the
	// session must surface the error rather than certify them later.
	poisoned error
}

func (g *MemberGateway) serveConn(conn net.Conn) error {
	dec := transport.NewDecoder(conn)
	enc := transport.NewEncoder(conn)
	s := &memberSession{
		g:        g,
		leases:   make(map[string]*memberLease),
		unfenced: make(map[string]bool),
		down:     make(map[string]bool),
		bufs:     make(map[string][]transport.Msg),
	}
	s.adopt(g.View())
	g.smu.Lock()
	g.sessions[s] = struct{}{}
	g.smu.Unlock()
	healthy := false
	defer func() {
		g.smu.Lock()
		delete(g.sessions, s)
		g.smu.Unlock()
		// Closing races no resharder: either the session is registered
		// (resharder fences it) or it is gone from the registry before
		// the resharder collects sessions.
		s.lmu.Lock()
		for id, l := range s.leases {
			g.rc.Release(l.addr, l.bc, healthy && !s.unfenced[id])
			delete(s.leases, id)
		}
		s.lmu.Unlock()
	}()
	err := g.serveFrames(s, dec, enc)
	if err == nil {
		healthy = true
	}
	return err
}

// adopt installs a view into the session: owner table resolved, leases
// to members no longer in the view (or re-addressed) released.
func (s *memberSession) adopt(v membership.View) {
	s.view = v
	s.owners = make([][]int, v.NumShards)
	for sh := range s.owners {
		s.owners[sh] = v.Owners(sh)
	}
	s.lmu.Lock()
	for id, l := range s.leases {
		mem, ok := v.Member(id)
		if ok && mem.Addr == l.addr {
			continue
		}
		// Reshard fenced everything before the epoch switched, so the
		// lease carries nothing unfenced (a failed fence poisoned the
		// session before it could adopt).
		s.g.rc.Release(l.addr, l.bc, true)
		delete(s.leases, id)
		delete(s.unfenced, id)
	}
	for id := range s.down {
		if _, ok := v.Member(id); !ok {
			delete(s.down, id)
		}
	}
	s.lmu.Unlock()
}

// lease returns the session's connection to the member, dialing one if
// needed.
func (s *memberSession) lease(mem membership.Member) (*transport.BackendConn, error) {
	s.lmu.Lock()
	l := s.leases[mem.ID]
	s.lmu.Unlock()
	if l != nil {
		return l.bc, nil
	}
	bc, err := s.g.rc.Lease(mem.Addr)
	if err != nil {
		return nil, err
	}
	s.lmu.Lock()
	s.leases[mem.ID] = &memberLease{addr: mem.Addr, bc: bc}
	s.lmu.Unlock()
	return bc, nil
}

// drop closes and forgets a lease that saw an error.
func (s *memberSession) drop(id string) {
	s.lmu.Lock()
	l := s.leases[id]
	delete(s.leases, id)
	s.lmu.Unlock()
	if l != nil {
		s.g.rc.Release(l.addr, l.bc, false)
	}
}

// fenceForReshard round-trips a fence on every lease carrying unfenced
// forwards. Called via fenceSessions under the exclusive view lock —
// by Reshard before cutting snapshots and by beginQuery before a
// quorum read — so the session is parked between batches and its
// leases are quiescent. A fence failure poisons the session (its
// forwards are indeterminate) but fencing continues on the other
// leases — every member copy that can still be confirmed applied
// should be.
func (s *memberSession) fenceForReshard() {
	s.lmu.Lock()
	type pending struct {
		id string
		l  *memberLease
	}
	var todo []pending
	for id, l := range s.leases {
		if s.unfenced[id] {
			todo = append(todo, pending{id, l})
		}
	}
	s.lmu.Unlock()
	for _, p := range todo {
		var err error
		if s.g.m > 0 {
			_, err = p.l.bc.FetchShardDomainSums(0)
		} else {
			_, err = p.l.bc.FetchShardSums(0)
		}
		if err != nil {
			if s.poisoned == nil {
				s.poisoned = fmt.Errorf("member %s connection failed with unacknowledged forwards during a fence: %w", p.id, err)
			}
			s.drop(p.id)
			continue
		}
		s.lmu.Lock()
		s.unfenced[p.id] = false
		s.lmu.Unlock()
	}
}

// forward partitions one run of validated ingest messages by virtual
// shard and ships each message to every owner of its shard — K-way
// replicated ingest. A member write failure fails the session exactly
// as on Gateway: the sub-batch is indeterminate there, and only the
// client can decide what to re-send. Down members are not skipped;
// ingest requires every replica to accept (reads survive dead replicas,
// writes do not mask them).
func (s *memberSession) forward(ms []transport.Msg) error {
	for id := range s.bufs {
		s.bufs[id] = s.bufs[id][:0]
	}
	for _, m := range ms {
		sh := membership.ShardOf(m.User, s.view.NumShards)
		for _, oi := range s.owners[sh] {
			id := s.view.Members[oi].ID
			s.bufs[id] = append(s.bufs[id], m)
		}
	}
	for _, mem := range s.view.Members {
		buf := s.bufs[mem.ID]
		if len(buf) == 0 {
			continue
		}
		bc, err := s.lease(mem)
		if err != nil {
			return fmt.Errorf("forwarding to member %s: %w", mem.ID, err)
		}
		err = bc.SendBatch(buf)
		if err == nil {
			err = bc.Flush()
		}
		if err != nil {
			s.drop(mem.ID)
			return fmt.Errorf("member %s connection failed with unacknowledged forwards: %w", mem.ID, err)
		}
		s.lmu.Lock()
		s.unfenced[mem.ID] = true
		s.lmu.Unlock()
	}
	return nil
}

// memberFetchAttempts bounds fresh connections per member for a clean
// quorum fetch; each retry re-dials with the replica client's backoff.
const memberFetchAttempts = 2

// fetchMember fetches every owned shard of one member sequentially on
// its session lease (the first fetch fences prior forwards). A failure
// over unfenced forwards is fatal to the session; a clean failure
// retries once on a fresh connection and then reports the member down.
func fetchMember[T any](s *memberSession, mem membership.Member, shards []int,
	fetch func(*transport.BackendConn, int) (T, error)) (frames []T, fatal bool, err error) {
	var lastErr error
	for attempt := 0; attempt < memberFetchAttempts; attempt++ {
		bc, err := s.lease(mem)
		if err != nil {
			lastErr = err
			continue
		}
		frames = frames[:0]
		ok := true
		for _, sh := range shards {
			f, err := fetch(bc, sh)
			if err != nil {
				s.lmu.Lock()
				unfenced := s.unfenced[mem.ID]
				s.lmu.Unlock()
				s.drop(mem.ID)
				if unfenced {
					return nil, true, fmt.Errorf("member %s connection failed with unacknowledged forwards: %w", mem.ID, err)
				}
				lastErr = err
				ok = false
				break
			}
			frames = append(frames, f)
		}
		if !ok {
			continue
		}
		s.lmu.Lock()
		s.unfenced[mem.ID] = false
		s.lmu.Unlock()
		return frames, false, nil
	}
	return nil, false, fmt.Errorf("member %s unreachable: %w", mem.ID, lastErr)
}

// quorumGather fetches every live owner's copy of every shard in
// parallel across members (sequential per member, so each member's
// first fetch fences that member's prior forwards), verifies the copies
// of each shard agree by exact integer comparison, and returns one
// chosen frame per shard in shard order. equal must compare frames
// exactly; fetch round-trips one shard.
func quorumGather[T any](s *memberSession,
	fetch func(*transport.BackendConn, int) (T, error),
	equal func(a, b T) bool) ([]T, error) {
	v := &s.view
	type result struct {
		frames []T
		fatal  bool
		err    error
	}
	ownedBy := make([][]int, len(v.Members))
	for sh, owners := range s.owners {
		for _, oi := range owners {
			ownedBy[oi] = append(ownedBy[oi], sh)
		}
	}
	results := make([]result, len(v.Members))
	var wg sync.WaitGroup
	for i := range v.Members {
		s.lmu.Lock()
		isDown := s.down[v.Members[i].ID]
		s.lmu.Unlock()
		if isDown || len(ownedBy[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := time.Now()
			frames, fatal, err := fetchMember(s, v.Members[i], ownedBy[i], fetch)
			results[i] = result{frames: frames, fatal: fatal, err: err}
			if err == nil && s.g.Metrics != nil {
				s.g.Metrics.ObserveScatter(i, time.Since(start))
			}
		}(i)
	}
	wg.Wait()

	votes := make([][]T, v.NumShards)    // per-shard frames, owner order
	voters := make([][]int, v.NumShards) // the member index behind each vote
	for i := range v.Members {
		r := &results[i]
		if len(ownedBy[i]) == 0 {
			continue
		}
		if r.fatal {
			return nil, r.err
		}
		if r.err != nil {
			// Clean failure: mark down for the rest of the session and
			// answer its shards from the surviving replicas.
			s.lmu.Lock()
			s.down[v.Members[i].ID] = true
			s.lmu.Unlock()
			if s.g.ErrorLog != nil {
				s.g.ErrorLog(fmt.Errorf("cluster: quorum read skipping member: %w", r.err))
			}
			continue
		}
		if r.frames == nil {
			// Member was already down when the gather started.
			continue
		}
		for j, sh := range ownedBy[i] {
			votes[sh] = append(votes[sh], r.frames[j])
			voters[sh] = append(voters[sh], i)
		}
	}

	chosen := make([]T, v.NumShards)
	for sh := 0; sh < v.NumShards; sh++ {
		vs := votes[sh]
		if len(vs) == 0 {
			return nil, fmt.Errorf("no live replica for shard %d (all %d owners down)", sh, len(s.owners[sh]))
		}
		if len(vs) < v.K {
			s.g.shortReads.Add(1)
		}
		for j := 1; j < len(vs); j++ {
			if !equal(vs[0], vs[j]) {
				s.g.divergences.Add(1)
				return nil, fmt.Errorf("replica divergence on shard %d: members %s and %s disagree on raw sums",
					sh, v.Members[voters[sh][0]].ID, v.Members[voters[sh][j]].ID)
			}
		}
		chosen[sh] = vs[0]
	}
	return chosen, nil
}

// sumsEqual compares two raw-sums frames exactly — integer for integer.
func sumsEqual(a, b transport.SumsFrame) bool {
	if a.D != b.D || a.Scale != b.Scale || a.Users != b.Users ||
		len(a.PerOrder) != len(b.PerOrder) || len(a.Sums) != len(b.Sums) {
		return false
	}
	for i := range a.PerOrder {
		if a.PerOrder[i] != b.PerOrder[i] {
			return false
		}
	}
	for i := range a.Sums {
		if a.Sums[i] != b.Sums[i] {
			return false
		}
	}
	return true
}

// domainSumsEqual compares two per-item raw-sums frames exactly.
func domainSumsEqual(a, b transport.DomainSumsFrame) bool {
	if a.D != b.D || a.M != b.M || a.Scale != b.Scale || len(a.Items) != len(b.Items) {
		return false
	}
	for x := range a.Items {
		ai, bi := &a.Items[x], &b.Items[x]
		if ai.Users != bi.Users || len(ai.PerOrder) != len(bi.PerOrder) || len(ai.Sums) != len(bi.Sums) {
			return false
		}
		for i := range ai.PerOrder {
			if ai.PerOrder[i] != bi.PerOrder[i] {
				return false
			}
		}
		for i := range ai.Sums {
			if ai.Sums[i] != bi.Sums[i] {
				return false
			}
		}
	}
	return true
}

// gather runs a Boolean quorum read and folds the chosen per-shard
// frames, in fixed shard order, into a fresh serial server.
func (s *memberSession) gather() (*protocol.Server, []transport.SumsFrame, error) {
	frames, err := quorumGather(s, (*transport.BackendConn).FetchShardSums, sumsEqual)
	if err != nil {
		return nil, nil, err
	}
	srv := protocol.NewServer(s.g.d, s.g.scale)
	for sh := range frames {
		if err := frames[sh].MergeInto(srv); err != nil {
			return nil, nil, fmt.Errorf("merging sums of shard %d: %w", sh, err)
		}
	}
	return srv, frames, nil
}

// gatherDomain runs a domain quorum read, returning the chosen per-
// shard frames in shard order.
func (s *memberSession) gatherDomain() ([]transport.DomainSumsFrame, error) {
	return quorumGather(s, (*transport.BackendConn).FetchShardDomainSums, domainSumsEqual)
}

// foldDomain merges chosen per-shard frames into a fresh serial domain
// server (fixed shard order keeps answers bit-for-bit).
func (g *MemberGateway) foldDomain(frames []transport.DomainSumsFrame) (*hh.DomainServer, error) {
	ds := hh.NewDomainServer(g.d, g.m, g.scale, 1)
	for sh := range frames {
		if err := frames[sh].MergeInto(ds); err != nil {
			return nil, fmt.Errorf("merging domain sums of shard %d: %w", sh, err)
		}
	}
	return ds, nil
}

// mergeMemberFrames folds chosen per-shard frames into one cluster-wide
// SumsFrame (the MsgSums answer, so member gateways stack like plain
// gateways).
func (g *MemberGateway) mergeMemberFrames(frames []transport.SumsFrame) transport.SumsFrame {
	out := transport.SumsFrame{
		D:        g.d,
		Scale:    g.scale,
		PerOrder: make([]int64, dyadic.NumOrders(g.d)),
		Sums:     make([]int64, dyadic.TotalIntervals(g.d)),
	}
	for _, f := range frames {
		out.Users += f.Users
		for h, v := range f.PerOrder {
			out.PerOrder[h] += v
		}
		for i, v := range f.Sums {
			out.Sums[i] += v
		}
	}
	return out
}

// mergeMemberDomainFrames folds chosen per-shard frames into one
// cluster-wide DomainSumsFrame (the MsgDomainSums answer). Each frame's
// configuration is checked against the gateway's.
func (g *MemberGateway) mergeMemberDomainFrames(frames []transport.DomainSumsFrame) (transport.DomainSumsFrame, error) {
	out := transport.DomainSumsFrame{
		D:     g.d,
		M:     g.m,
		Scale: g.scale,
		Items: make([]transport.ItemSums, g.m),
	}
	for x := range out.Items {
		out.Items[x] = transport.ItemSums{
			PerOrder: make([]int64, dyadic.NumOrders(g.d)),
			Sums:     make([]int64, dyadic.TotalIntervals(g.d)),
		}
	}
	for sh, f := range frames {
		if f.D != g.d || f.M != g.m || f.Scale != g.scale || len(f.Items) != g.m {
			return transport.DomainSumsFrame{}, fmt.Errorf(
				"shard %d serves d=%d m=%d scale=%v (%d items), gateway configured with d=%d m=%d scale=%v",
				sh, f.D, f.M, f.Scale, len(f.Items), g.d, g.m, g.scale)
		}
		for x, it := range f.Items {
			o := &out.Items[x]
			o.Users += it.Users
			for h, v := range it.PerOrder {
				o.PerOrder[h] += v
			}
			for i, v := range it.Sums {
				o.Sums[i] += v
			}
		}
	}
	return out, nil
}

func (g *MemberGateway) serveFrames(s *memberSession, dec *transport.Decoder, enc *transport.Encoder) error {
	for {
		ms, err := dec.NextBatch()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil // clean client close or gateway shutdown
			}
			return err
		}
		if err := g.runBatch(s, ms, dec, enc); err != nil {
			return err
		}
	}
}

// forwardRun ships one run of ingest messages under the shared view
// lock: Reshard cannot interleave with a run, so a run forwards under
// exactly one epoch (and its copies are fenced before any snapshot of
// them is cut).
func (g *MemberGateway) forwardRun(s *memberSession, run []transport.Msg) error {
	g.vmu.RLock()
	defer g.vmu.RUnlock()
	if s.poisoned != nil {
		return s.poisoned
	}
	if s.view.Epoch != g.view.Epoch {
		s.adopt(g.view.Clone())
	}
	return s.forward(run)
}

// beginQuery prepares a quorum read: it takes the exclusive view lock —
// parking every ingest session between batches — and fences every
// outstanding forward, so all replicas sit at the same settled prefix
// of the ingest stream. Without the global fence, a read racing another
// session's in-flight forward would see one replica with the sub-batch
// applied and one without, and exact-integer divergence detection would
// misfire on healthy replicas. The returned unlock must be called when
// the read (and its answer) is done.
func (g *MemberGateway) beginQuery(s *memberSession) (unlock func(), err error) {
	g.vmu.Lock()
	g.fenceSessions()
	if s.poisoned != nil {
		g.vmu.Unlock()
		return nil, s.poisoned
	}
	if s.view.Epoch != g.view.Epoch {
		s.adopt(g.view.Clone())
	}
	return g.vmu.Unlock, nil
}

// runBatch processes one decoded client batch: ingest runs forward
// under the shared view lock, queries quorum-read under the exclusive
// one (see beginQuery).
func (g *MemberGateway) runBatch(s *memberSession, ms []transport.Msg, dec *transport.Decoder, enc *transport.Encoder) error {
	if g.m > 0 {
		return g.runDomainBatch(s, ms, dec, enc)
	}
	isQuery := func(m transport.Msg) bool {
		return m.Type == transport.MsgQuery || m.Type == transport.MsgQueryV2 || m.Type == transport.MsgSums
	}
	acked := dec.AckedBatch()
	start := time.Now()
	ingest := 0
	for _, m := range ms {
		if acked && isQuery(m) {
			return fmt.Errorf("message type %d (query) inside acked batch", m.Type)
		}
		switch m.Type {
		case transport.MsgQuery:
			if m.T < 1 || m.T > g.d {
				return fmt.Errorf("query time %d out of range [1..%d]", m.T, g.d)
			}
		case transport.MsgQueryV2:
			if err := transport.ValidateQuery(g.d, m); err != nil {
				return err
			}
		case transport.MsgSums:
			// No parameters to validate.
		default:
			if err := transport.ValidateIngest(g.d, m); err != nil {
				return err
			}
			ingest++
		}
	}
	shed, holding, err := g.admitBatch(acked, enc)
	if err != nil {
		return err
	}
	if shed {
		return nil
	}
	err = transport.BatchRuns(ms, isQuery,
		func(run []transport.Msg) error { return g.forwardRun(s, run) },
		func(m transport.Msg) error {
			if g.Metrics != nil {
				g.Metrics.CountQuery("member", transport.QueryKindName(m))
			}
			unlock, err := g.beginQuery(s)
			if err != nil {
				return err
			}
			defer unlock()
			srv, frames, err := s.gather()
			if err != nil {
				return err
			}
			switch m.Type {
			case transport.MsgQuery:
				if err := enc.Encode(transport.Estimate(m.T, srv.EstimateAt(m.T))); err != nil {
					return err
				}
			case transport.MsgQueryV2:
				ans, err := transport.AnswerQuery(srv, m)
				if err != nil {
					return err
				}
				if err := enc.EncodeAnswer(ans); err != nil {
					return err
				}
			case transport.MsgSums:
				if err := enc.EncodeSums(g.mergeMemberFrames(frames)); err != nil {
					return err
				}
			}
			return enc.Flush()
		})
	if holding {
		g.Queue.Release()
	}
	if err != nil {
		return err
	}
	return g.finishBatch(acked, enc, ingest, start)
}

// runDomainBatch is runBatch for a domain-mode member gateway.
func (g *MemberGateway) runDomainBatch(s *memberSession, ms []transport.Msg, dec *transport.Decoder, enc *transport.Encoder) error {
	isQuery := func(m transport.Msg) bool {
		return m.Type == transport.MsgDomainQuery || m.Type == transport.MsgDomainSums
	}
	acked := dec.AckedBatch()
	start := time.Now()
	ingest := 0
	for _, m := range ms {
		if acked && isQuery(m) {
			return fmt.Errorf("message type %d (query) inside acked batch", m.Type)
		}
		switch m.Type {
		case transport.MsgDomainQuery:
			if err := transport.ValidateDomainQuery(g.d, g.m, m); err != nil {
				return err
			}
		case transport.MsgDomainSums:
			// No parameters to validate.
		default:
			if err := transport.ValidateDomainIngest(g.d, g.m, m); err != nil {
				return err
			}
			ingest++
		}
	}
	shed, holding, err := g.admitBatch(acked, enc)
	if err != nil {
		return err
	}
	if shed {
		return nil
	}
	err = transport.BatchRuns(ms, isQuery,
		func(run []transport.Msg) error { return g.forwardRun(s, run) },
		func(m transport.Msg) error {
			if g.Metrics != nil {
				g.Metrics.CountQuery("member-domain", transport.QueryKindName(m))
			}
			unlock, err := g.beginQuery(s)
			if err != nil {
				return err
			}
			defer unlock()
			frames, err := s.gatherDomain()
			if err != nil {
				return err
			}
			switch m.Type {
			case transport.MsgDomainQuery:
				ds, err := g.foldDomain(frames)
				if err != nil {
					return err
				}
				ans, err := transport.AnswerDomainQuery(ds, m)
				if err != nil {
					return err
				}
				if err := enc.EncodeDomainAnswer(ans); err != nil {
					return err
				}
			case transport.MsgDomainSums:
				merged, err := g.mergeMemberDomainFrames(frames)
				if err != nil {
					return err
				}
				if err := enc.EncodeDomainSums(merged); err != nil {
					return err
				}
			}
			return enc.Flush()
		})
	if holding {
		g.Queue.Release()
	}
	if err != nil {
		return err
	}
	return g.finishBatch(acked, enc, ingest, start)
}

// admitBatch mirrors Gateway.admitBatch at the member gateway's front
// door.
func (g *MemberGateway) admitBatch(acked bool, enc *transport.Encoder) (shed, holding bool, err error) {
	if g.Queue == nil {
		return false, false, nil
	}
	if !acked {
		g.Queue.Acquire()
		return false, true, nil
	}
	if g.Queue.TryAcquire() {
		return false, true, nil
	}
	if g.Metrics != nil {
		g.Metrics.ObserveShed()
	}
	if err := enc.EncodeBatchAck(false); err != nil {
		return false, false, err
	}
	return true, false, enc.Flush()
}

// finishBatch mirrors Gateway.finishBatch.
func (g *MemberGateway) finishBatch(acked bool, enc *transport.Encoder, n int, start time.Time) error {
	if acked {
		if err := enc.EncodeBatchAck(true); err != nil {
			return err
		}
		if err := enc.Flush(); err != nil {
			return err
		}
	}
	if g.Metrics != nil {
		g.Metrics.ObserveBatch(n, time.Since(start), acked)
	}
	return nil
}

// Shutdown drains the gateway gracefully, mirroring Gateway.Shutdown.
func (g *MemberGateway) Shutdown(grace time.Duration) error {
	g.mu.Lock()
	g.closed = true
	l := g.listener
	g.listener = nil
	g.mu.Unlock()
	var lerr error
	if l != nil {
		lerr = l.Close()
	}
	done := make(chan struct{})
	go func() {
		g.wg.Wait()
		close(done)
	}()
	timer := time.NewTimer(grace)
	defer timer.Stop()
	select {
	case <-done:
	case <-timer.C:
		g.mu.Lock()
		for conn := range g.conns {
			conn.Close()
		}
		g.mu.Unlock()
		<-done
	}
	g.rc.Close()
	return lerr
}

// Close stops accepting connections, closes the listener and all live
// client connections, and unblocks Serve.
func (g *MemberGateway) Close() error {
	g.mu.Lock()
	g.closed = true
	l := g.listener
	g.listener = nil
	for conn := range g.conns {
		conn.Close()
	}
	g.mu.Unlock()
	g.rc.Close()
	if l != nil {
		return l.Close()
	}
	return nil
}

func (g *MemberGateway) isClosed() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.closed
}

func (g *MemberGateway) track(conn net.Conn) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return false
	}
	g.conns[conn] = struct{}{}
	if g.Metrics != nil {
		g.Metrics.ActiveConns.Add(1)
	}
	return true
}

func (g *MemberGateway) untrack(conn net.Conn) {
	g.mu.Lock()
	delete(g.conns, conn)
	if g.Metrics != nil {
		g.Metrics.ActiveConns.Add(-1)
	}
	g.mu.Unlock()
	conn.Close()
}
