// Package dyadic implements the dyadic-interval machinery of Section 3 of
// the paper: intervals I_{h,j} (Definition 3.2), the decomposition C(t) of
// a prefix [1..t] into at most ⌈log t⌉ disjoint dyadic intervals with
// distinct orders (Fact 3.8), and flat tree indexing used by the server to
// store one accumulator per interval.
//
// Throughout, d is the number of time periods and must be a power of two;
// time periods and interval indices j are 1-based, matching the paper.
package dyadic

import (
	"fmt"
	"math/bits"
)

// Interval is the dyadic interval I_{h,j} = {(j−1)·2^h + 1, …, j·2^h}.
type Interval struct {
	Order int // h ∈ [0 .. log d]
	Index int // j ∈ [1 .. d/2^h]
}

// Start returns the first time period covered by the interval.
func (iv Interval) Start() int { return (iv.Index-1)<<uint(iv.Order) + 1 }

// End returns the last time period covered by the interval.
func (iv Interval) End() int { return iv.Index << uint(iv.Order) }

// Len returns the number of time periods covered: 2^h.
func (iv Interval) Len() int { return 1 << uint(iv.Order) }

// Contains reports whether time period t lies in the interval.
func (iv Interval) Contains(t int) bool { return t >= iv.Start() && t <= iv.End() }

// String renders the interval as I{h,j}=[start..end].
func (iv Interval) String() string {
	return fmt.Sprintf("I{%d,%d}=[%d..%d]", iv.Order, iv.Index, iv.Start(), iv.End())
}

// IsPow2 reports whether d is a positive power of two.
func IsPow2(d int) bool { return d > 0 && d&(d-1) == 0 }

// Log2 returns log₂ d for a power of two d, and panics otherwise.
func Log2(d int) int {
	if !IsPow2(d) {
		panic(fmt.Sprintf("dyadic: %d is not a positive power of two", d))
	}
	return bits.TrailingZeros(uint(d))
}

// NumOrders returns 1 + log₂ d, the number of distinct orders over [d].
func NumOrders(d int) int { return Log2(d) + 1 }

// CountAtOrder returns |ISet[h]| = d / 2^h, the number of dyadic intervals
// of order h over [d].
func CountAtOrder(d, h int) int {
	logd := Log2(d)
	if h < 0 || h > logd {
		panic(fmt.Sprintf("dyadic: order %d out of range [0..%d]", h, logd))
	}
	return d >> uint(h)
}

// TotalIntervals returns |ISet| = 2d − 1, the number of dyadic intervals
// over [d] across all orders.
func TotalIntervals(d int) int {
	Log2(d) // validate
	return 2*d - 1
}

// All enumerates every dyadic interval over [d], ordered by increasing
// order h, then by index j.
func All(d int) []Interval {
	out := make([]Interval, 0, TotalIntervals(d))
	for h := 0; h <= Log2(d); h++ {
		for j := 1; j <= CountAtOrder(d, h); j++ {
			out = append(out, Interval{Order: h, Index: j})
		}
	}
	return out
}

// Decompose returns C(t): the minimum collection of disjoint dyadic
// intervals with distinct orders whose union is [1..t] (Fact 3.8),
// ordered left to right (decreasing order h). It panics if t is outside
// [1..d] or d is not a power of two.
//
// The construction reads the binary representation of t: each set bit
// 2^h contributes the next interval of order h after the prefix covered
// so far.
func Decompose(t, d int) []Interval {
	logd := Log2(d)
	if t < 1 || t > d {
		panic(fmt.Sprintf("dyadic: t=%d out of range [1..%d]", t, d))
	}
	out := make([]Interval, 0, bits.OnesCount(uint(t)))
	covered := 0
	for h := logd; h >= 0; h-- {
		if t&(1<<uint(h)) != 0 {
			covered += 1 << uint(h)
			out = append(out, Interval{Order: h, Index: covered >> uint(h)})
		}
	}
	return out
}

// DecomposeRange returns a minimum collection of disjoint dyadic
// intervals whose union is [l..r] (1 ≤ l ≤ r ≤ d). As noted after
// Fact 3.8 in the paper, a general range needs at most 2·⌈log₂(r−l+1)⌉
// intervals and, unlike prefix decompositions, may repeat orders. The
// result is ordered left to right.
//
// The construction is the classic segment-tree walk: grow greedily from
// l with the largest aligned block that fits, which yields blocks of
// increasing then decreasing order.
func DecomposeRange(l, r, d int) []Interval {
	Log2(d) // validate d
	if l < 1 || r > d || l > r {
		panic(fmt.Sprintf("dyadic: range [%d..%d] invalid for d=%d", l, r, d))
	}
	var out []Interval
	for l <= r {
		// Largest h such that 2^h divides (l−1) and l−1+2^h ≤ r.
		h := 0
		for {
			next := 1 << uint(h+1)
			if (l-1)%next != 0 || l-1+next > r {
				break
			}
			h++
		}
		out = append(out, Interval{Order: h, Index: (l-1)>>uint(h) + 1})
		l += 1 << uint(h)
	}
	return out
}

// ReportingInterval returns the dyadic interval of order h that ends
// exactly at time t, i.e. I_{h, t/2^h}, and whether t is a reporting time
// for order h (that is, whether 2^h divides t). This is the interval whose
// partial sum a client with sampled order h reports at time t
// (Algorithm 1, lines 5–8).
func ReportingInterval(t, h int) (Interval, bool) {
	if t < 1 || h < 0 {
		panic("dyadic: ReportingInterval requires t >= 1, h >= 0")
	}
	if t&(1<<uint(h)-1) != 0 {
		return Interval{}, false
	}
	return Interval{Order: h, Index: t >> uint(h)}, true
}

// Tree provides O(1) flat indexing of all dyadic intervals over [d],
// used by the server to keep one accumulator per interval. Index layout
// is order-major: all order-0 intervals first, then order 1, and so on.
type Tree struct {
	d      int
	logd   int
	offset []int // offset[h] is the flat index of I_{h,1}
}

// NewTree constructs the index for a power-of-two horizon d.
func NewTree(d int) *Tree {
	logd := Log2(d)
	off := make([]int, logd+2)
	for h := 0; h <= logd; h++ {
		off[h+1] = off[h] + CountAtOrder(d, h)
	}
	return &Tree{d: d, logd: logd, offset: off}
}

// D returns the horizon the tree was built for.
func (tr *Tree) D() int { return tr.d }

// Size returns the total number of intervals (2d − 1).
func (tr *Tree) Size() int { return tr.offset[tr.logd+1] }

// FlatIndex maps I_{h,j} to its position in [0, Size()).
func (tr *Tree) FlatIndex(iv Interval) int {
	if iv.Order < 0 || iv.Order > tr.logd {
		panic("dyadic: order out of range")
	}
	if iv.Index < 1 || iv.Index > tr.d>>iv.Order {
		panic("dyadic: index out of range")
	}
	return tr.offset[iv.Order] + iv.Index - 1
}

// IntervalAt inverts FlatIndex.
func (tr *Tree) IntervalAt(flat int) Interval {
	if flat < 0 || flat >= tr.Size() {
		panic("dyadic: flat index out of range")
	}
	h := 0
	for flat >= tr.offset[h+1] {
		h++
	}
	return Interval{Order: h, Index: flat - tr.offset[h] + 1}
}
