package dyadic

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestIntervalGeometry(t *testing.T) {
	// Example 3.3: all dyadic intervals over [4].
	cases := []struct {
		iv         Interval
		start, end int
	}{
		{Interval{0, 1}, 1, 1},
		{Interval{0, 2}, 2, 2},
		{Interval{0, 3}, 3, 3},
		{Interval{0, 4}, 4, 4},
		{Interval{1, 1}, 1, 2},
		{Interval{1, 2}, 3, 4},
		{Interval{2, 1}, 1, 4},
	}
	for _, c := range cases {
		if c.iv.Start() != c.start || c.iv.End() != c.end {
			t.Errorf("%v: got [%d..%d], want [%d..%d]", c.iv, c.iv.Start(), c.iv.End(), c.start, c.end)
		}
		if c.iv.Len() != c.end-c.start+1 {
			t.Errorf("%v: Len = %d", c.iv, c.iv.Len())
		}
		if !c.iv.Contains(c.start) || !c.iv.Contains(c.end) {
			t.Errorf("%v does not contain its endpoints", c.iv)
		}
		if c.iv.Contains(c.start-1) || c.iv.Contains(c.end+1) {
			t.Errorf("%v contains points outside", c.iv)
		}
	}
}

func TestIsPow2AndLog2(t *testing.T) {
	for _, d := range []int{1, 2, 4, 1024} {
		if !IsPow2(d) {
			t.Errorf("IsPow2(%d) = false", d)
		}
	}
	for _, d := range []int{0, -4, 3, 6, 1023} {
		if IsPow2(d) {
			t.Errorf("IsPow2(%d) = true", d)
		}
	}
	if Log2(1) != 0 || Log2(1024) != 10 {
		t.Error("Log2 wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("Log2(3) did not panic")
		}
	}()
	Log2(3)
}

func TestCounts(t *testing.T) {
	if NumOrders(16) != 5 {
		t.Errorf("NumOrders(16) = %d, want 5", NumOrders(16))
	}
	if CountAtOrder(16, 0) != 16 || CountAtOrder(16, 4) != 1 {
		t.Error("CountAtOrder wrong")
	}
	if TotalIntervals(16) != 31 {
		t.Errorf("TotalIntervals(16) = %d, want 31", TotalIntervals(16))
	}
	if got := len(All(16)); got != 31 {
		t.Errorf("len(All(16)) = %d, want 31", got)
	}
}

func TestDecomposeFigure1(t *testing.T) {
	// Figure 1 / Fact 3.8: C(3) over d=4 is {I_{1,1}, I_{0,3}} = {{1,2},{3}}.
	got := Decompose(3, 4)
	want := []Interval{{1, 1}, {0, 3}}
	if len(got) != len(want) {
		t.Fatalf("C(3) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("C(3) = %v, want %v", got, want)
		}
	}
}

func TestDecomposeProperties(t *testing.T) {
	const d = 1024
	for tt := 1; tt <= d; tt++ {
		c := Decompose(tt, d)
		// Fact 3.8: |C(t)| = popcount(t) <= ceil(log2 t) + 1 and intervals
		// are disjoint, contiguous from 1, with strictly decreasing orders.
		if len(c) != bits.OnesCount(uint(tt)) {
			t.Fatalf("|C(%d)| = %d, want popcount %d", tt, len(c), bits.OnesCount(uint(tt)))
		}
		covered := 0
		prevOrder := 11
		for _, iv := range c {
			if iv.Order >= prevOrder {
				t.Fatalf("C(%d): orders not strictly decreasing: %v", tt, c)
			}
			prevOrder = iv.Order
			if iv.Start() != covered+1 {
				t.Fatalf("C(%d): gap before %v", tt, iv)
			}
			covered = iv.End()
		}
		if covered != tt {
			t.Fatalf("C(%d) covers [1..%d]", tt, covered)
		}
	}
}

func TestDecomposePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"t=0":      func() { Decompose(0, 8) },
		"t>d":      func() { Decompose(9, 8) },
		"bad d":    func() { Decompose(1, 6) },
		"CountBad": func() { CountAtOrder(8, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestReportingInterval(t *testing.T) {
	// A client with order h reports at exactly the multiples of 2^h, and
	// the reported interval ends at the current time.
	for h := 0; h <= 6; h++ {
		for tt := 1; tt <= 128; tt++ {
			iv, ok := ReportingInterval(tt, h)
			wantOK := tt%(1<<uint(h)) == 0
			if ok != wantOK {
				t.Fatalf("ReportingInterval(%d,%d) ok=%v, want %v", tt, h, ok, wantOK)
			}
			if ok {
				if iv.End() != tt || iv.Order != h {
					t.Fatalf("ReportingInterval(%d,%d) = %v", tt, h, iv)
				}
			}
		}
	}
}

func TestTreeBijection(t *testing.T) {
	tr := NewTree(64)
	if tr.Size() != 127 {
		t.Fatalf("Size = %d, want 127", tr.Size())
	}
	seen := make(map[int]bool)
	for _, iv := range All(64) {
		f := tr.FlatIndex(iv)
		if f < 0 || f >= tr.Size() {
			t.Fatalf("FlatIndex(%v) = %d out of range", iv, f)
		}
		if seen[f] {
			t.Fatalf("FlatIndex collision at %d", f)
		}
		seen[f] = true
		if back := tr.IntervalAt(f); back != iv {
			t.Fatalf("IntervalAt(FlatIndex(%v)) = %v", iv, back)
		}
	}
}

func TestTreeQuickRoundTrip(t *testing.T) {
	tr := NewTree(256)
	f := func(raw uint16) bool {
		flat := int(raw) % tr.Size()
		return tr.FlatIndex(tr.IntervalAt(flat)) == flat
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTreePanics(t *testing.T) {
	tr := NewTree(8)
	for name, f := range map[string]func(){
		"order":   func() { tr.FlatIndex(Interval{4, 1}) },
		"index0":  func() { tr.FlatIndex(Interval{0, 0}) },
		"indexHi": func() { tr.FlatIndex(Interval{0, 9}) },
		"flatNeg": func() { tr.IntervalAt(-1) },
		"flatHi":  func() { tr.IntervalAt(15) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestDecomposeSumRelation(t *testing.T) {
	// Observation 3.9 structural prerequisite: summing interval lengths in
	// C(t) reconstructs t, for arbitrary power-of-two horizons.
	f := func(tRaw uint16, dExp uint8) bool {
		d := 1 << (dExp%12 + 1)
		tt := int(tRaw)%d + 1
		sum := 0
		for _, iv := range Decompose(tt, d) {
			sum += iv.Len()
		}
		return sum == tt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	got := Interval{1, 2}.String()
	if got != "I{1,2}=[3..4]" {
		t.Errorf("String = %q", got)
	}
}

func TestDecomposeRangeExamples(t *testing.T) {
	// The paper's example after Fact 3.8: [2..3] decomposes into {2},{3}
	// (two intervals of the same order).
	got := DecomposeRange(2, 3, 4)
	want := []Interval{{0, 2}, {0, 3}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("DecomposeRange(2,3,4) = %v, want %v", got, want)
	}
	// A prefix range must match Decompose up to ordering by position.
	gotPrefix := DecomposeRange(1, 6, 8)
	cover := 0
	for _, iv := range gotPrefix {
		cover += iv.Len()
	}
	if cover != 6 {
		t.Errorf("prefix cover = %d", cover)
	}
	// Whole domain is a single interval.
	if got := DecomposeRange(1, 8, 8); len(got) != 1 || got[0] != (Interval{3, 1}) {
		t.Errorf("DecomposeRange(1,8,8) = %v", got)
	}
}

func TestDecomposeRangeProperties(t *testing.T) {
	const d = 256
	for l := 1; l <= d; l += 3 {
		for r := l; r <= d; r += 5 {
			c := DecomposeRange(l, r, d)
			// Disjoint, contiguous, exact cover.
			pos := l
			for _, iv := range c {
				if iv.Start() != pos {
					t.Fatalf("[%d..%d]: gap before %v in %v", l, r, iv, c)
				}
				pos = iv.End() + 1
			}
			if pos != r+1 {
				t.Fatalf("[%d..%d]: cover ends at %d", l, r, pos-1)
			}
			// Size bound: at most 2·⌈log₂(r−l+1)⌉ + 1 intervals.
			n := r - l + 1
			limit := 1
			for 1<<uint(limit) < n {
				limit++
			}
			if len(c) > 2*limit+1 {
				t.Fatalf("[%d..%d]: %d intervals exceeds bound %d", l, r, len(c), 2*limit+1)
			}
		}
	}
}

func TestDecomposeRangePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"l<1": func() { DecomposeRange(0, 3, 8) },
		"r>d": func() { DecomposeRange(1, 9, 8) },
		"l>r": func() { DecomposeRange(5, 4, 8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
