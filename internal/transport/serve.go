package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// IngestServer is the network half of the batch-ingest aggregation
// service: it accepts any number of TCP (or other net.Listener)
// connections, decodes framed messages and batches from each, fans them
// into a ShardedCollector, and answers MsgQuery frames with MsgEstimate
// responses computed from the live accumulator. Each connection is
// served by its own goroutine and routed to shard (connection id mod
// NumShards), so ingestion scales with cores while estimates remain
// bit-for-bit identical to a serial server fed the same reports.
type IngestServer struct {
	Collector BatchCollector

	// Domain, when non-nil, puts the server in domain mode: it serves
	// item-tagged ingest frames (MsgDomainHello, MsgDomainReport),
	// item-scoped queries (MsgDomainQuery) and per-item raw-sums
	// requests (MsgDomainSums) instead of the Boolean protocol. A server
	// hosts exactly one of the two modes; Boolean frames on a domain
	// server (and vice versa) fail that connection.
	Domain DomainBatchCollector

	// HashedDomain, when non-nil, puts the server in hashed-domain mode:
	// it serves seed-pinned hellos (MsgHashedDomainHello), bucket-tagged
	// reports (MsgDomainReport with Item = bucket), item-scoped queries
	// answered through the bucket decoder (MsgDomainQuery), and
	// encoding-checked raw-sums requests (MsgHashedDomainSums). Plain
	// domain hellos and sums requests fail the connection: an
	// exact-encoding peer and a hashed server must never interoperate
	// silently.
	HashedDomain HashedDomainBatchCollector

	// ShardMap, when non-nil, puts the server in membership mode: one
	// accumulator per virtual shard, ingest routed by the user's
	// shard, plus the membership control plane (view pushes, per-shard
	// sums for quorum reads, shard state export and transfer
	// installs). See shardserve.go.
	ShardMap ShardMapBatchCollector

	// DomainShardMap is membership mode for domain-valued tracking.
	DomainShardMap *DomainShardMapCollector

	// ErrorLog, when non-nil, receives per-connection decode/validation
	// failures (which close that connection but not the server).
	ErrorLog func(err error)

	// Metrics, when non-nil, instruments the serving loops: applied
	// batches and messages, batch-size and ingest-latency histograms,
	// live connection count, per-kind query counters, and acked-batch
	// shed accounting. Nil keeps every serving path metric-free (and
	// branch-predictable), so embedded and test servers pay nothing.
	Metrics *ServerMetrics

	// Queue, when non-nil, bounds concurrent in-flight batches across
	// all connections. Legacy batches block for a slot (TCP
	// backpressure); acked batches are shed whole — acknowledged but
	// never applied — when no slot is free. See IngestQueue.
	Queue *IngestQueue

	mu       sync.Mutex
	listener net.Listener // set by ListenAndServe so Close can unblock it
	conns    map[net.Conn]struct{}
	closed   bool
	nextID   int
	wg       sync.WaitGroup
}

// NewIngestServer builds a server over the given collector — a plain
// ShardedCollector for in-memory serving, or a DurableCollector for a
// restartable service.
func NewIngestServer(c BatchCollector) *IngestServer {
	return &IngestServer{Collector: c, conns: make(map[net.Conn]struct{})}
}

// NewDomainIngestServer builds a domain-mode server over the given
// collector — a plain DomainCollector for in-memory serving, or a
// DurableDomainCollector for a restartable service.
func NewDomainIngestServer(c DomainBatchCollector) *IngestServer {
	return &IngestServer{Domain: c, conns: make(map[net.Conn]struct{})}
}

// NewHashedDomainIngestServer builds a hashed-domain-mode server over
// the given collector — a plain HashedDomainCollector for in-memory
// serving, or a DurableHashedDomainCollector for a restartable service.
func NewHashedDomainIngestServer(c HashedDomainBatchCollector) *IngestServer {
	return &IngestServer{HashedDomain: c, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections on l until Close is called (or the listener
// fails) and then waits for in-flight connections to drain. The caller
// retains ownership of l only until Serve returns; Close closes it.
func (s *IngestServer) Serve(l net.Listener) error {
	defer s.wg.Wait()
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.isClosed() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if !s.track(conn) {
			conn.Close()
			return nil
		}
		id := s.connID()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			if err := s.serveConn(id, conn); err != nil && s.ErrorLog != nil {
				s.ErrorLog(fmt.Errorf("transport: conn %d: %w", id, err))
			}
		}()
	}
}

// ListenAndServe listens on addr and serves. The chosen address (useful
// with ":0") is sent on ready, if non-nil, once the listener is up.
func (s *IngestServer) ListenAndServe(addr string, ready chan<- net.Addr) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return errors.New("transport: server closed")
	}
	s.listener = l
	s.mu.Unlock()
	if ready != nil {
		ready <- l.Addr()
	}
	return s.Serve(l)
}

// BatchRuns applies a fully validated mixed batch in stream order:
// contiguous runs of ingest messages go to forward as whole batches,
// and each frame isQuery selects goes to answer between them. It is
// the shared core of the atomic-batch discipline on every serving path
// — the Boolean and domain ingest servers and both gateway modes —
// so callers MUST validate every frame of the batch before invoking
// it; a malformed frame anywhere then aborts before anything applies.
func BatchRuns(ms []Msg, isQuery func(Msg) bool, forward func([]Msg) error, answer func(Msg) error) error {
	run := 0
	for i, m := range ms {
		if !isQuery(m) {
			continue
		}
		if i > run {
			if err := forward(ms[run:i]); err != nil {
				return err
			}
		}
		run = i + 1
		if err := answer(m); err != nil {
			return err
		}
	}
	if run < len(ms) {
		return forward(ms[run:])
	}
	return nil
}

// serveConn runs the decode loop for one connection: hello/report
// messages and batches go to the collector under this connection's
// shard; queries (and raw-sums requests from a cluster gateway) are
// answered immediately from the live accumulator.
//
// Batches are atomic: every frame in a decoded batch — ingest messages
// through the collector's validate-only path, query frames through
// ValidateQuery — is validated before anything is applied, so a batch
// of [reports…, malformed query, reports…] applies (and, under a
// DurableCollector, journals) nothing at all rather than a prefix.
func (s *IngestServer) serveConn(id int, conn net.Conn) error {
	dec := NewDecoder(conn)
	enc := NewEncoder(conn)
	if s.DomainShardMap != nil {
		return s.serveDomainShardConn(id, dec, enc)
	}
	if s.ShardMap != nil {
		return s.serveShardConn(id, dec, enc)
	}
	if s.HashedDomain != nil {
		return s.serveHashedDomainConn(id, dec, enc)
	}
	if s.Domain != nil {
		return s.serveDomainConn(id, dec, enc)
	}
	acc := s.Collector.Acc()
	isQuery := func(m Msg) bool {
		return m.Type == MsgQuery || m.Type == MsgQueryV2 || m.Type == MsgSums
	}
	for {
		ms, err := dec.NextBatch()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil // clean client close or server shutdown
			}
			return err
		}
		acked := dec.AckedBatch()
		start := time.Now()
		ingest := 0
		for _, m := range ms {
			if acked && isQuery(m) {
				return fmt.Errorf("message type %d (query) inside acked batch", m.Type)
			}
			switch m.Type {
			case MsgQuery:
				if m.T < 1 || m.T > acc.D() {
					return fmt.Errorf("query time %d out of range [1..%d]", m.T, acc.D())
				}
			case MsgQueryV2:
				if err := ValidateQuery(acc.D(), m); err != nil {
					return err
				}
			case MsgSums:
				// No parameters to validate.
			default:
				if err := s.Collector.Validate(m); err != nil {
					return err
				}
				ingest++
			}
		}
		shed, holding, err := s.admitBatch(acked, enc)
		if err != nil {
			return err
		}
		if shed {
			continue
		}
		err = BatchRuns(ms, isQuery,
			func(run []Msg) error { return s.Collector.SendBatch(id, run) },
			func(m Msg) error {
				if s.Metrics != nil {
					s.Metrics.CountQuery("boolean", QueryKindName(m))
				}
				switch m.Type {
				case MsgQuery:
					if err := enc.Encode(Estimate(m.T, acc.EstimateAt(m.T))); err != nil {
						return err
					}
				case MsgQueryV2:
					ans, err := AnswerQuery(acc, m)
					if err != nil {
						return err
					}
					if err := enc.EncodeAnswer(ans); err != nil {
						return err
					}
				case MsgSums:
					if err := enc.EncodeSums(SumsFromSharded(acc)); err != nil {
						return err
					}
				}
				return enc.Flush()
			})
		if holding {
			s.Queue.Release()
		}
		if err != nil {
			return err
		}
		if err := s.finishBatch(acked, enc, ingest, start); err != nil {
			return err
		}
	}
}

// admitBatch runs queue admission for one decoded batch: legacy batches
// block for a slot, acked batches are shed whole when the queue is
// full. It reports whether the batch was shed (already answered with a
// negative ack; the caller skips it entirely) and whether a slot is
// held and must be released after the batch is applied.
func (s *IngestServer) admitBatch(acked bool, enc *Encoder) (shed, holding bool, err error) {
	if s.Queue == nil {
		return false, false, nil
	}
	if !acked {
		s.Queue.Acquire()
		return false, true, nil
	}
	if s.Queue.TryAcquire() {
		return false, true, nil
	}
	if s.Metrics != nil {
		s.Metrics.ObserveShed()
	}
	if err := enc.EncodeBatchAck(false); err != nil {
		return false, false, err
	}
	return true, false, enc.Flush()
}

// finishBatch acknowledges an applied acked batch and records its
// metrics.
func (s *IngestServer) finishBatch(acked bool, enc *Encoder, n int, start time.Time) error {
	if acked {
		if err := enc.EncodeBatchAck(true); err != nil {
			return err
		}
		if err := enc.Flush(); err != nil {
			return err
		}
	}
	if s.Metrics != nil {
		s.Metrics.ObserveBatch(n, time.Since(start), acked)
	}
	return nil
}

// serveDomainConn is serveConn for a domain-mode server: item-tagged
// hello/report messages and batches go to the domain collector under
// this connection's shard; item-scoped queries (and per-item raw-sums
// requests from a cluster gateway) are answered immediately from the
// live per-item accumulators. Batches are atomic, exactly as on the
// Boolean path.
func (s *IngestServer) serveDomainConn(id int, dec *Decoder, enc *Encoder) error {
	ds := s.Domain.Domain()
	isQuery := func(m Msg) bool {
		return m.Type == MsgDomainQuery || m.Type == MsgDomainSums
	}
	// One answer frame and selection scratch per connection: warm
	// top-k and point-item answers reuse these buffers and allocate
	// nothing (pinned by TestAnswerIntoAllocFree).
	var ans DomainAnswerFrame
	var sc TopKScratch
	for {
		ms, err := dec.NextBatch()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil // clean client close or server shutdown
			}
			return err
		}
		acked := dec.AckedBatch()
		start := time.Now()
		ingest := 0
		for _, m := range ms {
			if acked && isQuery(m) {
				return fmt.Errorf("message type %d (query) inside acked batch", m.Type)
			}
			switch m.Type {
			case MsgDomainQuery:
				if err := ValidateDomainQuery(ds.D(), ds.M(), m); err != nil {
					return err
				}
			case MsgDomainSums:
				// No parameters to validate.
			default:
				if err := s.Domain.Validate(m); err != nil {
					return err
				}
				ingest++
			}
		}
		shed, holding, err := s.admitBatch(acked, enc)
		if err != nil {
			return err
		}
		if shed {
			continue
		}
		err = BatchRuns(ms, isQuery,
			func(run []Msg) error { return s.Domain.SendBatch(id, run) },
			func(m Msg) error {
				if s.Metrics != nil {
					s.Metrics.CountQuery("domain", QueryKindName(m))
				}
				switch m.Type {
				case MsgDomainQuery:
					cached, err := AnswerDomainQueryInto(ds, m, &ans, &sc)
					if err != nil {
						return err
					}
					// Only top-k goes through the version-keyed memo on
					// the exact encoding; point estimates read counters
					// directly.
					if s.Metrics != nil && m.Kind == QueryTopK {
						s.Metrics.CountCacheEligible()
						s.Metrics.CountCacheResult(cached)
					}
					if err := enc.EncodeDomainAnswer(ans); err != nil {
						return err
					}
				case MsgDomainSums:
					if err := enc.EncodeDomainSums(DomainSumsFromServer(ds)); err != nil {
						return err
					}
				}
				return enc.Flush()
			})
		if holding {
			s.Queue.Release()
		}
		if err != nil {
			return err
		}
		if err := s.finishBatch(acked, enc, ingest, start); err != nil {
			return err
		}
	}
}

// serveHashedDomainConn is serveConn for a hashed-domain server:
// seed-pinned hellos and bucket-tagged reports go to the hashed
// collector under this connection's shard; item-scoped queries are
// answered through the bucket decoder, and encoding-checked raw-sums
// requests with the g-row bucket state. Batches are atomic, exactly as
// on the other paths.
func (s *IngestServer) serveHashedDomainConn(id int, dec *Decoder, enc *Encoder) error {
	hs := s.HashedDomain.Hashed()
	seed := hs.Encoding().Seed
	isQuery := func(m Msg) bool {
		return m.Type == MsgDomainQuery || m.Type == MsgHashedDomainSums
	}
	var ans DomainAnswerFrame
	var sc TopKScratch
	for {
		ms, err := dec.NextBatch()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil // clean client close or server shutdown
			}
			return err
		}
		acked := dec.AckedBatch()
		start := time.Now()
		ingest := 0
		for _, m := range ms {
			if acked && isQuery(m) {
				return fmt.Errorf("message type %d (query) inside acked batch", m.Type)
			}
			switch m.Type {
			case MsgDomainQuery:
				if err := ValidateHashedDomainQuery(hs.D(), hs.M(), m); err != nil {
					return err
				}
			case MsgHashedDomainSums:
				if m.Item != hs.M() || m.K != hs.G() || m.Seed != seed {
					return fmt.Errorf("hashed sums request for m=%d g=%d seed=%d, server encodes m=%d g=%d under a different seed", m.Item, m.K, m.Seed, hs.M(), hs.G())
				}
			default:
				if err := s.HashedDomain.Validate(m); err != nil {
					return err
				}
				ingest++
			}
		}
		shed, holding, err := s.admitBatch(acked, enc)
		if err != nil {
			return err
		}
		if shed {
			continue
		}
		err = BatchRuns(ms, isQuery,
			func(run []Msg) error { return s.HashedDomain.SendBatch(id, run) },
			func(m Msg) error {
				if s.Metrics != nil {
					s.Metrics.CountQuery("hashed-domain", QueryKindName(m))
				}
				switch m.Type {
				case MsgDomainQuery:
					cached, err := AnswerHashedDomainQueryInto(hs, m, &ans, &sc)
					if err != nil {
						return err
					}
					// Top-k and point-item both go through the hashed
					// decoder's version-keyed decode memo.
					if s.Metrics != nil && (m.Kind == QueryTopK || m.Kind == QueryPointItem) {
						s.Metrics.CountCacheEligible()
						s.Metrics.CountCacheResult(cached)
					}
					if err := enc.EncodeDomainAnswer(ans); err != nil {
						return err
					}
				case MsgHashedDomainSums:
					if err := enc.EncodeDomainSums(DomainSumsFromServer(hs.Inner())); err != nil {
						return err
					}
				}
				return enc.Flush()
			})
		if holding {
			s.Queue.Release()
		}
		if err != nil {
			return err
		}
		if err := s.finishBatch(acked, enc, ingest, start); err != nil {
			return err
		}
	}
}

// Estimator is the read side of a dyadic accumulator: both the
// lock-free protocol.Sharded (the live ingest path) and the serial
// protocol.Server (the gateway's fold of cluster-wide raw sums) satisfy
// it, so AnswerQuery serves either.
type Estimator interface {
	D() int
	EstimateAt(t int) float64
	EstimateChange(l, r int) float64
	EstimateSeries() []float64
	EstimateSeriesTo(r int) []float64
}

// ValidateQuery is the validate-only path of AnswerQuery: it
// range-checks a v2 query frame against horizon d without touching any
// accumulator. The ingest server runs it over a whole batch before
// applying anything, keeping batches atomic.
func ValidateQuery(d int, m Msg) error {
	if m.Type != MsgQueryV2 {
		return fmt.Errorf("transport: message type %d is not a v2 query", m.Type)
	}
	switch m.Kind {
	case QueryPoint:
		if m.L < 1 || m.L > d {
			return fmt.Errorf("transport: point query time %d out of range [1..%d]", m.L, d)
		}
	case QueryChange:
		if m.L < 1 || m.R > d || m.L > m.R {
			return fmt.Errorf("transport: change query range [%d..%d] invalid for d=%d", m.L, m.R, d)
		}
	case QuerySeries:
		// No bounds.
	case QueryWindow:
		if m.L < 1 || m.R > d || m.L > m.R {
			return fmt.Errorf("transport: window query range [%d..%d] invalid for d=%d", m.L, m.R, d)
		}
	default:
		return fmt.Errorf("transport: unknown query kind %d", byte(m.Kind))
	}
	return nil
}

// AnswerQuery computes the answer to a v2 query frame from the live
// accumulator. The estimates are bit-for-bit identical to a serial
// protocol.Server fed the same reports: point and change queries sum the
// same dyadic decomposition in the same order, and series and window
// queries use the same prefix recurrence. The returned values are owned
// by the caller: series and window answers are fresh copies (windows
// clipped to exactly R−L+1 elements), never a view into an engine's
// backing array that a buffer-reusing engine could scribble over.
func AnswerQuery(est Estimator, m Msg) (AnswerFrame, error) {
	if err := ValidateQuery(est.D(), m); err != nil {
		return AnswerFrame{}, err
	}
	a := AnswerFrame{Kind: m.Kind, L: m.L, R: m.R}
	switch m.Kind {
	case QueryPoint:
		a.Values = []float64{est.EstimateAt(m.L)}
	case QueryChange:
		a.Values = []float64{est.EstimateChange(m.L, m.R)}
	case QuerySeries:
		a.Values = append([]float64(nil), est.EstimateSeries()...)
	case QueryWindow:
		a.Values = append(make([]float64, 0, m.R-m.L+1), est.EstimateSeriesTo(m.R)[m.L-1:]...)
	}
	return a, nil
}

// Shutdown drains the server gracefully: it stops accepting new
// connections and closes the listener, then gives in-flight connections
// up to grace to finish their streams (clients see the listener gone
// and close when done) before force-closing whatever remains. It
// returns once every connection goroutine has exited, so the collector
// is quiescent — safe to snapshot — when Shutdown returns.
func (s *IngestServer) Shutdown(grace time.Duration) error {
	s.mu.Lock()
	s.closed = true
	l := s.listener
	s.listener = nil
	s.mu.Unlock()
	var lerr error
	if l != nil {
		lerr = l.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	timer := time.NewTimer(grace)
	defer timer.Stop()
	select {
	case <-done:
	case <-timer.C:
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-done
	}
	return lerr
}

// Close stops accepting connections, closes the listener and all live
// connections, and unblocks Serve.
func (s *IngestServer) Close() error {
	s.mu.Lock()
	s.closed = true
	l := s.listener
	s.listener = nil
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	if l != nil {
		return l.Close()
	}
	return nil
}

func (s *IngestServer) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *IngestServer) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	if s.Metrics != nil {
		s.Metrics.ActiveConns.Add(1)
	}
	return true
}

func (s *IngestServer) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	if s.Metrics != nil {
		s.Metrics.ActiveConns.Add(-1)
	}
	s.mu.Unlock()
	conn.Close()
}

func (s *IngestServer) connID() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextID
	s.nextID++
	return id
}
