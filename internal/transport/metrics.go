package transport

import (
	"strconv"
	"time"

	"rtf/internal/obs"
)

// ServerMetrics is the instrument set of a serving process, shared by
// the ingest server and the cluster gateway. All instruments live in
// one obs.Registry (mounted at /metrics by the binaries), and the hot
// ones are plain atomic handles resolved once at construction:
//
//	ingest_messages_total      counter: ingest messages applied
//	ingest_batches_total       counter: batches applied
//	ingest_acked_batches_total counter: acked batches received (applied or shed)
//	ingest_shed_batches_total  counter: acked batches shed whole by the queue
//	ingest_batch_size          histogram: sizes of applied batches
//	ingest_latency_seconds     histogram: decode-to-applied latency per batch
//	conns_active               gauge: currently served connections
//	queries_total{mechanism,kind} counters: answered queries by mechanism
//	    ("boolean" or "domain") and kind ("point", "change", "series",
//	    "window", "sums", or "point_v1")
//
// Shed batches are deliberately excluded from the size and latency
// histograms and the message counter — those describe applied work, and
// the shed counter together with the acked counter gives the rejection
// rate.
type ServerMetrics struct {
	reg *obs.Registry

	Messages     *obs.Counter
	Batches      *obs.Counter
	AckedBatches *obs.Counter
	ShedBatches  *obs.Counter
	BatchSize    *obs.Histogram
	Latency      *obs.Histogram
	ActiveConns  *obs.Gauge
}

// NewServerMetrics resolves the ingest instrument set in r.
func NewServerMetrics(r *obs.Registry) *ServerMetrics {
	return &ServerMetrics{
		reg:          r,
		Messages:     r.Counter("ingest_messages_total"),
		Batches:      r.Counter("ingest_batches_total"),
		AckedBatches: r.Counter("ingest_acked_batches_total"),
		ShedBatches:  r.Counter("ingest_shed_batches_total"),
		BatchSize:    r.Histogram("ingest_batch_size", obs.ExpBuckets(1, 2, 16)),
		Latency:      r.Histogram("ingest_latency_seconds", obs.ExpBuckets(1e-5, 2, 20)),
		ActiveConns:  r.Gauge("conns_active"),
	}
}

// Registry returns the registry the instruments live in.
func (m *ServerMetrics) Registry() *obs.Registry { return m.reg }

// ObserveBatch records one applied batch of n ingest messages. Frames
// holding only query messages pass n == 0 and are not counted here —
// they show up in queries_total, and the ingest histograms keep
// describing ingest work alone.
func (m *ServerMetrics) ObserveBatch(n int, d time.Duration, acked bool) {
	if n == 0 {
		return
	}
	m.Batches.Inc()
	m.Messages.Add(int64(n))
	m.BatchSize.Observe(float64(n))
	m.Latency.Observe(d.Seconds())
	if acked {
		m.AckedBatches.Inc()
	}
}

// ObserveShed records one acked batch shed whole by the queue.
func (m *ServerMetrics) ObserveShed() {
	m.AckedBatches.Inc()
	m.ShedBatches.Inc()
}

// ObserveScatter records one successful scatter fetch against backend i
// in scatter_latency_seconds{backend="i"} — the gateway's per-backend
// read-path latency.
func (m *ServerMetrics) ObserveScatter(i int, d time.Duration) {
	m.reg.Histogram(
		obs.Label("scatter_latency_seconds", "backend", strconv.Itoa(i)),
		obs.ExpBuckets(1e-5, 2, 20),
	).Observe(d.Seconds())
}

// CountHedge records one hedged fetch: armed when the primary fetch
// outlived the hedge delay, and won when the hedge connection answered
// first.
func (m *ServerMetrics) CountHedge(won bool) {
	m.reg.Counter("gateway_hedged_fetches_total").Inc()
	if won {
		m.reg.Counter("gateway_hedge_wins_total").Inc()
	}
}

// CountQuery increments queries_total for one answered query. The
// labeled counter is looked up in the registry (one short mutex
// acquisition); queries are off the ingest hot path, so the lookup cost
// is irrelevant.
func (m *ServerMetrics) CountQuery(mechanism, kind string) {
	m.reg.Counter(obs.Label("queries_total", "mechanism", mechanism, "kind", kind)).Inc()
}

// CountCacheEligible records one answered query whose answer path is
// backed by a version-keyed memo (query_cache_eligible_total). Every
// eligible query is also counted as exactly one hit or miss, so at any
// quiescent scrape hits + misses == eligible.
func (m *ServerMetrics) CountCacheEligible() {
	m.reg.Counter("query_cache_eligible_total").Inc()
}

// CountCacheResult records whether an eligible query was answered from
// a warm memo (query_cache_hits_total) or recomputed
// (query_cache_misses_total).
func (m *ServerMetrics) CountCacheResult(hit bool) {
	if hit {
		m.reg.Counter("query_cache_hits_total").Inc()
	} else {
		m.reg.Counter("query_cache_misses_total").Inc()
	}
}

// CountCoalesced records one query that joined an in-flight identical
// scatter/gather instead of starting its own (query_coalesced_total).
func (m *ServerMetrics) CountCoalesced() {
	m.reg.Counter("query_coalesced_total").Inc()
}

// RegisterQueue exports the queue's live depth and capacity as gauges.
func (m *ServerMetrics) RegisterQueue(q *IngestQueue) {
	m.reg.GaugeFunc("ingest_queue_depth", func() float64 { return float64(q.Depth()) })
	m.reg.GaugeFunc("ingest_queue_capacity", func() float64 { return float64(q.Capacity()) })
}

// DurabilityStatser is satisfied by DurableCollector and
// DurableDomainCollector.
type DurabilityStatser interface {
	DurabilityStats() DurabilityStats
}

// RegisterDurability exports a durable collector's WAL and snapshot
// state: wal_last_seq, wal_lag_records (records appended since the
// newest snapshot's cursor — the replay debt a restart would pay), and
// snapshot_age_seconds (time since the newest snapshot was written, or
// since boot when none has been).
func (m *ServerMetrics) RegisterDurability(ds DurabilityStatser) {
	m.reg.GaugeFunc("wal_last_seq", func() float64 {
		return float64(ds.DurabilityStats().LastSeq)
	})
	m.reg.GaugeFunc("wal_lag_records", func() float64 {
		return float64(ds.DurabilityStats().WALLagRecords)
	})
	m.reg.GaugeFunc("snapshot_age_seconds", func() float64 {
		return ds.DurabilityStats().SnapshotAge.Seconds()
	})
}

// QueryKindName maps an answered query frame to its queries_total kind
// label.
func QueryKindName(m Msg) string {
	switch m.Type {
	case MsgQuery:
		return "point_v1"
	case MsgSums, MsgDomainSums, MsgHashedDomainSums:
		return "sums"
	case MsgShardSums:
		return "shard_sums"
	case MsgShardState:
		return "shard_state"
	}
	switch m.Kind {
	case QueryPoint:
		return "point"
	case QueryChange:
		return "change"
	case QuerySeries:
		return "series"
	case QueryWindow:
		return "window"
	case QueryPointItem:
		return "point_item"
	case QuerySeriesItem:
		return "series_item"
	case QueryTopK:
		return "topk"
	}
	return "unknown"
}
