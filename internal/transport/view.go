package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"rtf/internal/membership"
)

// This file carries the dynamic-membership control plane on the same
// wire as ingest and queries: MsgView frames push a full epoch view to
// backends, MsgShardState/MsgShardStateFrame round-trips export one
// virtual shard's serialized state, MsgShardTransfer frames install it
// on the new owner during a reshard, and MsgMemberAck confirms that a
// view or transfer was applied. The shard state payload is the
// protocol package's state encoding — the same bytes the durability
// snapshots use — so a reshard handoff and a crash recovery restore
// through one code path.

// viewWireVersion is the version byte of every membership frame.
// Decoders reject frames from a newer revision instead of misparsing.
const viewWireVersion = 1

// MaxShardStateLen bounds the declared payload length of a shard
// state/transfer frame, mirroring persist.MaxStateLen.
const MaxShardStateLen = 1 << 26

// EncodeView writes one MsgView frame pushing the full cluster view.
func (e *Encoder) EncodeView(v membership.View) error {
	if err := v.Validate(); err != nil {
		return err
	}
	b := e.scratch[:0]
	b = append(b, byte(MsgView), viewWireVersion)
	b = binary.AppendUvarint(b, v.Epoch)
	b = binary.AppendUvarint(b, uint64(v.K))
	b = binary.AppendUvarint(b, uint64(v.NumShards))
	b = binary.AppendUvarint(b, uint64(len(v.Members)))
	for _, m := range v.Members {
		b = binary.AppendUvarint(b, uint64(len(m.ID)))
		b = append(b, m.ID...)
		b = binary.AppendUvarint(b, uint64(len(m.Addr)))
		b = append(b, m.Addr...)
	}
	e.scratch = b[:0] // keep the grown buffer for the next frame
	n, err := e.w.Write(b)
	e.n += int64(n)
	return err
}

// readViewBody decodes a MsgView frame body (type byte already
// consumed). Every count is validated before allocation, and the
// decoded view must pass membership validation (unique bounded IDs,
// 1 <= K <= members), so a corrupt frame cannot produce a usable but
// inconsistent placement map.
func (d *Decoder) readViewBody() (membership.View, error) {
	ver, err := d.r.ReadByte()
	if err != nil {
		return membership.View{}, truncated(err)
	}
	if ver != viewWireVersion {
		return membership.View{}, fmt.Errorf("transport: unsupported view version %d", ver)
	}
	epoch, err := binary.ReadUvarint(d.r)
	if err != nil {
		return membership.View{}, truncated(err)
	}
	k, err := binary.ReadUvarint(d.r)
	if err != nil {
		return membership.View{}, truncated(err)
	}
	shards, err := binary.ReadUvarint(d.r)
	if err != nil {
		return membership.View{}, truncated(err)
	}
	n, err := binary.ReadUvarint(d.r)
	if err != nil {
		return membership.View{}, truncated(err)
	}
	if k > uint64(membership.MaxMembers) || shards > uint64(membership.MaxShards) || n > uint64(membership.MaxMembers) {
		return membership.View{}, fmt.Errorf("transport: view frame dims (k=%d shards=%d members=%d) exceed limits", k, shards, n)
	}
	v := membership.View{Epoch: epoch, K: int(k), NumShards: int(shards), Members: make([]membership.Member, n)}
	for i := range v.Members {
		id, err := d.readBoundedString()
		if err != nil {
			return membership.View{}, err
		}
		addr, err := d.readBoundedString()
		if err != nil {
			return membership.View{}, err
		}
		v.Members[i] = membership.Member{ID: id, Addr: addr}
	}
	if err := v.Validate(); err != nil {
		return membership.View{}, err
	}
	return v, nil
}

// readBoundedString reads a uvarint-prefixed string of at most
// membership.MaxIDLen bytes.
func (d *Decoder) readBoundedString() (string, error) {
	n, err := binary.ReadUvarint(d.r)
	if err != nil {
		return "", truncated(err)
	}
	if n == 0 || n > membership.MaxIDLen {
		return "", fmt.Errorf("transport: view string length %d outside [1..%d]", n, membership.MaxIDLen)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(d.r, buf); err != nil {
		return "", truncated(err)
	}
	return string(buf), nil
}

// TakeView returns the payload of the most recent MsgView frame and
// releases the Decoder's reference. Call it exactly once after Next
// (or NextBatch) surfaced the marker message.
func (d *Decoder) TakeView() membership.View {
	v := d.view
	d.view = membership.View{}
	return v
}

// TakeShardState returns the payload of the most recent
// MsgShardTransfer frame and releases the Decoder's reference. Call
// it exactly once after Next surfaced the marker message (the marker
// carries the shard number).
func (d *Decoder) TakeShardState() []byte {
	b := d.shardState
	d.shardState = nil
	return b
}

// appendShardPayload appends a shard-carrying frame: type byte,
// version, uvarint shard, uvarint payload length, payload bytes. The
// layout is shared by MsgShardStateFrame (export response) and
// MsgShardTransfer (install request).
func appendShardPayload(b []byte, typ MsgType, shard int, state []byte) ([]byte, error) {
	if shard < 0 || shard > membership.MaxShards {
		return nil, fmt.Errorf("transport: shard %d outside [0..%d]", shard, membership.MaxShards)
	}
	if len(state) > MaxShardStateLen {
		return nil, fmt.Errorf("transport: shard state of %d bytes exceeds limit %d", len(state), MaxShardStateLen)
	}
	b = append(b, byte(typ), viewWireVersion)
	b = binary.AppendUvarint(b, uint64(shard))
	b = binary.AppendUvarint(b, uint64(len(state)))
	b = append(b, state...)
	return b, nil
}

// EncodeShardState writes one MsgShardStateFrame response carrying the
// shard's serialized state.
func (e *Encoder) EncodeShardState(shard int, state []byte) error {
	b, err := appendShardPayload(e.scratch[:0], MsgShardStateFrame, shard, state)
	if err != nil {
		return err
	}
	e.scratch = b[:0] // keep the grown buffer for the next frame
	n, err := e.w.Write(b)
	e.n += int64(n)
	return err
}

// EncodeShardTransfer writes one MsgShardTransfer frame asking the
// receiving backend to install the shard state (replacing whatever
// copy it holds for that shard).
func (e *Encoder) EncodeShardTransfer(shard int, state []byte) error {
	b, err := appendShardPayload(e.scratch[:0], MsgShardTransfer, shard, state)
	if err != nil {
		return err
	}
	e.scratch = b[:0] // keep the grown buffer for the next frame
	n, err := e.w.Write(b)
	e.n += int64(n)
	return err
}

// readShardPayloadBody decodes the shared shard-payload layout (type
// byte already consumed): version, shard, bounded state bytes.
func (d *Decoder) readShardPayloadBody() (int, []byte, error) {
	ver, err := d.r.ReadByte()
	if err != nil {
		return 0, nil, truncated(err)
	}
	if ver != viewWireVersion {
		return 0, nil, fmt.Errorf("transport: unsupported shard frame version %d", ver)
	}
	shard, err := binary.ReadUvarint(d.r)
	if err != nil {
		return 0, nil, truncated(err)
	}
	if shard > membership.MaxShards {
		return 0, nil, fmt.Errorf("transport: shard %d exceeds limit %d", shard, membership.MaxShards)
	}
	n, err := binary.ReadUvarint(d.r)
	if err != nil {
		return 0, nil, truncated(err)
	}
	if n > MaxShardStateLen {
		return 0, nil, fmt.Errorf("transport: shard state length %d exceeds limit %d", n, MaxShardStateLen)
	}
	state := make([]byte, n)
	if _, err := io.ReadFull(d.r, state); err != nil {
		return 0, nil, truncated(err)
	}
	if shard > math.MaxInt {
		return 0, nil, fmt.Errorf("transport: shard %d overflows", shard)
	}
	return int(shard), state, nil
}

// ReadShardState decodes one MsgShardStateFrame. It must be called
// when a shard state frame is the next frame on the stream — after
// sending a MsgShardState request — and fails on any other frame type
// or a shard mismatch with the request.
func (d *Decoder) ReadShardState(wantShard int) ([]byte, error) {
	if d.next < len(d.pending) {
		return nil, errors.New("transport: shard state frame inside batch")
	}
	tb, err := d.r.ReadByte()
	if err != nil {
		return nil, err // io.EOF passes through
	}
	if MsgType(tb) != MsgShardStateFrame {
		return nil, fmt.Errorf("transport: expected shard state frame, got message type %d", tb)
	}
	shard, state, err := d.readShardPayloadBody()
	if err != nil {
		return nil, err
	}
	if shard != wantShard {
		return nil, fmt.Errorf("transport: shard state frame for shard %d, requested %d", shard, wantShard)
	}
	return state, nil
}

// EncodeMemberAck writes the backend's response to a MsgView or
// MsgShardTransfer frame: applied or refused.
func (e *Encoder) EncodeMemberAck(applied bool) error {
	status := byte(0)
	if applied {
		status = 1
	}
	n, err := e.w.Write([]byte{byte(MsgMemberAck), status})
	e.n += int64(n)
	return err
}

// ReadMemberAck decodes one MsgMemberAck. It must be called when an
// ack is the next frame on the stream — after sending a view or
// transfer frame — and fails on any other frame type.
func (d *Decoder) ReadMemberAck() (bool, error) {
	if d.next < len(d.pending) {
		return false, errors.New("transport: member ack inside batch")
	}
	tb, err := d.r.ReadByte()
	if err != nil {
		return false, err // io.EOF passes through
	}
	if MsgType(tb) != MsgMemberAck {
		return false, fmt.Errorf("transport: expected member ack, got message type %d", tb)
	}
	status, err := d.r.ReadByte()
	if err != nil {
		return false, truncated(err)
	}
	switch status {
	case 1:
		return true, nil
	case 0:
		return false, nil
	default:
		return false, fmt.Errorf("transport: invalid member ack status %d", status)
	}
}
