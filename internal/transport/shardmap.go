package transport

import (
	"fmt"
	"sync"
	"sync/atomic"

	"rtf/internal/dyadic"
	"rtf/internal/hh"
	"rtf/internal/membership"
	"rtf/internal/protocol"
)

// This file is the backend half of dynamic membership: a membership-
// mode rtf-serve keeps one accumulator per virtual shard (instead of
// one global accumulator), so any shard's state can be exported,
// shipped to a new owner and installed there without disturbing the
// others. Users hash statically onto virtual shards (user mod S);
// rendezvous hashing places shards on members. Queries fold the
// owned shards' raw integer sums in fixed shard order into a fresh
// serial accumulator, so answers stay bit-for-bit identical to a
// single serial server fed the same reports.

// ShardMapBatchCollector is the fan-in point of a membership-mode
// Boolean ingest server: the plain in-memory ShardMapCollector, or the
// DurableShardMapCollector that journals every frame first.
type ShardMapBatchCollector interface {
	// Map returns the underlying shard map (for queries, shard export
	// and view bookkeeping).
	Map() *ShardMapCollector
	// SendBatch validates and ingests a whole decoded batch
	// atomically, routing each message to its user's virtual shard.
	SendBatch(ms []Msg) error
	// Validate checks one hello or report message without side
	// effects.
	Validate(m Msg) error
	// Stats returns the number of hellos, reports and batches
	// ingested.
	Stats() (hellos, reports, batches int64)
	// InstallShard replaces one virtual shard's state with the given
	// serialized snapshot (a reshard handoff).
	InstallShard(shard int, state []byte) error
}

// ShardMapCollector keeps one protocol.Sharded accumulator per virtual
// shard and routes every ingested message to its user's shard. It is
// safe for concurrent use: ingestion and reads take a shared lock,
// shard installs take it exclusively (an install REPLACES the shard's
// accumulator — protocol restore folds additively, so installs build a
// fresh accumulator and swap it in; a member that re-gains a shard it
// once held must not double-count its stale copy).
type ShardMapCollector struct {
	d         int
	scale     float64
	numShards int
	accs      []atomic.Pointer[protocol.Sharded]

	// imu orders message application against shard installs: apply
	// holds it shared, InstallShard exclusively. The per-shard
	// accumulators are themselves lock-free; this lock only prevents a
	// swap from stranding an in-flight write on a replaced accumulator.
	imu sync.RWMutex

	hellos  atomic.Int64
	reports atomic.Int64
	batches atomic.Int64

	// vmu guards the pushed cluster view (bookkeeping only: routing
	// is by the message's user id, queries fold every shard; the view
	// feeds gauges and staleness checks).
	vmu    sync.Mutex
	view   membership.View
	selfID string
}

// NewShardMapCollector builds a membership-mode collector with
// numShards empty virtual shards. selfID is this backend's member ID
// (used to reject views that do not list it and to compute owned-shard
// gauges).
func NewShardMapCollector(d int, scale float64, numShards int, selfID string) *ShardMapCollector {
	if numShards < 1 || numShards > membership.MaxShards {
		panic(fmt.Sprintf("transport: numShards %d outside [1..%d]", numShards, membership.MaxShards))
	}
	c := &ShardMapCollector{d: d, scale: scale, numShards: numShards, selfID: selfID}
	c.accs = make([]atomic.Pointer[protocol.Sharded], numShards)
	for s := range c.accs {
		c.accs[s].Store(protocol.NewSharded(d, scale, 1))
	}
	return c
}

// D returns the horizon.
func (c *ShardMapCollector) D() int { return c.d }

// NumShards returns the virtual-shard count.
func (c *ShardMapCollector) NumShards() int { return c.numShards }

// SelfID returns this backend's member ID.
func (c *ShardMapCollector) SelfID() string { return c.selfID }

// Map returns the collector itself (the plain in-memory case of
// ShardMapBatchCollector).
func (c *ShardMapCollector) Map() *ShardMapCollector { return c }

// Validate checks one hello or report message against the horizon
// without side effects.
func (c *ShardMapCollector) Validate(m Msg) error { return ValidateIngest(c.d, m) }

// SendBatch validates the whole batch, then applies each message to
// its user's virtual shard. The batch is atomic: on error nothing is
// applied.
func (c *ShardMapCollector) SendBatch(ms []Msg) error {
	maxOrder := dyadic.Log2(c.d)
	for i := range ms {
		if !ingestOK(c.d, maxOrder, &ms[i]) {
			return validateIngest(c.d, maxOrder, &ms[i])
		}
	}
	c.applyBatch(ms)
	return nil
}

// applyBatch accumulates a fully validated batch.
func (c *ShardMapCollector) applyBatch(ms []Msg) {
	c.imu.RLock()
	var hellos, reports int64
	for i := range ms {
		m := &ms[i]
		acc := c.accs[membership.ShardOf(m.User, c.numShards)].Load()
		if m.Type == MsgHello {
			acc.Register(0, m.Order)
			hellos++
		} else {
			acc.Ingest(0, protocol.Report{User: m.User, Order: m.Order, J: m.J, Bit: m.Bit})
			reports++
		}
	}
	c.imu.RUnlock()
	if hellos > 0 {
		c.hellos.Add(hellos)
	}
	c.reports.Add(reports)
	c.batches.Add(1)
}

// applyJournaled implements batchApplier for the durable collector;
// the shard map routes by user, so the connection shard is unused.
func (c *ShardMapCollector) applyJournaled(_ int, ms []Msg) { c.applyBatch(ms) }

// Stats returns the number of hellos, reports and batches ingested.
func (c *ShardMapCollector) Stats() (hellos, reports, batches int64) {
	return c.hellos.Load(), c.reports.Load(), c.batches.Load()
}

// Estimator folds every virtual shard's raw integer sums, in fixed
// shard order, into a fresh serial server. Because the fold merges
// exact integers and the estimator is a fixed linear function of them,
// the result answers every query shape bit-for-bit like a single
// serial server fed the same reports.
func (c *ShardMapCollector) Estimator() (*protocol.Server, error) {
	srv := protocol.NewServer(c.d, c.scale)
	c.imu.RLock()
	defer c.imu.RUnlock()
	for s := 0; s < c.numShards; s++ {
		users, perOrder, sums := c.accs[s].Load().Fold()
		if err := srv.MergeRaw(users, perOrder, sums); err != nil {
			return nil, fmt.Errorf("transport: folding shard %d: %w", s, err)
		}
	}
	return srv, nil
}

// GlobalSums folds every shard into one raw-sums frame (the answer to
// a legacy MsgSums request): exact element-wise integer addition.
func (c *ShardMapCollector) GlobalSums() SumsFrame {
	c.imu.RLock()
	defer c.imu.RUnlock()
	var f SumsFrame
	for s := 0; s < c.numShards; s++ {
		users, perOrder, sums := c.accs[s].Load().Fold()
		if s == 0 {
			f = SumsFrame{D: c.d, Scale: c.scale, Users: users, PerOrder: perOrder, Sums: sums}
			continue
		}
		f.Users += users
		for i := range perOrder {
			f.PerOrder[i] += perOrder[i]
		}
		for i := range sums {
			f.Sums[i] += sums[i]
		}
	}
	return f
}

// ShardSums exports one virtual shard's raw sums (the answer to a
// MsgShardSums request from a quorum-reading gateway).
func (c *ShardMapCollector) ShardSums(shard int) (SumsFrame, error) {
	if shard < 0 || shard >= c.numShards {
		return SumsFrame{}, fmt.Errorf("transport: shard %d out of range [0..%d)", shard, c.numShards)
	}
	c.imu.RLock()
	defer c.imu.RUnlock()
	return SumsFromSharded(c.accs[shard].Load()), nil
}

// ExportShard serializes one virtual shard's state (the protocol
// state encoding — the same bytes the durability snapshots use), the
// transfer format of a reshard handoff.
func (c *ShardMapCollector) ExportShard(shard int) ([]byte, error) {
	if shard < 0 || shard >= c.numShards {
		return nil, fmt.Errorf("transport: shard %d out of range [0..%d)", shard, c.numShards)
	}
	c.imu.RLock()
	defer c.imu.RUnlock()
	return c.accs[shard].Load().MarshalState(), nil
}

// InstallShard REPLACES one virtual shard's accumulator with the given
// serialized state: a fresh accumulator restores the bytes and is
// swapped in whole. Restore folds additively, so installing into the
// live accumulator would double-count on a member that already held a
// (stale) copy of the shard.
func (c *ShardMapCollector) InstallShard(shard int, state []byte) error {
	if shard < 0 || shard >= c.numShards {
		return fmt.Errorf("transport: shard %d out of range [0..%d)", shard, c.numShards)
	}
	fresh := protocol.NewSharded(c.d, c.scale, 1)
	if err := fresh.RestoreState(state); err != nil {
		return fmt.Errorf("transport: restoring shard %d state: %w", shard, err)
	}
	c.imu.Lock()
	c.accs[shard].Store(fresh)
	c.imu.Unlock()
	return nil
}

// SetView records a pushed cluster view. A view older than the one
// held is refused (applied=false, nil error; the gateway retries or
// moves on); a view that disagrees on the virtual-shard count is an
// error (the push is misaddressed). A view that omits this member is
// accepted — that is how a drain looks from the drained backend, and
// tracking it drops the owned-shards gauge to zero so the operator
// sees the drain took effect.
func (c *ShardMapCollector) SetView(v membership.View) (applied bool, err error) {
	if err := v.Validate(); err != nil {
		return false, err
	}
	if v.NumShards != c.numShards {
		return false, fmt.Errorf("transport: view has %d shards, backend has %d", v.NumShards, c.numShards)
	}
	c.vmu.Lock()
	defer c.vmu.Unlock()
	if c.view.Epoch > 0 && v.Epoch < c.view.Epoch {
		return false, nil
	}
	c.view = v.Clone()
	return true, nil
}

// View returns the most recently pushed cluster view (zero before any
// push).
func (c *ShardMapCollector) View() membership.View {
	c.vmu.Lock()
	defer c.vmu.Unlock()
	return c.view.Clone()
}

// OwnedShards counts the shards this member owns under the current
// view (0 before any push), for the owned-shards gauge.
func (c *ShardMapCollector) OwnedShards() int {
	c.vmu.Lock()
	v := c.view.Clone()
	c.vmu.Unlock()
	if len(v.Members) == 0 {
		return 0
	}
	return len(v.OwnedShards(c.selfID))
}

// Epoch returns the current view's epoch (0 before any push).
func (c *ShardMapCollector) Epoch() uint64 {
	c.vmu.Lock()
	defer c.vmu.Unlock()
	return c.view.Epoch
}

// DomainShardMapCollector is the domain-mode counterpart of
// ShardMapCollector: one hh.DomainServer per virtual shard, the same
// replace-on-install discipline, and query folds that merge the
// per-item raw integer sums in fixed shard order.
type DomainShardMapCollector struct {
	d, m      int
	scale     float64
	numShards int
	srvs      []atomic.Pointer[hh.DomainServer]

	imu sync.RWMutex

	hellos  atomic.Int64
	reports atomic.Int64
	batches atomic.Int64

	vmu    sync.Mutex
	view   membership.View
	selfID string
}

// NewDomainShardMapCollector builds a domain membership-mode collector
// with numShards empty virtual shards.
func NewDomainShardMapCollector(d, m int, scale float64, numShards int, selfID string) *DomainShardMapCollector {
	if numShards < 1 || numShards > membership.MaxShards {
		panic(fmt.Sprintf("transport: numShards %d outside [1..%d]", numShards, membership.MaxShards))
	}
	c := &DomainShardMapCollector{d: d, m: m, scale: scale, numShards: numShards, selfID: selfID}
	c.srvs = make([]atomic.Pointer[hh.DomainServer], numShards)
	for s := range c.srvs {
		c.srvs[s].Store(hh.NewDomainServer(d, m, scale, 1))
	}
	return c
}

// D returns the horizon.
func (c *DomainShardMapCollector) D() int { return c.d }

// M returns the domain size.
func (c *DomainShardMapCollector) M() int { return c.m }

// NumShards returns the virtual-shard count.
func (c *DomainShardMapCollector) NumShards() int { return c.numShards }

// SelfID returns this backend's member ID.
func (c *DomainShardMapCollector) SelfID() string { return c.selfID }

// Validate checks one domain hello or report message without side
// effects.
func (c *DomainShardMapCollector) Validate(m Msg) error { return ValidateDomainIngest(c.d, c.m, m) }

// SendBatch validates the whole batch, then applies each message to
// its user's virtual shard. The batch is atomic.
func (c *DomainShardMapCollector) SendBatch(ms []Msg) error {
	maxOrder := dyadic.Log2(c.d)
	for i := range ms {
		if !domainIngestOK(c.d, c.m, maxOrder, &ms[i]) {
			return validateDomainIngest(c.d, c.m, maxOrder, &ms[i])
		}
	}
	c.imu.RLock()
	var hellos, reports int64
	for i := range ms {
		msg := &ms[i]
		srv := c.srvs[membership.ShardOf(msg.User, c.numShards)].Load()
		if msg.Type == MsgDomainHello {
			srv.Register(0, msg.Item, msg.Order)
			hellos++
		} else {
			srv.Ingest(0, msg.Item, protocol.Report{User: msg.User, Order: msg.Order, J: msg.J, Bit: msg.Bit})
			reports++
		}
	}
	c.imu.RUnlock()
	if hellos > 0 {
		c.hellos.Add(hellos)
	}
	c.reports.Add(reports)
	c.batches.Add(1)
	return nil
}

// Stats returns the number of hellos, reports and batches ingested.
func (c *DomainShardMapCollector) Stats() (hellos, reports, batches int64) {
	return c.hellos.Load(), c.reports.Load(), c.batches.Load()
}

// Fold merges every virtual shard's per-item raw sums, in fixed shard
// order, into a fresh domain server, so item queries answer bit-for-
// bit like a single serial domain server fed the same reports.
func (c *DomainShardMapCollector) Fold() (*hh.DomainServer, error) {
	out := hh.NewDomainServer(c.d, c.m, c.scale, 1)
	c.imu.RLock()
	defer c.imu.RUnlock()
	for s := 0; s < c.numShards; s++ {
		srv := c.srvs[s].Load()
		for x := 0; x < c.m; x++ {
			users, perOrder, sums := srv.FoldItem(x)
			if err := out.MergeRawItem(x, users, perOrder, sums); err != nil {
				return nil, fmt.Errorf("transport: folding shard %d item %d: %w", s, x, err)
			}
		}
	}
	return out, nil
}

// ShardSums exports one virtual shard's per-item raw sums (the answer
// to a MsgShardSums request from a quorum-reading domain gateway).
func (c *DomainShardMapCollector) ShardSums(shard int) (DomainSumsFrame, error) {
	if shard < 0 || shard >= c.numShards {
		return DomainSumsFrame{}, fmt.Errorf("transport: shard %d out of range [0..%d)", shard, c.numShards)
	}
	c.imu.RLock()
	defer c.imu.RUnlock()
	return DomainSumsFromServer(c.srvs[shard].Load()), nil
}

// ExportShard serializes one virtual shard's per-item state.
func (c *DomainShardMapCollector) ExportShard(shard int) ([]byte, error) {
	if shard < 0 || shard >= c.numShards {
		return nil, fmt.Errorf("transport: shard %d out of range [0..%d)", shard, c.numShards)
	}
	c.imu.RLock()
	defer c.imu.RUnlock()
	return c.srvs[shard].Load().MarshalState(), nil
}

// InstallShard REPLACES one virtual shard's domain server with the
// given serialized state (fresh server, restore, swap — see the
// Boolean InstallShard for why replace, not fold).
func (c *DomainShardMapCollector) InstallShard(shard int, state []byte) error {
	if shard < 0 || shard >= c.numShards {
		return fmt.Errorf("transport: shard %d out of range [0..%d)", shard, c.numShards)
	}
	fresh := hh.NewDomainServer(c.d, c.m, c.scale, 1)
	if err := fresh.RestoreState(state); err != nil {
		return fmt.Errorf("transport: restoring domain shard %d state: %w", shard, err)
	}
	c.imu.Lock()
	c.srvs[shard].Store(fresh)
	c.imu.Unlock()
	return nil
}

// SetView records a pushed cluster view (see ShardMapCollector.SetView).
func (c *DomainShardMapCollector) SetView(v membership.View) (applied bool, err error) {
	if err := v.Validate(); err != nil {
		return false, err
	}
	if v.NumShards != c.numShards {
		return false, fmt.Errorf("transport: view has %d shards, backend has %d", v.NumShards, c.numShards)
	}
	c.vmu.Lock()
	defer c.vmu.Unlock()
	if c.view.Epoch > 0 && v.Epoch < c.view.Epoch {
		return false, nil
	}
	c.view = v.Clone()
	return true, nil
}

// View returns the most recently pushed cluster view.
func (c *DomainShardMapCollector) View() membership.View {
	c.vmu.Lock()
	defer c.vmu.Unlock()
	return c.view.Clone()
}

// OwnedShards counts the shards this member owns under the current
// view.
func (c *DomainShardMapCollector) OwnedShards() int {
	c.vmu.Lock()
	v := c.view.Clone()
	c.vmu.Unlock()
	if len(v.Members) == 0 {
		return 0
	}
	return len(v.OwnedShards(c.selfID))
}

// Epoch returns the current view's epoch (0 before any push).
func (c *DomainShardMapCollector) Epoch() uint64 {
	c.vmu.Lock()
	defer c.vmu.Unlock()
	return c.view.Epoch
}
