package transport

import (
	"bytes"
	"net"
	"testing"

	"rtf/internal/protocol"
	"rtf/internal/rng"
)

// TestQueryV2RoundTrip checks the versioned query frame survives the
// wire, alone and inside a batch.
func TestQueryV2RoundTrip(t *testing.T) {
	queries := []Msg{
		QueryV2(QueryPoint, 7, 7),
		QueryV2(QueryChange, 3, 12),
		QueryV2(QuerySeries, 0, 0),
		QueryV2(QueryWindow, 1, 64),
	}
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	for _, q := range queries {
		if err := enc.Encode(q); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.EncodeBatch(queries); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(&buf)
	for i := 0; i < 2*len(queries); i++ {
		m, err := dec.Next()
		if err != nil {
			t.Fatal(err)
		}
		if want := queries[i%len(queries)]; m != want {
			t.Fatalf("frame %d: got %+v, want %+v", i, m, want)
		}
	}
}

// TestAnswerFrameRoundTrip checks answer frames of every shape.
func TestAnswerFrameRoundTrip(t *testing.T) {
	frames := []AnswerFrame{
		{Kind: QueryPoint, L: 5, R: 5, Values: []float64{3.25}},
		{Kind: QueryChange, L: 2, R: 9, Values: []float64{-17.5}},
		{Kind: QuerySeries, Values: []float64{1, 2.5, -3, 0}},
		{Kind: QueryWindow, L: 1, R: 2, Values: []float64{0.5, 0.25}},
		{Kind: QuerySeries}, // no values
	}
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	for _, a := range frames {
		if err := enc.EncodeAnswer(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(&buf)
	for i, want := range frames {
		got, err := dec.ReadAnswer()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Kind != want.Kind || got.L != want.L || got.R != want.R || len(got.Values) != len(want.Values) {
			t.Fatalf("frame %d: got %+v, want %+v", i, got, want)
		}
		for j := range want.Values {
			if got.Values[j] != want.Values[j] {
				t.Fatalf("frame %d value %d: got %v, want %v", i, j, got.Values[j], want.Values[j])
			}
		}
	}
	// An answer frame is not a valid Next message.
	var buf2 bytes.Buffer
	enc2 := NewEncoder(&buf2)
	if err := enc2.EncodeAnswer(frames[0]); err != nil {
		t.Fatal(err)
	}
	if err := enc2.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDecoder(&buf2).Next(); err == nil {
		t.Fatal("Next accepted an answer frame")
	}
}

// TestNegativeUserRejected checks the user-id validation at every
// boundary: the encoder, both decode paths, and the collector.
func TestNegativeUserRejected(t *testing.T) {
	enc := NewEncoder(&bytes.Buffer{})
	if err := enc.Encode(Hello(-1, 0)); err == nil {
		t.Error("encoder accepted a negative hello user")
	}
	if err := enc.Encode(Msg{Type: MsgReport, User: -2, Order: 0, J: 1, Bit: 1}); err == nil {
		t.Error("encoder accepted a negative report user")
	}
	if err := enc.EncodeBatch([]Msg{Hello(-1, 0)}); err == nil {
		t.Error("batch encoder accepted a negative user")
	}

	// A wire-level user id ≥ 2^63 would decode to a negative int; both
	// the streaming and the batched fast path must reject it. The
	// uvarint below is 2^63 (nine 0x80 continuation bytes + 0x01).
	huge := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}
	hello := append([]byte{byte(MsgHello)}, huge...)
	hello = append(hello, 0) // order
	if _, err := NewDecoder(bytes.NewReader(hello)).Next(); err == nil {
		t.Error("decoder accepted an overflowing hello user id")
	}
	report := append([]byte{byte(MsgReport)}, huge...)
	report = append(report, 0, 1, 1) // order, j, bit
	if _, err := NewDecoder(bytes.NewReader(report)).Next(); err == nil {
		t.Error("decoder accepted an overflowing report user id")
	}
	// Same bytes inside a batch frame (exercises the Peek fast path when
	// enough bytes are buffered).
	batch := []byte{byte(MsgBatch), 1}
	batch = append(batch, report...)
	batch = append(batch, make([]byte, 64)...) // padding so the fast path engages
	if _, err := NewDecoder(bytes.NewReader(batch)).Next(); err == nil {
		t.Error("batch decoder accepted an overflowing report user id")
	}

	col := NewShardedCollector(protocol.NewSharded(16, 1, 1))
	if err := col.Send(0, Msg{Type: MsgHello, User: -1, Order: 0}); err == nil {
		t.Error("collector accepted a negative hello user")
	}
	if err := col.Send(0, Msg{Type: MsgReport, User: -1, Order: 0, J: 1, Bit: 1}); err == nil {
		t.Error("collector accepted a negative report user")
	}
	if err := col.SendBatch(0, []Msg{{Type: MsgReport, User: -1, Order: 0, J: 1, Bit: 1}}); err == nil {
		t.Error("batch collector accepted a negative report user")
	}
	if err := col.SendBatch(0, []Msg{{Type: MsgHello, User: -1, Order: 0}}); err == nil {
		t.Error("batch collector accepted a negative hello user")
	}
}

// TestAnswerQueryMatchesSerial checks AnswerQuery against a serial
// Server fed the same reports, for every query kind, bit for bit.
func TestAnswerQueryMatchesSerial(t *testing.T) {
	const d, scale = 64, 2.5
	acc := protocol.NewSharded(d, scale, 4)
	serial := protocol.NewServer(d, scale)
	g := rng.New(7, 9)
	for i := 0; i < 5000; i++ {
		h := g.IntN(7)
		r := protocol.Report{User: i, Order: h, J: 1 + g.IntN(d>>uint(h)), Bit: 1}
		if g.Bernoulli(0.5) {
			r.Bit = -1
		}
		acc.Ingest(i%4, r)
		serial.Ingest(r)
	}

	check := func(m Msg, want []float64) {
		t.Helper()
		a, err := AnswerQuery(acc, m)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Values) != len(want) {
			t.Fatalf("%s: %d values, want %d", m.Kind, len(a.Values), len(want))
		}
		for i := range want {
			if a.Values[i] != want[i] {
				t.Fatalf("%s value %d: got %v, want %v", m.Kind, i, a.Values[i], want[i])
			}
		}
	}
	check(QueryV2(QueryPoint, 17, 17), []float64{serial.EstimateAt(17)})
	check(QueryV2(QueryChange, 5, 40), []float64{serial.EstimateChange(5, 40)})
	check(QueryV2(QuerySeries, 0, 0), serial.EstimateSeries())
	check(QueryV2(QueryWindow, 9, 24), serial.EstimateSeries()[8:24])

	for _, bad := range []Msg{
		QueryV2(QueryPoint, 0, 0),
		QueryV2(QueryPoint, d+1, d+1),
		QueryV2(QueryChange, 0, 4),
		QueryV2(QueryChange, 9, 5),
		QueryV2(QueryWindow, 1, d+1),
		QueryV2(QueryKind(99), 1, 1),
		Query(1), // not a v2 frame
	} {
		if _, err := AnswerQuery(acc, bad); err == nil {
			t.Errorf("invalid query %+v accepted", bad)
		}
	}
}

// reusingEstimator is an Estimator whose series methods hand out the
// same internal buffer every call — the engine shape the window-query
// path must defend against by cloning.
type reusingEstimator struct {
	d   int
	buf []float64
}

func (e *reusingEstimator) D() int                          { return e.d }
func (e *reusingEstimator) EstimateAt(t int) float64        { return float64(t) }
func (e *reusingEstimator) EstimateChange(l, r int) float64 { return float64(r - l) }
func (e *reusingEstimator) EstimateSeries() []float64       { return e.EstimateSeriesTo(e.d) }
func (e *reusingEstimator) EstimateSeriesTo(r int) []float64 {
	if e.buf == nil {
		e.buf = make([]float64, e.d)
	}
	for t := 1; t <= r; t++ {
		e.buf[t-1] = float64(t)
	}
	return e.buf[:r]
}

// TestAnswerQueryWindowNoAliasing is the regression test for the
// window-answer aliasing bug: the answer used to be a view into the
// engine's full [1..R] series, so an engine reusing an internal buffer
// (or a caller mutating the answer) corrupted other answers. The window
// answer must be exactly R−L+1 elements with its own backing array.
func TestAnswerQueryWindowNoAliasing(t *testing.T) {
	est := &reusingEstimator{d: 32}
	const l, r = 5, 12
	a, err := AnswerQuery(est, QueryV2(QueryWindow, l, r))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Values) != r-l+1 || cap(a.Values) != r-l+1 {
		t.Fatalf("window answer len=%d cap=%d, want %d/%d", len(a.Values), cap(a.Values), r-l+1, r-l+1)
	}
	// A second query through the same engine reuses its buffer; the
	// first answer must not change. Series answers get the same
	// ownership guarantee.
	first := append([]float64(nil), a.Values...)
	series, err := AnswerQuery(est, QueryV2(QuerySeries, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	firstSeries := append([]float64(nil), series.Values...)
	for i := range est.buf {
		est.buf[i] = -999 // simulate the engine scribbling on its buffer
	}
	for i := range first {
		if a.Values[i] != first[i] {
			t.Fatalf("window answer value %d changed from %v to %v after the engine reused its buffer", i, first[i], a.Values[i])
		}
	}
	for i := range firstSeries {
		if series.Values[i] != firstSeries[i] {
			t.Fatalf("series answer value %d changed from %v to %v after the engine reused its buffer", i, firstSeries[i], series.Values[i])
		}
	}
	// And mutating the answer must not reach the engine's state.
	a.Values[0] = 1e9
	if got := est.EstimateSeriesTo(r)[l-1]; got == 1e9 {
		t.Fatal("mutating the answer reached the engine's buffer")
	}
}

// TestIngestServerAnswersV2 drives v2 queries over real TCP.
func TestIngestServerAnswersV2(t *testing.T) {
	const d = 32
	srv := NewIngestServer(NewShardedCollector(protocol.NewSharded(d, 2, 2)))
	srv.ErrorLog = func(err error) { t.Error(err) }
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0", ready) }()
	addr := (<-ready).String()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(conn)
	dec := NewDecoder(conn)
	// A batch mixing reports and a v2 query: the query answers in stream
	// order, after the reports before it are applied.
	ms := []Msg{
		Hello(1, 0),
		FromReport(protocol.Report{User: 1, Order: 0, J: 3, Bit: 1}),
		QueryV2(QueryWindow, 1, 4),
	}
	if err := enc.EncodeBatch(ms); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	a, err := dec.ReadAnswer()
	if err != nil {
		t.Fatal(err)
	}
	if a.Kind != QueryWindow || len(a.Values) != 4 {
		t.Fatalf("bad answer %+v", a)
	}
	// The report at I{0,3} contributes 2 (scale 2) to â[3] only: C(3)
	// includes I{0,3}, while C(4) = {I{2,1}} does not.
	want := []float64{0, 0, 2, 0}
	for i := range want {
		if a.Values[i] != want[i] {
			t.Fatalf("window value %d: got %v, want %v", i, a.Values[i], want[i])
		}
	}
	conn.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
