package transport

import (
	"bytes"
	"testing"

	"rtf/internal/hh"
	"rtf/internal/protocol"
)

// FuzzHashedDomainDecode feeds arbitrary bytes to the decoder with the
// hashed-domain frames in scope — the seed-carrying hashed hello and
// the encoding-carrying hashed sums request — plus the bucket-tagged
// reports that share MsgDomainReport with the exact encoding. The
// decoder must return messages or errors, never panic; every decoded
// hashed message must satisfy the wire invariants (non-negative user,
// bucket, catalogue and bucket-count fields, ±1 bits); and every
// decoded message must round-trip through the encoder bit-for-bit.
func FuzzHashedDomainDecode(f *testing.F) {
	seed := func(ms ...Msg) []byte {
		var buf bytes.Buffer
		enc := NewEncoder(&buf)
		for _, m := range ms {
			if err := enc.Encode(m); err != nil {
				f.Fatal(err)
			}
		}
		if err := enc.Flush(); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	batch := func(ms ...Msg) []byte {
		var buf bytes.Buffer
		enc := NewEncoder(&buf)
		if err := enc.EncodeBatch(ms); err != nil {
			f.Fatal(err)
		}
		if err := enc.Flush(); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(seed(HashedDomainHello(7, 3, 2, 0xdeadbeef)))
	f.Add(seed(HashedDomainHello(0, 0, 0, 0)))
	f.Add(seed(HashedDomainSums(1_000_000, 256, 0x9e3779b97f4a7c15)))
	f.Add(seed(HashedDomainSums(hh.MaxHashedDomainM, hh.MaxDomainRows, 1)))
	f.Add(batch(
		HashedDomainHello(1, 0, 0, 42),
		FromDomainReport(0, protocol.Report{User: 1, Order: 0, J: 1, Bit: 1}),
	))
	f.Add([]byte{byte(MsgHashedDomainHello), 1, 2})                                             // truncated hello
	f.Add([]byte{byte(MsgHashedDomainHello), 255, 255, 255, 255, 255, 255, 255, 255, 255, 255}) // overlong varint
	f.Add([]byte{byte(MsgHashedDomainSums), 9})                                                 // bad version
	f.Add([]byte{byte(MsgHashedDomainSums), 1, 255, 255, 255, 255, 255, 255, 255, 255, 255, 1}) // huge m
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		check := func(m Msg) {
			switch m.Type {
			case MsgHashedDomainHello:
				if m.User < 0 || m.Item < 0 {
					t.Fatalf("decoded hashed hello with negative field: %+v", m)
				}
			case MsgHashedDomainSums:
				if m.Item < 0 || m.K < 0 {
					t.Fatalf("decoded hashed sums request with negative field: %+v", m)
				}
			case MsgDomainReport:
				if m.Bit != 1 && m.Bit != -1 {
					t.Fatalf("decoded domain report with bit %d", m.Bit)
				}
				if m.User < 0 || m.Item < 0 {
					t.Fatalf("decoded domain report with negative field: %+v", m)
				}
			}
			// Every successfully decoded hashed message re-encodes and
			// re-decodes to itself: the codec cannot lose the seed or
			// the encoding parameters.
			if m.Type == MsgHashedDomainHello || m.Type == MsgHashedDomainSums {
				if m.Order < 0 {
					return // rejected downstream by ingest validation
				}
				var buf bytes.Buffer
				enc := NewEncoder(&buf)
				if err := enc.Encode(m); err != nil {
					t.Fatalf("re-encoding decoded %+v: %v", m, err)
				}
				if err := enc.Flush(); err != nil {
					t.Fatal(err)
				}
				back, err := NewDecoder(bytes.NewReader(buf.Bytes())).Next()
				if err != nil {
					t.Fatalf("re-decoding %+v: %v", m, err)
				}
				if back != m {
					t.Fatalf("round trip changed message: %+v -> %+v", m, back)
				}
			}
		}
		dec := NewDecoder(bytes.NewReader(data))
		for i := 0; i < 1000; i++ {
			m, err := dec.Next()
			if err != nil {
				break // EOF or any descriptive error is fine
			}
			check(m)
		}
		dec = NewDecoder(bytes.NewReader(data))
		total := 0
		for total < 100000 {
			ms, err := dec.NextBatch()
			if err != nil {
				return // EOF or malformed input: any descriptive error is fine
			}
			if len(ms) == 0 {
				t.Fatal("NextBatch returned an empty slice without error")
			}
			for _, m := range ms {
				check(m)
			}
			total += len(ms)
		}
	})
}
