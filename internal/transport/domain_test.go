package transport

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"

	"rtf/internal/dyadic"
	"rtf/internal/hh"
	"rtf/internal/persist"
	"rtf/internal/protocol"
	"rtf/internal/rng"
)

// fillDomainServer ingests a deterministic report mix into ds across
// every item and order.
func fillDomainServer(t testing.TB, ds *hh.DomainServer, n int, seed uint64) {
	t.Helper()
	g := rng.New(seed, 7)
	d := ds.D()
	for u := 0; u < n; u++ {
		item := g.IntN(ds.M())
		h := g.IntN(dyadic.NumOrders(d))
		ds.Register(0, item, h)
		bit := int8(1)
		if g.Bernoulli(0.5) {
			bit = -1
		}
		ds.Ingest(0, item, protocol.Report{User: u, Order: h, J: 1 + g.IntN(d>>uint(h)), Bit: bit})
	}
}

// TestDomainScalarRoundTrip checks every domain scalar message survives
// the wire bit-exactly, alone and inside batch frames.
func TestDomainScalarRoundTrip(t *testing.T) {
	msgs := []Msg{
		DomainHello(0, 0, 0),
		DomainHello(12345, 7, 3),
		FromDomainReport(2, protocol.Report{User: 9, Order: 1, J: 4, Bit: 1}),
		FromDomainReport(0, protocol.Report{User: 1 << 30, Order: 0, J: 1, Bit: -1}),
		DomainQuery(QueryPointItem, 3, 17, 0, 0),
		DomainQuery(QuerySeriesItem, 2, 0, 0, 0),
		DomainQuery(QueryTopK, 0, 9, 0, 5),
		DomainSums(),
	}
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	for _, m := range msgs {
		if err := enc.Encode(m); err != nil {
			t.Fatal(err)
		}
	}
	ingest := []Msg{msgs[0], msgs[1], msgs[2], msgs[3]}
	if err := enc.EncodeBatch(ingest); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(&buf)
	want := append(append([]Msg{}, msgs...), ingest...)
	for i, w := range want {
		got, err := dec.Next()
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if got != w {
			t.Fatalf("msg %d: got %+v, want %+v", i, got, w)
		}
	}
	if _, err := dec.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF, got %v", err)
	}
}

// TestDomainEncodeValidation checks the encoder refuses malformed
// domain messages.
func TestDomainEncodeValidation(t *testing.T) {
	enc := NewEncoder(&bytes.Buffer{})
	bad := []Msg{
		{Type: MsgDomainHello, User: -1},
		{Type: MsgDomainHello, User: 1, Item: -1},
		{Type: MsgDomainReport, User: -1, Item: 0, J: 1, Bit: 1},
		{Type: MsgDomainReport, User: 1, Item: -2, J: 1, Bit: 1},
		{Type: MsgDomainReport, User: 1, Item: 0, J: 1, Bit: 0},
		{Type: MsgDomainQuery, Kind: QueryPointItem, Item: -1},
		{Type: MsgDomainQuery, Kind: QueryTopK, K: -1},
	}
	for i, m := range bad {
		if err := enc.Encode(m); err == nil {
			t.Errorf("bad msg %d (%+v) accepted", i, m)
		}
	}
}

// TestDomainScalarTruncation feeds every prefix of valid encodings to
// the decoder: all must fail cleanly, never panic or misparse.
func TestDomainScalarTruncation(t *testing.T) {
	msgs := []Msg{
		DomainHello(300, 5, 2),
		FromDomainReport(3, protocol.Report{User: 77, Order: 2, J: 3, Bit: 1}),
		DomainQuery(QueryTopK, 0, 300, 0, 1000),
		DomainSums(),
	}
	for _, m := range msgs {
		var buf bytes.Buffer
		enc := NewEncoder(&buf)
		if err := enc.Encode(m); err != nil {
			t.Fatal(err)
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
		full := buf.Bytes()
		for cut := 1; cut < len(full); cut++ {
			dec := NewDecoder(bytes.NewReader(full[:cut]))
			if got, err := dec.Next(); err == nil {
				t.Fatalf("truncated %v at %d decoded as %+v", m, cut, got)
			}
		}
	}
}

// TestDomainAnswerRoundTrip pins the variable-length answer frame.
func TestDomainAnswerRoundTrip(t *testing.T) {
	frames := []DomainAnswerFrame{
		{Kind: QueryPointItem, Item: 3, L: 17, Values: []float64{42.5}},
		{Kind: QuerySeriesItem, Item: 0, Values: []float64{1, -2.5, 3e300, 0}},
		{Kind: QueryTopK, L: 9, K: 3, Items: []int{2, 0, 1}, Values: []float64{30, 20, 20}},
		{Kind: QueryTopK, L: 1, K: 0},
	}
	for _, f := range frames {
		var buf bytes.Buffer
		enc := NewEncoder(&buf)
		if err := enc.EncodeDomainAnswer(f); err != nil {
			t.Fatal(err)
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
		full := append([]byte(nil), buf.Bytes()...)
		got, err := NewDecoder(&buf).ReadDomainAnswer()
		if err != nil {
			t.Fatal(err)
		}
		if got.Kind != f.Kind || got.Item != f.Item || got.L != f.L || got.R != f.R || got.K != f.K ||
			len(got.Items) != len(f.Items) || len(got.Values) != len(f.Values) {
			t.Fatalf("round trip: got %+v, want %+v", got, f)
		}
		for i := range f.Items {
			if got.Items[i] != f.Items[i] {
				t.Fatalf("item %d: got %d, want %d", i, got.Items[i], f.Items[i])
			}
		}
		for i := range f.Values {
			if got.Values[i] != f.Values[i] {
				t.Fatalf("value %d: got %v, want %v", i, got.Values[i], f.Values[i])
			}
		}
		// Truncations fail cleanly.
		for cut := 1; cut < len(full); cut++ {
			if _, err := NewDecoder(bytes.NewReader(full[:cut])).ReadDomainAnswer(); err == nil {
				t.Fatalf("truncated answer at %d accepted", cut)
			}
		}
	}
	// Encoder validation.
	enc := NewEncoder(&bytes.Buffer{})
	if err := enc.EncodeDomainAnswer(DomainAnswerFrame{Item: -1}); err == nil {
		t.Error("negative item accepted")
	}
	if err := enc.EncodeDomainAnswer(DomainAnswerFrame{Items: []int{-1}}); err == nil {
		t.Error("negative item entry accepted")
	}
	if err := enc.EncodeDomainAnswer(DomainAnswerFrame{Values: make([]float64, MaxAnswerLen+1)}); err == nil {
		t.Error("oversized answer accepted")
	}
	// Wrong frame type.
	var buf bytes.Buffer
	e2 := NewEncoder(&buf)
	if err := e2.Encode(Hello(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := e2.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDecoder(&buf).ReadDomainAnswer(); err == nil {
		t.Error("hello accepted as domain answer")
	}
}

// testDomainServer builds a filled server for frame tests.
func testDomainServer(t testing.TB, d, m int, scale float64) *hh.DomainServer {
	t.Helper()
	ds := hh.NewDomainServer(d, m, scale, 2)
	fillDomainServer(t, ds, 500, 11)
	return ds
}

// TestDomainSumsRoundTrip pins the per-item raw-sums frame: encode,
// decode, merge, and bit-for-bit equality of every estimate.
func TestDomainSumsRoundTrip(t *testing.T) {
	ds := testDomainServer(t, 32, 5, 17.25)
	f := DomainSumsFromServer(ds)
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.EncodeDomainSums(f); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	full := append([]byte(nil), buf.Bytes()...)
	got, err := NewDecoder(&buf).ReadDomainSums()
	if err != nil {
		t.Fatal(err)
	}
	merged := hh.NewDomainServer(32, 5, 17.25, 1)
	if err := got.MergeInto(merged); err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 5; x++ {
		a, b := ds.EstimateItemSeries(x), merged.EstimateItemSeries(x)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("item %d t=%d: merged %v, want %v", x, i+1, b[i], a[i])
			}
		}
	}
	if merged.Users() != ds.Users() {
		t.Fatalf("merged %d users, want %d", merged.Users(), ds.Users())
	}
	// Truncations fail cleanly.
	for cut := 1; cut < len(full); cut += 7 {
		if _, err := NewDecoder(bytes.NewReader(full[:cut])).ReadDomainSums(); err == nil {
			t.Fatalf("truncated sums at %d accepted", cut)
		}
	}
	// Mismatched merges are refused.
	if err := got.MergeInto(hh.NewDomainServer(32, 4, 17.25, 1)); err == nil {
		t.Error("merge into wrong m accepted")
	}
	if err := got.MergeInto(hh.NewDomainServer(16, 5, 17.25, 1)); err == nil {
		t.Error("merge into wrong d accepted")
	}
	if err := got.MergeInto(hh.NewDomainServer(32, 5, 18, 1)); err == nil {
		t.Error("merge into wrong scale accepted")
	}
}

// TestDomainSumsCorruption flips headers into invalid shapes; decode
// must fail with descriptive errors, before any huge allocation.
func TestDomainSumsCorruption(t *testing.T) {
	ds := testDomainServer(t, 16, 4, 3)
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.EncodeDomainSums(DomainSumsFromServer(ds)); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	mut := func(mutate func(b []byte)) error {
		b := append([]byte(nil), full...)
		mutate(b)
		_, err := NewDecoder(bytes.NewReader(b)).ReadDomainSums()
		return err
	}
	if err := mut(func(b []byte) { b[1] = 99 }); err == nil {
		t.Error("bad version accepted")
	}
	if err := mut(func(b []byte) { b[2] = 15 }); err == nil {
		t.Error("non-pow2 horizon accepted")
	}
	if err := mut(func(b []byte) { b[3] = 1 }); err == nil {
		t.Error("domain of one accepted")
	}
	if err := mut(func(b []byte) { b[0] = byte(MsgSumsFrame) }); err == nil {
		t.Error("wrong frame type accepted")
	}
	// Encoder-side validation.
	if err := enc.EncodeDomainSums(DomainSumsFrame{D: 16, M: 1}); err == nil {
		t.Error("domain of one encoded")
	}
	if err := enc.EncodeDomainSums(DomainSumsFrame{D: 16, M: MaxDomainM + 1}); err == nil {
		t.Error("oversized domain encoded")
	}
	f := DomainSumsFromServer(ds)
	f.Items[0].Users = -1
	if err := enc.EncodeDomainSums(f); err == nil {
		t.Error("negative user count encoded")
	}
}

// TestValidateDomainIngest covers the validation table.
func TestValidateDomainIngest(t *testing.T) {
	const d, m = 16, 4
	ok := []Msg{
		DomainHello(0, 0, 0),
		DomainHello(5, 3, 4),
		FromDomainReport(2, protocol.Report{User: 1, Order: 2, J: 4, Bit: -1}),
	}
	for _, msg := range ok {
		if err := ValidateDomainIngest(d, m, msg); err != nil {
			t.Errorf("valid %+v rejected: %v", msg, err)
		}
	}
	bad := []Msg{
		{Type: MsgDomainHello, User: -1},
		{Type: MsgDomainHello, User: 1, Item: 4},
		{Type: MsgDomainHello, User: 1, Item: 0, Order: 5},
		{Type: MsgDomainReport, User: 1, Item: 0, Order: 0, J: 0, Bit: 1},
		{Type: MsgDomainReport, User: 1, Item: 0, Order: 0, J: 17, Bit: 1},
		{Type: MsgDomainReport, User: 1, Item: 0, Order: 2, J: 5, Bit: 1},
		{Type: MsgDomainReport, User: 1, Item: 0, Order: 0, J: 1, Bit: 0},
		{Type: MsgDomainReport, User: 1, Item: -1, Order: 0, J: 1, Bit: 1},
		Hello(1, 0), // Boolean hello on a domain server
		Query(1),    // v1 query is not ingestible either
		{Type: MsgDomainQuery, Kind: QueryPointItem, Item: 0, L: 1}, // queries are not ingest
	}
	for _, msg := range bad {
		if err := ValidateDomainIngest(d, m, msg); err == nil {
			t.Errorf("invalid %+v accepted", msg)
		}
	}
}

// TestValidateDomainQuery covers the query validation table.
func TestValidateDomainQuery(t *testing.T) {
	const d, m = 16, 4
	ok := []Msg{
		DomainQuery(QueryPointItem, 0, 1, 0, 0),
		DomainQuery(QueryPointItem, 3, 16, 0, 0),
		DomainQuery(QuerySeriesItem, 2, 0, 0, 0),
		DomainQuery(QueryTopK, 0, 8, 0, 0),
		DomainQuery(QueryTopK, 0, 8, 0, 100),
	}
	for _, msg := range ok {
		if err := ValidateDomainQuery(d, m, msg); err != nil {
			t.Errorf("valid %+v rejected: %v", msg, err)
		}
	}
	bad := []Msg{
		DomainQuery(QueryPointItem, 4, 1, 0, 0),
		DomainQuery(QueryPointItem, 0, 0, 0, 0),
		DomainQuery(QueryPointItem, 0, 17, 0, 0),
		DomainQuery(QuerySeriesItem, 4, 0, 0, 0),
		DomainQuery(QueryTopK, 0, 0, 0, 1),
		DomainQuery(QueryTopK, 0, 17, 0, 1),
		{Type: MsgDomainQuery, Kind: QueryTopK, L: 1, K: -1},
		DomainQuery(QueryPoint, 0, 1, 0, 0), // Boolean kind in a domain frame
		DomainQuery(QueryKind(99), 0, 1, 0, 0),
		QueryV2(QueryPoint, 1, 0), // not a domain query at all
	}
	for _, msg := range bad {
		if err := ValidateDomainQuery(d, m, msg); err == nil {
			t.Errorf("invalid %+v accepted", msg)
		}
	}
}

// TestAnswerDomainQuery pins the answer payloads against the direct
// engine reads.
func TestAnswerDomainQuery(t *testing.T) {
	ds := testDomainServer(t, 16, 4, 2.5)
	a, err := AnswerDomainQuery(ds, DomainQuery(QueryPointItem, 2, 9, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Values) != 1 || a.Values[0] != ds.EstimateItemAt(2, 9) {
		t.Fatalf("point-item answer %+v", a)
	}
	a, err = AnswerDomainQuery(ds, DomainQuery(QuerySeriesItem, 1, 0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	series := ds.EstimateItemSeries(1)
	if len(a.Values) != len(series) {
		t.Fatalf("series-item answer has %d values, want %d", len(a.Values), len(series))
	}
	for i := range series {
		if a.Values[i] != series[i] {
			t.Fatalf("series value %d: %v, want %v", i, a.Values[i], series[i])
		}
	}
	a, err = AnswerDomainQuery(ds, DomainQuery(QueryTopK, 0, 16, 0, 3))
	if err != nil {
		t.Fatal(err)
	}
	top := ds.TopK(16, 3)
	if len(a.Items) != len(top) || len(a.Values) != len(top) {
		t.Fatalf("top-k answer shape %d/%d, want %d", len(a.Items), len(a.Values), len(top))
	}
	for i, ic := range top {
		if a.Items[i] != ic.Item || a.Values[i] != ic.Count {
			t.Fatalf("top-k answer %v/%v, want %v", a.Items, a.Values, top)
		}
	}
	if _, err := AnswerDomainQuery(ds, DomainQuery(QueryPointItem, 9, 1, 0, 0)); err == nil {
		t.Error("invalid query answered")
	}
}

// TestDomainCollectorAtomicBatch pins batch atomicity: a batch with one
// invalid message applies nothing.
func TestDomainCollectorAtomicBatch(t *testing.T) {
	ds := hh.NewDomainServer(16, 4, 2, 1)
	col := NewDomainCollector(ds)
	batch := []Msg{
		DomainHello(1, 0, 0),
		FromDomainReport(0, protocol.Report{User: 1, Order: 0, J: 1, Bit: 1}),
		{Type: MsgDomainReport, User: 2, Item: 9, Order: 0, J: 1, Bit: 1}, // invalid item
		DomainHello(3, 1, 0),
	}
	if err := col.SendBatch(0, batch); err == nil {
		t.Fatal("invalid batch accepted")
	}
	hellos, reports, batches := col.Stats()
	if hellos != 0 || reports != 0 || batches != 0 {
		t.Fatalf("partial application: hellos=%d reports=%d batches=%d", hellos, reports, batches)
	}
	if ds.Users() != 0 {
		t.Fatalf("users registered from a rejected batch: %d", ds.Users())
	}
	if err := col.SendBatch(1, batch[:2]); err != nil {
		t.Fatal(err)
	}
	hellos, reports, batches = col.Stats()
	if hellos != 1 || reports != 1 || batches != 1 {
		t.Fatalf("stats: hellos=%d reports=%d batches=%d", hellos, reports, batches)
	}
	if err := col.Send(0, DomainHello(5, 2, 1)); err != nil {
		t.Fatal(err)
	}
	if ds.Users() != 2 {
		t.Fatalf("users = %d, want 2", ds.Users())
	}
}

// TestDomainIngestServer drives the TCP domain mode end to end: ingest
// batches, item-scoped queries, per-item sums fetches, and batch
// atomicity across query boundaries.
func TestDomainIngestServer(t *testing.T) {
	const d, m, scale = 16, 4, 2.0
	ds := hh.NewDomainServer(d, m, scale, 4)
	srv := NewDomainIngestServer(NewDomainCollector(ds))
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0", ready) }()
	addr := (<-ready).String()
	defer func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Error(err)
		}
	}()

	ref := hh.NewDomainServer(d, m, scale, 1)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := NewEncoder(conn)
	dec := NewDecoder(conn)

	g := rng.New(3, 9)
	var batch []Msg
	for u := 0; u < 300; u++ {
		item := g.IntN(m)
		h := g.IntN(dyadic.NumOrders(d))
		batch = append(batch, DomainHello(u, item, h))
		ref.Register(0, item, h)
		bit := int8(1)
		if g.Bernoulli(0.5) {
			bit = -1
		}
		r := protocol.Report{User: u, Order: h, J: 1 + g.IntN(d>>uint(h)), Bit: bit}
		batch = append(batch, FromDomainReport(item, r))
		ref.Ingest(0, item, r)
	}
	// Mixed batch: ingest run, then queries answered in stream order.
	batch = append(batch,
		DomainQuery(QueryPointItem, 1, d, 0, 0),
		DomainQuery(QuerySeriesItem, 2, 0, 0, 0),
		DomainQuery(QueryTopK, 0, d, 0, m),
	)
	if err := enc.EncodeBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	point, err := dec.ReadDomainAnswer()
	if err != nil {
		t.Fatal(err)
	}
	if point.Values[0] != ref.EstimateItemAt(1, d) {
		t.Fatalf("point-item over TCP %v, want %v", point.Values[0], ref.EstimateItemAt(1, d))
	}
	series, err := dec.ReadDomainAnswer()
	if err != nil {
		t.Fatal(err)
	}
	want := ref.EstimateItemSeries(2)
	for i := range want {
		if series.Values[i] != want[i] {
			t.Fatalf("series-item value %d: %v, want %v", i, series.Values[i], want[i])
		}
	}
	topA, err := dec.ReadDomainAnswer()
	if err != nil {
		t.Fatal(err)
	}
	top := ref.TopK(d, m)
	for i, ic := range top {
		if topA.Items[i] != ic.Item || topA.Values[i] != ic.Count {
			t.Fatalf("top-k over TCP %v/%v, want %v", topA.Items, topA.Values, top)
		}
	}

	// Raw per-item sums: the gateway's carrier.
	if err := enc.Encode(DomainSums()); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	f, err := dec.ReadDomainSums()
	if err != nil {
		t.Fatal(err)
	}
	merged := hh.NewDomainServer(d, m, scale, 1)
	if err := f.MergeInto(merged); err != nil {
		t.Fatal(err)
	}
	for x := 0; x < m; x++ {
		a, b := ref.EstimateItemSeries(x), merged.EstimateItemSeries(x)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("item %d: fetched sums diverge at t=%d", x, i+1)
			}
		}
	}

	// Batch atomicity across the network: a batch with a bad query after
	// valid reports must apply nothing and fail the connection.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	enc2 := NewEncoder(conn2)
	before, _, _ := srv.Domain.Stats()
	poison := []Msg{
		DomainHello(9999, 0, 0),
		DomainQuery(QueryPointItem, m+3, 1, 0, 0), // invalid item
	}
	if err := enc2.EncodeBatch(poison); err != nil {
		t.Fatal(err)
	}
	if err := enc2.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDecoder(conn2).ReadDomainAnswer(); err == nil {
		t.Fatal("poisoned batch answered")
	}
	after, _, _ := srv.Domain.Stats()
	if after != before {
		t.Fatalf("poisoned batch applied %d hellos", after-before)
	}

	// Boolean frames on a domain server fail the connection.
	conn3, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn3.Close()
	enc3 := NewEncoder(conn3)
	if err := enc3.Encode(Hello(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := enc3.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDecoder(conn3).Next(); !errors.Is(err, io.EOF) && err == nil {
		t.Fatal("boolean hello on a domain server did not close the connection")
	}
}

// TestDurableDomainCollector proves the domain crash-safety story in
// process: journal + snapshot + reopen must reproduce every estimate
// bit-for-bit, through both the WAL-replay and snapshot+suffix paths.
func TestDurableDomainCollector(t *testing.T) {
	const d, m, scale = 16, 4, 2.0
	dir := t.TempDir()
	meta := persist.Meta{Mechanism: "test", D: d, K: 2, M: m, Eps: 1, Scale: scale}

	mk := func() *hh.DomainServer { return hh.NewDomainServer(d, m, scale, 2) }
	ds := mk()
	col, stats, err := OpenDurableDomain(ds, dir, meta, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SnapshotCursor != 0 || stats.Replayed != 0 {
		t.Fatalf("fresh dir recovered %+v", stats)
	}
	ref := hh.NewDomainServer(d, m, scale, 1)
	g := rng.New(21, 4)
	feed := func(c *DurableDomainCollector, lo, hi int) {
		for u := lo; u < hi; u++ {
			item := g.IntN(m)
			h := g.IntN(dyadic.NumOrders(d))
			bit := int8(1)
			if g.Bernoulli(0.5) {
				bit = -1
			}
			r := protocol.Report{User: u, Order: h, J: 1 + g.IntN(d>>uint(h)), Bit: bit}
			batch := []Msg{DomainHello(u, item, h), FromDomainReport(item, r)}
			if err := c.SendBatch(u, batch); err != nil {
				t.Fatal(err)
			}
			ref.Register(0, item, h)
			ref.Ingest(0, item, r)
		}
	}
	feed(col, 0, 200)
	if _, err := col.Snapshot(); err != nil {
		t.Fatal(err)
	}
	feed(col, 200, 400) // WAL suffix past the snapshot
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}

	ds2 := mk()
	col2, stats2, err := OpenDurableDomain(ds2, dir, meta, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer col2.Close()
	if stats2.SnapshotCursor == 0 {
		t.Fatal("snapshot not used on reopen")
	}
	if stats2.Replayed == 0 {
		t.Fatal("WAL suffix not replayed on reopen")
	}
	for x := 0; x < m; x++ {
		a, b := ref.EstimateItemSeries(x), ds2.EstimateItemSeries(x)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("item %d t=%d: recovered %v, want %v", x, i+1, b[i], a[i])
			}
		}
	}
	ta, tb := ref.TopK(d, m), ds2.TopK(d, m)
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("recovered TopK %v, want %v", tb, ta)
		}
	}
	if ds2.Users() != 400 {
		t.Fatalf("recovered %d users, want 400", ds2.Users())
	}

	// A differently-configured reopen is refused.
	bad := meta
	bad.M = m + 1
	if _, _, err := OpenDurableDomain(hh.NewDomainServer(d, m+1, scale, 1), dir, bad, DurableOptions{}); err == nil {
		t.Fatal("mismatched meta accepted")
	}
	// Meta/domain-size mismatch at open is refused before touching disk.
	if _, _, err := OpenDurableDomain(mk(), t.TempDir(), bad, DurableOptions{}); err == nil {
		t.Fatal("meta.M != server.M accepted")
	}
	// Atomic batches: a bad batch journals nothing.
	ds3 := mk()
	dir3 := t.TempDir()
	col3, _, err := OpenDurableDomain(ds3, dir3, meta, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	poison := []Msg{DomainHello(1, 0, 0), {Type: MsgDomainReport, User: 1, Item: m, J: 1, Bit: 1}}
	if err := col3.SendBatch(0, poison); err == nil {
		t.Fatal("poisoned batch accepted")
	}
	if err := col3.Close(); err != nil {
		t.Fatal(err)
	}
	ds4 := mk()
	_, stats4, err := OpenDurableDomain(ds4, dir3, meta, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats4.Replayed != 0 || ds4.Users() != 0 {
		t.Fatalf("poisoned batch left %d records / %d users behind", stats4.Replayed, ds4.Users())
	}
}
