package transport

import (
	"bytes"
	"errors"
	"io"
	"math"
	"sync"
	"testing"
	"testing/quick"

	"rtf/internal/protocol"
	"rtf/internal/rng"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	msgs := []Msg{
		Hello(0, 0),
		Hello(123456, 10),
		FromReport(protocol.Report{User: 7, Order: 3, J: 42, Bit: 1}),
		FromReport(protocol.Report{User: 999999, Order: 0, J: 1, Bit: -1}),
	}
	for _, m := range msgs {
		if err := enc.Encode(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	if enc.BytesWritten() != int64(buf.Len()) {
		t.Errorf("BytesWritten = %d, buffer has %d", enc.BytesWritten(), buf.Len())
	}
	dec := NewDecoder(&buf)
	for i, want := range msgs {
		got, err := dec.Next()
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("message %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := dec.Next(); err != io.EOF {
		t.Errorf("expected io.EOF at end, got %v", err)
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	f := func(user uint32, order uint8, j uint16, bitRaw bool) bool {
		bit := int8(1)
		if bitRaw {
			bit = -1
		}
		m := FromReport(protocol.Report{
			User:  int(user),
			Order: int(order % 30),
			J:     int(j) + 1,
			Bit:   bit,
		})
		var buf bytes.Buffer
		enc := NewEncoder(&buf)
		if enc.Encode(m) != nil || enc.Flush() != nil {
			return false
		}
		got, err := NewDecoder(&buf).Next()
		return err == nil && got == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	enc := NewEncoder(io.Discard)
	if err := enc.Encode(Msg{Type: MsgReport, Bit: 0}); err == nil {
		t.Error("bit 0 accepted")
	}
	if err := enc.Encode(Msg{Type: 99}); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestDecodeTruncated(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.Encode(FromReport(protocol.Report{User: 300, Order: 2, J: 500, Bit: 1})); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut++ {
		dec := NewDecoder(bytes.NewReader(full[:cut]))
		if _, err := dec.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("cut at %d: got %v, want ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestDecodeBadBytes(t *testing.T) {
	// Unknown type byte.
	dec := NewDecoder(bytes.NewReader([]byte{99, 0}))
	if _, err := dec.Next(); err == nil {
		t.Error("unknown type decoded")
	}
	// Report with invalid bit byte: type=2, user=0, order=0, j=1, bit=7.
	dec = NewDecoder(bytes.NewReader([]byte{2, 0, 0, 1, 7}))
	if _, err := dec.Next(); err == nil {
		t.Error("invalid bit byte decoded")
	}
}

func TestMsgReportConversion(t *testing.T) {
	r := protocol.Report{User: 5, Order: 1, J: 3, Bit: -1}
	if got := FromReport(r).Report(); got != r {
		t.Errorf("round trip = %+v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Report() on hello did not panic")
		}
	}()
	Hello(1, 2).Report()
}

func TestCollectorConcurrentSend(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	const senders, each = 20, 500
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := c.Send(Hello(s, i%5)); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	if c.Len() != senders*each {
		t.Fatalf("collected %d, want %d", c.Len(), senders*each)
	}
	n := 0
	c.Drain(func(Msg) { n++ })
	if n != senders*each {
		t.Fatalf("drained %d, want %d", n, senders*each)
	}
	if c.Len() != 0 {
		t.Error("collector not empty after drain")
	}
}

func TestCollectorClose(t *testing.T) {
	c := NewCollector()
	if err := c.Send(Hello(1, 1)); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := c.Send(Hello(2, 2)); err == nil {
		t.Error("send after close accepted")
	}
	if c.Len() != 1 {
		t.Error("message lost on close")
	}
}

func TestLossyLinkRate(t *testing.T) {
	g := rng.New(1, 2)
	l := NewLossyLink(0.3, g)
	const n = 100000
	for i := 0; i < n; i++ {
		l.Deliver()
	}
	delivered, dropped := l.Stats()
	if delivered+dropped != n {
		t.Fatalf("counts %d+%d != %d", delivered, dropped, n)
	}
	got := float64(dropped) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Errorf("drop rate %v, want 0.3", got)
	}
	// Degenerate rates.
	l0 := NewLossyLink(0, g)
	l1 := NewLossyLink(1, g)
	for i := 0; i < 100; i++ {
		if !l0.Deliver() {
			t.Fatal("dropProb=0 dropped")
		}
		if l1.Deliver() {
			t.Fatal("dropProb=1 delivered")
		}
	}
}

func TestLossyLinkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid drop prob did not panic")
		}
	}()
	NewLossyLink(1.5, rng.New(1, 1))
}

func TestWireSizeCompact(t *testing.T) {
	// A small-field report must encode in ≤ 6 bytes.
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.Encode(FromReport(protocol.Report{User: 100, Order: 5, J: 12, Bit: 1})); err != nil {
		t.Fatal(err)
	}
	enc.Flush()
	if buf.Len() > 6 {
		t.Errorf("report encoded in %d bytes, want <= 6", buf.Len())
	}
}
