package transport

import (
	"bytes"
	"encoding/hex"
	"testing"

	"rtf/internal/protocol"
)

// goldenMsgs is a fixed mix of every pre-hashed wire message type. The
// byte pins below were captured before the DomainEncoding refactor:
// with the exact encoding, every wire byte is part of the compatibility
// surface, and a deployed fleet of clients and gateways must keep
// interoperating across the upgrade.
func goldenMsgs() []Msg {
	return []Msg{
		Hello(7, 3),
		FromReport(protocol.Report{User: 7, Order: 3, J: 2, Bit: 1}),
		FromReport(protocol.Report{User: 7, Order: 3, J: 5, Bit: -1}),
		Query(9),
		QueryV2(QuerySeries, 1, 8),
		Sums(),
		DomainHello(11, 5, 2),
		FromDomainReport(5, protocol.Report{User: 11, Order: 2, J: 3, Bit: 1}),
		DomainQuery(QueryPointItem, 5, 7, 0, 0),
		DomainQuery(QueryTopK, 0, 8, 0, 3),
		DomainSums(),
	}
}

const (
	goldenScalarHex = "010703020703020102070305000409060103010808010a0b05020b0b050203010c0105050700000c0107000800030e01"
	goldenBatchHex  = "030b010703020703020102070305000409060103010808010a0b05020b0b050203010c0105050700000c0107000800030e01"
)

// TestWireGoldenBytes pins the scalar and batch encodings of every
// pre-hashed message type to bytes captured before the DomainEncoding
// refactor. A diff here is a wire compatibility break, not a test to
// update casually.
func TestWireGoldenBytes(t *testing.T) {
	msgs := goldenMsgs()

	var scalar bytes.Buffer
	enc := NewEncoder(&scalar)
	for _, m := range msgs {
		if err := enc.Encode(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := hex.EncodeToString(scalar.Bytes()); got != goldenScalarHex {
		t.Errorf("scalar stream changed:\n got  %s\n want %s", got, goldenScalarHex)
	}

	var batch bytes.Buffer
	enc = NewEncoder(&batch)
	if err := enc.EncodeBatch(msgs); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := hex.EncodeToString(batch.Bytes()); got != goldenBatchHex {
		t.Errorf("batch frame changed:\n got  %s\n want %s", got, goldenBatchHex)
	}

	// And the pinned bytes decode back to the original messages, scalar
	// and batch alike.
	raw, err := hex.DecodeString(goldenScalarHex)
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(bytes.NewReader(raw))
	for i, w := range msgs {
		got, err := dec.Next()
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if got != w {
			t.Fatalf("msg %d: decoded %+v, want %+v", i, got, w)
		}
	}
	raw, err = hex.DecodeString(goldenBatchHex)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := NewDecoder(bytes.NewReader(raw)).NextBatch()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(msgs) {
		t.Fatalf("batch decoded %d messages, want %d", len(ms), len(msgs))
	}
	for i := range ms {
		if ms[i] != msgs[i] {
			t.Fatalf("batch msg %d: decoded %+v, want %+v", i, ms[i], msgs[i])
		}
	}
}
