package transport_test

import (
	"fmt"
	"os"

	"rtf/internal/persist"
	"rtf/internal/protocol"
	"rtf/internal/transport"
)

// ExampleOpenDurable walks the full durability cycle: ingest through a
// durable collector, cut a snapshot, ingest more (covered only by the
// write-ahead log), "crash" by discarding everything in memory, and
// reopen into a fresh accumulator. Recovery restores the snapshot and
// replays the WAL records past its cursor, so the recovered server
// answers exactly as an uninterrupted one would.
func ExampleOpenDurable() {
	dir, err := os.MkdirTemp("", "rtf-example-*")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer os.RemoveAll(dir)

	const d, scale = 8, 1.0
	meta := persist.Meta{Mechanism: "example", D: d, K: 4, Eps: 1, Scale: scale}

	dc, _, err := transport.OpenDurable(protocol.NewSharded(d, scale, 1), dir, meta, transport.DurableOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}

	// Three users each announce order 0 and report a +1 bit for the
	// leaf interval [3..3]; then a snapshot covers them.
	var ms []transport.Msg
	for u := 0; u < 3; u++ {
		ms = append(ms,
			transport.Hello(u, 0),
			transport.FromReport(protocol.Report{User: u, Order: 0, J: 3, Bit: 1}))
	}
	if err := dc.SendBatch(0, ms); err != nil {
		fmt.Println(err)
		return
	}
	if _, err := dc.Snapshot(); err != nil {
		fmt.Println(err)
		return
	}

	// A fourth user arrives after the snapshot — only the WAL has it.
	err = dc.SendBatch(0, []transport.Msg{
		transport.Hello(3, 0),
		transport.FromReport(protocol.Report{User: 3, Order: 0, J: 3, Bit: 1}),
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	dc.Close() // crash: the in-memory accumulator is gone

	acc := protocol.NewSharded(d, scale, 1)
	dc2, stats, err := transport.OpenDurable(acc, dir, meta, transport.DurableOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer dc2.Close()

	fmt.Printf("recovered %d users (snapshot + %d replayed WAL records)\n",
		acc.Users(), stats.Replayed)
	fmt.Printf("estimate at t=3: %g\n", acc.EstimateAt(3))
	// Output:
	// recovered 4 users (snapshot + 1 replayed WAL records)
	// estimate at t=3: 4
}
