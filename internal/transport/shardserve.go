package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"time"
)

// This file is the serving loop of a membership-mode backend: the
// Boolean and domain ingest loops over a shard-map collector. On top
// of the ordinary ingest/query traffic they handle the membership
// control plane — view pushes, per-shard raw-sums requests from a
// quorum-reading gateway, shard state export, and shard transfer
// installs — all on the same connection, with the same atomic-batch
// discipline.

// NewShardMapIngestServer builds a membership-mode Boolean server over
// the given shard-map collector.
func NewShardMapIngestServer(c ShardMapBatchCollector) *IngestServer {
	return &IngestServer{ShardMap: c, conns: make(map[net.Conn]struct{})}
}

// NewDomainShardMapIngestServer builds a membership-mode domain server
// over the given shard-map collector.
func NewDomainShardMapIngestServer(c *DomainShardMapCollector) *IngestServer {
	return &IngestServer{DomainShardMap: c, conns: make(map[net.Conn]struct{})}
}

// handleMemberFrame answers the membership control frames both
// serve loops share: a view push or shard-transfer install, each
// acknowledged with one MsgMemberAck. It reports whether the frame was
// one of them. An install or hard view failure still acks (negatively)
// before surfacing the error, so the pushing gateway sees a refusal
// rather than a hang.
func handleMemberFrame(m Msg, dec *Decoder, enc *Encoder,
	setView func() (bool, error), install func(shard int, state []byte) error) (bool, error) {
	switch m.Type {
	case MsgView:
		applied, err := setView()
		if err != nil {
			enc.EncodeMemberAck(false)
			enc.Flush()
			return true, err
		}
		if err := enc.EncodeMemberAck(applied); err != nil {
			return true, err
		}
		return true, enc.Flush()
	case MsgShardTransfer:
		state := dec.TakeShardState()
		if err := install(m.Shard, state); err != nil {
			enc.EncodeMemberAck(false)
			enc.Flush()
			return true, err
		}
		if err := enc.EncodeMemberAck(true); err != nil {
			return true, err
		}
		return true, enc.Flush()
	}
	return false, nil
}

// serveShardConn runs the decode loop of a membership-mode Boolean
// connection. Ingest messages route to their user's virtual shard;
// queries fold the shard map into a fresh serial accumulator; shard-
// scoped requests serve the quorum-read and reshard flows. Batches
// are atomic exactly as on the other serving paths.
func (s *IngestServer) serveShardConn(id int, dec *Decoder, enc *Encoder) error {
	col := s.ShardMap
	sm := col.Map()
	isQuery := func(m Msg) bool {
		switch m.Type {
		case MsgQuery, MsgQueryV2, MsgSums, MsgShardSums, MsgShardState:
			return true
		}
		return false
	}
	for {
		ms, err := dec.NextBatch()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil // clean client close or server shutdown
			}
			return err
		}
		if len(ms) == 1 {
			handled, err := handleMemberFrame(ms[0], dec, enc,
				func() (bool, error) { return sm.SetView(dec.TakeView()) },
				col.InstallShard)
			if err != nil {
				return err
			}
			if handled {
				continue
			}
		}
		acked := dec.AckedBatch()
		start := time.Now()
		ingest := 0
		for _, m := range ms {
			if acked && isQuery(m) {
				return fmt.Errorf("message type %d (query) inside acked batch", m.Type)
			}
			switch m.Type {
			case MsgQuery:
				if m.T < 1 || m.T > sm.D() {
					return fmt.Errorf("query time %d out of range [1..%d]", m.T, sm.D())
				}
			case MsgQueryV2:
				if err := ValidateQuery(sm.D(), m); err != nil {
					return err
				}
			case MsgSums:
				// No parameters to validate.
			case MsgShardSums, MsgShardState:
				if m.Shard < 0 || m.Shard >= sm.NumShards() {
					return fmt.Errorf("shard %d out of range [0..%d)", m.Shard, sm.NumShards())
				}
			default:
				if err := col.Validate(m); err != nil {
					return err
				}
				ingest++
			}
		}
		shed, holding, err := s.admitBatch(acked, enc)
		if err != nil {
			return err
		}
		if shed {
			continue
		}
		err = BatchRuns(ms, isQuery,
			func(run []Msg) error { return col.SendBatch(run) },
			func(m Msg) error {
				if s.Metrics != nil {
					s.Metrics.CountQuery("membership", QueryKindName(m))
				}
				switch m.Type {
				case MsgQuery:
					est, err := sm.Estimator()
					if err != nil {
						return err
					}
					if err := enc.Encode(Estimate(m.T, est.EstimateAt(m.T))); err != nil {
						return err
					}
				case MsgQueryV2:
					est, err := sm.Estimator()
					if err != nil {
						return err
					}
					ans, err := AnswerQuery(est, m)
					if err != nil {
						return err
					}
					if err := enc.EncodeAnswer(ans); err != nil {
						return err
					}
				case MsgSums:
					if err := enc.EncodeSums(sm.GlobalSums()); err != nil {
						return err
					}
				case MsgShardSums:
					f, err := sm.ShardSums(m.Shard)
					if err != nil {
						return err
					}
					if err := enc.EncodeSums(f); err != nil {
						return err
					}
				case MsgShardState:
					state, err := sm.ExportShard(m.Shard)
					if err != nil {
						return err
					}
					if err := enc.EncodeShardState(m.Shard, state); err != nil {
						return err
					}
				}
				return enc.Flush()
			})
		if holding {
			s.Queue.Release()
		}
		if err != nil {
			return err
		}
		if err := s.finishBatch(acked, enc, ingest, start); err != nil {
			return err
		}
	}
}

// serveDomainShardConn is serveShardConn for a membership-mode domain
// backend: item-tagged ingest routes to the user's virtual shard,
// item-scoped queries fold the shard map, per-shard sums serve quorum
// reads, and the membership control frames install views and shard
// transfers.
func (s *IngestServer) serveDomainShardConn(id int, dec *Decoder, enc *Encoder) error {
	col := s.DomainShardMap
	isQuery := func(m Msg) bool {
		switch m.Type {
		case MsgDomainQuery, MsgDomainSums, MsgShardSums, MsgShardState:
			return true
		}
		return false
	}
	for {
		ms, err := dec.NextBatch()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil // clean client close or server shutdown
			}
			return err
		}
		if len(ms) == 1 {
			handled, err := handleMemberFrame(ms[0], dec, enc,
				func() (bool, error) { return col.SetView(dec.TakeView()) },
				col.InstallShard)
			if err != nil {
				return err
			}
			if handled {
				continue
			}
		}
		acked := dec.AckedBatch()
		start := time.Now()
		ingest := 0
		for _, m := range ms {
			if acked && isQuery(m) {
				return fmt.Errorf("message type %d (query) inside acked batch", m.Type)
			}
			switch m.Type {
			case MsgDomainQuery:
				if err := ValidateDomainQuery(col.D(), col.M(), m); err != nil {
					return err
				}
			case MsgDomainSums:
				// No parameters to validate.
			case MsgShardSums, MsgShardState:
				if m.Shard < 0 || m.Shard >= col.NumShards() {
					return fmt.Errorf("shard %d out of range [0..%d)", m.Shard, col.NumShards())
				}
			default:
				if err := col.Validate(m); err != nil {
					return err
				}
				ingest++
			}
		}
		shed, holding, err := s.admitBatch(acked, enc)
		if err != nil {
			return err
		}
		if shed {
			continue
		}
		err = BatchRuns(ms, isQuery,
			func(run []Msg) error { return col.SendBatch(run) },
			func(m Msg) error {
				if s.Metrics != nil {
					s.Metrics.CountQuery("membership-domain", QueryKindName(m))
				}
				switch m.Type {
				case MsgDomainQuery:
					ds, err := col.Fold()
					if err != nil {
						return err
					}
					ans, err := AnswerDomainQuery(ds, m)
					if err != nil {
						return err
					}
					if err := enc.EncodeDomainAnswer(ans); err != nil {
						return err
					}
				case MsgDomainSums:
					ds, err := col.Fold()
					if err != nil {
						return err
					}
					if err := enc.EncodeDomainSums(DomainSumsFromServer(ds)); err != nil {
						return err
					}
				case MsgShardSums:
					f, err := col.ShardSums(m.Shard)
					if err != nil {
						return err
					}
					if err := enc.EncodeDomainSums(f); err != nil {
						return err
					}
				case MsgShardState:
					state, err := col.ExportShard(m.Shard)
					if err != nil {
						return err
					}
					if err := enc.EncodeShardState(m.Shard, state); err != nil {
						return err
					}
				}
				return enc.Flush()
			})
		if holding {
			s.Queue.Release()
		}
		if err != nil {
			return err
		}
		if err := s.finishBatch(acked, enc, ingest, start); err != nil {
			return err
		}
	}
}
