package transport

import (
	"bytes"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"rtf/internal/dyadic"
	"rtf/internal/hh"
	"rtf/internal/persist"
	"rtf/internal/protocol"
	"rtf/internal/rng"
)

const (
	hashedTestM    = 1 << 20
	hashedTestG    = 32
	hashedTestSeed = 0x5eed5eed
)

func hashedTestEnc() hh.DomainEncoding {
	return hh.LolohaEncoding(hashedTestM, hashedTestG, hashedTestSeed)
}

// hashedConnMsgs builds a deterministic stream of valid hashed-domain
// wire messages for one simulated connection: seed-carrying hellos
// followed by bucket-tagged reports.
func hashedConnMsgs(seed uint64, d, n int) []Msg {
	g := rng.New(seed, 53)
	ms := make([]Msg, 0, n+4)
	for u := 0; u < 4; u++ {
		ms = append(ms, HashedDomainHello(int(seed)*1000+u, g.IntN(hashedTestG), g.IntN(dyadic.NumOrders(d)), hashedTestSeed))
	}
	for i := 0; i < n; i++ {
		h := g.IntN(dyadic.NumOrders(d))
		bit := int8(1)
		if g.Bernoulli(0.5) {
			bit = -1
		}
		ms = append(ms, FromDomainReport(g.IntN(hashedTestG), protocol.Report{
			User: int(seed)*1000 + i, Order: h, J: 1 + g.IntN(d>>uint(h)), Bit: bit,
		}))
	}
	return ms
}

// TestHashedDomainScalarRoundTrip checks the two hashed-domain frame
// types survive the wire bit-exactly, alone and inside batch frames,
// and that every truncated prefix fails cleanly.
func TestHashedDomainScalarRoundTrip(t *testing.T) {
	msgs := []Msg{
		HashedDomainHello(0, 0, 0, 0),
		HashedDomainHello(1<<30, hashedTestG-1, 3, ^uint64(0)),
		HashedDomainHello(7, 3, 2, hashedTestSeed),
		HashedDomainSums(2, 2, 0),
		HashedDomainSums(hashedTestM, hashedTestG, hashedTestSeed),
		HashedDomainSums(hh.MaxHashedDomainM, hh.MaxDomainRows, 0x9e3779b97f4a7c15),
	}
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	for _, m := range msgs {
		if err := enc.Encode(m); err != nil {
			t.Fatal(err)
		}
	}
	ingest := []Msg{msgs[0], msgs[1], msgs[2]}
	if err := enc.EncodeBatch(ingest); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(&buf)
	want := append(append([]Msg{}, msgs...), ingest...)
	for i, w := range want {
		got, err := dec.Next()
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if got != w {
			t.Fatalf("msg %d: got %+v, want %+v", i, got, w)
		}
	}

	for _, m := range msgs {
		var one bytes.Buffer
		e := NewEncoder(&one)
		if err := e.Encode(m); err != nil {
			t.Fatal(err)
		}
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
		full := one.Bytes()
		for cut := 1; cut < len(full); cut++ {
			if got, err := NewDecoder(bytes.NewReader(full[:cut])).Next(); err == nil {
				t.Fatalf("truncated %+v at %d decoded as %+v", m, cut, got)
			}
		}
	}
}

// TestHashedDomainEncodeValidation checks the encoder refuses malformed
// hashed frames before any bytes hit the wire.
func TestHashedDomainEncodeValidation(t *testing.T) {
	enc := NewEncoder(&bytes.Buffer{})
	bad := []Msg{
		{Type: MsgHashedDomainHello, User: -1},
		{Type: MsgHashedDomainHello, User: 1, Item: -1},
		{Type: MsgHashedDomainSums, Item: -1, K: 2},
		{Type: MsgHashedDomainSums, Item: 2, K: -1},
	}
	for i, m := range bad {
		if err := enc.Encode(m); err == nil {
			t.Errorf("bad msg %d (%+v) accepted", i, m)
		}
	}
}

// TestValidateHashedDomainIngest pins the ingest contract of a hashed
// collector: seed-pinned hellos and bucket-ranged reports pass, and in
// particular an exact-encoding hello is rejected outright — the two
// encodings cannot be mixed on one server.
func TestValidateHashedDomainIngest(t *testing.T) {
	const d = 16
	enc := hashedTestEnc()
	cases := []struct {
		name string
		msg  Msg
		ok   bool
	}{
		{"hello", HashedDomainHello(1, 3, 2, hashedTestSeed), true},
		{"hello max bucket", HashedDomainHello(1, hashedTestG-1, 0, hashedTestSeed), true},
		{"report", FromDomainReport(5, protocol.Report{User: 1, Order: 1, J: 2, Bit: -1}), true},
		{"hello wrong seed", HashedDomainHello(1, 3, 2, hashedTestSeed+1), false},
		{"hello bucket = g", HashedDomainHello(1, hashedTestG, 0, hashedTestSeed), false},
		{"hello negative user", Msg{Type: MsgHashedDomainHello, User: -1, Seed: hashedTestSeed}, false},
		{"hello order too big", HashedDomainHello(1, 0, dyadic.Log2(d)+1, hashedTestSeed), false},
		{"exact hello", DomainHello(1, 3, 2), false},
		{"report bucket = g", FromDomainReport(hashedTestG, protocol.Report{User: 1, J: 1, Bit: 1}), false},
		{"report bit 0", Msg{Type: MsgDomainReport, User: 1, Item: 0, J: 1}, false},
		{"report j out of range", FromDomainReport(0, protocol.Report{User: 1, Order: 0, J: d + 1, Bit: 1}), false},
		{"plain hello", Hello(1, 0), false},
		{"query", DomainQuery(QueryPointItem, 1, 1, 0, 0), false},
	}
	for _, c := range cases {
		err := ValidateHashedDomainIngest(d, enc, c.msg)
		if c.ok && err != nil {
			t.Errorf("%s: rejected: %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: accepted", c.name)
		}
		// The branch-only core used on the batch path must agree.
		if got := hashedDomainIngestOK(d, dyadic.Log2(d), &enc, &c.msg); got != (err == nil) {
			t.Errorf("%s: fast path says %v, slow path says %v", c.name, got, err)
		}
	}
	// And the exact-domain validator must symmetrically reject the
	// hashed hello: a hashed client cannot feed an exact server.
	if err := ValidateDomainIngest(d, 8, HashedDomainHello(1, 3, 2, hashedTestSeed)); err == nil {
		t.Error("exact validator accepted a hashed hello")
	}
}

// TestValidateHashedDomainQuery checks the one bound the hashed query
// validator adds over the exact one: top-k capped by the answer frame.
func TestValidateHashedDomainQuery(t *testing.T) {
	const d = 16
	if err := ValidateHashedDomainQuery(d, hashedTestM, DomainQuery(QueryTopK, 0, d, 0, MaxAnswerLen)); err != nil {
		t.Errorf("top-k at the cap rejected: %v", err)
	}
	if err := ValidateHashedDomainQuery(d, hashedTestM, DomainQuery(QueryTopK, 0, d, 0, MaxAnswerLen+1)); err == nil {
		t.Error("top-k over the answer cap accepted")
	}
	if err := ValidateHashedDomainQuery(d, hashedTestM, DomainQuery(QueryPointItem, hashedTestM, d, 0, 0)); err == nil {
		t.Error("point query past the catalogue accepted")
	}
}

// fillHashedPair feeds the same deterministic stream into a sharded
// hashed server (through the collector) and a serial reference.
func fillHashedPair(t *testing.T, col *HashedDomainCollector, serial *hh.HashedDomainServer, d, n int) {
	t.Helper()
	g := rng.New(99, 3)
	for u := 0; u < n; u++ {
		b := g.IntN(hashedTestG)
		h := g.IntN(dyadic.NumOrders(d))
		bit := int8(1)
		if g.Bernoulli(0.5) {
			bit = -1
		}
		r := protocol.Report{User: u, Order: h, J: 1 + g.IntN(d>>uint(h)), Bit: bit}
		if err := col.SendBatch(u%4, []Msg{
			HashedDomainHello(u, b, h, hashedTestSeed),
			FromDomainReport(b, r),
		}); err != nil {
			t.Fatal(err)
		}
		serial.Register(0, b, h)
		serial.Ingest(0, b, r)
	}
}

// TestAnswerHashedDomainQuery checks every query shape answered through
// the bucket decoder matches a serial hashed server bit for bit, and
// that collector stats count what went in.
func TestAnswerHashedDomainQuery(t *testing.T) {
	const d, scale, n = 16, 2.0, 500
	enc := hashedTestEnc()
	col := NewHashedDomainCollector(hh.NewHashedDomainServer(d, enc, scale, 4))
	serial := hh.NewHashedDomainServer(d, enc, scale, 1)
	fillHashedPair(t, col, serial, d, n)

	hellos, reports, batches := col.Stats()
	if hellos != n || reports != n || batches != n {
		t.Fatalf("stats = (%d, %d, %d), want (%d, %d, %d)", hellos, reports, batches, n, n, n)
	}
	queries := []Msg{
		DomainQuery(QueryPointItem, 0, d, 0, 0),
		DomainQuery(QueryPointItem, hashedTestM-1, 1, 0, 0),
		DomainQuery(QuerySeriesItem, 12345, 0, 0, 0),
		DomainQuery(QueryTopK, 0, d, 0, 7),
		DomainQuery(QueryTopK, 0, d/2, 0, 1),
	}
	for _, q := range queries {
		got, err := AnswerHashedDomainQuery(col.Hashed(), q)
		if err != nil {
			t.Fatalf("%+v: %v", q, err)
		}
		want, err := AnswerHashedDomainQuery(serial, q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%+v: sharded answered %+v, serial %+v", q, got, want)
		}
	}
	if _, err := AnswerHashedDomainQuery(col.Hashed(), DomainQuery(QueryPointItem, hashedTestM, d, 0, 0)); err == nil {
		t.Fatal("out-of-catalogue query answered")
	}
}

// TestHashedDomainCollectorAtomicBatch checks a batch with one invalid
// message applies nothing.
func TestHashedDomainCollectorAtomicBatch(t *testing.T) {
	const d = 16
	col := NewHashedDomainCollector(hh.NewHashedDomainServer(d, hashedTestEnc(), 2.0, 2))
	poison := []Msg{
		HashedDomainHello(1, 0, 0, hashedTestSeed),
		FromDomainReport(0, protocol.Report{User: 1, Order: 0, J: 1, Bit: 1}),
		HashedDomainHello(2, 0, 0, hashedTestSeed+1), // wrong seed
	}
	if err := col.SendBatch(0, poison); err == nil {
		t.Fatal("poisoned batch accepted")
	}
	if h, r, b := col.Stats(); h != 0 || r != 0 || b != 0 {
		t.Fatalf("poisoned batch left stats (%d, %d, %d)", h, r, b)
	}
	if col.Hashed().Users() != 0 {
		t.Fatal("poisoned batch registered users")
	}
}

// TestHashedDomainIngestServerEndToEnd drives the hashed-domain service
// over real TCP: concurrent connections ship batched hellos and bucket
// reports with interleaved item queries and a raw-sums request, and the
// final answers must match a serial hashed server bit for bit.
func TestHashedDomainIngestServerEndToEnd(t *testing.T) {
	const (
		d     = 32
		scale = 2.5
		conns = 4
		perC  = 600
		batch = 64
	)
	enc0 := hashedTestEnc()
	srv := NewHashedDomainIngestServer(NewHashedDomainCollector(hh.NewHashedDomainServer(d, enc0, scale, conns)))
	srv.ErrorLog = func(err error) { t.Error(err) }
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0", ready) }()
	addr := (<-ready).String()

	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			enc := NewEncoder(conn)
			dec := NewDecoder(conn)
			ms := hashedConnMsgs(uint64(c), d, perC)
			for lo := 0; lo < len(ms); lo += batch {
				hi := min(lo+batch, len(ms))
				if err := enc.EncodeBatch(ms[lo:hi]); err != nil {
					t.Error(err)
					return
				}
			}
			// Fence: a query response proves every batch above applied.
			if err := enc.Encode(DomainQuery(QueryPointItem, 42, d, 0, 0)); err != nil {
				t.Error(err)
				return
			}
			if err := enc.Flush(); err != nil {
				t.Error(err)
				return
			}
			if _, err := dec.ReadDomainAnswer(); err != nil {
				t.Error(err)
			}
		}(c)
	}
	wg.Wait()

	serial := hh.NewHashedDomainServer(d, enc0, scale, 1)
	for c := 0; c < conns; c++ {
		for _, m := range hashedConnMsgs(uint64(c), d, perC) {
			switch m.Type {
			case MsgHashedDomainHello:
				serial.Register(0, m.Item, m.Order)
			case MsgDomainReport:
				serial.Ingest(0, m.Item, protocol.Report{User: m.User, Order: m.Order, J: m.J, Bit: m.Bit})
			}
		}
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := NewEncoder(conn)
	dec := NewDecoder(conn)
	queries := []Msg{
		DomainQuery(QueryPointItem, 0, d, 0, 0),
		DomainQuery(QuerySeriesItem, hashedTestM-1, 0, 0, 0),
		DomainQuery(QueryTopK, 0, d, 0, 9),
	}
	for _, q := range queries {
		if err := enc.Encode(q); err != nil {
			t.Fatal(err)
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
		got, err := dec.ReadDomainAnswer()
		if err != nil {
			t.Fatal(err)
		}
		want, err := AnswerHashedDomainQuery(serial, q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%+v: wire answered %+v, serial %+v", q, got, want)
		}
	}
	// The stacked-gateway path: an encoding-checked raw-sums request
	// returns the g-row bucket state, identical to the serial fold.
	if err := enc.Encode(HashedDomainSums(hashedTestM, hashedTestG, hashedTestSeed)); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	sums, err := dec.ReadDomainSums()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sums, DomainSumsFromServer(serial.Inner())) {
		t.Fatal("wire sums differ from serial fold")
	}

	// A sums request under a different epoch seed is refused: the
	// connection dies instead of returning misinterpretable counters.
	bad, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	srv.ErrorLog = nil // the refusal below is expected
	be := NewEncoder(bad)
	if err := be.Encode(HashedDomainSums(hashedTestM, hashedTestG, hashedTestSeed+1)); err != nil {
		t.Fatal(err)
	}
	if err := be.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDecoder(bad).ReadDomainSums(); err == nil {
		t.Fatal("mismatched-seed sums request answered")
	}

	srv.Shutdown(5 * time.Second)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestDurableHashedDomainCollector checks the hashed snapshot+WAL
// cycle: feed, snapshot, feed a WAL suffix, crash, reopen — recovered
// bucket state answers bit for bit — and every meta mismatch (catalogue
// size, bucket count, encoding name, epoch seed) is refused at open.
func TestDurableHashedDomainCollector(t *testing.T) {
	const d, scale = 16, 2.0
	enc := hashedTestEnc()
	dir := t.TempDir()
	meta := persist.Meta{
		Mechanism: "test", D: d, K: 2, M: hashedTestM, G: hashedTestG,
		Encoding: enc.Name, HashSeed: enc.Seed, Eps: 1, Scale: scale,
	}
	mk := func() *hh.HashedDomainServer { return hh.NewHashedDomainServer(d, enc, scale, 2) }

	col, stats, err := OpenDurableHashedDomain(mk(), dir, meta, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SnapshotCursor != 0 || stats.Replayed != 0 {
		t.Fatalf("fresh dir recovered %+v", stats)
	}
	ref := hh.NewHashedDomainServer(d, enc, scale, 1)
	g := rng.New(77, 4)
	feed := func(c *DurableHashedDomainCollector, lo, hi int) {
		for u := lo; u < hi; u++ {
			b := g.IntN(hashedTestG)
			h := g.IntN(dyadic.NumOrders(d))
			bit := int8(1)
			if g.Bernoulli(0.5) {
				bit = -1
			}
			r := protocol.Report{User: u, Order: h, J: 1 + g.IntN(d>>uint(h)), Bit: bit}
			if err := c.SendBatch(u, []Msg{HashedDomainHello(u, b, h, hashedTestSeed), FromDomainReport(b, r)}); err != nil {
				t.Fatal(err)
			}
			ref.Register(0, b, h)
			ref.Ingest(0, b, r)
		}
	}
	feed(col, 0, 200)
	if _, err := col.Snapshot(); err != nil {
		t.Fatal(err)
	}
	feed(col, 200, 400) // WAL suffix past the snapshot
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}

	hs2 := mk()
	col2, stats2, err := OpenDurableHashedDomain(hs2, dir, meta, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer col2.Close()
	if stats2.SnapshotCursor == 0 || stats2.Replayed == 0 {
		t.Fatalf("reopen skipped snapshot or WAL: %+v", stats2)
	}
	for _, x := range []int{0, 1, 12345, hashedTestM - 1} {
		a, b := ref.EstimateItemSeries(x), hs2.EstimateItemSeries(x)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("item %d: recovered %v, want %v", x, b, a)
		}
	}
	if !reflect.DeepEqual(ref.TopK(d, 10), hs2.TopK(d, 10)) {
		t.Fatal("recovered TopK differs")
	}
	if hs2.Users() != 400 {
		t.Fatalf("recovered %d users, want 400", hs2.Users())
	}

	// Every axis of the encoding identity is checked at open.
	for name, mutate := range map[string]func(*persist.Meta){
		"catalogue size": func(m *persist.Meta) { m.M++ },
		"bucket count":   func(m *persist.Meta) { m.G++ },
		"encoding name":  func(m *persist.Meta) { m.Encoding = "exact" },
		"hash seed":      func(m *persist.Meta) { m.HashSeed++ },
	} {
		bad := meta
		mutate(&bad)
		if _, _, err := OpenDurableHashedDomain(mk(), dir, bad, DurableOptions{}); err == nil {
			t.Errorf("mismatched %s accepted at open", name)
		}
	}
}
