package transport

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzDecoderRobust feeds arbitrary bytes to the decoder: it must return
// messages or errors, never panic, and every successfully decoded report
// must satisfy the wire invariants.
func FuzzDecoderRobust(f *testing.F) {
	f.Add([]byte{1, 0, 0})
	f.Add([]byte{2, 0, 0, 1, 1})
	f.Add([]byte{2, 255, 255, 255, 255, 15, 3, 42, 0})
	f.Add([]byte{})
	f.Add([]byte{99})
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder(bytes.NewReader(data))
		for i := 0; i < 1000; i++ {
			m, err := dec.Next()
			if err != nil {
				if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
					return
				}
				return // malformed input: any descriptive error is fine
			}
			switch m.Type {
			case MsgHello:
				// ok
			case MsgReport:
				if m.Bit != 1 && m.Bit != -1 {
					t.Fatalf("decoded report with bit %d", m.Bit)
				}
			default:
				t.Fatalf("decoded unknown type %d without error", m.Type)
			}
		}
	})
}

// FuzzEncodeDecodeRoundTrip checks that any valid message survives the
// wire format bit-exactly.
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	f.Add(uint32(0), uint8(0), uint32(1), true, true)
	f.Add(uint32(1<<31), uint8(30), uint32(1<<30), false, false)
	f.Fuzz(func(t *testing.T, user uint32, order uint8, j uint32, bit bool, hello bool) {
		var m Msg
		if hello {
			m = Hello(int(user), int(order))
		} else {
			b := int8(1)
			if !bit {
				b = -1
			}
			m = Msg{Type: MsgReport, User: int(user), Order: int(order), J: int(j), Bit: b}
		}
		var buf bytes.Buffer
		enc := NewEncoder(&buf)
		if err := enc.Encode(m); err != nil {
			t.Fatal(err)
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
		got, err := NewDecoder(&buf).Next()
		if err != nil {
			t.Fatal(err)
		}
		if got != m {
			t.Fatalf("round trip: got %+v, want %+v", got, m)
		}
	})
}
