package transport

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
)

// FuzzDecoderRobust feeds arbitrary bytes to the decoder: it must return
// messages or errors, never panic, and every successfully decoded report
// must satisfy the wire invariants. Batch frames are exercised through
// both the unbatching Next path and the batch-granular NextBatch path.
func FuzzDecoderRobust(f *testing.F) {
	f.Add([]byte{1, 0, 0})
	f.Add([]byte{2, 0, 0, 1, 1})
	f.Add([]byte{2, 255, 255, 255, 255, 15, 3, 42, 0})
	f.Add([]byte{})
	f.Add([]byte{99})
	f.Add([]byte{4, 17})                            // query
	f.Add([]byte{5, 17, 0, 0, 0, 0, 0, 0, 240, 63}) // estimate
	f.Add([]byte{3, 0})                             // empty batch
	f.Add([]byte{3, 2, 1, 0, 0, 2, 0, 0, 1, 1})     // batch: hello + report
	f.Add([]byte{3, 1, 3, 0})                       // nested batch (invalid)
	f.Add([]byte{3, 255, 255, 255, 255, 127})       // oversized length prefix
	f.Fuzz(func(t *testing.T, data []byte) {
		check := func(m Msg) {
			switch m.Type {
			case MsgHello, MsgQuery, MsgEstimate:
				// ok
			case MsgReport:
				if m.Bit != 1 && m.Bit != -1 {
					t.Fatalf("decoded report with bit %d", m.Bit)
				}
			default:
				t.Fatalf("decoded unknown type %d without error", m.Type)
			}
		}
		dec := NewDecoder(bytes.NewReader(data))
		for i := 0; i < 1000; i++ {
			m, err := dec.Next()
			if err != nil {
				break // EOF or any descriptive error is fine
			}
			check(m)
		}
		dec = NewDecoder(bytes.NewReader(data))
		total := 0
		for total < 100000 {
			ms, err := dec.NextBatch()
			if err != nil {
				if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
					return
				}
				return // malformed input: any descriptive error is fine
			}
			if len(ms) == 0 {
				t.Fatal("NextBatch returned an empty slice without error")
			}
			for _, m := range ms {
				check(m)
			}
			total += len(ms)
		}
	})
}

// FuzzEncodeDecodeRoundTrip checks that any valid scalar message
// survives the wire format bit-exactly.
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	f.Add(uint32(0), uint8(0), uint32(1), true, uint8(0), uint32(0), 0.0)
	f.Add(uint32(1<<31), uint8(30), uint32(1<<30), false, uint8(1), uint32(7), -3.5)
	f.Add(uint32(1), uint8(2), uint32(3), true, uint8(2), uint32(1024), math.Inf(1))
	f.Add(uint32(1), uint8(2), uint32(3), true, uint8(3), uint32(12), 0.125)
	f.Fuzz(func(t *testing.T, user uint32, order uint8, j uint32, bit bool, kind uint8, tt uint32, val float64) {
		var m Msg
		switch kind % 4 {
		case 0:
			m = Hello(int(user), int(order))
		case 1:
			b := int8(1)
			if !bit {
				b = -1
			}
			m = Msg{Type: MsgReport, User: int(user), Order: int(order), J: int(j), Bit: b}
		case 2:
			m = Query(int(tt))
		case 3:
			if math.IsNaN(val) {
				val = 0 // NaN != NaN; any payload bits would round-trip, the compare would not
			}
			m = Estimate(int(tt), val)
		}
		var buf bytes.Buffer
		enc := NewEncoder(&buf)
		if err := enc.Encode(m); err != nil {
			t.Fatal(err)
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
		got, err := NewDecoder(&buf).Next()
		if err != nil {
			t.Fatal(err)
		}
		if got != m {
			t.Fatalf("round trip: got %+v, want %+v", got, m)
		}
	})
}

// FuzzBatchRoundTrip builds a batch from fuzz-chosen parameters, frames
// it together with a leading and trailing scalar message, and checks the
// decode reproduces everything exactly.
func FuzzBatchRoundTrip(f *testing.F) {
	f.Add(uint16(0), uint64(1))
	f.Add(uint16(5), uint64(99))
	f.Add(uint16(300), uint64(12345))
	f.Fuzz(func(t *testing.T, n uint16, seed uint64) {
		ms := make([]Msg, int(n)%512)
		s := seed
		for i := range ms {
			s = s*6364136223846793005 + 1442695040888963407
			if s%3 == 0 {
				ms[i] = Hello(int(s%1000), int(s%32))
			} else {
				b := int8(1)
				if s%2 == 0 {
					b = -1
				}
				ms[i] = Msg{Type: MsgReport, User: int(s % 1000), Order: int(s % 32), J: int(s%4096) + 1, Bit: b}
			}
		}
		var buf bytes.Buffer
		enc := NewEncoder(&buf)
		if err := enc.Encode(Query(3)); err != nil {
			t.Fatal(err)
		}
		if err := enc.EncodeBatch(ms); err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(Estimate(3, 1.5)); err != nil {
			t.Fatal(err)
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
		dec := NewDecoder(&buf)
		want := append(append([]Msg{Query(3)}, ms...), Estimate(3, 1.5))
		for i, w := range want {
			got, err := dec.Next()
			if err != nil {
				t.Fatalf("msg %d: %v", i, err)
			}
			if got != w {
				t.Fatalf("msg %d: got %+v, want %+v", i, got, w)
			}
		}
		if _, err := dec.Next(); !errors.Is(err, io.EOF) {
			t.Fatalf("expected EOF, got %v", err)
		}
	})
}
