package transport

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"

	"rtf/internal/dyadic"
	"rtf/internal/protocol"
	"rtf/internal/rng"
)

// testSumsFrame builds a valid frame for horizon d with deterministic
// contents.
func testSumsFrame(d int, scale float64, seed uint64) SumsFrame {
	g := rng.New(seed, 13)
	f := SumsFrame{
		D:        d,
		Scale:    scale,
		Users:    int64(g.IntN(1000)),
		PerOrder: make([]int64, dyadic.NumOrders(d)),
		Sums:     make([]int64, dyadic.TotalIntervals(d)),
	}
	for h := range f.PerOrder {
		f.PerOrder[h] = int64(g.IntN(100))
	}
	for i := range f.Sums {
		f.Sums[i] = int64(g.IntN(2001)) - 1000 // sums go negative
	}
	return f
}

// encodeSumsBytes encodes one frame, panicking on error (the callers
// pass known-valid frames).
func encodeSumsBytes(f SumsFrame) []byte {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.EncodeSums(f); err != nil {
		panic(err)
	}
	if err := enc.Flush(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func framesEqual(a, b SumsFrame) bool {
	if a.D != b.D || a.Scale != b.Scale || a.Users != b.Users ||
		len(a.PerOrder) != len(b.PerOrder) || len(a.Sums) != len(b.Sums) {
		return false
	}
	for i := range a.PerOrder {
		if a.PerOrder[i] != b.PerOrder[i] {
			return false
		}
	}
	for i := range a.Sums {
		if a.Sums[i] != b.Sums[i] {
			return false
		}
	}
	return true
}

// TestSumsRoundTrip checks frames of several horizons survive the wire
// bit-exactly, back to back on one stream.
func TestSumsRoundTrip(t *testing.T) {
	frames := []SumsFrame{
		testSumsFrame(1, 0.5, 1),
		testSumsFrame(16, 2.25, 2),
		testSumsFrame(1024, 100, 3),
		{D: 4, Scale: 1, PerOrder: make([]int64, 3), Sums: make([]int64, 7)}, // all zero
	}
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	for _, f := range frames {
		if err := enc.EncodeSums(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(&buf)
	for i, want := range frames {
		got, err := dec.ReadSums()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !framesEqual(got, want) {
			t.Fatalf("frame %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := dec.ReadSums(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF, got %v", err)
	}
}

// TestSumsMergeMatchesSerial checks the whole scatter/gather identity
// in miniature: reports split across two accumulators, shipped as sums
// frames, merged into one server — estimates bit-for-bit equal to a
// serial server fed everything.
func TestSumsMergeMatchesSerial(t *testing.T) {
	const d, scale = 64, 2.5
	accs := []*protocol.Sharded{
		protocol.NewSharded(d, scale, 2),
		protocol.NewSharded(d, scale, 3),
	}
	serial := protocol.NewServer(d, scale)
	g := rng.New(5, 6)
	for i := 0; i < 4000; i++ {
		h := g.IntN(dyadic.NumOrders(d))
		r := protocol.Report{User: i, Order: h, J: 1 + g.IntN(d>>uint(h)), Bit: 1}
		if g.Bernoulli(0.5) {
			r.Bit = -1
		}
		accs[i%2].Ingest(i, r)
		serial.Ingest(r)
		if i%7 == 0 {
			accs[i%2].Register(i, h)
			serial.Register(h)
		}
	}
	merged := protocol.NewServer(d, scale)
	for _, acc := range accs {
		// Through the wire, not just in process.
		var buf bytes.Buffer
		enc := NewEncoder(&buf)
		if err := enc.EncodeSums(SumsFromSharded(acc)); err != nil {
			t.Fatal(err)
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
		f, err := NewDecoder(&buf).ReadSums()
		if err != nil {
			t.Fatal(err)
		}
		if err := f.MergeInto(merged); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := merged.Users(), serial.Users(); got != want {
		t.Fatalf("merged users %d, want %d", got, want)
	}
	gotS, wantS := merged.EstimateSeries(), serial.EstimateSeries()
	for i := range wantS {
		if gotS[i] != wantS[i] {
			t.Fatalf("series value %d: merged %v, serial %v", i, gotS[i], wantS[i])
		}
	}
	for tt := 1; tt <= d; tt++ {
		if merged.EstimateAt(tt) != serial.EstimateAt(tt) {
			t.Fatalf("estimate at %d differs", tt)
		}
	}
	if merged.EstimateChange(5, 40) != serial.EstimateChange(5, 40) {
		t.Fatal("change estimate differs")
	}
}

// TestSumsMergeMismatch checks MergeInto refuses a mismatched server.
func TestSumsMergeMismatch(t *testing.T) {
	f := testSumsFrame(16, 2, 7)
	if err := f.MergeInto(protocol.NewServer(32, 2)); err == nil {
		t.Error("merged into a server with the wrong horizon")
	}
	if err := f.MergeInto(protocol.NewServer(16, 3)); err == nil {
		t.Error("merged into a server with the wrong scale")
	}
	if err := f.MergeInto(protocol.NewServer(16, 2)); err != nil {
		t.Error(err)
	}
}

// TestSumsEncodeValidation checks the encoder rejects malformed frames.
func TestSumsEncodeValidation(t *testing.T) {
	enc := NewEncoder(&bytes.Buffer{})
	good := testSumsFrame(16, 2, 9)
	for name, f := range map[string]func(SumsFrame) SumsFrame{
		"horizon not a power of two": func(f SumsFrame) SumsFrame { f.D = 17; return f },
		"horizon over the limit":     func(f SumsFrame) SumsFrame { f.D = MaxSumsD * 2; return f },
		"negative user count":        func(f SumsFrame) SumsFrame { f.Users = -1; return f },
		"short per-order counts":     func(f SumsFrame) SumsFrame { f.PerOrder = f.PerOrder[:2]; return f },
		"short interval sums":        func(f SumsFrame) SumsFrame { f.Sums = f.Sums[:5]; return f },
	} {
		if err := enc.EncodeSums(f(good)); err == nil {
			t.Errorf("encoder accepted a frame with %s", name)
		}
	}
	if err := enc.EncodeSums(good); err != nil {
		t.Error(err)
	}
}

// TestSumsDecodeTruncated checks every proper prefix of a valid frame
// fails with a descriptive error, never a panic or a bogus frame.
func TestSumsDecodeTruncated(t *testing.T) {
	wire := encodeSumsBytes(testSumsFrame(16, 2.5, 11))
	for cut := 0; cut < len(wire); cut++ {
		_, err := NewDecoder(bytes.NewReader(wire[:cut])).ReadSums()
		if err == nil {
			t.Fatalf("truncation at %d of %d decoded successfully", cut, len(wire))
		}
	}
}

// TestSumsDecodeCorrupt checks targeted corruptions are rejected.
func TestSumsDecodeCorrupt(t *testing.T) {
	wire := encodeSumsBytes(testSumsFrame(16, 2.5, 12))
	corrupt := func(mutate func(b []byte)) error {
		b := append([]byte(nil), wire...)
		mutate(b)
		_, err := NewDecoder(bytes.NewReader(b)).ReadSums()
		return err
	}
	if err := corrupt(func(b []byte) { b[0] = byte(MsgAnswer) }); err == nil {
		t.Error("accepted a non-sums frame type")
	}
	if err := corrupt(func(b []byte) { b[1] = 99 }); err == nil {
		t.Error("accepted an unknown version")
	}
	if err := corrupt(func(b []byte) { b[2] = 17 }); err == nil {
		t.Error("accepted a non-power-of-two horizon")
	}
	// A huge declared horizon must be rejected before allocation.
	huge := append([]byte{byte(MsgSumsFrame), queryWireVersion}, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01)
	if _, err := NewDecoder(bytes.NewReader(huge)).ReadSums(); err == nil {
		t.Error("accepted an overflowing horizon")
	}
	// Negative user count on the wire.
	neg := []byte{byte(MsgSumsFrame), queryWireVersion, 1, 0, 0, 0, 0, 0, 0, 0, 0, 1 /* varint -1 */}
	if _, err := NewDecoder(bytes.NewReader(neg)).ReadSums(); err == nil {
		t.Error("accepted a negative user count")
	}
}

// TestIngestServerAnswersSums checks the raw-sums path over real TCP:
// standalone requests and one embedded in a batch (where it fences the
// reports before it), with the response matching the live accumulator.
func TestIngestServerAnswersSums(t *testing.T) {
	const d, scale = 32, 2.0
	acc := protocol.NewSharded(d, scale, 2)
	srv := NewIngestServer(NewShardedCollector(acc))
	srv.ErrorLog = func(err error) { t.Error(err) }
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0", ready) }()
	addr := (<-ready).String()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := NewEncoder(conn)
	dec := NewDecoder(conn)
	// A batch mixing ingestion and a sums request: the response must
	// reflect the messages before it in the batch.
	ms := []Msg{
		Hello(1, 3),
		FromReport(protocol.Report{User: 1, Order: 0, J: 5, Bit: 1}),
		FromReport(protocol.Report{User: 1, Order: 1, J: 2, Bit: -1}),
		Sums(),
	}
	if err := enc.EncodeBatch(ms); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	f, err := dec.ReadSums()
	if err != nil {
		t.Fatal(err)
	}
	if f.D != d || f.Scale != scale || f.Users != 1 {
		t.Fatalf("bad frame header %+v", f)
	}
	if f.PerOrder[3] != 1 {
		t.Fatalf("per-order counts %v, want order 3 = 1", f.PerOrder)
	}
	want := protocol.NewServer(d, scale)
	want.Register(3)
	want.Ingest(protocol.Report{User: 1, Order: 0, J: 5, Bit: 1})
	want.Ingest(protocol.Report{User: 1, Order: 1, J: 2, Bit: -1})
	merged := protocol.NewServer(d, scale)
	if err := f.MergeInto(merged); err != nil {
		t.Fatal(err)
	}
	for tt := 1; tt <= d; tt++ {
		if merged.EstimateAt(tt) != want.EstimateAt(tt) {
			t.Fatalf("estimate at %d differs after merge", tt)
		}
	}
	// A standalone request on the same stream.
	if err := enc.Encode(Sums()); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	if f2, err := dec.ReadSums(); err != nil {
		t.Fatal(err)
	} else if !framesEqual(f, f2) {
		t.Fatal("standalone sums differ from in-batch sums")
	}
	conn.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// FuzzSumsDecode feeds arbitrary bytes to ReadSums: it must return a
// frame or a descriptive error, never panic, and any successfully
// decoded frame must satisfy the structural invariants.
func FuzzSumsDecode(f *testing.F) {
	f.Add(encodeSumsBytes(testSumsFrame(16, 2.5, 21)))
	f.Add(encodeSumsBytes(testSumsFrame(1, 1, 22)))
	f.Add([]byte{byte(MsgSumsFrame), queryWireVersion, 16})
	f.Add([]byte{byte(MsgSumsFrame), 99})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		frame, err := NewDecoder(bytes.NewReader(data)).ReadSums()
		if err != nil {
			return // EOF or any descriptive error is fine
		}
		if !dyadic.IsPow2(frame.D) || frame.D > MaxSumsD {
			t.Fatalf("decoded invalid horizon %d", frame.D)
		}
		if frame.Users < 0 {
			t.Fatalf("decoded negative user count %d", frame.Users)
		}
		if len(frame.PerOrder) != dyadic.NumOrders(frame.D) {
			t.Fatalf("decoded %d per-order counts for d=%d", len(frame.PerOrder), frame.D)
		}
		if len(frame.Sums) != dyadic.TotalIntervals(frame.D) {
			t.Fatalf("decoded %d interval sums for d=%d", len(frame.Sums), frame.D)
		}
		for h, c := range frame.PerOrder {
			if c < 0 {
				t.Fatalf("decoded negative count %d at order %d", c, h)
			}
		}
	})
}

// FuzzSumsRoundTrip checks any structurally valid frame survives the
// wire bit-exactly.
func FuzzSumsRoundTrip(f *testing.F) {
	f.Add(uint8(4), 2.5, uint64(1))
	f.Add(uint8(0), 1.0, uint64(99))
	f.Add(uint8(10), 100.0, uint64(12345))
	f.Fuzz(func(t *testing.T, logd uint8, scale float64, seed uint64) {
		d := 1 << (logd % 11)
		want := testSumsFrame(d, scale, seed)
		var buf bytes.Buffer
		enc := NewEncoder(&buf)
		if err := enc.EncodeSums(want); err != nil {
			t.Fatal(err)
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
		got, err := NewDecoder(&buf).ReadSums()
		if err != nil {
			t.Fatal(err)
		}
		// NaN scales round-trip by bits but compare unequal; skip the
		// equality check for them.
		if want.Scale == want.Scale && !framesEqual(got, want) {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
	})
}
