package transport

import (
	"sync"
	"testing"
	"time"

	"rtf/internal/persist"
	"rtf/internal/protocol"
)

// TestDurableGroupCommitRecovery exercises the group-commit path end to
// end: many connections ingest through a collector with a short
// coalescing window, so their batches share WAL groups; after Close and
// recovery the accumulator must match a serial server, because every
// acknowledged batch was journaled before its SendBatch returned.
func TestDurableGroupCommitRecovery(t *testing.T) {
	const d, scale, workers, perWorker = 64, 3.0, 8, 30
	dir := t.TempDir()
	meta := durableMeta(d, scale)
	acc := protocol.NewSharded(d, scale, 4)
	dc, _, err := OpenDurable(acc, dir, meta, DurableOptions{
		SegmentBytes:        512,
		GroupCommitInterval: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				u := w*perWorker + i
				batch := []Msg{
					Hello(u, 0),
					FromReport(protocol.Report{User: u, Order: 0, J: 1 + u%d, Bit: 1}),
				}
				if err := dc.SendBatch(w, batch); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := dc.Close(); err != nil {
		t.Fatal(err)
	}

	serial := protocol.NewServer(d, scale)
	for u := 0; u < workers*perWorker; u++ {
		serial.Register(0)
		serial.Ingest(protocol.Report{User: u, Order: 0, J: 1 + u%d, Bit: 1})
	}
	acc2 := protocol.NewSharded(d, scale, 1)
	_, rec, err := OpenDurable(acc2, dir, meta, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Replayed == 0 {
		t.Fatalf("nothing replayed: %+v", rec)
	}
	if acc2.Users() != serial.Users() {
		t.Fatalf("users after recovery: %d vs %d", acc2.Users(), serial.Users())
	}
	want := serial.EstimateSeries()
	for i, got := range acc2.EstimateSeries() {
		if got != want[i] {
			t.Fatalf("series[%d]: %v vs %v", i, got, want[i])
		}
	}
}

// TestDurableGroupCommitCrashLosesOnlyUnacked pins the crash contract
// under group commit: a batch whose group has formed but not committed
// has written nothing to the log, so a kill there loses exactly the
// batches whose SendBatch never returned — every acknowledged batch
// replays.
func TestDurableGroupCommitCrashLosesOnlyUnacked(t *testing.T) {
	const d, scale = 32, 2.0
	dir := t.TempDir()
	meta := durableMeta(d, scale)

	// Acked history through the direct path.
	acc := protocol.NewSharded(d, scale, 1)
	dc, _, err := OpenDurable(acc, dir, meta, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	acked := genMsgs(d, 10)
	if err := dc.SendBatch(0, acked); err != nil {
		t.Fatal(err)
	}
	if err := dc.Close(); err != nil {
		t.Fatal(err)
	}
	ackedSeq := uint64(1)

	// A collector with an hour-long coalescing window: the next batch
	// joins a group that will not commit within this test, so its
	// SendBatch blocks, unacknowledged, its bytes never reaching a write
	// call — the state a kill -9 between group formation and commit
	// leaves behind.
	acc2 := protocol.NewSharded(d, scale, 1)
	dc2, _, err := OpenDurable(acc2, dir, meta, DurableOptions{GroupCommitInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	unackedDone := make(chan error, 1)
	go func() {
		unackedDone <- dc2.SendBatch(0, genMsgs(d, 3))
	}()
	select {
	case err := <-unackedDone:
		t.Fatalf("SendBatch returned (%v) inside the coalescing window", err)
	case <-time.After(20 * time.Millisecond):
	}

	// The log on disk holds only the acked batch; a recovery now (the
	// crash) replays it and nothing else.
	records := 0
	last, _, err := persist.ReplayWAL(dir, persist.ReplayOptions{}, func(seq uint64, payload []byte) error {
		records++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if last != ackedSeq || records != 1 {
		t.Fatalf("log holds %d records through seq %d; want only the acked record %d", records, last, ackedSeq)
	}

	// Close flushes the pending group — the blocked SendBatch acks, and
	// from then on the batch is recoverable like any other.
	if err := dc2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-unackedDone; err != nil {
		t.Fatalf("SendBatch after flush: %v", err)
	}
	acc3 := protocol.NewSharded(d, scale, 1)
	_, rec, err := OpenDurable(acc3, dir, meta, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Replayed != 2 {
		t.Fatalf("replayed %d records after flush, want 2", rec.Replayed)
	}
}

// TestDurableIngestSteadyStateAllocs pins the allocation behavior of
// the durable hot path: once the scratch pools and WAL buffer are warm,
// journaling and applying a report batch allocates nothing.
func TestDurableIngestSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	const d, scale = 1 << 10, 3.0
	dir := t.TempDir()
	acc := protocol.NewSharded(d, scale, 4)
	dc, _, err := OpenDurable(acc, dir, durableMeta(d, scale), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer dc.Close()

	batch := make([]Msg, 0, 64)
	for i := 0; i < 64; i++ {
		bit := int8(1)
		if i%2 == 0 {
			bit = -1
		}
		batch = append(batch, FromReport(protocol.Report{
			User: i, Order: i % 3, J: 1 + i%(d>>uint(i%3)), Bit: bit,
		}))
	}
	// Warm the scratch pool and the WAL's record buffer.
	for i := 0; i < 8; i++ {
		if err := dc.SendBatch(0, batch); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := dc.SendBatch(0, batch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state durable SendBatch allocates %.1f times per batch, want 0", allocs)
	}
}
