package transport

import (
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"rtf/internal/hh"
	"rtf/internal/obs"
	"rtf/internal/persist"
	"rtf/internal/protocol"
)

// TestAckedBatchWireRoundTrip exercises the acked-batch frames at the
// codec level: an acked batch decodes with the acked flag set, a legacy
// batch without it, and both ack verdicts round-trip.
func TestAckedBatchWireRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	ms := []Msg{Hello(1, 2), FromReport(protocol.Report{User: 1, Order: 2, J: 3, Bit: 1})}
	if err := enc.EncodeAckedBatch(ms); err != nil {
		t.Fatal(err)
	}
	if err := enc.EncodeBatch(ms); err != nil {
		t.Fatal(err)
	}
	if err := enc.EncodeBatchAck(true); err != nil {
		t.Fatal(err)
	}
	if err := enc.EncodeBatchAck(false); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}

	dec := NewDecoder(&buf)
	got, err := dec.NextBatch()
	if err != nil {
		t.Fatal(err)
	}
	if !dec.AckedBatch() {
		t.Fatal("first batch should decode as acked")
	}
	if len(got) != len(ms) || got[0].Type != MsgHello || got[1].Type != MsgReport {
		t.Fatalf("acked batch decoded as %+v", got)
	}
	if _, err := dec.NextBatch(); err != nil {
		t.Fatal(err)
	}
	if dec.AckedBatch() {
		t.Fatal("legacy batch should not decode as acked")
	}
	for _, want := range []bool{true, false} {
		applied, err := dec.ReadBatchAck()
		if err != nil {
			t.Fatal(err)
		}
		if applied != want {
			t.Fatalf("ack = %v, want %v", applied, want)
		}
	}
}

// TestAckedBatchWireErrors pins down the malformed-frame space of the
// new message types.
func TestAckedBatchWireErrors(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.EncodeAckedBatch(nil); err == nil {
		t.Fatal("empty acked batch must not encode: its ack would never be owed")
	}

	decodeErr := func(raw []byte) error {
		d := NewDecoder(bytes.NewReader(raw))
		_, err := d.NextBatch()
		return err
	}
	// Empty acked batch on the wire: type 16, count 0.
	if err := decodeErr([]byte{16, 0}); err == nil {
		t.Fatal("empty acked batch must not decode")
	}
	// Acked batch containing a nested batch header.
	if err := decodeErr([]byte{16, 1, 3}); err == nil || !strings.Contains(err.Error(), "nested") {
		t.Fatalf("nested legacy batch: err = %v", err)
	}
	if err := decodeErr([]byte{16, 1, 16}); err == nil || !strings.Contains(err.Error(), "nested") {
		t.Fatalf("nested acked batch: err = %v", err)
	}
	// A batch ack inside a batch.
	if err := decodeErr([]byte{3, 1, 17}); err == nil {
		t.Fatal("batch ack inside batch must not decode")
	}
	// A bare batch ack surfacing through Next.
	d := NewDecoder(bytes.NewReader([]byte{17, 1}))
	if _, err := d.Next(); err == nil || !strings.Contains(err.Error(), "ReadBatchAck") {
		t.Fatalf("stray batch ack: err = %v", err)
	}
	// ReadBatchAck on a non-ack frame and on a corrupt status byte.
	d = NewDecoder(bytes.NewReader([]byte{1, 0, 0}))
	if _, err := d.ReadBatchAck(); err == nil {
		t.Fatal("ReadBatchAck must reject a non-ack frame")
	}
	d = NewDecoder(bytes.NewReader([]byte{17, 7}))
	if _, err := d.ReadBatchAck(); err == nil {
		t.Fatal("ReadBatchAck must reject status bytes beyond 0/1")
	}
}

// dialIngest connects to addr and returns a codec pair over the
// connection.
func dialIngest(t *testing.T, addr string) (net.Conn, *Encoder, *Decoder) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return conn, NewEncoder(conn), NewDecoder(conn)
}

// startServer runs srv on a loopback listener and returns its address
// plus a closer that fails the test on a serve error.
func startServer(t *testing.T, srv *IngestServer) (addr string, closeSrv func()) {
	t.Helper()
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0", ready) }()
	return (<-ready).String(), func() {
		if err := srv.Close(); err != nil {
			t.Error(err)
		}
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}

// TestAckedBatchServingAndMetrics drives acked batches end to end over
// TCP against an instrumented server and asserts the full instrument
// set: applied/acked counters, batch-size and latency histograms,
// per-kind query counters, connection gauge, and queue gauges.
func TestAckedBatchServingAndMetrics(t *testing.T) {
	const d, scale = 16, 2.0
	col := NewShardedCollector(protocol.NewSharded(d, scale, 2))
	srv := NewIngestServer(col)
	srv.ErrorLog = func(err error) { t.Error(err) }
	srv.Metrics = NewServerMetrics(obs.NewRegistry())
	srv.Queue = NewIngestQueue(4)
	srv.Metrics.RegisterQueue(srv.Queue)
	addr, closeSrv := startServer(t, srv)
	defer closeSrv()

	conn, enc, dec := dialIngest(t, addr)
	defer conn.Close()
	batches := [][]Msg{
		{Hello(1, 0), Hello(2, 1)},
		{FromReport(protocol.Report{User: 1, Order: 0, J: 5, Bit: 1})},
		{FromReport(protocol.Report{User: 2, Order: 1, J: 3, Bit: 1}), FromReport(protocol.Report{User: 1, Order: 0, J: 7, Bit: -1})},
	}
	for _, b := range batches {
		if err := enc.EncodeAckedBatch(b); err != nil {
			t.Fatal(err)
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
		applied, err := dec.ReadBatchAck()
		if err != nil {
			t.Fatal(err)
		}
		if !applied {
			t.Fatal("uncontended acked batch must be applied")
		}
	}
	// The positive ack is written after the batch applies, so state is
	// already visible: no fence needed.
	if err := enc.Encode(QueryV2(QueryPoint, 5, 0)); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := dec.ReadAnswer(); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(Msg{Type: MsgSums}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := dec.ReadSums(); err != nil {
		t.Fatal(err)
	}

	hellos, reports, _ := col.Stats()
	if hellos != 2 || reports != 3 {
		t.Fatalf("collector saw %d hellos, %d reports", hellos, reports)
	}

	s := srv.Metrics.Registry().Snapshot()
	wantCounters := map[string]int64{
		"ingest_messages_total":                           5,
		"ingest_batches_total":                            3,
		"ingest_acked_batches_total":                      3,
		"ingest_shed_batches_total":                       0,
		`queries_total{mechanism="boolean",kind="point"}`: 1,
		`queries_total{mechanism="boolean",kind="sums"}`:  1,
	}
	for name, want := range wantCounters {
		if got := s.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	bs := s.Histograms["ingest_batch_size"]
	if bs.Count != 3 || bs.Sum != 5 {
		t.Errorf("ingest_batch_size count=%d sum=%v, want 3/5", bs.Count, bs.Sum)
	}
	lat := s.Histograms["ingest_latency_seconds"]
	if lat.Count != 3 || lat.Sum <= 0 {
		t.Errorf("ingest_latency_seconds count=%d sum=%v", lat.Count, lat.Sum)
	}
	if got := s.Gauges["conns_active"]; got != 1 {
		t.Errorf("conns_active = %v, want 1", got)
	}
	if got := s.Gauges["ingest_queue_capacity"]; got != 4 {
		t.Errorf("ingest_queue_capacity = %v, want 4", got)
	}
	if got := s.Gauges["ingest_queue_depth"]; got != 0 {
		t.Errorf("ingest_queue_depth = %v, want 0 at rest", got)
	}
}

// TestAckedBatchShedWhole is the load-shedding contract: with the
// queue full, an acked batch is rejected whole — negative ack, nothing
// applied, shed counter up — and the same batch applies cleanly once
// capacity frees.
func TestAckedBatchShedWhole(t *testing.T) {
	const d, scale = 16, 2.0
	col := NewShardedCollector(protocol.NewSharded(d, scale, 2))
	srv := NewIngestServer(col)
	srv.ErrorLog = func(err error) { t.Error(err) }
	srv.Metrics = NewServerMetrics(obs.NewRegistry())
	srv.Queue = NewIngestQueue(1)
	addr, closeSrv := startServer(t, srv)
	defer closeSrv()

	conn, enc, dec := dialIngest(t, addr)
	defer conn.Close()
	batch := []Msg{Hello(1, 0), FromReport(protocol.Report{User: 1, Order: 0, J: 5, Bit: 1})}

	// Hold the only slot so admission must fail.
	srv.Queue.Acquire()
	if err := enc.EncodeAckedBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	applied, err := dec.ReadBatchAck()
	if err != nil {
		t.Fatal(err)
	}
	if applied {
		t.Fatal("acked batch against a full queue must be shed")
	}
	if hellos, reports, batches := col.Stats(); hellos != 0 || reports != 0 || batches != 0 {
		t.Fatalf("shed batch left state behind: %d hellos, %d reports, %d batches", hellos, reports, batches)
	}
	if got := srv.Metrics.ShedBatches.Value(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}

	// Same batch after release: applied.
	srv.Queue.Release()
	if err := enc.EncodeAckedBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	applied, err = dec.ReadBatchAck()
	if err != nil {
		t.Fatal(err)
	}
	if !applied {
		t.Fatal("acked batch against a free queue must apply")
	}
	if hellos, reports, _ := col.Stats(); hellos != 1 || reports != 1 {
		t.Fatalf("collector saw %d hellos, %d reports, want 1/1", hellos, reports)
	}
	if got := srv.Metrics.AckedBatches.Value(); got != 2 {
		t.Fatalf("acked counter = %d, want 2 (one shed + one applied)", got)
	}
}

// TestLegacyBatchBlocksInsteadOfShedding pins the compatibility
// contract: a legacy (un-acked) batch is never shed — it waits for
// queue capacity under TCP backpressure and applies once a slot frees.
func TestLegacyBatchBlocksInsteadOfShedding(t *testing.T) {
	const d, scale = 16, 2.0
	col := NewShardedCollector(protocol.NewSharded(d, scale, 2))
	srv := NewIngestServer(col)
	srv.ErrorLog = func(err error) { t.Error(err) }
	srv.Queue = NewIngestQueue(1)
	addr, closeSrv := startServer(t, srv)
	defer closeSrv()

	conn, enc, dec := dialIngest(t, addr)
	defer conn.Close()

	srv.Queue.Acquire()
	if err := enc.EncodeBatch([]Msg{Hello(1, 0)}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	// The slot is held, so the batch cannot have applied no matter how
	// long we wait.
	time.Sleep(20 * time.Millisecond)
	if hellos, _, _ := col.Stats(); hellos != 0 {
		t.Fatal("legacy batch applied while the queue was full")
	}
	srv.Queue.Release()
	// Fence: a query answer proves the blocked batch has applied.
	if err := enc.Encode(Query(1)); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Next(); err != nil {
		t.Fatal(err)
	}
	if hellos, _, _ := col.Stats(); hellos != 1 {
		t.Fatal("legacy batch did not apply after the queue freed")
	}
}

// TestAckedBatchRejectsQueries: query frames may not travel in acked
// batches (a shed reply would be indistinguishable from a lost answer),
// and the server drops the connection without applying anything.
func TestAckedBatchRejectsQueries(t *testing.T) {
	col := NewShardedCollector(protocol.NewSharded(16, 2.0, 2))
	srv := NewIngestServer(col)
	addr, closeSrv := startServer(t, srv)
	defer closeSrv()

	conn, enc, _ := dialIngest(t, addr)
	defer conn.Close()
	if err := enc.EncodeAckedBatch([]Msg{Hello(1, 0), Query(1)}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("expected the server to drop the connection")
	}
	if hellos, _, _ := col.Stats(); hellos != 0 {
		t.Fatal("poisoned acked batch applied a prefix")
	}
}

// TestDomainAckedBatchServing runs the acked-batch path in domain mode:
// shed-then-apply against a full queue, per-mechanism query counters.
func TestDomainAckedBatchServing(t *testing.T) {
	ds := hh.NewDomainServer(16, 8, 2.0, 2)
	col := NewDomainCollector(ds)
	srv := NewDomainIngestServer(col)
	srv.ErrorLog = func(err error) { t.Error(err) }
	srv.Metrics = NewServerMetrics(obs.NewRegistry())
	srv.Queue = NewIngestQueue(1)
	addr, closeSrv := startServer(t, srv)
	defer closeSrv()

	conn, enc, dec := dialIngest(t, addr)
	defer conn.Close()
	batch := []Msg{DomainHello(1, 3, 0), FromDomainReport(3, protocol.Report{User: 1, Order: 0, J: 5, Bit: 1})}

	srv.Queue.Acquire()
	if err := enc.EncodeAckedBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	if applied, err := dec.ReadBatchAck(); err != nil || applied {
		t.Fatalf("want shed, got applied=%v err=%v", applied, err)
	}
	if hellos, reports, _ := col.Stats(); hellos != 0 || reports != 0 {
		t.Fatalf("shed domain batch left state: %d hellos, %d reports", hellos, reports)
	}
	srv.Queue.Release()
	if err := enc.EncodeAckedBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	if applied, err := dec.ReadBatchAck(); err != nil || !applied {
		t.Fatalf("want applied, got applied=%v err=%v", applied, err)
	}
	if err := enc.Encode(DomainQuery(QueryPointItem, 3, 5, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := dec.ReadDomainAnswer(); err != nil {
		t.Fatal(err)
	}
	s := srv.Metrics.Registry().Snapshot()
	if got := s.Counters[`queries_total{mechanism="domain",kind="point_item"}`]; got != 1 {
		t.Fatalf("domain point query counter = %d", got)
	}
	if got := s.Counters["ingest_shed_batches_total"]; got != 1 {
		t.Fatalf("domain shed counter = %d", got)
	}
}

// TestDurabilityGauges asserts the WAL-lag and snapshot-age gauges: lag
// counts records appended since the last snapshot cursor and drops back
// to zero after a snapshot cut.
func TestDurabilityGauges(t *testing.T) {
	const d, scale = 16, 2.0
	dir := t.TempDir()
	meta := persist.Meta{Mechanism: "test", D: d, K: 2, Eps: 1, Scale: scale}
	col, _, err := OpenDurable(protocol.NewSharded(d, scale, 2), dir, meta, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	m := NewServerMetrics(obs.NewRegistry())
	m.RegisterDurability(col)

	if lag := m.Registry().Snapshot().Gauges["wal_lag_records"]; lag != 0 {
		t.Fatalf("fresh journal lag = %v", lag)
	}
	for i := 0; i < 3; i++ {
		if err := col.SendBatch(0, []Msg{Hello(i, 0)}); err != nil {
			t.Fatal(err)
		}
	}
	s := m.Registry().Snapshot()
	if lag := s.Gauges["wal_lag_records"]; lag != 3 {
		t.Fatalf("lag after 3 appends = %v, want 3", lag)
	}
	if last := s.Gauges["wal_last_seq"]; last != 3 {
		t.Fatalf("wal_last_seq = %v, want 3", last)
	}
	if age := s.Gauges["snapshot_age_seconds"]; age < 0 || age > 60 {
		t.Fatalf("snapshot_age_seconds = %v, want small positive", age)
	}
	if _, err := col.Snapshot(); err != nil {
		t.Fatal(err)
	}
	s = m.Registry().Snapshot()
	if lag := s.Gauges["wal_lag_records"]; lag != 0 {
		t.Fatalf("lag after snapshot = %v, want 0", lag)
	}
	ds := col.DurabilityStats()
	if ds.SnapshotCursor != 3 || ds.LastSeq != 3 {
		t.Fatalf("stats after snapshot = %+v", ds)
	}
}

// TestShutdownGraceDrains: a connection that finishes its stream within
// the grace period lets Shutdown return early, without force-closing.
func TestShutdownGraceDrains(t *testing.T) {
	col := NewShardedCollector(protocol.NewSharded(16, 2.0, 2))
	srv := NewIngestServer(col)
	srv.ErrorLog = func(err error) { t.Error(err) }
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0", ready) }()
	addr := (<-ready).String()

	conn, enc, dec := dialIngest(t, addr)
	if err := enc.EncodeBatch([]Msg{Hello(1, 0)}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(Query(1)); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Next(); err != nil {
		t.Fatal(err)
	}

	const grace = 30 * time.Second
	shutDone := make(chan error, 1)
	start := time.Now()
	go func() { shutDone <- srv.Shutdown(grace) }()
	// New connections must be refused while the old one drains.
	waitRefused(t, addr)
	conn.Close() // client drains: stream ends cleanly
	if err := <-shutDone; err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took >= grace {
		t.Fatalf("Shutdown waited the full grace period (%v) despite a drained client", took)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if hellos, _, _ := col.Stats(); hellos != 1 {
		t.Fatalf("drained state: %d hellos, want 1", hellos)
	}
}

// waitRefused polls until dialing addr fails — the listener is down.
func waitRefused(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return
		}
		c.Close()
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("listener still accepting after Shutdown started")
}

// TestShutdownGraceForceCloses: a connection that never drains is
// force-closed once the grace period lapses, and Shutdown still returns
// with the collector quiescent.
func TestShutdownGraceForceCloses(t *testing.T) {
	col := NewShardedCollector(protocol.NewSharded(16, 2.0, 2))
	srv := NewIngestServer(col)
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0", ready) }()
	addr := (<-ready).String()

	conn, enc, dec := dialIngest(t, addr)
	defer conn.Close()
	if err := enc.EncodeBatch([]Msg{Hello(1, 0)}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(Query(1)); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Next(); err != nil {
		t.Fatal(err)
	}

	// The client now idles with the stream open; Shutdown must cut it.
	start := time.Now()
	if err := srv.Shutdown(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took < 50*time.Millisecond {
		t.Fatalf("Shutdown returned before the grace period (%v)", took)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// The client observes the force-close as EOF/reset on its next read.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := dec.Next(); err == nil || errors.Is(err, io.ErrNoProgress) {
		t.Fatalf("expected the idle connection to be force-closed, got %v", err)
	}
	if hellos, _, _ := col.Stats(); hellos != 1 {
		t.Fatalf("state after force-close: %d hellos, want 1", hellos)
	}
}

// TestShutdownRefusesNewConns: connections accepted racily after
// Shutdown flips the closed bit are dropped by track, not served.
func TestShutdownIdempotentAndCloseAfter(t *testing.T) {
	srv := NewIngestServer(NewShardedCollector(protocol.NewSharded(16, 2.0, 2)))
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0", ready) }()
	<-ready
	if err := srv.Shutdown(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Shutdown again and Close after Shutdown are both no-ops.
	if err := srv.Shutdown(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
