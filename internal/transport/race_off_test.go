//go:build !race

package transport

// raceEnabled reports whether the race detector is on; its
// instrumentation allocates, so allocation-count assertions only hold
// without it.
const raceEnabled = false
