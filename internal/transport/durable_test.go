package transport

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"rtf/internal/persist"
	"rtf/internal/protocol"
)

func durableMeta(d int, scale float64) persist.Meta {
	return persist.Meta{Mechanism: "test", D: d, K: 4, Eps: 1, Scale: scale}
}

// genMsgs builds a deterministic hello+report stream for n users.
func genMsgs(d, n int) []Msg {
	var ms []Msg
	for u := 0; u < n; u++ {
		order := u % 3
		ms = append(ms, Hello(u, order))
		for r := 0; r < 4; r++ {
			j := 1 + (u*7+r*3)%(d>>uint(order))
			bit := int8(1)
			if (u+r)%2 == 0 {
				bit = -1
			}
			ms = append(ms, FromReport(protocol.Report{User: u, Order: order, J: j, Bit: bit}))
		}
	}
	return ms
}

// TestDurableCollectorCrashRecovery ingests through a DurableCollector,
// snapshots mid-stream, ingests more, then simulates a crash by simply
// abandoning the collector (nothing flushed or closed beyond what
// SendBatch itself guarantees) and recovers into a fresh accumulator:
// estimates must match a serial server fed the same messages.
func TestDurableCollectorCrashRecovery(t *testing.T) {
	const d, scale = 64, 5.5
	dir := t.TempDir()
	meta := durableMeta(d, scale)

	acc := protocol.NewSharded(d, scale, 4)
	dc, rec, err := OpenDurable(acc, dir, meta, DurableOptions{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotCursor != 0 || rec.Replayed != 0 {
		t.Fatalf("fresh dir recovered something: %+v", rec)
	}

	serial := protocol.NewServer(d, scale)
	ms := genMsgs(d, 60)
	feedSerial := func(batch []Msg) {
		for _, m := range batch {
			if m.Type == MsgHello {
				serial.Register(m.Order)
			} else {
				serial.Ingest(m.Report())
			}
		}
	}
	third := len(ms) / 3
	if err := dc.SendBatch(1, ms[:third]); err != nil {
		t.Fatal(err)
	}
	feedSerial(ms[:third])
	if _, err := dc.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := dc.SendBatch(2, ms[third:2*third]); err != nil {
		t.Fatal(err)
	}
	if err := dc.Send(3, ms[2*third]); err != nil {
		t.Fatal(err)
	}
	if err := dc.SendBatch(0, ms[2*third+1:]); err != nil {
		t.Fatal(err)
	}
	feedSerial(ms[third:])
	// Crash: dc is dropped without Close or a final snapshot.

	acc2 := protocol.NewSharded(d, scale, 2)
	dc2, rec2, err := OpenDurable(acc2, dir, meta, DurableOptions{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer dc2.Close()
	if rec2.SnapshotCursor == 0 || rec2.Replayed == 0 {
		t.Fatalf("expected mixed snapshot+WAL recovery, got %+v", rec2)
	}
	if acc2.Users() != serial.Users() {
		t.Fatalf("users after recovery: %d vs %d", acc2.Users(), serial.Users())
	}
	wantSeries := serial.EstimateSeries()
	for i, got := range acc2.EstimateSeries() {
		if got != wantSeries[i] {
			t.Fatalf("series[%d] after recovery: %v vs %v", i, got, wantSeries[i])
		}
	}
	if got, want := acc2.EstimateChange(9, 41), serial.EstimateChange(9, 41); got != want {
		t.Fatalf("change after recovery: %v vs %v", got, want)
	}

	// Ingestion continues seamlessly after recovery.
	extra := []Msg{Hello(1000, 0), FromReport(protocol.Report{User: 1000, Order: 0, J: 5, Bit: 1})}
	if err := dc2.SendBatch(0, extra); err != nil {
		t.Fatal(err)
	}
	feedSerial(extra)
	if got, want := acc2.EstimateAt(d), serial.EstimateAt(d); got != want {
		t.Fatalf("estimate after post-recovery ingest: %v vs %v", got, want)
	}
}

// TestDurableCollectorMetaMismatch: a data directory written under one
// configuration must be rejected under another.
func TestDurableCollectorMetaMismatch(t *testing.T) {
	const d, scale = 32, 2.0
	dir := t.TempDir()
	acc := protocol.NewSharded(d, scale, 1)
	dc, _, err := OpenDurable(acc, dir, durableMeta(d, scale), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := dc.SendBatch(0, genMsgs(d, 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := dc.Snapshot(); err != nil {
		t.Fatal(err)
	}
	dc.Close()

	other := durableMeta(d, scale)
	other.Eps = 0.25
	_, _, err = OpenDurable(protocol.NewSharded(d, scale, 1), dir, other, DurableOptions{})
	if err == nil || !strings.Contains(err.Error(), "snapshot taken with") {
		t.Fatalf("meta mismatch: %v", err)
	}
}

// TestDurableCollectorRejectsInvalidBeforeJournaling: an invalid batch
// must reach neither the WAL nor the accumulator.
func TestDurableCollectorRejectsInvalidBeforeJournaling(t *testing.T) {
	const d, scale = 32, 2.0
	dir := t.TempDir()
	acc := protocol.NewSharded(d, scale, 1)
	dc, _, err := OpenDurable(acc, dir, durableMeta(d, scale), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bad := []Msg{Hello(0, 0), FromReport(protocol.Report{User: 1, Order: 0, J: d + 1, Bit: 1})}
	if err := dc.SendBatch(0, bad); err == nil {
		t.Fatal("invalid batch accepted")
	}
	if acc.Users() != 0 {
		t.Fatal("invalid batch partially applied")
	}
	dc.Close()
	// Recovery must see an empty log: nothing was journaled.
	acc2 := protocol.NewSharded(d, scale, 1)
	_, rec, err := OpenDurable(acc2, dir, durableMeta(d, scale), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Replayed != 0 || acc2.Users() != 0 {
		t.Fatalf("invalid batch leaked into the WAL: %+v users=%d", rec, acc2.Users())
	}
}

// TestDurableCollectorConcurrent hammers the durable collector from
// many goroutines with a concurrent snapshot, then recovers and checks
// against a serial server (addition is commutative, so any interleaving
// must recover to the same counters).
func TestDurableCollectorConcurrent(t *testing.T) {
	const d, scale, workers, perWorker = 64, 3.0, 8, 40
	dir := t.TempDir()
	acc := protocol.NewSharded(d, scale, 4)
	dc, _, err := OpenDurable(acc, dir, durableMeta(d, scale), DurableOptions{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				u := w*perWorker + i
				batch := []Msg{
					Hello(u, 0),
					FromReport(protocol.Report{User: u, Order: 0, J: 1 + u%d, Bit: 1}),
				}
				if err := dc.SendBatch(w, batch); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	snapErr := make(chan error, 1)
	go func() {
		for i := 0; i < 5; i++ {
			if _, err := dc.Snapshot(); err != nil {
				snapErr <- err
				return
			}
			time.Sleep(time.Millisecond)
		}
		snapErr <- nil
	}()
	wg.Wait()
	if err := <-snapErr; err != nil {
		t.Fatal(err)
	}
	dc.Close()

	serial := protocol.NewServer(d, scale)
	for u := 0; u < workers*perWorker; u++ {
		serial.Register(0)
		serial.Ingest(protocol.Report{User: u, Order: 0, J: 1 + u%d, Bit: 1})
	}
	acc2 := protocol.NewSharded(d, scale, 1)
	if _, _, err := OpenDurable(acc2, dir, durableMeta(d, scale), DurableOptions{}); err != nil {
		t.Fatal(err)
	}
	want := serial.EstimateSeries()
	for i, got := range acc2.EstimateSeries() {
		if got != want[i] {
			t.Fatalf("series[%d]: %v vs %v", i, got, want[i])
		}
	}
}

// TestShutdownDrains starts an ingest server, opens a client
// connection, and checks Shutdown closes the listener, lets the client
// finish a stream it already started, and returns with the collector
// quiescent.
func TestShutdownDrains(t *testing.T) {
	acc := protocol.NewSharded(32, 2.0, 2)
	srv := NewIngestServer(NewShardedCollector(acc))
	ready := make(chan net.Addr, 1)
	served := make(chan error, 1)
	go func() { served <- srv.ListenAndServe("127.0.0.1:0", ready) }()
	addr := (<-ready).String()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := NewEncoder(conn)
	if err := enc.EncodeBatch([]Msg{Hello(0, 0), FromReport(protocol.Report{User: 0, Order: 0, J: 3, Bit: 1})}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	// Fence before shutdown so the batch is known-applied.
	if err := enc.Encode(Query(3)); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDecoder(conn).Next(); err != nil {
		t.Fatal(err)
	}

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Shutdown(5 * time.Second) }()

	// New connections are refused once the listener is down; the
	// existing connection keeps draining until the client closes.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := net.DialTimeout("tcp", addr, 100*time.Millisecond); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting after Shutdown began")
		}
		time.Sleep(5 * time.Millisecond)
	}
	conn.Close()

	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not return after the client closed")
	}
	if err := <-served; err != nil {
		t.Fatalf("Serve returned %v", err)
	}
	if acc.Users() != 1 {
		t.Fatalf("users after drain: %d", acc.Users())
	}
}
