package transport

import (
	"fmt"
	"sync/atomic"

	"rtf/internal/dyadic"
	"rtf/internal/hh"
	"rtf/internal/persist"
	"rtf/internal/protocol"
)

// This file is the transport substrate of hashed domain encodings
// (LOLOHA): ingest validation that pins the shared epoch hash seed,
// item-scoped query answering through the bucket decoder, and the
// collectors that fan decoded batches into an hh.HashedDomainServer.
// The hot ingest path reuses MsgDomainReport verbatim (Item = bucket),
// so batching, journaling and replay go through the ordinary decoder;
// only the hello (MsgHashedDomainHello, seed-carrying) and the
// gateway's sums request (MsgHashedDomainSums, full-encoding-carrying)
// are new frame types.

// ValidateHashedDomainIngest range-checks one hashed hello or
// bucket-tagged report against a hashed server's parameters. A hello
// must carry the server's exact epoch hash seed: a client hashing under
// a different seed has a different item→bucket map, and its reports
// would silently corrupt the aggregate. Plain MsgDomainHello is
// rejected — an exact-encoding client cannot feed a hashed server.
func ValidateHashedDomainIngest(d int, enc hh.DomainEncoding, msg Msg) error {
	return validateHashedDomainIngest(d, enc, dyadic.Log2(d), &msg)
}

// hashedDomainIngestOK is the branch-only core of
// validateHashedDomainIngest, small enough to inline into the batch
// loops; it agrees with it on every input.
func hashedDomainIngestOK(d, maxOrder int, enc *hh.DomainEncoding, msg *Msg) bool {
	switch msg.Type {
	case MsgDomainReport:
		return msg.User >= 0 && uint(msg.Item) < uint(enc.G) &&
			(msg.Bit == 1 || msg.Bit == -1) &&
			uint(msg.Order) <= uint(maxOrder) &&
			uint(msg.J-1) < uint(d>>uint(msg.Order))
	case MsgHashedDomainHello:
		return msg.User >= 0 && uint(msg.Item) < uint(enc.G) &&
			uint(msg.Order) <= uint(maxOrder) && msg.Seed == enc.Seed
	}
	return false
}

// validateHashedDomainIngest is the pointer-based, error-building body
// of ValidateHashedDomainIngest.
func validateHashedDomainIngest(d int, enc hh.DomainEncoding, maxOrder int, msg *Msg) error {
	switch msg.Type {
	case MsgHashedDomainHello:
		if msg.User < 0 {
			return fmt.Errorf("transport: negative user id %d", msg.User)
		}
		if uint(msg.Item) >= uint(enc.G) {
			return fmt.Errorf("transport: hello bucket %d out of range [0..%d)", msg.Item, enc.G)
		}
		if uint(msg.Order) > uint(maxOrder) {
			return fmt.Errorf("transport: hello order %d out of range [0..%d]", msg.Order, maxOrder)
		}
		if msg.Seed != enc.Seed {
			return fmt.Errorf("transport: hello hash seed %d does not match the server's epoch seed", msg.Seed)
		}
	case MsgDomainReport:
		if msg.User < 0 {
			return fmt.Errorf("transport: negative user id %d", msg.User)
		}
		if uint(msg.Item) >= uint(enc.G) {
			return fmt.Errorf("transport: report bucket %d out of range [0..%d)", msg.Item, enc.G)
		}
		if msg.Bit != 1 && msg.Bit != -1 {
			return fmt.Errorf("transport: report bit %d not ±1", msg.Bit)
		}
		if uint(msg.Order) > uint(maxOrder) {
			return fmt.Errorf("transport: report order %d out of range [0..%d]", msg.Order, maxOrder)
		}
		if uint(msg.J-1) >= uint(d>>uint(msg.Order)) {
			return fmt.Errorf("transport: report index %d out of range for order %d", msg.J, msg.Order)
		}
	default:
		return fmt.Errorf("transport: hashed domain collector cannot ingest message type %d", msg.Type)
	}
	return nil
}

// ValidateHashedDomainQuery range-checks an item-scoped query against a
// hashed server's catalogue. The shapes are the exact encoding's, with
// one extra bound: a hashed catalogue (up to 2^24 items) exceeds the
// answer-frame length cap, so a top-k request larger than MaxAnswerLen
// is rejected here instead of failing at encode time.
func ValidateHashedDomainQuery(d, m int, msg Msg) error {
	if err := ValidateDomainQuery(d, m, msg); err != nil {
		return err
	}
	if msg.Kind == QueryTopK && msg.K > MaxAnswerLen {
		return fmt.Errorf("transport: top-k query k=%d exceeds answer limit %d", msg.K, MaxAnswerLen)
	}
	return nil
}

// AnswerHashedDomainQuery computes the answer to an item-scoped query
// from the live hashed server: identical frame shapes to the exact
// encoding's, with estimates going through the bucket decoder. Answers
// are bit-for-bit a serial hashed server's: every decode is a fixed
// function of the per-bucket point estimates, which sum the same dyadic
// decomposition in the same bucket order everywhere.
func AnswerHashedDomainQuery(hs *hh.HashedDomainServer, msg Msg) (DomainAnswerFrame, error) {
	var a DomainAnswerFrame
	var sc TopKScratch
	if _, err := AnswerHashedDomainQueryInto(hs, msg, &a, &sc); err != nil {
		return DomainAnswerFrame{}, err
	}
	return a, nil
}

// AnswerHashedDomainQueryInto is AnswerHashedDomainQuery answering into
// a reusable frame — the hashed counterpart of AnswerDomainQueryInto.
// It reports whether the answer was served from the server's
// version-keyed decode memo (top-k and point-item; a warm top-k skips
// the m-item hash sweep entirely). The frame's slices remain owned by
// the caller and never alias server-internal storage.
func AnswerHashedDomainQueryInto(hs *hh.HashedDomainServer, msg Msg, a *DomainAnswerFrame, sc *TopKScratch) (cached bool, err error) {
	if err := ValidateHashedDomainQuery(hs.D(), hs.M(), msg); err != nil {
		return false, err
	}
	a.Kind, a.Item, a.L, a.R, a.K = msg.Kind, msg.Item, msg.L, msg.R, msg.K
	a.Items, a.Values = a.Items[:0], a.Values[:0]
	switch msg.Kind {
	case QueryPointItem:
		var v float64
		v, cached = hs.EstimateItemAtCached(msg.Item, msg.L)
		a.Values = append(a.Values, v)
	case QuerySeriesItem:
		a.Values = append(a.Values, hs.EstimateItemSeries(msg.Item)...)
	case QueryTopK:
		sc.top, cached = hs.AppendTopK(sc.top[:0], msg.L, msg.K)
		for _, ic := range sc.top {
			a.Items = append(a.Items, ic.Item)
			a.Values = append(a.Values, ic.Count)
		}
	}
	return cached, nil
}

// HashedDomainBatchCollector is the hashed counterpart of
// DomainBatchCollector: the fan-in point a hashed-mode IngestServer
// feeds — the plain in-memory HashedDomainCollector, or the durable one
// that journals every frame first.
type HashedDomainBatchCollector interface {
	// Hashed returns the underlying hashed domain server (for queries).
	Hashed() *hh.HashedDomainServer
	// Send validates and ingests one hashed hello or report message.
	Send(shard int, m Msg) error
	// SendBatch validates and ingests a whole decoded batch atomically.
	SendBatch(shard int, ms []Msg) error
	// Validate checks one message against the server's parameters
	// without side effects.
	Validate(m Msg) error
	// Stats returns the number of hellos, reports and batches ingested.
	Stats() (hellos, reports, batches int64)
}

// HashedDomainCollector fans decoded hashed domain messages into an
// hh.HashedDomainServer. The shard argument is a routing hint that
// spreads hot counters across cache lines; correctness does not depend
// on it.
type HashedDomainCollector struct {
	srv     *hh.HashedDomainServer
	enc     hh.DomainEncoding
	reports atomic.Int64
	hellos  atomic.Int64
	batches atomic.Int64
}

// NewHashedDomainCollector builds a collector over the given server.
func NewHashedDomainCollector(srv *hh.HashedDomainServer) *HashedDomainCollector {
	return &HashedDomainCollector{srv: srv, enc: srv.Encoding()}
}

// Hashed returns the underlying hashed domain server (for queries).
func (c *HashedDomainCollector) Hashed() *hh.HashedDomainServer { return c.srv }

// Validate checks one hashed hello or report message against the
// server's parameters without side effects.
func (c *HashedDomainCollector) Validate(m Msg) error {
	d := c.srv.D()
	return validateHashedDomainIngest(d, c.enc, dyadic.Log2(d), &m)
}

// apply accumulates one validated message; callers must have run
// Validate first.
func (c *HashedDomainCollector) apply(shard int, m *Msg, hellos, reports *int64) {
	if m.Type == MsgHashedDomainHello {
		c.srv.Register(shard, m.Item, m.Order)
		*hellos++
	} else {
		c.srv.Ingest(shard, m.Item, protocol.Report{User: m.User, Order: m.Order, J: m.J, Bit: m.Bit})
		*reports++
	}
}

// Send validates one hashed domain message and applies it to the
// server via the given shard. It is safe for concurrent use.
func (c *HashedDomainCollector) Send(shard int, m Msg) error {
	if err := c.Validate(m); err != nil {
		return err
	}
	var hellos, reports int64
	c.apply(shard, &m, &hellos, &reports)
	if hellos > 0 {
		c.hellos.Add(hellos)
	}
	c.reports.Add(reports)
	if reports > 0 {
		c.srv.AdvanceVersion(shard)
	}
	return nil
}

// SendBatch applies a decoded batch to the server via the given shard.
// The batch is atomic: it is validated in full first, and on error
// nothing is applied.
func (c *HashedDomainCollector) SendBatch(shard int, ms []Msg) error {
	d := c.srv.D()
	maxOrder := dyadic.Log2(d)
	for i := range ms {
		if !hashedDomainIngestOK(d, maxOrder, &c.enc, &ms[i]) {
			return validateHashedDomainIngest(d, c.enc, maxOrder, &ms[i])
		}
	}
	c.applyBatch(shard, ms)
	return nil
}

// applyBatch accumulates a fully validated batch, then advances the
// server's version stamp once — batch-amortized invalidation for the
// version-keyed read caches (Ingest itself is version-silent to keep
// the hot path at one index computation and one atomic add).
func (c *HashedDomainCollector) applyBatch(shard int, ms []Msg) {
	var hellos, reports int64
	for i := range ms {
		c.apply(shard, &ms[i], &hellos, &reports)
	}
	if hellos > 0 {
		c.hellos.Add(hellos)
	}
	c.reports.Add(reports)
	c.batches.Add(1)
	if reports > 0 {
		c.srv.AdvanceVersion(shard)
	}
}

// applyJournaled implements batchApplier for the durable collector.
func (c *HashedDomainCollector) applyJournaled(shard int, ms []Msg) { c.applyBatch(shard, ms) }

// Stats returns the number of hellos, reports and batches ingested.
func (c *HashedDomainCollector) Stats() (hellos, reports, batches int64) {
	return c.hellos.Load(), c.reports.Load(), c.batches.Load()
}

// DurableHashedDomainCollector is the durable counterpart of
// HashedDomainCollector: every frame is journaled before it is applied,
// with the g-row bucket state snapshotted and recovered through the
// same snapshot+WAL machinery as every other collector.
type DurableHashedDomainCollector struct {
	inner *HashedDomainCollector
	j     *durableJournal
}

// OpenDurableHashedDomain recovers the hashed server's durable state
// from dir and returns a collector that journals all further ingestion
// there. The server must be freshly constructed; meta must describe the
// hosting configuration — Meta.M the catalogue size, Meta.G the bucket
// count, Meta.Encoding and Meta.HashSeed the encoding identity — so a
// data directory written under a different encoding (or a different
// epoch seed, whose bucket counters mean different items) is rejected
// rather than misinterpreted.
func OpenDurableHashedDomain(hs *hh.HashedDomainServer, dir string, meta persist.Meta, o DurableOptions) (*DurableHashedDomainCollector, RecoveryStats, error) {
	enc := hs.Encoding()
	if meta.M != hs.M() {
		return nil, RecoveryStats{}, fmt.Errorf("transport: meta catalogue size %d does not match server's %d", meta.M, hs.M())
	}
	if meta.G != hs.G() {
		return nil, RecoveryStats{}, fmt.Errorf("transport: meta bucket count %d does not match server's %d", meta.G, hs.G())
	}
	if meta.Encoding != enc.Name {
		return nil, RecoveryStats{}, fmt.Errorf("transport: meta encoding %q does not match server's %q", meta.Encoding, enc.Name)
	}
	if meta.HashSeed != enc.Seed {
		return nil, RecoveryStats{}, fmt.Errorf("transport: meta hash seed %d does not match server's %d", meta.HashSeed, enc.Seed)
	}
	inner := NewHashedDomainCollector(hs)
	j, stats, err := openJournal(dir, meta, o,
		hs.Inner().RestoreState,
		func(ms []Msg) error { return inner.SendBatch(0, ms) })
	if err != nil {
		return nil, stats, err
	}
	stats.Hellos, stats.Reports, _ = inner.Stats()
	return &DurableHashedDomainCollector{inner: inner, j: j}, stats, nil
}

// Hashed returns the underlying hashed domain server (for queries).
func (c *DurableHashedDomainCollector) Hashed() *hh.HashedDomainServer { return c.inner.Hashed() }

// Stats returns the number of hellos, reports and batches ingested,
// including those recovered at boot.
func (c *DurableHashedDomainCollector) Stats() (hellos, reports, batches int64) {
	return c.inner.Stats()
}

// Send journals and ingests one hashed hello or report message.
func (c *DurableHashedDomainCollector) Send(shard int, m Msg) error {
	return c.SendBatch(shard, []Msg{m})
}

// Validate checks one message without journaling or applying anything.
func (c *DurableHashedDomainCollector) Validate(m Msg) error { return c.inner.Validate(m) }

// SendBatch validates the batch, appends its wire encoding to the
// write-ahead log, and applies it to the hashed server — in that
// order. On a validation or journaling error nothing is applied.
func (c *DurableHashedDomainCollector) SendBatch(shard int, ms []Msg) error {
	d := c.inner.srv.D()
	maxOrder := dyadic.Log2(d)
	for i := range ms {
		if !hashedDomainIngestOK(d, maxOrder, &c.inner.enc, &ms[i]) {
			return validateHashedDomainIngest(d, c.inner.enc, maxOrder, &ms[i])
		}
	}
	return c.j.journal(shard, ms, c.inner)
}

// Snapshot writes a durable snapshot of the current bucket state and
// compacts the WAL (and older snapshots) behind it.
func (c *DurableHashedDomainCollector) Snapshot() (uint64, error) {
	return c.j.snapshot(c.inner.Hashed().Inner().MarshalState)
}

// DurabilityStats reads the collector's current WAL and snapshot state.
func (c *DurableHashedDomainCollector) DurabilityStats() DurabilityStats {
	return c.j.durabilityStats()
}

// Close closes the write-ahead log. It does not snapshot; callers that
// want a final cut call Snapshot first.
func (c *DurableHashedDomainCollector) Close() error { return c.j.close() }
