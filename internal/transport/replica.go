package transport

import (
	"fmt"
	"net"
	"sync"
	"time"

	"rtf/internal/membership"
)

// This file is the client side of the dynamic-membership cluster: a
// ReplicaClient pools connections per backend address — keyed by
// address rather than by a fixed index, because the member set changes
// across epochs — and BackendConn grows the membership round-trips
// (per-shard sums for quorum reads, shard state export, shard transfer
// install, view push). Placement is the member gateway's business
// (internal/cluster); this layer only moves frames.

// FetchShardSums round-trips a per-shard raw-sums request against a
// membership-mode Boolean backend. Like FetchSums, the in-order frame
// handling makes it a fence for everything sent earlier on this
// connection.
func (b *BackendConn) FetchShardSums(shard int) (SumsFrame, error) {
	if err := b.enc.Encode(ShardSums(shard)); err != nil {
		return SumsFrame{}, err
	}
	if err := b.enc.Flush(); err != nil {
		return SumsFrame{}, err
	}
	return b.dec.ReadSums()
}

// FetchShardDomainSums round-trips a per-shard raw-sums request
// against a membership-mode domain backend.
func (b *BackendConn) FetchShardDomainSums(shard int) (DomainSumsFrame, error) {
	if err := b.enc.Encode(ShardSums(shard)); err != nil {
		return DomainSumsFrame{}, err
	}
	if err := b.enc.Flush(); err != nil {
		return DomainSumsFrame{}, err
	}
	return b.dec.ReadDomainSums()
}

// FetchShardState round-trips a shard-snapshot request: the backend
// answers with the shard's serialized state (the reshard transfer
// payload).
func (b *BackendConn) FetchShardState(shard int) ([]byte, error) {
	if err := b.enc.Encode(ShardState(shard)); err != nil {
		return nil, err
	}
	if err := b.enc.Flush(); err != nil {
		return nil, err
	}
	return b.dec.ReadShardState(shard)
}

// TransferShard ships one shard's serialized state to the backend and
// waits for its ack; the backend installs it as the shard's new state
// (replacing any copy it held). A negative ack is an error.
func (b *BackendConn) TransferShard(shard int, state []byte) error {
	if err := b.enc.EncodeShardTransfer(shard, state); err != nil {
		return err
	}
	if err := b.enc.Flush(); err != nil {
		return err
	}
	applied, err := b.dec.ReadMemberAck()
	if err != nil {
		return err
	}
	if !applied {
		return fmt.Errorf("transport: backend refused transfer of shard %d", shard)
	}
	return nil
}

// PushView ships a cluster view to the backend and waits for its ack.
// A negative ack (a stale epoch, from the backend's point of view) is
// an error: the pusher holds an outdated view of the world.
func (b *BackendConn) PushView(v membership.View) error {
	if err := b.enc.EncodeView(v); err != nil {
		return err
	}
	if err := b.enc.Flush(); err != nil {
		return err
	}
	applied, err := b.dec.ReadMemberAck()
	if err != nil {
		return err
	}
	if !applied {
		return fmt.Errorf("transport: backend refused view epoch %d as stale", v.Epoch)
	}
	return nil
}

// ReplicaClient pools backend connections keyed by address, for a
// cluster whose member set changes across epochs: members can be added
// (a pool appears on first lease) and removed (Drop purges the pool).
// Dialing, backoff and unhealthy-release semantics match
// ClusterClient. It is safe for concurrent use.
type ReplicaClient struct {
	opts ClusterOptions

	mu     sync.Mutex
	idle   map[string]chan *BackendConn
	closed bool
}

// NewReplicaClient builds a client with no pools yet; pools appear as
// addresses are leased.
func NewReplicaClient(opts ClusterOptions) *ReplicaClient {
	return &ReplicaClient{opts: opts.withDefaults(), idle: make(map[string]chan *BackendConn)}
}

// Options returns the client's configuration with defaults applied.
func (c *ReplicaClient) Options() ClusterOptions { return c.opts }

// pool returns the idle pool for addr, creating it on first use.
func (c *ReplicaClient) pool(addr string) chan *BackendConn {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.idle[addr]
	if !ok {
		p = make(chan *BackendConn, c.opts.PoolSize)
		c.idle[addr] = p
	}
	return p
}

// Lease hands out a connection to the backend at addr: a pooled idle
// connection when one is available, otherwise a fresh dial with
// exponential backoff across DialAttempts. The caller owns the
// connection until Release.
func (c *ReplicaClient) Lease(addr string) (*BackendConn, error) {
	select {
	case bc := <-c.pool(addr):
		return bc, nil
	default:
	}
	backoff := c.opts.BackoffBase
	var lastErr error
	for attempt := 0; attempt < c.opts.DialAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			if backoff *= 2; backoff > c.opts.BackoffMax {
				backoff = c.opts.BackoffMax
			}
		}
		conn, err := net.DialTimeout("tcp", addr, c.opts.DialTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		return &BackendConn{conn: conn, enc: NewEncoder(conn), dec: NewDecoder(conn)}, nil
	}
	return nil, fmt.Errorf("transport: member %s unreachable after %d attempts: %w",
		addr, c.opts.DialAttempts, lastErr)
}

// Release returns a leased connection. A healthy connection goes back
// to the address's pool (or is closed when the pool is full); an
// unhealthy one is closed and the address's whole idle pool is
// discarded with it, for the same reason as ClusterClient.Release —
// the error usually means the process died, and retries must reach a
// fresh dial rather than burn on dead pooled connections.
func (c *ReplicaClient) Release(addr string, bc *BackendConn, healthy bool) {
	if bc == nil {
		return
	}
	if healthy {
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if !closed {
			select {
			case c.pool(addr) <- bc:
				return
			default:
			}
		}
		bc.Close()
		return
	}
	bc.Close()
	c.drain(addr)
}

// Drop purges and removes the pool for an address (a member that left
// the cluster).
func (c *ReplicaClient) Drop(addr string) {
	c.mu.Lock()
	p := c.idle[addr]
	delete(c.idle, addr)
	c.mu.Unlock()
	drainPool(p)
}

// drain empties the address's pool without removing it.
func (c *ReplicaClient) drain(addr string) {
	c.mu.Lock()
	p := c.idle[addr]
	c.mu.Unlock()
	drainPool(p)
}

func drainPool(p chan *BackendConn) {
	if p == nil {
		return
	}
	for {
		select {
		case bc := <-p:
			bc.Close()
		default:
			return
		}
	}
}

// Close closes every pooled idle connection and marks the client
// closed (subsequent healthy releases close instead of pooling).
// Leased connections are closed by their holders via Release.
func (c *ReplicaClient) Close() {
	c.mu.Lock()
	c.closed = true
	pools := make([]chan *BackendConn, 0, len(c.idle))
	for _, p := range c.idle {
		pools = append(pools, p)
	}
	c.idle = make(map[string]chan *BackendConn)
	c.mu.Unlock()
	for _, p := range pools {
		drainPool(p)
	}
}
