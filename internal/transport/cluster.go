package transport

import (
	"fmt"
	"net"
	"time"
)

// This file is the client side of the scatter/gather cluster: a
// ClusterClient owns the addresses of N rtf-serve backends, routes
// users to backends by user id modulo N, pools connections per backend,
// and re-dials a dead backend with exponential backoff. The gateway
// (internal/cluster) leases one connection per backend for the lifetime
// of each client session, so the backend's in-order frame handling
// makes a sums fetch on the same connection a fence for everything the
// session forwarded before it.

// ClusterOptions configures a ClusterClient. The zero value is usable:
// every field has a sensible default.
type ClusterOptions struct {
	// DialTimeout bounds one dial attempt (default 2s).
	DialTimeout time.Duration
	// DialAttempts is how many times Lease tries to reach a backend
	// before giving up (default 10). With the default backoff schedule
	// the attempts span roughly nine seconds — enough to ride out a
	// backend restart.
	DialAttempts int
	// BackoffBase is the sleep after the first failed attempt (default
	// 50ms); it doubles per attempt up to BackoffMax (default 2s).
	BackoffBase time.Duration
	// BackoffMax caps the per-attempt backoff sleep (default 2s).
	BackoffMax time.Duration
	// PoolSize is the per-backend idle-connection pool capacity
	// (default 4). Leases beyond it dial fresh connections; releases
	// beyond it close the connection instead of pooling it.
	PoolSize int
	// FetchTimeout, when positive, bounds one sums fetch round-trip
	// against a backend (connection deadline around the request). A
	// timed-out fetch counts as a connection failure: retried on a fresh
	// connection when the session has nothing unfenced at stake, fatal
	// to the session otherwise. Zero means no deadline (the default,
	// preserving pre-timeout behavior).
	FetchTimeout time.Duration
	// HedgeDelay, when positive, arms hedged reads: a clean-session
	// sums fetch that has not answered within HedgeDelay is raced
	// against a second fetch on a freshly leased connection, and the
	// first answer wins. Only read-only idempotent fetches with no
	// unfenced forwards are hedged, so duplicated requests cannot
	// double-apply anything. Zero disables hedging.
	HedgeDelay time.Duration
}

func (o ClusterOptions) withDefaults() ClusterOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.DialAttempts <= 0 {
		o.DialAttempts = 10
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 2 * time.Second
	}
	if o.PoolSize <= 0 {
		o.PoolSize = 4
	}
	return o
}

// BackendConn is one framed connection to a backend: the net.Conn plus
// its encoder/decoder pair. It is not safe for concurrent use; a leased
// connection belongs to one session until released.
type BackendConn struct {
	conn net.Conn
	enc  *Encoder
	dec  *Decoder
}

// SendBatch writes one batch frame (buffered until Flush).
func (b *BackendConn) SendBatch(ms []Msg) error { return b.enc.EncodeBatch(ms) }

// Flush flushes buffered frames to the backend.
func (b *BackendConn) Flush() error { return b.enc.Flush() }

// FetchSums round-trips a raw-sums request: everything sent earlier on
// this connection is applied before the response is cut (the backend
// handles frames in order), so the fetch doubles as a fence.
func (b *BackendConn) FetchSums() (SumsFrame, error) {
	if err := b.enc.Encode(Sums()); err != nil {
		return SumsFrame{}, err
	}
	if err := b.enc.Flush(); err != nil {
		return SumsFrame{}, err
	}
	return b.dec.ReadSums()
}

// FetchDomainSums round-trips a per-item raw-sums request against a
// domain-mode backend: everything sent earlier on this connection is
// applied before the response is cut, so the fetch doubles as a fence.
func (b *BackendConn) FetchDomainSums() (DomainSumsFrame, error) {
	if err := b.enc.Encode(DomainSums()); err != nil {
		return DomainSumsFrame{}, err
	}
	if err := b.enc.Flush(); err != nil {
		return DomainSumsFrame{}, err
	}
	return b.dec.ReadDomainSums()
}

// FetchHashedDomainSums round-trips an encoding-checked raw-sums
// request against a hashed-domain backend: the backend refuses the
// request unless its catalogue size, bucket count and epoch hash seed
// all match, so bucket counters from disagreeing deployments can never
// merge. Everything sent earlier on this connection is applied before
// the response is cut, so the fetch doubles as a fence.
func (b *BackendConn) FetchHashedDomainSums(m, g int, seed uint64) (DomainSumsFrame, error) {
	if err := b.enc.Encode(HashedDomainSums(m, g, seed)); err != nil {
		return DomainSumsFrame{}, err
	}
	if err := b.enc.Flush(); err != nil {
		return DomainSumsFrame{}, err
	}
	return b.dec.ReadDomainSums()
}

// Fence round-trips a trivial point query, proving the backend applied
// everything sent earlier on this connection.
func (b *BackendConn) Fence() error {
	if err := b.enc.Encode(Query(1)); err != nil {
		return err
	}
	if err := b.enc.Flush(); err != nil {
		return err
	}
	m, err := b.dec.Next()
	if err != nil {
		return err
	}
	if m.Type != MsgEstimate {
		return fmt.Errorf("transport: fence answered with message type %d", m.Type)
	}
	return nil
}

// SetDeadline sets the absolute read/write deadline on the underlying
// connection (the zero time clears it). The gateway brackets each
// bounded sums fetch with it.
func (b *BackendConn) SetDeadline(t time.Time) error { return b.conn.SetDeadline(t) }

// Close closes the underlying connection.
func (b *BackendConn) Close() error { return b.conn.Close() }

// ClusterClient connects to a fixed set of rtf-serve backends, routing
// each user to backend (user mod N). Lease/Release manage per-backend
// pooled connections; Lease re-dials a dead backend with exponential
// backoff, so a crashed-and-recovering backend stalls its callers
// instead of failing them. It is safe for concurrent use.
type ClusterClient struct {
	addrs []string
	opts  ClusterOptions
	idle  []chan *BackendConn
}

// NewClusterClient builds a client over the given backend addresses.
// The address order is the partition map (user mod N routes to
// addrs[user mod N]) and must be identical on every gateway.
func NewClusterClient(addrs []string, opts ClusterOptions) (*ClusterClient, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("transport: cluster with no backends")
	}
	o := opts.withDefaults()
	idle := make([]chan *BackendConn, len(addrs))
	for i := range idle {
		idle[i] = make(chan *BackendConn, o.PoolSize)
	}
	return &ClusterClient{addrs: append([]string(nil), addrs...), opts: o, idle: idle}, nil
}

// N returns the number of backends.
func (c *ClusterClient) N() int { return len(c.addrs) }

// Options returns the client's configuration with defaults applied.
func (c *ClusterClient) Options() ClusterOptions { return c.opts }

// Addr returns the address of backend i.
func (c *ClusterClient) Addr(i int) string { return c.addrs[i] }

// Route returns the backend responsible for a user: user mod N.
// Callers validate user ≥ 0 before routing.
func (c *ClusterClient) Route(user int) int { return user % len(c.addrs) }

// Lease hands out a connection to backend i: a pooled idle connection
// when one is available, otherwise a fresh dial with exponential
// backoff across DialAttempts. The caller owns the connection until
// Release.
func (c *ClusterClient) Lease(i int) (*BackendConn, error) {
	select {
	case bc := <-c.idle[i]:
		return bc, nil
	default:
	}
	backoff := c.opts.BackoffBase
	var lastErr error
	for attempt := 0; attempt < c.opts.DialAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			if backoff *= 2; backoff > c.opts.BackoffMax {
				backoff = c.opts.BackoffMax
			}
		}
		conn, err := net.DialTimeout("tcp", c.addrs[i], c.opts.DialTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		return &BackendConn{conn: conn, enc: NewEncoder(conn), dec: NewDecoder(conn)}, nil
	}
	return nil, fmt.Errorf("transport: backend %d (%s) unreachable after %d attempts: %w",
		i, c.addrs[i], c.opts.DialAttempts, lastErr)
}

// Release returns a leased connection. A healthy connection goes back
// to the pool (or is closed when the pool is full); an unhealthy one —
// any connection that saw an error — is closed, and the backend's whole
// idle pool is discarded with it: an error usually means the backend
// process died (crash, kill -9), taking every pooled connection with
// it, and retry attempts must reach a fresh dial — which waits out a
// restart via backoff — rather than burn on dead pooled connections.
func (c *ClusterClient) Release(i int, bc *BackendConn, healthy bool) {
	if bc == nil {
		return
	}
	if healthy {
		select {
		case c.idle[i] <- bc:
			return
		default:
		}
		bc.Close()
		return
	}
	bc.Close()
	for {
		select {
		case idle := <-c.idle[i]:
			idle.Close()
		default:
			return
		}
	}
}

// Close closes every pooled idle connection. Leased connections are
// closed by their holders via Release.
func (c *ClusterClient) Close() {
	for i := range c.idle {
		for {
			select {
			case bc := <-c.idle[i]:
				bc.Close()
			default:
				goto next
			}
		}
	next:
	}
}
