package transport

import (
	"io"
	"testing"

	"rtf/internal/hh"
	"rtf/internal/protocol"
)

// TestAnswerIntoAllocFree pins the steady-state serve-side answer path
// at zero allocations per query: once the version-keyed memos are warm
// and the reusable frame/scratch/encoder buffers have grown to size,
// answering and encoding a top-k or point-item query must not allocate.
// A regression here silently reintroduces per-query garbage on the hot
// read path, so this is a hard gate rather than a benchmark.
func TestAnswerIntoAllocFree(t *testing.T) {
	const d, m, g, k = 8, 256, 32, 10

	ds := hh.NewDomainServer(d, m, 1.5, 2)
	hs := hh.NewHashedDomainServer(d, hh.LolohaEncoding(m, g, 0xfeed), 2.0, 2)
	for u := 0; u < 64; u++ {
		ds.Register(u%2, u%m, 0)
		hs.Register(u%2, u%g, 0)
		for tt := 1; tt <= d; tt++ {
			bit := int8(1)
			if u%3 == 0 {
				bit = -1
			}
			ds.Ingest(u%2, u%m, protocol.Report{User: u, Order: 0, J: tt, Bit: bit})
			hs.Ingest(u%2, u%g, protocol.Report{User: u, Order: 0, J: tt, Bit: bit})
		}
	}
	ds.AdvanceVersion(0)
	hs.AdvanceVersion(0)

	var ans DomainAnswerFrame
	var sc TopKScratch
	enc := NewEncoder(io.Discard)

	answer := func(msg Msg, hashed bool) {
		t.Helper()
		var err error
		if hashed {
			_, err = AnswerHashedDomainQueryInto(hs, msg, &ans, &sc)
		} else {
			_, err = AnswerDomainQueryInto(ds, msg, &ans, &sc)
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := enc.EncodeDomainAnswer(ans); err != nil {
			t.Fatal(err)
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	cases := []struct {
		name   string
		msg    Msg
		hashed bool
	}{
		{"domain top-k", Msg{Type: MsgDomainQuery, Kind: QueryTopK, L: d / 2, K: k}, false},
		{"hashed top-k", Msg{Type: MsgDomainQuery, Kind: QueryTopK, L: d / 2, K: k}, true},
		{"hashed point-item", Msg{Type: MsgDomainQuery, Kind: QueryPointItem, Item: 7, L: d / 2}, true},
	}
	for _, tc := range cases {
		// Warm the memo and grow the reusable buffers before measuring.
		answer(tc.msg, tc.hashed)
		allocs := testing.AllocsPerRun(100, func() { answer(tc.msg, tc.hashed) })
		if allocs != 0 {
			t.Errorf("%s: warm answer path allocates %.1f times per query, want 0", tc.name, allocs)
		}
	}
}
