package transport

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"

	"rtf/internal/membership"
)

func testView() membership.View {
	return membership.View{
		Epoch:     7,
		K:         2,
		NumShards: 64,
		Members: []membership.Member{
			{ID: "b0", Addr: "127.0.0.1:7610"},
			{ID: "b1", Addr: "127.0.0.1:7611"},
			{ID: "b2", Addr: "127.0.0.1:7612"},
		},
	}
}

func encodeViewBytes(t *testing.T, v membership.View) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.EncodeView(v); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestViewRoundTrip pins that a view frame survives the wire exactly
// and surfaces through the decoder as a marker + TakeView.
func TestViewRoundTrip(t *testing.T) {
	want := testView()
	dec := NewDecoder(bytes.NewReader(encodeViewBytes(t, want)))
	m, err := dec.Next()
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != MsgView {
		t.Fatalf("marker type %d, want MsgView", m.Type)
	}
	if got := dec.TakeView(); !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
	}
	// TakeView releases: a second call returns the zero view.
	if got := dec.TakeView(); len(got.Members) != 0 {
		t.Fatalf("second TakeView returned %+v", got)
	}
	if _, err := dec.Next(); err != io.EOF {
		t.Fatalf("trailing read: %v, want EOF", err)
	}
}

// TestViewRoundTripViaNextBatch pins the batch-granular read path the
// serve loops actually use.
func TestViewRoundTripViaNextBatch(t *testing.T) {
	want := testView()
	dec := NewDecoder(bytes.NewReader(encodeViewBytes(t, want)))
	ms, err := dec.NextBatch()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].Type != MsgView {
		t.Fatalf("NextBatch returned %+v, want one MsgView marker", ms)
	}
	if got := dec.TakeView(); !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

// TestViewTruncation checks every strict prefix of a valid frame fails
// with a truncation error rather than panicking or succeeding.
func TestViewTruncation(t *testing.T) {
	whole := encodeViewBytes(t, testView())
	for n := 0; n < len(whole); n++ {
		dec := NewDecoder(bytes.NewReader(whole[:n]))
		if _, err := dec.Next(); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded cleanly", n, len(whole))
		}
	}
}

// TestViewCorruption is the rejection table: version mismatch, bad
// counts, oversized strings, structurally invalid views.
func TestViewCorruption(t *testing.T) {
	valid := encodeViewBytes(t, testView())
	cases := []struct {
		name string
		mut  func([]byte) []byte
		want string
	}{
		{"version mismatch", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[1] = viewWireVersion + 1
			return c
		}, "unsupported view version"},
		{"huge member count", func(b []byte) []byte {
			// type, version, epoch(7), k(2), shards(64) are one byte
			// each here; patch the member count varint.
			c := append([]byte(nil), b[:5]...)
			c = append(c, 0xFF, 0xFF, 0xFF, 0x7F)
			return c
		}, "exceed limits"},
		{"zero-length id", func(b []byte) []byte {
			c := append([]byte(nil), b[:6]...)
			c = append(c, 0) // first member's id length
			return c
		}, "outside [1"},
		{"truncated mid-string", func(b []byte) []byte {
			return b[:8] // inside the first member id
		}, "unexpected EOF"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dec := NewDecoder(bytes.NewReader(tc.mut(valid)))
			_, err := dec.Next()
			if err == nil {
				t.Fatal("corrupt view frame decoded cleanly")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestViewStructurallyInvalid pins that a frame carrying a view the
// membership package rejects (duplicate IDs, K above the member count)
// fails at decode even though the bytes parse.
func TestViewStructurallyInvalid(t *testing.T) {
	v := testView()
	v.Members[1].ID = v.Members[0].ID
	// EncodeView validates too, so build the bytes by hand: reuse the
	// encoder on a valid view and patch b1's id to b0's.
	ok := testView()
	b := encodeViewBytes(t, ok)
	patched := bytes.Replace(b, []byte("b1"), []byte("b0"), 1)
	dec := NewDecoder(bytes.NewReader(patched))
	if _, err := dec.Next(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate-id view decoded: err=%v", err)
	}
	if err := NewEncoder(io.Discard).EncodeView(v); err == nil {
		t.Fatal("EncodeView accepted a duplicate-id view")
	}
}

// TestViewInsideBatchRejected pins that membership frames cannot hide
// inside batch frames (both the buffered fast path and the slow path).
func TestViewInsideBatchRejected(t *testing.T) {
	for _, typ := range []MsgType{MsgView, MsgShardTransfer} {
		payload := []byte{byte(MsgBatch), 1, byte(typ), viewWireVersion}
		dec := NewDecoder(bytes.NewReader(payload))
		if _, err := dec.Next(); err == nil || !strings.Contains(err.Error(), "batch") {
			t.Fatalf("type %d inside batch: err=%v", typ, err)
		}
	}
}

// TestShardStateRoundTrip exercises the transfer/state frames and the
// shard-scoped request messages.
func TestShardStateRoundTrip(t *testing.T) {
	state := []byte("not-really-state-but-opaque-bytes")
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.EncodeShardState(5, state); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewDecoder(bytes.NewReader(buf.Bytes())).ReadShardState(5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, state) {
		t.Fatalf("state round trip: %q", got)
	}
	// Shard mismatch with the request is an error.
	if _, err := NewDecoder(bytes.NewReader(buf.Bytes())).ReadShardState(6); err == nil {
		t.Fatal("shard mismatch accepted")
	}

	// Transfer frame surfaces as a marker carrying the shard.
	buf.Reset()
	if err := enc.EncodeShardTransfer(9, state); err != nil {
		t.Fatal(err)
	}
	enc.Flush()
	dec := NewDecoder(bytes.NewReader(buf.Bytes()))
	m, err := dec.Next()
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != MsgShardTransfer || m.Shard != 9 {
		t.Fatalf("transfer marker %+v", m)
	}
	if got := dec.TakeShardState(); !bytes.Equal(got, state) {
		t.Fatalf("transfer state %q", got)
	}
	if dec.TakeShardState() != nil {
		t.Fatal("second TakeShardState not nil")
	}
}

// TestShardRequestRoundTrip pins the scalar shard-sums/state requests
// through both decode paths (scalar and batched fast path).
func TestShardRequestRoundTrip(t *testing.T) {
	for _, m := range []Msg{ShardSums(0), ShardSums(63), ShardState(17)} {
		var buf bytes.Buffer
		enc := NewEncoder(&buf)
		if err := enc.Encode(m); err != nil {
			t.Fatal(err)
		}
		enc.Flush()
		got, err := NewDecoder(bytes.NewReader(buf.Bytes())).Next()
		if err != nil {
			t.Fatal(err)
		}
		if got != m {
			t.Fatalf("round trip: got %+v, want %+v", got, m)
		}
	}
	// Out-of-range shard rejected at encode and decode.
	if err := NewEncoder(io.Discard).Encode(Msg{Type: MsgShardSums, Shard: -1}); err == nil {
		t.Fatal("negative shard encoded")
	}
	huge := []byte{byte(MsgShardSums), viewWireVersion, 0xFF, 0xFF, 0xFF, 0x7F}
	if _, err := NewDecoder(bytes.NewReader(huge)).Next(); err == nil {
		t.Fatal("huge shard decoded")
	}
}

func TestMemberAckRoundTrip(t *testing.T) {
	for _, applied := range []bool{true, false} {
		var buf bytes.Buffer
		enc := NewEncoder(&buf)
		if err := enc.EncodeMemberAck(applied); err != nil {
			t.Fatal(err)
		}
		enc.Flush()
		got, err := NewDecoder(bytes.NewReader(buf.Bytes())).ReadMemberAck()
		if err != nil {
			t.Fatal(err)
		}
		if got != applied {
			t.Fatalf("ack round trip: %v", got)
		}
	}
	if _, err := NewDecoder(bytes.NewReader([]byte{byte(MsgMemberAck), 7})).ReadMemberAck(); err == nil {
		t.Fatal("invalid ack status accepted")
	}
	if _, err := NewDecoder(bytes.NewReader([]byte{byte(MsgBatchAck), 1})).ReadMemberAck(); err == nil {
		t.Fatal("wrong frame type accepted as member ack")
	}
}

// FuzzViewDecode feeds arbitrary bytes to the view-frame decode path:
// it must return a structurally valid view or a descriptive error,
// never panic, and every accepted view must re-encode and re-decode to
// itself.
func FuzzViewDecode(f *testing.F) {
	f.Add([]byte{byte(MsgView), viewWireVersion, 1, 1, 4, 1, 1, 'a', 1, 'b'})
	f.Add(encodeViewBytesF(f, testView()))
	one := membership.View{Epoch: 0, K: 1, NumShards: 1, Members: []membership.Member{{ID: "x", Addr: "y"}}}
	f.Add(encodeViewBytesF(f, one))
	f.Add([]byte{byte(MsgView), viewWireVersion + 1})
	f.Add([]byte{byte(MsgView)})
	f.Add([]byte{byte(MsgView), viewWireVersion, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder(bytes.NewReader(data))
		m, err := dec.Next()
		if err != nil {
			return // any descriptive error is fine
		}
		if m.Type != MsgView {
			return // stream began with some other valid frame
		}
		v := dec.TakeView()
		if err := v.Validate(); err != nil {
			t.Fatalf("decoder surfaced an invalid view %+v: %v", v, err)
		}
		var buf bytes.Buffer
		enc := NewEncoder(&buf)
		if err := enc.EncodeView(v); err != nil {
			t.Fatalf("re-encode of decoded view failed: %v", err)
		}
		enc.Flush()
		dec2 := NewDecoder(bytes.NewReader(buf.Bytes()))
		if _, err := dec2.Next(); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if got := dec2.TakeView(); !reflect.DeepEqual(got, v) {
			t.Fatalf("re-round-trip mismatch:\n got %+v\nwant %+v", got, v)
		}
	})
}

func encodeViewBytesF(f *testing.F, v membership.View) []byte {
	f.Helper()
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.EncodeView(v); err != nil {
		f.Fatal(err)
	}
	enc.Flush()
	return buf.Bytes()
}
