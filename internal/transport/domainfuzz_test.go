package transport

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"rtf/internal/hh"
	"rtf/internal/protocol"
)

// FuzzDomainReportDecode feeds arbitrary bytes to the decoder with the
// domain ingest frames in scope: it must return messages or errors,
// never panic, and every successfully decoded domain message must
// satisfy the wire invariants (non-negative ids and items, ±1 bits).
// Batches are exercised through both Next and NextBatch.
func FuzzDomainReportDecode(f *testing.F) {
	seed := func(ms ...Msg) []byte {
		var buf bytes.Buffer
		enc := NewEncoder(&buf)
		for _, m := range ms {
			if err := enc.Encode(m); err != nil {
				f.Fatal(err)
			}
		}
		if err := enc.Flush(); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	batch := func(ms ...Msg) []byte {
		var buf bytes.Buffer
		enc := NewEncoder(&buf)
		if err := enc.EncodeBatch(ms); err != nil {
			f.Fatal(err)
		}
		if err := enc.Flush(); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(seed(DomainHello(1, 2, 3)))
	f.Add(seed(FromDomainReport(2, protocol.Report{User: 9, Order: 1, J: 4, Bit: 1})))
	f.Add(seed(FromDomainReport(0, protocol.Report{User: 0, Order: 0, J: 1, Bit: -1})))
	f.Add(batch(DomainHello(1, 0, 0), FromDomainReport(0, protocol.Report{User: 1, Order: 0, J: 1, Bit: 1})))
	f.Add([]byte{byte(MsgDomainHello), 1, 2})                                              // truncated hello
	f.Add([]byte{byte(MsgDomainReport), 1, 2, 3, 4, 250})                                  // invalid bit byte
	f.Add([]byte{byte(MsgDomainReport), 255, 255, 255, 255, 255, 255, 255, 255, 255, 255}) // overlong varint
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		check := func(m Msg) {
			switch m.Type {
			case MsgHello, MsgQuery, MsgEstimate, MsgQueryV2, MsgSums, MsgDomainQuery, MsgDomainSums:
				// ok
			case MsgReport:
				if m.Bit != 1 && m.Bit != -1 {
					t.Fatalf("decoded report with bit %d", m.Bit)
				}
			case MsgDomainHello:
				if m.User < 0 || m.Item < 0 {
					t.Fatalf("decoded domain hello with negative field: %+v", m)
				}
			case MsgDomainReport:
				if m.Bit != 1 && m.Bit != -1 {
					t.Fatalf("decoded domain report with bit %d", m.Bit)
				}
				if m.User < 0 || m.Item < 0 {
					t.Fatalf("decoded domain report with negative field: %+v", m)
				}
			default:
				t.Fatalf("decoded unknown type %d without error", m.Type)
			}
		}
		dec := NewDecoder(bytes.NewReader(data))
		for i := 0; i < 1000; i++ {
			m, err := dec.Next()
			if err != nil {
				break // EOF or any descriptive error is fine
			}
			check(m)
		}
		dec = NewDecoder(bytes.NewReader(data))
		total := 0
		for total < 100000 {
			ms, err := dec.NextBatch()
			if err != nil {
				return // EOF or malformed input: any descriptive error is fine
			}
			if len(ms) == 0 {
				t.Fatal("NextBatch returned an empty slice without error")
			}
			for _, m := range ms {
				check(m)
			}
			total += len(ms)
		}
	})
}

// FuzzDomainQueryDecode feeds arbitrary bytes to the three domain query
// read paths — the scalar domain-query decoder, ReadDomainAnswer and
// ReadDomainSums — which must fail cleanly on garbage, never panic, and
// uphold their invariants on success (bounded lengths, non-negative
// counts).
func FuzzDomainQueryDecode(f *testing.F) {
	encode := func(m Msg) []byte {
		var buf bytes.Buffer
		enc := NewEncoder(&buf)
		if err := enc.Encode(m); err != nil {
			f.Fatal(err)
		}
		if err := enc.Flush(); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(encode(DomainQuery(QueryPointItem, 3, 17, 0, 0)))
	f.Add(encode(DomainQuery(QueryTopK, 0, 9, 0, 5)))
	f.Add(encode(DomainSums()))
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.EncodeDomainAnswer(DomainAnswerFrame{Kind: QueryTopK, L: 2, K: 2, Items: []int{1, 0}, Values: []float64{5, 3}}); err != nil {
		f.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), buf.Bytes()...))
	buf.Reset()
	ds := testFuzzDomainServer()
	if err := enc.EncodeDomainSums(DomainSumsFromServer(ds)); err != nil {
		f.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), buf.Bytes()...))
	f.Add([]byte{byte(MsgDomainAnswer), 1, byte(QueryTopK)})       // truncated answer
	f.Add([]byte{byte(MsgDomainSumsFrame), 1, 255, 255, 255, 127}) // huge horizon
	f.Add([]byte{byte(MsgDomainQuery), 9})                         // bad version
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if m, err := NewDecoder(bytes.NewReader(data)).Next(); err == nil && m.Type == MsgDomainQuery {
			if m.Item < 0 || m.L < 0 || m.R < 0 || m.K < 0 {
				t.Fatalf("decoded domain query with negative field: %+v", m)
			}
		}
		if a, err := NewDecoder(bytes.NewReader(data)).ReadDomainAnswer(); err == nil {
			if len(a.Items) > MaxAnswerLen || len(a.Values) > MaxAnswerLen {
				t.Fatalf("decoded oversized domain answer: %d/%d", len(a.Items), len(a.Values))
			}
			for _, it := range a.Items {
				if it < 0 {
					t.Fatalf("decoded negative item %d", it)
				}
			}
		} else if err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) && err.Error() == "" {
			t.Fatal("empty error message")
		}
		if s, err := NewDecoder(bytes.NewReader(data)).ReadDomainSums(); err == nil {
			if s.M < 2 || s.M > MaxDomainM || len(s.Items) != s.M {
				t.Fatalf("decoded invalid domain sums dims: m=%d items=%d", s.M, len(s.Items))
			}
			for _, it := range s.Items {
				if it.Users < 0 {
					t.Fatalf("decoded negative user count %d", it.Users)
				}
			}
		}
	})
}

// testFuzzDomainServer builds a tiny filled server for fuzz seeds.
func testFuzzDomainServer() *hh.DomainServer {
	ds := hh.NewDomainServer(8, 3, 2, 1)
	ds.Register(0, 0, 0)
	ds.Ingest(0, 0, protocol.Report{User: 1, Order: 0, J: 1, Bit: 1})
	ds.Ingest(0, 2, protocol.Report{User: 2, Order: 1, J: 2, Bit: -1})
	return ds
}
