// Package transport provides the system substrate between clients and
// the server: a compact varint wire format for the protocol's messages
// (order announcements, per-period reports, batch frames carrying many
// of either, and estimate query/response pairs), a concurrency-safe
// in-process Collector, a lock-free ShardedCollector that fans decoded
// batches into a protocol.Sharded accumulator, a TCP IngestServer that
// serves batched ingestion and online estimate queries (the engine
// behind cmd/rtf-serve), and a lossy-link simulator for robustness
// experiments (E15).
//
// The paper's protocol is transport-agnostic; this package exists so the
// repository exercises the client/server split as an actual distributed
// system — message framing, batching, concurrent sharded ingestion,
// loss — rather than as in-process function calls only.
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"

	"rtf/internal/dyadic"
	"rtf/internal/membership"
	"rtf/internal/protocol"
	"rtf/internal/rng"
)

// MsgType discriminates wire messages.
type MsgType byte

// Message types.
const (
	MsgHello     MsgType = 1 // user announces its sampled order h_u
	MsgReport    MsgType = 2 // one perturbed partial sum
	MsgBatch     MsgType = 3 // frame carrying many hello/report messages
	MsgQuery     MsgType = 4 // v1: client asks for the online estimate â[t]
	MsgEstimate  MsgType = 5 // v1: server answers a point query
	MsgQueryV2   MsgType = 6 // versioned query frame: kind + range
	MsgAnswer    MsgType = 7 // versioned answer frame: kind + range + values
	MsgSums      MsgType = 8 // cluster gateway asks for the raw interval sums
	MsgSumsFrame MsgType = 9 // response: raw accumulator state (SumsFrame)

	// Domain-valued tracking (the richer-domain reduction): ingest and
	// query frames tagged with the user's sampled target item.
	MsgDomainHello     MsgType = 10 // user announces its (item, order) pair
	MsgDomainReport    MsgType = 11 // one perturbed partial sum, item-tagged
	MsgDomainQuery     MsgType = 12 // versioned item-scoped query frame
	MsgDomainAnswer    MsgType = 13 // response: items and/or values (DomainAnswerFrame)
	MsgDomainSums      MsgType = 14 // gateway asks for the per-item raw sums
	MsgDomainSumsFrame MsgType = 15 // response: per-item raw state (DomainSumsFrame)

	// Overload-aware ingest: an acknowledged batch frame carries only
	// ingest messages and is answered — in order, one ack per frame —
	// with a BatchAck whose status says whether the whole batch was
	// applied or shed by the server's bounded ingest queue. A batch is
	// never half-applied: shed means not one message of it reached the
	// accumulator (or, on a durable server, the write-ahead log).
	MsgBatchAcked MsgType = 16 // batch frame requesting a per-batch ack
	MsgBatchAck   MsgType = 17 // response: 1 = applied whole, 0 = shed whole

	// Dynamic membership (epoched rendezvous partitioning): the member
	// gateway pushes cluster views to backends, fetches per-virtual-
	// shard raw sums for quorum reads, and ships shard snapshots
	// between backends on reshard. See view.go.
	MsgView            MsgType = 18 // frame: a full membership.View (epoch, K, members)
	MsgShardSums       MsgType = 19 // request: raw sums for one virtual shard
	MsgShardState      MsgType = 20 // request: snapshot state of one virtual shard
	MsgShardStateFrame MsgType = 21 // response: one shard's serialized state
	MsgShardTransfer   MsgType = 22 // frame: install this shard state (reshard handoff)
	MsgMemberAck       MsgType = 23 // response to MsgView / MsgShardTransfer: 1 = applied

	// Hashed domain encodings (LOLOHA): the hello carries the shared
	// epoch hash seed so a server can refuse clients hashing under a
	// different item→bucket map, and the sums request carries the full
	// encoding parameters (catalogue size, bucket count, seed) so a
	// gateway and backend can only merge bucket counters they agree on.
	// Hashed reports reuse MsgDomainReport verbatim with Item = bucket —
	// the hot path is byte-identical to the exact encoding's.
	MsgHashedDomainHello MsgType = 24 // user announces (bucket, order) under a hash seed
	MsgHashedDomainSums  MsgType = 25 // gateway asks for the per-bucket raw sums
)

// QueryKind discriminates the shapes of a versioned (v2) query. The
// values are the wire encoding and mirror the public ldp query kinds.
type QueryKind byte

// Query kinds.
const (
	QueryPoint  QueryKind = 1 // â[t]             (L = t)
	QueryChange QueryKind = 2 // â[R] − â[L−1]    over [L..R]
	QuerySeries QueryKind = 3 // â[1..d]
	QueryWindow QueryKind = 4 // â[L..R], one value per period

	// Item-scoped kinds, carried in MsgDomainQuery frames only.
	QueryPointItem  QueryKind = 5 // f̂(item, t)      (L = t)
	QuerySeriesItem QueryKind = 6 // f̂(item, 1..d)
	QueryTopK       QueryKind = 7 // top K items at time t (L = t)
)

// String names the kind for error messages.
func (k QueryKind) String() string {
	switch k {
	case QueryPoint:
		return "point"
	case QueryChange:
		return "change"
	case QuerySeries:
		return "series"
	case QueryWindow:
		return "window"
	case QueryPointItem:
		return "point-item"
	case QuerySeriesItem:
		return "series-item"
	case QueryTopK:
		return "top-k"
	default:
		return fmt.Sprintf("kind(%d)", byte(k))
	}
}

// queryWireVersion is the current version byte of MsgQueryV2 and
// MsgAnswer frames. Decoders reject frames from a newer protocol
// revision instead of misparsing them.
const queryWireVersion = 1

// MaxBatchLen bounds the declared length of a batch frame, so a corrupt
// or adversarial length prefix cannot force a huge allocation.
const MaxBatchLen = 1 << 20

// MaxAnswerLen bounds the declared value count of an answer frame, for
// the same reason.
const MaxAnswerLen = 1 << 20

// Msg is a decoded scalar wire message. Batch frames are handled at the
// Encoder/Decoder level (EncodeBatch, NextBatch); Msg stays a flat value
// type so it can be compared and copied freely.
type Msg struct {
	Type  MsgType
	User  int
	Order int
	J     int       // report only
	Bit   int8      // report only, ±1
	T     int       // v1 query/estimate only: time period
	Value float64   // v1 estimate only: â[t]
	Kind  QueryKind // v2 and domain queries only
	L, R  int       // v2 and domain queries only: range (point queries use L = t)
	Item  int       // domain messages only: the sampled target item
	K     int       // domain top-k query only: how many items
	Shard int       // membership shard requests only: the virtual shard
	Seed  uint64    // hashed domain messages only: the shared epoch hash seed
}

// Hello constructs an order-announcement message.
func Hello(user, order int) Msg {
	return Msg{Type: MsgHello, User: user, Order: order}
}

// Query constructs a v1 point-estimate request for time t.
func Query(t int) Msg {
	return Msg{Type: MsgQuery, T: t}
}

// QueryV2 constructs a versioned query frame. Point and series queries
// use l for the time (series ignores both bounds); change and window
// queries ask about the range [l..r].
func QueryV2(kind QueryKind, l, r int) Msg {
	return Msg{Type: MsgQueryV2, Kind: kind, L: l, R: r}
}

// Sums constructs a raw-sums request: the server answers with one
// SumsFrame carrying its live accumulator state. The cluster gateway
// scatters this to every backend and merges the responses.
func Sums() Msg {
	return Msg{Type: MsgSums}
}

// DomainHello constructs an (item, order) announcement for a domain
// server: the user's sampled target item and the wrapped Boolean
// client's order, both data-independent and safe in the clear.
func DomainHello(user, item, order int) Msg {
	return Msg{Type: MsgDomainHello, User: user, Item: item, Order: order}
}

// FromDomainReport tags a protocol report with its target item for a
// domain server.
func FromDomainReport(item int, r protocol.Report) Msg {
	return Msg{Type: MsgDomainReport, User: r.User, Item: item, Order: r.Order, J: r.J, Bit: r.Bit}
}

// DomainQuery constructs a versioned item-scoped query frame.
// Point-item queries use l for the time; series-item queries ignore the
// bounds; top-k queries use l for the time and k for the item count
// (item is ignored).
func DomainQuery(kind QueryKind, item, l, r, k int) Msg {
	return Msg{Type: MsgDomainQuery, Kind: kind, Item: item, L: l, R: r, K: k}
}

// DomainSums constructs a per-item raw-sums request: the server answers
// with one DomainSumsFrame carrying every item's live accumulator
// state. The cluster gateway scatters this to every backend and merges
// the responses.
func DomainSums() Msg {
	return Msg{Type: MsgDomainSums}
}

// HashedDomainHello constructs a (bucket, order) announcement for a
// hashed domain server. The seed is the shared epoch hash seed the
// user's client hashes items under — data-independent and safe in the
// clear — so the server can refuse a client whose item→bucket map
// differs from its own.
func HashedDomainHello(user, bucket, order int, seed uint64) Msg {
	return Msg{Type: MsgHashedDomainHello, User: user, Item: bucket, Order: order, Seed: seed}
}

// HashedDomainSums constructs a per-bucket raw-sums request carrying
// the requester's full encoding parameters: catalogue size m (in Item),
// bucket count g (in K) and the epoch hash seed. The server answers
// with one ordinary DomainSumsFrame over its g bucket rows — but only
// after checking all three parameters match its own encoding, so two
// deployments hashing differently can never silently merge counters.
func HashedDomainSums(m, g int, seed uint64) Msg {
	return Msg{Type: MsgHashedDomainSums, Item: m, K: g, Seed: seed}
}

// ShardSums constructs a per-virtual-shard raw-sums request: a
// membership-mode server answers with one SumsFrame (Boolean) or
// DomainSumsFrame (domain) scoped to that shard's accumulator. The
// member gateway scatters these to a quorum of the shard's replicas
// and compares the exact integer counters.
func ShardSums(shard int) Msg {
	return Msg{Type: MsgShardSums, Shard: shard}
}

// ShardState constructs a shard-snapshot request: the server answers
// with one MsgShardStateFrame carrying the shard's serialized state
// (the protocol state encoding), the transfer format of a reshard.
func ShardState(shard int) Msg {
	return Msg{Type: MsgShardState, Shard: shard}
}

// Estimate constructs a query response.
func Estimate(t int, value float64) Msg {
	return Msg{Type: MsgEstimate, T: t, Value: value}
}

// FromReport converts a protocol report to a wire message.
func FromReport(r protocol.Report) Msg {
	return Msg{Type: MsgReport, User: r.User, Order: r.Order, J: r.J, Bit: r.Bit}
}

// Report converts a decoded message back to a protocol report. It panics
// if the message is not a report.
func (m Msg) Report() protocol.Report {
	if m.Type != MsgReport {
		panic("transport: not a report message")
	}
	return protocol.Report{User: m.User, Order: m.Order, J: m.J, Bit: m.Bit}
}

// Encoder writes messages to a stream in the varint wire format.
// It is not safe for concurrent use.
type Encoder struct {
	w       *bufio.Writer
	scratch []byte
	n       int64
}

// NewEncoder wraps a writer.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: bufio.NewWriter(w), scratch: make([]byte, 0, 32)}
}

// Encode writes one scalar message.
func (e *Encoder) Encode(m Msg) error {
	b, err := appendMsg(e.scratch[:0], m)
	if err != nil {
		return err
	}
	n, err := e.w.Write(b)
	e.n += int64(n)
	return err
}

// appendMsg appends the scalar wire encoding of m to b.
func appendMsg(b []byte, m Msg) ([]byte, error) {
	b = append(b, byte(m.Type))
	switch m.Type {
	case MsgHello:
		if m.User < 0 {
			return nil, fmt.Errorf("transport: negative user id %d", m.User)
		}
		b = binary.AppendUvarint(b, uint64(m.User))
		b = binary.AppendUvarint(b, uint64(m.Order))
	case MsgReport:
		if m.User < 0 {
			return nil, fmt.Errorf("transport: negative user id %d", m.User)
		}
		b = binary.AppendUvarint(b, uint64(m.User))
		b = binary.AppendUvarint(b, uint64(m.Order))
		b = binary.AppendUvarint(b, uint64(m.J))
		switch m.Bit {
		case 1:
			b = append(b, 1)
		case -1:
			b = append(b, 0)
		default:
			return nil, fmt.Errorf("transport: report bit %d not ±1", m.Bit)
		}
	case MsgQuery:
		b = binary.AppendUvarint(b, uint64(m.T))
	case MsgEstimate:
		b = binary.AppendUvarint(b, uint64(m.T))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(m.Value))
	case MsgQueryV2:
		if m.L < 0 || m.R < 0 {
			return nil, fmt.Errorf("transport: negative query bound [%d..%d]", m.L, m.R)
		}
		b = append(b, queryWireVersion, byte(m.Kind))
		b = binary.AppendUvarint(b, uint64(m.L))
		b = binary.AppendUvarint(b, uint64(m.R))
	case MsgSums:
		b = append(b, queryWireVersion)
	case MsgDomainHello:
		if m.User < 0 {
			return nil, fmt.Errorf("transport: negative user id %d", m.User)
		}
		if m.Item < 0 {
			return nil, fmt.Errorf("transport: negative item %d", m.Item)
		}
		b = binary.AppendUvarint(b, uint64(m.User))
		b = binary.AppendUvarint(b, uint64(m.Item))
		b = binary.AppendUvarint(b, uint64(m.Order))
	case MsgDomainReport:
		if m.User < 0 {
			return nil, fmt.Errorf("transport: negative user id %d", m.User)
		}
		if m.Item < 0 {
			return nil, fmt.Errorf("transport: negative item %d", m.Item)
		}
		b = binary.AppendUvarint(b, uint64(m.User))
		b = binary.AppendUvarint(b, uint64(m.Item))
		b = binary.AppendUvarint(b, uint64(m.Order))
		b = binary.AppendUvarint(b, uint64(m.J))
		switch m.Bit {
		case 1:
			b = append(b, 1)
		case -1:
			b = append(b, 0)
		default:
			return nil, fmt.Errorf("transport: report bit %d not ±1", m.Bit)
		}
	case MsgDomainQuery:
		if m.Item < 0 || m.L < 0 || m.R < 0 || m.K < 0 {
			return nil, fmt.Errorf("transport: negative domain query field (item=%d l=%d r=%d k=%d)", m.Item, m.L, m.R, m.K)
		}
		b = append(b, queryWireVersion, byte(m.Kind))
		b = binary.AppendUvarint(b, uint64(m.Item))
		b = binary.AppendUvarint(b, uint64(m.L))
		b = binary.AppendUvarint(b, uint64(m.R))
		b = binary.AppendUvarint(b, uint64(m.K))
	case MsgDomainSums:
		b = append(b, queryWireVersion)
	case MsgHashedDomainHello:
		if m.User < 0 {
			return nil, fmt.Errorf("transport: negative user id %d", m.User)
		}
		if m.Item < 0 {
			return nil, fmt.Errorf("transport: negative bucket %d", m.Item)
		}
		b = binary.AppendUvarint(b, uint64(m.User))
		b = binary.AppendUvarint(b, uint64(m.Item))
		b = binary.AppendUvarint(b, uint64(m.Order))
		b = binary.AppendUvarint(b, m.Seed)
	case MsgHashedDomainSums:
		if m.Item < 0 || m.K < 0 {
			return nil, fmt.Errorf("transport: negative hashed-sums field (m=%d g=%d)", m.Item, m.K)
		}
		b = append(b, queryWireVersion)
		b = binary.AppendUvarint(b, uint64(m.Item))
		b = binary.AppendUvarint(b, uint64(m.K))
		b = binary.AppendUvarint(b, m.Seed)
	case MsgShardSums, MsgShardState:
		if m.Shard < 0 {
			return nil, fmt.Errorf("transport: negative shard %d", m.Shard)
		}
		b = append(b, queryWireVersion)
		b = binary.AppendUvarint(b, uint64(m.Shard))
	default:
		return nil, fmt.Errorf("transport: unknown message type %d", m.Type)
	}
	return b, nil
}

// appendBatch appends one batch frame carrying all the given hello and
// report messages: the MsgBatch type byte, a uvarint count, then each
// message in its scalar encoding. The write-ahead log journals exactly
// these bytes, so recovery replays through the ordinary decoder.
func appendBatch(b []byte, ms []Msg) ([]byte, error) {
	return appendBatchTyped(b, MsgBatch, ms)
}

// appendBatchTyped is appendBatch parameterized over the frame type:
// MsgBatch for fire-and-forget batches, MsgBatchAcked for batches the
// server must acknowledge (applied whole or shed whole).
func appendBatchTyped(b []byte, typ MsgType, ms []Msg) ([]byte, error) {
	if len(ms) > MaxBatchLen {
		return nil, fmt.Errorf("transport: batch of %d messages exceeds limit %d", len(ms), MaxBatchLen)
	}
	if typ == MsgBatchAcked && len(ms) == 0 {
		return nil, errors.New("transport: empty acked batch")
	}
	b = append(b, byte(typ))
	b = binary.AppendUvarint(b, uint64(len(ms)))
	var err error
	for _, m := range ms {
		if m.Type == MsgBatch || m.Type == MsgBatchAcked {
			return nil, errors.New("transport: nested batch")
		}
		if b, err = appendMsg(b, m); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// EncodeBatch writes one batch frame (see appendBatch). Compared with
// per-message frames a batch costs the same bytes plus a two-to-four-
// byte header, but lets the receiver amortize dispatch over the whole
// batch.
func (e *Encoder) EncodeBatch(ms []Msg) error {
	b, err := appendBatch(e.scratch[:0], ms)
	if err != nil {
		return err
	}
	e.scratch = b[:0] // keep the grown buffer for the next batch
	n, err := e.w.Write(b)
	e.n += int64(n)
	return err
}

// EncodeAckedBatch writes one acknowledged batch frame: identical to
// EncodeBatch except the server must answer it with exactly one
// MsgBatchAck saying whether the whole batch was applied or shed by its
// bounded ingest queue. Only ingest messages (hellos and reports,
// Boolean or domain) may travel in an acked batch; a server rejects
// query frames inside one. The caller must read the acks — senders that
// stream acked batches without draining acks eventually deadlock on TCP
// flow control.
func (e *Encoder) EncodeAckedBatch(ms []Msg) error {
	b, err := appendBatchTyped(e.scratch[:0], MsgBatchAcked, ms)
	if err != nil {
		return err
	}
	e.scratch = b[:0] // keep the grown buffer for the next batch
	n, err := e.w.Write(b)
	e.n += int64(n)
	return err
}

// EncodeBatchAck writes the server's response to one acked batch.
func (e *Encoder) EncodeBatchAck(applied bool) error {
	status := byte(0)
	if applied {
		status = 1
	}
	n, err := e.w.Write([]byte{byte(MsgBatchAck), status})
	e.n += int64(n)
	return err
}

// Flush flushes buffered bytes to the underlying writer.
func (e *Encoder) Flush() error { return e.w.Flush() }

// BytesWritten returns the total encoded payload size so far (possibly
// still buffered).
func (e *Encoder) BytesWritten() int64 { return e.n }

// Decoder reads messages from a stream.
type Decoder struct {
	r *bufio.Reader

	// pending holds the unread tail of the last batch frame, so Next can
	// transparently unbatch; NextBatch reuses the same backing array.
	pending []Msg
	next    int

	// acked records whether the most recently decoded batch frame was a
	// MsgBatchAcked (the server owes its sender exactly one BatchAck).
	acked bool

	// view and shardState hold the payloads of the most recent MsgView
	// and MsgShardTransfer frames. Both frames are variable-length, so
	// — like batch frames filling pending — they decode into Decoder
	// side-state and surface through Next as a marker Msg; the serve
	// loop retrieves the payload with TakeView / TakeShardState. Msg
	// itself stays a flat comparable value type.
	view       membership.View
	shardState []byte
}

// NewDecoder wraps a reader.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: bufio.NewReader(r)}
}

// Next decodes one scalar message. Batch frames are unbatched
// transparently: the frame's messages are returned one per call. Next
// returns io.EOF cleanly at end of stream and io.ErrUnexpectedEOF on a
// truncated message. Empty batch frames are skipped iteratively, so a
// stream of them cannot grow the stack.
func (d *Decoder) Next() (Msg, error) {
	for {
		if d.next < len(d.pending) {
			m := d.pending[d.next]
			d.next++
			return m, nil
		}
		m, err := d.scalarOrBatch()
		if err != nil {
			return Msg{}, err
		}
		if m.Type != MsgBatch {
			return m, nil
		}
		// Batch decoded into d.pending (possibly empty): loop to pop it.
	}
}

// NextBatch decodes one frame: a batch frame yields all its messages, a
// scalar frame yields a one-element slice. The returned slice is only
// valid until the next Decoder call. Any messages still pending from a
// partially Next-consumed batch are returned first. Empty batch frames
// are skipped.
func (d *Decoder) NextBatch() ([]Msg, error) {
	for {
		if d.next < len(d.pending) {
			ms := d.pending[d.next:]
			d.next = len(d.pending)
			return ms, nil
		}
		m, err := d.scalarOrBatch()
		if err != nil {
			return nil, err
		}
		if m.Type != MsgBatch {
			d.pending = append(d.pending[:0], m)
			d.next = 0
		}
		// Loop: the refilled d.pending (empty for an empty batch) is
		// served by the branch above.
	}
}

// maxRetainedBatch caps the capacity of the pending buffer a Decoder
// keeps between frames: one maximal batch (MaxBatchLen messages, tens
// of megabytes decoded) must not stay pinned for the connection's
// lifetime.
const maxRetainedBatch = 1 << 12

// AckedBatch reports whether the most recent frame decoded by NextBatch
// was an acknowledged batch (MsgBatchAcked): the peer is waiting for
// exactly one BatchAck for it.
func (d *Decoder) AckedBatch() bool { return d.acked }

// scalarOrBatch decodes the next frame. For a batch frame (plain or
// acked) it fills d.pending with the inner messages and returns a Msg
// with Type MsgBatch; otherwise it returns the scalar message.
func (d *Decoder) scalarOrBatch() (Msg, error) {
	if cap(d.pending) > maxRetainedBatch {
		d.pending = nil // release an oversized buffer from a past batch
	}
	tb, err := d.r.ReadByte()
	if err != nil {
		return Msg{}, err // io.EOF passes through
	}
	d.acked = MsgType(tb) == MsgBatchAcked
	switch MsgType(tb) {
	case MsgView:
		// Variable-length frame: decode into side-state, return a
		// marker (see TakeView).
		v, err := d.readViewBody()
		if err != nil {
			return Msg{}, err
		}
		d.view = v
		return Msg{Type: MsgView}, nil
	case MsgShardTransfer:
		shard, state, err := d.readShardPayloadBody()
		if err != nil {
			return Msg{}, err
		}
		d.shardState = state
		return Msg{Type: MsgShardTransfer, Shard: shard}, nil
	}
	if MsgType(tb) != MsgBatch && MsgType(tb) != MsgBatchAcked {
		return d.scalarBody(MsgType(tb))
	}
	n, err := binary.ReadUvarint(d.r)
	if err != nil {
		return Msg{}, truncated(err)
	}
	if n > MaxBatchLen {
		return Msg{}, fmt.Errorf("transport: batch length %d exceeds limit %d", n, MaxBatchLen)
	}
	if d.acked && n == 0 {
		// An empty acked batch would be skipped by the unbatching loops
		// and its ack silently owed forever; reject it at the frame level
		// (the encoder refuses to produce one).
		return Msg{}, errors.New("transport: empty acked batch")
	}
	d.pending = d.pending[:0]
	d.next = 0
	for i := uint64(0); i < n; {
		// Fast path: decode every fully buffered message straight out of
		// the buffered window in one tight loop — one Peek and one
		// Discard per run of buffered messages, instead of one of each
		// per message. Never block for more than is needed: with fewer
		// than one message's worth of bytes buffered, fall back to the
		// byte-at-a-time path, which reads exactly one message — crucial
		// when the peer is waiting for a response mid-stream.
		if buffered := d.r.Buffered(); buffered >= maxScalarWire {
			win, _ := d.r.Peek(buffered)
			// Pre-extend pending for every message this window could hold
			// (each scalar is at least two bytes), so the decode loop
			// indexes slots with no per-message capacity check. Growth is
			// bounded by bytes actually buffered, never by the declared n.
			// Re-sliced slots are stale entries from a past batch, which
			// decodeScalarInto fully overwrites; the trim below drops the
			// slots this window didn't fill.
			base := int(i)
			k := len(win) / 2
			if rem := int(n) - base; rem < k {
				k = rem
			}
			if base+k <= cap(d.pending) {
				d.pending = d.pending[:base+k]
			} else {
				d.pending = append(d.pending[:cap(d.pending)], make([]Msg, base+k-cap(d.pending))...)
			}
			// One vectorized clear for the whole window instead of a
			// ~100-byte struct zero inside every decodeScalarInto call.
			clear(d.pending[base:])
			used, j := 0, base
			for j < base+k && len(win)-used >= maxScalarWire {
				consumed, err := decodeScalarInto(win[used:], &d.pending[j])
				if err != nil {
					d.r.Discard(used)
					d.pending = d.pending[:0]
					if errors.Is(err, errShortMsg) {
						// maxScalarWire bytes cover every valid message;
						// short here means an overlong varint.
						err = errors.New("transport: malformed message in batch")
					}
					return Msg{}, err
				}
				used += consumed
				j++
			}
			d.pending = d.pending[:j]
			i = uint64(j)
			d.r.Discard(used)
			continue
		}
		tb, err := d.r.ReadByte()
		if err != nil {
			return Msg{}, truncated(err)
		}
		if MsgType(tb) == MsgBatch || MsgType(tb) == MsgBatchAcked {
			return Msg{}, errors.New("transport: nested batch")
		}
		m, err := d.scalarBody(MsgType(tb))
		if err != nil {
			return Msg{}, truncated(err)
		}
		d.pending = append(d.pending, m)
		i++
	}
	return Msg{Type: MsgBatch}, nil
}

// maxScalarWire is the largest wire size of a scalar message: a domain
// report with four maximal 10-byte uvarints, plus the type and bit
// bytes (a domain query — version, kind and four uvarints — fits too).
const maxScalarWire = 48

// errShortMsg reports that a slice decode ran out of bytes.
var errShortMsg = errors.New("transport: short message")

// uvarintMulti decodes a uvarint whose first byte has the continuation
// bit set: the two- and three-byte encodings real streams use for user
// ids and large interval indices are unrolled, everything longer falls
// through to binary.Uvarint. The (value, length) result is identical to
// binary.Uvarint's for every input.
func uvarintMulti(b []byte) (uint64, int) {
	if len(b) >= 3 && b[0] >= 0x80 {
		b1 := b[1]
		if b1 < 0x80 {
			return uint64(b[0]&0x7f) | uint64(b1)<<7, 2
		}
		if b2 := b[2]; b2 < 0x80 {
			return uint64(b[0]&0x7f) | uint64(b1&0x7f)<<7 | uint64(b2)<<14, 3
		}
	}
	return binary.Uvarint(b)
}

// decodeScalarInto decodes one scalar message from the front of b
// directly into *m, returning the number of bytes consumed. The caller
// must pass a zero Msg: only the decoded fields are written, so the
// batch loop can clear a whole window of reused slots with one
// vectorized clear instead of a ~100-byte struct zero per message.
// Decoding in place is what keeps the batch fast path free of
// per-message Msg copies — the struct is ~100 bytes, and the old
// decode-return-append shape copied it twice per message. It returns
// errShortMsg when b ends mid-message.
func decodeScalarInto(b []byte, m *Msg) (int, error) {
	if len(b) == 0 {
		return 0, errShortMsg
	}
	m.Type = MsgType(b[0])
	off := 1
	uvarint := func() (uint64, bool) {
		// Inlined fast path for the single-byte values that pepper every
		// stream (orders, items, bits, small indices); multi-byte values
		// take the uvarintMulti call. Splitting it this way keeps the
		// closure under the inlining budget — one closure call per field
		// would cost more than the decode itself.
		if off < len(b) && b[off] < 0x80 {
			v := uint64(b[off])
			off++
			return v, true
		}
		v, n := uvarintMulti(b[off:])
		if n <= 0 {
			return 0, false
		}
		off += n
		return v, true
	}
	switch m.Type {
	case MsgHello:
		user, ok := uvarint()
		if !ok {
			return 0, errShortMsg
		}
		h, ok := uvarint()
		if !ok {
			return 0, errShortMsg
		}
		if user > math.MaxInt {
			return 0, fmt.Errorf("transport: user id %d overflows", user)
		}
		m.User, m.Order = int(user), int(h)
	case MsgReport:
		user, ok := uvarint()
		if !ok {
			return 0, errShortMsg
		}
		h, ok := uvarint()
		if !ok {
			return 0, errShortMsg
		}
		j, ok := uvarint()
		if !ok {
			return 0, errShortMsg
		}
		if off >= len(b) {
			return 0, errShortMsg
		}
		if user > math.MaxInt {
			return 0, fmt.Errorf("transport: user id %d overflows", user)
		}
		m.User, m.Order, m.J = int(user), int(h), int(j)
		switch b[off] {
		case 1:
			m.Bit = 1
		case 0:
			m.Bit = -1
		default:
			return 0, fmt.Errorf("transport: invalid bit byte %d", b[off])
		}
		off++
	case MsgQuery:
		t, ok := uvarint()
		if !ok {
			return 0, errShortMsg
		}
		m.T = int(t)
	case MsgEstimate:
		t, ok := uvarint()
		if !ok {
			return 0, errShortMsg
		}
		if off+8 > len(b) {
			return 0, errShortMsg
		}
		m.T = int(t)
		m.Value = math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
		off += 8
	case MsgQueryV2:
		if off+2 > len(b) {
			return 0, errShortMsg
		}
		if b[off] != queryWireVersion {
			return 0, fmt.Errorf("transport: unsupported query version %d", b[off])
		}
		m.Kind = QueryKind(b[off+1])
		off += 2
		l, ok := uvarint()
		if !ok {
			return 0, errShortMsg
		}
		r, ok := uvarint()
		if !ok {
			return 0, errShortMsg
		}
		if l > math.MaxInt || r > math.MaxInt {
			return 0, fmt.Errorf("transport: query bound overflows")
		}
		m.L, m.R = int(l), int(r)
	case MsgSums:
		if off >= len(b) {
			return 0, errShortMsg
		}
		if b[off] != queryWireVersion {
			return 0, fmt.Errorf("transport: unsupported sums-request version %d", b[off])
		}
		off++
	case MsgDomainHello:
		user, ok := uvarint()
		if !ok {
			return 0, errShortMsg
		}
		item, ok := uvarint()
		if !ok {
			return 0, errShortMsg
		}
		h, ok := uvarint()
		if !ok {
			return 0, errShortMsg
		}
		if user > math.MaxInt {
			return 0, fmt.Errorf("transport: user id %d overflows", user)
		}
		if item > math.MaxInt {
			return 0, fmt.Errorf("transport: item %d overflows", item)
		}
		m.User, m.Item, m.Order = int(user), int(item), int(h)
	case MsgDomainReport:
		user, ok := uvarint()
		if !ok {
			return 0, errShortMsg
		}
		item, ok := uvarint()
		if !ok {
			return 0, errShortMsg
		}
		h, ok := uvarint()
		if !ok {
			return 0, errShortMsg
		}
		j, ok := uvarint()
		if !ok {
			return 0, errShortMsg
		}
		if off >= len(b) {
			return 0, errShortMsg
		}
		if user > math.MaxInt {
			return 0, fmt.Errorf("transport: user id %d overflows", user)
		}
		if item > math.MaxInt {
			return 0, fmt.Errorf("transport: item %d overflows", item)
		}
		m.User, m.Item, m.Order, m.J = int(user), int(item), int(h), int(j)
		switch b[off] {
		case 1:
			m.Bit = 1
		case 0:
			m.Bit = -1
		default:
			return 0, fmt.Errorf("transport: invalid bit byte %d", b[off])
		}
		off++
	case MsgDomainQuery:
		if off+2 > len(b) {
			return 0, errShortMsg
		}
		if b[off] != queryWireVersion {
			return 0, fmt.Errorf("transport: unsupported domain query version %d", b[off])
		}
		m.Kind = QueryKind(b[off+1])
		off += 2
		item, ok := uvarint()
		if !ok {
			return 0, errShortMsg
		}
		l, ok := uvarint()
		if !ok {
			return 0, errShortMsg
		}
		r, ok := uvarint()
		if !ok {
			return 0, errShortMsg
		}
		k, ok := uvarint()
		if !ok {
			return 0, errShortMsg
		}
		if item > math.MaxInt || l > math.MaxInt || r > math.MaxInt || k > math.MaxInt {
			return 0, fmt.Errorf("transport: domain query field overflows")
		}
		m.Item, m.L, m.R, m.K = int(item), int(l), int(r), int(k)
	case MsgDomainSums:
		if off >= len(b) {
			return 0, errShortMsg
		}
		if b[off] != queryWireVersion {
			return 0, fmt.Errorf("transport: unsupported domain-sums-request version %d", b[off])
		}
		off++
	case MsgHashedDomainHello:
		user, ok := uvarint()
		if !ok {
			return 0, errShortMsg
		}
		bucket, ok := uvarint()
		if !ok {
			return 0, errShortMsg
		}
		h, ok := uvarint()
		if !ok {
			return 0, errShortMsg
		}
		seed, ok := uvarint()
		if !ok {
			return 0, errShortMsg
		}
		if user > math.MaxInt {
			return 0, fmt.Errorf("transport: user id %d overflows", user)
		}
		if bucket > math.MaxInt {
			return 0, fmt.Errorf("transport: bucket %d overflows", bucket)
		}
		m.User, m.Item, m.Order, m.Seed = int(user), int(bucket), int(h), seed
	case MsgHashedDomainSums:
		if off >= len(b) {
			return 0, errShortMsg
		}
		if b[off] != queryWireVersion {
			return 0, fmt.Errorf("transport: unsupported hashed-sums-request version %d", b[off])
		}
		off++
		mm, ok := uvarint()
		if !ok {
			return 0, errShortMsg
		}
		g, ok := uvarint()
		if !ok {
			return 0, errShortMsg
		}
		seed, ok := uvarint()
		if !ok {
			return 0, errShortMsg
		}
		if mm > math.MaxInt || g > math.MaxInt {
			return 0, fmt.Errorf("transport: hashed-sums field overflows")
		}
		m.Item, m.K, m.Seed = int(mm), int(g), seed
	case MsgShardSums, MsgShardState:
		if off >= len(b) {
			return 0, errShortMsg
		}
		if b[off] != queryWireVersion {
			return 0, fmt.Errorf("transport: unsupported shard-request version %d", b[off])
		}
		off++
		shard, ok := uvarint()
		if !ok {
			return 0, errShortMsg
		}
		if shard > membership.MaxShards {
			return 0, fmt.Errorf("transport: shard %d exceeds limit %d", shard, membership.MaxShards)
		}
		m.Shard = int(shard)
	case MsgView:
		return 0, errors.New("transport: view frame inside batch")
	case MsgShardTransfer:
		return 0, errors.New("transport: shard transfer frame inside batch")
	case MsgShardStateFrame:
		return 0, errors.New("transport: shard state frame outside ReadShardState")
	case MsgMemberAck:
		return 0, errors.New("transport: member ack outside ReadMemberAck")
	case MsgBatch, MsgBatchAcked:
		return 0, errors.New("transport: nested batch")
	case MsgBatchAck:
		return 0, errors.New("transport: batch ack inside batch")
	case MsgAnswer:
		return 0, errors.New("transport: answer frame outside ReadAnswer")
	case MsgSumsFrame:
		return 0, errors.New("transport: sums frame outside ReadSums")
	case MsgDomainAnswer:
		return 0, errors.New("transport: domain answer frame outside ReadDomainAnswer")
	case MsgDomainSumsFrame:
		return 0, errors.New("transport: domain sums frame outside ReadDomainSums")
	default:
		return 0, fmt.Errorf("transport: unknown message type %d", b[0])
	}
	return off, nil
}

// scalarBody decodes the body of a scalar message whose type byte has
// already been consumed.
func (d *Decoder) scalarBody(typ MsgType) (Msg, error) {
	m := Msg{Type: typ}
	switch typ {
	case MsgHello:
		user, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Msg{}, truncated(err)
		}
		h, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Msg{}, truncated(err)
		}
		if user > math.MaxInt {
			return Msg{}, fmt.Errorf("transport: user id %d overflows", user)
		}
		m.User, m.Order = int(user), int(h)
	case MsgReport:
		user, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Msg{}, truncated(err)
		}
		h, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Msg{}, truncated(err)
		}
		j, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Msg{}, truncated(err)
		}
		bb, err := d.r.ReadByte()
		if err != nil {
			return Msg{}, truncated(err)
		}
		if user > math.MaxInt {
			return Msg{}, fmt.Errorf("transport: user id %d overflows", user)
		}
		m.User, m.Order, m.J = int(user), int(h), int(j)
		switch bb {
		case 1:
			m.Bit = 1
		case 0:
			m.Bit = -1
		default:
			return Msg{}, fmt.Errorf("transport: invalid bit byte %d", bb)
		}
	case MsgQuery:
		t, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Msg{}, truncated(err)
		}
		m.T = int(t)
	case MsgEstimate:
		t, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Msg{}, truncated(err)
		}
		var raw [8]byte
		if _, err := io.ReadFull(d.r, raw[:]); err != nil {
			return Msg{}, truncated(err)
		}
		m.T = int(t)
		m.Value = math.Float64frombits(binary.LittleEndian.Uint64(raw[:]))
	case MsgQueryV2:
		ver, err := d.r.ReadByte()
		if err != nil {
			return Msg{}, truncated(err)
		}
		if ver != queryWireVersion {
			return Msg{}, fmt.Errorf("transport: unsupported query version %d", ver)
		}
		kind, err := d.r.ReadByte()
		if err != nil {
			return Msg{}, truncated(err)
		}
		l, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Msg{}, truncated(err)
		}
		r, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Msg{}, truncated(err)
		}
		if l > math.MaxInt || r > math.MaxInt {
			return Msg{}, fmt.Errorf("transport: query bound overflows")
		}
		m.Kind, m.L, m.R = QueryKind(kind), int(l), int(r)
	case MsgSums:
		ver, err := d.r.ReadByte()
		if err != nil {
			return Msg{}, truncated(err)
		}
		if ver != queryWireVersion {
			return Msg{}, fmt.Errorf("transport: unsupported sums-request version %d", ver)
		}
	case MsgDomainHello:
		user, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Msg{}, truncated(err)
		}
		item, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Msg{}, truncated(err)
		}
		h, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Msg{}, truncated(err)
		}
		if user > math.MaxInt {
			return Msg{}, fmt.Errorf("transport: user id %d overflows", user)
		}
		if item > math.MaxInt {
			return Msg{}, fmt.Errorf("transport: item %d overflows", item)
		}
		m.User, m.Item, m.Order = int(user), int(item), int(h)
	case MsgDomainReport:
		user, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Msg{}, truncated(err)
		}
		item, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Msg{}, truncated(err)
		}
		h, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Msg{}, truncated(err)
		}
		j, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Msg{}, truncated(err)
		}
		bb, err := d.r.ReadByte()
		if err != nil {
			return Msg{}, truncated(err)
		}
		if user > math.MaxInt {
			return Msg{}, fmt.Errorf("transport: user id %d overflows", user)
		}
		if item > math.MaxInt {
			return Msg{}, fmt.Errorf("transport: item %d overflows", item)
		}
		m.User, m.Item, m.Order, m.J = int(user), int(item), int(h), int(j)
		switch bb {
		case 1:
			m.Bit = 1
		case 0:
			m.Bit = -1
		default:
			return Msg{}, fmt.Errorf("transport: invalid bit byte %d", bb)
		}
	case MsgDomainQuery:
		ver, err := d.r.ReadByte()
		if err != nil {
			return Msg{}, truncated(err)
		}
		if ver != queryWireVersion {
			return Msg{}, fmt.Errorf("transport: unsupported domain query version %d", ver)
		}
		kind, err := d.r.ReadByte()
		if err != nil {
			return Msg{}, truncated(err)
		}
		item, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Msg{}, truncated(err)
		}
		l, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Msg{}, truncated(err)
		}
		r, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Msg{}, truncated(err)
		}
		k, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Msg{}, truncated(err)
		}
		if item > math.MaxInt || l > math.MaxInt || r > math.MaxInt || k > math.MaxInt {
			return Msg{}, fmt.Errorf("transport: domain query field overflows")
		}
		m.Kind, m.Item, m.L, m.R, m.K = QueryKind(kind), int(item), int(l), int(r), int(k)
	case MsgDomainSums:
		ver, err := d.r.ReadByte()
		if err != nil {
			return Msg{}, truncated(err)
		}
		if ver != queryWireVersion {
			return Msg{}, fmt.Errorf("transport: unsupported domain-sums-request version %d", ver)
		}
	case MsgHashedDomainHello:
		user, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Msg{}, truncated(err)
		}
		bucket, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Msg{}, truncated(err)
		}
		h, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Msg{}, truncated(err)
		}
		seed, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Msg{}, truncated(err)
		}
		if user > math.MaxInt {
			return Msg{}, fmt.Errorf("transport: user id %d overflows", user)
		}
		if bucket > math.MaxInt {
			return Msg{}, fmt.Errorf("transport: bucket %d overflows", bucket)
		}
		m.User, m.Item, m.Order, m.Seed = int(user), int(bucket), int(h), seed
	case MsgHashedDomainSums:
		ver, err := d.r.ReadByte()
		if err != nil {
			return Msg{}, truncated(err)
		}
		if ver != queryWireVersion {
			return Msg{}, fmt.Errorf("transport: unsupported hashed-sums-request version %d", ver)
		}
		mm, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Msg{}, truncated(err)
		}
		g, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Msg{}, truncated(err)
		}
		seed, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Msg{}, truncated(err)
		}
		if mm > math.MaxInt || g > math.MaxInt {
			return Msg{}, fmt.Errorf("transport: hashed-sums field overflows")
		}
		m.Item, m.K, m.Seed = int(mm), int(g), seed
	case MsgShardSums, MsgShardState:
		ver, err := d.r.ReadByte()
		if err != nil {
			return Msg{}, truncated(err)
		}
		if ver != queryWireVersion {
			return Msg{}, fmt.Errorf("transport: unsupported shard-request version %d", ver)
		}
		shard, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Msg{}, truncated(err)
		}
		if shard > membership.MaxShards {
			return Msg{}, fmt.Errorf("transport: shard %d exceeds limit %d", shard, membership.MaxShards)
		}
		m.Shard = int(shard)
	case MsgView:
		// scalarBody handles MsgView only from inside a batch frame:
		// at top level the decoder intercepts it first (scalarOrBatch).
		return Msg{}, errors.New("transport: view frame inside batch")
	case MsgShardTransfer:
		return Msg{}, errors.New("transport: shard transfer frame inside batch")
	case MsgShardStateFrame:
		return Msg{}, errors.New("transport: shard state frame outside ReadShardState")
	case MsgMemberAck:
		return Msg{}, errors.New("transport: member ack outside ReadMemberAck")
	case MsgBatchAck:
		return Msg{}, errors.New("transport: batch ack outside ReadBatchAck")
	case MsgAnswer:
		return Msg{}, errors.New("transport: answer frame outside ReadAnswer")
	case MsgSumsFrame:
		return Msg{}, errors.New("transport: sums frame outside ReadSums")
	case MsgDomainAnswer:
		return Msg{}, errors.New("transport: domain answer frame outside ReadDomainAnswer")
	case MsgDomainSumsFrame:
		return Msg{}, errors.New("transport: domain sums frame outside ReadDomainSums")
	default:
		return Msg{}, fmt.Errorf("transport: unknown message type %d", typ)
	}
	return m, nil
}

func truncated(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// AnswerFrame is the server's response to a v2 query: the echoed query
// shape plus one value per requested quantity (one for point and change
// queries, a whole series for series and window queries). It is
// variable-length, so it travels outside Msg via EncodeAnswer and
// ReadAnswer.
type AnswerFrame struct {
	Kind   QueryKind
	L, R   int
	Values []float64
}

// EncodeAnswer writes one MsgAnswer frame.
func (e *Encoder) EncodeAnswer(a AnswerFrame) error {
	if len(a.Values) > MaxAnswerLen {
		return fmt.Errorf("transport: answer of %d values exceeds limit %d", len(a.Values), MaxAnswerLen)
	}
	if a.L < 0 || a.R < 0 {
		return fmt.Errorf("transport: negative answer bound [%d..%d]", a.L, a.R)
	}
	b := e.scratch[:0]
	b = append(b, byte(MsgAnswer), queryWireVersion, byte(a.Kind))
	b = binary.AppendUvarint(b, uint64(a.L))
	b = binary.AppendUvarint(b, uint64(a.R))
	b = binary.AppendUvarint(b, uint64(len(a.Values)))
	for _, v := range a.Values {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	e.scratch = b[:0] // keep the grown buffer for the next frame
	n, err := e.w.Write(b)
	e.n += int64(n)
	return err
}

// ReadAnswer decodes one MsgAnswer frame. It must be called when an
// answer is the next frame on the stream — after sending a v2 query —
// and fails on any other frame type.
func (d *Decoder) ReadAnswer() (AnswerFrame, error) {
	if d.next < len(d.pending) {
		return AnswerFrame{}, errors.New("transport: answer frame inside batch")
	}
	tb, err := d.r.ReadByte()
	if err != nil {
		return AnswerFrame{}, err // io.EOF passes through
	}
	if MsgType(tb) != MsgAnswer {
		return AnswerFrame{}, fmt.Errorf("transport: expected answer frame, got message type %d", tb)
	}
	ver, err := d.r.ReadByte()
	if err != nil {
		return AnswerFrame{}, truncated(err)
	}
	if ver != queryWireVersion {
		return AnswerFrame{}, fmt.Errorf("transport: unsupported answer version %d", ver)
	}
	kind, err := d.r.ReadByte()
	if err != nil {
		return AnswerFrame{}, truncated(err)
	}
	l, err := binary.ReadUvarint(d.r)
	if err != nil {
		return AnswerFrame{}, truncated(err)
	}
	r, err := binary.ReadUvarint(d.r)
	if err != nil {
		return AnswerFrame{}, truncated(err)
	}
	n, err := binary.ReadUvarint(d.r)
	if err != nil {
		return AnswerFrame{}, truncated(err)
	}
	if l > math.MaxInt || r > math.MaxInt {
		return AnswerFrame{}, fmt.Errorf("transport: answer bound overflows")
	}
	if n > MaxAnswerLen {
		return AnswerFrame{}, fmt.Errorf("transport: answer length %d exceeds limit %d", n, MaxAnswerLen)
	}
	a := AnswerFrame{Kind: QueryKind(kind), L: int(l), R: int(r)}
	if n > 0 {
		a.Values = make([]float64, n)
	}
	var raw [8]byte
	for i := range a.Values {
		if _, err := io.ReadFull(d.r, raw[:]); err != nil {
			return AnswerFrame{}, truncated(err)
		}
		a.Values[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[:]))
	}
	return a, nil
}

// ReadBatchAck decodes one MsgBatchAck frame: the server's verdict on
// the oldest unacknowledged acked batch. It reports applied=true when
// the whole batch was ingested and applied=false when the server's
// bounded queue shed the whole batch; there is no partial outcome by
// construction. It must be called when an ack is the next frame on the
// stream and fails on any other frame type.
func (d *Decoder) ReadBatchAck() (applied bool, err error) {
	if d.next < len(d.pending) {
		return false, errors.New("transport: batch ack inside batch")
	}
	tb, err := d.r.ReadByte()
	if err != nil {
		return false, err // io.EOF passes through
	}
	if MsgType(tb) != MsgBatchAck {
		return false, fmt.Errorf("transport: expected batch ack, got message type %d", tb)
	}
	status, err := d.r.ReadByte()
	if err != nil {
		return false, truncated(err)
	}
	if status > 1 {
		return false, fmt.Errorf("transport: invalid batch ack status %d", status)
	}
	return status == 1, nil
}

// Collector is a concurrency-safe fan-in point: any number of client
// goroutines Send messages; one consumer drains them in arrival order.
type Collector struct {
	mu     sync.Mutex
	closed bool
	msgs   []Msg
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Send appends a message. It returns an error after Close.
func (c *Collector) Send(m Msg) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return errors.New("transport: collector closed")
	}
	c.msgs = append(c.msgs, m)
	return nil
}

// Close stops accepting messages.
func (c *Collector) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
}

// Len returns the number of collected messages.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

// Drain invokes fn on every collected message and clears the buffer.
func (c *Collector) Drain(fn func(Msg)) {
	c.mu.Lock()
	msgs := c.msgs
	c.msgs = nil
	c.mu.Unlock()
	for _, m := range msgs {
		fn(m)
	}
}

// ShardedCollector is the concurrent fan-in point of the batch-ingest
// service: any number of connection goroutines push decoded messages or
// whole batches, and the collector validates them and applies them to a
// lock-free protocol.Sharded accumulator. The shard argument is a
// routing hint (typically the connection id) that spreads hot counters
// across cache lines; correctness does not depend on it, because the
// accumulator's addition is exact and commutative.
type ShardedCollector struct {
	acc     *protocol.Sharded
	reports atomic.Int64
	hellos  atomic.Int64
	batches atomic.Int64
}

// NewShardedCollector builds a collector over the given accumulator.
func NewShardedCollector(acc *protocol.Sharded) *ShardedCollector {
	return &ShardedCollector{acc: acc}
}

// Acc returns the underlying accumulator (for estimate queries).
func (c *ShardedCollector) Acc() *protocol.Sharded { return c.acc }

// ValidateIngest range-checks one hello or report message against the
// dyadic-accumulator parameters for horizon d. It is the single source
// of ingest validation: the collectors run it before applying (or
// journaling) anything, and the cluster gateway runs the identical
// checks before forwarding, so a batch the gateway accepts cannot be
// rejected downstream by a backend.
func ValidateIngest(d int, m Msg) error { return validateIngest(d, dyadic.Log2(d), &m) }

// ingestOK is the branch-only core of validateIngest: the same checks
// with no error construction, small enough to inline into the batch
// loops. The hot path costs one inlined call per message; only a
// failing message pays for validateIngest's fmt.Errorf machinery (the
// batch loops re-run it to build the precise error).
func ingestOK(d, maxOrder int, m *Msg) bool {
	switch m.Type {
	case MsgReport:
		return m.User >= 0 && (m.Bit == 1 || m.Bit == -1) &&
			uint(m.Order) <= uint(maxOrder) &&
			uint(m.J-1) < uint(d>>uint(m.Order))
	case MsgHello:
		return m.User >= 0 && uint(m.Order) <= uint(maxOrder)
	}
	return false
}

// validateIngest is the pointer-based body of ValidateIngest: the
// collectors run it over whole batches without copying each ~100-byte
// Msg out of the slice. maxOrder must be dyadic.Log2(d); the batch
// loops compute it once instead of per message (Log2's not-a-power-
// of-two panic keeps it from inlining). It agrees with ingestOK on
// every input.
func validateIngest(d, maxOrder int, m *Msg) error {
	switch m.Type {
	case MsgHello:
		if m.User < 0 {
			return fmt.Errorf("transport: negative user id %d", m.User)
		}
		if uint(m.Order) > uint(maxOrder) {
			return fmt.Errorf("transport: hello order %d out of range [0..%d]", m.Order, maxOrder)
		}
	case MsgReport:
		if m.User < 0 {
			return fmt.Errorf("transport: negative user id %d", m.User)
		}
		if m.Bit != 1 && m.Bit != -1 {
			return fmt.Errorf("transport: report bit %d not ±1", m.Bit)
		}
		if uint(m.Order) > uint(maxOrder) {
			return fmt.Errorf("transport: report order %d out of range [0..%d]", m.Order, maxOrder)
		}
		if uint(m.J-1) >= uint(d>>uint(m.Order)) {
			return fmt.Errorf("transport: report index %d out of range for order %d", m.J, m.Order)
		}
	default:
		return fmt.Errorf("transport: collector cannot ingest message type %d", m.Type)
	}
	return nil
}

// validate checks one hello or report message against the accumulator's
// parameters without side effects. The durable collector validates a
// whole batch this way before journaling it, so nothing invalid ever
// reaches the write-ahead log.
func (c *ShardedCollector) validate(m *Msg) error {
	d := c.acc.D()
	return validateIngest(d, dyadic.Log2(d), m)
}

// apply accumulates one validated message; callers must have run
// validate first. It takes a pointer so the batch loops never copy
// each Msg out of the decoded slice.
func (c *ShardedCollector) apply(shard int, m *Msg, hellos, reports *int64) {
	if m.Type == MsgHello {
		c.acc.Register(shard, m.Order)
		*hellos++
	} else {
		c.acc.Ingest(shard, protocol.Report{User: m.User, Order: m.Order, J: m.J, Bit: m.Bit})
		*reports++
	}
}

// Validate checks one hello or report message against the accumulator's
// parameters without side effects — the validate-only half of Send.
func (c *ShardedCollector) Validate(m Msg) error { return c.validate(&m) }

// Send validates one hello or report message and applies it to the
// accumulator via the given shard. It is safe for concurrent use.
func (c *ShardedCollector) Send(shard int, m Msg) error {
	if err := c.validate(&m); err != nil {
		return err
	}
	var hellos, reports int64
	c.apply(shard, &m, &hellos, &reports)
	if hellos > 0 {
		c.hellos.Add(hellos)
	}
	c.reports.Add(reports)
	if reports > 0 {
		c.acc.AdvanceVersion(shard)
	}
	return nil
}

// SendBatch applies a decoded batch to the accumulator via the given
// shard, amortizing the stats counters over the whole batch (the
// per-message work is then one validation plus one atomic add). The
// batch is atomic: it is validated in full first, and on error nothing
// is applied.
func (c *ShardedCollector) SendBatch(shard int, ms []Msg) error {
	d := c.acc.D()
	maxOrder := dyadic.Log2(d)
	for i := range ms {
		if !ingestOK(d, maxOrder, &ms[i]) {
			return validateIngest(d, maxOrder, &ms[i])
		}
	}
	c.applyBatch(shard, ms)
	return nil
}

// applyBatch accumulates a fully validated batch, then advances the
// accumulator's version stamp once — batch-amortized invalidation for
// the version-keyed read caches (Ingest itself is version-silent to
// keep the hot path at one atomic add per report).
func (c *ShardedCollector) applyBatch(shard int, ms []Msg) {
	var hellos, reports int64
	for i := range ms {
		c.apply(shard, &ms[i], &hellos, &reports)
	}
	if hellos > 0 {
		c.hellos.Add(hellos)
	}
	c.reports.Add(reports)
	c.batches.Add(1)
	if reports > 0 {
		c.acc.AdvanceVersion(shard)
	}
}

// applyJournaled implements batchApplier for the durable collector.
func (c *ShardedCollector) applyJournaled(shard int, ms []Msg) { c.applyBatch(shard, ms) }

// Stats returns the number of hellos, reports and batches ingested.
func (c *ShardedCollector) Stats() (hellos, reports, batches int64) {
	return c.hellos.Load(), c.reports.Load(), c.batches.Load()
}

// LossyLink drops each delivered message independently with probability
// DropProb — the failure-injection half of experiment E15. It is not safe
// for concurrent use; give each sender its own link (sharing the counts
// through Stats if needed).
type LossyLink struct {
	DropProb  float64
	g         *rng.RNG
	delivered int
	dropped   int
}

// NewLossyLink builds a link with the given drop probability in [0, 1].
func NewLossyLink(dropProb float64, g *rng.RNG) *LossyLink {
	if dropProb < 0 || dropProb > 1 {
		panic(fmt.Sprintf("transport: drop probability %v outside [0,1]", dropProb))
	}
	return &LossyLink{DropProb: dropProb, g: g}
}

// Deliver reports whether the next message survives the link.
func (l *LossyLink) Deliver() bool {
	if l.g.Bernoulli(l.DropProb) {
		l.dropped++
		return false
	}
	l.delivered++
	return true
}

// Stats returns (delivered, dropped) counts so far.
func (l *LossyLink) Stats() (delivered, dropped int) { return l.delivered, l.dropped }
