// Package transport provides the system substrate between clients and
// the server: a compact varint wire format for the protocol's two message
// types (the initial order announcement and per-period reports), a
// concurrency-safe in-process collector, and a lossy-link simulator for
// robustness experiments (E15).
//
// The paper's protocol is transport-agnostic; this package exists so the
// repository exercises the client/server split as an actual distributed
// system — message framing, concurrent ingestion, loss — rather than as
// in-process function calls only.
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"rtf/internal/protocol"
	"rtf/internal/rng"
)

// MsgType discriminates wire messages.
type MsgType byte

// Message types.
const (
	MsgHello  MsgType = 1 // user announces its sampled order h_u
	MsgReport MsgType = 2 // one perturbed partial sum
)

// Msg is a decoded wire message.
type Msg struct {
	Type  MsgType
	User  int
	Order int
	J     int  // report only
	Bit   int8 // report only, ±1
}

// Hello constructs an order-announcement message.
func Hello(user, order int) Msg {
	return Msg{Type: MsgHello, User: user, Order: order}
}

// FromReport converts a protocol report to a wire message.
func FromReport(r protocol.Report) Msg {
	return Msg{Type: MsgReport, User: r.User, Order: r.Order, J: r.J, Bit: r.Bit}
}

// Report converts a decoded message back to a protocol report. It panics
// if the message is not a report.
func (m Msg) Report() protocol.Report {
	if m.Type != MsgReport {
		panic("transport: not a report message")
	}
	return protocol.Report{User: m.User, Order: m.Order, J: m.J, Bit: m.Bit}
}

// Encoder writes messages to a stream in the varint wire format.
// It is not safe for concurrent use.
type Encoder struct {
	w       *bufio.Writer
	scratch []byte
	n       int64
}

// NewEncoder wraps a writer.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: bufio.NewWriter(w), scratch: make([]byte, 0, 32)}
}

// Encode writes one message.
func (e *Encoder) Encode(m Msg) error {
	b := e.scratch[:0]
	b = append(b, byte(m.Type))
	b = binary.AppendUvarint(b, uint64(m.User))
	switch m.Type {
	case MsgHello:
		b = binary.AppendUvarint(b, uint64(m.Order))
	case MsgReport:
		b = binary.AppendUvarint(b, uint64(m.Order))
		b = binary.AppendUvarint(b, uint64(m.J))
		switch m.Bit {
		case 1:
			b = append(b, 1)
		case -1:
			b = append(b, 0)
		default:
			return fmt.Errorf("transport: report bit %d not ±1", m.Bit)
		}
	default:
		return fmt.Errorf("transport: unknown message type %d", m.Type)
	}
	n, err := e.w.Write(b)
	e.n += int64(n)
	return err
}

// Flush flushes buffered bytes to the underlying writer.
func (e *Encoder) Flush() error { return e.w.Flush() }

// BytesWritten returns the total encoded payload size so far (possibly
// still buffered).
func (e *Encoder) BytesWritten() int64 { return e.n }

// Decoder reads messages from a stream.
type Decoder struct {
	r *bufio.Reader
}

// NewDecoder wraps a reader.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: bufio.NewReader(r)}
}

// Next decodes one message. It returns io.EOF cleanly at end of stream
// and io.ErrUnexpectedEOF on a truncated message.
func (d *Decoder) Next() (Msg, error) {
	tb, err := d.r.ReadByte()
	if err != nil {
		return Msg{}, err // io.EOF passes through
	}
	m := Msg{Type: MsgType(tb)}
	user, err := binary.ReadUvarint(d.r)
	if err != nil {
		return Msg{}, truncated(err)
	}
	m.User = int(user)
	switch m.Type {
	case MsgHello:
		h, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Msg{}, truncated(err)
		}
		m.Order = int(h)
	case MsgReport:
		h, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Msg{}, truncated(err)
		}
		j, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Msg{}, truncated(err)
		}
		bb, err := d.r.ReadByte()
		if err != nil {
			return Msg{}, truncated(err)
		}
		m.Order, m.J = int(h), int(j)
		switch bb {
		case 1:
			m.Bit = 1
		case 0:
			m.Bit = -1
		default:
			return Msg{}, fmt.Errorf("transport: invalid bit byte %d", bb)
		}
	default:
		return Msg{}, fmt.Errorf("transport: unknown message type %d", tb)
	}
	return m, nil
}

func truncated(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Collector is a concurrency-safe fan-in point: any number of client
// goroutines Send messages; one consumer drains them in arrival order.
type Collector struct {
	mu     sync.Mutex
	closed bool
	msgs   []Msg
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Send appends a message. It returns an error after Close.
func (c *Collector) Send(m Msg) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return errors.New("transport: collector closed")
	}
	c.msgs = append(c.msgs, m)
	return nil
}

// Close stops accepting messages.
func (c *Collector) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
}

// Len returns the number of collected messages.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

// Drain invokes fn on every collected message and clears the buffer.
func (c *Collector) Drain(fn func(Msg)) {
	c.mu.Lock()
	msgs := c.msgs
	c.msgs = nil
	c.mu.Unlock()
	for _, m := range msgs {
		fn(m)
	}
}

// LossyLink drops each delivered message independently with probability
// DropProb — the failure-injection half of experiment E15. It is not safe
// for concurrent use; give each sender its own link (sharing the counts
// through Stats if needed).
type LossyLink struct {
	DropProb  float64
	g         *rng.RNG
	delivered int
	dropped   int
}

// NewLossyLink builds a link with the given drop probability in [0, 1].
func NewLossyLink(dropProb float64, g *rng.RNG) *LossyLink {
	if dropProb < 0 || dropProb > 1 {
		panic(fmt.Sprintf("transport: drop probability %v outside [0,1]", dropProb))
	}
	return &LossyLink{DropProb: dropProb, g: g}
}

// Deliver reports whether the next message survives the link.
func (l *LossyLink) Deliver() bool {
	if l.g.Bernoulli(l.DropProb) {
		l.dropped++
		return false
	}
	l.delivered++
	return true
}

// Stats returns (delivered, dropped) counts so far.
func (l *LossyLink) Stats() (delivered, dropped int) { return l.delivered, l.dropped }
