package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"rtf/internal/dyadic"
	"rtf/internal/protocol"
)

// This file carries raw accumulator state between cluster nodes: a
// MsgSums request (a scalar message, see transport.go) is answered with
// one SumsFrame holding the server's live per-interval bit sums and
// user counts. The cluster gateway scatters the request to every
// backend and folds the responses into a fresh protocol.Server with
// MergeInto; because the estimator is a fixed linear function of these
// integers, the merged server answers every query shape bit-for-bit
// like a single serial server fed all the backends' reports — which
// merging scaled float answers would not (float addition is not
// associative).

// MaxSumsD bounds the horizon a sums frame may declare, so a corrupt or
// adversarial frame cannot force a huge allocation on decode (the frame
// carries 2d−1 interval sums).
const MaxSumsD = 1 << 20

// SumsFrame is the raw accumulator state of one backend: the horizon
// and estimator scale it was accumulated under (checked on merge, so
// mismatched backends are rejected rather than silently mixed), the
// registered-user count, the per-order user counts, and the
// per-interval ±1 bit sums in flat dyadic-tree order.
type SumsFrame struct {
	D        int
	Scale    float64
	Users    int64
	PerOrder []int64
	Sums     []int64
}

// SumsFromSharded folds the live accumulator into a frame. Counters are
// loaded atomically; fence ingestion first (a query round-trip on the
// same connection) when a consistent cut matters.
func SumsFromSharded(acc *protocol.Sharded) SumsFrame {
	users, perOrder, sums := acc.Fold()
	return SumsFrame{D: acc.D(), Scale: acc.Scale(), Users: users, PerOrder: perOrder, Sums: sums}
}

// MergeInto folds the frame's raw state into a serial server, which
// must have the frame's horizon and scale.
func (f SumsFrame) MergeInto(srv *protocol.Server) error {
	if f.D != srv.D() {
		return fmt.Errorf("transport: sums frame has horizon d=%d, server has d=%d", f.D, srv.D())
	}
	if f.Scale != srv.Scale() {
		return fmt.Errorf("transport: sums frame has estimator scale %v, server has %v", f.Scale, srv.Scale())
	}
	return srv.MergeRaw(f.Users, f.PerOrder, f.Sums)
}

// EncodeSums writes one MsgSumsFrame response.
func (e *Encoder) EncodeSums(f SumsFrame) error {
	if !dyadic.IsPow2(f.D) || f.D > MaxSumsD {
		return fmt.Errorf("transport: sums frame horizon %d invalid (power of two, at most %d)", f.D, MaxSumsD)
	}
	if f.Users < 0 {
		return fmt.Errorf("transport: sums frame with negative user count %d", f.Users)
	}
	if len(f.PerOrder) != dyadic.NumOrders(f.D) {
		return fmt.Errorf("transport: sums frame has %d per-order counts, want %d", len(f.PerOrder), dyadic.NumOrders(f.D))
	}
	if len(f.Sums) != dyadic.TotalIntervals(f.D) {
		return fmt.Errorf("transport: sums frame has %d interval sums, want %d", len(f.Sums), dyadic.TotalIntervals(f.D))
	}
	b := e.scratch[:0]
	b = append(b, byte(MsgSumsFrame), queryWireVersion)
	b = binary.AppendUvarint(b, uint64(f.D))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(f.Scale))
	b = binary.AppendVarint(b, f.Users)
	for _, v := range f.PerOrder {
		b = binary.AppendVarint(b, v)
	}
	for _, v := range f.Sums {
		b = binary.AppendVarint(b, v)
	}
	e.scratch = b[:0] // keep the grown buffer for the next frame
	n, err := e.w.Write(b)
	e.n += int64(n)
	return err
}

// ReadSums decodes one MsgSumsFrame. It must be called when a sums
// frame is the next frame on the stream — after sending a MsgSums
// request — and fails on any other frame type. The declared horizon is
// validated (power of two, bounded by MaxSumsD) before either array is
// allocated, and the array lengths are fully determined by it, so a
// corrupt length cannot force a huge allocation.
func (d *Decoder) ReadSums() (SumsFrame, error) {
	if d.next < len(d.pending) {
		return SumsFrame{}, errors.New("transport: sums frame inside batch")
	}
	tb, err := d.r.ReadByte()
	if err != nil {
		return SumsFrame{}, err // io.EOF passes through
	}
	if MsgType(tb) != MsgSumsFrame {
		return SumsFrame{}, fmt.Errorf("transport: expected sums frame, got message type %d", tb)
	}
	ver, err := d.r.ReadByte()
	if err != nil {
		return SumsFrame{}, truncated(err)
	}
	if ver != queryWireVersion {
		return SumsFrame{}, fmt.Errorf("transport: unsupported sums version %d", ver)
	}
	du, err := binary.ReadUvarint(d.r)
	if err != nil {
		return SumsFrame{}, truncated(err)
	}
	if du > MaxSumsD || !dyadic.IsPow2(int(du)) {
		return SumsFrame{}, fmt.Errorf("transport: sums frame horizon %d invalid (power of two, at most %d)", du, MaxSumsD)
	}
	f := SumsFrame{D: int(du)}
	var raw [8]byte
	if _, err := io.ReadFull(d.r, raw[:]); err != nil {
		return SumsFrame{}, truncated(err)
	}
	f.Scale = math.Float64frombits(binary.LittleEndian.Uint64(raw[:]))
	f.Users, err = binary.ReadVarint(d.r)
	if err != nil {
		return SumsFrame{}, truncated(err)
	}
	if f.Users < 0 {
		return SumsFrame{}, fmt.Errorf("transport: sums frame with negative user count %d", f.Users)
	}
	f.PerOrder = make([]int64, dyadic.NumOrders(f.D))
	for h := range f.PerOrder {
		v, err := binary.ReadVarint(d.r)
		if err != nil {
			return SumsFrame{}, truncated(err)
		}
		if v < 0 {
			return SumsFrame{}, fmt.Errorf("transport: sums frame with negative count %d at order %d", v, h)
		}
		f.PerOrder[h] = v
	}
	f.Sums = make([]int64, dyadic.TotalIntervals(f.D))
	for i := range f.Sums {
		v, err := binary.ReadVarint(d.r)
		if err != nil {
			return SumsFrame{}, truncated(err)
		}
		f.Sums[i] = v
	}
	return f, nil
}
