package transport

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"rtf/internal/protocol"
	"rtf/internal/rng"
)

func testBatch(n int) []Msg {
	g := rng.New(3, 9)
	ms := make([]Msg, 0, n)
	for i := 0; i < n; i++ {
		switch i % 3 {
		case 0:
			ms = append(ms, Hello(i, g.IntN(9)))
		default:
			bit := int8(1)
			if g.Bernoulli(0.5) {
				bit = -1
			}
			ms = append(ms, FromReport(protocol.Report{User: i, Order: g.IntN(9), J: 1 + g.IntN(16), Bit: bit}))
		}
	}
	return ms
}

// TestBatchRoundTrip checks that batch frames survive the wire exactly,
// via both the batch-granular and the unbatching decode paths.
func TestBatchRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 1000} {
		ms := testBatch(n)
		var buf bytes.Buffer
		enc := NewEncoder(&buf)
		if err := enc.EncodeBatch(ms); err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(Query(5)); err != nil { // frame after the batch
			t.Fatal(err)
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}

		// Batch-granular path.
		dec := NewDecoder(bytes.NewReader(buf.Bytes()))
		got, err := dec.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			// An empty batch yields the next frame instead.
			if len(got) != 1 || got[0] != Query(5) {
				t.Fatalf("empty batch: got %+v", got)
			}
			continue
		}
		if len(got) != n {
			t.Fatalf("batch len: got %d, want %d", len(got), n)
		}
		for i := range got {
			if got[i] != ms[i] {
				t.Fatalf("msg %d: got %+v, want %+v", i, got[i], ms[i])
			}
		}
		if q, err := dec.NextBatch(); err != nil || len(q) != 1 || q[0] != Query(5) {
			t.Fatalf("trailing query: got %+v, %v", q, err)
		}
		if _, err := dec.NextBatch(); !errors.Is(err, io.EOF) {
			t.Fatalf("expected EOF, got %v", err)
		}

		// Unbatching path.
		dec = NewDecoder(bytes.NewReader(buf.Bytes()))
		for i := 0; i < n; i++ {
			m, err := dec.Next()
			if err != nil {
				t.Fatal(err)
			}
			if m != ms[i] {
				t.Fatalf("Next %d: got %+v, want %+v", i, m, ms[i])
			}
		}
		if m, err := dec.Next(); err != nil || m != Query(5) {
			t.Fatalf("trailing query via Next: got %+v, %v", m, err)
		}
	}
}

// TestBatchMixedConsumption interleaves Next and NextBatch over one
// batch frame: NextBatch must return only the unconsumed tail.
func TestBatchMixedConsumption(t *testing.T) {
	ms := testBatch(10)
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.EncodeBatch(ms); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(&buf)
	for i := 0; i < 4; i++ {
		m, err := dec.Next()
		if err != nil || m != ms[i] {
			t.Fatalf("Next %d: got %+v, %v", i, m, err)
		}
	}
	tail, err := dec.NextBatch()
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 6 {
		t.Fatalf("tail len: got %d, want 6", len(tail))
	}
	for i, m := range tail {
		if m != ms[4+i] {
			t.Fatalf("tail %d: got %+v, want %+v", i, m, ms[4+i])
		}
	}
}

// TestEmptyBatchFlood checks that a long run of empty batch frames is
// skipped iteratively: decoding must neither recurse (stack growth) nor
// return phantom messages.
func TestEmptyBatchFlood(t *testing.T) {
	const floods = 200000 // enough to overflow a stack if skipping recursed
	var buf bytes.Buffer
	for i := 0; i < floods; i++ {
		buf.Write([]byte{byte(MsgBatch), 0})
	}
	enc := NewEncoder(&buf)
	if err := enc.Encode(Query(9)); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	dec := NewDecoder(bytes.NewReader(data))
	if m, err := dec.Next(); err != nil || m != Query(9) {
		t.Fatalf("Next through flood: got %+v, %v", m, err)
	}
	dec = NewDecoder(bytes.NewReader(data))
	if ms, err := dec.NextBatch(); err != nil || len(ms) != 1 || ms[0] != Query(9) {
		t.Fatalf("NextBatch through flood: got %+v, %v", ms, err)
	}
}

// TestPendingBufferReleased checks that the decoder does not pin a
// maximal batch's decode buffer for the lifetime of the connection.
func TestPendingBufferReleased(t *testing.T) {
	big := testBatch(maxRetainedBatch + 1)
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.EncodeBatch(big); err != nil {
		t.Fatal(err)
	}
	if err := enc.EncodeBatch(big[:4]); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(&buf)
	if ms, err := dec.NextBatch(); err != nil || len(ms) != len(big) {
		t.Fatalf("big batch: got %d msgs, %v", len(ms), err)
	}
	ms, err := dec.NextBatch()
	if err != nil || len(ms) != 4 {
		t.Fatalf("small batch: got %d msgs, %v", len(ms), err)
	}
	if cap(dec.pending) > maxRetainedBatch {
		t.Fatalf("pending capacity %d retained past the %d cap", cap(dec.pending), maxRetainedBatch)
	}
}

// TestQueryEstimateRoundTrip checks the query/response scalar frames.
func TestQueryEstimateRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	want := []Msg{Query(1), Estimate(1, 3.25), Query(1024), Estimate(1024, -0.0), Estimate(7, 123456789.5)}
	for _, m := range want {
		if err := enc.Encode(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(&buf)
	for i, w := range want {
		got, err := dec.Next()
		if err != nil {
			t.Fatal(err)
		}
		if got != w {
			t.Fatalf("msg %d: got %+v, want %+v", i, got, w)
		}
	}
}

// TestBatchTruncated checks that every strict prefix of a batch frame
// fails with a clean error rather than a panic or a silent short read.
func TestBatchTruncated(t *testing.T) {
	ms := testBatch(5)
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.EncodeBatch(ms); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		dec := NewDecoder(bytes.NewReader(full[:cut]))
		_, err := dec.NextBatch()
		if err == nil {
			t.Fatalf("cut %d: expected error", cut)
		}
		if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut %d: expected EOF-class error, got %v", cut, err)
		}
	}
}

// TestBatchCorrupt checks rejection of structurally invalid batches.
func TestBatchCorrupt(t *testing.T) {
	cases := map[string][]byte{
		"nested batch":     {byte(MsgBatch), 1, byte(MsgBatch), 0},
		"huge length":      append([]byte{byte(MsgBatch)}, 0xff, 0xff, 0xff, 0xff, 0x7f),
		"bad inner type":   {byte(MsgBatch), 1, 99, 0},
		"bad inner bit":    {byte(MsgBatch), 1, byte(MsgReport), 0, 0, 1, 7},
		"bad scalar type":  {42},
		"estimate cut off": {byte(MsgEstimate), 3, 1, 2, 3},
	}
	for name, data := range cases {
		dec := NewDecoder(bytes.NewReader(data))
		if _, err := dec.NextBatch(); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// TestEncodeBatchRejects checks encoder-side validation.
func TestEncodeBatchRejects(t *testing.T) {
	enc := NewEncoder(io.Discard)
	if err := enc.EncodeBatch([]Msg{{Type: MsgBatch}}); err == nil {
		t.Error("nested batch: expected error")
	}
	if err := enc.EncodeBatch([]Msg{{Type: MsgReport, Bit: 0, J: 1}}); err == nil {
		t.Error("bad bit: expected error")
	}
	if err := enc.EncodeBatch(make([]Msg, MaxBatchLen+1)); err == nil {
		t.Error("oversized batch: expected error")
	}
}

// TestShardedCollector checks validation and accumulation through the
// collector, against a serial server.
func TestShardedCollector(t *testing.T) {
	const d = 64
	acc := protocol.NewSharded(d, 2.5, 4)
	c := NewShardedCollector(acc)

	serial := protocol.NewServer(d, 2.5)
	ms := []Msg{
		Hello(0, 3),
		FromReport(protocol.Report{User: 0, Order: 3, J: 2, Bit: 1}),
		FromReport(protocol.Report{User: 1, Order: 0, J: 64, Bit: -1}),
	}
	if err := c.SendBatch(7, ms); err != nil {
		t.Fatal(err)
	}
	serial.Register(3)
	serial.Ingest(protocol.Report{User: 0, Order: 3, J: 2, Bit: 1})
	serial.Ingest(protocol.Report{User: 1, Order: 0, J: 64, Bit: -1})
	for tt := 1; tt <= d; tt++ {
		if got, want := acc.EstimateAt(tt), serial.EstimateAt(tt); got != want {
			t.Fatalf("EstimateAt(%d): got %v, want %v", tt, got, want)
		}
	}
	hellos, reports, batches := c.Stats()
	if hellos != 1 || reports != 2 || batches != 1 {
		t.Fatalf("stats: got %d/%d/%d", hellos, reports, batches)
	}

	for name, m := range map[string]Msg{
		"hello order":  Hello(0, 7),
		"report order": FromReport(protocol.Report{Order: 9, J: 1, Bit: 1}),
		"report j":     FromReport(protocol.Report{Order: 0, J: 65, Bit: 1}),
		"report j=0":   FromReport(protocol.Report{Order: 0, J: 0, Bit: 1}),
		"bit":          {Type: MsgReport, J: 1},
		"query":        Query(3),
	} {
		if err := c.Send(0, m); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
