package transport

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"rtf/internal/dyadic"
	"rtf/internal/hh"
	"rtf/internal/persist"
	"rtf/internal/protocol"
)

// BatchCollector is the fan-in point an IngestServer feeds: the plain
// in-memory ShardedCollector, or the DurableCollector that journals
// every frame to a write-ahead log first.
type BatchCollector interface {
	// Acc returns the underlying accumulator (for estimate queries).
	Acc() *protocol.Sharded
	// Send validates and ingests one hello or report message.
	Send(shard int, m Msg) error
	// SendBatch validates and ingests a whole decoded batch atomically.
	SendBatch(shard int, ms []Msg) error
	// Validate checks one hello or report message against the
	// accumulator's parameters without side effects; the ingest server
	// pre-validates whole batches this way so an invalid message later
	// in a batch cannot leave an applied (or journaled) prefix behind.
	Validate(m Msg) error
	// Stats returns the number of hellos, reports and batches ingested.
	Stats() (hellos, reports, batches int64)
}

// DurableOptions configures OpenDurable and OpenDurableDomain.
type DurableOptions struct {
	// Fsync syncs the WAL after every append and snapshot writes before
	// rename. Off, a kill -9 still loses nothing (records are written
	// whole and live in the page cache); on, state also survives power
	// loss, at one fsync per ingested frame.
	Fsync bool
	// SegmentBytes overrides the WAL rotation threshold (default 4 MiB).
	SegmentBytes int64
	// TolerateTornTail lets recovery truncate a torn final WAL record
	// (the artifact of a crash mid-append) instead of failing. Off by
	// default: a torn tail then fails recovery with a descriptive error
	// so the operator decides.
	TolerateTornTail bool
	// GroupCommitInterval enables WAL group commit: batches from all
	// connections are aggregated for up to this long and committed with
	// one write call (and, with Fsync, one sync), so the per-batch sync
	// cost is shared across every batch in the group. A batch is only
	// acknowledged after its group commits, so an ack still means the
	// batch is journaled (and durable, with Fsync) — grouping changes
	// who pays for the sync, never what an ack promises. Zero keeps the
	// direct path: one write (+ sync) per batch, nothing shared.
	GroupCommitInterval time.Duration
}

// RecoveryStats reports what OpenDurable reconstructed at boot.
type RecoveryStats struct {
	// SnapshotCursor is the cursor of the snapshot that was restored
	// (0 when no snapshot existed).
	SnapshotCursor uint64
	// Replayed is the number of WAL records applied after the snapshot.
	Replayed int
	// Hellos and Reports count the messages applied by the WAL replay
	// (the snapshot's contribution is already folded into the counters
	// and is not re-counted here).
	Hellos, Reports int64
}

// durableJournal is the persistence machinery shared by the Boolean and
// domain durable collectors: the write-ahead log, the snapshot
// directory, and the lock that orders journal+apply pairs against
// snapshot cuts. What state gets restored, applied and marshalled is
// the wrapping collector's business; the journal only moves bytes.
type durableJournal struct {
	wal   *persist.WAL
	gc    *persist.GroupCommitter // non-nil when group commit is enabled
	dir   string
	meta  persist.Meta
	fsync bool

	// mu orders journal+apply pairs against snapshot cuts: ingestion
	// holds it shared around the append-then-apply sequence, snapshot
	// holds it exclusively while reading the cursor and folding the
	// counters, so a snapshot's cursor covers exactly the applied
	// prefix of the log.
	mu sync.RWMutex

	// snapCursor and snapUnixNano track the newest snapshot (cursor and
	// wall-clock write time; snapUnixNano starts at open time when no
	// snapshot exists yet) so WAL lag and snapshot age are readable
	// without taking the snapshot lock.
	snapCursor   atomic.Uint64
	snapUnixNano atomic.Int64

	scratch sync.Pool // *[]byte buffers for frame re-encoding
}

// DurabilityStats is a point-in-time reading of a durable collector's
// persistence state, exported as gauges on the metrics endpoint.
type DurabilityStats struct {
	// LastSeq is the highest WAL sequence number appended (or recovered).
	LastSeq uint64
	// SnapshotCursor is the cursor of the newest snapshot (0 if none).
	SnapshotCursor uint64
	// WALLagRecords is LastSeq − SnapshotCursor: the records a restart
	// would replay.
	WALLagRecords uint64
	// SnapshotAge is the time since the newest snapshot was written, or
	// since the journal was opened when no snapshot has been cut yet.
	SnapshotAge time.Duration
}

// durabilityStats reads the journal's current persistence state.
func (j *durableJournal) durabilityStats() DurabilityStats {
	last := j.wal.LastSeq()
	cur := j.snapCursor.Load()
	lag := uint64(0)
	if last > cur {
		lag = last - cur
	}
	return DurabilityStats{
		LastSeq:        last,
		SnapshotCursor: cur,
		WALLagRecords:  lag,
		SnapshotAge:    time.Since(time.Unix(0, j.snapUnixNano.Load())),
	}
}

// openJournal recovers durable state from dir — newest snapshot
// through restore, then WAL replay past its cursor through replay — and
// returns a journal accepting further appends there. meta is checked
// against the snapshot's, so a data directory written under different
// parameters is rejected rather than misinterpreted.
func openJournal(dir string, meta persist.Meta, o DurableOptions,
	restore func(state []byte) error, replay func(ms []Msg) error) (*durableJournal, RecoveryStats, error) {
	var stats RecoveryStats
	if err := persist.CleanTemp(dir); err != nil {
		return nil, stats, fmt.Errorf("transport: cleaning stale snapshot temp files: %w", err)
	}
	snap, found, err := persist.LoadLatestSnapshot(dir)
	if err != nil {
		return nil, stats, fmt.Errorf("transport: loading snapshot: %w", err)
	}
	after := uint64(0)
	if found {
		if err := snap.Meta.Check(meta); err != nil {
			return nil, stats, err
		}
		if err := restore(snap.State); err != nil {
			return nil, stats, fmt.Errorf("transport: restoring snapshot state: %w", err)
		}
		after = snap.Cursor
		stats.SnapshotCursor = snap.Cursor
	}

	last, n, err := persist.ReplayWAL(dir, persist.ReplayOptions{After: after, TolerateTornTail: o.TolerateTornTail},
		func(seq uint64, payload []byte) error {
			dec := NewDecoder(bytes.NewReader(payload))
			for {
				ms, err := dec.NextBatch()
				if errors.Is(err, io.EOF) {
					return nil
				}
				if err != nil {
					return fmt.Errorf("decoding record %d: %w", seq, err)
				}
				if err := replay(ms); err != nil {
					return fmt.Errorf("applying record %d: %w", seq, err)
				}
			}
		})
	if err != nil {
		return nil, stats, fmt.Errorf("transport: WAL replay: %w", err)
	}
	stats.Replayed = n

	minSeq := after
	if last > minSeq {
		minSeq = last
	}
	wal, err := persist.OpenWAL(dir, persist.WALOptions{
		SegmentBytes: o.SegmentBytes,
		Fsync:        o.Fsync,
		MinSeq:       minSeq,
	})
	if err != nil {
		return nil, stats, fmt.Errorf("transport: opening WAL: %w", err)
	}
	j := &durableJournal{wal: wal, dir: dir, meta: meta, fsync: o.Fsync}
	if o.GroupCommitInterval > 0 {
		j.gc = persist.NewGroupCommitter(wal, o.GroupCommitInterval)
	}
	j.snapCursor.Store(stats.SnapshotCursor)
	j.snapUnixNano.Store(time.Now().UnixNano())
	return j, stats, nil
}

// batchApplier folds a validated, journaled batch into in-memory
// state. The journal calls it through this interface rather than a
// closure so the steady-state ingest path allocates nothing.
type batchApplier interface {
	applyJournaled(shard int, ms []Msg)
}

// journal re-encodes the batch, appends it to the write-ahead log, and
// applies it via app — in that order, under the shared half of the
// snapshot lock, so any batch a query response can reflect is already
// durable. The batch must be pre-validated; on a journaling error the
// apply never runs.
func (j *durableJournal) journal(shard int, ms []Msg, app batchApplier) error {
	bp, _ := j.scratch.Get().(*[]byte)
	if bp == nil {
		bp = new([]byte)
	}
	payload, err := appendBatch((*bp)[:0], ms)
	if err != nil {
		return err
	}
	*bp = payload[:0]
	defer j.scratch.Put(bp)

	// The shared lock is held while a group commit is in flight, so a
	// snapshot cut (which takes it exclusively) always sees a cursor
	// covering every applied batch — grouping never lets an applied
	// batch slip past the cursor of the snapshot that should contain it.
	j.mu.RLock()
	defer j.mu.RUnlock()
	if j.gc != nil {
		if _, err := j.gc.Commit(payload); err != nil {
			return err
		}
	} else if _, err := j.wal.Append(payload); err != nil {
		return err
	}
	app.applyJournaled(shard, ms)
	return nil
}

// snapshot writes a durable snapshot of the state produced by marshal
// and compacts the WAL segments (and older snapshots) it supersedes. It
// returns the snapshot's cursor. Ingestion is paused only while the
// counters are folded, not while the file is written.
func (j *durableJournal) snapshot(marshal func() []byte) (uint64, error) {
	j.mu.Lock()
	cursor := j.wal.LastSeq()
	state := marshal()
	j.mu.Unlock()

	snap := &persist.Snapshot{Cursor: cursor, Meta: j.meta, State: state}
	if err := persist.WriteSnapshot(j.dir, snap, j.fsync); err != nil {
		return cursor, fmt.Errorf("transport: writing snapshot: %w", err)
	}
	if err := j.wal.Compact(cursor); err != nil {
		return cursor, fmt.Errorf("transport: compacting WAL: %w", err)
	}
	if err := persist.CompactSnapshots(j.dir, 2); err != nil {
		return cursor, fmt.Errorf("transport: compacting snapshots: %w", err)
	}
	j.snapCursor.Store(cursor)
	j.snapUnixNano.Store(time.Now().UnixNano())
	return cursor, nil
}

// close flushes any in-flight commit group and closes the write-ahead
// log.
func (j *durableJournal) close() error {
	if j.gc != nil {
		j.gc.Close()
	}
	return j.wal.Close()
}

// DurableCollector wraps a ShardedCollector with the persistence
// subsystem: every frame is validated, journaled to the write-ahead
// log, and only then applied, so an acknowledged frame survives a
// crash. Snapshot cuts a consistent point-in-time copy of the
// accumulator with its WAL cursor and compacts the log behind it.
type DurableCollector struct {
	inner *ShardedCollector
	j     *durableJournal
}

// OpenDurable recovers the accumulator's durable state from dir (newest
// snapshot, then WAL replay past its cursor) and returns a collector
// that journals all further ingestion there. The accumulator must be
// freshly constructed; meta must describe the hosting configuration.
func OpenDurable(acc *protocol.Sharded, dir string, meta persist.Meta, o DurableOptions) (*DurableCollector, RecoveryStats, error) {
	inner := NewShardedCollector(acc)
	j, stats, err := openJournal(dir, meta, o,
		acc.RestoreState,
		func(ms []Msg) error { return inner.SendBatch(0, ms) })
	if err != nil {
		return nil, stats, err
	}
	stats.Hellos, stats.Reports, _ = inner.Stats()
	return &DurableCollector{inner: inner, j: j}, stats, nil
}

// Acc returns the underlying accumulator (for estimate queries).
func (c *DurableCollector) Acc() *protocol.Sharded { return c.inner.Acc() }

// Stats returns the number of hellos, reports and batches ingested,
// including those recovered at boot.
func (c *DurableCollector) Stats() (hellos, reports, batches int64) { return c.inner.Stats() }

// Send journals and ingests one hello or report message.
func (c *DurableCollector) Send(shard int, m Msg) error {
	return c.SendBatch(shard, []Msg{m})
}

// Validate checks one message without journaling or applying anything.
func (c *DurableCollector) Validate(m Msg) error { return c.inner.validate(&m) }

// SendBatch validates the batch, appends its wire encoding to the
// write-ahead log, and applies it to the accumulator — in that order,
// so any batch a query response can reflect is already durable. On a
// validation or journaling error nothing is applied.
func (c *DurableCollector) SendBatch(shard int, ms []Msg) error {
	for i := range ms {
		if err := c.inner.validate(&ms[i]); err != nil {
			return err
		}
	}
	return c.j.journal(shard, ms, c.inner)
}

// Snapshot writes a durable snapshot of the current accumulator state
// and compacts the WAL segments (and older snapshots) it supersedes. It
// returns the snapshot's cursor.
func (c *DurableCollector) Snapshot() (uint64, error) {
	return c.j.snapshot(c.inner.Acc().MarshalState)
}

// DurabilityStats reads the collector's current WAL and snapshot state
// (lock-free on the snapshot side; the WAL sequence takes the WAL's own
// short mutex).
func (c *DurableCollector) DurabilityStats() DurabilityStats { return c.j.durabilityStats() }

// Close closes the write-ahead log. It does not snapshot; callers that
// want a final cut call Snapshot first.
func (c *DurableCollector) Close() error { return c.j.close() }

// DurableDomainCollector is the domain counterpart of DurableCollector:
// a DomainCollector whose every frame is journaled before it is
// applied, with per-item accumulator state snapshotted and recovered
// through the same snapshot+WAL machinery.
type DurableDomainCollector struct {
	inner *DomainCollector
	j     *durableJournal
}

// OpenDurableDomain recovers the domain server's durable state from dir
// and returns a collector that journals all further ingestion there.
// The server must be freshly constructed; meta must describe the
// hosting configuration (Meta.M is the domain size).
func OpenDurableDomain(ds *hh.DomainServer, dir string, meta persist.Meta, o DurableOptions) (*DurableDomainCollector, RecoveryStats, error) {
	if meta.M != ds.M() {
		return nil, RecoveryStats{}, fmt.Errorf("transport: meta domain size %d does not match server's %d", meta.M, ds.M())
	}
	inner := NewDomainCollector(ds)
	j, stats, err := openJournal(dir, meta, o,
		ds.RestoreState,
		func(ms []Msg) error { return inner.SendBatch(0, ms) })
	if err != nil {
		return nil, stats, err
	}
	stats.Hellos, stats.Reports, _ = inner.Stats()
	return &DurableDomainCollector{inner: inner, j: j}, stats, nil
}

// Domain returns the underlying domain server (for queries).
func (c *DurableDomainCollector) Domain() *hh.DomainServer { return c.inner.Domain() }

// Stats returns the number of hellos, reports and batches ingested,
// including those recovered at boot.
func (c *DurableDomainCollector) Stats() (hellos, reports, batches int64) {
	return c.inner.Stats()
}

// Send journals and ingests one domain hello or report message.
func (c *DurableDomainCollector) Send(shard int, m Msg) error {
	return c.SendBatch(shard, []Msg{m})
}

// Validate checks one message without journaling or applying anything.
func (c *DurableDomainCollector) Validate(m Msg) error { return c.inner.Validate(m) }

// SendBatch validates the batch, appends its wire encoding to the
// write-ahead log, and applies it to the domain server — in that
// order. On a validation or journaling error nothing is applied.
func (c *DurableDomainCollector) SendBatch(shard int, ms []Msg) error {
	d, m := c.inner.Domain().D(), c.inner.Domain().M()
	maxOrder := dyadic.Log2(d)
	for i := range ms {
		if !domainIngestOK(d, m, maxOrder, &ms[i]) {
			return validateDomainIngest(d, m, maxOrder, &ms[i])
		}
	}
	return c.j.journal(shard, ms, c.inner)
}

// Snapshot writes a durable snapshot of the current per-item state and
// compacts the WAL (and older snapshots) behind it.
func (c *DurableDomainCollector) Snapshot() (uint64, error) {
	return c.j.snapshot(c.inner.Domain().MarshalState)
}

// DurabilityStats reads the collector's current WAL and snapshot state.
func (c *DurableDomainCollector) DurabilityStats() DurabilityStats { return c.j.durabilityStats() }

// Close closes the write-ahead log. It does not snapshot; callers that
// want a final cut call Snapshot first.
func (c *DurableDomainCollector) Close() error { return c.j.close() }
