package transport

import (
	"fmt"

	"rtf/internal/persist"
)

// DurableShardMapCollector wraps a ShardMapCollector with the
// persistence subsystem: every ingest frame is validated, journaled to
// the write-ahead log, and only then applied, exactly like
// DurableCollector; the snapshot payload is the per-shard state
// container (persist.EncodeShardStates), so recovery restores each
// virtual shard independently. A shard install (reshard handoff) is
// not an ingest frame — the WAL never sees it — so InstallShard cuts a
// snapshot immediately after the swap, making the handoff itself
// durable before it is acknowledged.
type DurableShardMapCollector struct {
	inner *ShardMapCollector
	j     *durableJournal
}

// OpenDurableShardMap recovers the shard map's durable state from dir
// (newest snapshot, then WAL replay past its cursor) and returns a
// collector that journals all further ingestion there. The shard map
// must be freshly constructed; meta must describe the hosting
// configuration. The snapshot's shard count must match the
// collector's.
func OpenDurableShardMap(sm *ShardMapCollector, dir string, meta persist.Meta, o DurableOptions) (*DurableShardMapCollector, RecoveryStats, error) {
	j, stats, err := openJournal(dir, meta, o,
		func(state []byte) error {
			states, err := persist.DecodeShardStates(state)
			if err != nil {
				return err
			}
			if len(states) != sm.NumShards() {
				return fmt.Errorf("transport: snapshot has %d shards, collector has %d", len(states), sm.NumShards())
			}
			for s, st := range states {
				if err := sm.InstallShard(s, st); err != nil {
					return err
				}
			}
			return nil
		},
		func(ms []Msg) error { return sm.SendBatch(ms) })
	if err != nil {
		return nil, stats, err
	}
	stats.Hellos, stats.Reports, _ = sm.Stats()
	return &DurableShardMapCollector{inner: sm, j: j}, stats, nil
}

// Map returns the underlying shard map (for queries, shard export and
// view bookkeeping).
func (c *DurableShardMapCollector) Map() *ShardMapCollector { return c.inner }

// Validate checks one message without journaling or applying anything.
func (c *DurableShardMapCollector) Validate(m Msg) error { return c.inner.Validate(m) }

// Stats returns the number of hellos, reports and batches ingested,
// including those recovered at boot.
func (c *DurableShardMapCollector) Stats() (hellos, reports, batches int64) {
	return c.inner.Stats()
}

// SendBatch validates the batch, appends its wire encoding to the
// write-ahead log, and applies it to the shard map — in that order.
// On a validation or journaling error nothing is applied.
func (c *DurableShardMapCollector) SendBatch(ms []Msg) error {
	for i := range ms {
		if err := c.inner.Validate(ms[i]); err != nil {
			return err
		}
	}
	return c.j.journal(0, ms, c.inner)
}

// InstallShard replaces one virtual shard's state and immediately cuts
// a snapshot: the WAL journals only ingest frames, so without the cut
// a crash after the install would silently roll the shard back to its
// pre-handoff state.
func (c *DurableShardMapCollector) InstallShard(shard int, state []byte) error {
	if err := c.inner.InstallShard(shard, state); err != nil {
		return err
	}
	if _, err := c.Snapshot(); err != nil {
		return fmt.Errorf("transport: snapshot after installing shard %d: %w", shard, err)
	}
	return nil
}

// marshalShardStates serializes every virtual shard into the snapshot
// container. Called under the journal's exclusive snapshot lock, so
// the cut is consistent with the WAL cursor.
func (c *DurableShardMapCollector) marshalShardStates() []byte {
	sm := c.inner
	states := make([][]byte, sm.NumShards())
	sm.imu.RLock()
	for s := range states {
		states[s] = sm.accs[s].Load().MarshalState()
	}
	sm.imu.RUnlock()
	b, err := persist.EncodeShardStates(states)
	if err != nil {
		// Lengths are bounded by construction; an error here is a bug.
		panic(fmt.Sprintf("transport: encoding shard states: %v", err))
	}
	return b
}

// Snapshot writes a durable snapshot of every shard's current state
// and compacts the WAL segments (and older snapshots) it supersedes.
// It returns the snapshot's cursor.
func (c *DurableShardMapCollector) Snapshot() (uint64, error) {
	return c.j.snapshot(c.marshalShardStates)
}

// DurabilityStats reads the collector's current WAL and snapshot
// state.
func (c *DurableShardMapCollector) DurabilityStats() DurabilityStats { return c.j.durabilityStats() }

// Close closes the write-ahead log. It does not snapshot; callers
// that want a final cut call Snapshot first.
func (c *DurableShardMapCollector) Close() error { return c.j.close() }
