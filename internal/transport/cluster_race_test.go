package transport

import (
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rtf/internal/protocol"
)

// TestClusterClientConcurrentRestart hammers Lease/Release — including
// deliberate unhealthy releases, which purge the backend's whole idle
// pool — from many goroutines while the backend is killed and
// restarted on the same address mid-run. Under -race this pins the
// pool's concurrency safety; the assertions pin its liveness: workers
// make progress before the kill and again after the restart, and a
// purged pool never hands out a stale pre-restart connection as
// healthy (every post-restart fence must round-trip).
func TestClusterClientConcurrentRestart(t *testing.T) {
	// Serve(l) leaves listener ownership with the caller, so the kill
	// below closes both the listener (freeing the port for the restart)
	// and the server (severing every open connection).
	newServer := func(addr string) (*IngestServer, net.Listener, string) {
		srv := NewIngestServer(NewShardedCollector(protocol.NewSharded(16, 2, 2)))
		l, err := net.Listen("tcp", addr)
		if err != nil {
			t.Fatalf("listening on %q: %v", addr, err)
		}
		go srv.Serve(l)
		return srv, l, l.Addr().String()
	}
	srv, ln, addr := newServer("127.0.0.1:0")

	c, err := NewClusterClient([]string{addr}, ClusterOptions{
		PoolSize:     4,
		DialAttempts: 3,
		BackoffBase:  2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const workers = 16
	var (
		wg         sync.WaitGroup
		stop       atomic.Bool
		restarted  atomic.Bool // flipped once the new process is serving
		preKill    atomic.Int64
		postResume atomic.Int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for !stop.Load() {
				bc, err := c.Lease(0)
				if err != nil {
					continue // the down window: every dial attempt refused
				}
				err = bc.Fence()
				if err == nil && rng.Intn(4) == 0 {
					// A deliberate unhealthy release of a live connection:
					// purges the idle pool out from under the other workers,
					// who must transparently re-dial.
					c.Release(0, bc, false)
					continue
				}
				c.Release(0, bc, err == nil)
				if err != nil {
					continue
				}
				if restarted.Load() {
					postResume.Add(1)
				} else {
					preKill.Add(1)
				}
			}
		}(w)
	}

	// Let the workers churn, kill the backend (closing it severs every
	// open and pooled connection), leave a down window, restart on the
	// same address, then let the workers churn against the new process.
	time.Sleep(100 * time.Millisecond)
	ln.Close()
	if err := srv.Close(); err != nil {
		t.Errorf("closing first server: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	srv, ln, _ = newServer(addr)
	restarted.Store(true)
	time.Sleep(200 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if preKill.Load() == 0 {
		t.Error("no successful round-trips before the backend was killed")
	}
	if postResume.Load() == 0 {
		t.Error("no successful round-trips after the backend restarted")
	}

	// The pool must now be coherent: drain up to PoolSize idle
	// connections and fence each — a stale pre-restart connection handed
	// out as healthy would fail here.
	for i := 0; i < 4; i++ {
		bc, err := c.Lease(0)
		if err != nil {
			t.Fatalf("lease %d after restart: %v", i, err)
		}
		if err := bc.Fence(); err != nil {
			t.Fatalf("lease %d after restart handed out a dead connection: %v", i, err)
		}
		defer c.Release(0, bc, true)
	}
	ln.Close()
	if err := srv.Close(); err != nil {
		t.Errorf("closing restarted server: %v", err)
	}
}
