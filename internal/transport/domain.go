package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync/atomic"

	"rtf/internal/dyadic"
	"rtf/internal/hh"
	"rtf/internal/protocol"
)

// This file is the transport substrate of domain-valued tracking (the
// richer-domain reduction): item-tagged ingest validation, the
// variable-length answer frame for item-scoped queries, the per-item
// raw-sums frame a cluster gateway ships between nodes, and the
// collectors that fan decoded domain batches into an hh.DomainServer.
// The scalar encodings of MsgDomainHello, MsgDomainReport,
// MsgDomainQuery and MsgDomainSums live in transport.go beside the
// Boolean ones, so domain messages batch, journal and replay through
// the ordinary Encoder/Decoder paths.

// MaxDomainM bounds the domain size a frame may declare, so a corrupt
// or adversarial frame cannot force a huge per-item allocation. It is
// the row cap of the domain accumulator — the exact encoding's domain
// size and a hashed encoding's bucket count — declared once in
// internal/hh and aliased here and in ldp.MaxDomainSize.
const MaxDomainM = hh.MaxDomainRows

// MaxDomainSums bounds the total counter count (m × intervals) a
// domain sums frame may declare across all items.
const MaxDomainSums = 1 << 24

// ValidateDomainIngest range-checks one domain hello or report message
// against a domain server's parameters (horizon d, domain size m). It
// is the single source of domain ingest validation: the collectors run
// it before applying (or journaling) anything, and the cluster gateway
// runs the identical checks before forwarding.
func ValidateDomainIngest(d, m int, msg Msg) error {
	return validateDomainIngest(d, m, dyadic.Log2(d), &msg)
}

// domainIngestOK is the branch-only core of validateDomainIngest: the
// same checks with no error construction, small enough to inline into
// the batch loops. The hot path costs one inlined call per message;
// only a failing message pays for validateDomainIngest's fmt.Errorf
// machinery (the batch loops re-run it to build the precise error).
func domainIngestOK(d, m, maxOrder int, msg *Msg) bool {
	switch msg.Type {
	case MsgDomainReport:
		return msg.User >= 0 && uint(msg.Item) < uint(m) &&
			(msg.Bit == 1 || msg.Bit == -1) &&
			uint(msg.Order) <= uint(maxOrder) &&
			uint(msg.J-1) < uint(d>>uint(msg.Order))
	case MsgDomainHello:
		return msg.User >= 0 && uint(msg.Item) < uint(m) &&
			uint(msg.Order) <= uint(maxOrder)
	}
	return false
}

// validateDomainIngest is the pointer-based body of
// ValidateDomainIngest: the collectors run it over whole batches
// without copying each ~100-byte Msg out of the slice. maxOrder must
// be dyadic.Log2(d); the batch loops compute it once instead of per
// message (Log2's not-a-power-of-two panic keeps it from inlining).
// It agrees with domainIngestOK on every input.
func validateDomainIngest(d, m, maxOrder int, msg *Msg) error {
	switch msg.Type {
	case MsgDomainHello:
		if msg.User < 0 {
			return fmt.Errorf("transport: negative user id %d", msg.User)
		}
		if uint(msg.Item) >= uint(m) {
			return fmt.Errorf("transport: hello item %d out of range [0..%d)", msg.Item, m)
		}
		if uint(msg.Order) > uint(maxOrder) {
			return fmt.Errorf("transport: hello order %d out of range [0..%d]", msg.Order, maxOrder)
		}
	case MsgDomainReport:
		if msg.User < 0 {
			return fmt.Errorf("transport: negative user id %d", msg.User)
		}
		if uint(msg.Item) >= uint(m) {
			return fmt.Errorf("transport: report item %d out of range [0..%d)", msg.Item, m)
		}
		if msg.Bit != 1 && msg.Bit != -1 {
			return fmt.Errorf("transport: report bit %d not ±1", msg.Bit)
		}
		if uint(msg.Order) > uint(maxOrder) {
			return fmt.Errorf("transport: report order %d out of range [0..%d]", msg.Order, maxOrder)
		}
		if uint(msg.J-1) >= uint(d>>uint(msg.Order)) {
			return fmt.Errorf("transport: report index %d out of range for order %d", msg.J, msg.Order)
		}
	default:
		return fmt.Errorf("transport: domain collector cannot ingest message type %d", msg.Type)
	}
	return nil
}

// ValidateDomainQuery range-checks an item-scoped query frame against a
// domain server's parameters without touching any accumulator — the
// validate-only half of AnswerDomainQuery, run over whole batches
// before anything is applied.
func ValidateDomainQuery(d, m int, msg Msg) error {
	if msg.Type != MsgDomainQuery {
		return fmt.Errorf("transport: message type %d is not a domain query", msg.Type)
	}
	switch msg.Kind {
	case QueryPointItem:
		if msg.Item < 0 || msg.Item >= m {
			return fmt.Errorf("transport: point-item query item %d out of range [0..%d)", msg.Item, m)
		}
		if msg.L < 1 || msg.L > d {
			return fmt.Errorf("transport: point-item query time %d out of range [1..%d]", msg.L, d)
		}
	case QuerySeriesItem:
		if msg.Item < 0 || msg.Item >= m {
			return fmt.Errorf("transport: series-item query item %d out of range [0..%d)", msg.Item, m)
		}
	case QueryTopK:
		if msg.L < 1 || msg.L > d {
			return fmt.Errorf("transport: top-k query time %d out of range [1..%d]", msg.L, d)
		}
		if msg.K < 0 {
			return fmt.Errorf("transport: top-k query with negative k %d", msg.K)
		}
	default:
		return fmt.Errorf("transport: unknown domain query kind %d", byte(msg.Kind))
	}
	return nil
}

// AnswerDomainQuery computes the answer to an item-scoped query frame
// from the live domain server. Estimates are bit-for-bit identical to a
// serial server fed the same reports: every answer is a fixed function
// of the per-item point estimates, which sum the same dyadic
// decomposition in the same order everywhere. Returned slices are owned
// by the caller.
func AnswerDomainQuery(ds *hh.DomainServer, msg Msg) (DomainAnswerFrame, error) {
	var a DomainAnswerFrame
	var sc TopKScratch
	if _, err := AnswerDomainQueryInto(ds, msg, &a, &sc); err != nil {
		return DomainAnswerFrame{}, err
	}
	return a, nil
}

// AnswerDomainQueryInto is AnswerDomainQuery answering into a reusable
// frame: a's Items/Values buffers and sc's selection scratch are
// truncated and re-appended, so a serve loop recycling one frame and
// scratch per connection answers warm top-k and point-item queries
// without allocating. It reports whether the answer was served from the
// server's version-keyed memo (top-k only; the other shapes read
// counters directly). The frame's slices remain owned by the caller and
// never alias server-internal storage.
func AnswerDomainQueryInto(ds *hh.DomainServer, msg Msg, a *DomainAnswerFrame, sc *TopKScratch) (cached bool, err error) {
	if err := ValidateDomainQuery(ds.D(), ds.M(), msg); err != nil {
		return false, err
	}
	a.Kind, a.Item, a.L, a.R, a.K = msg.Kind, msg.Item, msg.L, msg.R, msg.K
	a.Items, a.Values = a.Items[:0], a.Values[:0]
	switch msg.Kind {
	case QueryPointItem:
		a.Values = append(a.Values, ds.EstimateItemAt(msg.Item, msg.L))
	case QuerySeriesItem:
		a.Values = append(a.Values, ds.EstimateItemSeries(msg.Item)...)
	case QueryTopK:
		sc.top, cached = ds.AppendTopK(sc.top[:0], msg.L, msg.K)
		for _, ic := range sc.top {
			a.Items = append(a.Items, ic.Item)
			a.Values = append(a.Values, ic.Count)
		}
	}
	return cached, nil
}

// DomainAnswerFrame is the server's response to an item-scoped query:
// the echoed query shape plus the answer payload — values only for
// point-item and series-item queries, parallel (item, value) lists for
// top-k. It is variable-length, so it travels outside Msg via
// EncodeDomainAnswer and ReadDomainAnswer.
type DomainAnswerFrame struct {
	Kind          QueryKind
	Item, L, R, K int
	Items         []int
	Values        []float64
}

// TopKScratch is the reusable selection buffer for the Into answer
// paths. It lives outside DomainAnswerFrame so frames stay plain
// values whose equality means payload equality; a serve loop holds one
// scratch per connection alongside its reusable frame.
type TopKScratch struct {
	top []hh.ItemCount
}

// EncodeDomainAnswer writes one MsgDomainAnswer frame.
func (e *Encoder) EncodeDomainAnswer(a DomainAnswerFrame) error {
	if len(a.Values) > MaxAnswerLen || len(a.Items) > MaxAnswerLen {
		return fmt.Errorf("transport: domain answer of %d items / %d values exceeds limit %d", len(a.Items), len(a.Values), MaxAnswerLen)
	}
	if a.Item < 0 || a.L < 0 || a.R < 0 || a.K < 0 {
		return fmt.Errorf("transport: negative domain answer field (item=%d l=%d r=%d k=%d)", a.Item, a.L, a.R, a.K)
	}
	for _, it := range a.Items {
		if it < 0 {
			return fmt.Errorf("transport: negative item %d in domain answer", it)
		}
	}
	b := e.scratch[:0]
	b = append(b, byte(MsgDomainAnswer), queryWireVersion, byte(a.Kind))
	b = binary.AppendUvarint(b, uint64(a.Item))
	b = binary.AppendUvarint(b, uint64(a.L))
	b = binary.AppendUvarint(b, uint64(a.R))
	b = binary.AppendUvarint(b, uint64(a.K))
	b = binary.AppendUvarint(b, uint64(len(a.Items)))
	for _, it := range a.Items {
		b = binary.AppendUvarint(b, uint64(it))
	}
	b = binary.AppendUvarint(b, uint64(len(a.Values)))
	for _, v := range a.Values {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	e.scratch = b[:0] // keep the grown buffer for the next frame
	n, err := e.w.Write(b)
	e.n += int64(n)
	return err
}

// ReadDomainAnswer decodes one MsgDomainAnswer frame. It must be called
// when a domain answer is the next frame on the stream — after sending
// a domain query — and fails on any other frame type. Declared lengths
// are bounded before allocation.
func (d *Decoder) ReadDomainAnswer() (DomainAnswerFrame, error) {
	if d.next < len(d.pending) {
		return DomainAnswerFrame{}, errors.New("transport: domain answer frame inside batch")
	}
	tb, err := d.r.ReadByte()
	if err != nil {
		return DomainAnswerFrame{}, err // io.EOF passes through
	}
	if MsgType(tb) != MsgDomainAnswer {
		return DomainAnswerFrame{}, fmt.Errorf("transport: expected domain answer frame, got message type %d", tb)
	}
	ver, err := d.r.ReadByte()
	if err != nil {
		return DomainAnswerFrame{}, truncated(err)
	}
	if ver != queryWireVersion {
		return DomainAnswerFrame{}, fmt.Errorf("transport: unsupported domain answer version %d", ver)
	}
	kind, err := d.r.ReadByte()
	if err != nil {
		return DomainAnswerFrame{}, truncated(err)
	}
	a := DomainAnswerFrame{Kind: QueryKind(kind)}
	var fields [4]uint64
	for i, name := range []string{"item", "l", "r", "k"} {
		v, err := binary.ReadUvarint(d.r)
		if err != nil {
			return DomainAnswerFrame{}, truncated(err)
		}
		if v > math.MaxInt {
			return DomainAnswerFrame{}, fmt.Errorf("transport: domain answer %s overflows", name)
		}
		fields[i] = v
	}
	a.Item, a.L, a.R, a.K = int(fields[0]), int(fields[1]), int(fields[2]), int(fields[3])
	nItems, err := binary.ReadUvarint(d.r)
	if err != nil {
		return DomainAnswerFrame{}, truncated(err)
	}
	if nItems > MaxAnswerLen {
		return DomainAnswerFrame{}, fmt.Errorf("transport: domain answer item count %d exceeds limit %d", nItems, MaxAnswerLen)
	}
	if nItems > 0 {
		a.Items = make([]int, nItems)
	}
	for i := range a.Items {
		v, err := binary.ReadUvarint(d.r)
		if err != nil {
			return DomainAnswerFrame{}, truncated(err)
		}
		if v > math.MaxInt {
			return DomainAnswerFrame{}, fmt.Errorf("transport: domain answer item overflows")
		}
		a.Items[i] = int(v)
	}
	nValues, err := binary.ReadUvarint(d.r)
	if err != nil {
		return DomainAnswerFrame{}, truncated(err)
	}
	if nValues > MaxAnswerLen {
		return DomainAnswerFrame{}, fmt.Errorf("transport: domain answer length %d exceeds limit %d", nValues, MaxAnswerLen)
	}
	if nValues > 0 {
		a.Values = make([]float64, nValues)
	}
	var raw [8]byte
	for i := range a.Values {
		if _, err := io.ReadFull(d.r, raw[:]); err != nil {
			return DomainAnswerFrame{}, truncated(err)
		}
		a.Values[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[:]))
	}
	return a, nil
}

// ---------------------------------------------------------------------------
// Per-item raw sums: the cluster's exactness carrier for domains.

// ItemSums is one item's raw accumulator state inside a
// DomainSumsFrame.
type ItemSums struct {
	Users    int64
	PerOrder []int64
	Sums     []int64
}

// DomainSumsFrame is the per-item raw accumulator state of one domain
// backend: the horizon, domain size and Boolean estimator scale it was
// accumulated under (checked on merge), plus every item's user count,
// per-order counts and per-interval ±1 bit sums in flat dyadic-tree
// order. Scale is the Boolean mechanism's; the per-item estimator scale
// is m × Scale, computed identically everywhere, so merged raw integers
// reproduce a single serial server's answers bit for bit.
type DomainSumsFrame struct {
	D, M  int
	Scale float64
	Items []ItemSums
}

// DomainSumsFromServer folds the live per-item accumulators into a
// frame. Counters are loaded atomically; fence ingestion first (a query
// round-trip on the same connection) when a consistent cut matters.
func DomainSumsFromServer(ds *hh.DomainServer) DomainSumsFrame {
	f := DomainSumsFrame{D: ds.D(), M: ds.M(), Scale: ds.BoolScale(), Items: make([]ItemSums, ds.M())}
	for x := 0; x < ds.M(); x++ {
		users, perOrder, sums := ds.FoldItem(x)
		f.Items[x] = ItemSums{Users: users, PerOrder: perOrder, Sums: sums}
	}
	return f
}

// MergeInto folds the frame's raw per-item state into a domain server,
// which must have the frame's horizon, domain size and Boolean scale.
func (f DomainSumsFrame) MergeInto(ds *hh.DomainServer) error {
	if f.D != ds.D() {
		return fmt.Errorf("transport: domain sums frame has horizon d=%d, server has d=%d", f.D, ds.D())
	}
	if f.M != ds.M() {
		return fmt.Errorf("transport: domain sums frame has m=%d items, server has m=%d", f.M, ds.M())
	}
	if f.Scale != ds.BoolScale() {
		return fmt.Errorf("transport: domain sums frame has estimator scale %v, server has %v", f.Scale, ds.BoolScale())
	}
	if len(f.Items) != f.M {
		return fmt.Errorf("transport: domain sums frame has %d item entries, header says %d", len(f.Items), f.M)
	}
	for x, it := range f.Items {
		if err := ds.MergeRawItem(x, it.Users, it.PerOrder, it.Sums); err != nil {
			return fmt.Errorf("transport: merging item %d: %w", x, err)
		}
	}
	return nil
}

// validDomainDims checks the (d, m) header of a domain sums frame.
func validDomainDims(d, m int) error {
	if !dyadic.IsPow2(d) || d > MaxSumsD {
		return fmt.Errorf("transport: domain sums frame horizon %d invalid (power of two, at most %d)", d, MaxSumsD)
	}
	if m < 2 || m > MaxDomainM {
		return fmt.Errorf("transport: domain sums frame domain size %d outside [2..%d]", m, MaxDomainM)
	}
	if total := m * dyadic.TotalIntervals(d); total > MaxDomainSums {
		return fmt.Errorf("transport: domain sums frame carries %d counters, over the %d limit", total, MaxDomainSums)
	}
	return nil
}

// EncodeDomainSums writes one MsgDomainSumsFrame response.
func (e *Encoder) EncodeDomainSums(f DomainSumsFrame) error {
	if err := validDomainDims(f.D, f.M); err != nil {
		return err
	}
	if len(f.Items) != f.M {
		return fmt.Errorf("transport: domain sums frame has %d item entries, header says %d", len(f.Items), f.M)
	}
	for x, it := range f.Items {
		if it.Users < 0 {
			return fmt.Errorf("transport: domain sums frame item %d has negative user count %d", x, it.Users)
		}
		if len(it.PerOrder) != dyadic.NumOrders(f.D) {
			return fmt.Errorf("transport: domain sums frame item %d has %d per-order counts, want %d", x, len(it.PerOrder), dyadic.NumOrders(f.D))
		}
		if len(it.Sums) != dyadic.TotalIntervals(f.D) {
			return fmt.Errorf("transport: domain sums frame item %d has %d interval sums, want %d", x, len(it.Sums), dyadic.TotalIntervals(f.D))
		}
	}
	b := e.scratch[:0]
	b = append(b, byte(MsgDomainSumsFrame), queryWireVersion)
	b = binary.AppendUvarint(b, uint64(f.D))
	b = binary.AppendUvarint(b, uint64(f.M))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(f.Scale))
	for _, it := range f.Items {
		b = binary.AppendVarint(b, it.Users)
		for _, v := range it.PerOrder {
			b = binary.AppendVarint(b, v)
		}
		for _, v := range it.Sums {
			b = binary.AppendVarint(b, v)
		}
	}
	e.scratch = b[:0] // keep the grown buffer for the next frame
	n, err := e.w.Write(b)
	e.n += int64(n)
	return err
}

// ReadDomainSums decodes one MsgDomainSumsFrame. It must be called when
// a domain sums frame is the next frame on the stream — after sending a
// MsgDomainSums request — and fails on any other frame type. The
// declared horizon and domain size are validated before any array is
// allocated, and every array length is fully determined by them, so a
// corrupt header cannot force a huge allocation.
func (d *Decoder) ReadDomainSums() (DomainSumsFrame, error) {
	if d.next < len(d.pending) {
		return DomainSumsFrame{}, errors.New("transport: domain sums frame inside batch")
	}
	tb, err := d.r.ReadByte()
	if err != nil {
		return DomainSumsFrame{}, err // io.EOF passes through
	}
	if MsgType(tb) != MsgDomainSumsFrame {
		return DomainSumsFrame{}, fmt.Errorf("transport: expected domain sums frame, got message type %d", tb)
	}
	ver, err := d.r.ReadByte()
	if err != nil {
		return DomainSumsFrame{}, truncated(err)
	}
	if ver != queryWireVersion {
		return DomainSumsFrame{}, fmt.Errorf("transport: unsupported domain sums version %d", ver)
	}
	du, err := binary.ReadUvarint(d.r)
	if err != nil {
		return DomainSumsFrame{}, truncated(err)
	}
	mu, err := binary.ReadUvarint(d.r)
	if err != nil {
		return DomainSumsFrame{}, truncated(err)
	}
	if du > MaxSumsD || mu > MaxDomainM {
		return DomainSumsFrame{}, fmt.Errorf("transport: domain sums frame dims d=%d m=%d out of bounds", du, mu)
	}
	f := DomainSumsFrame{D: int(du), M: int(mu)}
	if err := validDomainDims(f.D, f.M); err != nil {
		return DomainSumsFrame{}, err
	}
	var raw [8]byte
	if _, err := io.ReadFull(d.r, raw[:]); err != nil {
		return DomainSumsFrame{}, truncated(err)
	}
	f.Scale = math.Float64frombits(binary.LittleEndian.Uint64(raw[:]))
	f.Items = make([]ItemSums, f.M)
	for x := range f.Items {
		it := ItemSums{
			PerOrder: make([]int64, dyadic.NumOrders(f.D)),
			Sums:     make([]int64, dyadic.TotalIntervals(f.D)),
		}
		it.Users, err = binary.ReadVarint(d.r)
		if err != nil {
			return DomainSumsFrame{}, truncated(err)
		}
		if it.Users < 0 {
			return DomainSumsFrame{}, fmt.Errorf("transport: domain sums frame item %d has negative user count %d", x, it.Users)
		}
		for h := range it.PerOrder {
			v, err := binary.ReadVarint(d.r)
			if err != nil {
				return DomainSumsFrame{}, truncated(err)
			}
			if v < 0 {
				return DomainSumsFrame{}, fmt.Errorf("transport: domain sums frame item %d has negative count %d at order %d", x, v, h)
			}
			it.PerOrder[h] = v
		}
		for i := range it.Sums {
			v, err := binary.ReadVarint(d.r)
			if err != nil {
				return DomainSumsFrame{}, truncated(err)
			}
			it.Sums[i] = v
		}
		f.Items[x] = it
	}
	return f, nil
}

// ---------------------------------------------------------------------------
// Collectors.

// DomainBatchCollector is the domain counterpart of BatchCollector: the
// fan-in point a domain-mode IngestServer feeds — the plain in-memory
// DomainCollector, or the DurableDomainCollector that journals every
// frame to a write-ahead log first.
type DomainBatchCollector interface {
	// Domain returns the underlying domain server (for queries).
	Domain() *hh.DomainServer
	// Send validates and ingests one domain hello or report message.
	Send(shard int, m Msg) error
	// SendBatch validates and ingests a whole decoded batch atomically.
	SendBatch(shard int, ms []Msg) error
	// Validate checks one message against the server's parameters
	// without side effects.
	Validate(m Msg) error
	// Stats returns the number of hellos, reports and batches ingested.
	Stats() (hellos, reports, batches int64)
}

// DomainCollector fans decoded domain messages into an hh.DomainServer:
// the domain counterpart of ShardedCollector. The shard argument is a
// routing hint that spreads hot counters across cache lines;
// correctness does not depend on it.
type DomainCollector struct {
	srv     *hh.DomainServer
	reports atomic.Int64
	hellos  atomic.Int64
	batches atomic.Int64
}

// NewDomainCollector builds a collector over the given domain server.
func NewDomainCollector(srv *hh.DomainServer) *DomainCollector {
	return &DomainCollector{srv: srv}
}

// Domain returns the underlying domain server (for queries).
func (c *DomainCollector) Domain() *hh.DomainServer { return c.srv }

// Validate checks one domain hello or report message against the
// server's parameters without side effects.
func (c *DomainCollector) Validate(m Msg) error {
	d := c.srv.D()
	return validateDomainIngest(d, c.srv.M(), dyadic.Log2(d), &m)
}

// apply accumulates one validated message; callers must have run
// Validate first. It takes a pointer so the batch loops never copy
// each Msg out of the decoded slice.
func (c *DomainCollector) apply(shard int, m *Msg, hellos, reports *int64) {
	if m.Type == MsgDomainHello {
		c.srv.Register(shard, m.Item, m.Order)
		*hellos++
	} else {
		c.srv.Ingest(shard, m.Item, protocol.Report{User: m.User, Order: m.Order, J: m.J, Bit: m.Bit})
		*reports++
	}
}

// Send validates one domain message and applies it to the server via
// the given shard. It is safe for concurrent use.
func (c *DomainCollector) Send(shard int, m Msg) error {
	if err := c.Validate(m); err != nil {
		return err
	}
	var hellos, reports int64
	c.apply(shard, &m, &hellos, &reports)
	if hellos > 0 {
		c.hellos.Add(hellos)
	}
	c.reports.Add(reports)
	if reports > 0 {
		c.srv.AdvanceVersion(shard)
	}
	return nil
}

// SendBatch applies a decoded batch to the server via the given shard.
// The batch is atomic: it is validated in full first, and on error
// nothing is applied.
func (c *DomainCollector) SendBatch(shard int, ms []Msg) error {
	d, m := c.srv.D(), c.srv.M()
	maxOrder := dyadic.Log2(d)
	for i := range ms {
		if !domainIngestOK(d, m, maxOrder, &ms[i]) {
			return validateDomainIngest(d, m, maxOrder, &ms[i])
		}
	}
	c.applyBatch(shard, ms)
	return nil
}

// applyBatch accumulates a fully validated batch, then advances the
// server's version stamp once — batch-amortized invalidation for the
// version-keyed read caches (Ingest itself is version-silent to keep
// the hot path at one index computation and one atomic add).
func (c *DomainCollector) applyBatch(shard int, ms []Msg) {
	var hellos, reports int64
	for i := range ms {
		c.apply(shard, &ms[i], &hellos, &reports)
	}
	if hellos > 0 {
		c.hellos.Add(hellos)
	}
	c.reports.Add(reports)
	c.batches.Add(1)
	if reports > 0 {
		c.srv.AdvanceVersion(shard)
	}
}

// applyJournaled implements batchApplier for the durable collector.
func (c *DomainCollector) applyJournaled(shard int, ms []Msg) { c.applyBatch(shard, ms) }

// Stats returns the number of hellos, reports and batches ingested.
func (c *DomainCollector) Stats() (hellos, reports, batches int64) {
	return c.hellos.Load(), c.reports.Load(), c.batches.Load()
}
