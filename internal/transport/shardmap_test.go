package transport

import (
	"net"
	"reflect"
	"strings"
	"testing"

	"rtf/internal/hh"
	"rtf/internal/membership"
	"rtf/internal/persist"
	"rtf/internal/protocol"
)

// applySerial feeds a hello+report stream into a single serial sharded
// accumulator, the reference a shard map must match bit-for-bit.
func applySerial(d int, scale float64, ms []Msg) *protocol.Sharded {
	ref := protocol.NewSharded(d, scale, 1)
	for _, m := range ms {
		if m.Type == MsgHello {
			ref.Register(0, m.Order)
		} else {
			ref.Ingest(0, m.Report())
		}
	}
	return ref
}

// TestShardMapEquivalence pins the core exactness claim: a shard map
// with S virtual shards answers every estimate bit-for-bit like one
// serial accumulator fed the same stream, and its folded sums frames
// agree integer-for-integer.
func TestShardMapEquivalence(t *testing.T) {
	const d, scale, S = 64, 5.5, 8
	ms := genMsgs(d, 100)
	sm := NewShardMapCollector(d, scale, S, "n0")
	if err := sm.SendBatch(ms); err != nil {
		t.Fatal(err)
	}
	ref := applySerial(d, scale, ms)

	est, err := sm.Estimator()
	if err != nil {
		t.Fatal(err)
	}
	got, want := est.EstimateSeries(), ref.EstimateSeries()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("EstimateSeries[%d] = %v, want %v", i, got[i], want[i])
		}
	}

	if g, w := sm.GlobalSums(), SumsFromSharded(ref); !reflect.DeepEqual(g, w) {
		t.Fatalf("GlobalSums = %+v, want %+v", g, w)
	}

	// Per-shard frames re-merge to the same serial server.
	merged := protocol.NewServer(d, scale)
	for s := 0; s < S; s++ {
		f, err := sm.ShardSums(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.MergeInto(merged); err != nil {
			t.Fatal(err)
		}
	}
	if g, w := merged.Users(), ref.Users(); g != w {
		t.Fatalf("merged users = %d, want %d", g, w)
	}
	if g, w := merged.EstimateSeries(), ref.EstimateSeries(); !reflect.DeepEqual(g, w) {
		t.Fatalf("merged series = %v, want %v", g, w)
	}

	if _, err := sm.ShardSums(S); err == nil {
		t.Error("ShardSums accepted an out-of-range shard")
	}
	if _, err := sm.ExportShard(-1); err == nil {
		t.Error("ExportShard accepted a negative shard")
	}
}

// TestShardMapInstallReplaces pins the replace-not-fold discipline:
// installing a shard's state over a member that already holds a stale
// copy must yield the source's state exactly, even when installed
// twice.
func TestShardMapInstallReplaces(t *testing.T) {
	const d, scale, S = 32, 3.5, 4
	src := NewShardMapCollector(d, scale, S, "src")
	if err := src.SendBatch(genMsgs(d, 60)); err != nil {
		t.Fatal(err)
	}
	dst := NewShardMapCollector(d, scale, S, "dst")
	// Give dst its own stale copy in every shard first.
	if err := dst.SendBatch(genMsgs(d, 20)); err != nil {
		t.Fatal(err)
	}
	const shard = 2
	state, err := src.ExportShard(shard)
	if err != nil {
		t.Fatal(err)
	}
	want, err := src.ShardSums(shard)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // a re-install must not double-count
		if err := dst.InstallShard(shard, state); err != nil {
			t.Fatal(err)
		}
		got, err := dst.ShardSums(shard)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("install %d: shard sums = %+v, want %+v", i, got, want)
		}
	}
	if err := dst.InstallShard(S, state); err == nil {
		t.Error("InstallShard accepted an out-of-range shard")
	}
	if err := dst.InstallShard(0, []byte("junk")); err == nil {
		t.Error("InstallShard accepted junk state")
	}
}

// TestShardMapSetView covers the epoch ladder: newer views replace,
// equal re-pushes apply, stale pushes are refused without error, and a
// shard-count mismatch is a hard error.
func TestShardMapSetView(t *testing.T) {
	const S = 4
	sm := NewShardMapCollector(16, 2, S, "n1")
	mkView := func(epoch uint64, ids ...string) membership.View {
		v := membership.View{Epoch: epoch, K: 1, NumShards: S}
		for _, id := range ids {
			v.Members = append(v.Members, membership.Member{ID: id, Addr: "h:" + id})
		}
		return v
	}
	if sm.Epoch() != 0 || sm.OwnedShards() != 0 {
		t.Fatalf("fresh collector: epoch=%d owned=%d", sm.Epoch(), sm.OwnedShards())
	}
	if applied, err := sm.SetView(mkView(3, "n1", "n2")); err != nil || !applied {
		t.Fatalf("SetView(3) = %v, %v", applied, err)
	}
	if sm.Epoch() != 3 {
		t.Fatalf("epoch = %d, want 3", sm.Epoch())
	}
	if sm.OwnedShards() == 0 {
		t.Fatal("member listed in view owns no shards")
	}
	if applied, err := sm.SetView(mkView(2, "n1")); err != nil || applied {
		t.Fatalf("stale SetView(2) = %v, %v; want refused, nil", applied, err)
	}
	if sm.Epoch() != 3 {
		t.Fatalf("stale push changed epoch to %d", sm.Epoch())
	}
	// A view omitting this member is a drain: accepted, owned drops to 0.
	if applied, err := sm.SetView(mkView(4, "n2", "n3")); err != nil || !applied {
		t.Fatalf("drain SetView(4) = %v, %v", applied, err)
	}
	if sm.OwnedShards() != 0 {
		t.Fatalf("drained member still owns %d shards", sm.OwnedShards())
	}
	bad := mkView(5, "n1")
	bad.NumShards = S + 1
	if _, err := sm.SetView(bad); err == nil {
		t.Error("SetView accepted a shard-count mismatch")
	}
	if _, err := sm.SetView(membership.View{}); err == nil {
		t.Error("SetView accepted an invalid view")
	}
}

// TestDomainShardMapEquivalence mirrors the exactness test for the
// domain-valued mode: per-item series and top-K from the folded shard
// map match a serial domain server bit-for-bit, and install replaces.
func TestDomainShardMapEquivalence(t *testing.T) {
	const d, m, scale, S = 32, 8, 4.5, 4
	var ms []Msg
	for u := 0; u < 80; u++ {
		item := u % m
		order := u % 3
		ms = append(ms, DomainHello(u, item, order))
		j := 1 + (u*5)%(d>>uint(order))
		bit := int8(1)
		if u%3 == 0 {
			bit = -1
		}
		ms = append(ms, FromDomainReport(item, protocol.Report{User: u, Order: order, J: j, Bit: bit}))
	}
	sm := NewDomainShardMapCollector(d, m, scale, S, "n0")
	if err := sm.SendBatch(ms); err != nil {
		t.Fatal(err)
	}
	ref := hh.NewDomainServer(d, m, scale, 1)
	for _, msg := range ms {
		if msg.Type == MsgDomainHello {
			ref.Register(0, msg.Item, msg.Order)
		} else {
			ref.Ingest(0, msg.Item, protocol.Report{User: msg.User, Order: msg.Order, J: msg.J, Bit: msg.Bit})
		}
	}
	folded, err := sm.Fold()
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < m; x++ {
		if g, w := folded.EstimateItemSeries(x), ref.EstimateItemSeries(x); !reflect.DeepEqual(g, w) {
			t.Fatalf("item %d series = %v, want %v", x, g, w)
		}
	}
	if g, w := folded.TopK(d, 3), ref.TopK(d, 3); !reflect.DeepEqual(g, w) {
		t.Fatalf("TopK = %+v, want %+v", g, w)
	}

	// Install replaces on the domain side too.
	dst := NewDomainShardMapCollector(d, m, scale, S, "dst")
	if err := dst.SendBatch(ms[:20]); err != nil {
		t.Fatal(err)
	}
	state, err := sm.ExportShard(1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sm.ShardSums(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := dst.InstallShard(1, state); err != nil {
			t.Fatal(err)
		}
		got, err := dst.ShardSums(1)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("install %d: domain shard sums diverged", i)
		}
	}
	if applied, err := dst.SetView(membership.View{
		Epoch: 1, K: 1, NumShards: S,
		Members: []membership.Member{{ID: "dst", Addr: "h:1"}},
	}); err != nil || !applied {
		t.Fatalf("domain SetView = %v, %v", applied, err)
	}
	if dst.Epoch() != 1 || dst.OwnedShards() != S {
		t.Fatalf("domain view bookkeeping: epoch=%d owned=%d", dst.Epoch(), dst.OwnedShards())
	}
}

// TestDurableShardMapRecovery runs the durable wrapper through ingest,
// a shard install (which must cut its own snapshot), more ingest, a
// simulated crash, and recovery: the reopened map must agree with the
// expected serial state bit-for-bit.
func TestDurableShardMapRecovery(t *testing.T) {
	const d, scale, S = 64, 5.5, 8
	dir := t.TempDir()
	meta := durableMeta(d, scale)

	first, second := genMsgs(d, 40), genMsgs(d, 90)[40*5:] // users 40..89
	donor := NewShardMapCollector(d, scale, S, "donor")
	if err := donor.SendBatch(genMsgs(d, 25)); err != nil {
		t.Fatal(err)
	}
	const shard = 3
	donorState, err := donor.ExportShard(shard)
	if err != nil {
		t.Fatal(err)
	}

	dc, stats, err := OpenDurableShardMap(NewShardMapCollector(d, scale, S, "n0"), dir, meta, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Hellos != 0 || stats.Reports != 0 {
		t.Fatalf("fresh open recovered %d hellos / %d reports", stats.Hellos, stats.Reports)
	}
	if err := dc.SendBatch(first); err != nil {
		t.Fatal(err)
	}
	if err := dc.InstallShard(shard, donorState); err != nil {
		t.Fatal(err)
	}
	if err := dc.SendBatch(second); err != nil {
		t.Fatal(err)
	}
	// Expected state: first, then shard 3 replaced by the donor copy,
	// then second — replayed on an in-memory twin.
	twin := NewShardMapCollector(d, scale, S, "twin")
	if err := twin.SendBatch(first); err != nil {
		t.Fatal(err)
	}
	if err := twin.InstallShard(shard, donorState); err != nil {
		t.Fatal(err)
	}
	if err := twin.SendBatch(second); err != nil {
		t.Fatal(err)
	}
	// Crash: abandon dc without snapshot or close.
	rec, rstats, err := OpenDurableShardMap(NewShardMapCollector(d, scale, S, "n0"), dir, meta, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rstats.SnapshotCursor == 0 {
		t.Error("recovery loaded no snapshot despite the install cutting one")
	}
	for s := 0; s < S; s++ {
		g, err := rec.Map().ShardSums(s)
		if err != nil {
			t.Fatal(err)
		}
		w, err := twin.ShardSums(s)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("recovered shard %d diverged from twin", s)
		}
	}
	ge, err := rec.Map().Estimator()
	if err != nil {
		t.Fatal(err)
	}
	we, err := twin.Estimator()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ge.EstimateSeries(), we.EstimateSeries()) {
		t.Fatal("recovered series diverged from twin")
	}
}

// TestShardStatesContainer covers the persist-side container the
// durable snapshot and recovery path speak.
func TestShardStatesContainer(t *testing.T) {
	states := [][]byte{[]byte("alpha"), {}, []byte("gamma")}
	b, err := persist.EncodeShardStates(states)
	if err != nil {
		t.Fatal(err)
	}
	got, err := persist.DecodeShardStates(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(states) {
		t.Fatalf("decoded %d states, want %d", len(got), len(states))
	}
	for i := range states {
		if string(got[i]) != string(states[i]) {
			t.Fatalf("state %d = %q, want %q", i, got[i], states[i])
		}
	}
	for i := 1; i < len(b); i++ {
		if _, err := persist.DecodeShardStates(b[:i]); err == nil {
			t.Fatalf("accepted truncation to %d bytes", i)
		}
	}
	if _, err := persist.DecodeShardStates(append(append([]byte{}, b...), 0)); err == nil {
		t.Error("accepted trailing byte")
	}
	if _, err := persist.EncodeShardStates(nil); err == nil {
		t.Error("encoded an empty container")
	}
}

// startShardServer boots a membership-mode Boolean server for the
// round-trip tests.
func startShardServer(t *testing.T, col ShardMapBatchCollector) (string, func()) {
	t.Helper()
	srv := NewShardMapIngestServer(col)
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0", ready) }()
	addr := (<-ready).String()
	return addr, func() {
		if err := srv.Close(); err != nil {
			t.Error(err)
		}
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}

// TestMembershipServeRoundTrip drives a membership-mode backend over
// TCP through every flow a member gateway uses: replicated ingest,
// point/series queries, per-shard sums, state export, shard transfer
// install, and view push — all via a ReplicaClient lease.
func TestMembershipServeRoundTrip(t *testing.T) {
	const d, scale, S = 64, 5.5, 8
	sm := NewShardMapCollector(d, scale, S, "n0")
	addr, stop := startShardServer(t, sm)
	defer stop()

	rc := NewReplicaClient(ClusterOptions{DialAttempts: 2})
	defer rc.Close()
	bc, err := rc.Lease(addr)
	if err != nil {
		t.Fatal(err)
	}

	ms := genMsgs(d, 50)
	ref := applySerial(d, scale, ms)
	if err := bc.SendBatch(ms); err != nil {
		t.Fatal(err)
	}
	if err := bc.Flush(); err != nil {
		t.Fatal(err)
	}

	// Per-shard sums fence the earlier batch and must re-merge to the
	// serial reference.
	merged := protocol.NewServer(d, scale)
	for s := 0; s < S; s++ {
		f, err := bc.FetchShardSums(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.MergeInto(merged); err != nil {
			t.Fatal(err)
		}
	}
	if g, w := merged.EstimateSeries(), ref.EstimateSeries(); !reflect.DeepEqual(g, w) {
		t.Fatalf("fetched shard sums fold to %v, want %v", g, w)
	}

	// Global sums and v2 answers still work on the same connection.
	f, err := bc.FetchSums()
	if err != nil {
		t.Fatal(err)
	}
	if g, w := f, SumsFromSharded(ref); !reflect.DeepEqual(g, w) {
		t.Fatalf("global sums = %+v, want %+v", g, w)
	}
	if err := bc.enc.Encode(QueryV2(QueryPoint, d/2, d/2)); err != nil {
		t.Fatal(err)
	}
	if err := bc.Flush(); err != nil {
		t.Fatal(err)
	}
	ans, err := bc.dec.ReadAnswer()
	if err != nil {
		t.Fatal(err)
	}
	if want := ref.EstimateAt(d / 2); len(ans.Values) != 1 || ans.Values[0] != want {
		t.Fatalf("point answer %v, want [%v]", ans.Values, want)
	}

	// Export a shard, install it on a second backend, confirm the copy.
	state, err := bc.FetchShardState(5)
	if err != nil {
		t.Fatal(err)
	}
	sm2 := NewShardMapCollector(d, scale, S, "n1")
	addr2, stop2 := startShardServer(t, sm2)
	defer stop2()
	bc2, err := rc.Lease(addr2)
	if err != nil {
		t.Fatal(err)
	}
	if err := bc2.TransferShard(5, state); err != nil {
		t.Fatal(err)
	}
	want5, err := sm.ShardSums(5)
	if err != nil {
		t.Fatal(err)
	}
	got5, err := bc2.FetchShardSums(5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got5, want5) {
		t.Fatal("transferred shard's sums diverge from the source")
	}

	// View push lands in the collector; a stale re-push is refused.
	v := membership.View{Epoch: 7, K: 2, NumShards: S, Members: []membership.Member{
		{ID: "n0", Addr: addr}, {ID: "n1", Addr: addr2},
	}}
	if err := bc.PushView(v); err != nil {
		t.Fatal(err)
	}
	if sm.Epoch() != 7 {
		t.Fatalf("backend epoch = %d, want 7", sm.Epoch())
	}
	stale := v.Clone()
	stale.Epoch = 3
	if err := bc.PushView(stale); err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("stale view push error = %v", err)
	}
	// An out-of-range shard request kills the connection with an error.
	if _, err := bc.FetchShardSums(S); err == nil {
		t.Error("backend answered an out-of-range shard request")
	}
	rc.Release(addr, bc, false)
	rc.Release(addr2, bc2, true)
}

// TestDomainMembershipServeRoundTrip is the domain-mode twin: ingest,
// per-shard domain sums, a domain query, and a shard transfer between
// two backends.
func TestDomainMembershipServeRoundTrip(t *testing.T) {
	const d, m, scale, S = 32, 8, 4.5, 4
	col := NewDomainShardMapCollector(d, m, scale, S, "n0")
	srv := NewDomainShardMapIngestServer(col)
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0", ready) }()
	addr := (<-ready).String()
	defer func() {
		if err := srv.Close(); err != nil {
			t.Error(err)
		}
		if err := <-done; err != nil {
			t.Error(err)
		}
	}()

	rc := NewReplicaClient(ClusterOptions{DialAttempts: 2})
	defer rc.Close()
	bc, err := rc.Lease(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Release(addr, bc, true)

	var ms []Msg
	ref := hh.NewDomainServer(d, m, scale, 1)
	for u := 0; u < 40; u++ {
		item := u % m
		ms = append(ms, DomainHello(u, item, 0))
		r := protocol.Report{User: u, Order: 0, J: 1 + u%d, Bit: 1}
		ms = append(ms, FromDomainReport(item, r))
		ref.Register(0, item, 0)
		ref.Ingest(0, item, r)
	}
	if err := bc.SendBatch(ms); err != nil {
		t.Fatal(err)
	}
	if err := bc.Flush(); err != nil {
		t.Fatal(err)
	}

	folded := hh.NewDomainServer(d, m, scale, 1)
	for s := 0; s < S; s++ {
		f, err := bc.FetchShardDomainSums(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.MergeInto(folded); err != nil {
			t.Fatal(err)
		}
	}
	for x := 0; x < m; x++ {
		if g, w := folded.EstimateItemSeries(x), ref.EstimateItemSeries(x); !reflect.DeepEqual(g, w) {
			t.Fatalf("item %d folded series diverges", x)
		}
	}

	state, err := bc.FetchShardState(2)
	if err != nil {
		t.Fatal(err)
	}
	col2 := NewDomainShardMapCollector(d, m, scale, S, "n1")
	if err := col2.InstallShard(2, state); err != nil {
		t.Fatal(err)
	}
	want, err := col.ShardSums(2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := col2.ShardSums(2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("domain shard transfer diverged")
	}

	v := membership.View{Epoch: 1, K: 1, NumShards: S, Members: []membership.Member{{ID: "n0", Addr: addr}}}
	if err := bc.PushView(v); err != nil {
		t.Fatal(err)
	}
	if col.Epoch() != 1 {
		t.Fatalf("domain backend epoch = %d, want 1", col.Epoch())
	}
}
