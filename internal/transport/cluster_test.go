package transport

import (
	"net"
	"strings"
	"testing"
	"time"

	"rtf/internal/protocol"
)

func startSumsServer(t *testing.T, d int, scale float64) (string, func()) {
	t.Helper()
	srv := NewIngestServer(NewShardedCollector(protocol.NewSharded(d, scale, 2)))
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0", ready) }()
	addr := (<-ready).String()
	return addr, func() {
		if err := srv.Close(); err != nil {
			t.Error(err)
		}
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}

// TestClusterClientBasics covers construction, routing and the
// round-trip operations of a leased backend connection.
func TestClusterClientBasics(t *testing.T) {
	if _, err := NewClusterClient(nil, ClusterOptions{}); err == nil {
		t.Error("accepted a cluster with no backends")
	}
	addr, stop := startSumsServer(t, 16, 2)
	defer stop()
	c, err := NewClusterClient([]string{addr, addr, addr}, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.N() != 3 || c.Addr(1) != addr {
		t.Fatalf("N=%d Addr(1)=%s", c.N(), c.Addr(1))
	}
	for user, want := range map[int]int{0: 0, 1: 1, 5: 2, 6: 0} {
		if got := c.Route(user); got != want {
			t.Errorf("Route(%d) = %d, want %d", user, got, want)
		}
	}
	bc, err := c.Lease(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := bc.SendBatch([]Msg{Hello(1, 2), FromReport(protocol.Report{User: 1, Order: 0, J: 3, Bit: 1})}); err != nil {
		t.Fatal(err)
	}
	if err := bc.Fence(); err != nil {
		t.Fatal(err)
	}
	f, err := bc.FetchSums()
	if err != nil {
		t.Fatal(err)
	}
	if f.D != 16 || f.Users != 1 {
		t.Fatalf("bad sums frame %+v", f)
	}
	c.Release(0, bc, true)
}

// TestClusterClientPool checks the pool recycles healthy connections,
// and that an unhealthy release purges the backend's whole idle pool so
// retries dial fresh instead of picking up another corpse.
func TestClusterClientPool(t *testing.T) {
	addr, stop := startSumsServer(t, 16, 2)
	defer stop()
	c, err := NewClusterClient([]string{addr}, ClusterOptions{PoolSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	a, err := c.Lease(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Lease(0)
	if err != nil {
		t.Fatal(err)
	}
	c.Release(0, a, true)
	got, err := c.Lease(0)
	if err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Fatal("healthy release was not recycled by the next lease")
	}
	// Pool = [got(=a)] after this; an unhealthy release must purge it.
	c.Release(0, got, true)
	c.Release(0, b, false)
	fresh, err := c.Lease(0)
	if err != nil {
		t.Fatal(err)
	}
	if fresh == a || fresh == b {
		t.Fatal("lease after an unhealthy release returned a stale pooled connection")
	}
	c.Release(0, fresh, true)
	// A full pool closes the extra healthy release instead of leaking.
	x, _ := c.Lease(0)
	y, _ := c.Lease(0)
	z, err := c.Lease(0)
	if err != nil {
		t.Fatal(err)
	}
	c.Release(0, x, true)
	c.Release(0, y, true)
	c.Release(0, z, true) // pool size 2: z must be closed
	if err := z.Fence(); err == nil {
		t.Fatal("connection released into a full pool was left open")
	}
}

// TestClusterClientDialBackoff checks Lease retries a dead backend
// across attempts and fails with a descriptive error once the budget
// is spent.
func TestClusterClientDialBackoff(t *testing.T) {
	// A listener we immediately close: the port is (very likely) dead.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := l.Addr().String()
	l.Close()
	c, err := NewClusterClient([]string{dead}, ClusterOptions{
		DialAttempts: 3,
		BackoffBase:  time.Millisecond,
		BackoffMax:   2 * time.Millisecond,
		DialTimeout:  100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.Lease(0)
	if err == nil {
		t.Fatal("leased a connection to a dead backend")
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("error %q does not report the attempt budget", err)
	}
	if elapsed := time.Since(start); elapsed < 3*time.Millisecond {
		t.Fatalf("3 attempts finished in %v: no backoff between them", elapsed)
	}
}
