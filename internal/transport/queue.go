package transport

// IngestQueue bounds the number of batches a serving process applies
// concurrently. Every batch holds one slot from admission until its
// collector application (and any in-batch query answers) finish, so the
// queue depth is the process's in-flight ingest work and the capacity
// is a hard ceiling on it.
//
// Admission has two disciplines, chosen by the wire frame the client
// sent:
//
//   - Legacy batches (MsgBatch) block in Acquire until a slot frees.
//     The connection goroutine stops reading, TCP flow control pushes
//     back on the sender, and nothing is ever dropped — existing
//     clients keep their fence-certification semantics unchanged.
//   - Acked batches (MsgBatchAcked) try TryAcquire and are shed whole
//     when the queue is full: the server answers MsgBatchAck(applied=
//     false) without applying (or journaling) any message of the
//     batch. There is no partial outcome by construction.
//
// The zero IngestQueue is not usable; call NewIngestQueue.
type IngestQueue struct {
	sem chan struct{}
}

// NewIngestQueue returns a queue admitting up to capacity concurrent
// batches. Capacity must be positive.
func NewIngestQueue(capacity int) *IngestQueue {
	if capacity < 1 {
		panic("transport: ingest queue capacity must be positive")
	}
	return &IngestQueue{sem: make(chan struct{}, capacity)}
}

// Acquire blocks until a slot is free and takes it.
func (q *IngestQueue) Acquire() { q.sem <- struct{}{} }

// TryAcquire takes a slot if one is free and reports whether it did.
func (q *IngestQueue) TryAcquire() bool {
	select {
	case q.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release frees a slot taken by Acquire or a successful TryAcquire.
func (q *IngestQueue) Release() { <-q.sem }

// Depth returns the number of slots currently held.
func (q *IngestQueue) Depth() int { return len(q.sem) }

// Capacity returns the queue's slot count.
func (q *IngestQueue) Capacity() int { return cap(q.sem) }
