package transport

import (
	"net"
	"sync"
	"testing"

	"rtf/internal/persist"
	"rtf/internal/protocol"
	"rtf/internal/rng"
)

// connReports builds a deterministic stream of valid wire messages for
// one simulated connection: a few hellos followed by reports.
func connReports(seed uint64, d, n int) []Msg {
	g := rng.New(seed, 41)
	ms := make([]Msg, 0, n+4)
	for u := 0; u < 4; u++ {
		ms = append(ms, Hello(int(seed)*1000+u, g.IntN(7)))
	}
	for i := 0; i < n; i++ {
		h := g.IntN(7)
		bit := int8(1)
		if g.Bernoulli(0.5) {
			bit = -1
		}
		ms = append(ms, FromReport(protocol.Report{
			User: int(seed)*1000 + i, Order: h, J: 1 + g.IntN(d>>uint(h)), Bit: bit,
		}))
	}
	return ms
}

// TestIngestServerEndToEnd drives the full batch-ingest service over
// real TCP: several concurrent connections ship batched reports with
// interleaved online queries, and the final estimates must match a
// serial in-process server bit for bit.
func TestIngestServerEndToEnd(t *testing.T) {
	const (
		d     = 64
		scale = 3.25
		conns = 4
		perC  = 2500
		batch = 64
	)
	srv := NewIngestServer(NewShardedCollector(protocol.NewSharded(d, scale, conns)))
	srv.ErrorLog = func(err error) { t.Error(err) }
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0", ready) }()
	addr := (<-ready).String()

	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			enc := NewEncoder(conn)
			dec := NewDecoder(conn)
			ms := connReports(uint64(c), d, perC)
			for lo := 0; lo < len(ms); lo += batch {
				hi := min(lo+batch, len(ms))
				if err := enc.EncodeBatch(ms[lo:hi]); err != nil {
					t.Error(err)
					return
				}
				// Interleave an online query to exercise the live path.
				if lo/batch == 3 {
					if err := enc.Encode(Query(d / 2)); err != nil {
						t.Error(err)
						return
					}
					if err := enc.Flush(); err != nil {
						t.Error(err)
						return
					}
					resp, err := dec.Next()
					if err != nil {
						t.Error(err)
						return
					}
					if resp.Type != MsgEstimate || resp.T != d/2 {
						t.Errorf("conn %d: bad query response %+v", c, resp)
					}
				}
			}
			// Fence: the server handles frames in order per connection, so
			// a query response proves every batch above has been applied.
			if err := enc.Encode(Query(1)); err != nil {
				t.Error(err)
				return
			}
			if err := enc.Flush(); err != nil {
				t.Error(err)
				return
			}
			if _, err := dec.Next(); err != nil {
				t.Error(err)
			}
		}(c)
	}
	wg.Wait()

	// Serial reference: the same messages through a plain Server.
	serial := protocol.NewServer(d, scale)
	for c := 0; c < conns; c++ {
		for _, m := range connReports(uint64(c), d, perC) {
			switch m.Type {
			case MsgHello:
				serial.Register(m.Order)
			case MsgReport:
				serial.Ingest(m.Report())
			}
		}
	}

	// Query every period over a fresh connection.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(conn)
	dec := NewDecoder(conn)
	for tt := 1; tt <= d; tt++ {
		if err := enc.Encode(Query(tt)); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	for tt := 1; tt <= d; tt++ {
		resp, err := dec.Next()
		if err != nil {
			t.Fatal(err)
		}
		if want := serial.EstimateAt(tt); resp.Value != want || resp.T != tt {
			t.Fatalf("estimate at %d: got %+v, want %v", tt, resp, want)
		}
	}
	conn.Close()

	hellos, reports, _ := srv.Collector.Stats()
	if hellos != conns*4 || reports != conns*perC {
		t.Fatalf("stats: got %d hellos, %d reports", hellos, reports)
	}
	if got, want := srv.Collector.Acc().Users(), conns*4; got != want {
		t.Fatalf("users: got %d, want %d", got, want)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestIngestServerBatchAtomicity is the regression test for the
// split-run atomicity bug: a batch of [reports…, malformed query,
// reports…] used to apply (and, under a DurableCollector, journal) the
// prefix before the query's validation dropped the connection. The
// whole batch must now be rejected up front: nothing applied to the
// accumulator, nothing journaled to the write-ahead log.
func TestIngestServerBatchAtomicity(t *testing.T) {
	const d, scale = 16, 2.0
	mixed := []Msg{
		Hello(1, 2),
		FromReport(protocol.Report{User: 1, Order: 0, J: 3, Bit: 1}),
		QueryV2(QueryWindow, 1, d+5), // out of range: poisons the batch
		FromReport(protocol.Report{User: 2, Order: 0, J: 4, Bit: 1}),
	}
	// The same check with a v1 query out of range.
	mixedV1 := []Msg{
		Hello(3, 1),
		Query(d + 1),
		FromReport(protocol.Report{User: 3, Order: 1, J: 2, Bit: -1}),
	}

	sendAndExpectDrop := func(t *testing.T, addr string, batch []Msg) {
		t.Helper()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		enc := NewEncoder(conn)
		if err := enc.EncodeBatch(batch); err != nil {
			t.Fatal(err)
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 1)
		if _, err := conn.Read(buf); err == nil {
			t.Fatal("expected the server to drop the connection")
		}
	}
	checkUntouched := func(t *testing.T, col BatchCollector) {
		t.Helper()
		hellos, reports, batches := col.Stats()
		if hellos != 0 || reports != 0 || batches != 0 {
			t.Fatalf("invalid batch left state behind: %d hellos, %d reports, %d batches", hellos, reports, batches)
		}
		if got := col.Acc().Users(); got != 0 {
			t.Fatalf("invalid batch registered %d users", got)
		}
		for tt := 1; tt <= d; tt++ {
			if est := col.Acc().EstimateAt(tt); est != 0 {
				t.Fatalf("invalid batch moved the estimate at t=%d to %v", tt, est)
			}
		}
	}

	t.Run("in-memory", func(t *testing.T) {
		col := NewShardedCollector(protocol.NewSharded(d, scale, 2))
		srv := NewIngestServer(col)
		ready := make(chan net.Addr, 1)
		done := make(chan error, 1)
		go func() { done <- srv.ListenAndServe("127.0.0.1:0", ready) }()
		addr := (<-ready).String()
		sendAndExpectDrop(t, addr, mixed)
		sendAndExpectDrop(t, addr, mixedV1)
		checkUntouched(t, col)
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	})

	t.Run("durable", func(t *testing.T) {
		dir := t.TempDir()
		meta := persist.Meta{Mechanism: "test", D: d, K: 2, Eps: 1, Scale: scale}
		col, _, err := OpenDurable(protocol.NewSharded(d, scale, 2), dir, meta, DurableOptions{})
		if err != nil {
			t.Fatal(err)
		}
		srv := NewIngestServer(col)
		ready := make(chan net.Addr, 1)
		done := make(chan error, 1)
		go func() { done <- srv.ListenAndServe("127.0.0.1:0", ready) }()
		addr := (<-ready).String()
		sendAndExpectDrop(t, addr, mixed)
		checkUntouched(t, col)
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
		if err := <-done; err != nil {
			t.Fatal(err)
		}
		if err := col.Close(); err != nil {
			t.Fatal(err)
		}
		// The WAL must be empty: a fresh recovery replays nothing.
		col2, rec, err := OpenDurable(protocol.NewSharded(d, scale, 2), dir, meta, DurableOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer col2.Close()
		if rec.Replayed != 0 || rec.Hellos != 0 || rec.Reports != 0 {
			t.Fatalf("invalid batch reached the WAL: replayed %d records (%d hellos, %d reports)",
				rec.Replayed, rec.Hellos, rec.Reports)
		}
	})
}

// TestIngestServerBadInput checks that a malformed connection is closed
// without taking down the server, and valid traffic still flows.
func TestIngestServerBadInput(t *testing.T) {
	srv := NewIngestServer(NewShardedCollector(protocol.NewSharded(16, 1, 2)))
	var mu sync.Mutex
	var errs []error
	srv.ErrorLog = func(err error) { mu.Lock(); errs = append(errs, err); mu.Unlock() }
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0", ready) }()
	addr := (<-ready).String()

	// Garbage connection: unknown type byte.
	bad, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Write([]byte{42, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// The server should close it on us.
	buf := make([]byte, 1)
	if _, err := bad.Read(buf); err == nil {
		t.Fatal("expected server to close the bad connection")
	}
	bad.Close()

	// A good connection still works.
	good, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(good)
	dec := NewDecoder(good)
	if err := enc.EncodeBatch([]Msg{Hello(1, 2), FromReport(protocol.Report{Order: 0, J: 5, Bit: 1})}); err != nil {
		t.Fatal(err)
	}
	// C(5) = {I{2,1}, I{0,5}}, so the report at I{0,5} is visible at t=5.
	if err := enc.Encode(Query(5)); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	resp, err := dec.Next()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != MsgEstimate || resp.Value != 1 {
		t.Fatalf("bad response %+v", resp)
	}
	good.Close()

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(errs) == 0 {
		t.Fatal("expected the bad connection to be logged")
	}
}
