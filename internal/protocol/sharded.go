package protocol

import (
	"fmt"
	"math"
	"sync/atomic"

	"rtf/internal/dyadic"
)

// Sharded is a lock-free sharded accumulator for Algorithm 2: the same
// one-counter-per-dyadic-interval state as Server, split into shards so
// that many ingestion goroutines can accumulate reports concurrently
// without a mutex. All mutation is done with atomic adds, so any
// goroutine may write to any shard; callers route by shard index (e.g.
// connection id modulo NumShards) purely to keep hot counters on
// distinct cache lines.
//
// Because ingestion only ever adds ±1 into int64 counters, addition is
// exact, commutative and associative: estimates from a Sharded
// accumulator are bit-for-bit identical to a serial Server fed the same
// reports in any order. The parallel simulation engine and the
// rtf-serve batch-ingest service are both built on this type.
type Sharded struct {
	d      int
	scale  float64
	tree   *dyadic.Tree
	shards []accShard
}

// accShard is one shard's counters. The slices are allocated separately
// per shard, so concurrent writers on different shards touch disjoint
// cache lines.
type accShard struct {
	sums     []int64 // Σ of ±1 report bits, one per dyadic interval (atomic)
	users    int64   // registered users (atomic)
	perOrder []int64 // registered users per order (atomic)
	version  int64   // monotone mutation counter (atomic), see Version
}

// NewSharded builds a sharded accumulator for horizon d with the given
// estimator scale and shard count (at least 1).
func NewSharded(d int, scale float64, shards int) *Sharded {
	if !dyadic.IsPow2(d) {
		panic(fmt.Sprintf("protocol: d=%d not a power of two", d))
	}
	if scale <= 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		panic(fmt.Sprintf("protocol: invalid estimator scale %v", scale))
	}
	if shards < 1 {
		panic(fmt.Sprintf("protocol: shard count %d < 1", shards))
	}
	tr := dyadic.NewTree(d)
	sh := make([]accShard, shards)
	for i := range sh {
		sh[i] = accShard{
			sums:     make([]int64, tr.Size()),
			perOrder: make([]int64, dyadic.NumOrders(d)),
		}
	}
	return &Sharded{d: d, scale: scale, tree: tr, shards: sh}
}

// NumShards returns the number of shards.
func (s *Sharded) NumShards() int { return len(s.shards) }

// D returns the horizon.
func (s *Sharded) D() int { return s.d }

// Scale returns the estimator scale.
func (s *Sharded) Scale() float64 { return s.scale }

// Tree returns the dyadic index used by this accumulator.
func (s *Sharded) Tree() *dyadic.Tree { return s.tree }

func (s *Sharded) shard(i int) *accShard {
	// In-range shard ids (every caller in practice) skip the divide;
	// the modulo is only a fallback for oversized ids.
	if uint(i) < uint(len(s.shards)) {
		return &s.shards[i]
	}
	return &s.shards[i%len(s.shards)]
}

// Register records a user's sampled order into the given shard.
func (s *Sharded) Register(shard, order int) {
	sh := s.shard(shard)
	if order < 0 || order >= len(sh.perOrder) {
		panic(fmt.Sprintf("protocol: order %d out of range", order))
	}
	atomic.AddInt64(&sh.users, 1)
	atomic.AddInt64(&sh.perOrder[order], 1)
	atomic.AddInt64(&sh.version, 1)
}

// Ingest accumulates one report into the given shard.
func (s *Sharded) Ingest(shard int, r Report) {
	if r.Bit != 1 && r.Bit != -1 {
		panic(fmt.Sprintf("protocol: report bit %d not ±1", r.Bit))
	}
	flat := s.tree.FlatIndex(dyadic.Interval{Order: r.Order, Index: r.J})
	atomic.AddInt64(&s.shard(shard).sums[flat], int64(r.Bit))
}

// IngestSum adds a pre-aggregated sum of ±1 bits for one interval into
// the given shard.
func (s *Sharded) IngestSum(shard int, iv dyadic.Interval, sum int64) {
	sh := s.shard(shard)
	atomic.AddInt64(&sh.sums[s.tree.FlatIndex(iv)], sum)
	atomic.AddInt64(&sh.version, 1)
}

// AdvanceVersion bumps the given shard's mutation counter. Ingest is
// deliberately version-silent — a second atomic add per report would
// roughly double the hot-path cost — so writers that batch raw reports
// call AdvanceVersion once per applied batch instead. Every collector in
// internal/transport does this; raw Ingest callers that want their
// writes visible to version-stamped caches must do the same.
func (s *Sharded) AdvanceVersion(shard int) {
	atomic.AddInt64(&s.shard(shard).version, 1)
}

// Version folds the per-shard mutation counters into one monotone
// stamp. Each component only grows, so the sum observed by a reader can
// only grow; if two Version calls bracketing a derived computation
// return the same value, no Register/IngestSum/MergeRaw/AdvanceVersion
// completed in between, and the derived result may be served again
// verbatim. At quiescence (all writers' batches applied and advanced)
// an unchanged stamp therefore certifies bit-for-bit freshness.
func (s *Sharded) Version() uint64 {
	var v int64
	for i := range s.shards {
		v += atomic.LoadInt64(&s.shards[i].version)
	}
	return uint64(v)
}

// Users returns the number of registered users across all shards.
func (s *Sharded) Users() int {
	var n int64
	for i := range s.shards {
		n += atomic.LoadInt64(&s.shards[i].users)
	}
	return int(n)
}

// intervalSum folds one interval's counter across shards. Pure int64
// addition, so the result is independent of shard assignment.
func (s *Sharded) intervalSum(flat int) int64 {
	var sum int64
	for i := range s.shards {
		sum += atomic.LoadInt64(&s.shards[i].sums[flat])
	}
	return sum
}

// EstimateAt returns â[t] via the dyadic decomposition C(t), reading the
// live counters. It is safe to call concurrently with ingestion: each
// counter is loaded atomically, and the per-interval totals are summed
// in the same decomposition order as Server.EstimateAt, so a quiesced
// Sharded accumulator agrees with the serial server bit for bit.
func (s *Sharded) EstimateAt(t int) float64 {
	var est float64
	for _, iv := range dyadic.Decompose(t, s.d) {
		est += s.scale * float64(s.intervalSum(s.tree.FlatIndex(iv)))
	}
	return est
}

// EstimateSeries returns â[1..d] from the live counters, with the same
// prefix recurrence and float addition order as Server.EstimateSeries,
// so a quiesced accumulator agrees with the serial server bit for bit.
func (s *Sharded) EstimateSeries() []float64 {
	return s.EstimateSeriesTo(s.d)
}

// EstimateSeriesTo returns â[1..r]. The prefix recurrence at t only
// reads earlier entries, so the truncated series is bit-for-bit a
// prefix of EstimateSeries at a fraction of the cross-shard folds —
// the window-query path of the ingest server relies on this.
func (s *Sharded) EstimateSeriesTo(r int) []float64 {
	if r < 1 || r > s.d {
		panic(fmt.Sprintf("protocol: series bound %d out of range [1..%d]", r, s.d))
	}
	out := make([]float64, r)
	for t := 1; t <= r; t++ {
		low := t & (-t)
		h := dyadic.Log2(low)
		est := s.scale * float64(s.intervalSum(s.tree.FlatIndex(dyadic.Interval{Order: h, Index: t >> uint(h)})))
		if prev := t - low; prev > 0 {
			est += out[prev-1]
		}
		out[t-1] = est
	}
	return out
}

// EstimateChange returns the unbiased estimate of a[r] − a[l−1] over the
// direct dyadic cover of [l..r], mirroring Server.EstimateChange on the
// live counters.
func (s *Sharded) EstimateChange(l, r int) float64 {
	var est float64
	for _, iv := range dyadic.DecomposeRange(l, r, s.d) {
		est += s.scale * float64(s.intervalSum(s.tree.FlatIndex(iv)))
	}
	return est
}

// Fold returns the accumulator's raw state summed across shards: the
// registered-user count, the per-order user counts, and the per-interval
// bit sums (flat tree order). Counters are loaded atomically, but a fold
// taken concurrently with ingestion is not a point-in-time cut across
// intervals; quiesce (or fence) ingestion first when exactness matters.
// These are the exact integers a cluster gateway ships between nodes:
// because the estimator is a fixed linear function of them, merging raw
// sums across machines reproduces a single serial server bit for bit,
// which merging scaled float answers would not.
func (s *Sharded) Fold() (users int64, perOrder, sums []int64) {
	perOrder = make([]int64, len(s.shards[0].perOrder))
	sums = make([]int64, len(s.shards[0].sums))
	for i := range s.shards {
		sh := &s.shards[i]
		users += atomic.LoadInt64(&sh.users)
		for h := range sh.perOrder {
			perOrder[h] += atomic.LoadInt64(&sh.perOrder[h])
		}
		for f := range sh.sums {
			sums[f] += atomic.LoadInt64(&sh.sums[f])
		}
	}
	return users, perOrder, sums
}

// MergeRaw folds raw accumulator state — a user count, per-order user
// counts and per-interval bit sums as produced by Fold or shipped from
// another machine — into shard 0, the sharded counterpart of
// Server.MergeRaw. Shard assignment never affects estimates (addition
// is exact and commutative), so merging into one shard is equivalent to
// replaying the original ingestion. It fails, without modifying the
// accumulator, on mismatched lengths or negative counts.
func (s *Sharded) MergeRaw(users int64, perOrder, sums []int64) error {
	sh := &s.shards[0]
	if users < 0 {
		return fmt.Errorf("protocol: merging negative user count %d", users)
	}
	if len(perOrder) != len(sh.perOrder) {
		return fmt.Errorf("protocol: merging %d per-order counts into an accumulator with %d orders", len(perOrder), len(sh.perOrder))
	}
	if len(sums) != len(sh.sums) {
		return fmt.Errorf("protocol: merging %d interval sums into an accumulator with %d intervals", len(sums), len(sh.sums))
	}
	for h, c := range perOrder {
		if c < 0 {
			return fmt.Errorf("protocol: merging negative count %d at order %d", c, h)
		}
	}
	for f, v := range sums {
		atomic.AddInt64(&sh.sums[f], v)
	}
	atomic.AddInt64(&sh.users, users)
	for h, c := range perOrder {
		atomic.AddInt64(&sh.perOrder[h], c)
	}
	atomic.AddInt64(&sh.version, 1)
	return nil
}

// Snapshot folds the current shard state into a fresh serial Server,
// from which the full estimate series, range estimates and consistency
// post-processing are available. Counters are loaded atomically, but a
// snapshot taken concurrently with ingestion is not a point-in-time cut
// across intervals; quiesce ingestion first when exactness across the
// whole tree matters.
func (s *Sharded) Snapshot() *Server {
	srv := NewServer(s.d, s.scale)
	srv.MergeSharded(s)
	return srv
}

// MergeSharded folds a sharded accumulator's state into s, the same way
// Merge folds another serial server. Both must have the same horizon and
// scale.
func (s *Server) MergeSharded(o *Sharded) {
	if o.d != s.d || o.scale != s.scale {
		panic("protocol: merging incompatible servers")
	}
	for i := range o.shards {
		sh := &o.shards[i]
		for flat := range sh.sums {
			s.sums[flat] += atomic.LoadInt64(&sh.sums[flat])
		}
		s.users += int(atomic.LoadInt64(&sh.users))
		for h := range sh.perOrder {
			s.perOrder[h] += int(atomic.LoadInt64(&sh.perOrder[h]))
		}
	}
}
