package protocol

import (
	"bytes"
	"math"
	"testing"

	"rtf/internal/dyadic"
	"rtf/internal/rng"
)

// feedDomain drives a DomainSharded and a per-item []*Sharded set with
// the identical sequence of registers and ingests, so every test below
// compares the flat matrix against the layout it replaced.
func feedDomain(t *testing.T, d, m, shards, n int, seed uint64) (*DomainSharded, []*Sharded) {
	t.Helper()
	const scale = 2.5
	flat := NewDomainSharded(d, m, scale, shards)
	old := make([]*Sharded, m)
	for x := range old {
		old[x] = NewSharded(d, scale, shards)
	}
	g := rng.New(seed, 11)
	for i := 0; i < n; i++ {
		item := g.IntN(m)
		shard := g.IntN(shards)
		h := g.IntN(dyadic.NumOrders(d))
		if i%16 == 0 {
			flat.Register(shard, item, h)
			old[item].Register(shard, h)
			continue
		}
		bit := int8(1)
		if g.Bernoulli(0.5) {
			bit = -1
		}
		r := Report{User: i, Order: h, J: 1 + g.IntN(d>>uint(h)), Bit: bit}
		flat.Ingest(shard, item, r)
		old[item].Ingest(shard, r)
	}
	return flat, old
}

// TestDomainShardedMatchesPerItemLayout pins the tentpole claim of the
// flat counter matrix: every observable — estimates, folds, users,
// serialized state — is bit-for-bit identical to the per-item Sharded
// layout it replaced, fed the same reports.
func TestDomainShardedMatchesPerItemLayout(t *testing.T) {
	const d, m, shards = 64, 8, 3
	flat, old := feedDomain(t, d, m, shards, 6000, 41)

	if flat.Users() == 0 {
		t.Fatal("no users registered; test drove nothing")
	}
	for x := range old {
		if got, want := flat.UsersAt(x), old[x].Users(); got != want {
			t.Fatalf("UsersAt(%d) = %d, per-item layout has %d", x, got, want)
		}
	}

	// Estimates: per-item point estimates and the item-major sweep must
	// both reproduce the old layout's float64s exactly (same summands,
	// same order, same rounding).
	for tm := 1; tm <= d; tm++ {
		all := flat.EstimateAllAt(tm)
		for x := range old {
			want := old[x].EstimateAt(tm)
			if got := flat.EstimateAt(x, tm); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("EstimateAt(%d, %d) = %v, per-item layout %v", x, tm, got, want)
			}
			if math.Float64bits(all[x]) != math.Float64bits(want) {
				t.Fatalf("EstimateAllAt(%d)[%d] = %v, per-item layout %v", tm, x, all[x], want)
			}
		}
	}
	for x := range old {
		want := old[x].EstimateSeries()
		got := flat.EstimateSeries(x)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("EstimateSeries(%d)[%d] = %v, per-item layout %v", x, i, got[i], want[i])
			}
		}
	}

	// Folds: the raw integers a cluster gateway ships must be equal.
	for x := range old {
		wu, wp, ws := old[x].Fold()
		gu, gp, gs := flat.FoldItem(x)
		if gu != wu {
			t.Fatalf("FoldItem(%d) users = %d, want %d", x, gu, wu)
		}
		for i := range wp {
			if gp[i] != wp[i] {
				t.Fatalf("FoldItem(%d) perOrder[%d] = %d, want %d", x, i, gp[i], wp[i])
			}
		}
		for i := range ws {
			if gs[i] != ws[i] {
				t.Fatalf("FoldItem(%d) sums[%d] = %d, want %d", x, i, gs[i], ws[i])
			}
		}
	}

	// Serialized state: byte-identical payloads, so snapshots written
	// under either layout restore under the other.
	flatState := flat.MarshalState()
	oldState := MarshalDomainState(old)
	if !bytes.Equal(flatState, oldState) {
		t.Fatalf("MarshalState differs from MarshalDomainState: %d vs %d bytes", len(flatState), len(oldState))
	}
}

// TestDomainShardedStateCrossRestore round-trips snapshots across the
// two layouts in both directions: a flat snapshot restored into per-item
// accumulators and a per-item snapshot restored into a flat matrix must
// both reproduce identical estimates.
func TestDomainShardedStateCrossRestore(t *testing.T) {
	const d, m, shards = 32, 5, 2
	flat, old := feedDomain(t, d, m, shards, 3000, 97)
	state := flat.MarshalState()

	// Flat snapshot → fresh per-item accumulators.
	intoOld := make([]*Sharded, m)
	for x := range intoOld {
		intoOld[x] = NewSharded(d, flat.Scale(), 1)
	}
	if err := RestoreDomainState(intoOld, state); err != nil {
		t.Fatalf("RestoreDomainState(flat snapshot): %v", err)
	}
	// Per-item snapshot → fresh flat matrix.
	intoFlat := NewDomainSharded(d, m, flat.Scale(), 4)
	if err := intoFlat.RestoreState(MarshalDomainState(old)); err != nil {
		t.Fatalf("DomainSharded.RestoreState(per-item snapshot): %v", err)
	}

	for tm := 1; tm <= d; tm++ {
		for x := 0; x < m; x++ {
			want := old[x].EstimateAt(tm)
			if got := intoOld[x].EstimateAt(tm); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("restored per-item EstimateAt(%d, %d) = %v, want %v", x, tm, got, want)
			}
			if got := intoFlat.EstimateAt(x, tm); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("restored flat EstimateAt(%d, %d) = %v, want %v", x, tm, got, want)
			}
		}
	}
}

// TestDomainShardedMergeRawItem checks that merging one layout's folds
// into the other reproduces the source exactly — the cluster merge path
// is raw-integer addition in both layouts.
func TestDomainShardedMergeRawItem(t *testing.T) {
	const d, m, shards = 32, 4, 2
	flat, old := feedDomain(t, d, m, shards, 2000, 7)

	merged := NewDomainSharded(d, m, flat.Scale(), 1)
	for x := range old {
		u, p, s := old[x].Fold()
		if err := merged.MergeRawItem(x, u, p, s); err != nil {
			t.Fatalf("MergeRawItem(%d): %v", x, err)
		}
	}
	for tm := 1; tm <= d; tm++ {
		all := merged.EstimateAllAt(tm)
		for x := range old {
			want := old[x].EstimateAt(tm)
			if math.Float64bits(all[x]) != math.Float64bits(want) {
				t.Fatalf("merged EstimateAllAt(%d)[%d] = %v, want %v", tm, x, all[x], want)
			}
		}
	}
	if !bytes.Equal(merged.MarshalState(), flat.MarshalState()) {
		t.Fatal("merged flat state differs from directly ingested flat state")
	}

	// A malformed merge must reject without modifying anything.
	before := merged.MarshalState()
	u, p, s := old[0].Fold()
	if err := merged.MergeRawItem(0, u, p[:1], s); err == nil {
		t.Fatal("MergeRawItem accepted a short perOrder slice")
	}
	if err := merged.MergeRawItem(m+3, u, p, s); err == nil {
		t.Fatal("MergeRawItem accepted an out-of-range item")
	}
	if !bytes.Equal(before, merged.MarshalState()) {
		t.Fatal("failed merges modified state")
	}
}
