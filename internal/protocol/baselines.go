package protocol

import (
	"fmt"

	"rtf/internal/core"
	"rtf/internal/probmath"
	"rtf/internal/rng"
)

// ---------------------------------------------------------------------------
// Erlingsson et al. (2020) baseline, as described in Section 6.
//
// Each user keeps at most one of their ≤ k changes: the user pre-samples
// an index i ∈ [k] uniformly and, as changes occur, applies only the i-th
// one to a shadow stream (all other changes are dropped). The shadow
// stream therefore has at most one non-zero partial sum at any order; it
// is perturbed with the basic randomizer R at ε̃ = ε/2. Because every
// change survives with probability exactly 1/k — even for users with
// fewer than k changes — the server multiplies its estimator by k and
// remains unbiased.

// ErlingssonClient implements the baseline client.
type ErlingssonClient struct {
	user     int
	d, k     int
	order    int
	keepIdx  int // which change (1-based) survives sampling
	changes  int // changes seen so far in the true stream
	prevVal  uint8
	keptTime int  // time of the kept change (0 if none yet)
	keptSign int8 // sign of the kept coordinate of X_u: ±1
	inst     core.Instance
	t        int
}

// NewErlingssonClient builds a baseline client; the per-order factory
// table must contain basic-randomizer factories at ε̃ = ε/2 (see
// ErlingssonFactories).
func NewErlingssonClient(user, d, k int, factories []core.Factory, g *rng.RNG) *ErlingssonClient {
	if k < 1 {
		panic("protocol: Erlingsson baseline needs k >= 1")
	}
	h := SampleOrder(g, d)
	return &ErlingssonClient{
		user:    user,
		d:       d,
		k:       k,
		order:   h,
		keepIdx: 1 + g.IntN(k),
		inst:    factories[h].NewInstance(g),
	}
}

// Order returns the sampled order h_u.
func (c *ErlingssonClient) Order() int { return c.order }

// Observe consumes st_u[t] and emits a report at multiples of 2^h, like
// Client.Observe, but over the sparsified derivative X'_u, which keeps
// only the sampled change with its true sign (+1 for 0→1, −1 for 1→0).
// X'_u has a single non-zero coordinate, so the partial sum of order h at
// a reporting time t is keptSign if the kept change falls inside the
// interval (t−2^h, t], and 0 otherwise.
func (c *ErlingssonClient) Observe(v uint8) (Report, bool) {
	c.t++
	if c.t > c.d {
		panic("protocol: more observations than time periods")
	}
	if v > 1 {
		panic("protocol: stream value must be 0/1")
	}
	if v != c.prevVal {
		c.changes++
		if c.changes == c.keepIdx {
			c.keptTime = c.t
			c.keptSign = int8(2*int(v) - 1)
		}
		c.prevVal = v
	}
	width := 1 << uint(c.order)
	if c.t%width != 0 {
		return Report{}, false
	}
	var sum int8
	if c.keptTime > c.t-width && c.keptTime <= c.t {
		sum = c.keptSign
	}
	return Report{User: c.user, Order: c.order, J: c.t >> uint(c.order), Bit: c.inst.Perturb(sum)}, true
}

// ErlingssonFactories returns the per-order basic-randomizer table at
// ε̃ = ε/2 used by the baseline.
func ErlingssonFactories(d int, eps float64) ([]core.Factory, error) {
	return FactoryTable(d, 1, eps, func(l, _ int, _ float64) (core.Factory, error) {
		return core.NewBasicFactory(l, eps/2)
	})
}

// ErlingssonScale returns the baseline's estimator scale:
// k·(1+log₂ d)/c_gap with c_gap = (e^{ε/2}−1)/(e^{ε/2}+1).
func ErlingssonScale(d, k int, eps float64) float64 {
	return float64(k) * EstimatorScale(d, probmath.CGapBasic(eps/2))
}

// ---------------------------------------------------------------------------
// Naive budget-splitting baseline (Section 1): repeat a one-shot
// randomized-response protocol at every time period, spending ε/d each.

// NaiveSplitClient reports RR(st_u[t]) with budget ε/d at every t.
type NaiveSplitClient struct {
	user     int
	d        int
	keepProb float64
	g        *rng.RNG
	t        int
}

// NaiveReport is a per-period ±1 randomized response.
type NaiveReport struct {
	User int
	T    int
	Bit  int8
}

// NewNaiveSplitClient builds the baseline client. The per-report budget
// is eps/d so the composition over all d reports is ε-DP.
func NewNaiveSplitClient(user, d int, eps float64, g *rng.RNG) *NaiveSplitClient {
	if d < 1 || !(eps > 0) {
		panic(fmt.Sprintf("protocol: invalid naive-split params d=%d eps=%v", d, eps))
	}
	c := probmath.CGapBasic(eps / float64(d))
	return &NaiveSplitClient{user: user, d: d, keepProb: (1 + c) / 2, g: g}
}

// Observe consumes st_u[t] and always returns a report.
func (c *NaiveSplitClient) Observe(v uint8) NaiveReport {
	c.t++
	if c.t > c.d {
		panic("protocol: more observations than time periods")
	}
	if v > 1 {
		panic("protocol: stream value must be 0/1")
	}
	enc := int8(2*int(v) - 1) // 0/1 → ∓1
	if !c.g.Bernoulli(c.keepProb) {
		enc = -enc
	}
	return NaiveReport{User: c.user, T: c.t, Bit: enc}
}

// NaiveSplitServer debiases the per-period randomized responses:
// â[t] = n/2 + Σ_u bits[t] / (2·c_gap).
type NaiveSplitServer struct {
	d     int
	cgap  float64
	sums  []int64
	users int
}

// NewNaiveSplitServer builds the aggregator for per-report budget ε/d.
func NewNaiveSplitServer(d int, eps float64) *NaiveSplitServer {
	return &NaiveSplitServer{d: d, cgap: probmath.CGapBasic(eps / float64(d)), sums: make([]int64, d)}
}

// Register counts a participating user.
func (s *NaiveSplitServer) Register() { s.users++ }

// Users returns the number of registered users.
func (s *NaiveSplitServer) Users() int { return s.users }

// Ingest accumulates one report.
func (s *NaiveSplitServer) Ingest(r NaiveReport) {
	if r.T < 1 || r.T > s.d {
		panic("protocol: report time out of range")
	}
	s.sums[r.T-1] += int64(r.Bit)
}

// IngestSum adds a pre-aggregated per-period bit sum (fast simulation).
func (s *NaiveSplitServer) IngestSum(t int, sum int64) { s.sums[t-1] += sum }

// EstimateAt returns â[t].
func (s *NaiveSplitServer) EstimateAt(t int) float64 {
	return float64(s.users)/2 + float64(s.sums[t-1])/(2*s.cgap)
}

// EstimateSeries returns â[1..d].
func (s *NaiveSplitServer) EstimateSeries() []float64 {
	out := make([]float64, s.d)
	for t := 1; t <= s.d; t++ {
		out[t-1] = s.EstimateAt(t)
	}
	return out
}

// CGap returns the per-report preservation gap (e^{ε/d}−1)/(e^{ε/d}+1).
func (s *NaiveSplitServer) CGap() float64 { return s.cgap }
