package protocol

import (
	"sync"
	"testing"

	"rtf/internal/dyadic"
	"rtf/internal/rng"
)

// randomReports builds a deterministic batch of valid reports over [d].
func randomReports(g *rng.RNG, d, n int) []Report {
	out := make([]Report, n)
	for i := range out {
		h := SampleOrder(g, d)
		j := 1 + g.IntN(d>>uint(h))
		bit := int8(1)
		if g.Bernoulli(0.5) {
			bit = -1
		}
		out[i] = Report{User: i, Order: h, J: j, Bit: bit}
	}
	return out
}

// TestShardedMatchesSerial checks that concurrent sharded ingestion is
// bit-for-bit identical to a serial server fed the same reports.
func TestShardedMatchesSerial(t *testing.T) {
	const d, n, shards = 256, 20000, 8
	g := rng.New(1, 2)
	reports := randomReports(g, d, n)

	serial := NewServer(d, 3.5)
	for _, r := range reports {
		serial.Ingest(r)
	}
	for h := 0; h < dyadic.NumOrders(d); h++ {
		serial.Register(h)
	}

	acc := NewSharded(d, 3.5, shards)
	var wg sync.WaitGroup
	per := (n + shards - 1) / shards
	for s := 0; s < shards; s++ {
		lo, hi := s*per, min((s+1)*per, n)
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			for _, r := range reports[lo:hi] {
				// Deliberately scatter across shards: correctness must not
				// depend on shard assignment.
				acc.Ingest(r.User, r)
			}
		}(s, lo, hi)
	}
	wg.Wait()
	for h := 0; h < dyadic.NumOrders(d); h++ {
		acc.Register(h, h)
	}

	if got, want := acc.Users(), serial.Users(); got != want {
		t.Fatalf("Users: got %d, want %d", got, want)
	}
	for tt := 1; tt <= d; tt++ {
		if got, want := acc.EstimateAt(tt), serial.EstimateAt(tt); got != want {
			t.Fatalf("EstimateAt(%d): got %v, want %v", tt, got, want)
		}
	}

	snap := acc.Snapshot()
	se, we := snap.EstimateSeries(), serial.EstimateSeries()
	for i := range se {
		if se[i] != we[i] {
			t.Fatalf("series[%d]: got %v, want %v", i, se[i], we[i])
		}
	}
	for h := 0; h < dyadic.NumOrders(d); h++ {
		if snap.UsersAtOrder(h) != serial.UsersAtOrder(h) {
			t.Fatalf("UsersAtOrder(%d): got %d, want %d", h, snap.UsersAtOrder(h), serial.UsersAtOrder(h))
		}
	}
}

// TestShardedQueryMethodsMatchSerial checks the live series and range
// estimates against the serial server, bit for bit — the invariant the
// v2 query path of rtf-serve relies on.
func TestShardedQueryMethodsMatchSerial(t *testing.T) {
	const d, n, shards = 128, 10000, 4
	g := rng.New(3, 4)
	reports := randomReports(g, d, n)

	serial := NewServer(d, 2.25)
	acc := NewSharded(d, 2.25, shards)
	for i, r := range reports {
		serial.Ingest(r)
		acc.Ingest(i, r)
	}

	se, we := acc.EstimateSeries(), serial.EstimateSeries()
	for i := range we {
		if se[i] != we[i] {
			t.Fatalf("series[%d]: got %v, want %v", i, se[i], we[i])
		}
	}
	ranges := [][2]int{{1, 1}, {1, d}, {5, 12}, {d / 2, d/2 + 1}, {17, 90}}
	for _, lr := range ranges {
		if got, want := acc.EstimateChange(lr[0], lr[1]), serial.EstimateChange(lr[0], lr[1]); got != want {
			t.Fatalf("EstimateChange(%d,%d): got %v, want %v", lr[0], lr[1], got, want)
		}
	}
	for _, r := range []int{1, 7, d / 2, d} {
		to := acc.EstimateSeriesTo(r)
		if len(to) != r {
			t.Fatalf("EstimateSeriesTo(%d): length %d", r, len(to))
		}
		for i := range to {
			if to[i] != we[i] {
				t.Fatalf("EstimateSeriesTo(%d)[%d]: got %v, want %v", r, i, to[i], we[i])
			}
		}
	}
}

// TestMergeShardedIntoNonEmpty checks that folding adds to, rather than
// replaces, existing server state.
func TestMergeShardedIntoNonEmpty(t *testing.T) {
	const d = 16
	iv := dyadic.Interval{Order: 1, Index: 3}
	srv := NewServer(d, 2)
	srv.IngestSum(iv, 5)
	acc := NewSharded(d, 2, 4)
	acc.IngestSum(2, iv, 7)
	srv.MergeSharded(acc)
	if got, want := srv.IntervalEstimate(iv), 2*float64(12); got != want {
		t.Fatalf("merged estimate: got %v, want %v", got, want)
	}
}

// TestShardedPanics checks argument validation.
func TestShardedPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("d not pow2", func() { NewSharded(7, 1, 1) })
	mustPanic("zero shards", func() { NewSharded(8, 1, 0) })
	mustPanic("bad scale", func() { NewSharded(8, 0, 1) })
	acc := NewSharded(8, 1, 2)
	mustPanic("bad bit", func() { acc.Ingest(0, Report{Order: 0, J: 1, Bit: 0}) })
	mustPanic("bad order", func() { acc.Register(0, 99) })
	srv := NewServer(16, 1)
	mustPanic("incompatible merge", func() { srv.MergeSharded(acc) })
}
