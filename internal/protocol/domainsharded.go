package protocol

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"

	"rtf/internal/dyadic"
)

// DomainSharded is the flat-matrix accumulator behind domain-valued
// tracking: the counters of m independent dyadic accumulators (one per
// domain item) stored as one contiguous [m × intervals] int64 matrix
// per shard, instead of m separately allocated Sharded structs. A
// report lands with a single index computation — item·rowLen + flat —
// and one atomic add, with no pointer chase through a per-item struct,
// and whole-domain sweeps (fold, merge, the top-k estimate pass) walk
// flat rows in item-major order, which is what keeps server-side
// aggregation cheap as the domain grows.
//
// The semantics are exactly m Sharded accumulators sharing one scale:
// all mutation is atomic ±1 (or exact integer) addition, so estimates
// are bit-for-bit identical to m serial servers fed the same reports in
// any order, and FoldItem/MergeRawItem ship the same raw integers a
// cluster gateway exchanges between nodes. MarshalState emits the
// identical kind-3 domain payload that MarshalDomainState produces over
// per-item Sharded accumulators, so snapshots written under either
// layout restore interchangeably.
//
// Like Sharded it panics on out-of-range items, orders and bits; the
// hh, ldp and transport layers validate at their boundaries.
type DomainSharded struct {
	d, m   int
	scale  float64
	tree   *dyadic.Tree
	sumRow int // interval counters per item row
	ordRow int // per-order counters per item row
	shards []domainShard
}

// domainShard is one shard's counter matrix. The slices are allocated
// separately per shard so concurrent writers on different shards touch
// disjoint cache lines; within a shard, item x's counters occupy the
// contiguous rows sums[x·sumRow : (x+1)·sumRow] and
// perOrder[x·ordRow : (x+1)·ordRow].
type domainShard struct {
	sums     []int64 // m × sumRow, item-major (atomic)
	perOrder []int64 // m × ordRow, item-major (atomic)
	users    []int64 // one registered-user count per item (atomic)
	version  int64   // monotone mutation counter (atomic), see Version
}

// NewDomainSharded builds a flat domain accumulator for horizon d (a
// power of two) over m items with the given per-item estimator scale
// and shard count (at least 1; shard assignment never affects
// estimates).
func NewDomainSharded(d, m int, scale float64, shards int) *DomainSharded {
	if !dyadic.IsPow2(d) {
		panic(fmt.Sprintf("protocol: d=%d not a power of two", d))
	}
	if m < 2 {
		panic(fmt.Sprintf("protocol: domain size m=%d must be at least 2", m))
	}
	if scale <= 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		panic(fmt.Sprintf("protocol: invalid estimator scale %v", scale))
	}
	if shards < 1 {
		panic(fmt.Sprintf("protocol: shard count %d < 1", shards))
	}
	tr := dyadic.NewTree(d)
	s := &DomainSharded{
		d: d, m: m, scale: scale, tree: tr,
		sumRow: tr.Size(),
		ordRow: dyadic.NumOrders(d),
		shards: make([]domainShard, shards),
	}
	for i := range s.shards {
		s.shards[i] = domainShard{
			sums:     make([]int64, m*s.sumRow),
			perOrder: make([]int64, m*s.ordRow),
			users:    make([]int64, m),
		}
	}
	return s
}

// NumShards returns the number of shards.
func (s *DomainSharded) NumShards() int { return len(s.shards) }

// D returns the horizon.
func (s *DomainSharded) D() int { return s.d }

// M returns the domain size.
func (s *DomainSharded) M() int { return s.m }

// Scale returns the per-item estimator scale.
func (s *DomainSharded) Scale() float64 { return s.scale }

func (s *DomainSharded) shard(i int) *domainShard {
	// In-range shard ids (every caller in practice) skip the divide;
	// the modulo is only a fallback for oversized ids.
	if uint(i) < uint(len(s.shards)) {
		return &s.shards[i]
	}
	return &s.shards[i%len(s.shards)]
}

func (s *DomainSharded) checkItem(item int) {
	if item < 0 || item >= s.m {
		panic(fmt.Sprintf("protocol: item %d outside [0..%d)", item, s.m))
	}
}

// Register records a user's announced (item, order) pair into the given
// shard.
func (s *DomainSharded) Register(shard, item, order int) {
	s.checkItem(item)
	if order < 0 || order >= s.ordRow {
		panic(fmt.Sprintf("protocol: order %d out of range", order))
	}
	sh := s.shard(shard)
	atomic.AddInt64(&sh.users[item], 1)
	atomic.AddInt64(&sh.perOrder[item*s.ordRow+order], 1)
	atomic.AddInt64(&sh.version, 1)
}

// AdvanceVersion bumps the given shard's mutation counter. Ingest is
// deliberately version-silent — a second atomic add per report would
// roughly double the one-index-one-add hot path — so writers that batch
// reports call AdvanceVersion once per applied batch instead. Every
// collector in internal/transport does this; raw Ingest callers that
// want their writes visible to version-stamped caches must do the same.
func (s *DomainSharded) AdvanceVersion(shard int) {
	atomic.AddInt64(&s.shard(shard).version, 1)
}

// Version folds the per-shard mutation counters into one monotone
// stamp. Each component only grows, so the sum observed by a reader can
// only grow; if two Version calls bracketing a derived computation
// return the same value, no Register/MergeRawItem/RestoreState/
// AdvanceVersion completed in between, and the derived result may be
// served again verbatim. At quiescence (all writers' batches applied
// and advanced) an unchanged stamp therefore certifies bit-for-bit
// freshness.
func (s *DomainSharded) Version() uint64 {
	var v int64
	for i := range s.shards {
		v += atomic.LoadInt64(&s.shards[i].version)
	}
	return uint64(v)
}

// Ingest accumulates one report for the given item into the given
// shard: one index computation, one atomic add. The item and bit
// checks share one branch with the message construction outlined, so
// Ingest inlines into the collector batch loops.
func (s *DomainSharded) Ingest(shard, item int, r Report) {
	if uint(item) >= uint(s.m) || (r.Bit != 1 && r.Bit != -1) {
		s.ingestPanic(item, r)
	}
	flat := s.tree.FlatIndex(dyadic.Interval{Order: r.Order, Index: r.J})
	atomic.AddInt64(&s.shard(shard).sums[item*s.sumRow+flat], int64(r.Bit))
}

// ingestPanic reproduces Ingest's panic messages for an invalid item
// or bit, outlined to keep Ingest under the inlining budget.
func (s *DomainSharded) ingestPanic(item int, r Report) {
	s.checkItem(item)
	panic(fmt.Sprintf("protocol: report bit %d not ±1", r.Bit))
}

// Users returns the number of registered users across all items.
func (s *DomainSharded) Users() int {
	var n int64
	for i := range s.shards {
		for _, u := range s.shards[i].users {
			n += atomic.LoadInt64(&u)
		}
	}
	return int(n)
}

// UsersAt returns the number of users whose sampled target is item.
func (s *DomainSharded) UsersAt(item int) int {
	s.checkItem(item)
	var n int64
	for i := range s.shards {
		n += atomic.LoadInt64(&s.shards[i].users[item])
	}
	return int(n)
}

// itemSum folds one item's counter for one flat interval index across
// shards. Pure int64 addition, so the result is independent of shard
// assignment.
func (s *DomainSharded) itemSum(item, flat int) int64 {
	var sum int64
	off := item*s.sumRow + flat
	for i := range s.shards {
		sum += atomic.LoadInt64(&s.shards[i].sums[off])
	}
	return sum
}

// EstimateAt returns item's â[t] via the dyadic decomposition C(t),
// reading the live counters — the same decomposition order and float
// addition order as Sharded.EstimateAt, so a flat accumulator agrees
// bit for bit with per-item Sharded accumulators fed the same reports.
func (s *DomainSharded) EstimateAt(item, t int) float64 {
	s.checkItem(item)
	var est float64
	for _, iv := range dyadic.Decompose(t, s.d) {
		est += s.scale * float64(s.itemSum(item, s.tree.FlatIndex(iv)))
	}
	return est
}

// EstimateAllAt returns every item's â[t] in one item-major sweep over
// the flat counter rows. For each decomposition interval the per-item
// cross-shard integer sums are folded first, then scaled and
// accumulated — the identical float operations, in the identical
// order, as calling EstimateAt once per item, so the two are
// bit-for-bit equal; the sweep just touches each shard's matrix
// sequentially instead of chasing m separate accumulators. The caller
// owns the slice.
func (s *DomainSharded) EstimateAllAt(t int) []float64 {
	return s.EstimateAllAtInto(make([]float64, s.m), make([]int64, s.m), t)
}

// EstimateAllAtInto is EstimateAllAt sweeping into caller-owned
// buffers: est and tmp must both have length m (est is overwritten, tmp
// is scratch). It returns est. The memoized read path in internal/hh
// uses this to keep repeated sweeps allocation-free.
func (s *DomainSharded) EstimateAllAtInto(est []float64, tmp []int64, t int) []float64 {
	if t < 1 || t > s.d {
		panic(fmt.Sprintf("protocol: time %d out of range [1..%d]", t, s.d))
	}
	if len(est) != s.m || len(tmp) != s.m {
		panic(fmt.Sprintf("protocol: estimate buffers of length %d/%d for domain size %d", len(est), len(tmp), s.m))
	}
	for x := range est {
		est[x] = 0
	}
	for _, iv := range dyadic.Decompose(t, s.d) {
		flat := s.tree.FlatIndex(iv)
		for x := range tmp {
			tmp[x] = 0
		}
		for i := range s.shards {
			sums := s.shards[i].sums
			for x := 0; x < s.m; x++ {
				tmp[x] += atomic.LoadInt64(&sums[x*s.sumRow+flat])
			}
		}
		for x := 0; x < s.m; x++ {
			est[x] += s.scale * float64(tmp[x])
		}
	}
	return est
}

// EstimateSeries returns item's â[1..d] from the live counters.
func (s *DomainSharded) EstimateSeries(item int) []float64 {
	return s.EstimateSeriesTo(item, s.d)
}

// EstimateSeriesTo returns item's â[1..r] with the same prefix
// recurrence and float addition order as Sharded.EstimateSeriesTo, so
// the truncated series is bit-for-bit a prefix of EstimateSeries.
func (s *DomainSharded) EstimateSeriesTo(item, r int) []float64 {
	s.checkItem(item)
	if r < 1 || r > s.d {
		panic(fmt.Sprintf("protocol: series bound %d out of range [1..%d]", r, s.d))
	}
	out := make([]float64, r)
	for t := 1; t <= r; t++ {
		low := t & (-t)
		h := dyadic.Log2(low)
		est := s.scale * float64(s.itemSum(item, s.tree.FlatIndex(dyadic.Interval{Order: h, Index: t >> uint(h)})))
		if prev := t - low; prev > 0 {
			est += out[prev-1]
		}
		out[t-1] = est
	}
	return out
}

// FoldItem returns one item's raw accumulator state summed across
// shards — user count, per-order counts, per-interval bit sums in flat
// tree order — the exact integers a cluster gateway ships between
// nodes. Counters are loaded atomically, but a fold taken concurrently
// with ingestion is not a point-in-time cut; quiesce first when
// exactness matters.
func (s *DomainSharded) FoldItem(item int) (users int64, perOrder, sums []int64) {
	s.checkItem(item)
	perOrder = make([]int64, s.ordRow)
	sums = make([]int64, s.sumRow)
	s.foldItemInto(item, &users, perOrder, sums)
	return users, perOrder, sums
}

// foldItemInto accumulates one item's raw state into caller-owned
// buffers (which must be zeroed and correctly sized).
func (s *DomainSharded) foldItemInto(item int, users *int64, perOrder, sums []int64) {
	for i := range s.shards {
		sh := &s.shards[i]
		*users += atomic.LoadInt64(&sh.users[item])
		po := sh.perOrder[item*s.ordRow : (item+1)*s.ordRow]
		for h := range po {
			perOrder[h] += atomic.LoadInt64(&po[h])
		}
		row := sh.sums[item*s.sumRow : (item+1)*s.sumRow]
		for f := range row {
			sums[f] += atomic.LoadInt64(&row[f])
		}
	}
}

// MergeRawItem folds raw accumulator state — as produced by FoldItem,
// possibly on another machine — into one item's row of shard 0. Shard
// assignment never affects estimates (addition is exact and
// commutative), so merging into one shard is equivalent to replaying
// the original ingestion. It fails, without modifying the accumulator,
// on mismatched lengths or negative counts.
func (s *DomainSharded) MergeRawItem(item int, users int64, perOrder, sums []int64) error {
	if item < 0 || item >= s.m {
		return fmt.Errorf("protocol: item %d outside [0..%d)", item, s.m)
	}
	if users < 0 {
		return fmt.Errorf("protocol: merging negative user count %d", users)
	}
	if len(perOrder) != s.ordRow {
		return fmt.Errorf("protocol: merging %d per-order counts into an accumulator with %d orders", len(perOrder), s.ordRow)
	}
	if len(sums) != s.sumRow {
		return fmt.Errorf("protocol: merging %d interval sums into an accumulator with %d intervals", len(sums), s.sumRow)
	}
	for h, c := range perOrder {
		if c < 0 {
			return fmt.Errorf("protocol: merging negative count %d at order %d", c, h)
		}
	}
	sh := &s.shards[0]
	row := sh.sums[item*s.sumRow : (item+1)*s.sumRow]
	for f, v := range sums {
		atomic.AddInt64(&row[f], v)
	}
	atomic.AddInt64(&sh.users[item], users)
	po := sh.perOrder[item*s.ordRow : (item+1)*s.ordRow]
	for h, c := range perOrder {
		atomic.AddInt64(&po[h], c)
	}
	atomic.AddInt64(&sh.version, 1)
	return nil
}

// MarshalState serializes the whole matrix as a kind-3 domain payload:
// a domain header (kind, item count) followed by each item's dyadic
// state, length-prefixed — byte-for-byte the MarshalDomainState
// encoding over per-item Sharded accumulators, so snapshots written
// under either layout restore interchangeably. Counters are loaded
// atomically; quiesce ingestion first when a point-in-time cut matters
// (the durable collector holds its snapshot lock for exactly this
// reason).
func (s *DomainSharded) MarshalState() []byte {
	b := make([]byte, 0, 16+s.m*(16+10*s.sumRow))
	b = append(b, stateVersion, stateKindDomain)
	b = binary.AppendUvarint(b, uint64(s.m))
	users := int64(0)
	perOrder := make([]int64, s.ordRow)
	sums := make([]int64, s.sumRow)
	item := make([]byte, 0, 16+10*s.sumRow)
	for x := 0; x < s.m; x++ {
		users = 0
		for i := range perOrder {
			perOrder[i] = 0
		}
		for i := range sums {
			sums[i] = 0
		}
		s.foldItemInto(x, &users, perOrder, sums)
		item = appendDyadicState(item[:0], s.d, s.scale, users, perOrder, sums)
		b = binary.AppendUvarint(b, uint64(len(item)))
		b = append(b, item...)
	}
	return b
}

// RestoreState folds a kind-3 domain payload (MarshalState here, or
// MarshalDomainState over per-item accumulators) into the matrix —
// call it on a freshly constructed accumulator to reload a snapshot.
// The payload's item count, horizon and per-item scale must all match;
// on any error nothing past the failing item is modified.
func (s *DomainSharded) RestoreState(b []byte) error {
	r := stateReader{b: b}
	if v := r.byte("version"); r.err == nil && v != stateVersion {
		return fmt.Errorf("protocol: unsupported state version %d (this build reads version %d)", v, stateVersion)
	}
	if k := r.byte("kind"); r.err == nil && k != stateKindDomain {
		return fmt.Errorf("protocol: state kind %d is not a domain accumulator set", k)
	}
	m := r.uvarint("item count")
	if r.err != nil {
		return r.err
	}
	if m != uint64(s.m) {
		return fmt.Errorf("protocol: state has %d items, accumulator has %d", m, s.m)
	}
	sh := &s.shards[0]
	for x := 0; x < s.m; x++ {
		n := r.uvarint("item payload length")
		if r.err != nil {
			return r.err
		}
		if n > maxDomainItemState {
			return fmt.Errorf("protocol: item %d state of %d bytes exceeds limit %d", x, n, maxDomainItemState)
		}
		if r.off+int(n) > len(r.b) {
			return fmt.Errorf("protocol: state truncated inside item %d", x)
		}
		payload := r.b[r.off : r.off+int(n)]
		r.off += int(n)
		st, err := decodeDyadicState(payload, s.d, s.scale)
		if err != nil {
			return fmt.Errorf("protocol: item %d: %w", x, err)
		}
		row := sh.sums[x*s.sumRow : (x+1)*s.sumRow]
		for f, v := range st.sums {
			atomic.AddInt64(&row[f], v)
		}
		atomic.AddInt64(&sh.users[x], st.users)
		po := sh.perOrder[x*s.ordRow : (x+1)*s.ordRow]
		for h, c := range st.perOrder {
			atomic.AddInt64(&po[h], c)
		}
	}
	if r.off != len(b) {
		return fmt.Errorf("protocol: %d trailing bytes after domain state", len(b)-r.off)
	}
	atomic.AddInt64(&sh.version, 1)
	return nil
}
