package protocol

import (
	"sync"
	"testing"

	"rtf/internal/dyadic"
)

// The version stamp must move on every non-hot mutator and on explicit
// batch advancement, and must never move on a pure read.
func TestShardedVersionAdvances(t *testing.T) {
	acc := NewSharded(8, 1.5, 4)
	v0 := acc.Version()
	if v0 != 0 {
		t.Fatalf("fresh accumulator version = %d, want 0", v0)
	}

	acc.Register(1, 0)
	if v := acc.Version(); v <= v0 {
		t.Fatalf("Register did not advance version: %d -> %d", v0, v)
	}
	v1 := acc.Version()

	acc.IngestSum(2, dyadic.Interval{Order: 0, Index: 3}, 5)
	if v := acc.Version(); v <= v1 {
		t.Fatalf("IngestSum did not advance version: %d -> %d", v1, v)
	}
	v2 := acc.Version()

	// Ingest is deliberately version-silent; the batch writer advances.
	acc.Ingest(0, Report{Order: 0, J: 1, Bit: 1})
	if v := acc.Version(); v != v2 {
		t.Fatalf("Ingest alone moved version: %d -> %d", v2, v)
	}
	acc.AdvanceVersion(0)
	if v := acc.Version(); v <= v2 {
		t.Fatalf("AdvanceVersion did not advance version: %d -> %d", v2, v)
	}
	v3 := acc.Version()

	users, perOrder, sums := acc.Fold()
	if v := acc.Version(); v != v3 {
		t.Fatalf("Fold (a read) moved version: %d -> %d", v3, v)
	}
	if err := acc.MergeRaw(users, perOrder, sums); err != nil {
		t.Fatalf("MergeRaw: %v", err)
	}
	if v := acc.Version(); v <= v3 {
		t.Fatalf("MergeRaw did not advance version: %d -> %d", v3, v)
	}

	_ = acc.EstimateAt(4)
	_ = acc.EstimateSeries()
	if v, want := acc.Version(), acc.Version(); v != want {
		t.Fatalf("reads moved version: %d != %d", v, want)
	}
}

func TestDomainShardedVersionAdvances(t *testing.T) {
	acc := NewDomainSharded(8, 4, 2.0, 4)
	v0 := acc.Version()
	if v0 != 0 {
		t.Fatalf("fresh accumulator version = %d, want 0", v0)
	}

	acc.Register(1, 2, 0)
	if v := acc.Version(); v <= v0 {
		t.Fatalf("Register did not advance version: %d -> %d", v0, v)
	}
	v1 := acc.Version()

	// Ingest is deliberately version-silent; the batch writer advances.
	acc.Ingest(3, 2, Report{Order: 0, J: 1, Bit: 1})
	if v := acc.Version(); v != v1 {
		t.Fatalf("Ingest alone moved version: %d -> %d", v1, v)
	}
	acc.AdvanceVersion(3)
	if v := acc.Version(); v <= v1 {
		t.Fatalf("AdvanceVersion did not advance version: %d -> %d", v1, v)
	}
	v2 := acc.Version()

	users, perOrder, sums := acc.FoldItem(2)
	if v := acc.Version(); v != v2 {
		t.Fatalf("FoldItem (a read) moved version: %d -> %d", v2, v)
	}
	if err := acc.MergeRawItem(2, users, perOrder, sums); err != nil {
		t.Fatalf("MergeRawItem: %v", err)
	}
	if v := acc.Version(); v <= v2 {
		t.Fatalf("MergeRawItem did not advance version: %d -> %d", v2, v)
	}
	v3 := acc.Version()

	state := acc.MarshalState()
	if v := acc.Version(); v != v3 {
		t.Fatalf("MarshalState (a read) moved version: %d -> %d", v3, v)
	}
	other := NewDomainSharded(8, 4, 2.0, 4)
	if err := other.RestoreState(state); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if v := other.Version(); v == 0 {
		t.Fatal("RestoreState did not advance version")
	}
}

// Version is a sum of monotone per-shard counters, so a reader that
// observes the same stamp across two folds is guaranteed no advance
// completed in between — even with advancing writers on many shards.
func TestVersionMonotoneUnderConcurrentAdvance(t *testing.T) {
	acc := NewDomainSharded(8, 4, 2.0, 8)
	const writers, advances = 8, 500
	stop := make(chan struct{})
	var observed []uint64
	var writerWG, readerWG sync.WaitGroup
	writerWG.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < advances; i++ {
				acc.Ingest(w, i%4, Report{Order: 0, J: 1, Bit: 1})
				acc.AdvanceVersion(w)
			}
		}(w)
	}
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				observed = append(observed, acc.Version())
			}
		}
	}()
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	for i := 1; i < len(observed); i++ {
		if observed[i] < observed[i-1] {
			t.Fatalf("version went backwards: %d then %d", observed[i-1], observed[i])
		}
	}
	if got, want := acc.Version(), uint64(writers*advances); got != want {
		t.Fatalf("final version %d, want %d", got, want)
	}
}
