package protocol

import (
	"fmt"
	"math"

	"rtf/internal/dyadic"
)

// Server is the server-side algorithm Asvr (Algorithm 2). It accumulates
// perturbed partial-sum reports into one counter per dyadic interval and
// produces, for any time t, the unbiased estimate
//
//	â[t] = Σ_{I_{h,j} ∈ C(t)} scale · Σ_{u ∈ U_h} ω_u[j],
//
// where scale = (1+log₂ d)·c_gap⁻¹ for the paper's protocol (line 5) and
// k·(1+log₂ d)·c_gap⁻¹ for the Erlingsson et al. baseline (Section 6).
//
// The server is online: an estimate at time t uses only intervals ending
// at or before t, whose reports have all arrived by time t.
type Server struct {
	d        int
	scale    float64
	tree     *dyadic.Tree
	sums     []int64 // Σ of ±1 report bits, one per dyadic interval
	users    int     // registered users (diagnostics)
	perOrder []int   // registered users per order
}

// NewServer builds a server for horizon d with the given estimator scale.
func NewServer(d int, scale float64) *Server {
	if !dyadic.IsPow2(d) {
		panic(fmt.Sprintf("protocol: d=%d not a power of two", d))
	}
	if scale <= 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		panic(fmt.Sprintf("protocol: invalid estimator scale %v", scale))
	}
	tr := dyadic.NewTree(d)
	return &Server{
		d:        d,
		scale:    scale,
		tree:     tr,
		sums:     make([]int64, tr.Size()),
		perOrder: make([]int, dyadic.NumOrders(d)),
	}
}

// EstimatorScale returns the protocol-level scale of Algorithm 2, line 5:
// (1+log₂ d)/c_gap.
func EstimatorScale(d int, cGap float64) float64 {
	return float64(1+dyadic.Log2(d)) / cGap
}

// Register records that a user with sampled order h joined (the ℎ_u
// message of Algorithm 1, line 1).
func (s *Server) Register(order int) {
	if order < 0 || order >= len(s.perOrder) {
		panic(fmt.Sprintf("protocol: order %d out of range", order))
	}
	s.users++
	s.perOrder[order]++
}

// Users returns the number of registered users.
func (s *Server) Users() int { return s.users }

// UsersAtOrder returns |U_h|.
func (s *Server) UsersAtOrder(h int) int { return s.perOrder[h] }

// Ingest accumulates one report.
func (s *Server) Ingest(r Report) {
	if r.Bit != 1 && r.Bit != -1 {
		panic(fmt.Sprintf("protocol: report bit %d not ±1", r.Bit))
	}
	flat := s.tree.FlatIndex(dyadic.Interval{Order: r.Order, Index: r.J})
	s.sums[flat] += int64(r.Bit)
}

// IngestSum adds a pre-aggregated sum of ±1 bits for one interval; the
// fast simulation engine uses this to inject binomially-sampled zero-
// coordinate noise without materializing individual reports.
func (s *Server) IngestSum(iv dyadic.Interval, sum int64) {
	s.sums[s.tree.FlatIndex(iv)] += sum
}

// IntervalEstimate returns Ŝ(I) = scale · Σ bits for one interval.
func (s *Server) IntervalEstimate(iv dyadic.Interval) float64 {
	return s.scale * float64(s.sums[s.tree.FlatIndex(iv)])
}

// EstimateAt returns â[t] via the dyadic decomposition C(t) (line 6).
func (s *Server) EstimateAt(t int) float64 {
	var est float64
	for _, iv := range dyadic.Decompose(t, s.d) {
		est += s.scale * float64(s.sums[s.tree.FlatIndex(iv)])
	}
	return est
}

// EstimateSeries returns â[1..d]. It runs in O(d) using the prefix
// structure: â[t] = â[t − 2^h] + Ŝ(I_{h, t/2^h}) where 2^h is the lowest
// set bit of t.
func (s *Server) EstimateSeries() []float64 {
	return s.EstimateSeriesTo(s.d)
}

// EstimateSeriesTo returns â[1..r]. The prefix recurrence at t only
// reads earlier entries, so the truncated series is bit-for-bit a
// prefix of EstimateSeries — window queries use it to pay O(r) instead
// of O(d).
func (s *Server) EstimateSeriesTo(r int) []float64 {
	if r < 1 || r > s.d {
		panic(fmt.Sprintf("protocol: series bound %d out of range [1..%d]", r, s.d))
	}
	out := make([]float64, r)
	for t := 1; t <= r; t++ {
		low := t & (-t)
		h := dyadic.Log2(low)
		est := s.scale * float64(s.sums[s.tree.FlatIndex(dyadic.Interval{Order: h, Index: t >> uint(h)})])
		if prev := t - low; prev > 0 {
			est += out[prev-1]
		}
		out[t-1] = est
	}
	return out
}

// EstimateChange returns an unbiased estimate of a[r] − a[l−1], the net
// change in the count over the range [l..r], using the direct dyadic
// cover of the range (at most 2·⌈log₂(r−l+1)⌉ intervals — fewer than the
// up-to-2(1+log₂ d) intervals of differencing two prefix estimates, so
// short ranges get proportionally less noise). Valid online once time r
// has passed.
func (s *Server) EstimateChange(l, r int) float64 {
	var est float64
	for _, iv := range dyadic.DecomposeRange(l, r, s.d) {
		est += s.scale * float64(s.sums[s.tree.FlatIndex(iv)])
	}
	return est
}

// IntervalSums exposes the raw per-interval bit sums (for the consistency
// post-processing extension, which re-weights them).
func (s *Server) IntervalSums() []int64 { return s.sums }

// Merge adds another server's accumulated state into s. Both must have
// the same horizon and scale; the parallel simulation engine uses this
// to combine per-worker shards.
func (s *Server) Merge(o *Server) {
	if o.d != s.d || o.scale != s.scale {
		panic("protocol: merging incompatible servers")
	}
	for i, v := range o.sums {
		s.sums[i] += v
	}
	s.users += o.users
	for h, c := range o.perOrder {
		s.perOrder[h] += c
	}
}

// MergeRaw folds raw accumulator state — a user count, per-order user
// counts and per-interval bit sums as produced by Sharded.Fold, possibly
// shipped from another machine — into s. Because the estimator is a
// fixed linear function of these integers, merging the raw sums of N
// partitioned servers reproduces one serial server fed all their reports
// bit for bit; this is the gather half of the cluster gateway. It fails,
// without modifying the server, on mismatched lengths or negative
// counts.
func (s *Server) MergeRaw(users int64, perOrder, sums []int64) error {
	if users < 0 {
		return fmt.Errorf("protocol: merging negative user count %d", users)
	}
	if len(perOrder) != len(s.perOrder) {
		return fmt.Errorf("protocol: merging %d per-order counts into a server with %d orders", len(perOrder), len(s.perOrder))
	}
	if len(sums) != len(s.sums) {
		return fmt.Errorf("protocol: merging %d interval sums into a server with %d intervals", len(sums), len(s.sums))
	}
	for h, c := range perOrder {
		if c < 0 {
			return fmt.Errorf("protocol: merging negative count %d at order %d", c, h)
		}
	}
	for i, v := range sums {
		s.sums[i] += v
	}
	s.users += int(users)
	for h, c := range perOrder {
		s.perOrder[h] += int(c)
	}
	return nil
}

// Scale returns the estimator scale.
func (s *Server) Scale() float64 { return s.scale }

// Tree returns the dyadic index used by this server.
func (s *Server) Tree() *dyadic.Tree { return s.tree }

// D returns the horizon.
func (s *Server) D() int { return s.d }
